//! # specstab — speculative self-stabilization
//!
//! A complete reproduction of *Introducing Speculation in
//! Self-Stabilization: An Application to Mutual Exclusion* (Swan Dubois &
//! Rachid Guerraoui, PODC 2013), built from scratch in Rust:
//!
//! * [`topology`] — communication graphs, generators and the topological
//!   constants (`diam`, `hole`, `cyclo`, `lcp`) governing the protocols;
//! * [`kernel`] — Dijkstra's atomic-state simulation model: protocols as
//!   guarded rules, the daemon taxonomy of Definition 2, the execution
//!   engine, stabilization measurement and exhaustive worst-case search;
//! * [`unison`] — the Boulinier–Petit–Villain asynchronous unison substrate
//!   with cherry clocks (Figure 1);
//! * [`core`] — the paper's contribution: the SSME protocol (Algorithm 1),
//!   `specME`, speculation profiles (Definitions 3–4), the Theorem 2/3
//!   bounds and the constructive Theorem 4 lower bound;
//! * [`protocols`] — the Section 3 baselines (Dijkstra's token ring, min+1
//!   BFS, maximal matching);
//! * [`campaign`] — the parallel Monte-Carlo campaign engine: scenario
//!   matrices (topology × protocol × daemon × fault burst × seed), a
//!   sharded deterministic executor, streaming statistics and
//!   speculation-profile artifacts.
//!
//! ## Quickstart
//!
//! ```
//! use specstab::prelude::*;
//!
//! // SSME on a 4x5 torus: safety stabilizes within ⌈diam/2⌉ = 2
//! // synchronous steps from ANY initial configuration.
//! let g = generators::torus(4, 5).expect("valid dimensions");
//! let diam = DistanceMatrix::new(&g).diameter();
//! let ssme = Ssme::for_graph(&g).expect("nonempty graph");
//! let spec = SpecMe::new(ssme.clone());
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(42);
//! let init = random_configuration(&g, &ssme, &mut rng);
//! let mut daemon = SynchronousDaemon::new();
//! let (s, l) = (spec.clone(), spec.clone());
//! let report = measure_stabilization(
//!     &g, &ssme, &mut daemon, init,
//!     Box::new(move |c, g| s.is_safe(c, g)),
//!     Box::new(move |c, g| l.is_legitimate(c, g)),
//!     &MeasureSettings::new(500),
//! );
//! assert!(report.stabilization_steps as u64 <= bounds::sync_stabilization_bound(diam));
//! ```
//!
//! See `examples/` for runnable walk-throughs and DESIGN.md for the
//! paper-to-code map.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use specstab_campaign as campaign;
pub use specstab_core as core;
pub use specstab_kernel as kernel;
pub use specstab_protocols as protocols;
pub use specstab_topology as topology;
pub use specstab_unison as unison;

/// One-stop imports for applications and examples.
pub mod prelude {
    pub use rand::SeedableRng;
    pub use specstab_campaign::artifact::{to_csv, to_json};
    pub use specstab_campaign::executor::{
        run_campaign, run_campaign_sequential, CampaignConfig, CampaignResult,
    };
    pub use specstab_campaign::matrix::{Cell, InitMode, ScenarioMatrix};
    pub use specstab_campaign::report::{speculation_profile_table, to_speculation_profile};
    pub use specstab_campaign::stats::{OnlineStats, P2Quantile};
    pub use specstab_core::bounds;
    pub use specstab_core::lower_bound::{theorem4_witness, verify_witness};
    pub use specstab_core::spec_me::{starved_vertices, CsCounter, SpecMe};
    pub use specstab_core::speculation::{check_definition4, profile, SpeculationProfile};
    pub use specstab_core::ssme::{IdAssignment, Ssme};
    pub use specstab_kernel::config::Configuration;
    pub use specstab_kernel::daemon::{
        parse_daemon_spec, BoxedDaemon, CentralDaemon, CentralStrategy, Daemon, DaemonClass,
        GreedyAdversary, KBoundedDaemon, OldestFirstDaemon, RandomDistributedDaemon,
        SynchronousDaemon,
    };
    pub use specstab_kernel::engine::{RunLimits, RunSummary, Simulator, StepScratch, StopReason};
    pub use specstab_kernel::fault::{inject_faults, inject_faults_in_place};
    pub use specstab_kernel::harness::{BoundMetric, HarnessError, ProtocolHarness, TheoremBound};
    pub use specstab_kernel::measure::{
        measure_stabilization, measure_with_early_stop, MeasureSettings, MeasurementContext,
    };
    pub use specstab_kernel::observer::{
        ConfigTrace, LegitimacyMonitor, MoveCounter, Observer, SafetyMonitor, TraceRecorder,
    };
    pub use specstab_kernel::protocol::{random_configuration, Protocol, RuleId, View};
    pub use specstab_kernel::spec::Specification;
    pub use specstab_protocols::bfs::{BfsSpec, MinPlusOneBfs};
    pub use specstab_protocols::dijkstra::{DijkstraRing, DijkstraSpec};
    pub use specstab_protocols::harness::{
        BfsHarness, Dijkstra3Harness, Dijkstra4Harness, DijkstraHarness, MatchingHarness,
        SsmeHarness,
    };
    pub use specstab_protocols::matching::{MatchingSpec, MaximalMatching};
    pub use specstab_protocols::registry;
    pub use specstab_topology::generators;
    pub use specstab_topology::metrics::DistanceMatrix;
    pub use specstab_topology::spec::parse_spec;
    pub use specstab_topology::{Graph, GraphBuilder, VertexId};
    pub use specstab_unison::clock::{CherryClock, ClockValue};
    pub use specstab_unison::{analysis, AsyncUnison, SpecAu};
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_reexports_compile() {
        use crate::prelude::*;
        let g = generators::ring(4).expect("valid ring");
        let ssme = Ssme::for_graph(&g).expect("nonempty");
        assert_eq!(ssme.n(), 4);
    }
}
