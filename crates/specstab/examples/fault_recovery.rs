//! Transient-fault recovery: the self-stabilization story end to end.
//!
//! Stabilizes SSME on a grid, then injects transient faults of growing
//! extent (1 vertex, a quarter, everything) and measures re-stabilization.
//! The speculative design shines in the common case: under the synchronous
//! daemon recovery always completes within `⌈diam/2⌉` steps for safety and
//! `2n + diam` for full legitimacy — no matter how many vertices the fault
//! hit.
//!
//! Run with: `cargo run --release --example fault_recovery`

use specstab::prelude::*;

fn main() {
    let g = generators::grid(4, 5).expect("valid dimensions");
    let dm = DistanceMatrix::new(&g);
    let diam = dm.diameter();
    let ssme = Ssme::for_graph(&g).expect("nonempty graph");
    let spec = SpecMe::new(ssme.clone());
    let sim = Simulator::new(&g, &ssme);
    let horizon = analysis::ssme_sync_gamma1_bound(g.n(), diam) as usize + 32;

    println!("graph: {g} (diam = {diam})");
    println!(
        "Theorem 2: safety recovers within ceil(diam/2) = {} sync steps after ANY fault",
        bounds::sync_stabilization_bound(diam)
    );
    println!();

    // Phase 1: reach a legitimate configuration.
    let mut rng = rand::rngs::StdRng::seed_from_u64(99);
    let init = random_configuration(&g, &ssme, &mut rng);
    let mut daemon = SynchronousDaemon::new();
    let healthy =
        sim.run(init, &mut daemon, RunLimits::with_max_steps(horizon), &mut []).final_config;
    assert!(spec.is_legitimate(&healthy, &g), "phase 1 must stabilize");
    println!("phase 1: stabilized (Γ1 reached)");

    // Phase 2: inject faults of growing extent and measure recovery.
    for k in [1usize, 5, g.n()] {
        let (faulty, victims) = inject_faults(&healthy, &g, &ssme, k, &mut rng);
        let (s, l) = (spec.clone(), spec.clone());
        let mut safety = SafetyMonitor::new(Box::new(move |c, g| s.is_safe(c, g)));
        let mut legit = LegitimacyMonitor::new(Box::new(move |c, g| l.is_legitimate(c, g)));
        let mut daemon = SynchronousDaemon::new();
        let _ = sim.run(
            faulty,
            &mut daemon,
            RunLimits::with_max_steps(horizon),
            &mut [&mut safety, &mut legit],
        );
        println!(
            "fault hits {:>2} vertices {:?}{}",
            k,
            victims.iter().take(4).map(ToString::to_string).collect::<Vec<_>>(),
            if victims.len() > 4 { " ..." } else { "" }
        );
        println!(
            "  safety re-stabilized in {:>2} steps (bound {}), Γ1 re-entered at step {:>3} (bound {})",
            safety.measured_stabilization(),
            bounds::sync_stabilization_bound(diam),
            legit.entry_index(),
            analysis::ssme_sync_gamma1_bound(g.n(), diam),
        );
        assert!(safety.measured_stabilization() as u64 <= bounds::sync_stabilization_bound(diam));
        assert!(legit.currently_legitimate());
    }
    println!();
    println!(
        "recovery verified for every fault extent — self-stabilization means never \
              having to say you're sorry about state corruption"
    );
}
