//! The Theorem 4 adversary, visualized.
//!
//! Constructs the paper's lower-bound witness on a path: two constant-clock
//! balls around the endpoints `u` and `v`, each holding `privilege − t`,
//! with incoherent filler between them. Watch the reset waves erode the
//! balls one layer per step while both centers tick — until, at step
//! `t = ⌈diam/2⌉ − 1`, **both hold the privilege at once**. No deterministic
//! protocol can avoid this: information travels one hop per step.
//!
//! Run with: `cargo run --release --example lower_bound_adversary`

use specstab::prelude::*;

fn main() {
    let g = generators::path(11).expect("valid path"); // diam 10, t = 4
    let dm = DistanceMatrix::new(&g);
    let diam = dm.diameter();
    let ssme = Ssme::for_graph(&g).expect("nonempty graph");
    let witness = theorem4_witness(&ssme, &g, &dm).expect("diam >= 1");

    println!("graph: {g} (diam = {diam})");
    println!(
        "witness: u = {}, v = {}, t = {} (= ceil(diam/2) - 1), privileges at r_u = {}, r_v = {}",
        witness.u,
        witness.v,
        witness.t,
        ssme.privilege_value(witness.u),
        ssme.privilege_value(witness.v),
    );
    println!();

    // Run synchronously, recording the trace.
    let sim = Simulator::new(&g, &ssme);
    let mut daemon = SynchronousDaemon::new();
    let mut trace = TraceRecorder::new();
    let _ = sim.run(
        witness.init.clone(),
        &mut daemon,
        RunLimits::with_max_steps(witness.t + 3),
        &mut [&mut trace],
    );

    println!("clock registers along the path (P = privileged):");
    for (i, cfg) in trace.configs().iter().enumerate() {
        let cells: Vec<String> = g
            .vertices()
            .map(|x| {
                let mark = if ssme.is_privileged(x, cfg) { "P" } else { " " };
                format!("{:>4}{mark}", cfg.get(x).raw())
            })
            .collect();
        let privileged = ssme.privileged_vertices(cfg);
        println!(
            "  γ_{i:<2} [{}]  privileged: {}",
            cells.join(""),
            privileged.iter().map(ToString::to_string).collect::<Vec<_>>().join(", ")
        );
    }
    println!();

    let outcome = verify_witness(&ssme, &g, &witness, 200);
    println!("both u and v privileged at γ_{}: {}", witness.t, outcome.both_privileged_at_t);
    println!(
        "last safety violation at step {:?} → measured stabilization {} = ceil(diam/2) = {}",
        outcome.last_violation,
        outcome.measured_stabilization,
        bounds::sync_stabilization_bound(diam)
    );
    assert!(outcome.both_privileged_at_t);
    assert_eq!(
        outcome.measured_stabilization as u64,
        bounds::sync_stabilization_bound(diam),
        "the witness must be tight"
    );
}
