//! Quickstart: SSME on a torus under the synchronous daemon.
//!
//! Builds the protocol for a 4x6 torus, throws it into an arbitrary
//! (fault-corrupted) configuration, runs it synchronously and shows:
//!
//! * mutual-exclusion safety stabilizes within `⌈diam/2⌉` steps (Thm 2);
//! * the unison substrate reaches `Γ1` within `2n + diam` steps;
//! * after stabilization every vertex keeps entering its critical section.
//!
//! Run with: `cargo run --release --example quickstart`

use specstab::prelude::*;

fn main() {
    let g = generators::torus(4, 6).expect("valid dimensions");
    let dm = DistanceMatrix::new(&g);
    let diam = dm.diameter();
    let ssme = Ssme::for_graph(&g).expect("nonempty graph");
    let spec = SpecMe::new(ssme.clone());

    println!("graph: {g}");
    println!("diam(g) = {diam}, clock = {}", ssme.clock());
    println!("Theorem 2 bound: ceil(diam/2) = {}", bounds::sync_stabilization_bound(diam));
    println!();

    // An arbitrary initial configuration = a transient fault hit everything.
    let mut rng = rand::rngs::StdRng::seed_from_u64(2013);
    let init = random_configuration(&g, &ssme, &mut rng);

    let sim = Simulator::new(&g, &ssme);
    let mut daemon = SynchronousDaemon::new();
    let (s, l) = (spec.clone(), spec.clone());
    let mut safety = SafetyMonitor::new(Box::new(move |c, g| s.is_safe(c, g)));
    let mut legit = LegitimacyMonitor::new(Box::new(move |c, g| l.is_legitimate(c, g)));
    let mut cs = CsCounter::new(ssme.clone(), 64);
    let k = usize::try_from(ssme.clock().k()).expect("K fits usize");
    let horizon = analysis::ssme_sync_gamma1_bound(g.n(), diam) as usize + 2 * k;
    let summary = sim.run(
        init,
        &mut daemon,
        RunLimits::with_max_steps(horizon),
        &mut [&mut safety, &mut legit, &mut cs],
    );

    println!("ran {} synchronous steps ({} moves)", summary.steps, summary.moves);
    println!(
        "safety violations: {} (last at step {:?}) → measured stabilization = {} steps",
        safety.violations(),
        safety.last_violation(),
        safety.measured_stabilization()
    );
    println!(
        "Γ1 (legitimacy) entered at step {} (bound 2n+diam = {})",
        legit.entry_index(),
        analysis::ssme_sync_gamma1_bound(g.n(), diam)
    );
    assert!(
        safety.measured_stabilization() as u64 <= bounds::sync_stabilization_bound(diam),
        "Theorem 2 must hold"
    );
    println!();
    println!("critical-section executions after stabilization (first few):");
    for &(step, v) in cs.history().iter().take(8) {
        println!("  step {step:>4}: {v} enters its critical section");
    }
    let starved = starved_vertices(&cs, &g);
    println!(
        "every vertex served within two clock cycles: {}",
        if starved.is_empty() { "yes" } else { "NO" }
    );
    assert!(starved.is_empty(), "liveness must hold");
}
