//! Speculation profiles: stabilization time as a function of the daemon.
//!
//! The paper's central conceptual move (Definition 4) is to read the
//! stabilization time not as one number but as a *function of the
//! adversary*. This example profiles SSME on a ring under three daemons
//! and prints the Definition 4 verdict: SSME is
//! `(ud, sd, diam·n³, ⌈diam/2⌉)`-speculatively stabilizing.
//!
//! Run with: `cargo run --release --example speculation_profile`

use specstab::prelude::*;

fn main() {
    let n = 12;
    let g = generators::ring(n).expect("valid ring");
    let dm = DistanceMatrix::new(&g);
    let ssme = Ssme::for_graph(&g).expect("nonempty graph");
    let spec = SpecMe::new(ssme.clone());

    // The same arbitrary initial configurations for every daemon.
    let inits: Vec<Configuration<ClockValue>> = (0..12u64)
        .map(|s| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(s);
            random_configuration(&g, &ssme, &mut rng)
        })
        .collect();

    let mut daemons: Vec<Box<dyn Daemon<ClockValue>>> = vec![
        Box::new(SynchronousDaemon::new()),
        Box::new(RandomDistributedDaemon::new(0.5, 7)),
        Box::new(CentralDaemon::new(CentralStrategy::Random(7))),
        Box::new(CentralDaemon::new(CentralStrategy::RoundRobin)),
    ];
    let (s, l) = (spec.clone(), spec);
    let prof = profile(
        &g,
        &ssme,
        &mut daemons,
        &inits,
        &move || {
            let s = s.clone();
            Box::new(move |c: &_, g: &_| s.is_safe(c, g))
        },
        &move || {
            let l = l.clone();
            Box::new(move |c: &_, g: &_| l.is_legitimate(c, g))
        },
        2_000_000,
        3,
    );
    println!("{prof}");

    let bound = bounds::sync_stabilization_bound(dm.diameter());
    let verdict = check_definition4(
        &prof,
        DaemonClass::unfair_distributed(),
        DaemonClass::synchronous(),
        bound,
    );
    println!("Definition 4 checks for (d = ud, d' = sd, f' = ceil(diam/2) = {bound}):");
    println!("  sd strictly below ud in the daemon order: {}", verdict.daemons_ordered);
    println!("  self-stabilizing under ud (sampled):      {}", verdict.stabilizes_under_strong);
    println!(
        "  sd worst case {} within claimed f' = {}:   {}",
        verdict.weak_measured, verdict.weak_claimed, verdict.weak_within_claimed_bound
    );
    println!(
        "=> SSME is sd-speculatively stabilizing: {}",
        if verdict.holds() { "CONFIRMED" } else { "REFUTED" }
    );
    assert!(verdict.holds());
}
