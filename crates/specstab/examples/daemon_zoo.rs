//! The daemon zoo: one protocol, one initial configuration, every adversary.
//!
//! Runs SSME on the Petersen graph from the same corrupted configuration
//! under six daemons and compares stabilization behavior — the
//! "stabilization time as a function of the adversary" picture that the
//! paper's Definition 4 formalizes.
//!
//! Run with: `cargo run --release --example daemon_zoo`

use specstab::prelude::*;
use std::sync::Arc;

fn main() {
    let g = generators::petersen();
    let dm = DistanceMatrix::new(&g);
    let ssme = Ssme::for_graph(&g).expect("nonempty graph");
    let spec = SpecMe::new(ssme.clone());
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let init = random_configuration(&g, &ssme, &mut rng);

    println!("graph: {g} (diam = {})", dm.diameter());
    println!("clock: {}", ssme.clock());
    println!();
    println!(
        "{:<24} {:>10} {:>12} {:>12} {:>10}",
        "daemon", "steps", "moves", "stab(safety)", "Γ1 entry"
    );

    let arc = Arc::new(ssme.clone());
    let mut daemons: Vec<Box<dyn Daemon<ClockValue>>> = vec![
        Box::new(SynchronousDaemon::new()),
        Box::new(CentralDaemon::new(CentralStrategy::RoundRobin)),
        Box::new(CentralDaemon::new(CentralStrategy::Random(3))),
        Box::new(RandomDistributedDaemon::new(0.3, 3)),
        Box::new(RandomDistributedDaemon::new(0.8, 3)),
        Box::new(specstab::kernel::daemon::max_enabled_adversary(
            arc,
            specstab::kernel::daemon::AdversaryMoves::Singletons,
            3,
        )),
    ];

    for d in &mut daemons {
        let (s, l, st) = (spec.clone(), spec.clone(), spec.clone());
        let report = measure_with_early_stop(
            &g,
            &ssme,
            d.as_mut(),
            init.clone(),
            Box::new(move |c, g| s.is_safe(c, g)),
            Box::new(move |c, g| l.is_legitimate(c, g)),
            Box::new(move |c, g| st.is_legitimate(c, g)),
            5_000_000,
            3,
        );
        println!(
            "{:<24} {:>10} {:>12} {:>12} {:>10}",
            d.name(),
            report.steps_run,
            report.moves,
            report.stabilization_steps,
            report.legitimacy_entry,
        );
        assert!(report.ended_legitimate, "{} failed to converge", d.name());
    }
    println!();
    println!(
        "synchronous stabilization respects Theorem 2 (ceil(diam/2) = {}), every other \
         daemon still converges — that is speculative stabilization",
        bounds::sync_stabilization_bound(dm.diameter())
    );
}
