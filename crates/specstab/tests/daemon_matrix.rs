//! SSME under the full daemon matrix — including the weakly-fair and
//! k-bounded schedulers — and on topologies loaded from the edge-list
//! format. Every combination must converge; synchronous runs must respect
//! Theorem 2.

use specstab::kernel::daemon::{KBoundedDaemon, OldestFirstDaemon};
use specstab::prelude::*;
use specstab::topology::io;

fn daemon_matrix(seed: u64) -> Vec<Box<dyn Daemon<ClockValue>>> {
    vec![
        Box::new(SynchronousDaemon::new()),
        Box::new(CentralDaemon::new(CentralStrategy::RoundRobin)),
        Box::new(CentralDaemon::new(CentralStrategy::Random(seed))),
        Box::new(CentralDaemon::new(CentralStrategy::MinId)),
        Box::new(CentralDaemon::new(CentralStrategy::MaxId)),
        Box::new(OldestFirstDaemon::new()),
        Box::new(RandomDistributedDaemon::new(0.3, seed)),
        Box::new(RandomDistributedDaemon::new(0.9, seed)),
        Box::new(KBoundedDaemon::new(3, 0.3, seed)),
    ]
}

#[test]
fn ssme_converges_under_every_daemon_in_the_matrix() {
    let g = generators::grid(3, 3).expect("valid dimensions");
    let ssme = Ssme::for_graph(&g).expect("nonempty");
    let spec = SpecMe::new(ssme.clone());
    let mut rng = rand::rngs::StdRng::seed_from_u64(77);
    let init = random_configuration(&g, &ssme, &mut rng);
    for d in &mut daemon_matrix(77) {
        let (s, l, st) = (spec.clone(), spec.clone(), spec.clone());
        let report = measure_with_early_stop(
            &g,
            &ssme,
            d.as_mut(),
            init.clone(),
            Box::new(move |c, g| s.is_safe(c, g)),
            Box::new(move |c, g| l.is_legitimate(c, g)),
            Box::new(move |c, g| st.is_legitimate(c, g)),
            5_000_000,
            3,
        );
        assert!(report.ended_legitimate, "daemon {} did not converge", d.name());
        // Every safety violation precedes legitimacy entry (Theorem 1).
        if let Some(last) = report.last_violation {
            assert!(last < report.legitimacy_entry, "daemon {}", d.name());
        }
    }
}

#[test]
fn min_and_max_id_daemons_are_valid_unfair_schedules() {
    // MinId/MaxId are extreme starvation strategies; the unison's guard
    // structure must still force progress for everyone.
    let g = generators::ring(6).expect("valid ring");
    let ssme = Ssme::for_graph(&g).expect("nonempty");
    let sim = Simulator::new(&g, &ssme);
    let init = Configuration::from_fn(g.n(), |_| ssme.clock().value(0).expect("in domain"));
    for strategy in [CentralStrategy::MinId, CentralStrategy::MaxId] {
        let mut d = CentralDaemon::new(strategy);
        let mut cs = CsCounter::new(ssme.clone(), 1_000);
        let _ = sim.run(init.clone(), &mut d, RunLimits::with_max_steps(20_000), &mut [&mut cs]);
        assert!(
            starved_vertices(&cs, &g).is_empty(),
            "unfair central schedule starved someone — unison must forbid that"
        );
    }
}

#[test]
fn custom_edge_list_topology_end_to_end() {
    // A "kite" graph written in the plain-text format, parsed, then run.
    let text = "\
# name: kite
n 6
0 1
0 2
1 2
1 3
2 3
3 4
4 5
";
    let g = io::parse_edge_list(text).expect("well-formed edge list");
    assert_eq!(g.name(), "kite");
    assert!(g.is_connected());
    let dm = DistanceMatrix::new(&g);
    let ssme = Ssme::for_graph(&g).expect("nonempty");
    let spec = SpecMe::new(ssme.clone());
    for seed in 0..10 {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let init = random_configuration(&g, &ssme, &mut rng);
        let mut d = SynchronousDaemon::new();
        let (s, l, st) = (spec.clone(), spec.clone(), spec.clone());
        let report = measure_with_early_stop(
            &g,
            &ssme,
            &mut d,
            init,
            Box::new(move |c, g| s.is_safe(c, g)),
            Box::new(move |c, g| l.is_legitimate(c, g)),
            Box::new(move |c, g| st.is_legitimate(c, g)),
            100_000,
            3,
        );
        assert!(report.ended_legitimate, "seed {seed}");
        assert!(
            report.stabilization_steps as u64 <= bounds::sync_stabilization_bound(dm.diameter()),
            "seed {seed}: Theorem 2 on a parsed custom graph"
        );
    }
    // The witness is tight here too.
    let w = theorem4_witness(&ssme, &g, &dm).expect("diam >= 1");
    let outcome = verify_witness(&ssme, &g, &w, 500);
    assert!(outcome.both_privileged_at_t);
    assert_eq!(
        outcome.measured_stabilization as u64,
        bounds::sync_stabilization_bound(dm.diameter())
    );
}

#[test]
fn round_trip_custom_graph_through_edge_list() {
    let g = GraphBuilder::new(5)
        .edge(0, 1)
        .edge(1, 2)
        .edge(2, 3)
        .edge(3, 4)
        .edge(4, 0)
        .edge(0, 2)
        .name("house")
        .build_connected()
        .expect("connected");
    let text = io::to_edge_list(&g);
    let back = io::parse_edge_list(&text).expect("round trip");
    assert_eq!(back, g);
}
