//! Definition 4 verified end to end: SSME is *deliberately* speculatively
//! stabilizing; Dijkstra's protocol is *accidentally* so (Section 3).

use specstab::prelude::*;

fn ssme_profile(n: usize, runs: usize) -> (SpeculationProfile, u32) {
    let g = generators::ring(n).expect("valid ring");
    let dm = DistanceMatrix::new(&g);
    let ssme = Ssme::for_graph(&g).expect("nonempty");
    let spec = SpecMe::new(ssme.clone());
    let inits: Vec<Configuration<ClockValue>> = (0..runs as u64)
        .map(|s| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(s);
            random_configuration(&g, &ssme, &mut rng)
        })
        .collect();
    let mut daemons: Vec<Box<dyn Daemon<ClockValue>>> = vec![
        Box::new(SynchronousDaemon::new()),
        Box::new(RandomDistributedDaemon::new(0.5, 11)),
        Box::new(CentralDaemon::new(CentralStrategy::Random(11))),
    ];
    let (s, l) = (spec.clone(), spec);
    let prof = profile(
        &g,
        &ssme,
        &mut daemons,
        &inits,
        &move || {
            let s = s.clone();
            Box::new(move |c: &_, g: &_| s.is_safe(c, g))
        },
        &move || {
            let l = l.clone();
            Box::new(move |c: &_, g: &_| l.is_legitimate(c, g))
        },
        2_000_000,
        3,
    );
    (prof, dm.diameter())
}

#[test]
fn ssme_satisfies_definition4_on_rings() {
    for n in [6usize, 9, 12] {
        let (prof, diam) = ssme_profile(n, 8);
        let verdict = check_definition4(
            &prof,
            DaemonClass::unfair_distributed(),
            DaemonClass::synchronous(),
            bounds::sync_stabilization_bound(diam),
        );
        assert!(verdict.holds(), "ring-{n}: {verdict:?}");
    }
}

#[test]
fn dijkstra_satisfies_definition4_on_rings() {
    // Section 3: Dijkstra's protocol is (ud, sd, n², n)-speculatively
    // stabilizing — verify the empirical side with the exact 2n−3 sd law.
    for n in [6usize, 10] {
        let g = generators::ring(n).expect("valid ring");
        let p = DijkstraRing::new(&g, n as u64).expect("K = n");
        let spec = DijkstraSpec::new(p.clone());
        let inits: Vec<Configuration<u64>> = (0..8u64)
            .map(|s| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(s);
                random_configuration(&g, &p, &mut rng)
            })
            .collect();
        let mut daemons: Vec<Box<dyn Daemon<u64>>> = vec![
            Box::new(SynchronousDaemon::new()),
            Box::new(RandomDistributedDaemon::new(0.5, 13)),
            Box::new(CentralDaemon::new(CentralStrategy::Random(13))),
        ];
        let (s, l) = (spec.clone(), spec);
        let prof = profile(
            &g,
            &p,
            &mut daemons,
            &inits,
            &move || {
                let s = s.clone();
                Box::new(move |c: &_, g: &_| s.is_safe(c, g))
            },
            &move || {
                let l = l.clone();
                Box::new(move |c: &_, g: &_| l.is_legitimate(c, g))
            },
            1_000_000,
            3,
        );
        let verdict = check_definition4(
            &prof,
            DaemonClass::unfair_distributed(),
            DaemonClass::synchronous(),
            (2 * n - 3) as u64,
        );
        assert!(verdict.holds(), "ring-{n}: {verdict:?}");
    }
}

#[test]
fn ssme_beats_dijkstra_in_the_speculated_case() {
    // The headline: on rings, SSME's synchronous worst case (tight, via the
    // Theorem 4 witness) is strictly below Dijkstra's exact 2n−3 law.
    for n in [8usize, 16, 32] {
        let g = generators::ring(n).expect("valid ring");
        let dm = DistanceMatrix::new(&g);
        let ssme = Ssme::for_graph(&g).expect("nonempty");
        let w = theorem4_witness(&ssme, &g, &dm).expect("diam >= 1");
        let outcome = verify_witness(
            &ssme,
            &g,
            &w,
            analysis::ssme_sync_gamma1_bound(n, dm.diameter()) as usize + 16,
        );
        let ssme_worst = outcome.measured_stabilization;
        let dijkstra_worst = 2 * n - 3;
        assert!(
            ssme_worst < dijkstra_worst,
            "n={n}: SSME {ssme_worst} !< Dijkstra {dijkstra_worst}"
        );
    }
}

#[test]
fn daemon_partial_order_drives_stabilization_monotonicity() {
    // conv_time(π, d') ≤ conv_time(π, d) when d' ⪯ d: the synchronous
    // entry never exceeds the sampled distributed worst case by more than
    // the sampling noise — here we check the ordering of the *bounds*.
    let (prof, diam) = ssme_profile(10, 8);
    let sd = prof.entry_for(DaemonClass::synchronous()).expect("measured");
    assert!(
        (sd.max_stabilization as u64) <= bounds::sync_stabilization_bound(diam),
        "sd worst {} above its own bound",
        sd.max_stabilization
    );
    // The theoretical strong-daemon bound dominates the weak-daemon bound.
    assert!(
        bounds::unfair_stabilization_bound(10, diam)
            >= u128::from(bounds::sync_stabilization_bound(diam))
    );
}
