//! Cross-crate integration: the full pipeline from topology generation to
//! theorem-level assertions, through the public facade API.

use specstab::prelude::*;

/// Builds a custom graph with the builder, runs SSME on it, and checks the
/// Theorem 2 bound plus liveness — the complete user journey.
#[test]
fn custom_graph_full_pipeline() {
    // A "bowtie with a tail": two triangles sharing a vertex, plus a path.
    let g = GraphBuilder::new(7)
        .edge(0, 1)
        .edge(1, 2)
        .edge(2, 0)
        .edge(2, 3)
        .edge(3, 4)
        .edge(4, 2)
        .edge(4, 5)
        .edge(5, 6)
        .name("bowtie+tail")
        .build_connected()
        .expect("connected by construction");
    let dm = DistanceMatrix::new(&g);
    let diam = dm.diameter();
    let ssme = Ssme::for_graph(&g).expect("nonempty");
    let spec = SpecMe::new(ssme.clone());

    for seed in 0..20 {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let init = random_configuration(&g, &ssme, &mut rng);
        let mut daemon = SynchronousDaemon::new();
        let (s, l, st) = (spec.clone(), spec.clone(), spec.clone());
        let report = measure_with_early_stop(
            &g,
            &ssme,
            &mut daemon,
            init,
            Box::new(move |c, g| s.is_safe(c, g)),
            Box::new(move |c, g| l.is_legitimate(c, g)),
            Box::new(move |c, g| st.is_legitimate(c, g)),
            100_000,
            3,
        );
        assert!(report.ended_legitimate, "seed {seed}");
        assert!(
            report.stabilization_steps as u64 <= bounds::sync_stabilization_bound(diam),
            "seed {seed}: Theorem 2 violated on a custom graph"
        );
    }
}

/// The lower-bound witness is tight on a custom irregular graph too.
#[test]
fn theorem4_tight_on_custom_graph() {
    let g = GraphBuilder::new(9)
        .edge(0, 1)
        .edge(1, 2)
        .edge(2, 3)
        .edge(3, 4)
        .edge(4, 5)
        .edge(5, 6)
        .edge(6, 7)
        .edge(7, 8)
        .edge(2, 5) // a chord
        .name("chorded-path")
        .build_connected()
        .expect("connected");
    let dm = DistanceMatrix::new(&g);
    let ssme = Ssme::for_graph(&g).expect("nonempty");
    let w = theorem4_witness(&ssme, &g, &dm).expect("diam >= 1");
    let outcome = verify_witness(&ssme, &g, &w, 500);
    assert!(outcome.both_privileged_at_t);
    assert_eq!(
        outcome.measured_stabilization as u64,
        bounds::sync_stabilization_bound(dm.diameter())
    );
}

/// Permuted identities: the whole pipeline is identity-oblivious.
#[test]
fn shuffled_identities_preserve_all_guarantees() {
    let g = generators::torus(3, 4).expect("valid dimensions");
    let dm = DistanceMatrix::new(&g);
    for id_seed in 0..4 {
        let ids = IdAssignment::shuffled(g.n(), id_seed);
        let ssme = Ssme::new(&g, dm.diameter(), ids).expect("valid ids");
        let spec = SpecMe::new(ssme.clone());
        let w = theorem4_witness(&ssme, &g, &dm).expect("diam >= 1");
        let outcome = verify_witness(&ssme, &g, &w, 500);
        assert!(outcome.both_privileged_at_t, "id seed {id_seed}");
        assert_eq!(
            outcome.measured_stabilization as u64,
            bounds::sync_stabilization_bound(dm.diameter()),
            "id seed {id_seed}"
        );
        // And liveness from a legitimate start.
        let init = Configuration::from_fn(g.n(), |_| ssme.clock().value(0).expect("0 ok"));
        assert!(spec.is_legitimate(&init, &g));
    }
}

/// Unison and SSME agree step by step: SSME *is* the unison with a bigger
/// clock (the privileged predicate does not interfere).
#[test]
fn ssme_executes_exactly_like_its_unison() {
    let g = generators::ring(6).expect("valid ring");
    let ssme = Ssme::for_graph(&g).expect("nonempty");
    let unison = AsyncUnison::new(ssme.clock());
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let init = random_configuration(&g, &ssme, &mut rng);

    let sim_ssme = Simulator::new(&g, &ssme);
    let sim_unison = Simulator::new(&g, &unison);
    let mut cfg_a = init.clone();
    let mut cfg_b = init;
    for _ in 0..200 {
        let ea = sim_ssme.enabled_vertices(&cfg_a);
        let eb = sim_unison.enabled_vertices(&cfg_b);
        assert_eq!(ea, eb, "enabled sets must agree");
        if ea.is_empty() {
            break;
        }
        cfg_a = sim_ssme.apply_action(&cfg_a, &ea).0;
        cfg_b = sim_unison.apply_action(&cfg_b, &eb).0;
        assert_eq!(cfg_a, cfg_b, "configurations must agree");
    }
}

/// The three baseline protocols and SSME coexist on the same graph types
/// and all stabilize under the same daemon implementations.
#[test]
fn all_protocols_stabilize_on_a_ring() {
    let n = 8;
    let g = generators::ring(n).expect("valid ring");

    // SSME.
    let ssme = Ssme::for_graph(&g).expect("nonempty");
    let spec = SpecMe::new(ssme.clone());
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let init = random_configuration(&g, &ssme, &mut rng);
    let mut d = RandomDistributedDaemon::new(0.5, 1);
    let (s, l, st) = (spec.clone(), spec.clone(), spec);
    let r = measure_with_early_stop(
        &g,
        &ssme,
        &mut d,
        init,
        Box::new(move |c, g| s.is_safe(c, g)),
        Box::new(move |c, g| l.is_legitimate(c, g)),
        Box::new(move |c, g| st.is_legitimate(c, g)),
        2_000_000,
        3,
    );
    assert!(r.ended_legitimate, "SSME");

    // Dijkstra.
    let dij = DijkstraRing::new(&g, n as u64).expect("K = n");
    let dspec = DijkstraSpec::new(dij.clone());
    let init = random_configuration(&g, &dij, &mut rng);
    let mut d = RandomDistributedDaemon::new(0.5, 2);
    let (s, l, st) = (dspec.clone(), dspec.clone(), dspec);
    let r = measure_with_early_stop(
        &g,
        &dij,
        &mut d,
        init,
        Box::new(move |c, g| s.is_safe(c, g)),
        Box::new(move |c, g| l.is_legitimate(c, g)),
        Box::new(move |c, g| st.is_legitimate(c, g)),
        1_000_000,
        3,
    );
    assert!(r.ended_legitimate, "Dijkstra");

    // min+1 BFS.
    let bfs = MinPlusOneBfs::new(&g, VertexId::new(0));
    let bspec = BfsSpec::new(&g, VertexId::new(0));
    let init = random_configuration(&g, &bfs, &mut rng);
    let sim = Simulator::new(&g, &bfs);
    let mut d = RandomDistributedDaemon::new(0.5, 3);
    let summary = sim.run(init, &mut d, RunLimits::with_max_steps(100_000), &mut []);
    assert_eq!(summary.stop, StopReason::Terminal, "BFS");
    assert!(bspec.is_legitimate(&summary.final_config, &g));

    // Maximal matching.
    let mm = MaximalMatching::new(&g);
    let mspec = MatchingSpec::new(mm.clone());
    let init = random_configuration(&g, &mm, &mut rng);
    let sim = Simulator::new(&g, &mm);
    let mut d = RandomDistributedDaemon::new(0.5, 4);
    let summary = sim.run(init, &mut d, RunLimits::with_max_steps(100_000), &mut []);
    assert_eq!(summary.stop, StopReason::Terminal, "matching");
    assert!(mspec.is_legitimate(&summary.final_config, &g));
}
