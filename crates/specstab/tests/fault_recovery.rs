//! Transient-fault recovery across crates: inject faults into stabilized
//! systems and verify re-stabilization within the theorem bounds.

use specstab::prelude::*;

fn stabilize(
    g: &Graph,
    ssme: &Ssme,
    init: Configuration<ClockValue>,
    horizon: usize,
) -> Configuration<ClockValue> {
    let sim = Simulator::new(g, ssme);
    let mut d = SynchronousDaemon::new();
    sim.run(init, &mut d, RunLimits::with_max_steps(horizon), &mut []).final_config
}

#[test]
fn recovery_within_theorem2_bound_for_any_fault_extent() {
    for g in [
        generators::ring(10).expect("valid"),
        generators::grid(3, 5).expect("valid"),
        generators::binary_tree(11).expect("valid"),
    ] {
        let dm = DistanceMatrix::new(&g);
        let diam = dm.diameter();
        let bound = bounds::sync_stabilization_bound(diam) as usize;
        let horizon = analysis::ssme_sync_gamma1_bound(g.n(), diam) as usize + 16;
        let ssme = Ssme::for_graph(&g).expect("nonempty");
        let spec = SpecMe::new(ssme.clone());
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        let healthy = stabilize(&g, &ssme, random_configuration(&g, &ssme, &mut rng), horizon);
        assert!(spec.is_legitimate(&healthy, &g), "{}", g.name());
        for k in [1usize, g.n() / 2, g.n()] {
            let (faulty, victims) = inject_faults(&healthy, &g, &ssme, k, &mut rng);
            assert_eq!(victims.len(), k);
            let (s, l, st) = (spec.clone(), spec.clone(), spec.clone());
            let mut d = SynchronousDaemon::new();
            let report = measure_with_early_stop(
                &g,
                &ssme,
                &mut d,
                faulty,
                Box::new(move |c, g| s.is_safe(c, g)),
                Box::new(move |c, g| l.is_legitimate(c, g)),
                Box::new(move |c, g| st.is_legitimate(c, g)),
                horizon,
                3,
            );
            assert!(report.ended_legitimate, "{} k={k}", g.name());
            assert!(
                report.stabilization_steps <= bound,
                "{} k={k}: recovery {} > bound {bound}",
                g.name(),
                report.stabilization_steps
            );
        }
    }
}

#[test]
fn single_fault_often_recovers_without_any_violation() {
    // A one-vertex corruption cannot fabricate a second privilege unless it
    // lands exactly on a privilege slot; count how often safety is even
    // disturbed.
    let g = generators::ring(12).expect("valid");
    let dm = DistanceMatrix::new(&g);
    let horizon = analysis::ssme_sync_gamma1_bound(g.n(), dm.diameter()) as usize + 16;
    let ssme = Ssme::for_graph(&g).expect("nonempty");
    let spec = SpecMe::new(ssme.clone());
    let mut rng = rand::rngs::StdRng::seed_from_u64(23);
    let healthy = stabilize(&g, &ssme, random_configuration(&g, &ssme, &mut rng), horizon);
    let mut violated = 0usize;
    let trials = 40;
    for _ in 0..trials {
        let (faulty, _) = inject_faults(&healthy, &g, &ssme, 1, &mut rng);
        let (s, l, st) = (spec.clone(), spec.clone(), spec.clone());
        let mut d = SynchronousDaemon::new();
        let report = measure_with_early_stop(
            &g,
            &ssme,
            &mut d,
            faulty,
            Box::new(move |c, g| s.is_safe(c, g)),
            Box::new(move |c, g| l.is_legitimate(c, g)),
            Box::new(move |c, g| st.is_legitimate(c, g)),
            horizon,
            3,
        );
        assert!(report.ended_legitimate);
        if report.violation_count > 0 {
            violated += 1;
        }
    }
    assert!(
        violated < trials / 2,
        "single-vertex faults should rarely violate safety ({violated}/{trials} did)"
    );
}

#[test]
fn recovery_under_asynchronous_daemon_too() {
    let g = generators::torus(3, 4).expect("valid");
    let dm = DistanceMatrix::new(&g);
    let horizon = 3_000_000;
    let ssme = Ssme::for_graph(&g).expect("nonempty");
    let spec = SpecMe::new(ssme.clone());
    let mut rng = rand::rngs::StdRng::seed_from_u64(31);
    let sync_h = analysis::ssme_sync_gamma1_bound(g.n(), dm.diameter()) as usize + 16;
    let healthy = stabilize(&g, &ssme, random_configuration(&g, &ssme, &mut rng), sync_h);
    for seed in 0..5 {
        let (faulty, _) = inject_faults(&healthy, &g, &ssme, g.n() / 2, &mut rng);
        let (s, l, st) = (spec.clone(), spec.clone(), spec.clone());
        let mut d = RandomDistributedDaemon::new(0.4, seed);
        let report = measure_with_early_stop(
            &g,
            &ssme,
            &mut d,
            faulty,
            Box::new(move |c, g| s.is_safe(c, g)),
            Box::new(move |c, g| l.is_legitimate(c, g)),
            Box::new(move |c, g| st.is_legitimate(c, g)),
            horizon,
            3,
        );
        assert!(report.ended_legitimate, "seed {seed}");
    }
}
