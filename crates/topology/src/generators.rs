//! The topology zoo: generators for the communication structures used in
//! experiments.
//!
//! Every generator returns a **connected** simple graph whose name encodes
//! the family and parameters, e.g. `"ring-8"` or `"torus-4x5"`. Generators
//! taking randomness accept an explicit seed so that experiments are
//! reproducible.

use crate::graph::{Graph, GraphBuilder, GraphError};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

fn dim_err(reason: impl Into<String>) -> GraphError {
    GraphError::InvalidDimension { reason: reason.into() }
}

/// Ring (cycle) on `n >= 3` vertices. Dijkstra's original topology.
///
/// # Errors
///
/// Returns [`GraphError::InvalidDimension`] if `n < 3`.
pub fn ring(n: usize) -> Result<Graph, GraphError> {
    if n < 3 {
        return Err(dim_err(format!("ring requires n >= 3, got {n}")));
    }
    let mut b = GraphBuilder::new(n).name(format!("ring-{n}"));
    for i in 0..n {
        b.add_edge(i, (i + 1) % n);
    }
    b.build_connected()
}

/// Path (line) on `n >= 1` vertices.
///
/// # Errors
///
/// Returns [`GraphError::InvalidDimension`] if `n == 0`.
pub fn path(n: usize) -> Result<Graph, GraphError> {
    if n == 0 {
        return Err(dim_err("path requires n >= 1"));
    }
    let mut b = GraphBuilder::new(n).name(format!("path-{n}"));
    for i in 0..n.saturating_sub(1) {
        b.add_edge(i, i + 1);
    }
    b.build_connected()
}

/// Star: one hub (vertex 0) connected to `n - 1` leaves; `n >= 2`.
///
/// # Errors
///
/// Returns [`GraphError::InvalidDimension`] if `n < 2`.
pub fn star(n: usize) -> Result<Graph, GraphError> {
    if n < 2 {
        return Err(dim_err(format!("star requires n >= 2, got {n}")));
    }
    let mut b = GraphBuilder::new(n).name(format!("star-{n}"));
    for i in 1..n {
        b.add_edge(0, i);
    }
    b.build_connected()
}

/// Complete graph `K_n`, `n >= 1`.
///
/// # Errors
///
/// Returns [`GraphError::InvalidDimension`] if `n == 0`.
pub fn complete(n: usize) -> Result<Graph, GraphError> {
    if n == 0 {
        return Err(dim_err("complete requires n >= 1"));
    }
    let mut b = GraphBuilder::new(n).name(format!("complete-{n}"));
    for i in 0..n {
        for j in (i + 1)..n {
            b.add_edge(i, j);
        }
    }
    b.build_connected()
}

/// Complete bipartite graph `K_{a,b}`, `a, b >= 1`.
///
/// # Errors
///
/// Returns [`GraphError::InvalidDimension`] if `a == 0` or `b == 0`.
pub fn complete_bipartite(a: usize, b: usize) -> Result<Graph, GraphError> {
    if a == 0 || b == 0 {
        return Err(dim_err("complete_bipartite requires a, b >= 1"));
    }
    let mut builder = GraphBuilder::new(a + b).name(format!("kbipartite-{a}x{b}"));
    for i in 0..a {
        for j in 0..b {
            builder.add_edge(i, a + j);
        }
    }
    builder.build_connected()
}

/// `rows x cols` grid, both dimensions `>= 1` and `rows * cols >= 1`.
///
/// # Errors
///
/// Returns [`GraphError::InvalidDimension`] if either dimension is zero.
pub fn grid(rows: usize, cols: usize) -> Result<Graph, GraphError> {
    if rows == 0 || cols == 0 {
        return Err(dim_err("grid requires rows, cols >= 1"));
    }
    let idx = |r: usize, c: usize| r * cols + c;
    let mut b = GraphBuilder::new(rows * cols).name(format!("grid-{rows}x{cols}"));
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b.add_edge(idx(r, c), idx(r, c + 1));
            }
            if r + 1 < rows {
                b.add_edge(idx(r, c), idx(r + 1, c));
            }
        }
    }
    b.build_connected()
}

/// `rows x cols` torus (grid with wraparound), both dimensions `>= 3`.
///
/// Dimensions below 3 would create parallel edges, which the simple-graph
/// model forbids.
///
/// # Errors
///
/// Returns [`GraphError::InvalidDimension`] if either dimension is `< 3`.
pub fn torus(rows: usize, cols: usize) -> Result<Graph, GraphError> {
    if rows < 3 || cols < 3 {
        return Err(dim_err(format!("torus requires rows, cols >= 3, got {rows}x{cols}")));
    }
    let idx = |r: usize, c: usize| r * cols + c;
    let mut b = GraphBuilder::new(rows * cols).name(format!("torus-{rows}x{cols}"));
    for r in 0..rows {
        for c in 0..cols {
            b.add_edge(idx(r, c), idx(r, (c + 1) % cols));
            b.add_edge(idx(r, c), idx((r + 1) % rows, c));
        }
    }
    b.build_connected()
}

/// Hypercube of dimension `d >= 1` (so `2^d` vertices).
///
/// # Errors
///
/// Returns [`GraphError::InvalidDimension`] if `d == 0` or `d > 16`.
pub fn hypercube(d: u32) -> Result<Graph, GraphError> {
    if d == 0 || d > 16 {
        return Err(dim_err(format!("hypercube requires 1 <= d <= 16, got {d}")));
    }
    let n = 1usize << d;
    let mut b = GraphBuilder::new(n).name(format!("hypercube-{d}"));
    for v in 0..n {
        for bit in 0..d {
            let u = v ^ (1usize << bit);
            if u > v {
                b.add_edge(v, u);
            }
        }
    }
    b.build_connected()
}

/// Complete binary tree with `n >= 1` vertices (heap-shaped).
///
/// # Errors
///
/// Returns [`GraphError::InvalidDimension`] if `n == 0`.
pub fn binary_tree(n: usize) -> Result<Graph, GraphError> {
    if n == 0 {
        return Err(dim_err("binary_tree requires n >= 1"));
    }
    let mut b = GraphBuilder::new(n).name(format!("bintree-{n}"));
    for i in 1..n {
        b.add_edge(i, (i - 1) / 2);
    }
    b.build_connected()
}

/// Uniformly random labelled tree on `n >= 1` vertices (Prüfer-free random
/// attachment: vertex `i` attaches to a uniform earlier vertex).
///
/// # Errors
///
/// Returns [`GraphError::InvalidDimension`] if `n == 0`.
pub fn random_tree(n: usize, seed: u64) -> Result<Graph, GraphError> {
    if n == 0 {
        return Err(dim_err("random_tree requires n >= 1"));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n).name(format!("rtree-{n}-s{seed}"));
    for i in 1..n {
        let p = rng.gen_range(0..i);
        b.add_edge(i, p);
    }
    b.build_connected()
}

/// Caterpillar: a spine path of `spine` vertices, each carrying `legs`
/// pendant leaves.
///
/// # Errors
///
/// Returns [`GraphError::InvalidDimension`] if `spine == 0`.
pub fn caterpillar(spine: usize, legs: usize) -> Result<Graph, GraphError> {
    if spine == 0 {
        return Err(dim_err("caterpillar requires spine >= 1"));
    }
    let n = spine + spine * legs;
    let mut b = GraphBuilder::new(n).name(format!("caterpillar-{spine}x{legs}"));
    for i in 0..spine.saturating_sub(1) {
        b.add_edge(i, i + 1);
    }
    for s in 0..spine {
        for l in 0..legs {
            b.add_edge(s, spine + s * legs + l);
        }
    }
    b.build_connected()
}

/// Lollipop: a clique `K_k` with a path of `p` extra vertices attached.
///
/// # Errors
///
/// Returns [`GraphError::InvalidDimension`] if `k < 3`.
pub fn lollipop(k: usize, p: usize) -> Result<Graph, GraphError> {
    if k < 3 {
        return Err(dim_err(format!("lollipop requires clique size >= 3, got {k}")));
    }
    let n = k + p;
    let mut b = GraphBuilder::new(n).name(format!("lollipop-{k}+{p}"));
    for i in 0..k {
        for j in (i + 1)..k {
            b.add_edge(i, j);
        }
    }
    for i in 0..p {
        let prev = if i == 0 { k - 1 } else { k + i - 1 };
        b.add_edge(prev, k + i);
    }
    b.build_connected()
}

/// Wheel: a hub (vertex 0) connected to every vertex of a ring on
/// `n - 1 >= 3` rim vertices.
///
/// # Errors
///
/// Returns [`GraphError::InvalidDimension`] if `n < 4`.
pub fn wheel(n: usize) -> Result<Graph, GraphError> {
    if n < 4 {
        return Err(dim_err(format!("wheel requires n >= 4, got {n}")));
    }
    let rim = n - 1;
    let mut b = GraphBuilder::new(n).name(format!("wheel-{n}"));
    for i in 0..rim {
        b.add_edge(1 + i, 1 + (i + 1) % rim);
        b.add_edge(0, 1 + i);
    }
    b.build_connected()
}

/// The Petersen graph (n = 10, m = 15, diameter 2, girth 5).
///
/// A classic 3-regular graph whose longest hole has length 6 despite the
/// small diameter — useful for exercising the unison parameter bounds.
#[must_use]
pub fn petersen() -> Graph {
    let mut b = GraphBuilder::new(10).name("petersen");
    for i in 0..5 {
        b.add_edge(i, (i + 1) % 5); // outer pentagon
        b.add_edge(5 + i, 5 + (i + 2) % 5); // inner pentagram
        b.add_edge(i, 5 + i); // spokes
    }
    b.build_connected().expect("petersen graph is connected by construction")
}

/// Connected Erdős–Rényi graph: `G(n, p)` conditioned on connectivity by
/// first laying down a uniform random spanning tree, then adding each other
/// edge independently with probability `p`.
///
/// # Errors
///
/// Returns [`GraphError::InvalidDimension`] if `n == 0` or `p` is not in
/// `[0, 1]`.
pub fn erdos_renyi_connected(n: usize, p: f64, seed: u64) -> Result<Graph, GraphError> {
    if n == 0 {
        return Err(dim_err("erdos_renyi_connected requires n >= 1"));
    }
    if !(0.0..=1.0).contains(&p) {
        return Err(dim_err(format!("edge probability must be in [0,1], got {p}")));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n).name(format!("er-{n}-p{p:.2}-s{seed}"));
    // Random spanning tree: random permutation, attach each vertex to a
    // uniformly random earlier vertex in the permutation.
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(&mut rng);
    for i in 1..n {
        let j = rng.gen_range(0..i);
        b.add_edge(order[i], order[j]);
    }
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.gen_bool(p) {
                b.add_edge(u, v);
            }
        }
    }
    b.build_connected()
}

/// Two cliques of size `k` joined by a path of `p` vertices (a "barbell").
///
/// # Errors
///
/// Returns [`GraphError::InvalidDimension`] if `k < 3`.
pub fn barbell(k: usize, p: usize) -> Result<Graph, GraphError> {
    if k < 3 {
        return Err(dim_err(format!("barbell requires clique size >= 3, got {k}")));
    }
    let n = 2 * k + p;
    let mut b = GraphBuilder::new(n).name(format!("barbell-{k}+{p}+{k}"));
    for base in [0, k + p] {
        for i in 0..k {
            for j in (i + 1)..k {
                b.add_edge(base + i, base + j);
            }
        }
    }
    // Chain: last vertex of clique 1 -- path -- first vertex of clique 2.
    let mut prev = k - 1;
    for i in 0..p {
        b.add_edge(prev, k + i);
        prev = k + i;
    }
    b.add_edge(prev, k + p);
    b.build_connected()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::DistanceMatrix;

    #[test]
    fn ring_structure() {
        let g = ring(8).unwrap();
        assert_eq!(g.n(), 8);
        assert_eq!(g.m(), 8);
        assert!(g.vertices().all(|v| g.degree(v) == 2));
        assert_eq!(DistanceMatrix::new(&g).diameter(), 4);
    }

    #[test]
    fn ring_rejects_small() {
        assert!(ring(2).is_err());
    }

    #[test]
    fn path_structure() {
        let g = path(5).unwrap();
        assert_eq!(g.m(), 4);
        assert_eq!(DistanceMatrix::new(&g).diameter(), 4);
    }

    #[test]
    fn single_vertex_path() {
        let g = path(1).unwrap();
        assert_eq!(g.n(), 1);
        assert_eq!(g.m(), 0);
    }

    #[test]
    fn star_structure() {
        let g = star(6).unwrap();
        assert_eq!(g.m(), 5);
        assert_eq!(g.max_degree(), 5);
        assert_eq!(DistanceMatrix::new(&g).diameter(), 2);
    }

    #[test]
    fn complete_structure() {
        let g = complete(5).unwrap();
        assert_eq!(g.m(), 10);
        assert_eq!(DistanceMatrix::new(&g).diameter(), 1);
    }

    #[test]
    fn complete_bipartite_structure() {
        let g = complete_bipartite(2, 3).unwrap();
        assert_eq!(g.n(), 5);
        assert_eq!(g.m(), 6);
        assert_eq!(DistanceMatrix::new(&g).diameter(), 2);
    }

    #[test]
    fn grid_structure() {
        let g = grid(3, 4).unwrap();
        assert_eq!(g.n(), 12);
        assert_eq!(g.m(), 3 * 3 + 2 * 4); // rows*(cols-1) + (rows-1)*cols
        assert_eq!(DistanceMatrix::new(&g).diameter(), 5);
    }

    #[test]
    fn torus_structure() {
        let g = torus(3, 3).unwrap();
        assert_eq!(g.n(), 9);
        assert_eq!(g.m(), 18);
        assert!(g.vertices().all(|v| g.degree(v) == 4));
        assert_eq!(DistanceMatrix::new(&g).diameter(), 2);
    }

    #[test]
    fn torus_rejects_small_dims() {
        assert!(torus(2, 5).is_err());
        assert!(torus(5, 2).is_err());
    }

    #[test]
    fn hypercube_structure() {
        let g = hypercube(4).unwrap();
        assert_eq!(g.n(), 16);
        assert_eq!(g.m(), 32);
        assert!(g.vertices().all(|v| g.degree(v) == 4));
        assert_eq!(DistanceMatrix::new(&g).diameter(), 4);
    }

    #[test]
    fn binary_tree_structure() {
        let g = binary_tree(7).unwrap();
        assert_eq!(g.m(), 6);
        assert!(!g.has_cycle());
        assert_eq!(DistanceMatrix::new(&g).diameter(), 4);
    }

    #[test]
    fn random_tree_is_tree_and_deterministic() {
        let g1 = random_tree(20, 42).unwrap();
        let g2 = random_tree(20, 42).unwrap();
        assert_eq!(g1, g2);
        assert_eq!(g1.m(), 19);
        assert!(!g1.has_cycle());
    }

    #[test]
    fn random_tree_seed_changes_graph() {
        let g1 = random_tree(20, 1).unwrap();
        let g2 = random_tree(20, 2).unwrap();
        assert_ne!(g1.edges(), g2.edges());
    }

    #[test]
    fn caterpillar_structure() {
        let g = caterpillar(4, 2).unwrap();
        assert_eq!(g.n(), 12);
        assert!(!g.has_cycle());
    }

    #[test]
    fn lollipop_structure() {
        let g = lollipop(4, 3).unwrap();
        assert_eq!(g.n(), 7);
        assert_eq!(g.m(), 6 + 3);
        assert_eq!(DistanceMatrix::new(&g).diameter(), 4);
    }

    #[test]
    fn wheel_structure() {
        let g = wheel(6).unwrap();
        assert_eq!(g.m(), 10);
        assert_eq!(DistanceMatrix::new(&g).diameter(), 2);
    }

    #[test]
    fn petersen_structure() {
        let g = petersen();
        assert_eq!(g.n(), 10);
        assert_eq!(g.m(), 15);
        assert!(g.vertices().all(|v| g.degree(v) == 3));
        assert_eq!(DistanceMatrix::new(&g).diameter(), 2);
    }

    #[test]
    fn erdos_renyi_connected_is_connected() {
        for seed in 0..5 {
            let g = erdos_renyi_connected(30, 0.05, seed).unwrap();
            assert!(g.is_connected(), "seed {seed} produced a disconnected graph");
        }
    }

    #[test]
    fn erdos_renyi_rejects_bad_p() {
        assert!(erdos_renyi_connected(5, 1.5, 0).is_err());
        assert!(erdos_renyi_connected(5, -0.1, 0).is_err());
    }

    #[test]
    fn erdos_renyi_p_one_is_complete() {
        let g = erdos_renyi_connected(6, 1.0, 7).unwrap();
        assert_eq!(g.m(), 15);
    }

    #[test]
    fn barbell_structure() {
        let g = barbell(3, 2).unwrap();
        assert_eq!(g.n(), 8);
        assert!(g.is_connected());
        assert_eq!(DistanceMatrix::new(&g).diameter(), 5);
    }
}
