//! Cycle space, minimum cycle bases and the cyclomatic characteristic
//! `cyclo(g)`.
//!
//! Boulinier, Petit & Villain prove their asynchronous unison live when the
//! clock period satisfies `K > cyclo(g)`, where `cyclo(g)` is the *cyclomatic
//! characteristic*: the length of the longest cycle in a shortest (minimum
//! total length) maximal cycle basis of `g`, or `2` if `g` is acyclic. All
//! minimum cycle bases of a graph share the same sorted length sequence, so
//! `cyclo(g)` is well defined.
//!
//! This module implements Horton's classical algorithm: generate the
//! candidate set `{ SP(v,x) + (x,y) + SP(y,v) }`, sort by length, and
//! extract a maximal independent family over GF(2). BFS trees use
//! smallest-index tie-breaking, which makes shortest paths consistent — the
//! standard exactness condition for Horton's algorithm.

use crate::graph::{Graph, VertexId};
use std::collections::HashMap;

/// A cycle expressed over the graph's edge list.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BasisCycle {
    /// Indices into [`Graph::edges`] of the edges of this cycle.
    pub edge_indices: Vec<usize>,
}

impl BasisCycle {
    /// Number of edges (= number of vertices) of the cycle.
    #[must_use]
    pub fn len(&self) -> usize {
        self.edge_indices.len()
    }

    /// Whether the cycle is empty (never true for basis members).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.edge_indices.is_empty()
    }
}

/// A minimum cycle basis of a connected graph.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CycleBasis {
    /// Basis cycles, sorted by nondecreasing length.
    pub cycles: Vec<BasisCycle>,
}

impl CycleBasis {
    /// Dimension of the cycle space (`m - n + 1` for connected graphs).
    #[must_use]
    pub fn dimension(&self) -> usize {
        self.cycles.len()
    }

    /// Total length of the basis.
    #[must_use]
    pub fn total_length(&self) -> usize {
        self.cycles.iter().map(BasisCycle::len).sum()
    }

    /// Length of the longest basis cycle, or `None` for acyclic graphs.
    #[must_use]
    pub fn max_cycle_length(&self) -> Option<usize> {
        self.cycles.iter().map(BasisCycle::len).max()
    }
}

/// Cyclomatic number `m - n + 1` of a connected graph (dimension of its
/// cycle space).
///
/// # Panics
///
/// Panics if the graph is disconnected (the simulation model requires
/// connected communication graphs).
#[must_use]
pub fn cyclomatic_number(g: &Graph) -> usize {
    assert!(g.is_connected(), "cyclomatic_number requires a connected graph");
    g.m() + 1 - g.n()
}

/// BFS tree with smallest-index tie-breaking: `(dist, parent)` per vertex.
fn bfs_tree(g: &Graph, root: VertexId) -> (Vec<u32>, Vec<usize>) {
    let n = g.n();
    let mut dist = vec![u32::MAX; n];
    let mut parent = vec![usize::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    dist[root.index()] = 0;
    queue.push_back(root);
    while let Some(u) = queue.pop_front() {
        // Neighbor lists are sorted, so parents are smallest-index among
        // equal-distance predecessors.
        for &w in g.neighbors(u) {
            if dist[w.index()] == u32::MAX {
                dist[w.index()] = dist[u.index()] + 1;
                parent[w.index()] = u.index();
                queue.push_back(w);
            }
        }
    }
    (dist, parent)
}

/// Sparse GF(2) vector over edge indices, kept sorted.
type EdgeVec = Vec<usize>;

fn xor_sorted(a: &[usize], b: &[usize]) -> EdgeVec {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// Computes a minimum cycle basis with Horton's algorithm.
///
/// Returns an empty basis for acyclic graphs.
///
/// # Panics
///
/// Panics if the graph is disconnected.
#[must_use]
pub fn minimum_cycle_basis(g: &Graph) -> CycleBasis {
    let nu = cyclomatic_number(g);
    if nu == 0 {
        return CycleBasis { cycles: Vec::new() };
    }
    let edge_index: HashMap<(VertexId, VertexId), usize> =
        g.edges().iter().copied().enumerate().map(|(i, e)| (e, i)).collect();
    let eidx = |a: usize, b: usize| -> usize {
        let (u, v) = (VertexId::new(a.min(b)), VertexId::new(a.max(b)));
        *edge_index.get(&(u, v)).expect("edge must exist")
    };

    // Horton candidates: for every root v and edge (x, y), the cycle
    // SP(v,x) + (x,y) + SP(y,v), valid when the two tree paths intersect
    // only at v.
    let mut candidates: Vec<(usize, EdgeVec)> = Vec::new();
    let mut seen: HashMap<EdgeVec, ()> = HashMap::new();
    for v in g.vertices() {
        let (dist, parent) = bfs_tree(g, v);
        let tree_path = |mut x: usize| -> Vec<usize> {
            let mut verts = vec![x];
            while parent[x] != usize::MAX {
                x = parent[x];
                verts.push(x);
            }
            verts
        };
        for &(x, y) in g.edges() {
            let (xi, yi) = (x.index(), y.index());
            if dist[xi] == u32::MAX || dist[yi] == u32::MAX {
                continue;
            }
            if parent[xi] == yi || parent[yi] == xi {
                continue; // tree edge of this BFS: degenerate candidate
            }
            let px = tree_path(xi);
            let py = tree_path(yi);
            // Paths must share exactly the root v.
            let share: Vec<&usize> = px.iter().filter(|a| py.contains(a)).collect();
            if share.len() != 1 || *share[0] != v.index() {
                continue;
            }
            let mut edges: EdgeVec = Vec::new();
            for w in px.windows(2) {
                edges.push(eidx(w[0], w[1]));
            }
            for w in py.windows(2) {
                edges.push(eidx(w[0], w[1]));
            }
            edges.push(eidx(xi, yi));
            edges.sort_unstable();
            debug_assert!(edges.windows(2).all(|w| w[0] != w[1]), "simple cycle candidate");
            let len = edges.len();
            if seen.insert(edges.clone(), ()).is_none() {
                candidates.push((len, edges));
            }
        }
    }
    candidates.sort_by_key(|(len, edges)| (*len, edges.clone()));

    // Greedy GF(2) independence: reduced echelon accumulator.
    let mut basis_reduced: Vec<EdgeVec> = Vec::new(); // reduced forms, by pivot
    let mut chosen: Vec<BasisCycle> = Vec::new();
    for (_, cand) in candidates {
        let mut red = cand.clone();
        for b in &basis_reduced {
            if !red.is_empty()
                && !b.is_empty()
                && red[0] >= b[0]
                && red.binary_search(&b[0]).is_ok()
            {
                red = xor_sorted(&red, b);
            }
        }
        if !red.is_empty() {
            basis_reduced.push(red);
            basis_reduced.sort_by_key(|v| v[0]);
            chosen.push(BasisCycle { edge_indices: cand });
            if chosen.len() == nu {
                break;
            }
        }
    }
    if chosen.len() < nu {
        // Fallback for pathological shortest-path ties: complete the basis
        // with fundamental cycles of a BFS tree. The result is then a valid
        // cycle basis whose maximum length conservatively upper-bounds the
        // true cyclomatic characteristic (safe for `K > cyclo` validation).
        let root = VertexId::new(0);
        let (_, parent) = bfs_tree(g, root);
        let tree_path = |mut x: usize| -> Vec<usize> {
            let mut verts = vec![x];
            while parent[x] != usize::MAX {
                x = parent[x];
                verts.push(x);
            }
            verts
        };
        for &(x, y) in g.edges() {
            if chosen.len() == nu {
                break;
            }
            if parent[x.index()] == y.index() || parent[y.index()] == x.index() {
                continue; // tree edge
            }
            let mut edges: EdgeVec = Vec::new();
            for w in tree_path(x.index()).windows(2) {
                edges.push(eidx(w[0], w[1]));
            }
            for w in tree_path(y.index()).windows(2) {
                edges.push(eidx(w[0], w[1]));
            }
            edges.push(eidx(x.index(), y.index()));
            edges.sort_unstable();
            // Shared tree-path prefix edges cancel out over GF(2).
            let mut cancelled: EdgeVec = Vec::new();
            let mut i = 0;
            while i < edges.len() {
                if i + 1 < edges.len() && edges[i] == edges[i + 1] {
                    i += 2;
                } else {
                    cancelled.push(edges[i]);
                    i += 1;
                }
            }
            let mut red = cancelled.clone();
            for b in &basis_reduced {
                if !red.is_empty() && red.binary_search(&b[0]).is_ok() {
                    red = xor_sorted(&red, b);
                }
            }
            if !red.is_empty() {
                basis_reduced.push(red);
                basis_reduced.sort_by_key(|v| v[0]);
                chosen.push(BasisCycle { edge_indices: cancelled });
            }
        }
    }
    assert_eq!(chosen.len(), nu, "cycle basis must span the cycle space of a connected graph");
    chosen.sort_by_key(BasisCycle::len);
    CycleBasis { cycles: chosen }
}

/// `cyclo(g)`: the cyclomatic characteristic with the paper's convention —
/// length of the longest cycle of a minimum cycle basis if `g` contains a
/// cycle, `2` otherwise.
///
/// # Panics
///
/// Panics if the graph is disconnected.
#[must_use]
pub fn cyclo(g: &Graph) -> usize {
    minimum_cycle_basis(g).max_cycle_length().unwrap_or(2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn tree_has_trivial_cycle_space() {
        let g = generators::binary_tree(15).unwrap();
        assert_eq!(cyclomatic_number(&g), 0);
        assert_eq!(minimum_cycle_basis(&g).dimension(), 0);
        assert_eq!(cyclo(&g), 2);
    }

    #[test]
    fn ring_basis_is_the_ring() {
        for n in 3..10 {
            let g = generators::ring(n).unwrap();
            let basis = minimum_cycle_basis(&g);
            assert_eq!(basis.dimension(), 1, "ring-{n}");
            assert_eq!(basis.cycles[0].len(), n);
            assert_eq!(cyclo(&g), n);
        }
    }

    #[test]
    fn grid_basis_is_all_faces() {
        for (r, c) in [(2, 2), (3, 3), (3, 5), (4, 4)] {
            let g = generators::grid(r, c).unwrap();
            let basis = minimum_cycle_basis(&g);
            assert_eq!(basis.dimension(), (r - 1) * (c - 1), "grid-{r}x{c}");
            assert!(basis.cycles.iter().all(|cy| cy.len() == 4));
            assert_eq!(cyclo(&g), 4);
        }
    }

    #[test]
    fn complete_graph_basis_is_triangles() {
        for n in 3..7 {
            let g = generators::complete(n).unwrap();
            let basis = minimum_cycle_basis(&g);
            assert_eq!(basis.dimension(), g.m() + 1 - n);
            assert!(basis.cycles.iter().all(|cy| cy.len() == 3), "K_{n}");
            assert_eq!(cyclo(&g), 3);
        }
    }

    #[test]
    fn wheel_basis_is_triangles() {
        let g = generators::wheel(8).unwrap();
        assert_eq!(cyclo(&g), 3);
    }

    #[test]
    fn petersen_basis_is_pentagons() {
        let g = generators::petersen();
        let basis = minimum_cycle_basis(&g);
        assert_eq!(basis.dimension(), 6);
        assert!(basis.cycles.iter().all(|cy| cy.len() == 5));
        assert_eq!(cyclo(&g), 5);
    }

    #[test]
    fn hypercube_basis_is_squares() {
        let g = generators::hypercube(3).unwrap();
        let basis = minimum_cycle_basis(&g);
        assert_eq!(basis.dimension(), 12 - 8 + 1);
        assert!(basis.cycles.iter().all(|cy| cy.len() == 4));
        assert_eq!(cyclo(&g), 4);
    }

    #[test]
    fn basis_cycles_have_even_degree_everywhere() {
        // Each basis element is a cycle (or union): every vertex touches an
        // even number of its edges.
        let g = generators::erdos_renyi_connected(12, 0.3, 5).unwrap();
        let basis = minimum_cycle_basis(&g);
        for cy in &basis.cycles {
            let mut deg = vec![0usize; g.n()];
            for &ei in &cy.edge_indices {
                let (u, v) = g.edges()[ei];
                deg[u.index()] += 1;
                deg[v.index()] += 1;
            }
            assert!(deg.iter().all(|&d| d % 2 == 0));
        }
    }

    #[test]
    fn cyclo_bounded_by_n_on_random_graphs() {
        for seed in 0..5 {
            let g = generators::erdos_renyi_connected(14, 0.2, seed).unwrap();
            let c = cyclo(&g);
            assert!((2..=g.n()).contains(&c), "{}: cyclo {}", g.name(), c);
        }
    }

    #[test]
    fn torus_cyclo_at_most_girth_bound() {
        // Torus 3x3 has 3-cycles (wrapped rows/columns) and 4-cycle faces;
        // the MCB mixes them but never exceeds 4.
        let g = generators::torus(3, 3).unwrap();
        let basis = minimum_cycle_basis(&g);
        assert_eq!(basis.dimension(), 18 - 9 + 1);
        assert!(basis.max_cycle_length().unwrap() <= 4);
    }

    #[test]
    fn basis_total_length_is_minimal_for_ring_with_chord() {
        // C6 plus chord (0,3): MCB = two 4-cycles, total 8.
        let g = crate::graph::GraphBuilder::new(6)
            .edge(0, 1)
            .edge(1, 2)
            .edge(2, 3)
            .edge(3, 4)
            .edge(4, 5)
            .edge(5, 0)
            .edge(0, 3)
            .build()
            .unwrap();
        let basis = minimum_cycle_basis(&g);
        assert_eq!(basis.dimension(), 2);
        assert_eq!(basis.total_length(), 8);
        assert_eq!(cyclo(&g), 4);
    }
}
