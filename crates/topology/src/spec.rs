//! Textual topology specs: `"ring:12"`, `"torus:4x5"`, `"er:16:0.3"`, ...
//!
//! One compact, `FromStr`-friendly syntax shared by every CLI and by the
//! campaign engine's scenario matrices (previously each binary hand-rolled
//! its own parser). A spec is `kind[:arg[:arg2]]`:
//!
//! | spec | graph |
//! |------|-------|
//! | `ring:<n>` | cycle on `n` vertices |
//! | `path:<n>` | path on `n` vertices |
//! | `star:<n>` | star on `n` vertices |
//! | `complete:<n>` | complete graph |
//! | `grid:<r>x<c>` / `torus:<r>x<c>` | 2-D grid / torus |
//! | `hypercube:<d>` | `d`-dimensional hypercube |
//! | `tree:<n>[:seed]` | uniform random tree (default seed 42) |
//! | `bintree:<n>` | complete binary tree shape |
//! | `caterpillar:<spine>x<legs>` | caterpillar tree |
//! | `wheel:<n>` | wheel graph |
//! | `lollipop:<k>x<p>` / `barbell:<k>x<p>` | clique + path hybrids |
//! | `petersen` | the Petersen graph |
//! | `er:<n>:<p>[:seed]` | connected Erdős–Rényi sample (default seed 42) |
//! | `file:<path>` | edge list parsed by [`crate::io::parse_edge_list`] |

use crate::generators;
use crate::graph::Graph;
use crate::io;
use std::fmt;

/// Why a topology spec failed to parse.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpecError(String);

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "topology spec error: {}", self.0)
    }
}

impl std::error::Error for SpecError {}

fn err(msg: impl Into<String>) -> SpecError {
    SpecError(msg.into())
}

fn parse_n(s: &str) -> Result<usize, SpecError> {
    s.parse::<usize>().map_err(|e| err(format!("bad size '{s}': {e}")))
}

fn parse_pair(arg: &str) -> Result<(usize, usize), SpecError> {
    let (a, b) =
        arg.split_once('x').ok_or_else(|| err(format!("expected <a>x<b>, got '{arg}'")))?;
    Ok((parse_n(a)?, parse_n(b)?))
}

fn parse_seed(s: &str) -> Result<u64, SpecError> {
    if s.is_empty() {
        Ok(42)
    } else {
        s.parse::<u64>().map_err(|e| err(format!("bad seed '{s}': {e}")))
    }
}

/// The spec grammar accepted by [`parse_spec`], for usage strings.
pub const SPEC_GRAMMAR: &str = "ring:<n>  path:<n>  star:<n>  complete:<n>  grid:<r>x<c>  \
torus:<r>x<c>  hypercube:<d>  tree:<n>[:seed]  bintree:<n>  caterpillar:<s>x<l>  wheel:<n>  \
lollipop:<k>x<p>  barbell:<k>x<p>  petersen  er:<n>:<p>[:seed]  file:<path>";

/// Parses a topology spec into a graph.
///
/// # Errors
///
/// Returns [`SpecError`] on unknown kinds, malformed arguments, or
/// generator rejections (e.g. `ring:2`).
pub fn parse_spec(spec: &str) -> Result<Graph, SpecError> {
    let ge = |e: crate::graph::GraphError| err(e.to_string());
    if let Some(path) = spec.strip_prefix("file:") {
        let text = std::fs::read_to_string(path).map_err(|e| err(format!("{path}: {e}")))?;
        return io::parse_edge_list(&text).map_err(|e| err(e.to_string()));
    }
    let parts: Vec<&str> = spec.split(':').collect();
    let kind = parts[0];
    let max_segments = match kind {
        "er" => 4,
        "tree" => 3,
        "petersen" => 1,
        _ => 2,
    };
    if parts.len() > max_segments {
        return Err(err(format!("too many ':' segments in '{spec}'")));
    }
    let arg = parts.get(1).copied().unwrap_or("");
    let arg2 = parts.get(2).copied().unwrap_or("");
    match kind {
        "ring" => generators::ring(parse_n(arg)?).map_err(ge),
        "path" => generators::path(parse_n(arg)?).map_err(ge),
        "star" => generators::star(parse_n(arg)?).map_err(ge),
        "complete" => generators::complete(parse_n(arg)?).map_err(ge),
        "wheel" => generators::wheel(parse_n(arg)?).map_err(ge),
        "bintree" => generators::binary_tree(parse_n(arg)?).map_err(ge),
        "hypercube" => {
            let d = arg.parse::<u32>().map_err(|e| err(format!("bad dimension '{arg}': {e}")))?;
            generators::hypercube(d).map_err(ge)
        }
        "tree" => generators::random_tree(parse_n(arg)?, parse_seed(arg2)?).map_err(ge),
        "petersen" => Ok(generators::petersen()),
        "grid" => {
            let (r, c) = parse_pair(arg)?;
            generators::grid(r, c).map_err(ge)
        }
        "torus" => {
            let (r, c) = parse_pair(arg)?;
            generators::torus(r, c).map_err(ge)
        }
        "caterpillar" => {
            let (s, l) = parse_pair(arg)?;
            generators::caterpillar(s, l).map_err(ge)
        }
        "lollipop" => {
            let (k, p) = parse_pair(arg)?;
            generators::lollipop(k, p).map_err(ge)
        }
        "barbell" => {
            let (k, p) = parse_pair(arg)?;
            generators::barbell(k, p).map_err(ge)
        }
        "er" => {
            let n = parse_n(arg)?;
            let p = arg2.parse::<f64>().map_err(|e| err(format!("bad probability: {e}")))?;
            let seed = parse_seed(parts.get(3).copied().unwrap_or(""))?;
            generators::erdos_renyi_connected(n, p, seed).map_err(ge)
        }
        other => Err(err(format!("unknown topology kind '{other}' (grammar: {SPEC_GRAMMAR})"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_zoo() {
        for (spec, n) in [
            ("ring:12", 12),
            ("path:5", 5),
            ("star:7", 7),
            ("complete:4", 4),
            ("grid:3x4", 12),
            ("torus:4x5", 20),
            ("hypercube:3", 8),
            ("tree:9", 9),
            ("tree:9:7", 9),
            ("bintree:10", 10),
            ("caterpillar:4x2", 12),
            ("wheel:6", 6),
            ("lollipop:4x3", 7),
            ("barbell:3x2", 8),
            ("petersen", 10),
            ("er:8:0.4", 8),
        ] {
            let g = parse_spec(spec).unwrap_or_else(|e| panic!("{spec}: {e}"));
            assert_eq!(g.n(), n, "vertex count of {spec}");
            assert!(g.is_connected(), "{spec} must be connected");
        }
    }

    #[test]
    fn tree_seed_changes_shape_deterministically() {
        let a = parse_spec("tree:12:1").unwrap();
        let b = parse_spec("tree:12:1").unwrap();
        let c = parse_spec("tree:12:2").unwrap();
        assert_eq!(a.edges(), b.edges());
        assert_ne!(a.edges(), c.edges());
    }

    #[test]
    fn rejects_malformed_specs() {
        for bad in ["", "ring", "ring:x", "grid:3", "grid:3y4", "mobius:5", "er:8", "ring:5:9:2"] {
            assert!(parse_spec(bad).is_err(), "'{bad}' should be rejected");
        }
    }

    #[test]
    fn file_specs_round_trip() {
        let g = generators::ring(6).unwrap();
        let dir = std::env::temp_dir().join("specstab-spec-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ring6.edges");
        std::fs::write(&path, io::to_edge_list(&g)).unwrap();
        let parsed = parse_spec(&format!("file:{}", path.display())).unwrap();
        assert_eq!(parsed.n(), 6);
        assert_eq!(parsed.edges(), g.edges());
    }
}
