//! Export helpers: Graphviz DOT and a terminal summary.

use crate::graph::Graph;
use std::fmt::Write as _;

/// Renders the graph in Graphviz DOT format (undirected).
///
/// ```
/// use specstab_topology::{generators, dot};
/// let g = generators::ring(3).expect("n >= 3");
/// let out = dot::to_dot(&g);
/// assert!(out.starts_with("graph"));
/// assert!(out.contains("v0 -- v1"));
/// ```
#[must_use]
pub fn to_dot(g: &Graph) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "graph \"{}\" {{", g.name());
    for v in g.vertices() {
        let _ = writeln!(out, "  {v};");
    }
    for &(u, v) in g.edges() {
        let _ = writeln!(out, "  {u} -- {v};");
    }
    out.push_str("}\n");
    out
}

/// One-line structural summary used by experiment reports.
#[must_use]
pub fn summary(g: &Graph) -> String {
    format!(
        "{name}: n={n} m={m} degmin={dmin} degmax={dmax}",
        name = g.name(),
        n = g.n(),
        m = g.m(),
        dmin = g.min_degree(),
        dmax = g.max_degree(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn dot_lists_all_edges_and_vertices() {
        let g = generators::path(3).unwrap();
        let out = to_dot(&g);
        assert!(out.contains("v0;"));
        assert!(out.contains("v2;"));
        assert!(out.contains("v0 -- v1;"));
        assert!(out.contains("v1 -- v2;"));
        assert!(out.ends_with("}\n"));
    }

    #[test]
    fn summary_contains_counts() {
        let g = generators::star(5).unwrap();
        let s = summary(&g);
        assert!(s.contains("n=5"));
        assert!(s.contains("m=4"));
        assert!(s.contains("degmax=4"));
    }
}
