//! BFS-based graph metrics: distances, eccentricities, diameter, girth.
//!
//! The paper's complexity statements are functions of `n`, `m` and
//! `diam(g)`; the SSME protocol itself takes `diam(g)` as a constant known
//! to every vertex. [`DistanceMatrix`] provides exact all-pairs shortest
//! path distances via one BFS per vertex (`O(n·m)`), which is ample at
//! simulation scale.

use crate::graph::{Graph, VertexId};
use std::collections::VecDeque;

/// Distance not defined (vertices in different components).
const UNREACHED: u32 = u32::MAX;

/// Single-source BFS distances from `source`.
///
/// Unreachable vertices get `None`.
#[must_use]
pub fn bfs_distances(g: &Graph, source: VertexId) -> Vec<Option<u32>> {
    let mut dist = vec![UNREACHED; g.n()];
    let mut queue = VecDeque::new();
    dist[source.index()] = 0;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let du = dist[u.index()];
        for &w in g.neighbors(u) {
            if dist[w.index()] == UNREACHED {
                dist[w.index()] = du + 1;
                queue.push_back(w);
            }
        }
    }
    dist.into_iter().map(|d| (d != UNREACHED).then_some(d)).collect()
}

/// All-pairs shortest-path distances of a **connected** graph.
///
/// ```
/// use specstab_topology::{generators, metrics::DistanceMatrix, VertexId};
///
/// let g = generators::ring(6).expect("n >= 3");
/// let dm = DistanceMatrix::new(&g);
/// assert_eq!(dm.dist(VertexId::new(0), VertexId::new(3)), 3);
/// assert_eq!(dm.diameter(), 3);
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DistanceMatrix {
    n: usize,
    dist: Vec<u32>, // row-major n x n
}

impl DistanceMatrix {
    /// Computes all-pairs distances with one BFS per vertex.
    ///
    /// # Panics
    ///
    /// Panics if the graph is disconnected; the simulation model assumes
    /// connected communication graphs and every generator guarantees it.
    #[must_use]
    pub fn new(g: &Graph) -> Self {
        let n = g.n();
        let mut dist = vec![UNREACHED; n * n];
        for v in g.vertices() {
            let row = bfs_distances(g, v);
            for (u, d) in row.into_iter().enumerate() {
                dist[v.index() * n + u] = d.expect("DistanceMatrix requires a connected graph");
            }
        }
        Self { n, dist }
    }

    /// Number of vertices.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Distance `dist(g, u, v)` (length of a shortest path).
    ///
    /// # Panics
    ///
    /// Panics if either vertex index is out of range.
    #[must_use]
    pub fn dist(&self, u: VertexId, v: VertexId) -> u32 {
        assert!(u.index() < self.n && v.index() < self.n, "vertex out of range");
        self.dist[u.index() * self.n + v.index()]
    }

    /// Eccentricity of `v`: the maximum distance from `v` to any vertex.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[must_use]
    pub fn eccentricity(&self, v: VertexId) -> u32 {
        assert!(v.index() < self.n, "vertex out of range");
        let row = &self.dist[v.index() * self.n..(v.index() + 1) * self.n];
        row.iter().copied().max().unwrap_or(0)
    }

    /// `diam(g)`: the maximum distance between any two vertices.
    #[must_use]
    pub fn diameter(&self) -> u32 {
        (0..self.n).map(|v| self.eccentricity(VertexId::new(v))).max().unwrap_or(0)
    }

    /// Radius: the minimum eccentricity.
    #[must_use]
    pub fn radius(&self) -> u32 {
        (0..self.n).map(|v| self.eccentricity(VertexId::new(v))).min().unwrap_or(0)
    }

    /// A pair `(u, v)` realizing the diameter (`dist(u, v) == diam(g)`).
    ///
    /// Used by the Theorem 4 lower-bound construction, which places the two
    /// colliding privileged vertices at distance exactly `diam(g)`.
    #[must_use]
    pub fn peripheral_pair(&self) -> (VertexId, VertexId) {
        let mut best = (VertexId::new(0), VertexId::new(0), 0u32);
        for u in 0..self.n {
            for v in 0..self.n {
                let d = self.dist[u * self.n + v];
                if d > best.2 {
                    best = (VertexId::new(u), VertexId::new(v), d);
                }
            }
        }
        (best.0, best.1)
    }

    /// All vertices within distance `r` of `center` (the closed ball).
    #[must_use]
    pub fn ball(&self, center: VertexId, r: u32) -> Vec<VertexId> {
        (0..self.n).map(VertexId::new).filter(|&u| self.dist(center, u) <= r).collect()
    }
}

/// Girth: length of a shortest cycle, or `None` for forests.
///
/// Runs a BFS from every vertex, detecting the shortest cycle through each
/// root (standard `O(n·m)` algorithm, exact for simple graphs).
#[must_use]
pub fn girth(g: &Graph) -> Option<u32> {
    let mut best: Option<u32> = None;
    for root in g.vertices() {
        let mut dist = vec![UNREACHED; g.n()];
        let mut parent = vec![usize::MAX; g.n()];
        let mut queue = VecDeque::new();
        dist[root.index()] = 0;
        queue.push_back(root);
        while let Some(u) = queue.pop_front() {
            for &w in g.neighbors(u) {
                if dist[w.index()] == UNREACHED {
                    dist[w.index()] = dist[u.index()] + 1;
                    parent[w.index()] = u.index();
                    queue.push_back(w);
                } else if parent[u.index()] != w.index() {
                    // Non-tree edge: cycle through root of length
                    // dist(u) + dist(w) + 1 (may overestimate for cycles not
                    // through the root, but the minimum over all roots is
                    // exact).
                    let len = dist[u.index()] + dist[w.index()] + 1;
                    best = Some(best.map_or(len, |b| b.min(len)));
                }
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::graph::GraphBuilder;

    #[test]
    fn bfs_on_path() {
        let g = generators::path(4).unwrap();
        let d = bfs_distances(&g, VertexId::new(0));
        assert_eq!(d, vec![Some(0), Some(1), Some(2), Some(3)]);
    }

    #[test]
    fn bfs_unreachable_is_none() {
        let g = GraphBuilder::new(3).edge(0, 1).build().unwrap();
        let d = bfs_distances(&g, VertexId::new(0));
        assert_eq!(d[2], None);
    }

    #[test]
    fn distances_symmetric_on_ring() {
        let g = generators::ring(7).unwrap();
        let dm = DistanceMatrix::new(&g);
        for u in g.vertices() {
            for v in g.vertices() {
                assert_eq!(dm.dist(u, v), dm.dist(v, u));
            }
        }
    }

    #[test]
    fn ring_diameter_is_half() {
        for n in 3..12 {
            let g = generators::ring(n).unwrap();
            assert_eq!(DistanceMatrix::new(&g).diameter() as usize, n / 2, "ring-{n}");
        }
    }

    #[test]
    fn path_radius_and_diameter() {
        let g = generators::path(9).unwrap();
        let dm = DistanceMatrix::new(&g);
        assert_eq!(dm.diameter(), 8);
        assert_eq!(dm.radius(), 4);
    }

    #[test]
    fn peripheral_pair_realizes_diameter() {
        for g in [
            generators::ring(9).unwrap(),
            generators::grid(3, 5).unwrap(),
            generators::random_tree(17, 3).unwrap(),
        ] {
            let dm = DistanceMatrix::new(&g);
            let (u, v) = dm.peripheral_pair();
            assert_eq!(dm.dist(u, v), dm.diameter(), "{}", g.name());
        }
    }

    #[test]
    fn ball_of_radius_zero_is_center() {
        let g = generators::grid(3, 3).unwrap();
        let dm = DistanceMatrix::new(&g);
        assert_eq!(dm.ball(VertexId::new(4), 0), vec![VertexId::new(4)]);
    }

    #[test]
    fn ball_grows_with_radius() {
        let g = generators::grid(3, 3).unwrap();
        let dm = DistanceMatrix::new(&g);
        let center = VertexId::new(4); // middle of the grid
        assert_eq!(dm.ball(center, 1).len(), 5);
        assert_eq!(dm.ball(center, 2).len(), 9);
    }

    #[test]
    fn girth_of_ring_is_n() {
        for n in 3..10 {
            let g = generators::ring(n).unwrap();
            assert_eq!(girth(&g), Some(n as u32));
        }
    }

    #[test]
    fn girth_of_tree_is_none() {
        let g = generators::binary_tree(15).unwrap();
        assert_eq!(girth(&g), None);
    }

    #[test]
    fn girth_of_complete_is_three() {
        let g = generators::complete(6).unwrap();
        assert_eq!(girth(&g), Some(3));
    }

    #[test]
    fn girth_of_petersen_is_five() {
        assert_eq!(girth(&generators::petersen()), Some(5));
    }

    #[test]
    fn girth_of_grid_is_four() {
        let g = generators::grid(3, 4).unwrap();
        assert_eq!(girth(&g), Some(4));
    }

    #[test]
    fn triangle_inequality_on_random_graphs() {
        for seed in 0..3 {
            let g = generators::erdos_renyi_connected(20, 0.1, seed).unwrap();
            let dm = DistanceMatrix::new(&g);
            for u in g.vertices() {
                for v in g.vertices() {
                    for w in g.vertices() {
                        assert!(dm.dist(u, w) <= dm.dist(u, v) + dm.dist(v, w));
                    }
                }
            }
        }
    }

    #[test]
    fn neighbors_are_at_distance_one() {
        let g = generators::petersen();
        let dm = DistanceMatrix::new(&g);
        for &(u, v) in g.edges() {
            assert_eq!(dm.dist(u, v), 1);
        }
    }
}
