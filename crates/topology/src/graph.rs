//! Simple undirected communication graphs.
//!
//! The distributed systems simulated by this workspace follow the classical
//! model of Dijkstra: processes are vertices of a simple undirected graph
//! `g = (V, E)` and communicate by atomically reading the states of their
//! neighbors. This module provides the graph representation shared by every
//! other crate.

use std::collections::BTreeSet;
use std::error::Error;
use std::fmt;

/// Identifier of a vertex (process) in a [`Graph`].
///
/// Vertex identifiers are dense: a graph with `n` vertices uses exactly the
/// identifiers `0..n`. The paper additionally assumes the set of process
/// identities is `{0, 1, .., n-1}`; by default a vertex's *identity* equals
/// its index, but protocols may remap identities with a permutation (see
/// `specstab-core`'s `IdAssignment`).
///
/// ```
/// use specstab_topology::VertexId;
/// let v = VertexId::new(3);
/// assert_eq!(v.index(), 3);
/// assert_eq!(format!("{v}"), "v3");
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct VertexId(u32);

impl VertexId {
    /// Creates a vertex identifier from a dense index.
    ///
    /// # Panics
    ///
    /// Panics if `index` exceeds `u32::MAX` (graphs that large are far
    /// beyond simulation scale).
    #[must_use]
    pub fn new(index: usize) -> Self {
        Self(u32::try_from(index).expect("vertex index exceeds u32::MAX"))
    }

    /// Returns the dense index of this vertex.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl From<u32> for VertexId {
    fn from(index: u32) -> Self {
        Self(index)
    }
}

/// Errors produced while constructing a [`Graph`].
#[derive(Clone, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum GraphError {
    /// The graph has no vertices.
    Empty,
    /// An edge references a vertex outside `0..n`.
    VertexOutOfRange {
        /// Offending vertex index.
        vertex: usize,
        /// Number of vertices in the graph under construction.
        n: usize,
    },
    /// An edge connects a vertex to itself.
    SelfLoop {
        /// The vertex carrying the loop.
        vertex: usize,
    },
    /// The graph is not connected, but a connected graph was required.
    Disconnected,
    /// A generator was asked for dimensions it cannot satisfy.
    InvalidDimension {
        /// Human-readable description of the violated constraint.
        reason: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::Empty => write!(f, "graph must have at least one vertex"),
            GraphError::VertexOutOfRange { vertex, n } => {
                write!(f, "edge references vertex {vertex} but the graph has {n} vertices")
            }
            GraphError::SelfLoop { vertex } => {
                write!(f, "self-loop on vertex {vertex} is not allowed in a simple graph")
            }
            GraphError::Disconnected => write!(f, "graph is not connected"),
            GraphError::InvalidDimension { reason } => {
                write!(f, "invalid generator dimension: {reason}")
            }
        }
    }
}

impl Error for GraphError {}

/// A simple, undirected communication graph.
///
/// Invariants maintained by construction:
///
/// * no self-loops, no parallel edges;
/// * neighbor lists are sorted by vertex index;
/// * the edge list stores each edge once as `(min, max)` in lexicographic
///   order.
///
/// Connectivity is *not* an invariant of the type (some intermediate
/// constructions are disconnected) but every generator in
/// [`crate::generators`] returns a connected graph and
/// [`GraphBuilder::build_connected`] enforces it.
///
/// # Memory layout
///
/// Adjacency is stored in **CSR (compressed sparse row) form**: one flat
/// `neighbors` array holding every neighbor list back to back, plus an
/// `offsets` array with `offsets[v]..offsets[v+1]` delimiting vertex `v`'s
/// slice (so `degree(v)` is an offset difference and `neighbors(v)` is a
/// contiguous, cache-local slice — no per-vertex pointer chase). Guard
/// evaluation walks neighbor lists millions of times per campaign cell,
/// which makes this layout the foundation of the engine's step throughput.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Graph {
    /// `offsets.len() == n + 1`; vertex `v`'s neighbors live at
    /// `neighbors[offsets[v] as usize..offsets[v + 1] as usize]`.
    offsets: Vec<u32>,
    /// All neighbor lists concatenated in vertex order, each sorted.
    neighbors: Vec<VertexId>,
    edges: Vec<(VertexId, VertexId)>,
    name: String,
}

impl Graph {
    /// Number of vertices, `n = |V|`.
    #[must_use]
    pub fn n(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of edges, `m = |E|`.
    #[must_use]
    pub fn m(&self) -> usize {
        self.edges.len()
    }

    /// Human-readable name assigned by the generator (for reports).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Returns a copy of this graph carrying a different name.
    #[must_use]
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Iterates over all vertices in index order.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        (0..self.n()).map(VertexId::new)
    }

    /// The sorted neighbor list of `v` (the set `neig(v)` of the paper), as
    /// one contiguous CSR slice.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not a vertex of this graph.
    #[must_use]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let i = v.index();
        &self.neighbors[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Degree of `v` (a CSR offset difference).
    ///
    /// # Panics
    ///
    /// Panics if `v` is not a vertex of this graph.
    #[must_use]
    pub fn degree(&self, v: VertexId) -> usize {
        let i = v.index();
        assert!(i < self.n(), "vertex {v} out of range");
        (self.offsets[i + 1] - self.offsets[i]) as usize
    }

    /// Maximum degree over all vertices.
    #[must_use]
    pub fn max_degree(&self) -> usize {
        self.offsets.windows(2).map(|w| (w[1] - w[0]) as usize).max().unwrap_or(0)
    }

    /// Minimum degree over all vertices.
    #[must_use]
    pub fn min_degree(&self) -> usize {
        self.offsets.windows(2).map(|w| (w[1] - w[0]) as usize).min().unwrap_or(0)
    }

    /// Whether `{u, v}` is an edge.
    #[must_use]
    pub fn contains_edge(&self, u: VertexId, v: VertexId) -> bool {
        u != v
            && u.index() < self.n()
            && v.index() < self.n()
            && self.neighbors(u).binary_search(&v).is_ok()
    }

    /// The edge list; each edge appears once as `(min, max)`.
    #[must_use]
    pub fn edges(&self) -> &[(VertexId, VertexId)] {
        &self.edges
    }

    /// Whether the graph is connected (single vertex counts as connected).
    #[must_use]
    pub fn is_connected(&self) -> bool {
        if self.n() == 0 {
            return false;
        }
        let mut seen = vec![false; self.n()];
        let mut stack = vec![VertexId::new(0)];
        seen[0] = true;
        let mut count = 1;
        while let Some(u) = stack.pop() {
            for &w in self.neighbors(u) {
                if !seen[w.index()] {
                    seen[w.index()] = true;
                    count += 1;
                    stack.push(w);
                }
            }
        }
        count == self.n()
    }

    /// Whether the graph contains at least one cycle.
    ///
    /// For a connected graph this is equivalent to `m >= n`.
    #[must_use]
    pub fn has_cycle(&self) -> bool {
        // Union-find over edges; a repeated component merge reveals a cycle.
        let mut parent: Vec<usize> = (0..self.n()).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        for &(u, v) in &self.edges {
            let (ru, rv) = (find(&mut parent, u.index()), find(&mut parent, v.index()));
            if ru == rv {
                return true;
            }
            parent[ru] = rv;
        }
        false
    }
}

impl fmt::Display for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (n={}, m={})", self.name, self.n(), self.m())
    }
}

/// Incremental builder for [`Graph`] values.
///
/// ```
/// use specstab_topology::GraphBuilder;
///
/// # fn main() -> Result<(), specstab_topology::GraphError> {
/// let g = GraphBuilder::new(3)
///     .edge(0, 1)
///     .edge(1, 2)
///     .edge(2, 0)
///     .name("triangle")
///     .build_connected()?;
/// assert_eq!(g.m(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    n: usize,
    edges: BTreeSet<(usize, usize)>,
    name: String,
    error: Option<GraphError>,
}

impl GraphBuilder {
    /// Starts a builder for a graph on `n` vertices (no edges yet).
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self { n, edges: BTreeSet::new(), name: format!("graph-n{n}"), error: None }
    }

    /// Adds the undirected edge `{u, v}`; duplicates are ignored.
    ///
    /// Errors (self-loop, out-of-range endpoint) are deferred to
    /// [`GraphBuilder::build`].
    #[must_use]
    pub fn edge(mut self, u: usize, v: usize) -> Self {
        self.add_edge(u, v);
        self
    }

    /// Non-consuming variant of [`GraphBuilder::edge`] for loop-heavy
    /// construction.
    pub fn add_edge(&mut self, u: usize, v: usize) -> &mut Self {
        if self.error.is_some() {
            return self;
        }
        if u == v {
            self.error = Some(GraphError::SelfLoop { vertex: u });
            return self;
        }
        for w in [u, v] {
            if w >= self.n {
                self.error = Some(GraphError::VertexOutOfRange { vertex: w, n: self.n });
                return self;
            }
        }
        self.edges.insert((u.min(v), u.max(v)));
        self
    }

    /// Sets the graph's display name.
    #[must_use]
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Finalizes the graph.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::Empty`] for `n == 0`, or the first deferred
    /// edge error ([`GraphError::SelfLoop`],
    /// [`GraphError::VertexOutOfRange`]).
    pub fn build(self) -> Result<Graph, GraphError> {
        if let Some(e) = self.error {
            return Err(e);
        }
        if self.n == 0 {
            return Err(GraphError::Empty);
        }
        // CSR construction: count degrees, prefix-sum into offsets, then
        // scatter each edge's two endpoints into their slices. The edge set
        // is a `BTreeSet` ordered by `(min, max)`, so within each vertex's
        // slice the `u < v` endpoints arrive sorted and the `v > u` ones
        // arrive sorted; a per-slice sort restores the full order cheaply
        // (the runs are already mostly ordered).
        let _ = u32::try_from(2 * self.edges.len())
            .expect("graph half-edge count exceeds u32::MAX (beyond simulation scale)");
        let mut offsets = vec![0u32; self.n + 1];
        for &(u, v) in &self.edges {
            offsets[u + 1] += 1;
            offsets[v + 1] += 1;
        }
        for i in 0..self.n {
            offsets[i + 1] += offsets[i];
        }
        let mut neighbors = vec![VertexId::default(); 2 * self.edges.len()];
        let mut cursor: Vec<u32> = offsets[..self.n].to_vec();
        let mut edges = Vec::with_capacity(self.edges.len());
        for &(u, v) in &self.edges {
            neighbors[cursor[u] as usize] = VertexId::new(v);
            cursor[u] += 1;
            neighbors[cursor[v] as usize] = VertexId::new(u);
            cursor[v] += 1;
            edges.push((VertexId::new(u), VertexId::new(v)));
        }
        for i in 0..self.n {
            neighbors[offsets[i] as usize..offsets[i + 1] as usize].sort_unstable();
        }
        Ok(Graph { offsets, neighbors, edges, name: self.name })
    }

    /// Finalizes the graph, additionally requiring connectivity.
    ///
    /// # Errors
    ///
    /// All errors of [`GraphBuilder::build`], plus
    /// [`GraphError::Disconnected`].
    pub fn build_connected(self) -> Result<Graph, GraphError> {
        let g = self.build()?;
        if !g.is_connected() {
            return Err(GraphError::Disconnected);
        }
        Ok(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vertex_id_roundtrip() {
        for i in [0usize, 1, 7, 1024] {
            assert_eq!(VertexId::new(i).index(), i);
        }
    }

    #[test]
    fn vertex_id_display_and_order() {
        assert_eq!(VertexId::new(5).to_string(), "v5");
        assert!(VertexId::new(2) < VertexId::new(10));
    }

    #[test]
    fn builder_constructs_triangle() {
        let g = GraphBuilder::new(3).edge(0, 1).edge(1, 2).edge(0, 2).build().unwrap();
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 3);
        assert!(g.contains_edge(VertexId::new(0), VertexId::new(2)));
        assert!(g.is_connected());
        assert!(g.has_cycle());
    }

    #[test]
    fn builder_deduplicates_edges() {
        let g = GraphBuilder::new(2).edge(0, 1).edge(1, 0).edge(0, 1).build().unwrap();
        assert_eq!(g.m(), 1);
    }

    #[test]
    fn builder_rejects_self_loop() {
        let err = GraphBuilder::new(2).edge(1, 1).build().unwrap_err();
        assert_eq!(err, GraphError::SelfLoop { vertex: 1 });
    }

    #[test]
    fn builder_rejects_out_of_range() {
        let err = GraphBuilder::new(2).edge(0, 5).build().unwrap_err();
        assert_eq!(err, GraphError::VertexOutOfRange { vertex: 5, n: 2 });
    }

    #[test]
    fn builder_rejects_empty() {
        assert_eq!(GraphBuilder::new(0).build().unwrap_err(), GraphError::Empty);
    }

    #[test]
    fn build_connected_rejects_disconnected() {
        let err = GraphBuilder::new(4).edge(0, 1).edge(2, 3).build_connected().unwrap_err();
        assert_eq!(err, GraphError::Disconnected);
    }

    #[test]
    fn single_vertex_is_connected_and_acyclic() {
        let g = GraphBuilder::new(1).build().unwrap();
        assert!(g.is_connected());
        assert!(!g.has_cycle());
        assert_eq!(g.degree(VertexId::new(0)), 0);
    }

    #[test]
    fn neighbor_lists_are_sorted() {
        let g = GraphBuilder::new(4).edge(3, 0).edge(0, 2).edge(0, 1).build().unwrap();
        let ns: Vec<usize> = g.neighbors(VertexId::new(0)).iter().map(|v| v.index()).collect();
        assert_eq!(ns, vec![1, 2, 3]);
    }

    #[test]
    fn tree_has_no_cycle() {
        let g = GraphBuilder::new(4).edge(0, 1).edge(1, 2).edge(1, 3).build().unwrap();
        assert!(!g.has_cycle());
        assert!(g.is_connected());
    }

    #[test]
    fn degrees_and_edge_list() {
        let g = GraphBuilder::new(4).edge(0, 1).edge(1, 2).edge(1, 3).build().unwrap();
        assert_eq!(g.degree(VertexId::new(1)), 3);
        assert_eq!(g.max_degree(), 3);
        assert_eq!(g.min_degree(), 1);
        assert_eq!(g.edges().len(), 3);
        for &(u, v) in g.edges() {
            assert!(u < v);
        }
    }

    #[test]
    fn csr_layout_invariants() {
        let g = GraphBuilder::new(5)
            .edge(0, 1)
            .edge(1, 2)
            .edge(2, 3)
            .edge(3, 4)
            .edge(4, 0)
            .edge(1, 3)
            .build()
            .unwrap();
        let total: usize = g.vertices().map(|v| g.degree(v)).sum();
        assert_eq!(total, 2 * g.m(), "degrees sum to the CSR half-edge count");
        for v in g.vertices() {
            let ns = g.neighbors(v);
            assert_eq!(ns.len(), g.degree(v));
            assert!(ns.windows(2).all(|w| w[0] < w[1]), "slice of {v} sorted, duplicate-free");
            for &u in ns {
                assert!(g.contains_edge(v, u));
                assert!(g.neighbors(u).contains(&v), "adjacency is symmetric");
            }
        }
    }

    #[test]
    fn display_includes_name_and_size() {
        let g = GraphBuilder::new(2).edge(0, 1).name("pair").build().unwrap();
        assert_eq!(g.to_string(), "pair (n=2, m=1)");
    }
}
