//! Exact computation of `hole(g)` and `lcp(g)`.
//!
//! The asynchronous unison of Boulinier, Petit & Villain — the substrate of
//! SSME — is parametrized by two topological constants:
//!
//! * `hole(g)`: the length of a longest *hole* (chordless/induced cycle) if
//!   `g` contains a cycle, and `2` otherwise. Convergence requires the
//!   clock's initial segment to satisfy `α >= hole(g) - 2`.
//! * `lcp(g)`: the length (in edges) of a longest *elementary chordless
//!   path* (induced path). The synchronous stabilization bound of the
//!   unison is `α + lcp(g) + diam(g)` steps.
//!
//! Both quantities are NP-hard in general; this module computes them
//! **exactly** with a pruned depth-first enumeration of induced
//! paths/cycles, guarded by an explicit [`SearchBudget`] so callers control
//! the worst-case cost. At the scale used by the test-suite and experiments
//! (`n <= ~40` for exact values) the searches complete in milliseconds;
//! SSME itself only needs the bound `hole(g) <= n`, which holds trivially.

use crate::graph::{Graph, VertexId};
use std::error::Error;
use std::fmt;

/// Cap on the number of DFS node visits for the exponential searches.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct SearchBudget {
    /// Maximum number of DFS extensions examined before giving up.
    pub max_visits: u64,
}

impl Default for SearchBudget {
    fn default() -> Self {
        Self { max_visits: 20_000_000 }
    }
}

/// The search exceeded its [`SearchBudget`].
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct BudgetExceeded {
    /// Number of DFS extensions examined when the budget ran out.
    pub visited: u64,
}

impl fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "chordless-structure search exceeded its budget after {} visits", self.visited)
    }
}

impl Error for BudgetExceeded {}

/// Dense adjacency matrix with O(1) edge tests, used by the DFS.
struct AdjMatrix {
    n: usize,
    words_per_row: usize,
    bits: Vec<u64>,
}

impl AdjMatrix {
    fn new(g: &Graph) -> Self {
        let n = g.n();
        let words_per_row = n.div_ceil(64);
        let mut bits = vec![0u64; n * words_per_row];
        for &(u, v) in g.edges() {
            let (ui, vi) = (u.index(), v.index());
            bits[ui * words_per_row + vi / 64] |= 1 << (vi % 64);
            bits[vi * words_per_row + ui / 64] |= 1 << (ui % 64);
        }
        Self { n, words_per_row, bits }
    }

    #[inline]
    fn adj(&self, u: usize, v: usize) -> bool {
        debug_assert!(u < self.n && v < self.n);
        self.bits[u * self.words_per_row + v / 64] >> (v % 64) & 1 == 1
    }
}

struct Dfs<'a> {
    g: &'a Graph,
    adj: AdjMatrix,
    in_path: Vec<bool>,
    path: Vec<usize>,
    visits: u64,
    budget: SearchBudget,
}

impl<'a> Dfs<'a> {
    fn new(g: &'a Graph, budget: SearchBudget) -> Self {
        Self {
            g,
            adj: AdjMatrix::new(g),
            in_path: vec![false; g.n()],
            path: Vec::with_capacity(g.n()),
            visits: 0,
            budget,
        }
    }

    fn tick(&mut self) -> Result<(), BudgetExceeded> {
        self.visits += 1;
        if self.visits > self.budget.max_visits {
            Err(BudgetExceeded { visited: self.visits })
        } else {
            Ok(())
        }
    }

    /// `w` is adjacent to no path vertex except the last one and,
    /// optionally, the first one.
    fn extension_chords(&self, w: usize) -> (bool, bool) {
        let last = *self.path.last().expect("path never empty during DFS");
        let first = self.path[0];
        let mut chord_to_first = false;
        for &x in &self.path {
            if x == last {
                continue;
            }
            if self.adj.adj(w, x) {
                if x == first {
                    chord_to_first = true;
                } else {
                    return (true, chord_to_first);
                }
            }
        }
        (false, chord_to_first)
    }

    /// Longest chordless cycle through minimal vertex `start`, restricted to
    /// vertices `> start` (so each cycle is explored from its minimum
    /// vertex only). Updates `best` in place.
    fn cycles_from(
        &mut self,
        start: usize,
        best: &mut Option<usize>,
    ) -> Result<(), BudgetExceeded> {
        let last = *self.path.last().expect("path never empty");
        // Iterate over indices to appease the borrow checker cheaply.
        for i in 0..self.g.neighbors(VertexId::new(last)).len() {
            let w = self.g.neighbors(VertexId::new(last))[i].index();
            if w <= start || self.in_path[w] {
                continue;
            }
            self.tick()?;
            let (inner_chord, closes) = self.extension_chords(w);
            if inner_chord {
                continue;
            }
            if closes {
                // w is adjacent to both `last` and `start` and nothing else
                // on the path: a chordless cycle of |path| + 1 vertices.
                if self.path.len() >= 2 {
                    let len = self.path.len() + 1;
                    if best.is_none_or(|b| len > b) {
                        *best = Some(len);
                    }
                }
                // Extending past w would make (w, start) a chord.
                continue;
            }
            self.path.push(w);
            self.in_path[w] = true;
            self.cycles_from(start, best)?;
            self.in_path[w] = false;
            self.path.pop();
        }
        Ok(())
    }

    /// Longest induced path extension, measured in edges.
    fn paths_from(&mut self, best: &mut usize) -> Result<(), BudgetExceeded> {
        let last = *self.path.last().expect("path never empty");
        for i in 0..self.g.neighbors(VertexId::new(last)).len() {
            let w = self.g.neighbors(VertexId::new(last))[i].index();
            if self.in_path[w] {
                continue;
            }
            self.tick()?;
            let (inner_chord, chord_to_first) = self.extension_chords(w);
            // For a path, an edge back to the first vertex is also a chord
            // (unless the path is a single edge so far, where "first" is the
            // previous vertex handled by `extension_chords` as `last`).
            if inner_chord || (chord_to_first && self.path.len() >= 2) {
                continue;
            }
            self.path.push(w);
            self.in_path[w] = true;
            *best = (*best).max(self.path.len() - 1);
            self.paths_from(best)?;
            self.in_path[w] = false;
            self.path.pop();
        }
        Ok(())
    }
}

/// Length (number of vertices = number of edges) of a longest chordless
/// (induced) cycle, or `None` if the graph is acyclic.
///
/// # Errors
///
/// Returns [`BudgetExceeded`] if the pruned DFS exceeds `budget`.
pub fn longest_chordless_cycle(
    g: &Graph,
    budget: SearchBudget,
) -> Result<Option<usize>, BudgetExceeded> {
    if !g.has_cycle() {
        return Ok(None);
    }
    let mut dfs = Dfs::new(g, budget);
    let mut best = None;
    for start in 0..g.n() {
        dfs.path.clear();
        dfs.path.push(start);
        dfs.in_path.fill(false);
        dfs.in_path[start] = true;
        dfs.cycles_from(start, &mut best)?;
    }
    Ok(best)
}

/// `hole(g)` with the paper's convention: longest chordless cycle length if
/// `g` contains a cycle, `2` otherwise.
///
/// # Errors
///
/// Returns [`BudgetExceeded`] if the pruned DFS exceeds `budget`.
pub fn hole(g: &Graph, budget: SearchBudget) -> Result<usize, BudgetExceeded> {
    Ok(longest_chordless_cycle(g, budget)?.unwrap_or(2))
}

/// `lcp(g)`: length in edges of a longest elementary chordless (induced)
/// path. A single-vertex graph has `lcp = 0`.
///
/// # Errors
///
/// Returns [`BudgetExceeded`] if the pruned DFS exceeds `budget`.
pub fn longest_chordless_path(g: &Graph, budget: SearchBudget) -> Result<usize, BudgetExceeded> {
    let mut dfs = Dfs::new(g, budget);
    let mut best = 0usize;
    for start in 0..g.n() {
        dfs.path.clear();
        dfs.path.push(start);
        dfs.in_path.fill(false);
        dfs.in_path[start] = true;
        dfs.paths_from(&mut best)?;
    }
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::graph::GraphBuilder;

    fn b() -> SearchBudget {
        SearchBudget::default()
    }

    #[test]
    fn ring_hole_is_n() {
        for n in 3..12 {
            let g = generators::ring(n).unwrap();
            assert_eq!(hole(&g, b()).unwrap(), n, "ring-{n}");
        }
    }

    #[test]
    fn tree_hole_is_two_by_convention() {
        let g = generators::binary_tree(15).unwrap();
        assert_eq!(longest_chordless_cycle(&g, b()).unwrap(), None);
        assert_eq!(hole(&g, b()).unwrap(), 2);
    }

    #[test]
    fn complete_hole_is_three() {
        // Every cycle of length >= 4 in K_n has a chord; triangles remain.
        for n in 3..7 {
            let g = generators::complete(n).unwrap();
            assert_eq!(hole(&g, b()).unwrap(), 3, "K_{n}");
        }
    }

    #[test]
    fn grid_hole_snakes() {
        // 2x2 grid: the 4-cycle itself.
        assert_eq!(hole(&generators::grid(2, 2).unwrap(), b()).unwrap(), 4);
        // 3x3 grid: the 8-vertex perimeter is chordless.
        assert_eq!(hole(&generators::grid(3, 3).unwrap(), b()).unwrap(), 8);
    }

    #[test]
    fn petersen_hole_is_six() {
        // Petersen: girth 5, but the longest induced cycles have length 6.
        assert_eq!(hole(&generators::petersen(), b()).unwrap(), 6);
    }

    #[test]
    fn wheel_hole_is_rim_minus_hub_chords() {
        // In wheel-6 (hub + rim C5) every rim cycle of length >= 4 gains a
        // chord through... no: hub chords only exist for cycles through the
        // hub. The rim C5 itself is induced? Each rim vertex is adjacent to
        // the hub, but the hub is not on the cycle, so the rim is chordless.
        assert_eq!(hole(&generators::wheel(6).unwrap(), b()).unwrap(), 5);
    }

    #[test]
    fn hole_of_cycle_with_one_chord() {
        // C6 with a chord splitting it into a C4 and a C3... chord (0,3)
        // splits C6 0-1-2-3-4-5 into 0-1-2-3 (4-cycle) and 0-3-4-5 (4-cycle).
        let g = GraphBuilder::new(6)
            .edge(0, 1)
            .edge(1, 2)
            .edge(2, 3)
            .edge(3, 4)
            .edge(4, 5)
            .edge(5, 0)
            .edge(0, 3)
            .build()
            .unwrap();
        assert_eq!(hole(&g, b()).unwrap(), 4);
    }

    #[test]
    fn lcp_of_path_is_full_length() {
        for n in 1..8 {
            let g = generators::path(n).unwrap();
            assert_eq!(longest_chordless_path(&g, b()).unwrap(), n - 1, "path-{n}");
        }
    }

    #[test]
    fn lcp_of_ring_is_n_minus_two() {
        // A ring path using all n vertices closes a chord between its two
        // endpoints; n-1 consecutive vertices give an induced path with
        // n-2 edges.
        for n in 4..10 {
            let g = generators::ring(n).unwrap();
            assert_eq!(longest_chordless_path(&g, b()).unwrap(), n - 2, "ring-{n}");
        }
    }

    #[test]
    fn lcp_of_complete_is_one() {
        let g = generators::complete(5).unwrap();
        assert_eq!(longest_chordless_path(&g, b()).unwrap(), 1);
    }

    #[test]
    fn lcp_of_star_is_two() {
        let g = generators::star(7).unwrap();
        assert_eq!(longest_chordless_path(&g, b()).unwrap(), 2);
    }

    #[test]
    fn lcp_single_vertex_is_zero() {
        let g = generators::path(1).unwrap();
        assert_eq!(longest_chordless_path(&g, b()).unwrap(), 0);
    }

    #[test]
    fn budget_is_enforced() {
        let g = generators::hypercube(6).unwrap();
        let tiny = SearchBudget { max_visits: 10 };
        assert!(longest_chordless_path(&g, tiny).is_err());
        assert!(longest_chordless_cycle(&g, tiny).is_err());
    }

    #[test]
    fn hole_never_exceeds_n() {
        for seed in 0..4 {
            let g = generators::erdos_renyi_connected(12, 0.25, seed).unwrap();
            let h = hole(&g, b()).unwrap();
            assert!(h <= g.n(), "{}: hole {} > n {}", g.name(), h, g.n());
            assert!(h >= 2);
        }
    }

    #[test]
    fn hypercube_holes() {
        // Q3: induced cycles have length 4 and 6.
        assert_eq!(hole(&generators::hypercube(3).unwrap(), b()).unwrap(), 6);
    }
}
