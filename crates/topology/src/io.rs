//! Plain-text graph I/O: a minimal edge-list format for custom topologies.
//!
//! Format (one item per line, `#` comments allowed):
//!
//! ```text
//! # name: my-topology
//! n 5
//! 0 1
//! 1 2
//! 2 3
//! 3 4
//! 4 0
//! ```
//!
//! The `n <count>` line is optional — without it the vertex count is
//! `max endpoint + 1`. The `# name:` comment, when present, names the
//! graph.

use crate::graph::{Graph, GraphBuilder, GraphError};
use std::error::Error;
use std::fmt;

/// Errors parsing the edge-list format.
#[derive(Clone, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum ParseError {
    /// A line was not a comment, an `n` directive or an edge.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// The offending content.
        content: String,
    },
    /// The resulting graph was invalid.
    Graph(GraphError),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Malformed { line, content } => {
                write!(f, "line {line}: cannot parse '{content}'")
            }
            ParseError::Graph(e) => write!(f, "invalid graph: {e}"),
        }
    }
}

impl Error for ParseError {}

impl From<GraphError> for ParseError {
    fn from(e: GraphError) -> Self {
        ParseError::Graph(e)
    }
}

/// Parses the edge-list format.
///
/// # Errors
///
/// [`ParseError::Malformed`] on unparseable lines, [`ParseError::Graph`]
/// when the edges do not form a valid simple graph.
pub fn parse_edge_list(text: &str) -> Result<Graph, ParseError> {
    let mut name: Option<String> = None;
    let mut declared_n: Option<usize> = None;
    let mut edges: Vec<(usize, usize)> = Vec::new();
    let mut max_vertex = 0usize;
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            if let Some(n) = comment.trim().strip_prefix("name:") {
                name = Some(n.trim().to_string());
            }
            continue;
        }
        if let Some(count) = line.strip_prefix("n ") {
            declared_n = count.trim().parse::<usize>().ok();
            if declared_n.is_none() {
                return Err(ParseError::Malformed { line: idx + 1, content: raw.to_string() });
            }
            continue;
        }
        let mut parts = line.split_whitespace();
        let (a, b) = (parts.next(), parts.next());
        match (a.and_then(|x| x.parse::<usize>().ok()), b.and_then(|x| x.parse::<usize>().ok())) {
            (Some(u), Some(v)) if parts.next().is_none() => {
                max_vertex = max_vertex.max(u).max(v);
                edges.push((u, v));
            }
            _ => return Err(ParseError::Malformed { line: idx + 1, content: raw.to_string() }),
        }
    }
    let n = declared_n.unwrap_or(if edges.is_empty() { 0 } else { max_vertex + 1 });
    let mut b = GraphBuilder::new(n);
    for (u, v) in edges {
        b.add_edge(u, v);
    }
    let mut g = b.build()?;
    if let Some(name) = name {
        g = g.with_name(name);
    }
    Ok(g)
}

/// Serializes a graph to the edge-list format (round-trips through
/// [`parse_edge_list`]).
#[must_use]
pub fn to_edge_list(g: &Graph) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "# name: {}", g.name());
    let _ = writeln!(out, "n {}", g.n());
    for &(u, v) in g.edges() {
        let _ = writeln!(out, "{} {}", u.index(), v.index());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn parses_basic_edge_list() {
        let g = parse_edge_list("# name: tri\nn 3\n0 1\n1 2\n2 0\n").unwrap();
        assert_eq!(g.name(), "tri");
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 3);
    }

    #[test]
    fn infers_vertex_count() {
        let g = parse_edge_list("0 1\n1 4\n").unwrap();
        assert_eq!(g.n(), 5);
        assert_eq!(g.m(), 2);
    }

    #[test]
    fn skips_comments_and_blank_lines() {
        let g = parse_edge_list("# a comment\n\n0 1\n# another\n1 2\n").unwrap();
        assert_eq!(g.m(), 2);
    }

    #[test]
    fn rejects_malformed_lines() {
        let err = parse_edge_list("0 1\nhello world x\n").unwrap_err();
        assert!(matches!(err, ParseError::Malformed { line: 2, .. }));
        let err = parse_edge_list("0\n").unwrap_err();
        assert!(matches!(err, ParseError::Malformed { .. }));
        let err = parse_edge_list("n abc\n").unwrap_err();
        assert!(matches!(err, ParseError::Malformed { .. }));
    }

    #[test]
    fn rejects_invalid_graphs() {
        let err = parse_edge_list("0 0\n").unwrap_err();
        assert!(matches!(err, ParseError::Graph(GraphError::SelfLoop { .. })));
        let err = parse_edge_list("n 2\n0 5\n").unwrap_err();
        assert!(matches!(err, ParseError::Graph(GraphError::VertexOutOfRange { .. })));
    }

    #[test]
    fn round_trips_generated_graphs() {
        for g in
            [generators::ring(7).unwrap(), generators::petersen(), generators::grid(3, 4).unwrap()]
        {
            let text = to_edge_list(&g);
            let back = parse_edge_list(&text).unwrap();
            assert_eq!(back, g, "{}", g.name());
        }
    }

    #[test]
    fn declared_n_allows_isolated_trailing_vertices() {
        // Disconnected but parseable; connectivity is the caller's policy.
        let g = parse_edge_list("n 4\n0 1\n").unwrap();
        assert_eq!(g.n(), 4);
        assert!(!g.is_connected());
    }
}
