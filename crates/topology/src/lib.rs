//! Communication graphs for self-stabilizing protocol simulation.
//!
//! This crate provides the graph substrate assumed by Dijkstra's
//! state-reading model and by the PODC 2013 paper *Introducing Speculation
//! in Self-Stabilization* (Dubois & Guerraoui):
//!
//! * [`Graph`] — simple, undirected, connected communication graphs with
//!   vertices identified by [`VertexId`];
//! * [`generators`] — the topology zoo (rings, paths, grids, tori,
//!   hypercubes, trees, random connected graphs, ...);
//! * [`metrics`] — BFS distances, eccentricities, [`metrics::DistanceMatrix`],
//!   diameter and peripheral pairs;
//! * [`chordless`] — exact `hole(g)` (longest chordless cycle) and `lcp(g)`
//!   (longest chordless path), the constants governing the asynchronous
//!   unison parameters of Boulinier, Petit & Villain;
//! * [`cycle_space`] — minimum cycle bases and the cyclomatic characteristic
//!   `cyclo(g)`;
//! * [`dot`] — Graphviz/ASCII export for debugging and reports.
//!
//! # Example
//!
//! ```
//! use specstab_topology::{generators, metrics::DistanceMatrix};
//!
//! let g = generators::torus(4, 5).expect("valid dimensions");
//! let dm = DistanceMatrix::new(&g);
//! assert_eq!(g.n(), 20);
//! assert_eq!(dm.diameter(), 4);
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chordless;
pub mod cycle_space;
pub mod dot;
pub mod generators;
pub mod graph;
pub mod io;
pub mod metrics;
pub mod spec;

pub use graph::{Graph, GraphBuilder, GraphError, VertexId};
pub use spec::{parse_spec, SpecError};
