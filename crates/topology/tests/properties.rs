//! Property-based tests for graph metrics and structural invariants.

use proptest::prelude::*;
use specstab_topology::chordless::{self, SearchBudget};
use specstab_topology::cycle_space;
use specstab_topology::generators;
use specstab_topology::metrics::{girth, DistanceMatrix};
use specstab_topology::{Graph, VertexId};

/// Strategy producing small connected random graphs.
fn small_connected_graph() -> impl Strategy<Value = Graph> {
    (2usize..14, 0.0f64..0.6, any::<u64>()).prop_map(|(n, p, seed)| {
        generators::erdos_renyi_connected(n, p, seed).expect("valid parameters")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn distances_are_a_metric(g in small_connected_graph()) {
        let dm = DistanceMatrix::new(&g);
        for u in g.vertices() {
            prop_assert_eq!(dm.dist(u, u), 0);
            for v in g.vertices() {
                prop_assert_eq!(dm.dist(u, v), dm.dist(v, u));
                if u != v {
                    prop_assert!(dm.dist(u, v) >= 1);
                }
                for w in g.vertices() {
                    prop_assert!(dm.dist(u, w) <= dm.dist(u, v) + dm.dist(v, w));
                }
            }
        }
    }

    #[test]
    fn diameter_equals_max_eccentricity(g in small_connected_graph()) {
        let dm = DistanceMatrix::new(&g);
        let max_ecc = g.vertices().map(|v| dm.eccentricity(v)).max().unwrap();
        prop_assert_eq!(dm.diameter(), max_ecc);
        prop_assert!(dm.radius() <= dm.diameter());
        prop_assert!(dm.diameter() <= 2 * dm.radius());
    }

    #[test]
    fn diameter_bounded_by_n_minus_one(g in small_connected_graph()) {
        let dm = DistanceMatrix::new(&g);
        prop_assert!((dm.diameter() as usize) < g.n().max(1));
    }

    #[test]
    fn hole_and_lcp_within_structural_bounds(g in small_connected_graph()) {
        let budget = SearchBudget::default();
        let h = chordless::hole(&g, budget).unwrap();
        let lcp = chordless::longest_chordless_path(&g, budget).unwrap();
        prop_assert!((2..=g.n().max(2)).contains(&h));
        prop_assert!(lcp < g.n());
        if let Some(gi) = girth(&g) {
            // The shortest cycle is always chordless.
            prop_assert!(h >= gi as usize);
        } else {
            prop_assert_eq!(h, 2);
        }
    }

    #[test]
    fn cycle_basis_dimension_and_lengths(g in small_connected_graph()) {
        let basis = cycle_space::minimum_cycle_basis(&g);
        prop_assert_eq!(basis.dimension(), g.m() + 1 - g.n());
        for cy in &basis.cycles {
            prop_assert!(cy.len() >= 3);
            prop_assert!(cy.len() <= g.n());
            // Every vertex has even degree in a cycle-space element.
            let mut deg = vec![0usize; g.n()];
            for &ei in &cy.edge_indices {
                let (u, v) = g.edges()[ei];
                deg[u.index()] += 1;
                deg[v.index()] += 1;
            }
            prop_assert!(deg.iter().all(|&d| d % 2 == 0));
        }
        if g.has_cycle() {
            let c = cycle_space::cyclo(&g);
            let gi = girth(&g).unwrap() as usize;
            prop_assert!(c >= gi, "cyclo {} < girth {}", c, gi);
        }
    }

    #[test]
    fn cyclo_at_least_girth_and_at_most_hole_bound(g in small_connected_graph()) {
        // cyclo and hole both fall in [girth, n]; the unison requirement
        // K > cyclo is always satisfiable with K > n.
        if g.has_cycle() {
            let c = cycle_space::cyclo(&g);
            prop_assert!(c <= g.n());
        }
    }

    #[test]
    fn peripheral_pair_attains_diameter(g in small_connected_graph()) {
        let dm = DistanceMatrix::new(&g);
        let (u, v) = dm.peripheral_pair();
        prop_assert_eq!(dm.dist(u, v), dm.diameter());
    }

    #[test]
    fn balls_are_monotone(g in small_connected_graph()) {
        let dm = DistanceMatrix::new(&g);
        let c = VertexId::new(0);
        let mut prev = 0;
        for r in 0..dm.diameter() + 1 {
            let b = dm.ball(c, r).len();
            prop_assert!(b >= prev);
            prev = b;
        }
        prop_assert_eq!(prev, g.n());
    }

    #[test]
    fn generators_are_deterministic(n in 2usize..20, seed in any::<u64>()) {
        let g1 = generators::random_tree(n, seed).unwrap();
        let g2 = generators::random_tree(n, seed).unwrap();
        prop_assert_eq!(g1, g2);
    }
}
