//! Acceptance test for the zero-allocation stepping core: steady-state
//! steps perform **zero configuration clones**, proven by the process-wide
//! instrumented clone counter ([`specstab_kernel::config::clone_count`]).
//!
//! The counter is process-global, so everything here lives in one `#[test]`
//! (this file is its own test binary — no other test pollutes the deltas).

use rand::rngs::StdRng;
use rand::Rng;
use specstab_kernel::config::{clone_count, Configuration};
use specstab_kernel::daemon::{CentralDaemon, CentralStrategy, SynchronousDaemon};
use specstab_kernel::engine::{RunLimits, Simulator, StepScratch, StopReason};
use specstab_kernel::protocol::{Protocol, RuleId, RuleInfo, View};
use specstab_topology::{generators, VertexId};

/// Unison-like toy: every vertex increments its clock modulo `m` while it
/// is not ahead of the minimum of its closed neighborhood — never
/// terminates, so every step is steady state.
struct SpinProto {
    m: u32,
}

impl Protocol for SpinProto {
    type State = u32;
    fn name(&self) -> String {
        "spin".into()
    }
    fn rules(&self) -> Vec<RuleInfo> {
        vec![RuleInfo::new("TICK")]
    }
    fn enabled_rule(&self, view: &View<'_, u32>) -> Option<RuleId> {
        let me = *view.state();
        let min = view.neighbor_states().map(|(_, &s)| s).min().unwrap_or(me).min(me);
        (me == min).then_some(RuleId::new(0))
    }
    fn apply(&self, view: &View<'_, u32>, _rule: RuleId) -> u32 {
        (*view.state() + 1) % self.m
    }
    fn random_state(&self, _v: VertexId, rng: &mut StdRng) -> u32 {
        rng.gen_range(0..self.m)
    }
}

#[test]
fn steady_state_steps_perform_zero_configuration_clones() {
    let g = generators::torus(6, 6).expect("valid torus");
    let proto = SpinProto { m: 64 };
    let sim = Simulator::new(&g, &proto);

    // --- Synchronous daemon, no observers: the acceptance scenario. ---
    let init = Configuration::from_fn(g.n(), |_| 0u32);
    let mut daemon = SynchronousDaemon::new();
    let mut scratch = StepScratch::new();
    // Warm-up run sizes every scratch buffer.
    let warm = sim.run_with_scratch(
        init.clone(),
        &mut daemon,
        RunLimits::with_max_steps(8),
        &mut [],
        &mut scratch,
    );
    assert_eq!(warm.stop, StopReason::MaxSteps, "spin protocol never terminates");

    let run_init = init.clone();
    let before = clone_count();
    let s = sim.run_with_scratch(
        run_init,
        &mut daemon,
        RunLimits::with_max_steps(2_000),
        &mut [],
        &mut scratch,
    );
    let clones = clone_count() - before;
    assert_eq!(s.steps, 2_000);
    assert_eq!(
        clones, 0,
        "synchronous steady state must not clone configurations ({clones} clones / {} steps)",
        s.steps
    );

    // --- Central daemon: exercises the incremental enabled-set merge. ---
    let mut central = CentralDaemon::new(CentralStrategy::RoundRobin);
    let _ = sim.run_with_scratch(
        init.clone(),
        &mut central,
        RunLimits::with_max_steps(8),
        &mut [],
        &mut scratch,
    );
    let run_init = init;
    let before = clone_count();
    let s = sim.run_with_scratch(
        run_init,
        &mut central,
        RunLimits::with_max_steps(2_000),
        &mut [],
        &mut scratch,
    );
    let clones = clone_count() - before;
    assert_eq!(s.steps, 2_000);
    assert_eq!(clones, 0, "central steady state must not clone configurations");
}
