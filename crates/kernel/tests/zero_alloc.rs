//! Acceptance test for the zero-allocation stepping core: steady-state
//! steps perform **zero configuration clones**, proven by the
//! `config_clones` counter of the process-wide telemetry aggregate
//! ([`specstab_telemetry::global`]) — the promotion of the old test-only
//! clone counter into the first-class engine counters.
//!
//! The counters are process-global, so everything here lives in one
//! `#[test]` (this file is its own test binary — no other test pollutes
//! the snapshot deltas).

use rand::rngs::StdRng;
use rand::Rng;
use specstab_kernel::config::Configuration;
use specstab_kernel::daemon::{CentralDaemon, CentralStrategy, SynchronousDaemon};
use specstab_kernel::engine::{RunLimits, Simulator, StepScratch, StopReason};
use specstab_kernel::protocol::{Protocol, RuleId, RuleInfo, View};
use specstab_telemetry::global;
use specstab_topology::{generators, VertexId};

/// Unison-like toy: every vertex increments its clock modulo `m` while it
/// is not ahead of the minimum of its closed neighborhood — never
/// terminates, so every step is steady state.
struct SpinProto {
    m: u32,
}

impl Protocol for SpinProto {
    type State = u32;
    fn name(&self) -> String {
        "spin".into()
    }
    fn rules(&self) -> Vec<RuleInfo> {
        vec![RuleInfo::new("TICK")]
    }
    fn enabled_rule(&self, view: &View<'_, u32>) -> Option<RuleId> {
        let me = *view.state();
        let min = view.neighbor_states().map(|(_, &s)| s).min().unwrap_or(me).min(me);
        (me == min).then_some(RuleId::new(0))
    }
    fn apply(&self, view: &View<'_, u32>, _rule: RuleId) -> u32 {
        (*view.state() + 1) % self.m
    }
    fn random_state(&self, _v: VertexId, rng: &mut StdRng) -> u32 {
        rng.gen_range(0..self.m)
    }
}

/// Asserts zero steady-state configuration clones for both the synchronous
/// and the central round-robin daemon on `g`, reusing `scratch` the way a
/// batch driver would.
fn assert_zero_steady_state_clones(
    g: &specstab_topology::Graph,
    steps: usize,
    scratch: &mut StepScratch<u32>,
) {
    let proto = SpinProto { m: 64 };
    let sim = Simulator::new(g, &proto);
    let init = Configuration::from_fn(g.n(), |_| 0u32);

    // --- Synchronous daemon, no observers: the acceptance scenario. ---
    let mut daemon = SynchronousDaemon::new();
    // Warm-up run sizes every scratch buffer.
    let warm = sim.run_with_scratch(
        init.clone(),
        &mut daemon,
        RunLimits::with_max_steps(8),
        &mut [],
        scratch,
    );
    assert_eq!(warm.stop, StopReason::MaxSteps, "spin protocol never terminates");

    let run_init = init.clone();
    let before = global().snapshot();
    let s = sim.run_with_scratch(
        run_init,
        &mut daemon,
        RunLimits::with_max_steps(steps),
        &mut [],
        scratch,
    );
    let after = global().snapshot().delta(&before);
    assert_eq!(s.steps, steps);
    assert_eq!(
        after.config_clones,
        0,
        "{}: synchronous steady state must not clone configurations ({} clones / {} steps)",
        g.name(),
        after.config_clones,
        s.steps
    );
    // The same snapshot delta also proves the batched run flush and the
    // cross-run scratch reuse instrument.
    assert_eq!(after.steps, s.steps as u64, "run flush must carry the step count");
    assert_eq!(after.moves, s.moves, "run flush must carry the move count");
    assert_eq!(s.counters.steps, s.steps as u64, "per-run counters mirror the summary");
    assert!(after.scratch_reuses >= 1, "warmed scratch must be detected as reused");

    // --- Central round-robin: exercises the incremental enabled-set merge
    // (and, on large instances, the stamp-based touched-set path with a
    // sparse selection). ---
    let mut central = CentralDaemon::new(CentralStrategy::RoundRobin);
    let _ = sim.run_with_scratch(
        init.clone(),
        &mut central,
        RunLimits::with_max_steps(8),
        &mut [],
        scratch,
    );
    let run_init = init;
    let before = global().snapshot();
    let s = sim.run_with_scratch(
        run_init,
        &mut central,
        RunLimits::with_max_steps(steps),
        &mut [],
        scratch,
    );
    let after = global().snapshot().delta(&before);
    assert_eq!(s.steps, steps);
    assert_eq!(
        after.config_clones,
        0,
        "{}: central round-robin steady state must not clone configurations",
        g.name()
    );
    assert_eq!(s.moves, s.steps as u64, "central daemon: one move per step");
    assert_eq!(s.counters.moves, s.moves, "per-run counters mirror the summary");
}

#[test]
fn steady_state_steps_perform_zero_configuration_clones() {
    let mut scratch = StepScratch::new();
    // The historical acceptance instance, then the campaign grid's large
    // instances — buffer reuse across *differently sized* graphs is part of
    // the contract (the stamp array and masks must re-seat without leaking
    // allocations into the steady state).
    assert_zero_steady_state_clones(
        &generators::torus(6, 6).expect("valid torus"),
        2_000,
        &mut scratch,
    );
    assert_zero_steady_state_clones(
        &generators::ring(1024).expect("valid ring"),
        1_000,
        &mut scratch,
    );
    assert_zero_steady_state_clones(
        &generators::torus(32, 32).expect("valid torus"),
        1_000,
        &mut scratch,
    );
}
