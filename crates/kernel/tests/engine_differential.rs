//! Differential suite for the zero-allocation stepping core: the
//! double-buffered, incrementally-maintained [`Simulator::run`] must be
//! observationally identical to the retained clone-based
//! [`Simulator::run_reference`] — same `RunSummary` (steps, moves, stop
//! reason, final configuration), same per-step observer events (after
//! configurations, deltas, activations, enabled sets), same daemon RNG
//! consumption — across protocols × daemons × seeds.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use specstab_kernel::config::Configuration;
use specstab_kernel::daemon::{max_enabled_adversary, parse_daemon_spec, AdversaryMoves, Daemon};
use specstab_kernel::engine::{RunLimits, RunSummary, Simulator};
use specstab_kernel::observer::{ConfigTrace, Observer, StepEvent};
use specstab_kernel::protocol::{random_configuration, Protocol, RuleId, RuleInfo, View};
use specstab_topology::{generators, Graph, VertexId};
use std::sync::Arc;

/// Greedy tree coloring (multiple rules never fire at once, converges under
/// every daemon on trees).
#[derive(Clone)]
struct Coloring {
    colors: u8,
}

impl Protocol for Coloring {
    type State = u8;
    fn name(&self) -> String {
        "coloring".into()
    }
    fn rules(&self) -> Vec<RuleInfo> {
        vec![RuleInfo::new("RECOLOR")]
    }
    fn enabled_rule(&self, view: &View<'_, u8>) -> Option<RuleId> {
        let me = *view.state();
        let conflict = view.neighbor_states().any(|(u, &s)| u < view.vertex() && s == me);
        conflict.then_some(RuleId::new(0))
    }
    fn apply(&self, view: &View<'_, u8>, _rule: RuleId) -> u8 {
        let used: Vec<u8> = view.neighbor_states().map(|(_, &s)| s).collect();
        (0..self.colors).find(|c| !used.contains(c)).unwrap_or(0)
    }
    fn random_state(&self, _v: VertexId, rng: &mut StdRng) -> u8 {
        rng.gen_range(0..self.colors)
    }
}

/// Max propagation: simple monotone protocol with a different enablement
/// shape (terminal once uniform).
#[derive(Clone)]
struct MaxProto;

impl Protocol for MaxProto {
    type State = u32;
    fn name(&self) -> String {
        "max".into()
    }
    fn rules(&self) -> Vec<RuleInfo> {
        vec![RuleInfo::new("ADOPT")]
    }
    fn enabled_rule(&self, view: &View<'_, u32>) -> Option<RuleId> {
        let best = view.neighbor_states().map(|(_, &s)| s).max().unwrap_or(0);
        (best > *view.state()).then_some(RuleId::new(0))
    }
    fn apply(&self, view: &View<'_, u32>, _rule: RuleId) -> u32 {
        view.neighbor_states().map(|(_, &s)| s).max().unwrap()
    }
    fn random_state(&self, _v: VertexId, rng: &mut StdRng) -> u32 {
        rng.gen_range(0..32)
    }
}

/// Observer recording everything an execution exposes, for exact
/// event-stream comparison between the two engine paths.
struct FullRecorder<S> {
    start: Option<Configuration<S>>,
    afters: Vec<Configuration<S>>,
    deltas: Vec<Vec<(VertexId, S, S)>>,
    activated: Vec<Vec<(VertexId, RuleId)>>,
    enabled_after: Vec<Vec<VertexId>>,
}

impl<S> FullRecorder<S> {
    fn new() -> Self {
        Self {
            start: None,
            afters: Vec::new(),
            deltas: Vec::new(),
            activated: Vec::new(),
            enabled_after: Vec::new(),
        }
    }
}

impl<S: Clone> Observer<S> for FullRecorder<S> {
    fn on_start(&mut self, config: &Configuration<S>, _graph: &Graph) {
        self.start = Some(config.clone());
    }
    fn on_step(&mut self, event: &StepEvent<'_, S>) {
        self.afters.push(event.after.clone());
        self.deltas.push(event.delta.to_vec());
        self.activated.push(event.activated.to_vec());
        self.enabled_after.push(event.enabled_after.to_vec());
    }
}

fn graph_for(kind: u8, n: usize, seed: u64) -> Graph {
    match kind % 4 {
        0 => generators::ring(n.max(3)).unwrap(),
        1 => generators::path(n.max(2)).unwrap(),
        2 => generators::torus(3, n.clamp(3, 6)).unwrap(),
        _ => generators::random_tree(n.max(2), seed).unwrap(),
    }
}

/// The shared scheduler zoo (everything but the protocol-specific greedy
/// adversary, which tests construct directly).
fn zoo_daemon<S: Clone + 'static>(idx: usize, seed: u64) -> Box<dyn Daemon<S>> {
    const SPECS: [&str; 7] = [
        "sync",
        "central-rr",
        "central-rand",
        "central-min",
        "central-max",
        "dist:0.5",
        "kbounded:3:0.4",
    ];
    parse_daemon_spec::<S>(SPECS[idx % SPECS.len()], seed).expect("valid spec")
}

fn assert_runs_equal<S: Clone + Eq + std::fmt::Debug>(
    label: &str,
    new: (RunSummary<S>, FullRecorder<S>),
    reference: (RunSummary<S>, FullRecorder<S>),
) {
    let (sn, rn) = new;
    let (sr, rr) = reference;
    assert_eq!(sn.steps, sr.steps, "{label}: steps");
    assert_eq!(sn.moves, sr.moves, "{label}: moves");
    assert_eq!(sn.stop, sr.stop, "{label}: stop reason");
    assert_eq!(sn.final_config, sr.final_config, "{label}: final configuration");
    assert_eq!(rn.start, rr.start, "{label}: start configuration");
    assert_eq!(rn.afters, rr.afters, "{label}: after configurations");
    assert_eq!(rn.deltas, rr.deltas, "{label}: step deltas");
    assert_eq!(rn.activated, rr.activated, "{label}: activations");
    assert_eq!(rn.enabled_after, rr.enabled_after, "{label}: enabled sets");
}

fn differential_case<P: Protocol>(
    proto: &P,
    g: &Graph,
    make_daemon: impl Fn() -> Box<dyn Daemon<P::State>>,
    label: &str,
    seed: u64,
    max_steps: usize,
) {
    let sim = Simulator::new(g, proto);
    let mut rng = StdRng::seed_from_u64(seed);
    let init = random_configuration(g, proto, &mut rng);

    let mut d_new = make_daemon();
    let mut rec_new = FullRecorder::new();
    let s_new = sim.run(
        init.clone(),
        d_new.as_mut(),
        RunLimits::with_max_steps(max_steps),
        &mut [&mut rec_new],
    );

    let mut d_ref = make_daemon();
    let mut rec_ref = FullRecorder::new();
    let s_ref = sim.run_reference(
        init,
        d_ref.as_mut(),
        RunLimits::with_max_steps(max_steps),
        &mut [&mut rec_ref],
    );

    let label = format!("proto={} {label} seed={seed}", proto.name());
    assert_runs_equal(&label, (s_new, rec_new), (s_ref, rec_ref));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Coloring × every daemon in the zoo × random trees/rings/paths/tori.
    #[test]
    fn coloring_matches_reference(kind in any::<u8>(), n in 2usize..12, daemon_idx in 0usize..7, seed in any::<u64>()) {
        let g = graph_for(kind, n, seed);
        let label = format!("daemon#{daemon_idx}");
        differential_case(
            &Coloring { colors: 8 },
            &g,
            || zoo_daemon::<u8>(daemon_idx, seed),
            &label,
            seed,
            5_000,
        );
    }

    /// Max propagation × every daemon including the greedy preview-driven
    /// adversary (index 7), which exercises the zero-clone preview path.
    #[test]
    fn max_propagation_matches_reference(kind in any::<u8>(), n in 2usize..10, daemon_idx in 0usize..8, seed in any::<u64>()) {
        let g = graph_for(kind, n, seed);
        let label = format!("daemon#{daemon_idx}");
        differential_case(
            &MaxProto,
            &g,
            || -> Box<dyn Daemon<u32>> {
                if daemon_idx < 7 {
                    zoo_daemon::<u32>(daemon_idx, seed)
                } else {
                    Box::new(max_enabled_adversary(
                        Arc::new(MaxProto),
                        AdversaryMoves::SingletonsAndAll,
                        seed,
                    ))
                }
            },
            &label,
            seed,
            5_000,
        );
    }

    /// The delta-based ConfigTrace reconstructs exactly the configurations
    /// a full-cloning recorder captures.
    #[test]
    fn config_trace_reconstruction_is_exact(kind in any::<u8>(), n in 2usize..10, daemon_idx in 0usize..7, seed in any::<u64>()) {
        let g = graph_for(kind, n, seed);
        let proto = Coloring { colors: 8 };
        let sim = Simulator::new(&g, &proto);
        let mut rng = StdRng::seed_from_u64(seed);
        let init = random_configuration(&g, &proto, &mut rng);
        let mut daemon = zoo_daemon::<u8>(daemon_idx, seed);
        let mut trace = ConfigTrace::new();
        let mut full = FullRecorder::new();
        let _ = sim.run(
            init.clone(),
            daemon.as_mut(),
            RunLimits::with_max_steps(2_000),
            &mut [&mut trace, &mut full],
        );
        let reconstructed = trace.configs();
        prop_assert_eq!(reconstructed.len(), full.afters.len() + 1);
        prop_assert_eq!(&reconstructed[0], &init);
        for (i, after) in full.afters.iter().enumerate() {
            prop_assert_eq!(&reconstructed[i + 1], after, "config {} diverged", i + 1);
            prop_assert_eq!(&trace.config_at(i + 1), after);
        }
        // Restriction agrees with per-vertex projection of the full trace.
        for v in g.vertices() {
            let expected: Vec<u8> = std::iter::once(*init.get(v))
                .chain(full.afters.iter().map(|c| *c.get(v)))
                .collect();
            prop_assert_eq!(trace.restriction(v), expected);
        }
    }
}
