//! Property-based tests for the simulation kernel: daemon contracts and
//! engine invariants, exercised through a small self-stabilizing coloring
//! protocol.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use specstab_kernel::config::Configuration;
use specstab_kernel::daemon::{
    CentralDaemon, CentralStrategy, Daemon, RandomDistributedDaemon, SynchronousDaemon,
};
use specstab_kernel::engine::{RunLimits, Simulator, StopReason};
use specstab_kernel::observer::{MoveCounter, Observer, RoundCounter, StepEvent, TraceRecorder};
use specstab_kernel::protocol::{random_configuration, Protocol, RuleId, RuleInfo, View};
use specstab_topology::{generators, Graph, VertexId};

/// Greedy self-stabilizing coloring on trees/paths: a vertex conflicting
/// with a *smaller-index* neighbor recolors itself to the smallest color
/// free in its whole neighborhood. On trees this converges under every
/// daemon (each vertex's color eventually fixes in index order).
struct Coloring {
    colors: u8,
}

impl Protocol for Coloring {
    type State = u8;
    fn name(&self) -> String {
        "coloring".into()
    }
    fn rules(&self) -> Vec<RuleInfo> {
        vec![RuleInfo::new("RECOLOR")]
    }
    fn enabled_rule(&self, view: &View<'_, u8>) -> Option<RuleId> {
        let me = *view.state();
        let conflict = view.neighbor_states().any(|(u, &s)| u < view.vertex() && s == me);
        conflict.then_some(RuleId::new(0))
    }
    fn apply(&self, view: &View<'_, u8>, _rule: RuleId) -> u8 {
        let used: Vec<u8> = view.neighbor_states().map(|(_, &s)| s).collect();
        (0..self.colors).find(|c| !used.contains(c)).unwrap_or(0)
    }
    fn random_state(&self, _v: VertexId, rng: &mut StdRng) -> u8 {
        rng.gen_range(0..self.colors)
    }
}

fn proper_coloring(c: &Configuration<u8>, g: &Graph) -> bool {
    g.edges().iter().all(|&(u, v)| c.get(u) != c.get(v))
}

fn tree_and_init(n: usize, seed: u64) -> (Graph, Configuration<u8>, Coloring) {
    let g = generators::random_tree(n, seed).expect("n >= 1");
    let proto = Coloring { colors: 8 };
    let mut rng = StdRng::seed_from_u64(seed ^ 0xBEEF);
    let init = random_configuration(&g, &proto, &mut rng);
    (g, init, proto)
}

/// Observer asserting core engine invariants on every step.
struct InvariantChecker {
    max_activation: usize,
}

impl Observer<u8> for InvariantChecker {
    fn on_step(&mut self, ev: &StepEvent<'_, u8>) {
        assert!(!ev.activated.is_empty(), "every action activates someone");
        assert!(ev.activated.len() <= self.max_activation);
        // Non-activated vertices keep their state.
        let moved: Vec<VertexId> = ev.activated.iter().map(|&(v, _)| v).collect();
        for (v, s) in ev.before.iter() {
            if !moved.contains(&v) {
                assert_eq!(s, ev.after.get(v), "non-activated vertex changed state");
            }
        }
        // enabled_after is sorted and deduplicated.
        assert!(ev.enabled_after.windows(2).all(|w| w[0] < w[1]));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn engine_invariants_hold_under_all_daemons(n in 2usize..12, seed in any::<u64>()) {
        let (g, init, proto) = tree_and_init(n, seed);
        let sim = Simulator::new(&g, &proto);
        let mut daemons: Vec<Box<dyn Daemon<u8>>> = vec![
            Box::new(SynchronousDaemon::new()),
            Box::new(CentralDaemon::new(CentralStrategy::RoundRobin)),
            Box::new(CentralDaemon::new(CentralStrategy::Random(seed))),
            Box::new(RandomDistributedDaemon::new(0.5, seed)),
        ];
        for d in &mut daemons {
            let mut checker = InvariantChecker { max_activation: g.n() };
            let s = sim.run(
                init.clone(),
                d.as_mut(),
                RunLimits::with_max_steps(10_000),
                &mut [&mut checker],
            );
            // Coloring on a tree always terminates, and terminal means proper.
            prop_assert_eq!(s.stop, StopReason::Terminal, "daemon {}", d.name());
            prop_assert!(proper_coloring(&s.final_config, &g));
        }
    }

    #[test]
    fn central_daemons_move_once_per_step(n in 2usize..10, seed in any::<u64>()) {
        let (g, init, proto) = tree_and_init(n, seed);
        let sim = Simulator::new(&g, &proto);
        let mut d = CentralDaemon::new(CentralStrategy::Random(seed));
        let mut mc = MoveCounter::new();
        let s = sim.run(init, &mut d, RunLimits::with_max_steps(10_000), &mut [&mut mc]);
        prop_assert_eq!(mc.total(), s.steps as u64);
        prop_assert_eq!(s.moves, s.steps as u64);
    }

    #[test]
    fn same_seed_same_execution(n in 2usize..10, seed in any::<u64>()) {
        let (g, init, proto) = tree_and_init(n, seed);
        let sim = Simulator::new(&g, &proto);
        let run = |seed2| {
            let mut d = RandomDistributedDaemon::new(0.4, seed2);
            let mut tr = TraceRecorder::new();
            sim.run(init.clone(), &mut d, RunLimits::with_max_steps(5_000), &mut [&mut tr]);
            tr.configs().to_vec()
        };
        prop_assert_eq!(run(seed), run(seed));
    }

    #[test]
    fn rounds_never_exceed_steps(n in 2usize..10, seed in any::<u64>()) {
        let (g, init, proto) = tree_and_init(n, seed);
        let sim = Simulator::new(&g, &proto);
        let mut d = RandomDistributedDaemon::new(0.7, seed);
        let mut rc = RoundCounter::new();
        let s = sim.run(init, &mut d, RunLimits::with_max_steps(5_000), &mut [&mut rc]);
        prop_assert!(rc.rounds() <= s.steps);
    }

    #[test]
    fn synchronous_rounds_equal_steps(n in 2usize..10, seed in any::<u64>()) {
        let (g, init, proto) = tree_and_init(n, seed);
        let sim = Simulator::new(&g, &proto);
        let mut d = SynchronousDaemon::new();
        let mut rc = RoundCounter::new();
        let s = sim.run(init, &mut d, RunLimits::with_max_steps(5_000), &mut [&mut rc]);
        prop_assert_eq!(rc.rounds(), s.steps);
    }

    #[test]
    fn trace_restriction_has_full_length(n in 2usize..8, seed in any::<u64>()) {
        let (g, init, proto) = tree_and_init(n, seed);
        let sim = Simulator::new(&g, &proto);
        let mut d = SynchronousDaemon::new();
        let mut tr = TraceRecorder::new();
        let s = sim.run(init, &mut d, RunLimits::with_max_steps(5_000), &mut [&mut tr]);
        for v in g.vertices() {
            prop_assert_eq!(tr.restriction(v).len(), s.steps + 1);
        }
    }
}
