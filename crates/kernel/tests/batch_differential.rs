//! Differential suite for replica-parallel batched stepping: every lane
//! of [`run_batch`] / [`run_batch_measured`] (and their `_with` variants
//! under the central round-robin, central-rand and random-distributed
//! daemons) must be observationally identical to an independent scalar
//! run of the same initial configuration under the matching scalar
//! daemon — same step/move counts, same stop reason, same final
//! configuration, and (for the measured runner) the same
//! [`StabilizationReport`] monitor fields index for index, across
//! topologies × seeds × lane counts K ∈ {1, 3, 64, 100}. The random
//! daemons additionally pin the per-lane RNG streams: lane `l` seeded
//! with `s` replays the scalar daemon seeded with `s` draw for draw.
//! A final property holds the transposed incremental enabled-bitset to
//! the dense full-sweep reference it replaced.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use specstab_kernel::batch::{
    run_batch, run_batch_measured, run_batch_measured_with, run_batch_with,
    run_batch_with_dense_sweep, BatchDaemon, PackedProtocol,
};
use specstab_kernel::config::Configuration;
use specstab_kernel::daemon::{
    CentralDaemon, CentralStrategy, RandomDistributedDaemon, SynchronousDaemon,
};
use specstab_kernel::engine::{RunLimits, Simulator};
use specstab_kernel::measure::{MeasurementContext, StabilizationReport};
use specstab_kernel::observer::ConfigPredicate;
use specstab_kernel::protocol::{random_configuration, Protocol, RuleId, RuleInfo, View};
use specstab_topology::{generators, Graph, VertexId};

/// Max propagation: adopt the largest neighbor value when it beats yours.
/// Terminal once the maximum has flooded the graph — a protocol whose
/// convergence step varies per seed, so big batches always mix active and
/// masked lanes.
#[derive(Clone)]
struct MaxProto;

impl Protocol for MaxProto {
    type State = u32;
    fn name(&self) -> String {
        "max".into()
    }
    fn rules(&self) -> Vec<RuleInfo> {
        vec![RuleInfo::new("ADOPT")]
    }
    fn enabled_rule(&self, view: &View<'_, u32>) -> Option<RuleId> {
        let best = view.neighbor_states().map(|(_, &s)| s).max().unwrap_or(0);
        (best > *view.state()).then_some(RuleId::new(0))
    }
    fn apply(&self, view: &View<'_, u32>, _rule: RuleId) -> u32 {
        view.neighbor_states().map(|(_, &s)| s).max().unwrap()
    }
    fn random_state(&self, _v: VertexId, rng: &mut StdRng) -> u32 {
        rng.gen_range(0..1000)
    }
}

impl PackedProtocol for MaxProto {
    type Lane = u32;
    type LaneScratch = Vec<u32>;

    fn pack(&self, state: &u32) -> u32 {
        *state
    }

    fn unpack(&self, lane: u32) -> u32 {
        lane
    }

    fn step_lanes(
        &self,
        graph: &Graph,
        lanes: usize,
        soa: &[u32],
        next: &mut [u32],
        fired: &mut [bool],
        scratch: &mut Vec<u32>,
    ) {
        scratch.resize(lanes, 0);
        let best = &mut scratch[..lanes];
        for v in graph.vertices() {
            let base = v.index() * lanes;
            best.fill(0);
            for &u in graph.neighbors(v) {
                let ru = &soa[u.index() * lanes..u.index() * lanes + lanes];
                for (b, &s) in best.iter_mut().zip(ru) {
                    *b = (*b).max(s);
                }
            }
            for l in 0..lanes {
                fired[base + l] = best[l] > soa[base + l];
                next[base + l] = best[l];
            }
        }
    }

    fn eval_vertex_lanes(
        &self,
        graph: &Graph,
        v: usize,
        lanes: usize,
        soa: &[u32],
        next: &mut [u32],
        fired: &mut [bool],
        scratch: &mut Vec<u32>,
    ) {
        scratch.resize(lanes, 0);
        let best = &mut scratch[..lanes];
        let v = VertexId::new(v);
        let base = v.index() * lanes;
        best.fill(0);
        for &u in graph.neighbors(v) {
            let ru = &soa[u.index() * lanes..u.index() * lanes + lanes];
            for (b, &s) in best.iter_mut().zip(ru) {
                *b = (*b).max(s);
            }
        }
        for l in 0..lanes {
            fired[base + l] = best[l] > soa[base + l];
            next[base + l] = best[l];
        }
    }
}

fn graph_for(case: u8) -> Graph {
    match case % 4 {
        0 => generators::ring(9).unwrap(),
        1 => generators::torus(3, 4).unwrap(),
        2 => generators::path(7).unwrap(),
        _ => generators::complete(5).unwrap(),
    }
}

fn random_inits(graph: &Graph, k: usize, seed: u64) -> Vec<Configuration<u32>> {
    (0..k)
        .map(|l| {
            let mut rng = StdRng::seed_from_u64(seed ^ (0xB47C * l as u64 + 1));
            random_configuration(graph, &MaxProto, &mut rng)
        })
        .collect()
}

/// Legitimacy: the maximum has flooded (all states equal).
fn all_equal() -> ConfigPredicate<u32> {
    Box::new(|c, _| c.states().windows(2).all(|w| w[0] == w[1]))
}

/// Safety: an arbitrary nontrivial predicate (vertex 0 holds the global
/// maximum), so violation tracking has something to record mid-run.
fn zero_holds_max() -> ConfigPredicate<u32> {
    Box::new(|c, _| {
        let max = c.states().iter().copied().max().unwrap_or(0);
        *c.get(VertexId::new(0)) == max
    })
}

fn assert_reports_match(lane: &StabilizationReport, scalar: &StabilizationReport) {
    assert_eq!(lane.steps_run, scalar.steps_run);
    assert_eq!(lane.moves, scalar.moves);
    assert_eq!(lane.stop, scalar.stop);
    assert_eq!(lane.last_violation, scalar.last_violation);
    assert_eq!(lane.violation_count, scalar.violation_count);
    assert_eq!(lane.stabilization_steps, scalar.stabilization_steps);
    assert_eq!(lane.first_legitimate, scalar.first_legitimate);
    assert_eq!(lane.legitimacy_entry, scalar.legitimacy_entry);
    assert_eq!(lane.ended_legitimate, scalar.ended_legitimate);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Plain batched runs equal K independent scalar engine runs.
    #[test]
    fn batch_equals_scalar_runs(
        case in 0u8..4,
        seed in 0u64..1_000,
        k_pick in 0usize..4,
        tight in 0u8..2,
    ) {
        // Alternate between a tight step budget (every lane hits MaxSteps)
        // and a generous one (every lane reaches Terminal).
        let max_steps = if tight == 0 { 2 } else { 300 };
        let k = [1, 3, 64, 100][k_pick];
        let graph = graph_for(case);
        let inits = random_inits(&graph, k, seed);
        let lanes = run_batch(&graph, &MaxProto, &inits, max_steps);
        prop_assert_eq!(lanes.len(), k);
        for (lane, init) in lanes.iter().zip(&inits) {
            let mut daemon = SynchronousDaemon::new();
            let sim = Simulator::new(&graph, &MaxProto);
            let scalar =
                sim.run(init.clone(), &mut daemon, RunLimits::with_max_steps(max_steps), &mut []);
            prop_assert_eq!(lane.steps, scalar.steps);
            prop_assert_eq!(lane.moves, scalar.moves);
            prop_assert_eq!(lane.stop, scalar.stop);
            prop_assert_eq!(&lane.final_config, &scalar.final_config);
        }
    }

    /// Measured batched runs replicate the scalar `MeasurementContext`
    /// monitor stack (with and without early stop) lane for lane.
    #[test]
    fn batch_measured_equals_scalar_measurement(
        case in 0u8..4,
        seed in 0u64..1_000,
        k_pick in 0usize..4,
        early_pick in 0u8..2,
    ) {
        let early = early_pick == 1;
        let k = [1, 3, 64, 100][k_pick];
        let graph = graph_for(case);
        let inits = random_inits(&graph, k, seed);
        let stop_pred = all_equal();
        let early_stop = early.then_some((&stop_pred, 2usize));
        let measured = run_batch_measured(
            &graph,
            &MaxProto,
            inits.clone(),
            200,
            &zero_holds_max(),
            &all_equal(),
            early_stop,
        );
        prop_assert_eq!(measured.len(), k);
        for ((report, final_config), init) in measured.iter().zip(&inits) {
            let sim = Simulator::new(&graph, &MaxProto);
            let mut ctx = MeasurementContext::new(zero_holds_max(), all_equal());
            if early {
                ctx = ctx.with_early_stop(all_equal(), 2);
            }
            let scalar = ctx.run(&sim, &mut SynchronousDaemon::new(), init.clone(), 200);
            assert_reports_match(report, &scalar);
            // The measured runner also hands back the lane's final
            // configuration. The scalar measurement context doesn't expose
            // its final configuration, so cross-check against a plain run
            // truncated to the measured run's step count: the synchronous
            // daemon is deterministic, so equal step counts mean equal
            // configurations regardless of why each run stopped.
            let plain = sim.run(
                init.clone(),
                &mut SynchronousDaemon::new(),
                RunLimits::with_max_steps(report.steps_run),
                &mut [],
            );
            prop_assert_eq!(final_config, &plain.final_config);
        }
    }

    /// Lane-divergent batched central round-robin runs equal K independent
    /// scalar runs under the scalar `central-rr` daemon — each lane keeps
    /// its own cursor and commits one vertex per pass, so lanes disagree
    /// about which vertex moves from the very first step.
    #[test]
    fn batch_central_rr_equals_scalar_runs(
        case in 0u8..4,
        seed in 0u64..1_000,
        k_pick in 0usize..4,
        tight in 0u8..2,
    ) {
        let max_steps = if tight == 0 { 5 } else { 2_000 };
        let k = [1, 3, 64, 100][k_pick];
        let graph = graph_for(case);
        let inits = random_inits(&graph, k, seed);
        let lanes =
            run_batch_with(&graph, &MaxProto, BatchDaemon::CentralRr, &[], &inits, max_steps);
        prop_assert_eq!(lanes.len(), k);
        for (lane, init) in lanes.iter().zip(&inits) {
            let mut daemon = CentralDaemon::new(CentralStrategy::RoundRobin);
            let sim = Simulator::new(&graph, &MaxProto);
            let scalar =
                sim.run(init.clone(), &mut daemon, RunLimits::with_max_steps(max_steps), &mut []);
            prop_assert_eq!(lane.steps, scalar.steps);
            prop_assert_eq!(lane.moves, scalar.moves);
            prop_assert_eq!(lane.stop, scalar.stop);
            prop_assert_eq!(&lane.final_config, &scalar.final_config);
        }
    }

    /// Measured batched central round-robin runs replicate the scalar
    /// `MeasurementContext` monitor stack lane for lane.
    #[test]
    fn batch_central_rr_measured_equals_scalar_measurement(
        case in 0u8..4,
        seed in 0u64..1_000,
        k_pick in 0usize..4,
        early_pick in 0u8..2,
    ) {
        let early = early_pick == 1;
        let k = [1, 3, 64, 100][k_pick];
        let graph = graph_for(case);
        let inits = random_inits(&graph, k, seed);
        let stop_pred = all_equal();
        let early_stop = early.then_some((&stop_pred, 2usize));
        let measured = run_batch_measured_with(
            &graph,
            &MaxProto,
            BatchDaemon::CentralRr,
            &[],
            inits.clone(),
            1_000,
            &zero_holds_max(),
            &all_equal(),
            early_stop,
        );
        prop_assert_eq!(measured.len(), k);
        for ((report, final_config), init) in measured.iter().zip(&inits) {
            let sim = Simulator::new(&graph, &MaxProto);
            let mut ctx = MeasurementContext::new(zero_holds_max(), all_equal());
            if early {
                ctx = ctx.with_early_stop(all_equal(), 2);
            }
            let scalar = ctx.run(
                &sim,
                &mut CentralDaemon::new(CentralStrategy::RoundRobin),
                init.clone(),
                1_000,
            );
            assert_reports_match(report, &scalar);
            // Same truncated-replay cross-check as the synchronous case:
            // the round-robin daemon is deterministic, so equal step
            // counts mean equal configurations.
            let plain = sim.run(
                init.clone(),
                &mut CentralDaemon::new(CentralStrategy::RoundRobin),
                RunLimits::with_max_steps(report.steps_run),
                &mut [],
            );
            prop_assert_eq!(final_config, &plain.final_config);
        }
    }

    /// Lane-divergent batched central-rand runs equal K independent
    /// scalar runs under the scalar seeded `CentralStrategy::Random`
    /// daemon: lane `l` carries its own RNG stream seeded exactly like
    /// scalar replica `l`, so the per-lane pick sequences — and with them
    /// every step/move count and final configuration — replay draw for
    /// draw.
    #[test]
    fn batch_central_rand_equals_scalar_runs(
        case in 0u8..4,
        seed in 0u64..1_000,
        k_pick in 0usize..3,
        tight in 0u8..2,
    ) {
        let max_steps = if tight == 0 { 5 } else { 2_000 };
        let k = [1, 3, 64][k_pick];
        let graph = graph_for(case);
        let inits = random_inits(&graph, k, seed);
        let seeds: Vec<u64> = (0..k as u64).map(|l| seed ^ (0x5EED * l + 7)).collect();
        let lanes =
            run_batch_with(&graph, &MaxProto, BatchDaemon::CentralRand, &seeds, &inits, max_steps);
        prop_assert_eq!(lanes.len(), k);
        for ((lane, init), &s) in lanes.iter().zip(&inits).zip(&seeds) {
            let mut daemon = CentralDaemon::new(CentralStrategy::Random(s));
            let sim = Simulator::new(&graph, &MaxProto);
            let scalar =
                sim.run(init.clone(), &mut daemon, RunLimits::with_max_steps(max_steps), &mut []);
            prop_assert_eq!(lane.steps, scalar.steps);
            prop_assert_eq!(lane.moves, scalar.moves);
            prop_assert_eq!(lane.stop, scalar.stop);
            prop_assert_eq!(&lane.final_config, &scalar.final_config);
        }
    }

    /// Lane-divergent batched random-distributed runs equal K independent
    /// scalar runs under the scalar `RandomDistributedDaemon` with the
    /// same per-lane seeds: each lane replays its scalar replica's
    /// `gen_bool` coin sequence (ascending vertex order over the enabled
    /// set) plus the uniform fallback draw on empty samples.
    #[test]
    fn batch_random_distributed_equals_scalar_runs(
        case in 0u8..4,
        seed in 0u64..1_000,
        k_pick in 0usize..3,
        p_pick in 0usize..3,
        tight in 0u8..2,
    ) {
        let max_steps = if tight == 0 { 5 } else { 2_000 };
        let k = [1, 3, 64][k_pick];
        let p = [0.25, 0.5, 1.0][p_pick];
        let graph = graph_for(case);
        let inits = random_inits(&graph, k, seed);
        let seeds: Vec<u64> = (0..k as u64).map(|l| seed ^ (0xD157 * l + 3)).collect();
        let lanes = run_batch_with(
            &graph,
            &MaxProto,
            BatchDaemon::RandomDistributed { p },
            &seeds,
            &inits,
            max_steps,
        );
        prop_assert_eq!(lanes.len(), k);
        for ((lane, init), &s) in lanes.iter().zip(&inits).zip(&seeds) {
            let mut daemon = RandomDistributedDaemon::new(p, s);
            let sim = Simulator::new(&graph, &MaxProto);
            let scalar =
                sim.run(init.clone(), &mut daemon, RunLimits::with_max_steps(max_steps), &mut []);
            prop_assert_eq!(lane.steps, scalar.steps);
            prop_assert_eq!(lane.moves, scalar.moves);
            prop_assert_eq!(lane.stop, scalar.stop);
            prop_assert_eq!(&lane.final_config, &scalar.final_config);
        }
    }

    /// The transposed incremental enabled-bitset maintains exactly the
    /// enabled set a dense full guard sweep recomputes from scratch:
    /// forcing the dense-sweep reference path (same selection and RNG
    /// code, only the bitset maintenance differs) yields bit-identical
    /// lane results for every divergent daemon mode.
    #[test]
    fn incremental_bitset_matches_dense_sweep(
        case in 0u8..4,
        seed in 0u64..1_000,
        mode_pick in 0usize..3,
        k_pick in 0usize..3,
    ) {
        let k = [1, 3, 64][k_pick];
        let mode = [
            BatchDaemon::CentralRr,
            BatchDaemon::CentralRand,
            BatchDaemon::RandomDistributed { p: 0.5 },
        ][mode_pick];
        let graph = graph_for(case);
        let inits = random_inits(&graph, k, seed);
        let seeds: Vec<u64> = if mode.needs_lane_seeds() {
            (0..k as u64).map(|l| seed ^ (0xB175 * l + 5)).collect()
        } else {
            Vec::new()
        };
        let incremental = run_batch_with(&graph, &MaxProto, mode, &seeds, &inits, 1_000);
        let dense = run_batch_with_dense_sweep(&graph, &MaxProto, mode, &seeds, &inits, 1_000);
        prop_assert_eq!(incremental.len(), dense.len());
        for (a, b) in incremental.iter().zip(&dense) {
            prop_assert_eq!(a.steps, b.steps);
            prop_assert_eq!(a.moves, b.moves);
            prop_assert_eq!(a.stop, b.stop);
            prop_assert_eq!(&a.final_config, &b.final_config);
        }
    }
}
