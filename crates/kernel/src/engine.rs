//! The execution engine: applies daemon-chosen actions step by step.
//!
//! One **step** (the paper's unit of stabilization time) is one action
//! `(γ, γ')`: the daemon selects a nonempty subset of the enabled vertices,
//! each of which atomically computes its next state from `γ`. The engine
//! additionally counts **moves** (individual vertex activations).
//!
//! # Zero-allocation stepping
//!
//! Speculation profiles are estimated by simulating millions of steps, so
//! the steady-state step loop performs **zero heap allocations and zero
//! configuration clones** (measured by the `config_clones` counter of
//! [`specstab_telemetry::counters::global`]):
//!
//! * configurations are **double-buffered** — [`Simulator::apply_action_into`]
//!   writes the successor into a reused buffer which is swapped with the
//!   current configuration and then *repaired* from the step's delta
//!   (`O(|activated|)` instead of an `O(n)` copy);
//! * the sorted enabled list and its bitmask are maintained
//!   **incrementally** from the touched set (activated vertices plus their
//!   neighbors) by a two-pointer merge — no per-step rescan of all
//!   vertices;
//! * daemons write their selection into a reused scratch buffer and preview
//!   candidate actions into a per-daemon scratch configuration
//!   ([`crate::daemon::SelectionContext::preview`]);
//! * observers receive the step's `(vertex, before, after)` **delta**
//!   alongside borrowed before/after configurations, so monitors never need
//!   to clone.
//!
//! # Stamp-based set maintenance (no per-step comparison sort)
//!
//! The daemon's selection and the touched set (activated vertices plus
//! their neighborhoods) are **deduplicated with a generation-stamped dense
//! mark array** instead of `sort_unstable + dedup`: marking a vertex is one
//! store, membership is one load, and clearing is a generation bump —
//! `O(k)` total. Sorted order (required by the two-pointer enabled-set
//! merge) comes almost for free: daemons emit selections in enabled order
//! (verified by an `O(k)` strictly-increasing scan, sorting only on the
//! rare fallback), and the touched set is either *all* vertices (the
//! synchronous common case, emitted as `0..n` directly) or a small sort
//! over the already-deduplicated list. Steady-state guard evaluation goes
//! through bounds-`debug_assert`ed [`View`]s over cached CSR neighbor
//! slices; the checked constructors still guard run entry and every public
//! one-shot API.
//!
//! All reusable buffers live in [`StepScratch`]; [`Simulator::run`] creates
//! one per run, and [`Simulator::run_with_scratch`] lets batch drivers reuse
//! buffers across runs. The clone-based original loop is retained as
//! [`Simulator::run_reference`] for differential testing (compiled under
//! `cfg(test)` or the `reference` feature only — release builds drop it).

use crate::config::Configuration;
use crate::daemon::{Daemon, SelectionContext};
use crate::observer::{Observer, StepEvent};
use crate::protocol::{Protocol, RuleId, View};
use specstab_telemetry::RunCounters;
use specstab_topology::{Graph, VertexId};

/// Why a run stopped.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum StopReason {
    /// No vertex was enabled: the configuration is terminal.
    Terminal,
    /// The step limit was reached.
    MaxSteps,
    /// An observer requested the stop (e.g. legitimacy + margin reached).
    ObserverRequest,
}

/// Resource limits for a run.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct RunLimits {
    /// Maximum number of steps (actions) to execute.
    pub max_steps: usize,
}

impl RunLimits {
    /// Limits with the given step cap.
    #[must_use]
    pub fn with_max_steps(max_steps: usize) -> Self {
        Self { max_steps }
    }
}

/// Result of a run.
#[derive(Clone, Debug)]
pub struct RunSummary<S> {
    /// The configuration when the run stopped.
    pub final_config: Configuration<S>,
    /// Steps (actions) executed.
    pub steps: usize,
    /// Moves (vertex activations) executed.
    pub moves: u64,
    /// Why the run stopped.
    pub stop: StopReason,
    /// Deterministic telemetry tallies of this run (steps, moves, guard
    /// evaluations, delta bytes), accumulated in plain locals by the step
    /// loop and flushed to the process-global aggregate exactly once, here.
    pub counters: RunCounters,
}

/// Reusable scratch buffers for the zero-allocation step loop.
///
/// One `StepScratch` holds every buffer a run mutates per step: the
/// double-buffered successor configuration, the daemon's selection, the
/// touched set (activated vertices + neighbors), the fired `(vertex, rule)`
/// pairs, the step delta, and the incrementally maintained enabled
/// list/bitmask. After warm-up (first step sizes the buffers) a steady-state
/// step allocates nothing.
///
/// [`Simulator::run`] creates one internally; batch drivers that execute
/// many runs back to back can hold one and call
/// [`Simulator::run_with_scratch`] to reuse the buffers across runs.
#[derive(Clone, Debug)]
pub struct StepScratch<S> {
    next: Configuration<S>,
    selection: Vec<VertexId>,
    touched: Vec<VertexId>,
    fired: Vec<(VertexId, RuleId)>,
    deltas: Vec<(VertexId, S, S)>,
    enabled: Vec<VertexId>,
    /// Scratch for the re-merged window of the enabled list (only the
    /// vertex-index range whose status changed gets rebuilt per step).
    next_enabled: Vec<VertexId>,
    enabled_mask: Vec<bool>,
    /// Generation-stamped dense mark array: `stamps[v] == generation` means
    /// "v is in the set currently being deduplicated". Clearing the set is
    /// one `generation` bump — no `O(n)` memset, no comparison sort.
    stamps: Vec<u64>,
    generation: u64,
}

impl<S> StepScratch<S> {
    /// Creates empty scratch buffers (sized lazily by the first run).
    #[must_use]
    pub fn new() -> Self {
        Self {
            next: Configuration::new(Vec::new()),
            selection: Vec::new(),
            touched: Vec::new(),
            fired: Vec::new(),
            deltas: Vec::new(),
            enabled: Vec::new(),
            next_enabled: Vec::new(),
            enabled_mask: Vec::new(),
            stamps: Vec::new(),
            generation: 0,
        }
    }
}

impl<S> Default for StepScratch<S> {
    fn default() -> Self {
        Self::new()
    }
}

/// Simulator binding a protocol to a communication graph.
///
/// See the crate-level example for a full usage walk-through.
pub struct Simulator<'a, P: Protocol> {
    graph: &'a Graph,
    protocol: &'a P,
}

impl<'a, P: Protocol> Simulator<'a, P> {
    /// Creates a simulator for `protocol` on `graph`.
    #[must_use]
    pub fn new(graph: &'a Graph, protocol: &'a P) -> Self {
        Self { graph, protocol }
    }

    /// The communication graph.
    #[must_use]
    pub fn graph(&self) -> &'a Graph {
        self.graph
    }

    /// The protocol under simulation.
    #[must_use]
    pub fn protocol(&self) -> &'a P {
        self.protocol
    }

    /// The rule enabled at `v` in `config`, if any.
    #[must_use]
    pub fn enabled_rule(&self, config: &Configuration<P::State>, v: VertexId) -> Option<RuleId> {
        let view = View::new(v, self.graph, config);
        self.protocol.enabled_rule(&view)
    }

    /// [`Simulator::enabled_rule`] through a bounds-`debug_assert`ed view —
    /// the steady-state guard-evaluation path (`v` always comes from the
    /// engine's own graph, and the configuration length was checked at run
    /// entry).
    #[inline]
    fn enabled_rule_unchecked(
        &self,
        config: &Configuration<P::State>,
        v: VertexId,
    ) -> Option<RuleId> {
        let view = View::new_unchecked(v, self.graph, config);
        self.protocol.enabled_rule(&view)
    }

    /// All enabled vertices of `config`, sorted by index.
    #[must_use]
    pub fn enabled_vertices(&self, config: &Configuration<P::State>) -> Vec<VertexId> {
        self.graph.vertices().filter(|&v| self.enabled_rule(config, v).is_some()).collect()
    }

    /// Applies one action activating exactly the vertices in `activate`
    /// (which must all be enabled). Returns the successor configuration and
    /// the `(vertex, rule)` pairs that fired.
    ///
    /// Thin allocating wrapper over [`Simulator::apply_action_into`]; batch
    /// callers should prefer the buffer-reusing variant.
    ///
    /// # Panics
    ///
    /// Panics if some vertex in `activate` is not enabled in `config`.
    #[must_use]
    pub fn apply_action(
        &self,
        config: &Configuration<P::State>,
        activate: &[VertexId],
    ) -> (Configuration<P::State>, Vec<(VertexId, RuleId)>) {
        let mut next = Configuration::new(Vec::new());
        let mut fired = Vec::with_capacity(activate.len());
        self.apply_action_into(config, activate, &mut next, &mut fired);
        (next, fired)
    }

    /// Applies one action activating exactly the vertices in `activate`
    /// (which must all be enabled), overwriting `next` with the successor
    /// configuration (reusing its allocation) and `fired` with the
    /// `(vertex, rule)` pairs that fired. This is the engine's
    /// zero-allocation hot path: with warm buffers it performs no heap
    /// allocation.
    ///
    /// # Panics
    ///
    /// Panics if some vertex in `activate` is not enabled in `config`.
    pub fn apply_action_into(
        &self,
        config: &Configuration<P::State>,
        activate: &[VertexId],
        next: &mut Configuration<P::State>,
        fired: &mut Vec<(VertexId, RuleId)>,
    ) {
        next.clone_from(config);
        fired.clear();
        for &v in activate {
            let (rule, state) = self.fire_rule(config, v);
            next.set(v, state);
            fired.push((v, rule));
        }
    }

    /// Evaluates and executes the enabled rule of `v` in `config` — the one
    /// shared body behind every action applier (`apply_action_into`,
    /// previews, the hot loop), so the activation semantics cannot diverge
    /// between paths.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not enabled in `config`.
    #[inline]
    fn fire_rule(&self, config: &Configuration<P::State>, v: VertexId) -> (RuleId, P::State) {
        self.fire_view(&View::new(v, self.graph, config), v)
    }

    /// [`Simulator::fire_rule`] through a bounds-`debug_assert`ed view (the
    /// steady-state path; see [`Simulator::enabled_rule_unchecked`]).
    #[inline]
    fn fire_rule_unchecked(
        &self,
        config: &Configuration<P::State>,
        v: VertexId,
    ) -> (RuleId, P::State) {
        self.fire_view(&View::new_unchecked(v, self.graph, config), v)
    }

    #[inline]
    fn fire_view(&self, view: &View<'_, P::State>, v: VertexId) -> (RuleId, P::State) {
        let rule = self
            .protocol
            .enabled_rule(view)
            .unwrap_or_else(|| panic!("daemon activated disabled vertex {v}"));
        let state = self.protocol.apply(view, rule);
        (rule, state)
    }

    /// Fired-free variant of [`Simulator::apply_action_into`], used for
    /// daemon previews from inside the step loop (no rule bookkeeping, no
    /// allocation, no per-view bounds check).
    fn apply_set_into(
        &self,
        config: &Configuration<P::State>,
        activate: &[VertexId],
        next: &mut Configuration<P::State>,
    ) {
        next.clone_from(config);
        for &v in activate {
            let (_, state) = self.fire_rule_unchecked(config, v);
            next.set(v, state);
        }
    }

    /// Runs the protocol from `init` under `daemon` until a terminal
    /// configuration, the step limit, or an observer's stop request.
    ///
    /// Observers see the initial configuration (`on_start`) and every
    /// transition (`on_step`). Steady-state steps perform zero heap
    /// allocations and zero configuration clones (see the module docs);
    /// the per-run scratch buffers are created here — use
    /// [`Simulator::run_with_scratch`] to reuse them across runs.
    pub fn run(
        &self,
        init: Configuration<P::State>,
        daemon: &mut dyn Daemon<P::State>,
        limits: RunLimits,
        observers: &mut [&mut dyn Observer<P::State>],
    ) -> RunSummary<P::State> {
        let mut scratch = StepScratch::new();
        self.run_with_scratch(init, daemon, limits, observers, &mut scratch)
    }

    /// [`Simulator::run`] with caller-supplied scratch buffers, so batch
    /// drivers executing many runs amortize even the per-run buffer setup.
    pub fn run_with_scratch(
        &self,
        init: Configuration<P::State>,
        daemon: &mut dyn Daemon<P::State>,
        limits: RunLimits,
        observers: &mut [&mut dyn Observer<P::State>],
        scratch: &mut StepScratch<P::State>,
    ) -> RunSummary<P::State> {
        assert_eq!(init.len(), self.graph.n(), "configuration size must match graph");
        daemon.reset();
        let n = self.graph.n();
        let mut config = init;
        let StepScratch {
            next,
            selection,
            touched,
            fired,
            deltas,
            enabled,
            next_enabled,
            enabled_mask,
            stamps,
            generation,
        } = scratch;
        // (Re)initialize the buffers: one full scan and one full copy per
        // run; never again per step. The stamp array only needs resizing —
        // stale stamps from a previous run are invalidated by the
        // monotonically increasing generation.
        next.clone_from(&config);
        enabled.clear();
        enabled_mask.clear();
        enabled_mask.resize(n, false);
        if stamps.len() != n {
            stamps.clear();
            stamps.resize(n, 0);
            *generation = 0;
        } else {
            // The scratch arrives already sized for this graph: cross-run
            // buffer reuse, the amortization `run_with_scratch` exists for.
            specstab_telemetry::global().record_scratch_reuse();
        }
        // Telemetry tallies live in plain locals (flushed once at run end):
        // no atomics on the hot path, no cross-thread contamination. Daemon
        // preview evaluations happen behind a `Fn` closure, so they go
        // through a `Cell` instead of a `&mut` local.
        let mut counters = RunCounters::new();
        let preview_evals = std::cell::Cell::new(0u64);
        counters.guard_evals += n as u64;
        for v in self.graph.vertices() {
            if self.enabled_rule(&config, v).is_some() {
                enabled.push(v);
                enabled_mask[v.index()] = true;
            }
        }
        for obs in observers.iter_mut() {
            obs.on_start(&config, self.graph);
        }
        let mut steps = 0usize;
        let mut moves = 0u64;
        let stop = loop {
            if enabled.is_empty() {
                break StopReason::Terminal;
            }
            if steps >= limits.max_steps {
                break StopReason::MaxSteps;
            }
            if observers.iter().any(|o| o.should_stop()) {
                break StopReason::ObserverRequest;
            }
            selection.clear();
            {
                let apply_into = |set: &[VertexId], out: &mut Configuration<P::State>| {
                    preview_evals.set(preview_evals.get() + set.len() as u64);
                    self.apply_set_into(&config, set, out);
                };
                let ctx = SelectionContext::new(enabled, &config, self.graph, steps, &apply_into);
                daemon.select(&ctx, selection);
            }
            // Selections arrive sorted and duplicate-free from every daemon
            // that walks `ctx.enabled` in order (all of the built-in zoo);
            // verify that with one O(k) scan and only fall back to a
            // stamp-dedup + small sort for daemons that emit out of order.
            if !selection.windows(2).all(|w| w[0] < w[1]) {
                *generation += 1;
                let gen = *generation;
                selection.retain(|v| {
                    let slot = &mut stamps[v.index()];
                    let fresh = *slot != gen;
                    *slot = gen;
                    fresh
                });
                selection.sort_unstable();
            }
            assert!(!selection.is_empty(), "daemon must activate at least one vertex");
            assert!(
                selection.iter().all(|v| enabled_mask[v.index()]),
                "daemon selection must be a subset of the enabled vertices"
            );
            // Apply into the double buffer. Loop invariant: `next == config`
            // here, so the before-state of each activated vertex is *moved*
            // out of its buffer slot as the successor state moves in — one
            // successor clone per move (for the delta record), nothing else.
            fired.clear();
            deltas.clear();
            for &v in selection.iter() {
                let (rule, state) = self.fire_rule_unchecked(&config, v);
                let before = next.replace(v, state.clone());
                deltas.push((v, before, state));
                fired.push((v, rule));
            }
            counters.guard_evals += selection.len() as u64;
            counters.delta_bytes += (deltas.len() * 2 * std::mem::size_of::<P::State>()) as u64;
            // Incremental enablement update: only activated vertices and
            // their neighbors can change status. Stamp-dedup while
            // collecting; the set is sorted afterwards either trivially
            // (every vertex touched — the synchronous common case — is just
            // `0..n`) or by one sort over the already-unique list.
            touched.clear();
            *generation += 1;
            let gen = *generation;
            for &v in selection.iter() {
                if stamps[v.index()] != gen {
                    stamps[v.index()] = gen;
                    touched.push(v);
                }
                for &u in self.graph.neighbors(v) {
                    if stamps[u.index()] != gen {
                        stamps[u.index()] = gen;
                        touched.push(u);
                    }
                }
            }
            if touched.len() == n {
                touched.clear();
                touched.extend((0..n).map(VertexId::new));
            } else {
                touched.sort_unstable();
            }
            counters.guard_evals += touched.len() as u64;
            // Re-evaluate the touched set into the mask, tracking the
            // vertex-index window that actually changed status. Most steps
            // under a central daemon change nothing or a couple of slots
            // clustered around the activated vertex, so the sorted enabled
            // list is patched in place over that window instead of being
            // rebuilt — the rebuild was O(|enabled|) per step and capped
            // central-daemon throughput on large graphs.
            let mut change_lo = usize::MAX;
            let mut change_hi = 0usize;
            for &v in touched.iter() {
                let now = self.enabled_rule_unchecked(next, v).is_some();
                if enabled_mask[v.index()] != now {
                    enabled_mask[v.index()] = now;
                    change_lo = change_lo.min(v.index());
                    change_hi = change_hi.max(v.index());
                }
            }
            if change_lo != usize::MAX {
                // Merge the window slice of the old enabled list with the
                // touched vertices falling in the window (both sorted):
                // untouched vertices keep their status, touched ones take
                // the fresh mask bit. Outside the window nothing changed.
                let lo = VertexId::new(change_lo);
                let hi = VertexId::new(change_hi);
                let a = enabled.partition_point(|&e| e < lo);
                let b = enabled.partition_point(|&e| e <= hi);
                let ta = touched.partition_point(|&t| t < lo);
                let tb = touched.partition_point(|&t| t <= hi);
                next_enabled.clear();
                {
                    let old = &enabled[a..b];
                    let tw = &touched[ta..tb];
                    let (mut i, mut j) = (0usize, 0usize);
                    while i < old.len() && j < tw.len() {
                        let (e, t) = (old[i], tw[j]);
                        if e < t {
                            next_enabled.push(e);
                            i += 1;
                        } else {
                            if enabled_mask[t.index()] {
                                next_enabled.push(t);
                            }
                            j += 1;
                            if e == t {
                                i += 1;
                            }
                        }
                    }
                    next_enabled.extend_from_slice(&old[i..]);
                    for &t in &tw[j..] {
                        if enabled_mask[t.index()] {
                            next_enabled.push(t);
                        }
                    }
                }
                splice_window(enabled, a, b, next_enabled);
            }
            steps += 1;
            moves += fired.len() as u64;
            let event = StepEvent {
                step: steps,
                before: &config,
                after: next,
                activated: fired,
                delta: deltas,
                enabled_after: enabled,
                graph: self.graph,
            };
            for obs in observers.iter_mut() {
                obs.on_step(&event);
            }
            // Swap the double buffer, then repair the (now stale) back
            // buffer from the delta so the `next == config` invariant holds
            // again — O(|activated|), not O(n).
            std::mem::swap(&mut config, next);
            for (v, _, after) in deltas.iter() {
                next.set(*v, after.clone());
            }
        };
        counters.steps = steps as u64;
        counters.moves = moves;
        counters.guard_evals += preview_evals.get();
        specstab_telemetry::global().record_run(&counters);
        RunSummary { final_config: config, steps, moves, stop, counters }
    }

    /// The original clone-based step loop, retained verbatim in behavior as
    /// the reference implementation for differential testing: it re-scans
    /// all vertices for enablement every step and allocates fresh
    /// configurations throughout. Byte-for-byte equivalent results
    /// (`RunSummary`, observer events, daemon RNG streams) to
    /// [`Simulator::run`] are asserted by the `engine_differential` test
    /// suite.
    ///
    /// Compiled only under `cfg(test)` or the `reference` cargo feature
    /// (the kernel dev-depends on itself with that feature, so the test
    /// suites always see it); release campaign builds carry no dead
    /// reference loop.
    #[cfg(any(test, feature = "reference"))]
    pub fn run_reference(
        &self,
        init: Configuration<P::State>,
        daemon: &mut dyn Daemon<P::State>,
        limits: RunLimits,
        observers: &mut [&mut dyn Observer<P::State>],
    ) -> RunSummary<P::State> {
        assert_eq!(init.len(), self.graph.n(), "configuration size must match graph");
        daemon.reset();
        let n = self.graph.n();
        let mut config = init;
        // Honest counters for the reference loop too: it rescans all n
        // vertices every step, so its guard_evals exceed the incremental
        // loop's — the differential suite compares results, not telemetry.
        let mut counters = RunCounters::new();
        let preview_evals = std::cell::Cell::new(0u64);
        counters.guard_evals += n as u64;
        let mut enabled = self.enabled_vertices(&config);
        for obs in observers.iter_mut() {
            obs.on_start(&config, self.graph);
        }
        let mut steps = 0usize;
        let mut moves = 0u64;
        let stop = loop {
            if enabled.is_empty() {
                break StopReason::Terminal;
            }
            if steps >= limits.max_steps {
                break StopReason::MaxSteps;
            }
            if observers.iter().any(|o| o.should_stop()) {
                break StopReason::ObserverRequest;
            }
            let apply_into = |set: &[VertexId], out: &mut Configuration<P::State>| {
                preview_evals.set(preview_evals.get() + set.len() as u64);
                *out = self.apply_action(&config, set).0;
            };
            let ctx = SelectionContext::new(&enabled, &config, self.graph, steps, &apply_into);
            let mut selection = Vec::new();
            daemon.select(&ctx, &mut selection);
            selection.sort_unstable();
            selection.dedup();
            assert!(!selection.is_empty(), "daemon must activate at least one vertex");
            assert!(
                selection.iter().all(|v| enabled.binary_search(v).is_ok()),
                "daemon selection must be a subset of the enabled vertices"
            );
            let (next, fired) = self.apply_action(&config, &selection);
            let deltas: Vec<(VertexId, P::State, P::State)> = fired
                .iter()
                .map(|&(v, _)| (v, config.get(v).clone(), next.get(v).clone()))
                .collect();
            let next_enabled = self.enabled_vertices(&next);
            counters.guard_evals += (selection.len() + n) as u64;
            counters.delta_bytes += (deltas.len() * 2 * std::mem::size_of::<P::State>()) as u64;
            steps += 1;
            moves += fired.len() as u64;
            let event = StepEvent {
                step: steps,
                before: &config,
                after: &next,
                activated: &fired,
                delta: &deltas,
                enabled_after: &next_enabled,
                graph: self.graph,
            };
            for obs in observers.iter_mut() {
                obs.on_step(&event);
            }
            config = next;
            enabled = next_enabled;
        };
        counters.steps = steps as u64;
        counters.moves = moves;
        counters.guard_evals += preview_evals.get();
        specstab_telemetry::global().record_run(&counters);
        RunSummary { final_config: config, steps, moves, stop, counters }
    }
}

/// Replaces `v[a..b]` with `window`, shifting the tail by the length
/// difference: the update cost is the window itself plus one bounded
/// `memmove` when the lengths differ, never an O(|v|) element-wise
/// rebuild.
fn splice_window(v: &mut Vec<VertexId>, a: usize, b: usize, window: &[VertexId]) {
    let old_len = b - a;
    let new_len = window.len();
    if new_len <= old_len {
        v[a..a + new_len].copy_from_slice(window);
        v.drain(a + new_len..b);
    } else {
        let grow = new_len - old_len;
        let total = v.len();
        v.resize(total + grow, VertexId::new(0));
        v.copy_within(b..total, b + grow);
        v[a..a + new_len].copy_from_slice(window);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::daemon::{CentralDaemon, CentralStrategy, SynchronousDaemon};
    use crate::protocol::RuleInfo;
    use rand::rngs::StdRng;
    use rand::Rng;
    use specstab_topology::generators;

    /// "Max propagation": each vertex adopts the maximum of its
    /// neighborhood; terminal once uniform.
    struct MaxProto;
    impl Protocol for MaxProto {
        type State = u32;
        fn name(&self) -> String {
            "max".into()
        }
        fn rules(&self) -> Vec<RuleInfo> {
            vec![RuleInfo::new("ADOPT")]
        }
        fn enabled_rule(&self, view: &View<'_, u32>) -> Option<RuleId> {
            let best = view.neighbor_states().map(|(_, &s)| s).max().unwrap_or(0);
            (best > *view.state()).then_some(RuleId::new(0))
        }
        fn apply(&self, view: &View<'_, u32>, _rule: RuleId) -> u32 {
            view.neighbor_states().map(|(_, &s)| s).max().unwrap()
        }
        fn random_state(&self, _v: VertexId, rng: &mut StdRng) -> u32 {
            rng.gen_range(0..16)
        }
    }

    #[test]
    fn synchronous_run_converges_in_eccentricity_steps() {
        let g = generators::path(6).unwrap();
        let sim = Simulator::new(&g, &MaxProto);
        // Max value at one end: must travel the whole path.
        let init = Configuration::from_fn(6, |v| if v.index() == 0 { 9 } else { 0 });
        let mut d = SynchronousDaemon::new();
        let s = sim.run(init, &mut d, RunLimits::with_max_steps(100), &mut []);
        assert_eq!(s.stop, StopReason::Terminal);
        assert_eq!(s.steps, 5);
        assert!(s.final_config.states().iter().all(|&x| x == 9));
    }

    #[test]
    fn central_run_also_converges_with_more_steps() {
        let g = generators::path(6).unwrap();
        let sim = Simulator::new(&g, &MaxProto);
        let init = Configuration::from_fn(6, |v| if v.index() == 0 { 9 } else { 0 });
        let mut d = CentralDaemon::new(CentralStrategy::RoundRobin);
        let s = sim.run(init, &mut d, RunLimits::with_max_steps(1000), &mut []);
        assert_eq!(s.stop, StopReason::Terminal);
        assert_eq!(s.moves, s.steps as u64, "central daemon: one move per step");
        assert!(s.final_config.states().iter().all(|&x| x == 9));
    }

    #[test]
    fn max_steps_limit_is_respected() {
        let g = generators::path(50).unwrap();
        let sim = Simulator::new(&g, &MaxProto);
        let init = Configuration::from_fn(50, |v| if v.index() == 0 { 9 } else { 0 });
        let mut d = SynchronousDaemon::new();
        let s = sim.run(init, &mut d, RunLimits::with_max_steps(3), &mut []);
        assert_eq!(s.stop, StopReason::MaxSteps);
        assert_eq!(s.steps, 3);
    }

    #[test]
    fn terminal_config_stops_immediately() {
        let g = generators::ring(4).unwrap();
        let sim = Simulator::new(&g, &MaxProto);
        let init = Configuration::from_fn(4, |_| 5);
        let mut d = SynchronousDaemon::new();
        let s = sim.run(init.clone(), &mut d, RunLimits::with_max_steps(10), &mut []);
        assert_eq!(s.stop, StopReason::Terminal);
        assert_eq!(s.steps, 0);
        assert_eq!(s.final_config, init);
    }

    #[test]
    fn moves_count_all_activations() {
        let g = generators::complete(4).unwrap();
        let sim = Simulator::new(&g, &MaxProto);
        let init = Configuration::from_fn(4, |v| v.index() as u32);
        let mut d = SynchronousDaemon::new();
        let s = sim.run(init, &mut d, RunLimits::with_max_steps(10), &mut []);
        // One synchronous step: vertices 0,1,2 adopt 3 (vertex 3 disabled).
        assert_eq!(s.steps, 1);
        assert_eq!(s.moves, 3);
    }

    #[test]
    fn enabled_vertices_matches_bruteforce() {
        let g = generators::ring(7).unwrap();
        let sim = Simulator::new(&g, &MaxProto);
        let cfg = Configuration::from_fn(7, |v| (v.index() as u32 * 3) % 5);
        let fast = sim.enabled_vertices(&cfg);
        let slow: Vec<VertexId> = g
            .vertices()
            .filter(|&v| {
                let view = View::new(v, &g, &cfg);
                MaxProto.enabled_rule(&view).is_some()
            })
            .collect();
        assert_eq!(fast, slow);
    }

    #[test]
    #[should_panic(expected = "daemon activated disabled vertex")]
    fn apply_action_rejects_disabled_vertex() {
        let g = generators::ring(4).unwrap();
        let sim = Simulator::new(&g, &MaxProto);
        let uniform = Configuration::from_fn(4, |_| 5);
        let _ = sim.apply_action(&uniform, &[VertexId::new(0)]);
    }

    #[test]
    #[should_panic(expected = "configuration size")]
    fn run_rejects_mismatched_configuration() {
        let g = generators::ring(4).unwrap();
        let sim = Simulator::new(&g, &MaxProto);
        let mut d = SynchronousDaemon::new();
        let _ = sim.run(
            Configuration::new(vec![0u32; 3]),
            &mut d,
            RunLimits::with_max_steps(1),
            &mut [],
        );
    }
}
