//! The execution engine: applies daemon-chosen actions step by step.
//!
//! One **step** (the paper's unit of stabilization time) is one action
//! `(γ, γ')`: the daemon selects a nonempty subset of the enabled vertices,
//! each of which atomically computes its next state from `γ`. The engine
//! additionally counts **moves** (individual vertex activations).

use crate::config::Configuration;
use crate::daemon::{Daemon, SelectionContext};
use crate::observer::{Observer, StepEvent};
use crate::protocol::{Protocol, RuleId, View};
use specstab_topology::{Graph, VertexId};

/// Why a run stopped.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum StopReason {
    /// No vertex was enabled: the configuration is terminal.
    Terminal,
    /// The step limit was reached.
    MaxSteps,
    /// An observer requested the stop (e.g. legitimacy + margin reached).
    ObserverRequest,
}

/// Resource limits for a run.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct RunLimits {
    /// Maximum number of steps (actions) to execute.
    pub max_steps: usize,
}

impl RunLimits {
    /// Limits with the given step cap.
    #[must_use]
    pub fn with_max_steps(max_steps: usize) -> Self {
        Self { max_steps }
    }
}

/// Result of a run.
#[derive(Clone, Debug)]
pub struct RunSummary<S> {
    /// The configuration when the run stopped.
    pub final_config: Configuration<S>,
    /// Steps (actions) executed.
    pub steps: usize,
    /// Moves (vertex activations) executed.
    pub moves: u64,
    /// Why the run stopped.
    pub stop: StopReason,
}

/// Simulator binding a protocol to a communication graph.
///
/// See the crate-level example for a full usage walk-through.
pub struct Simulator<'a, P: Protocol> {
    graph: &'a Graph,
    protocol: &'a P,
}

impl<'a, P: Protocol> Simulator<'a, P> {
    /// Creates a simulator for `protocol` on `graph`.
    #[must_use]
    pub fn new(graph: &'a Graph, protocol: &'a P) -> Self {
        Self { graph, protocol }
    }

    /// The communication graph.
    #[must_use]
    pub fn graph(&self) -> &'a Graph {
        self.graph
    }

    /// The protocol under simulation.
    #[must_use]
    pub fn protocol(&self) -> &'a P {
        self.protocol
    }

    /// The rule enabled at `v` in `config`, if any.
    #[must_use]
    pub fn enabled_rule(&self, config: &Configuration<P::State>, v: VertexId) -> Option<RuleId> {
        let view = View::new(v, self.graph, config);
        self.protocol.enabled_rule(&view)
    }

    /// All enabled vertices of `config`, sorted by index.
    #[must_use]
    pub fn enabled_vertices(&self, config: &Configuration<P::State>) -> Vec<VertexId> {
        self.graph.vertices().filter(|&v| self.enabled_rule(config, v).is_some()).collect()
    }

    /// Applies one action activating exactly the vertices in `activate`
    /// (which must all be enabled). Returns the successor configuration and
    /// the `(vertex, rule)` pairs that fired.
    ///
    /// # Panics
    ///
    /// Panics if some vertex in `activate` is not enabled in `config`.
    #[must_use]
    pub fn apply_action(
        &self,
        config: &Configuration<P::State>,
        activate: &[VertexId],
    ) -> (Configuration<P::State>, Vec<(VertexId, RuleId)>) {
        let mut next = config.clone();
        let mut fired = Vec::with_capacity(activate.len());
        for &v in activate {
            let view = View::new(v, self.graph, config);
            let rule = self
                .protocol
                .enabled_rule(&view)
                .unwrap_or_else(|| panic!("daemon activated disabled vertex {v}"));
            let state = self.protocol.apply(&view, rule);
            next.set(v, state);
            fired.push((v, rule));
        }
        (next, fired)
    }

    /// Runs the protocol from `init` under `daemon` until a terminal
    /// configuration, the step limit, or an observer's stop request.
    ///
    /// Observers see the initial configuration (`on_start`) and every
    /// transition (`on_step`).
    pub fn run(
        &self,
        init: Configuration<P::State>,
        daemon: &mut dyn Daemon<P::State>,
        limits: RunLimits,
        observers: &mut [&mut dyn Observer<P::State>],
    ) -> RunSummary<P::State> {
        assert_eq!(init.len(), self.graph.n(), "configuration size must match graph");
        daemon.reset();
        let mut config = init;
        let mut enabled = self.enabled_vertices(&config);
        let mut enabled_mask = vec![false; self.graph.n()];
        for &v in &enabled {
            enabled_mask[v.index()] = true;
        }
        for obs in observers.iter_mut() {
            obs.on_start(&config, self.graph);
        }
        let mut steps = 0usize;
        let mut moves = 0u64;
        let stop = loop {
            if enabled.is_empty() {
                break StopReason::Terminal;
            }
            if steps >= limits.max_steps {
                break StopReason::MaxSteps;
            }
            if observers.iter().any(|o| o.should_stop()) {
                break StopReason::ObserverRequest;
            }
            let preview = |set: &[VertexId]| self.apply_action(&config, set).0;
            let ctx = SelectionContext {
                enabled: &enabled,
                config: &config,
                graph: self.graph,
                step: steps,
                preview: &preview,
            };
            let mut selection = daemon.select(&ctx);
            selection.sort_unstable();
            selection.dedup();
            assert!(!selection.is_empty(), "daemon must activate at least one vertex");
            assert!(
                selection.iter().all(|v| enabled_mask[v.index()]),
                "daemon selection must be a subset of the enabled vertices"
            );
            let (next, fired) = self.apply_action(&config, &selection);
            // Incremental enablement update: only activated vertices and
            // their neighbors can change status.
            let mut touched: Vec<VertexId> = Vec::with_capacity(selection.len() * 3);
            for &v in &selection {
                touched.push(v);
                touched.extend_from_slice(self.graph.neighbors(v));
            }
            touched.sort_unstable();
            touched.dedup();
            for &v in &touched {
                enabled_mask[v.index()] = self.enabled_rule(&next, v).is_some();
            }
            let next_enabled: Vec<VertexId> =
                self.graph.vertices().filter(|v| enabled_mask[v.index()]).collect();
            steps += 1;
            moves += fired.len() as u64;
            let event = StepEvent {
                step: steps,
                before: &config,
                after: &next,
                activated: &fired,
                enabled_after: &next_enabled,
                graph: self.graph,
            };
            for obs in observers.iter_mut() {
                obs.on_step(&event);
            }
            config = next;
            enabled = next_enabled;
        };
        RunSummary { final_config: config, steps, moves, stop }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::daemon::{CentralDaemon, CentralStrategy, SynchronousDaemon};
    use crate::protocol::RuleInfo;
    use rand::rngs::StdRng;
    use rand::Rng;
    use specstab_topology::generators;

    /// "Max propagation": each vertex adopts the maximum of its
    /// neighborhood; terminal once uniform.
    struct MaxProto;
    impl Protocol for MaxProto {
        type State = u32;
        fn name(&self) -> String {
            "max".into()
        }
        fn rules(&self) -> Vec<RuleInfo> {
            vec![RuleInfo::new("ADOPT")]
        }
        fn enabled_rule(&self, view: &View<'_, u32>) -> Option<RuleId> {
            let best = view.neighbor_states().map(|(_, &s)| s).max().unwrap_or(0);
            (best > *view.state()).then_some(RuleId::new(0))
        }
        fn apply(&self, view: &View<'_, u32>, _rule: RuleId) -> u32 {
            view.neighbor_states().map(|(_, &s)| s).max().unwrap()
        }
        fn random_state(&self, _v: VertexId, rng: &mut StdRng) -> u32 {
            rng.gen_range(0..16)
        }
    }

    #[test]
    fn synchronous_run_converges_in_eccentricity_steps() {
        let g = generators::path(6).unwrap();
        let sim = Simulator::new(&g, &MaxProto);
        // Max value at one end: must travel the whole path.
        let init = Configuration::from_fn(6, |v| if v.index() == 0 { 9 } else { 0 });
        let mut d = SynchronousDaemon::new();
        let s = sim.run(init, &mut d, RunLimits::with_max_steps(100), &mut []);
        assert_eq!(s.stop, StopReason::Terminal);
        assert_eq!(s.steps, 5);
        assert!(s.final_config.states().iter().all(|&x| x == 9));
    }

    #[test]
    fn central_run_also_converges_with_more_steps() {
        let g = generators::path(6).unwrap();
        let sim = Simulator::new(&g, &MaxProto);
        let init = Configuration::from_fn(6, |v| if v.index() == 0 { 9 } else { 0 });
        let mut d = CentralDaemon::new(CentralStrategy::RoundRobin);
        let s = sim.run(init, &mut d, RunLimits::with_max_steps(1000), &mut []);
        assert_eq!(s.stop, StopReason::Terminal);
        assert_eq!(s.moves, s.steps as u64, "central daemon: one move per step");
        assert!(s.final_config.states().iter().all(|&x| x == 9));
    }

    #[test]
    fn max_steps_limit_is_respected() {
        let g = generators::path(50).unwrap();
        let sim = Simulator::new(&g, &MaxProto);
        let init = Configuration::from_fn(50, |v| if v.index() == 0 { 9 } else { 0 });
        let mut d = SynchronousDaemon::new();
        let s = sim.run(init, &mut d, RunLimits::with_max_steps(3), &mut []);
        assert_eq!(s.stop, StopReason::MaxSteps);
        assert_eq!(s.steps, 3);
    }

    #[test]
    fn terminal_config_stops_immediately() {
        let g = generators::ring(4).unwrap();
        let sim = Simulator::new(&g, &MaxProto);
        let init = Configuration::from_fn(4, |_| 5);
        let mut d = SynchronousDaemon::new();
        let s = sim.run(init.clone(), &mut d, RunLimits::with_max_steps(10), &mut []);
        assert_eq!(s.stop, StopReason::Terminal);
        assert_eq!(s.steps, 0);
        assert_eq!(s.final_config, init);
    }

    #[test]
    fn moves_count_all_activations() {
        let g = generators::complete(4).unwrap();
        let sim = Simulator::new(&g, &MaxProto);
        let init = Configuration::from_fn(4, |v| v.index() as u32);
        let mut d = SynchronousDaemon::new();
        let s = sim.run(init, &mut d, RunLimits::with_max_steps(10), &mut []);
        // One synchronous step: vertices 0,1,2 adopt 3 (vertex 3 disabled).
        assert_eq!(s.steps, 1);
        assert_eq!(s.moves, 3);
    }

    #[test]
    fn enabled_vertices_matches_bruteforce() {
        let g = generators::ring(7).unwrap();
        let sim = Simulator::new(&g, &MaxProto);
        let cfg = Configuration::from_fn(7, |v| (v.index() as u32 * 3) % 5);
        let fast = sim.enabled_vertices(&cfg);
        let slow: Vec<VertexId> = g
            .vertices()
            .filter(|&v| {
                let view = View::new(v, &g, &cfg);
                MaxProto.enabled_rule(&view).is_some()
            })
            .collect();
        assert_eq!(fast, slow);
    }

    #[test]
    #[should_panic(expected = "daemon activated disabled vertex")]
    fn apply_action_rejects_disabled_vertex() {
        let g = generators::ring(4).unwrap();
        let sim = Simulator::new(&g, &MaxProto);
        let uniform = Configuration::from_fn(4, |_| 5);
        let _ = sim.apply_action(&uniform, &[VertexId::new(0)]);
    }

    #[test]
    #[should_panic(expected = "configuration size")]
    fn run_rejects_mismatched_configuration() {
        let g = generators::ring(4).unwrap();
        let sim = Simulator::new(&g, &MaxProto);
        let mut d = SynchronousDaemon::new();
        let _ = sim.run(
            Configuration::new(vec![0u32; 3]),
            &mut d,
            RunLimits::with_max_steps(1),
            &mut [],
        );
    }
}
