//! Exact worst-case analysis on small instances.
//!
//! `conv_time(π, d)` is a supremum over **all** executions allowed by the
//! daemon from **all** initial configurations — sampling can only lower-bound
//! it. On small instances we compute it exactly by materializing the
//! *configuration game graph*: nodes are configurations, and each daemon
//! model contributes edges for every action it may choose.
//!
//! Two exact quantities are supported:
//!
//! * [`worst_steps_to`] — the maximum number of steps the daemon can keep
//!   the system outside a closed target set (convergence time to
//!   legitimacy);
//! * [`worst_safety_stabilization`] — the maximum, over executions, of
//!   `last safety-violation index + 1` (the paper's stabilization time for
//!   safety-style specifications such as `specME`).
//!
//! Both detect **divergence** (the daemon can avoid the target / cause
//! violations forever), which is exactly the failure mode exercised by the
//! broken-parameter ablation experiment (E7).

use crate::config::Configuration;
use crate::engine::Simulator;
use crate::protocol::Protocol;
use specstab_topology::{Graph, VertexId};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Daemon models for exhaustive search.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum SearchDaemon {
    /// One enabled vertex per action (central daemon `cd`).
    Central,
    /// All enabled vertices per action (synchronous daemon `sd`).
    Synchronous,
    /// Every nonempty subset of enabled vertices (unfair distributed `ud`).
    /// Fails with [`SearchError::TooManySubsets`] when more than
    /// `max_enabled` vertices are enabled at once.
    Distributed {
        /// Cap on `|enabled|` before subset enumeration is refused.
        max_enabled: usize,
    },
}

/// Errors from the exhaustive explorer.
#[derive(Clone, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum SearchError {
    /// The reachable configuration space exceeded `max_nodes`.
    TooLarge {
        /// The configured node cap.
        max_nodes: usize,
    },
    /// Subset enumeration hit the `max_enabled` cap.
    TooManySubsets {
        /// Number of simultaneously enabled vertices encountered.
        enabled: usize,
    },
    /// Worst case is unbounded: the daemon can avoid the target forever.
    Divergent,
    /// A configuration with no enabled vertex lies outside the target set.
    StuckOutsideTarget,
}

impl fmt::Display for SearchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SearchError::TooLarge { max_nodes } => {
                write!(f, "reachable configuration space exceeds {max_nodes} nodes")
            }
            SearchError::TooManySubsets { enabled } => {
                write!(f, "{enabled} enabled vertices: distributed subset enumeration refused")
            }
            SearchError::Divergent => {
                write!(f, "worst case is unbounded (daemon-controlled cycle)")
            }
            SearchError::StuckOutsideTarget => {
                write!(f, "terminal configuration outside the target set")
            }
        }
    }
}

impl Error for SearchError {}

/// The materialized configuration game graph.
#[derive(Clone, Debug)]
pub struct ConfigGraph<S> {
    /// Distinct reachable configurations.
    pub nodes: Vec<Configuration<S>>,
    /// `succ[i]` = indices of configurations reachable from `nodes[i]` in
    /// one daemon-allowed action (empty = terminal).
    pub succ: Vec<Vec<u32>>,
    /// Indices (into `nodes`) of the requested initial configurations.
    pub initial: Vec<u32>,
}

impl<S> ConfigGraph<S> {
    /// Number of distinct configurations explored.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph is empty (never true after a successful build).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

fn nonempty_subsets(items: &[VertexId]) -> impl Iterator<Item = Vec<VertexId>> + '_ {
    let k = items.len();
    (1u64..(1u64 << k)).map(move |mask| {
        items.iter().enumerate().filter(|(i, _)| mask >> i & 1 == 1).map(|(_, &v)| v).collect()
    })
}

/// Explores all configurations reachable from `initial` under the given
/// daemon model.
///
/// # Errors
///
/// [`SearchError::TooLarge`] if more than `max_nodes` distinct
/// configurations are reached, [`SearchError::TooManySubsets`] if the
/// distributed model meets too many simultaneously enabled vertices.
pub fn build_config_graph<P: Protocol>(
    graph: &Graph,
    protocol: &P,
    initial: &[Configuration<P::State>],
    daemon: SearchDaemon,
    max_nodes: usize,
) -> Result<ConfigGraph<P::State>, SearchError> {
    let sim = Simulator::new(graph, protocol);
    let mut nodes: Vec<Configuration<P::State>> = Vec::new();
    let mut index: HashMap<Configuration<P::State>, u32> = HashMap::new();
    let mut succ: Vec<Vec<u32>> = Vec::new();
    let mut work: Vec<u32> = Vec::new();
    let mut initial_ids = Vec::with_capacity(initial.len());
    // Reused successor/fired buffers: revisited configurations (the common
    // case on dense game graphs) cost zero allocations to intern.
    let mut next = Configuration::new(Vec::new());
    let mut fired = Vec::new();

    let mut intern = |cfg: &Configuration<P::State>,
                      nodes: &mut Vec<Configuration<P::State>>,
                      succ: &mut Vec<Vec<u32>>,
                      work: &mut Vec<u32>|
     -> Result<u32, SearchError> {
        if let Some(&id) = index.get(cfg) {
            return Ok(id);
        }
        if nodes.len() >= max_nodes {
            return Err(SearchError::TooLarge { max_nodes });
        }
        let id = u32::try_from(nodes.len()).expect("node count fits u32");
        index.insert(cfg.clone(), id);
        nodes.push(cfg.clone());
        succ.push(Vec::new());
        work.push(id);
        Ok(id)
    };

    for cfg in initial {
        let id = intern(cfg, &mut nodes, &mut succ, &mut work)?;
        initial_ids.push(id);
    }

    while let Some(id) = work.pop() {
        let cfg = nodes[id as usize].clone();
        let enabled = sim.enabled_vertices(&cfg);
        if enabled.is_empty() {
            continue;
        }
        let mut next_ids = Vec::new();
        match daemon {
            SearchDaemon::Synchronous => {
                sim.apply_action_into(&cfg, &enabled, &mut next, &mut fired);
                next_ids.push(intern(&next, &mut nodes, &mut succ, &mut work)?);
            }
            SearchDaemon::Central => {
                for &v in &enabled {
                    sim.apply_action_into(&cfg, std::slice::from_ref(&v), &mut next, &mut fired);
                    next_ids.push(intern(&next, &mut nodes, &mut succ, &mut work)?);
                }
            }
            SearchDaemon::Distributed { max_enabled } => {
                if enabled.len() > max_enabled {
                    return Err(SearchError::TooManySubsets { enabled: enabled.len() });
                }
                for subset in nonempty_subsets(&enabled) {
                    sim.apply_action_into(&cfg, &subset, &mut next, &mut fired);
                    next_ids.push(intern(&next, &mut nodes, &mut succ, &mut work)?);
                }
            }
        }
        next_ids.sort_unstable();
        next_ids.dedup();
        succ[id as usize] = next_ids;
    }

    Ok(ConfigGraph { nodes, succ, initial: initial_ids })
}

/// Enumerates the full configuration space from [`Protocol::state_domain`],
/// or `None` if a domain is unavailable or the product exceeds `cap`.
#[must_use]
pub fn enumerate_all_configurations<P: Protocol>(
    graph: &Graph,
    protocol: &P,
    cap: usize,
) -> Option<Vec<Configuration<P::State>>> {
    let domains: Option<Vec<Vec<P::State>>> =
        graph.vertices().map(|v| protocol.state_domain(v)).collect();
    let domains = domains?;
    let mut total: usize = 1;
    for d in &domains {
        total = total.checked_mul(d.len())?;
        if total > cap {
            return None;
        }
    }
    let mut out = Vec::with_capacity(total);
    let mut counters = vec![0usize; domains.len()];
    loop {
        out.push(Configuration::new(
            counters.iter().zip(&domains).map(|(&c, d)| d[c].clone()).collect(),
        ));
        // Odometer increment.
        let mut i = 0;
        loop {
            if i == domains.len() {
                return Some(out);
            }
            counters[i] += 1;
            if counters[i] < domains[i].len() {
                break;
            }
            counters[i] = 0;
            i += 1;
        }
    }
}

/// Exact worst-case number of steps the daemon can keep the system outside
/// the (closed) `target` set, over all explored configurations.
///
/// Returns the per-node worst value; the overall `conv_time` bound is the
/// max over the `initial` nodes (or over all nodes when the graph was built
/// from the full configuration space).
///
/// # Errors
///
/// [`SearchError::Divergent`] if a daemon-controlled cycle avoids the
/// target, [`SearchError::StuckOutsideTarget`] if a terminal configuration
/// lies outside it.
pub fn worst_steps_to<S>(
    cg: &ConfigGraph<S>,
    target: impl Fn(&Configuration<S>) -> bool,
) -> Result<Vec<u32>, SearchError> {
    let n = cg.nodes.len();
    let in_target: Vec<bool> = cg.nodes.iter().map(&target).collect();
    let mut value = vec![0u32; n];
    // Iterative DFS with tri-color marking over non-target nodes.
    #[derive(Copy, Clone, PartialEq)]
    enum Color {
        White,
        Gray,
        Black,
    }
    let mut color = vec![Color::White; n];
    for root in 0..n {
        if in_target[root] || color[root] == Color::Black {
            continue;
        }
        // Stack of (node, next-successor-index).
        let mut stack: Vec<(usize, usize)> = vec![(root, 0)];
        color[root] = Color::Gray;
        while let Some(&(node, next)) = stack.last() {
            if cg.succ[node].is_empty() {
                return Err(SearchError::StuckOutsideTarget);
            }
            if next == cg.succ[node].len() {
                // All successors resolved.
                let best = cg.succ[node]
                    .iter()
                    .map(|&s| {
                        let s = s as usize;
                        if in_target[s] {
                            1
                        } else {
                            value[s].saturating_add(1)
                        }
                    })
                    .max()
                    .expect("nonempty successor list");
                value[node] = best;
                color[node] = Color::Black;
                stack.pop();
                continue;
            }
            stack.last_mut().expect("stack nonempty").1 += 1;
            let s = cg.succ[node][next] as usize;
            if in_target[s] || color[s] == Color::Black {
                continue;
            }
            if color[s] == Color::Gray {
                return Err(SearchError::Divergent);
            }
            color[s] = Color::Gray;
            stack.push((s, 0));
        }
    }
    Ok(value)
}

/// Exact worst-case safety stabilization time per node: the maximum over
/// executions of `last safety-violation index + 1`.
///
/// # Errors
///
/// [`SearchError::Divergent`] if the daemon can reach safety violations
/// infinitely often (a cycle inside the violation-reaching region).
pub fn worst_safety_stabilization<S>(
    cg: &ConfigGraph<S>,
    safe: impl Fn(&Configuration<S>) -> bool,
) -> Result<Vec<u32>, SearchError> {
    let n = cg.nodes.len();
    let is_unsafe: Vec<bool> = cg.nodes.iter().map(|c| !safe(c)).collect();
    // U = nodes from which an unsafe node is reachable (including itself):
    // backward closure over reversed edges.
    let mut pred: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (u, ss) in cg.succ.iter().enumerate() {
        for &s in ss {
            pred[s as usize].push(u32::try_from(u).expect("fits"));
        }
    }
    let mut in_u = is_unsafe.clone();
    let mut queue: Vec<usize> = (0..n).filter(|&i| is_unsafe[i]).collect();
    while let Some(x) = queue.pop() {
        for &p in &pred[x] {
            if !in_u[p as usize] {
                in_u[p as usize] = true;
                queue.push(p as usize);
            }
        }
    }
    // The U-induced subgraph must be a DAG, otherwise violations can recur
    // forever. Kahn's algorithm on U.
    let mut indeg = vec![0u32; n];
    for (u, ss) in cg.succ.iter().enumerate() {
        if !in_u[u] {
            continue;
        }
        for &s in ss {
            if in_u[s as usize] {
                indeg[s as usize] += 1;
            }
        }
    }
    let mut topo: Vec<usize> = Vec::new();
    let mut ready: Vec<usize> = (0..n).filter(|&i| in_u[i] && indeg[i] == 0).collect();
    while let Some(x) = ready.pop() {
        topo.push(x);
        for &s in &cg.succ[x] {
            let s = s as usize;
            if in_u[s] {
                indeg[s] -= 1;
                if indeg[s] == 0 {
                    ready.push(s);
                }
            }
        }
    }
    let u_count = in_u.iter().filter(|&&b| b).count();
    if topo.len() != u_count {
        return Err(SearchError::Divergent);
    }
    // g(x) = max( unsafe(x) ? 1 : 0, max_{y ∈ succ(x) ∩ U} g(y) + 1 ),
    // computed in reverse topological order.
    let mut g = vec![0u32; n];
    for &x in topo.iter().rev() {
        let mut best = u32::from(is_unsafe[x]);
        for &s in &cg.succ[x] {
            let s = s as usize;
            if in_u[s] {
                best = best.max(g[s] + 1);
            }
        }
        g[x] = best;
    }
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{RuleId, RuleInfo, View};
    use rand::rngs::StdRng;
    use rand::Rng;
    use specstab_topology::generators;

    /// Token-passing toy on a path: a vertex holding `true` hands it to the
    /// right (position encoded by index); stabilizes when only the last
    /// vertex holds a token... Simplified: state = bool "dirty"; a dirty
    /// vertex with a clean right-neighbor cleans itself. Terminal/legit:
    /// nobody dirty except possibly the last vertex.
    struct Sweep;
    impl Protocol for Sweep {
        type State = bool;
        fn name(&self) -> String {
            "sweep".into()
        }
        fn rules(&self) -> Vec<RuleInfo> {
            vec![RuleInfo::new("CLEAN")]
        }
        fn enabled_rule(&self, view: &View<'_, bool>) -> Option<RuleId> {
            let v = view.vertex().index();
            let dirty = *view.state();
            let last = view.graph().n() - 1;
            (dirty && v != last).then_some(RuleId::new(0))
        }
        fn apply(&self, _view: &View<'_, bool>, _rule: RuleId) -> bool {
            false
        }
        fn random_state(&self, _v: specstab_topology::VertexId, rng: &mut StdRng) -> bool {
            rng.gen_bool(0.5)
        }
        fn state_domain(&self, _v: specstab_topology::VertexId) -> Option<Vec<bool>> {
            Some(vec![false, true])
        }
    }

    #[test]
    fn enumerate_full_space() {
        let g = generators::path(3).unwrap();
        let all = enumerate_all_configurations(&g, &Sweep, 100).unwrap();
        assert_eq!(all.len(), 8);
        // Capped enumeration returns None.
        assert!(enumerate_all_configurations(&g, &Sweep, 7).is_none());
    }

    #[test]
    fn central_worst_case_counts_dirty_interior() {
        let g = generators::path(4).unwrap();
        let all = enumerate_all_configurations(&g, &Sweep, 1000).unwrap();
        let cg = build_config_graph(&g, &Sweep, &all, SearchDaemon::Central, 10_000).unwrap();
        let clean = |c: &Configuration<bool>| c.states()[..3].iter().all(|&d| !d);
        let worst = worst_steps_to(&cg, clean).unwrap();
        // Each dirty interior vertex needs exactly one move; the central
        // daemon serializes them: worst = 3 (first three vertices dirty).
        let max = cg
            .initial
            .iter()
            .filter(|&&i| !clean(&cg.nodes[i as usize]))
            .map(|&i| worst[i as usize])
            .max()
            .unwrap();
        assert_eq!(max, 3);
    }

    #[test]
    fn synchronous_worst_case_is_one() {
        let g = generators::path(4).unwrap();
        let all = enumerate_all_configurations(&g, &Sweep, 1000).unwrap();
        let cg = build_config_graph(&g, &Sweep, &all, SearchDaemon::Synchronous, 10_000).unwrap();
        let clean = |c: &Configuration<bool>| c.states()[..3].iter().all(|&d| !d);
        let worst = worst_steps_to(&cg, clean).unwrap();
        // All dirty vertices clean simultaneously in one synchronous step.
        let max = cg
            .initial
            .iter()
            .filter(|&&i| !clean(&cg.nodes[i as usize]))
            .map(|&i| worst[i as usize])
            .max()
            .unwrap();
        assert_eq!(max, 1);
    }

    #[test]
    fn distributed_worst_case_equals_central_here() {
        let g = generators::path(4).unwrap();
        let all = enumerate_all_configurations(&g, &Sweep, 1000).unwrap();
        let cg = build_config_graph(
            &g,
            &Sweep,
            &all,
            SearchDaemon::Distributed { max_enabled: 8 },
            100_000,
        )
        .unwrap();
        let clean = |c: &Configuration<bool>| c.states()[..3].iter().all(|&d| !d);
        let worst = worst_steps_to(&cg, clean).unwrap();
        let max = cg
            .initial
            .iter()
            .filter(|&&i| !clean(&cg.nodes[i as usize]))
            .map(|&i| worst[i as usize])
            .max()
            .unwrap();
        // The laziest distributed schedule is the central one.
        assert_eq!(max, 3);
    }

    #[test]
    fn safety_stabilization_matches_steps_to_for_sweep() {
        // Safety := "at most one dirty interior vertex".
        let g = generators::path(4).unwrap();
        let all = enumerate_all_configurations(&g, &Sweep, 1000).unwrap();
        let cg = build_config_graph(&g, &Sweep, &all, SearchDaemon::Central, 10_000).unwrap();
        let safe = |c: &Configuration<bool>| c.states()[..3].iter().filter(|&&d| d).count() <= 1;
        let worst = worst_safety_stabilization(&cg, safe).unwrap();
        // Worst initial config: all three interior dirty; the daemon cleans
        // one at a time; configs stay unsafe while >= 2 dirty. Indices:
        // γ0 (3 dirty, unsafe), γ1 (2 dirty, unsafe), γ2 (1 dirty, safe).
        // Last violation index 1 → stabilization 2.
        let max = worst.iter().max().copied().unwrap();
        assert_eq!(max, 2);
    }

    #[test]
    fn too_large_is_reported() {
        let g = generators::path(4).unwrap();
        let all = enumerate_all_configurations(&g, &Sweep, 1000).unwrap();
        let err = build_config_graph(&g, &Sweep, &all, SearchDaemon::Central, 3).unwrap_err();
        assert!(matches!(err, SearchError::TooLarge { .. }));
    }

    #[test]
    fn subset_cap_is_reported() {
        let g = generators::path(4).unwrap();
        let all = enumerate_all_configurations(&g, &Sweep, 1000).unwrap();
        let err = build_config_graph(
            &g,
            &Sweep,
            &all,
            SearchDaemon::Distributed { max_enabled: 2 },
            100_000,
        )
        .unwrap_err();
        assert!(matches!(err, SearchError::TooManySubsets { .. }));
    }

    /// A protocol where the central daemon can ping-pong forever between
    /// two states: divergence detection test.
    struct PingPong;
    impl Protocol for PingPong {
        type State = bool;
        fn name(&self) -> String {
            "pingpong".into()
        }
        fn rules(&self) -> Vec<RuleInfo> {
            vec![RuleInfo::new("FLIP")]
        }
        fn enabled_rule(&self, view: &View<'_, bool>) -> Option<RuleId> {
            // A vertex differing from some neighbor may flip.
            view.neighbor_states().any(|(_, &s)| s != *view.state()).then_some(RuleId::new(0))
        }
        fn apply(&self, view: &View<'_, bool>, _rule: RuleId) -> bool {
            !*view.state()
        }
        fn random_state(&self, _v: specstab_topology::VertexId, rng: &mut StdRng) -> bool {
            rng.gen_bool(0.5)
        }
        fn state_domain(&self, _v: specstab_topology::VertexId) -> Option<Vec<bool>> {
            Some(vec![false, true])
        }
    }

    #[test]
    fn divergence_is_detected() {
        // On a 3-path the central daemon can flip the middle vertex back
        // and forth forever (FFT → FTT → FFT ...), avoiding uniformity.
        let g = generators::path(3).unwrap();
        let all = enumerate_all_configurations(&g, &PingPong, 100).unwrap();
        let cg = build_config_graph(&g, &PingPong, &all, SearchDaemon::Central, 1000).unwrap();
        let uniform = |c: &Configuration<bool>| c.states().windows(2).all(|w| w[0] == w[1]);
        assert_eq!(worst_steps_to(&cg, uniform).unwrap_err(), SearchError::Divergent);
        let safe = |c: &Configuration<bool>| c.states().windows(2).all(|w| w[0] == w[1]);
        assert_eq!(worst_safety_stabilization(&cg, safe).unwrap_err(), SearchError::Divergent);
    }
}
