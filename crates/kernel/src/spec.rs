//! Problem specifications (Definition 3 scaffolding).
//!
//! A *specification* is a set of executions. For the problems in this
//! workspace, specifications decompose into a per-configuration **safety**
//! predicate, a per-configuration **legitimacy** predicate (a closed set of
//! configurations from which every execution satisfies the specification),
//! and a **liveness** component checked over recorded traces.
//!
//! The kernel keeps this abstract; `specstab-unison` instantiates it for
//! `specAU` and `specstab-core` for `specME`.

use crate::config::Configuration;
use specstab_topology::Graph;

/// A problem specification over per-vertex states `S`.
pub trait Specification<S> {
    /// Name for reports (e.g. `"specME"`).
    fn name(&self) -> String;

    /// Safety predicate over a single configuration (e.g. "at most one
    /// privileged vertex").
    fn is_safe(&self, config: &Configuration<S>, graph: &Graph) -> bool;

    /// Legitimacy predicate: a *closed* set of configurations from which
    /// every execution satisfies the specification. Legitimacy implies
    /// safety for well-formed specifications.
    fn is_legitimate(&self, config: &Configuration<S>, graph: &Graph) -> bool;
}

/// Checks closure of a specification's legitimacy predicate along one
/// recorded execution: once legitimate, never illegitimate again.
///
/// Returns the index of the first closure violation, if any.
#[must_use]
pub fn closure_violation<S, Sp: Specification<S> + ?Sized>(
    spec: &Sp,
    configs: &[Configuration<S>],
    graph: &Graph,
) -> Option<usize> {
    let mut was_legitimate = false;
    for (i, c) in configs.iter().enumerate() {
        let leg = spec.is_legitimate(c, graph);
        if was_legitimate && !leg {
            return Some(i);
        }
        was_legitimate = was_legitimate || leg;
    }
    None
}

/// Checks that legitimacy implies safety on every sampled configuration.
///
/// Returns the index of the first configuration that is legitimate but
/// unsafe, if any.
#[must_use]
pub fn legitimacy_implies_safety_violation<S, Sp: Specification<S> + ?Sized>(
    spec: &Sp,
    configs: &[Configuration<S>],
    graph: &Graph,
) -> Option<usize> {
    configs.iter().position(|c| spec.is_legitimate(c, graph) && !spec.is_safe(c, graph))
}

#[cfg(test)]
mod tests {
    use super::*;
    use specstab_topology::generators;

    /// Toy spec over u8 states: safe = no state equals 255; legitimate =
    /// all states equal.
    struct Uniform;
    impl Specification<u8> for Uniform {
        fn name(&self) -> String {
            "uniform".into()
        }
        fn is_safe(&self, config: &Configuration<u8>, _g: &Graph) -> bool {
            config.states().iter().all(|&s| s != 255)
        }
        fn is_legitimate(&self, config: &Configuration<u8>, _g: &Graph) -> bool {
            config.states().windows(2).all(|w| w[0] == w[1])
        }
    }

    #[test]
    fn closure_violation_detected() {
        let g = generators::path(2).unwrap();
        let configs = vec![
            Configuration::new(vec![1, 1]), // legitimate
            Configuration::new(vec![1, 2]), // closure broken here
        ];
        assert_eq!(closure_violation(&Uniform, &configs, &g), Some(1));
    }

    #[test]
    fn closure_holds_when_monotone() {
        let g = generators::path(2).unwrap();
        let configs = vec![
            Configuration::new(vec![1, 2]),
            Configuration::new(vec![2, 2]),
            Configuration::new(vec![2, 2]),
        ];
        assert_eq!(closure_violation(&Uniform, &configs, &g), None);
    }

    #[test]
    fn legitimacy_implies_safety_checked() {
        let g = generators::path(2).unwrap();
        let configs = vec![Configuration::new(vec![255, 255])]; // legitimate but unsafe
        assert_eq!(legitimacy_implies_safety_violation(&Uniform, &configs, &g), Some(0));
        let ok = vec![Configuration::new(vec![3, 3])];
        assert_eq!(legitimacy_implies_safety_violation(&Uniform, &ok, &g), None);
    }
}
