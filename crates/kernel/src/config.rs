//! Configurations: assignments of a state to every vertex.

use specstab_topology::VertexId;
use std::fmt;

/// An assignment of values to all variables of the graph — one state per
/// vertex (the paper's `γ ∈ Γ`).
///
/// `Configuration` is deliberately dumb data: protocols interpret the
/// states, the engine moves them around, and specifications inspect them.
///
/// ```
/// use specstab_kernel::Configuration;
/// use specstab_topology::VertexId;
///
/// let mut c = Configuration::from_fn(3, |v| v.index() as i64);
/// assert_eq!(*c.get(VertexId::new(2)), 2);
/// c.set(VertexId::new(2), 7);
/// assert_eq!(c.states(), &[0, 1, 7]);
/// ```
#[derive(PartialEq, Eq, Hash, Debug)]
pub struct Configuration<S> {
    states: Vec<S>,
}

impl<S: Clone> Clone for Configuration<S> {
    /// A full clone, recorded in the process-global telemetry counters
    /// (`config_clones` of [`specstab_telemetry::counters::global`]).
    ///
    /// The zero-allocation stepping core promises **zero configuration
    /// clones per steady-state step**; that counter is the instrument that
    /// proves it (the `zero_alloc` gate compares snapshot deltas around an
    /// instrumented run). Buffer-reusing copies via [`Clone::clone_from`]
    /// are *not* counted — they are exactly the allocation-free path the
    /// engine is supposed to take.
    fn clone(&self) -> Self {
        specstab_telemetry::global().record_config_clone();
        Self { states: self.states.clone() }
    }

    /// Copies `source` into `self`, reusing the existing allocation when the
    /// capacity suffices. This is the engine's hot path: a steady-state step
    /// performs `clone_from` into a double buffer and never a full clone.
    fn clone_from(&mut self, source: &Self) {
        self.states.clone_from(&source.states);
    }
}

impl<S> Configuration<S> {
    /// Wraps a vector of per-vertex states (index = vertex index).
    #[must_use]
    pub fn new(states: Vec<S>) -> Self {
        Self { states }
    }

    /// Builds a configuration by evaluating `f` on every vertex of a graph
    /// with `n` vertices.
    #[must_use]
    pub fn from_fn(n: usize, mut f: impl FnMut(VertexId) -> S) -> Self {
        Self { states: (0..n).map(|i| f(VertexId::new(i))).collect() }
    }

    /// Number of vertices covered by this configuration.
    #[must_use]
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Whether the configuration covers zero vertices.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// State of vertex `v` (the paper's `γ(v)`).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[must_use]
    pub fn get(&self, v: VertexId) -> &S {
        &self.states[v.index()]
    }

    /// Replaces the state of vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn set(&mut self, v: VertexId, state: S) {
        self.states[v.index()] = state;
    }

    /// Replaces the state of vertex `v`, returning the previous state.
    ///
    /// The engine's delta recording relies on this to *move* the old state
    /// out of the (about to be overwritten) double-buffer slot instead of
    /// cloning it.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn replace(&mut self, v: VertexId, state: S) -> S {
        std::mem::replace(&mut self.states[v.index()], state)
    }

    /// All states, indexed by vertex index.
    #[must_use]
    pub fn states(&self) -> &[S] {
        &self.states
    }

    /// Iterates over `(vertex, state)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (VertexId, &S)> {
        self.states.iter().enumerate().map(|(i, s)| (VertexId::new(i), s))
    }

    /// Maps every state through `f`, preserving vertex association.
    #[must_use]
    pub fn map<T>(&self, mut f: impl FnMut(VertexId, &S) -> T) -> Configuration<T> {
        Configuration { states: self.iter().map(|(v, s)| f(v, s)).collect() }
    }
}

impl<S: fmt::Display> fmt::Display for Configuration<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, s) in self.states.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{s}")?;
        }
        write!(f, "]")
    }
}

impl<S> From<Vec<S>> for Configuration<S> {
    fn from(states: Vec<S>) -> Self {
        Self::new(states)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_fn_indexes_vertices() {
        let c = Configuration::from_fn(4, |v| v.index() * 10);
        assert_eq!(c.states(), &[0, 10, 20, 30]);
        assert_eq!(c.len(), 4);
        assert!(!c.is_empty());
    }

    #[test]
    fn get_set_roundtrip() {
        let mut c = Configuration::new(vec![1, 2, 3]);
        c.set(VertexId::new(1), 9);
        assert_eq!(*c.get(VertexId::new(1)), 9);
        assert_eq!(*c.get(VertexId::new(0)), 1);
    }

    #[test]
    fn replace_returns_previous_state() {
        let mut c = Configuration::new(vec![1, 2, 3]);
        assert_eq!(c.replace(VertexId::new(1), 9), 2);
        assert_eq!(c.states(), &[1, 9, 3]);
    }

    #[test]
    fn iter_yields_pairs_in_order() {
        let c = Configuration::new(vec!['a', 'b']);
        let pairs: Vec<_> = c.iter().collect();
        assert_eq!(pairs, vec![(VertexId::new(0), &'a'), (VertexId::new(1), &'b')]);
    }

    #[test]
    fn map_preserves_length() {
        let c = Configuration::new(vec![1, 2, 3]);
        let d = c.map(|v, s| s + v.index());
        assert_eq!(d.states(), &[1, 3, 5]);
    }

    #[test]
    fn display_renders_list() {
        let c = Configuration::new(vec![1, 2]);
        assert_eq!(c.to_string(), "[1, 2]");
    }

    #[test]
    fn equality_and_hash_are_structural() {
        use std::collections::HashSet;
        let a = Configuration::new(vec![1, 2]);
        let b = Configuration::new(vec![1, 2]);
        assert_eq!(a, b);
        let mut set = HashSet::new();
        set.insert(a);
        assert!(set.contains(&b));
    }
}
