//! The protocol-construction API: [`ProtocolHarness`].
//!
//! The paper's speculation methodology (Definitions 3–4: stabilization
//! time as a function of the daemon) is protocol-agnostic — any
//! self-stabilizing protocol can be swept under the same adversarial
//! grid of daemons, fault bursts and topologies. A `ProtocolHarness`
//! packages everything such a sweep needs from one protocol:
//!
//! * **construction** for a given communication graph, with per-protocol
//!   topology-compatibility checks surfaced as typed
//!   [`HarnessError::IncompatibleTopology`] values (ring-only protocols
//!   reject non-rings here, not in ad-hoc `match`es downstream);
//! * a **legitimate-configuration constructor** — the resting point fault
//!   bursts are injected into (the speculative scenario);
//! * the **adversarial witness** initial configuration where one exists
//!   ([`HarnessError::UnsupportedScenario`] otherwise — witness injection
//!   is a *capability*, not an assumption);
//! * the **safety** and **legitimacy** [`ConfigPredicate`]s of the
//!   protocol's specification, plus a closure self-check validating that
//!   the constructed legitimate set really is closed under one step;
//! * **daemon resolution**, so protocols can extend the shared daemon zoo
//!   with protocol-specific adversaries;
//! * the applicable **theorem bound** under the synchronous daemon, when
//!   the literature provides one.
//!
//! Harness implementations live next to their protocols (see
//! `specstab-protocols`); the campaign engine consumes them through one
//! generic, monomorphized cell runner — no `dyn` dispatch in the step
//! loop, so the zero-allocation stepping invariants of [`crate::engine`]
//! are preserved.

use crate::batch::BatchDaemon;
use crate::config::Configuration;
use crate::daemon::{parse_daemon_spec, BoxedDaemon};
use crate::engine::Simulator;
use crate::measure::StabilizationReport;
use crate::observer::ConfigPredicate;
use crate::protocol::Protocol;
use rand::rngs::StdRng;
use specstab_topology::Graph;
use std::error::Error;
use std::fmt;

/// Per-vertex state type of a harness's protocol.
pub type HarnessState<H> = <<H as ProtocolHarness>::Protocol as Protocol>::State;

/// Typed errors a harness can produce while building a scenario.
#[derive(Clone, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum HarnessError {
    /// The protocol cannot run on this communication graph at all (e.g. a
    /// token ring asked to run on a tree).
    IncompatibleTopology {
        /// Registry name of the protocol.
        protocol: String,
        /// Human-readable topology requirement (e.g. `"a ring of n >= 3"`).
        requirement: String,
        /// Name of the offending graph.
        topology: String,
    },
    /// The protocol is compatible with the graph but does not support the
    /// requested scenario (e.g. witness injection for a protocol without
    /// an adversarial witness construction).
    UnsupportedScenario {
        /// Registry name of the protocol.
        protocol: String,
        /// The unsupported scenario (e.g. `"witness"`).
        scenario: String,
    },
    /// Any other construction failure.
    Build {
        /// Registry name of the protocol.
        protocol: String,
        /// What went wrong.
        reason: String,
    },
}

impl fmt::Display for HarnessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HarnessError::IncompatibleTopology { protocol, requirement, topology } => {
                write!(f, "protocol '{protocol}' requires {requirement}; '{topology}' is not")
            }
            HarnessError::UnsupportedScenario { protocol, scenario } => {
                write!(f, "protocol '{protocol}' does not support scenario '{scenario}'")
            }
            HarnessError::Build { protocol, reason } => {
                write!(f, "building protocol '{protocol}': {reason}")
            }
        }
    }
}

impl Error for HarnessError {}

/// Which measured quantity a theorem bound constrains.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum BoundMetric {
    /// The measured stabilization time w.r.t. safety
    /// ([`StabilizationReport::stabilization_steps`]).
    Stabilization,
    /// The legitimacy entry index
    /// ([`StabilizationReport::legitimacy_entry`]).
    LegitimacyEntry,
}

/// A theorem bound a measured run can be checked against.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct TheoremBound {
    /// The bound value.
    pub value: u64,
    /// The measured quantity the bound constrains.
    pub metric: BoundMetric,
}

impl TheoremBound {
    /// The bounded quantity of `report`.
    #[must_use]
    pub fn measured(&self, report: &StabilizationReport) -> u64 {
        match self.metric {
            BoundMetric::Stabilization => report.stabilization_steps as u64,
            BoundMetric::LegitimacyEntry => report.legitimacy_entry as u64,
        }
    }

    /// Whether `report` exceeds the bound.
    #[must_use]
    pub fn violated_by(&self, report: &StabilizationReport) -> bool {
        self.measured(report) > self.value
    }
}

/// Everything an adversarial measurement grid needs from one protocol.
///
/// Implementations are cheap value types built per `(protocol, graph)`
/// pair; the associated [`ProtocolHarness::Protocol`] stays fully
/// monomorphic, so generic drivers (`fn run<H: ProtocolHarness>(..)`)
/// compile to protocol-specialized step loops with no dynamic dispatch.
pub trait ProtocolHarness: Sized {
    /// The protocol this harness constructs.
    type Protocol: Protocol;

    /// Registry name of the protocol (e.g. `"ssme"`).
    const NAME: &'static str;

    /// Builds the protocol (and its specification) for `graph`.
    ///
    /// `diam` is the graph's diameter, supplied by the caller because grid
    /// drivers compute it once per topology.
    ///
    /// # Errors
    ///
    /// [`HarnessError::IncompatibleTopology`] when the protocol cannot run
    /// on `graph`, [`HarnessError::Build`] for any other failure.
    fn build(graph: &Graph, diam: u32) -> Result<Self, HarnessError>;

    /// The protocol instance.
    fn protocol(&self) -> &Self::Protocol;

    /// Constructs a configuration inside the protocol's legitimate set —
    /// the resting point that fault bursts corrupt. May consult `rng`
    /// (e.g. to sample among several legitimate configurations), and must
    /// be a deterministic function of the rng stream.
    ///
    /// # Errors
    ///
    /// [`HarnessError::Build`] when the construction fails.
    fn legitimate_configuration(
        &self,
        graph: &Graph,
        rng: &mut StdRng,
    ) -> Result<Configuration<HarnessState<Self>>, HarnessError>;

    /// Whether the protocol defines an adversarial witness initial
    /// configuration ([`ProtocolHarness::witness_configuration`]).
    #[must_use]
    fn supports_witness() -> bool {
        false
    }

    /// The deterministic adversarial witness initial configuration, for
    /// protocols with a matching lower-bound construction (e.g. SSME's
    /// Theorem 4 witness attaining the `⌈diam/2⌉` synchronous bound).
    ///
    /// # Errors
    ///
    /// [`HarnessError::UnsupportedScenario`] by default.
    fn witness_configuration(
        &self,
        graph: &Graph,
    ) -> Result<Configuration<HarnessState<Self>>, HarnessError> {
        let _ = graph;
        Err(HarnessError::UnsupportedScenario {
            protocol: Self::NAME.to_string(),
            scenario: "witness".to_string(),
        })
    }

    /// The specification's safety predicate (e.g. "at most one privileged
    /// vertex").
    fn safety_predicate(&self) -> ConfigPredicate<HarnessState<Self>>;

    /// The specification's legitimacy predicate (a closed set — validated
    /// by [`ProtocolHarness::closure_self_check`]).
    fn legitimacy_predicate(&self) -> ConfigPredicate<HarnessState<Self>>;

    /// Resolves a textual daemon spec. The default is the shared kernel
    /// zoo ([`parse_daemon_spec`]); protocols with bespoke adversaries
    /// (e.g. greedy disorder-metric adversaries) extend it.
    ///
    /// # Errors
    ///
    /// Returns a description of the malformed spec.
    fn daemon(&self, spec: &str, seed: u64) -> Result<BoxedDaemon<HarnessState<Self>>, String> {
        parse_daemon_spec(spec, seed)
    }

    /// The theorem bound applicable under the **synchronous** daemon, when
    /// the literature provides one for this protocol.
    #[must_use]
    fn sync_bound(&self, graph: &Graph, diam: u32) -> Option<TheoremBound> {
        let _ = (graph, diam);
        None
    }

    /// Whether this harness provides a lane-packed protocol
    /// implementation, i.e. whether [`ProtocolHarness::batched_measure`]
    /// returns `Some`. Batch drivers check this before building replica
    /// inits so unsupported protocols fall straight to the scalar path.
    /// The check covers every batched daemon ([`BatchDaemon`]) — sync,
    /// central round-robin and both per-lane-RNG random modes: the lane
    /// engines are protocol-agnostic, so a packed protocol supports every
    /// batched daemon mode.
    ///
    /// Harnesses may return `false` for *instances* outside their packed
    /// domain (e.g. the K-state Dijkstra ring packs u8 lanes and only
    /// batches when `K <= 256`); such instances take the counted scalar
    /// fallback.
    #[must_use]
    fn supports_batch(&self) -> bool {
        false
    }

    /// Largest graph the lane-divergent *central* batch daemons
    /// ([`BatchDaemon::CentralRr`] / [`BatchDaemon::CentralRand`]) should
    /// be routed to the packed engine on. A central pass commits one move
    /// per lane, so its cost — selection word-scans plus the
    /// touched-neighborhood bitset refresh — must amortize below one
    /// scalar step across the lanes; where that break-even sits depends
    /// on the lane width and guard cost, so each packed harness
    /// calibrates its own bound (see `crossover_probe` in the bench
    /// crate). The conservative default covers narrow wins like the
    /// i32-lane protocols; byte-lane harnesses raise it. Synchronous and
    /// random-distributed daemons commit whole selections per pass and
    /// have no such crossover.
    #[must_use]
    fn central_batch_max_n(&self) -> usize {
        32
    }

    /// Runs `inits.len()` replicas of this protocol under `daemon` as one
    /// batched run (see [`crate::batch`]), producing per lane the exact
    /// [`StabilizationReport`] (and final configuration) a scalar
    /// measured run from the same initial configuration under the
    /// matching scalar daemon yields — same monitors, same early stop
    /// with `early_stop_margin`, same stop-reason ordering. For the
    /// random daemons, `lane_seeds[l]` must be the seed lane `l`'s scalar
    /// daemon was constructed with (one per replica; deterministic
    /// daemons pass `&[]`), so every lane replays its scalar RNG draw
    /// sequence bit for bit.
    ///
    /// `None` (the default) means "no packed implementation — use the
    /// scalar path". Harnesses whose protocols implement
    /// [`PackedProtocol`](crate::batch::PackedProtocol) override this to
    /// call
    /// [`run_batch_measured_with`](crate::batch::run_batch_measured_with)
    /// with their own predicates.
    #[must_use]
    fn batched_measure(
        &self,
        graph: &Graph,
        daemon: BatchDaemon,
        lane_seeds: &[u64],
        inits: Vec<Configuration<HarnessState<Self>>>,
        max_steps: usize,
        early_stop_margin: usize,
    ) -> Option<Vec<(StabilizationReport, Configuration<HarnessState<Self>>)>> {
        let _ = (graph, daemon, lane_seeds, inits, max_steps, early_stop_margin);
        None
    }

    /// Self-check of the legitimate-set contract: every configuration
    /// produced by [`ProtocolHarness::legitimate_configuration`] must
    /// satisfy the legitimacy predicate, and legitimacy must be closed
    /// under one step for **every** daemon choice (all nonempty subsets of
    /// the enabled vertices when few, singletons plus the synchronous step
    /// otherwise).
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated contract.
    fn closure_self_check(
        &self,
        graph: &Graph,
        rng: &mut StdRng,
        samples: usize,
    ) -> Result<(), String> {
        let legit = self.legitimacy_predicate();
        let sim = Simulator::new(graph, self.protocol());
        for sample in 0..samples {
            let config = self.legitimate_configuration(graph, rng).map_err(|e| e.to_string())?;
            if !legit(&config, graph) {
                return Err(format!(
                    "sample {sample}: constructed configuration violates legitimacy"
                ));
            }
            let enabled = sim.enabled_vertices(&config);
            if enabled.is_empty() {
                continue; // terminal: trivially closed
            }
            // Every daemon choice is a nonempty subset of the enabled set;
            // enumerate them all while that is tractable.
            if enabled.len() <= 10 {
                for mask in 1u32..(1 << enabled.len()) {
                    let subset: Vec<_> = enabled
                        .iter()
                        .enumerate()
                        .filter(|&(i, _)| mask & (1 << i) != 0)
                        .map(|(_, &v)| v)
                        .collect();
                    let (next, _) = sim.apply_action(&config, &subset);
                    if !legit(&next, graph) {
                        return Err(format!(
                            "sample {sample}: legitimacy not closed under activating {subset:?}"
                        ));
                    }
                }
            } else {
                for &v in &enabled {
                    let (next, _) = sim.apply_action(&config, &[v]);
                    if !legit(&next, graph) {
                        return Err(format!(
                            "sample {sample}: legitimacy not closed under activating {v}"
                        ));
                    }
                }
                let (next, _) = sim.apply_action(&config, &enabled);
                if !legit(&next, graph) {
                    return Err(format!(
                        "sample {sample}: legitimacy not closed under the synchronous step"
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{RuleId, RuleInfo, View};
    use rand::{Rng, SeedableRng};
    use specstab_topology::{generators, VertexId};

    /// Toy harness: "all zero" is the legitimate set of a protocol that
    /// decrements positive states.
    struct Decrement;
    impl Protocol for Decrement {
        type State = u8;
        fn name(&self) -> String {
            "dec".into()
        }
        fn rules(&self) -> Vec<RuleInfo> {
            vec![RuleInfo::new("DEC")]
        }
        fn enabled_rule(&self, view: &View<'_, u8>) -> Option<RuleId> {
            (*view.state() > 0).then_some(RuleId::new(0))
        }
        fn apply(&self, view: &View<'_, u8>, _rule: RuleId) -> u8 {
            view.state() - 1
        }
        fn random_state(&self, _v: VertexId, rng: &mut StdRng) -> u8 {
            rng.gen_range(0..4)
        }
    }

    struct DecHarness(Decrement);
    impl ProtocolHarness for DecHarness {
        type Protocol = Decrement;
        const NAME: &'static str = "dec";
        fn build(_graph: &Graph, _diam: u32) -> Result<Self, HarnessError> {
            Ok(Self(Decrement))
        }
        fn protocol(&self) -> &Decrement {
            &self.0
        }
        fn legitimate_configuration(
            &self,
            graph: &Graph,
            _rng: &mut StdRng,
        ) -> Result<Configuration<u8>, HarnessError> {
            Ok(Configuration::from_fn(graph.n(), |_| 0))
        }
        fn safety_predicate(&self) -> ConfigPredicate<u8> {
            Box::new(|c, _| c.states().iter().all(|&s| s <= 1))
        }
        fn legitimacy_predicate(&self) -> ConfigPredicate<u8> {
            Box::new(|c, _| c.states().iter().all(|&s| s == 0))
        }
    }

    /// Broken harness: claims a non-closed "legitimate" set.
    struct Broken(Decrement);
    impl ProtocolHarness for Broken {
        type Protocol = Decrement;
        const NAME: &'static str = "broken";
        fn build(_graph: &Graph, _diam: u32) -> Result<Self, HarnessError> {
            Ok(Self(Decrement))
        }
        fn protocol(&self) -> &Decrement {
            &self.0
        }
        fn legitimate_configuration(
            &self,
            graph: &Graph,
            _rng: &mut StdRng,
        ) -> Result<Configuration<u8>, HarnessError> {
            Ok(Configuration::from_fn(graph.n(), |_| 2))
        }
        fn safety_predicate(&self) -> ConfigPredicate<u8> {
            Box::new(|_, _| true)
        }
        fn legitimacy_predicate(&self) -> ConfigPredicate<u8> {
            // "Exactly 2 everywhere": not closed under DEC.
            Box::new(|c, _| c.states().iter().all(|&s| s == 2))
        }
    }

    #[test]
    fn default_witness_is_a_typed_unsupported_scenario() {
        let g = generators::ring(4).unwrap();
        let h = DecHarness::build(&g, 2).unwrap();
        assert!(!DecHarness::supports_witness());
        let err = h.witness_configuration(&g).unwrap_err();
        assert_eq!(
            err,
            HarnessError::UnsupportedScenario {
                protocol: "dec".into(),
                scenario: "witness".into()
            }
        );
        assert!(err.to_string().contains("does not support scenario 'witness'"));
    }

    #[test]
    fn closure_self_check_accepts_a_closed_legitimate_set() {
        let g = generators::path(5).unwrap();
        let h = DecHarness::build(&g, 4).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        h.closure_self_check(&g, &mut rng, 3).unwrap();
    }

    #[test]
    fn closure_self_check_rejects_a_non_closed_set() {
        let g = generators::path(4).unwrap();
        let h = Broken::build(&g, 3).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let err = h.closure_self_check(&g, &mut rng, 1).unwrap_err();
        assert!(err.contains("not closed"), "{err}");
    }

    #[test]
    fn theorem_bound_checks_the_right_metric() {
        let report = StabilizationReport {
            steps_run: 10,
            moves: 10,
            stop: crate::engine::StopReason::Terminal,
            last_violation: Some(6),
            violation_count: 3,
            stabilization_steps: 7,
            first_legitimate: Some(2),
            legitimacy_entry: 9,
            ended_legitimate: true,
            counters: specstab_telemetry::RunCounters::default(),
        };
        let stab = TheoremBound { value: 7, metric: BoundMetric::Stabilization };
        assert_eq!(stab.measured(&report), 7);
        assert!(!stab.violated_by(&report));
        let entry = TheoremBound { value: 8, metric: BoundMetric::LegitimacyEntry };
        assert_eq!(entry.measured(&report), 9);
        assert!(entry.violated_by(&report));
    }

    #[test]
    fn harness_error_displays() {
        let e = HarnessError::IncompatibleTopology {
            protocol: "dijkstra".into(),
            requirement: "a ring of n >= 3 machines".into(),
            topology: "path-5".into(),
        };
        assert!(e.to_string().contains("requires a ring"));
        let b = HarnessError::Build { protocol: "ssme".into(), reason: "bad diameter".into() };
        assert!(b.to_string().contains("building protocol 'ssme'"));
    }
}
