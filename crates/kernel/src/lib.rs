//! Simulation kernel for self-stabilizing distributed protocols in
//! Dijkstra's atomic-state model.
//!
//! The model (Section 2 of Dubois & Guerraoui, PODC 2013): processes are
//! vertices of a communication graph; each process owns a set of variables
//! and can atomically read the states of all its neighbors. A *distributed
//! protocol* is a set of guarded rules per vertex; an *action* moves the
//! system from one configuration to the next by activating a subset of the
//! enabled vertices, all of which compute their new state from the **old**
//! configuration. The *daemon* (adversary) chooses the activated subset at
//! every step.
//!
//! Main pieces:
//!
//! * [`config::Configuration`] — an assignment of states to all vertices;
//! * [`protocol::Protocol`] — protocols as guarded rules over a local
//!   [`protocol::View`] that enforces the locality discipline;
//! * [`daemon`] — the daemon trait, the taxonomy partial order of Def. 2,
//!   and a zoo of schedulers (synchronous, central, random distributed,
//!   greedy adversarial, ...);
//! * [`engine::Simulator`] — the step loop with pluggable [`observer`]s;
//! * [`batch`] — replica-parallel batched stepping: K seed-replicas in
//!   structure-of-arrays lanes under the synchronous daemon;
//! * [`measure`] — stabilization-time measurement (Def. 3);
//! * [`search`] — exhaustive worst-case analysis on small instances by
//!   materializing the configuration game graph;
//! * [`fault`] — transient-fault injection.
//!
//! # Example: a trivial "max propagation" protocol
//!
//! ```
//! use specstab_kernel::config::Configuration;
//! use specstab_kernel::daemon::SynchronousDaemon;
//! use specstab_kernel::engine::{RunLimits, Simulator};
//! use specstab_kernel::protocol::{Protocol, RuleId, RuleInfo, View};
//! use specstab_topology::{generators, VertexId};
//!
//! struct MaxProto;
//! impl Protocol for MaxProto {
//!     type State = u32;
//!     fn name(&self) -> String { "max".into() }
//!     fn rules(&self) -> Vec<RuleInfo> { vec![RuleInfo::new("ADOPT")] }
//!     fn enabled_rule(&self, view: &View<'_, u32>) -> Option<RuleId> {
//!         let best = view.neighbor_states().map(|(_, &s)| s).max().unwrap_or(0);
//!         (best > *view.state()).then_some(RuleId::new(0))
//!     }
//!     fn apply(&self, view: &View<'_, u32>, _rule: RuleId) -> u32 {
//!         view.neighbor_states().map(|(_, &s)| s).max().unwrap()
//!     }
//!     fn random_state(&self, _v: VertexId, rng: &mut rand::rngs::StdRng) -> u32 {
//!         use rand::Rng;
//!         rng.gen_range(0..100)
//!     }
//! }
//!
//! let g = generators::path(5).expect("n >= 1");
//! let sim = Simulator::new(&g, &MaxProto);
//! let init = Configuration::from_fn(g.n(), |v| v.index() as u32);
//! let mut daemon = SynchronousDaemon::new();
//! let summary = sim.run(init, &mut daemon, RunLimits::with_max_steps(100), &mut []);
//! assert!(summary.final_config.states().iter().all(|&s| s == 4));
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod config;
pub mod daemon;
pub mod engine;
pub mod fault;
pub mod harness;
pub mod measure;
pub mod observer;
pub mod protocol;
pub mod search;
pub mod spec;

pub use batch::{run_batch, run_batch_measured, LaneSummary, PackedProtocol};
pub use config::Configuration;
pub use daemon::{Daemon, DaemonClass};
pub use engine::{RunLimits, RunSummary, Simulator, StepScratch};
pub use protocol::{Protocol, RuleId, RuleInfo, View};
