//! Protocols as guarded rules over local views.
//!
//! A distributed protocol in Dijkstra's model is, per vertex, a set of
//! guarded rules `<label> :: <guard> → <action>`. The guard may only read
//! the vertex's own state and its neighbors' states; the action computes
//! the vertex's next state from the same local information. [`View`]
//! enforces this locality discipline at runtime: reading the state of a
//! non-neighbor panics, so a protocol that cheats fails loudly in tests.
//!
//! All protocols in this workspace are *deterministic*: at most one rule is
//! enabled per vertex per configuration, matching the paper (arbitration
//! among rules, where needed, is part of [`Protocol::enabled_rule`]).

use crate::config::Configuration;
use rand::rngs::StdRng;
use specstab_topology::{Graph, VertexId};
use std::fmt;

/// Index of a guarded rule within a protocol's rule table.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct RuleId(u8);

impl RuleId {
    /// Creates a rule identifier from its index in [`Protocol::rules`].
    #[must_use]
    pub const fn new(index: u8) -> Self {
        Self(index)
    }

    /// Index into the protocol's rule table.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rule#{}", self.0)
    }
}

/// Static description of a guarded rule (for traces and reports).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RuleInfo {
    label: String,
}

impl RuleInfo {
    /// Creates a rule description with the given label (e.g. `"NA"`).
    #[must_use]
    pub fn new(label: impl Into<String>) -> Self {
        Self { label: label.into() }
    }

    /// The rule's label as written in the paper's pseudo-code.
    #[must_use]
    pub fn label(&self) -> &str {
        &self.label
    }
}

impl fmt::Display for RuleInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Read-only local view of a configuration from one vertex: its own state
/// plus the atomically-read states of its neighbors.
///
/// Created by the engine; protocols receive it in
/// [`Protocol::enabled_rule`] and [`Protocol::apply`].
///
/// The vertex's CSR neighbor slice is resolved **once at construction** and
/// cached, so a guard that walks the neighborhood several times (and the
/// common `enabled_rule` → `apply` pair sharing one view) never re-fetches
/// it from the graph.
#[derive(Clone, Copy, Debug)]
pub struct View<'a, S> {
    vertex: VertexId,
    graph: &'a Graph,
    config: &'a Configuration<S>,
    /// `graph.neighbors(vertex)`, fetched once.
    neighbors: &'a [VertexId],
}

impl<'a, S> View<'a, S> {
    /// Builds a view of `config` from `vertex`.
    ///
    /// # Panics
    ///
    /// Panics if `vertex` is out of range for the graph.
    #[must_use]
    pub fn new(vertex: VertexId, graph: &'a Graph, config: &'a Configuration<S>) -> Self {
        assert!(vertex.index() < graph.n(), "view vertex out of range");
        Self { vertex, graph, config, neighbors: graph.neighbors(vertex) }
    }

    /// [`View::new`] with the bounds check demoted to a `debug_assert!` —
    /// the engine's steady-state fast path. The engine validates the
    /// configuration length once at run entry and only ever passes vertices
    /// of its own graph, so re-checking per guard evaluation is pure
    /// overhead (release campaigns evaluate guards hundreds of millions of
    /// times).
    #[inline]
    #[must_use]
    pub(crate) fn new_unchecked(
        vertex: VertexId,
        graph: &'a Graph,
        config: &'a Configuration<S>,
    ) -> Self {
        debug_assert!(vertex.index() < graph.n(), "view vertex out of range");
        Self { vertex, graph, config, neighbors: graph.neighbors(vertex) }
    }

    /// The vertex this view belongs to.
    #[must_use]
    pub fn vertex(&self) -> VertexId {
        self.vertex
    }

    /// The vertex's own state.
    #[must_use]
    pub fn state(&self) -> &'a S {
        self.config.get(self.vertex)
    }

    /// The underlying communication graph (topology constants like `n` or
    /// `diam` are legitimately global knowledge in the paper's model).
    #[must_use]
    pub fn graph(&self) -> &'a Graph {
        self.graph
    }

    /// Degree of the vertex.
    #[must_use]
    pub fn degree(&self) -> usize {
        self.neighbors.len()
    }

    /// Iterates over `(neighbor, state)` pairs in neighbor order, walking
    /// the cached CSR slice.
    pub fn neighbor_states(&self) -> impl Iterator<Item = (VertexId, &'a S)> + '_ {
        self.neighbors.iter().map(|&u| (u, self.config.get(u)))
    }

    /// Reads the state of `u`, which must be this vertex or one of its
    /// neighbors.
    ///
    /// # Panics
    ///
    /// Panics if `u` is neither `self.vertex()` nor adjacent to it — this
    /// is the runtime enforcement of the model's locality discipline.
    #[must_use]
    pub fn state_of(&self, u: VertexId) -> &'a S {
        assert!(
            u == self.vertex || self.neighbors.binary_search(&u).is_ok(),
            "locality violation: {} read the state of non-neighbor {}",
            self.vertex,
            u
        );
        self.config.get(u)
    }
}

/// A distributed protocol: per-vertex guarded rules in Dijkstra's model.
///
/// Implementations must be *deterministic* (at most one enabled rule per
/// vertex per configuration) and *local* (only the [`View`] may be
/// consulted). The engine activates any subset of enabled vertices chosen
/// by the daemon; every activated vertex's new state is computed from the
/// pre-step configuration.
pub trait Protocol {
    /// Per-vertex state type: an owned (`'static`) value — the engine's
    /// scratch pools and boxed daemons key and store states by type.
    type State: Clone + Eq + std::hash::Hash + fmt::Debug + 'static;

    /// Protocol name for reports (e.g. `"SSME"`).
    fn name(&self) -> String;

    /// The rule table; [`RuleId`]s index into it.
    fn rules(&self) -> Vec<RuleInfo>;

    /// The unique enabled rule of the vertex in this configuration, if any.
    ///
    /// A vertex is *enabled* when this returns `Some`.
    fn enabled_rule(&self, view: &View<'_, Self::State>) -> Option<RuleId>;

    /// Executes `rule`'s action: the vertex's next state.
    ///
    /// Only called with a rule previously returned by
    /// [`Protocol::enabled_rule`] for the same view.
    fn apply(&self, view: &View<'_, Self::State>, rule: RuleId) -> Self::State;

    /// Samples a uniformly arbitrary state for `v`, used to build arbitrary
    /// initial configurations and to model transient faults.
    fn random_state(&self, v: VertexId, rng: &mut StdRng) -> Self::State;

    /// Enumerates the full state domain of vertex `v`, when finite and
    /// small enough for exhaustive analysis ([`crate::search`]).
    ///
    /// The default implementation returns `None` (domain too large or
    /// unbounded).
    fn state_domain(&self, v: VertexId) -> Option<Vec<Self::State>> {
        let _ = v;
        None
    }
}

/// Builds an arbitrary (uniformly random per-vertex) configuration, the
/// standard model of a system struck by a transient fault burst.
#[must_use]
pub fn random_configuration<P: Protocol>(
    graph: &Graph,
    protocol: &P,
    rng: &mut StdRng,
) -> Configuration<P::State> {
    Configuration::from_fn(graph.n(), |v| protocol.random_state(v, rng))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use specstab_topology::generators;

    /// Toy protocol: state is a counter, rule "INC" enabled while the
    /// counter is below the max of the neighborhood.
    struct Toy;
    impl Protocol for Toy {
        type State = u8;
        fn name(&self) -> String {
            "toy".into()
        }
        fn rules(&self) -> Vec<RuleInfo> {
            vec![RuleInfo::new("INC")]
        }
        fn enabled_rule(&self, view: &View<'_, u8>) -> Option<RuleId> {
            let m = view.neighbor_states().map(|(_, &s)| s).max().unwrap_or(0);
            (*view.state() < m).then_some(RuleId::new(0))
        }
        fn apply(&self, view: &View<'_, u8>, _rule: RuleId) -> u8 {
            view.state() + 1
        }
        fn random_state(&self, _v: VertexId, rng: &mut StdRng) -> u8 {
            use rand::Rng;
            rng.gen_range(0..4)
        }
        fn state_domain(&self, _v: VertexId) -> Option<Vec<u8>> {
            Some((0..4).collect())
        }
    }

    #[test]
    fn view_reads_own_and_neighbor_states() {
        let g = generators::path(3).unwrap();
        let c = Configuration::new(vec![10u8, 20, 30]);
        let v = View::new(VertexId::new(1), &g, &c);
        assert_eq!(*v.state(), 20);
        assert_eq!(v.degree(), 2);
        let ns: Vec<u8> = v.neighbor_states().map(|(_, &s)| s).collect();
        assert_eq!(ns, vec![10, 30]);
        assert_eq!(*v.state_of(VertexId::new(0)), 10);
        assert_eq!(*v.state_of(VertexId::new(1)), 20);
    }

    #[test]
    #[should_panic(expected = "locality violation")]
    fn view_panics_on_non_neighbor_read() {
        let g = generators::path(3).unwrap();
        let c = Configuration::new(vec![10u8, 20, 30]);
        let v = View::new(VertexId::new(0), &g, &c);
        let _ = v.state_of(VertexId::new(2));
    }

    #[test]
    fn toy_protocol_enablement() {
        let g = generators::path(3).unwrap();
        let c = Configuration::new(vec![0u8, 3, 1]);
        let proto = Toy;
        let v0 = View::new(VertexId::new(0), &g, &c);
        let v1 = View::new(VertexId::new(1), &g, &c);
        assert_eq!(proto.enabled_rule(&v0), Some(RuleId::new(0)));
        assert_eq!(proto.enabled_rule(&v1), None);
    }

    #[test]
    fn random_configuration_is_seed_deterministic() {
        let g = generators::ring(6).unwrap();
        let mut r1 = StdRng::seed_from_u64(9);
        let mut r2 = StdRng::seed_from_u64(9);
        let c1 = random_configuration(&g, &Toy, &mut r1);
        let c2 = random_configuration(&g, &Toy, &mut r2);
        assert_eq!(c1, c2);
    }

    #[test]
    fn rule_info_display() {
        assert_eq!(RuleInfo::new("NA").to_string(), "NA");
        assert_eq!(RuleId::new(2).to_string(), "rule#2");
        assert_eq!(RuleId::new(2).index(), 2);
    }
}
