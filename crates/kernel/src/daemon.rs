//! Daemons (adversaries/schedulers) and their taxonomy.
//!
//! Definition 1 of the paper abstracts the system's asynchrony as a
//! *daemon*: a function restricting which executions of a protocol are
//! possible. Operationally (and equivalently for the protocols studied
//! here), a daemon picks, in every configuration, a nonempty subset of the
//! enabled vertices to activate.
//!
//! Definition 2 orders daemons by the executions they allow: `d ⪯ d'` when
//! every execution allowed by `d` is allowed by `d'` (`d'` is *more
//! powerful*). This module mirrors the classical taxonomy along three
//! axes — centrality, synchrony and fairness — and implements the induced
//! partial order on [`DaemonClass`]: the *unfair distributed* daemon `ud`
//! is the maximum, the *synchronous* daemon `sd` and the *central* daemon
//! `cd` are strictly below it, and `sd`/`cd` are incomparable.

use crate::config::Configuration;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use specstab_topology::{Graph, VertexId};
use std::cmp::Ordering;
use std::fmt;

/// How many vertices a daemon may activate per step.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Hash)]
pub enum Centrality {
    /// Exactly one enabled vertex per step.
    Central,
    /// Any nonempty subset of enabled vertices.
    Distributed,
}

/// Whether the daemon is forced to activate every enabled vertex.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Hash)]
pub enum Synchrony {
    /// Always activates *all* enabled vertices.
    Synchronous,
    /// May activate any allowed subset.
    Asynchronous,
}

/// Fairness guarantees on which executions are allowed.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Hash)]
pub enum Fairness {
    /// No fairness guarantee at all (the adversary may starve vertices as
    /// long as some enabled vertex is activated).
    Unfair,
    /// A continuously enabled vertex is eventually activated.
    WeaklyFair,
}

/// Taxonomy coordinates of a daemon, inducing the Def. 2 partial order.
///
/// ```
/// use specstab_kernel::daemon::DaemonClass;
///
/// let ud = DaemonClass::unfair_distributed();
/// let sd = DaemonClass::synchronous();
/// let cd = DaemonClass::central_unfair();
/// assert!(sd < ud);
/// assert!(cd < ud);
/// assert_eq!(sd.partial_cmp(&cd), None); // incomparable
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Debug, Hash)]
pub struct DaemonClass {
    /// Centrality axis.
    pub centrality: Centrality,
    /// Synchrony axis.
    pub synchrony: Synchrony,
    /// Fairness axis.
    pub fairness: Fairness,
}

impl DaemonClass {
    /// `ud`: the unfair distributed daemon — the most powerful adversary.
    #[must_use]
    pub fn unfair_distributed() -> Self {
        Self {
            centrality: Centrality::Distributed,
            synchrony: Synchrony::Asynchronous,
            fairness: Fairness::Unfair,
        }
    }

    /// `sd`: the synchronous daemon (activates all enabled vertices).
    #[must_use]
    pub fn synchronous() -> Self {
        Self {
            centrality: Centrality::Distributed,
            synchrony: Synchrony::Synchronous,
            fairness: Fairness::WeaklyFair, // vacuously fair: everyone moves
        }
    }

    /// `cd`: the central (unfair) daemon.
    #[must_use]
    pub fn central_unfair() -> Self {
        Self {
            centrality: Centrality::Central,
            synchrony: Synchrony::Asynchronous,
            fairness: Fairness::Unfair,
        }
    }

    /// A weakly-fair central daemon (e.g. round-robin).
    #[must_use]
    pub fn central_weakly_fair() -> Self {
        Self {
            centrality: Centrality::Central,
            synchrony: Synchrony::Asynchronous,
            fairness: Fairness::WeaklyFair,
        }
    }
}

/// Per-axis "allows fewer executions" relation.
fn centrality_le(a: Centrality, b: Centrality) -> bool {
    a == b || (a == Centrality::Central && b == Centrality::Distributed)
}
fn synchrony_le(a: Synchrony, b: Synchrony) -> bool {
    a == b || (a == Synchrony::Synchronous && b == Synchrony::Asynchronous)
}
fn fairness_le(a: Fairness, b: Fairness) -> bool {
    a == b || (a == Fairness::WeaklyFair && b == Fairness::Unfair)
}

impl PartialOrd for DaemonClass {
    /// `a <= b` iff every execution allowed by class `a` is allowed by
    /// class `b` (`b` is *more powerful*, Def. 2).
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        let le = centrality_le(self.centrality, other.centrality)
            && synchrony_le(self.synchrony, other.synchrony)
            && fairness_le(self.fairness, other.fairness);
        let ge = centrality_le(other.centrality, self.centrality)
            && synchrony_le(other.synchrony, self.synchrony)
            && fairness_le(other.fairness, self.fairness);
        match (le, ge) {
            (true, true) => Some(Ordering::Equal),
            (true, false) => Some(Ordering::Less),
            (false, true) => Some(Ordering::Greater),
            (false, false) => None,
        }
    }
}

impl fmt::Display for DaemonClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = match self.centrality {
            Centrality::Central => "central",
            Centrality::Distributed => "distributed",
        };
        let s = match self.synchrony {
            Synchrony::Synchronous => "synchronous",
            Synchrony::Asynchronous => "asynchronous",
        };
        let fr = match self.fairness {
            Fairness::Unfair => "unfair",
            Fairness::WeaklyFair => "weakly-fair",
        };
        write!(f, "{c}/{s}/{fr}")
    }
}

impl std::str::FromStr for DaemonClass {
    type Err = String;

    /// Parses the `centrality/synchrony/fairness` form produced by
    /// [`DaemonClass`]'s `Display` impl — the round trip campaign partial
    /// artifacts rely on.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut parts = s.split('/');
        let (Some(c), Some(sy), Some(fr), None) =
            (parts.next(), parts.next(), parts.next(), parts.next())
        else {
            return Err(format!("bad daemon class '{s}' (expected centrality/synchrony/fairness)"));
        };
        Ok(Self {
            centrality: match c {
                "central" => Centrality::Central,
                "distributed" => Centrality::Distributed,
                other => return Err(format!("bad centrality '{other}'")),
            },
            synchrony: match sy {
                "synchronous" => Synchrony::Synchronous,
                "asynchronous" => Synchrony::Asynchronous,
                other => return Err(format!("bad synchrony '{other}'")),
            },
            fairness: match fr {
                "unfair" => Fairness::Unfair,
                "weakly-fair" => Fairness::WeaklyFair,
                other => return Err(format!("bad fairness '{other}'")),
            },
        })
    }
}

/// Everything a daemon may inspect when choosing an activation set.
pub struct SelectionContext<'a, S> {
    /// The enabled vertices of the current configuration, sorted.
    pub enabled: &'a [VertexId],
    /// The current configuration.
    pub config: &'a Configuration<S>,
    /// The communication graph.
    pub graph: &'a Graph,
    /// Zero-based index of the action about to be taken.
    pub step: usize,
    /// Writes the successor of `config` under a candidate activation set
    /// into a caller-supplied buffer (see [`SelectionContext::preview`]).
    apply_into: &'a dyn Fn(&[VertexId], &mut Configuration<S>),
}

impl<'a, S: Clone> SelectionContext<'a, S> {
    /// Builds a selection context. `apply_into` must overwrite its output
    /// buffer with the successor of `config` under the given activation set
    /// (the engine passes a buffer-reusing `apply_action_into` closure).
    #[must_use]
    pub fn new(
        enabled: &'a [VertexId],
        config: &'a Configuration<S>,
        graph: &'a Graph,
        step: usize,
        apply_into: &'a dyn Fn(&[VertexId], &mut Configuration<S>),
    ) -> Self {
        Self { enabled, config, graph, step, apply_into }
    }

    /// One-step lookahead without cloning: writes the configuration that
    /// would result from activating `set` into `scratch` (reusing its
    /// allocation) and returns it. Adversarial daemons keep a per-daemon
    /// scratch configuration and call this once per candidate, so steady
    /// state previews perform zero heap allocations.
    pub fn preview<'b>(
        &self,
        set: &[VertexId],
        scratch: &'b mut Configuration<S>,
    ) -> &'b Configuration<S> {
        (self.apply_into)(set, scratch);
        scratch
    }

    /// Clone-returning preview, retained for callers that want an owned
    /// successor (allocates; prefer [`SelectionContext::preview`] on hot
    /// paths).
    #[must_use]
    pub fn preview_cloned(&self, set: &[VertexId]) -> Configuration<S> {
        let mut next = self.config.clone();
        (self.apply_into)(set, &mut next);
        next
    }
}

/// A daemon: picks a nonempty subset of the enabled vertices each step.
///
/// The engine guarantees `ctx.enabled` is nonempty and validates the
/// selection (nonempty, subset of enabled, deduplicated).
pub trait Daemon<S> {
    /// Name for reports (e.g. `"synchronous"`).
    fn name(&self) -> String;

    /// Taxonomy coordinates of this daemon.
    fn class(&self) -> DaemonClass;

    /// Chooses the activation set for this step, writing it into
    /// `selection` (cleared by the engine before the call). Writing into an
    /// engine-owned scratch buffer instead of returning a fresh `Vec` keeps
    /// the steady-state step loop allocation-free.
    fn select(&mut self, ctx: &SelectionContext<'_, S>, selection: &mut Vec<VertexId>);

    /// Called once when an execution starts, so stateful daemons
    /// (round-robin cursors, RNGs with per-run reseeding) can reset.
    fn reset(&mut self) {}
}

/// The synchronous daemon `sd`: activates every enabled vertex.
#[derive(Clone, Debug, Default)]
pub struct SynchronousDaemon;

impl SynchronousDaemon {
    /// Creates the synchronous daemon.
    #[must_use]
    pub fn new() -> Self {
        Self
    }
}

impl<S> Daemon<S> for SynchronousDaemon {
    fn name(&self) -> String {
        "synchronous".into()
    }
    fn class(&self) -> DaemonClass {
        DaemonClass::synchronous()
    }
    fn select(&mut self, ctx: &SelectionContext<'_, S>, selection: &mut Vec<VertexId>) {
        selection.extend_from_slice(ctx.enabled);
    }
}

/// Selection strategies for [`CentralDaemon`].
#[derive(Clone, Debug)]
pub enum CentralStrategy {
    /// Cycles through vertex indices, activating the next enabled one —
    /// weakly fair.
    RoundRobin,
    /// Uniform random among enabled (seeded) — fair with probability 1,
    /// classified unfair (no hard guarantee).
    Random(u64),
    /// Always the enabled vertex with the smallest index — unfair.
    MinId,
    /// Always the enabled vertex with the largest index — unfair.
    MaxId,
}

/// The central daemon `cd`: exactly one enabled vertex per step.
#[derive(Clone, Debug)]
pub struct CentralDaemon {
    strategy: CentralStrategy,
    cursor: usize,
    rng: StdRng,
    seed: u64,
}

impl CentralDaemon {
    /// Creates a central daemon with the given strategy.
    #[must_use]
    pub fn new(strategy: CentralStrategy) -> Self {
        let seed = match strategy {
            CentralStrategy::Random(s) => s,
            _ => 0,
        };
        Self { strategy, cursor: 0, rng: StdRng::seed_from_u64(seed), seed }
    }
}

impl<S> Daemon<S> for CentralDaemon {
    fn name(&self) -> String {
        match self.strategy {
            CentralStrategy::RoundRobin => "central-rr".into(),
            CentralStrategy::Random(s) => format!("central-rand-s{s}"),
            CentralStrategy::MinId => "central-min".into(),
            CentralStrategy::MaxId => "central-max".into(),
        }
    }

    fn class(&self) -> DaemonClass {
        match self.strategy {
            CentralStrategy::RoundRobin => DaemonClass::central_weakly_fair(),
            _ => DaemonClass::central_unfair(),
        }
    }

    fn select(&mut self, ctx: &SelectionContext<'_, S>, selection: &mut Vec<VertexId>) {
        let pick = match &self.strategy {
            CentralStrategy::MinId => ctx.enabled[0],
            CentralStrategy::MaxId => *ctx.enabled.last().expect("enabled nonempty"),
            CentralStrategy::Random(_) => {
                *ctx.enabled.choose(&mut self.rng).expect("enabled nonempty")
            }
            CentralStrategy::RoundRobin => {
                // The next enabled vertex at or after the cursor, wrapping
                // to the smallest enabled vertex when none remains.
                // `ctx.enabled` is sorted, so one partition_point replaces
                // the historical O(n) slot scan (which probed every index
                // from the cursor with a binary search each) — same pick
                // sequence, pinned by `round_robin_fast_path_matches_scan`
                // and the golden campaign artifacts.
                let i = ctx.enabled.partition_point(|&v| v.index() < self.cursor);
                let pick = if i < ctx.enabled.len() { ctx.enabled[i] } else { ctx.enabled[0] };
                self.cursor = (pick.index() + 1) % ctx.graph.n();
                pick
            }
        };
        selection.push(pick);
    }

    fn reset(&mut self) {
        self.cursor = 0;
        self.rng = StdRng::seed_from_u64(self.seed);
    }
}

/// Random distributed daemon: includes each enabled vertex independently
/// with probability `p` (falling back to one uniform pick if the sample is
/// empty). With `p = 1` this degenerates to the synchronous daemon; small
/// `p` approximates a central one.
#[derive(Clone, Debug)]
pub struct RandomDistributedDaemon {
    p: f64,
    rng: StdRng,
    seed: u64,
}

impl RandomDistributedDaemon {
    /// Creates the daemon with inclusion probability `p` in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    #[must_use]
    pub fn new(p: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&p), "inclusion probability must be in [0,1]");
        Self { p, rng: StdRng::seed_from_u64(seed), seed }
    }
}

impl<S> Daemon<S> for RandomDistributedDaemon {
    fn name(&self) -> String {
        format!("dist-rand-p{:.2}-s{}", self.p, self.seed)
    }
    fn class(&self) -> DaemonClass {
        DaemonClass::unfair_distributed()
    }
    fn select(&mut self, ctx: &SelectionContext<'_, S>, selection: &mut Vec<VertexId>) {
        selection.extend(ctx.enabled.iter().copied().filter(|_| self.rng.gen_bool(self.p)));
        if selection.is_empty() {
            selection.push(*ctx.enabled.choose(&mut self.rng).expect("enabled nonempty"));
        }
    }
    fn reset(&mut self) {
        self.rng = StdRng::seed_from_u64(self.seed);
    }
}

/// K-bounded distributed daemon: a random distributed scheduler that never
/// lets an enabled vertex be passed over more than `k` consecutive steps —
/// the classical *k-bounded* daemon, strictly weaker than the unfair one.
#[derive(Clone, Debug)]
pub struct KBoundedDaemon {
    k: usize,
    p: f64,
    passes: Vec<usize>,
    /// Reused per-step scratch masks (selection / enablement by index).
    in_set: Vec<bool>,
    enabled_now: Vec<bool>,
    rng: StdRng,
    seed: u64,
}

impl KBoundedDaemon {
    /// Creates a k-bounded daemon with inclusion probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    #[must_use]
    pub fn new(k: usize, p: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&p), "inclusion probability must be in [0,1]");
        Self {
            k,
            p,
            passes: Vec::new(),
            in_set: Vec::new(),
            enabled_now: Vec::new(),
            rng: StdRng::seed_from_u64(seed),
            seed,
        }
    }
}

impl<S> Daemon<S> for KBoundedDaemon {
    fn name(&self) -> String {
        format!("dist-{}bounded-p{:.2}", self.k, self.p)
    }
    fn class(&self) -> DaemonClass {
        DaemonClass {
            centrality: Centrality::Distributed,
            synchrony: Synchrony::Asynchronous,
            fairness: Fairness::WeaklyFair,
        }
    }
    fn select(&mut self, ctx: &SelectionContext<'_, S>, selection: &mut Vec<VertexId>) {
        let n = ctx.graph.n();
        if self.passes.len() != n {
            self.passes = vec![0; n];
        }
        let passes = &self.passes;
        let (k, p, rng) = (self.k, self.p, &mut self.rng);
        selection.extend(
            ctx.enabled.iter().copied().filter(|v| passes[v.index()] >= k || rng.gen_bool(p)),
        );
        if selection.is_empty() {
            selection.push(*ctx.enabled.choose(&mut self.rng).expect("enabled nonempty"));
        }
        self.in_set.clear();
        self.in_set.resize(n, false);
        for &v in selection.iter() {
            self.in_set[v.index()] = true;
        }
        self.enabled_now.clear();
        self.enabled_now.resize(n, false);
        for &v in ctx.enabled {
            self.enabled_now[v.index()] = true;
        }
        for i in 0..n {
            if self.enabled_now[i] && !self.in_set[i] {
                self.passes[i] += 1;
            } else {
                self.passes[i] = 0;
            }
        }
    }
    fn reset(&mut self) {
        self.passes.clear();
        self.rng = StdRng::seed_from_u64(self.seed);
    }
}

/// Weakly-fair central daemon: always activates the enabled vertex that
/// has been continuously enabled the longest ("oldest first"). No enabled
/// vertex waits more than `n - 1` selections — a strong fairness guarantee
/// in practice, classified weakly fair.
#[derive(Clone, Debug, Default)]
pub struct OldestFirstDaemon {
    /// Step at which each vertex most recently became enabled.
    enabled_since: Vec<usize>,
    /// Reused per-step enablement mask.
    is_enabled: Vec<bool>,
}

impl OldestFirstDaemon {
    /// Creates the daemon.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl<S> Daemon<S> for OldestFirstDaemon {
    fn name(&self) -> String {
        "central-oldest".into()
    }
    fn class(&self) -> DaemonClass {
        DaemonClass::central_weakly_fair()
    }
    fn select(&mut self, ctx: &SelectionContext<'_, S>, selection: &mut Vec<VertexId>) {
        if self.enabled_since.len() != ctx.graph.n() {
            self.enabled_since = vec![0; ctx.graph.n()];
        }
        // Vertices no longer enabled restart their seniority the next time
        // they become enabled: record "not enabled now" as becoming enabled
        // at the *next* step.
        self.is_enabled.clear();
        self.is_enabled.resize(ctx.graph.n(), false);
        for &v in ctx.enabled {
            self.is_enabled[v.index()] = true;
        }
        for (v, &enabled_now) in self.is_enabled.iter().enumerate() {
            if !enabled_now {
                self.enabled_since[v] = ctx.step + 1;
            }
        }
        let pick = ctx
            .enabled
            .iter()
            .copied()
            .min_by_key(|v| (self.enabled_since[v.index()], *v))
            .expect("enabled nonempty");
        // The chosen vertex's seniority resets (it moves now).
        self.enabled_since[pick.index()] = ctx.step + 1;
        selection.push(pick);
    }
    fn reset(&mut self) {
        self.enabled_since.clear();
    }
}

/// A heap-allocated daemon that can cross thread boundaries — the form the
/// parallel campaign executor hands to its workers.
pub type BoxedDaemon<S> = Box<dyn Daemon<S> + Send>;

/// Parses a textual daemon spec into a daemon, deterministically derived
/// from `seed` where the daemon is randomized:
///
/// * `sync` — the synchronous daemon `sd`;
/// * `central-rr` / `central-rand` / `central-min` / `central-max` /
///   `central-oldest` — central daemons;
/// * `dist:<p>` — random distributed with inclusion probability `p`;
/// * `kbounded:<k>[:<p>]` — the k-bounded daemon (default `p = 0.4`).
///
/// # Errors
///
/// Returns a description of the malformed spec.
pub fn parse_daemon_spec<S: 'static>(spec: &str, seed: u64) -> Result<BoxedDaemon<S>, String> {
    if let Some(p) = spec.strip_prefix("dist:") {
        let p = p.parse::<f64>().map_err(|e| format!("bad probability '{p}': {e}"))?;
        if !(0.0..=1.0).contains(&p) {
            return Err(format!("inclusion probability {p} outside [0,1]"));
        }
        return Ok(Box::new(RandomDistributedDaemon::new(p, seed)));
    }
    if let Some(rest) = spec.strip_prefix("kbounded:") {
        let (k_str, p_str) = rest.split_once(':').unwrap_or((rest, "0.4"));
        let k = k_str.parse::<usize>().map_err(|e| format!("bad bound '{k_str}': {e}"))?;
        let p = p_str.parse::<f64>().map_err(|e| format!("bad probability '{p_str}': {e}"))?;
        if !(0.0..=1.0).contains(&p) {
            return Err(format!("inclusion probability {p} outside [0,1]"));
        }
        return Ok(Box::new(KBoundedDaemon::new(k, p, seed)));
    }
    match spec {
        "sync" => Ok(Box::new(SynchronousDaemon::new())),
        "central-rr" => Ok(Box::new(CentralDaemon::new(CentralStrategy::RoundRobin))),
        "central-rand" => Ok(Box::new(CentralDaemon::new(CentralStrategy::Random(seed)))),
        "central-min" => Ok(Box::new(CentralDaemon::new(CentralStrategy::MinId))),
        "central-max" => Ok(Box::new(CentralDaemon::new(CentralStrategy::MaxId))),
        "central-oldest" => Ok(Box::new(OldestFirstDaemon::new())),
        other => Err(format!(
            "unknown daemon '{other}' (expected sync | central-rr | central-rand | central-min \
             | central-max | central-oldest | dist:<p> | kbounded:<k>[:<p>])"
        )),
    }
}

/// Scoring function for [`GreedyAdversary`]: **lower scores are better for
/// the protocol**, so the adversary picks the action whose successor
/// configuration has the *highest* score (least progress). `Send` so
/// adversaries can run inside campaign worker threads.
pub type AdversaryMetric<S> = Box<dyn Fn(&Configuration<S>, &Graph) -> f64 + Send>;

/// Which candidate activation sets a [`GreedyAdversary`] considers.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum AdversaryMoves {
    /// Only singletons: a central adversary.
    Singletons,
    /// Singletons plus the full enabled set: a distributed adversary that
    /// can also emulate the synchronous step.
    SingletonsAndAll,
}

/// Greedy adversarial daemon: one-step lookahead, picking the activation
/// set whose successor maximizes a "remaining disorder" metric.
///
/// This is the workhorse for eliciting near-worst-case stabilization times
/// on instances too large for [`crate::search`]'s exact analysis.
pub struct GreedyAdversary<S> {
    metric: AdversaryMetric<S>,
    moves: AdversaryMoves,
    tie_rng: StdRng,
    seed: u64,
    /// Per-daemon preview scratch: candidate successors are written here
    /// (reusing the allocation) instead of cloning per candidate.
    scratch: Configuration<S>,
    /// Reused buffer holding the best candidate set found so far.
    best: Vec<VertexId>,
}

impl<S> GreedyAdversary<S> {
    /// Creates the adversary with the given disorder metric.
    #[must_use]
    pub fn new(metric: AdversaryMetric<S>, moves: AdversaryMoves, seed: u64) -> Self {
        Self {
            metric,
            moves,
            tie_rng: StdRng::seed_from_u64(seed),
            seed,
            scratch: Configuration::new(Vec::new()),
            best: Vec::new(),
        }
    }
}

/// Convenience adversary maximizing the *number of enabled vertices* after
/// the step — a protocol-agnostic disorder proxy.
#[must_use]
pub fn max_enabled_adversary<P>(
    protocol: std::sync::Arc<P>,
    moves: AdversaryMoves,
    seed: u64,
) -> GreedyAdversary<P::State>
where
    P: crate::protocol::Protocol + Send + Sync + 'static,
{
    let metric: AdversaryMetric<P::State> = Box::new(move |cfg, graph| {
        let mut count = 0usize;
        for v in graph.vertices() {
            let view = crate::protocol::View::new(v, graph, cfg);
            if protocol.enabled_rule(&view).is_some() {
                count += 1;
            }
        }
        count as f64
    });
    GreedyAdversary::new(metric, moves, seed)
}

impl<S> fmt::Debug for GreedyAdversary<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("GreedyAdversary")
            .field("moves", &self.moves)
            .field("seed", &self.seed)
            .finish_non_exhaustive()
    }
}

impl<S: Clone> Daemon<S> for GreedyAdversary<S> {
    fn name(&self) -> String {
        match self.moves {
            AdversaryMoves::Singletons => "adversary-central".into(),
            AdversaryMoves::SingletonsAndAll => "adversary-dist".into(),
        }
    }

    fn class(&self) -> DaemonClass {
        match self.moves {
            AdversaryMoves::Singletons => DaemonClass::central_unfair(),
            AdversaryMoves::SingletonsAndAll => DaemonClass::unfair_distributed(),
        }
    }

    fn select(&mut self, ctx: &SelectionContext<'_, S>, selection: &mut Vec<VertexId>) {
        let Self { metric, tie_rng, scratch, best, .. } = self;
        let mut best_score: Option<f64> = None;
        let mut consider = |set: &[VertexId]| {
            let next = ctx.preview(set, scratch);
            let score = (metric)(next, ctx.graph);
            match best_score {
                None => {
                    best_score = Some(score);
                    best.clear();
                    best.extend_from_slice(set);
                }
                Some(b) => {
                    // Strictly better, or coin-flip on ties to diversify runs.
                    if score > b || (score == b && tie_rng.gen_bool(0.5)) {
                        best_score = Some(score);
                        best.clear();
                        best.extend_from_slice(set);
                    }
                }
            }
        };
        for &v in ctx.enabled {
            consider(std::slice::from_ref(&v));
        }
        if self.moves == AdversaryMoves::SingletonsAndAll && ctx.enabled.len() > 1 {
            consider(ctx.enabled);
        }
        assert!(best_score.is_some(), "enabled nonempty");
        selection.extend_from_slice(&self.best);
    }

    fn reset(&mut self) {
        self.tie_rng = StdRng::seed_from_u64(self.seed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Configuration;
    use specstab_topology::generators;

    fn ctx_fixture<'a>(
        enabled: &'a [VertexId],
        config: &'a Configuration<u8>,
        graph: &'a Graph,
        apply_into: &'a dyn Fn(&[VertexId], &mut Configuration<u8>),
    ) -> SelectionContext<'a, u8> {
        SelectionContext::new(enabled, config, graph, 0, apply_into)
    }

    /// Runs `select` through a fresh buffer, mirroring the engine's calls.
    fn select_into<S, D: Daemon<S>>(d: &mut D, ctx: &SelectionContext<'_, S>) -> Vec<VertexId> {
        let mut sel = Vec::new();
        d.select(ctx, &mut sel);
        sel
    }

    #[test]
    fn partial_order_matches_paper() {
        let ud = DaemonClass::unfair_distributed();
        let sd = DaemonClass::synchronous();
        let cd = DaemonClass::central_unfair();
        assert!(sd < ud, "sd ≺ ud");
        assert!(cd < ud, "cd ≺ ud");
        assert_eq!(sd.partial_cmp(&cd), None, "sd and cd are incomparable");
        assert!(ud > sd);
        assert_eq!(ud.partial_cmp(&ud), Some(Ordering::Equal));
    }

    #[test]
    fn weakly_fair_below_unfair() {
        let rr = DaemonClass::central_weakly_fair();
        let cd = DaemonClass::central_unfair();
        assert!(rr < cd);
    }

    #[test]
    fn class_display() {
        assert_eq!(
            DaemonClass::unfair_distributed().to_string(),
            "distributed/asynchronous/unfair"
        );
    }

    #[test]
    fn synchronous_selects_all_enabled() {
        let g = generators::ring(4).unwrap();
        let c = Configuration::new(vec![0u8; 4]);
        let enabled = vec![VertexId::new(0), VertexId::new(2)];
        let preview = |_: &[VertexId], out: &mut Configuration<u8>| out.clone_from(&c);
        let mut d = SynchronousDaemon::new();
        let sel = select_into(&mut d, &ctx_fixture(&enabled, &c, &g, &preview));
        assert_eq!(sel, enabled);
    }

    #[test]
    fn central_min_max_pick_extremes() {
        let g = generators::ring(5).unwrap();
        let c = Configuration::new(vec![0u8; 5]);
        let enabled = vec![VertexId::new(1), VertexId::new(3), VertexId::new(4)];
        let preview = |_: &[VertexId], out: &mut Configuration<u8>| out.clone_from(&c);
        let mut dmin = CentralDaemon::new(CentralStrategy::MinId);
        let mut dmax = CentralDaemon::new(CentralStrategy::MaxId);
        assert_eq!(
            select_into(&mut dmin, &ctx_fixture(&enabled, &c, &g, &preview)),
            vec![VertexId::new(1)]
        );
        assert_eq!(
            select_into(&mut dmax, &ctx_fixture(&enabled, &c, &g, &preview)),
            vec![VertexId::new(4)]
        );
    }

    #[test]
    fn round_robin_cycles_through_enabled() {
        let g = generators::ring(4).unwrap();
        let c = Configuration::new(vec![0u8; 4]);
        let enabled: Vec<VertexId> = (0..4).map(VertexId::new).collect();
        let preview = |_: &[VertexId], out: &mut Configuration<u8>| out.clone_from(&c);
        let mut d = CentralDaemon::new(CentralStrategy::RoundRobin);
        let mut picks = Vec::new();
        for _ in 0..4 {
            let sel = select_into(&mut d, &ctx_fixture(&enabled, &c, &g, &preview));
            picks.push(sel[0].index());
        }
        assert_eq!(picks, vec![0, 1, 2, 3]);
    }

    #[test]
    fn round_robin_fast_path_matches_scan() {
        // The partition_point lookup must reproduce the historical O(n)
        // slot-scan pick sequence exactly (the golden campaign artifacts
        // pin it). Reference: scan indices cursor, cursor+1, ... mod n and
        // pick the first enabled one.
        let n = 64;
        let g = generators::ring(n).unwrap();
        let c = Configuration::new(vec![0u8; n]);
        let preview = |_: &[VertexId], out: &mut Configuration<u8>| out.clone_from(&c);
        let mut rng = StdRng::seed_from_u64(0x5CA7);
        let mut daemon = CentralDaemon::new(CentralStrategy::RoundRobin);
        let mut scan_cursor = 0usize;
        for step in 0..2000 {
            // Random nonempty enabled set, sorted as the engine guarantees.
            let mut enabled: Vec<VertexId> =
                (0..n).filter(|_| rng.gen_bool(0.3)).map(VertexId::new).collect();
            if enabled.is_empty() {
                enabled.push(VertexId::new(rng.gen_range(0..n)));
            }
            let expected = (0..n)
                .map(|off| VertexId::new((scan_cursor + off) % n))
                .find(|v| enabled.binary_search(v).is_ok())
                .expect("enabled nonempty");
            scan_cursor = (expected.index() + 1) % n;
            let ctx = SelectionContext::new(&enabled, &c, &g, step, &preview);
            let sel = select_into(&mut daemon, &ctx);
            assert_eq!(sel, vec![expected], "pick diverged at step {step}");
        }
    }

    #[test]
    fn daemon_class_parses_its_display_form() {
        for class in [
            DaemonClass::unfair_distributed(),
            DaemonClass::synchronous(),
            DaemonClass::central_unfair(),
            DaemonClass::central_weakly_fair(),
        ] {
            assert_eq!(class.to_string().parse::<DaemonClass>(), Ok(class));
        }
        assert!("central/unfair".parse::<DaemonClass>().is_err());
        assert!("central/asynchronous/unfair/extra".parse::<DaemonClass>().is_err());
        assert!("weird/asynchronous/unfair".parse::<DaemonClass>().is_err());
    }

    #[test]
    fn random_central_is_deterministic_per_seed() {
        let g = generators::ring(8).unwrap();
        let c = Configuration::new(vec![0u8; 8]);
        let enabled: Vec<VertexId> = (0..8).map(VertexId::new).collect();
        let preview = |_: &[VertexId], out: &mut Configuration<u8>| out.clone_from(&c);
        let run = |seed| {
            let mut d = CentralDaemon::new(CentralStrategy::Random(seed));
            (0..10)
                .map(|_| select_into(&mut d, &ctx_fixture(&enabled, &c, &g, &preview))[0].index())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    fn random_distributed_returns_nonempty_subset() {
        let g = generators::ring(6).unwrap();
        let c = Configuration::new(vec![0u8; 6]);
        let enabled: Vec<VertexId> = (0..6).map(VertexId::new).collect();
        let preview = |_: &[VertexId], out: &mut Configuration<u8>| out.clone_from(&c);
        let mut d = RandomDistributedDaemon::new(0.3, 11);
        for _ in 0..50 {
            let sel = select_into(&mut d, &ctx_fixture(&enabled, &c, &g, &preview));
            assert!(!sel.is_empty());
            assert!(sel.iter().all(|v| enabled.contains(v)));
        }
    }

    #[test]
    #[should_panic(expected = "inclusion probability")]
    fn random_distributed_rejects_bad_p() {
        let _ = RandomDistributedDaemon::new(1.5, 0);
    }

    #[test]
    fn greedy_adversary_picks_highest_scoring_action() {
        let g = generators::path(3).unwrap();
        let c = Configuration::new(vec![0u8, 0, 0]);
        let enabled = vec![VertexId::new(0), VertexId::new(2)];
        // Preview: activating vertex 2 flips its state to 9.
        let preview = |set: &[VertexId], out: &mut Configuration<u8>| {
            out.clone_from(&Configuration::new(vec![0u8, 0, 0]));
            for &v in set {
                out.set(v, if v.index() == 2 { 9 } else { 1 });
            }
        };
        // Metric: total state sum — adversary should pick vertex 2.
        let metric: AdversaryMetric<u8> =
            Box::new(|cfg, _| cfg.states().iter().map(|&s| s as f64).sum());
        let mut d = GreedyAdversary::new(metric, AdversaryMoves::Singletons, 0);
        let sel = select_into(&mut d, &ctx_fixture(&enabled, &c, &g, &preview));
        assert_eq!(sel, vec![VertexId::new(2)]);
    }

    #[test]
    fn k_bounded_daemon_never_starves_beyond_k() {
        let g = generators::ring(6).unwrap();
        let c = Configuration::new(vec![0u8; 6]);
        let enabled: Vec<VertexId> = (0..6).map(VertexId::new).collect();
        let preview = |_: &[VertexId], out: &mut Configuration<u8>| out.clone_from(&c);
        let k = 3;
        let mut d = KBoundedDaemon::new(k, 0.2, 5);
        let mut since_selected = [0usize; 6];
        for step in 0..200 {
            let ctx = SelectionContext::new(&enabled, &c, &g, step, &preview);
            let sel = select_into(&mut d, &ctx);
            assert!(!sel.is_empty());
            for (v, waited) in since_selected.iter_mut().enumerate() {
                if sel.contains(&VertexId::new(v)) {
                    *waited = 0;
                } else {
                    *waited += 1;
                    assert!(*waited <= k + 1, "vertex {v} passed over {waited} times");
                }
            }
        }
    }

    #[test]
    fn k_bounded_class_is_weakly_fair_distributed() {
        let d = KBoundedDaemon::new(2, 0.5, 0);
        let class = Daemon::<u8>::class(&d);
        assert!(class < DaemonClass::unfair_distributed());
    }

    #[test]
    fn oldest_first_serves_waiting_vertices() {
        let g = generators::ring(4).unwrap();
        let c = Configuration::new(vec![0u8; 4]);
        let enabled: Vec<VertexId> = (0..4).map(VertexId::new).collect();
        let preview = |_: &[VertexId], out: &mut Configuration<u8>| out.clone_from(&c);
        let mut d = OldestFirstDaemon::new();
        // All become enabled at step 0; ties break by index, and each
        // selected vertex goes to the back of the seniority order.
        let mut picks = Vec::new();
        for step in 0..8 {
            let ctx = SelectionContext::new(&enabled, &c, &g, step, &preview);
            picks.push(select_into(&mut d, &ctx)[0].index());
        }
        assert_eq!(picks, vec![0, 1, 2, 3, 0, 1, 2, 3], "round-robin-like fairness");
    }

    #[test]
    fn oldest_first_class_is_weakly_fair_central() {
        let d = OldestFirstDaemon::new();
        assert_eq!(Daemon::<u8>::class(&d), DaemonClass::central_weakly_fair());
        assert_eq!(Daemon::<u8>::name(&d), "central-oldest");
    }

    #[test]
    fn daemon_reset_restores_determinism() {
        let g = generators::ring(8).unwrap();
        let c = Configuration::new(vec![0u8; 8]);
        let enabled: Vec<VertexId> = (0..8).map(VertexId::new).collect();
        let preview = |_: &[VertexId], out: &mut Configuration<u8>| out.clone_from(&c);
        let mut d = CentralDaemon::new(CentralStrategy::Random(3));
        let first: Vec<usize> = (0..5)
            .map(|_| select_into(&mut d, &ctx_fixture(&enabled, &c, &g, &preview))[0].index())
            .collect();
        Daemon::<u8>::reset(&mut d);
        let second: Vec<usize> = (0..5)
            .map(|_| select_into(&mut d, &ctx_fixture(&enabled, &c, &g, &preview))[0].index())
            .collect();
        assert_eq!(first, second);
    }
}
