//! Stabilization-time measurement (Definition 3, empirically).
//!
//! For a single execution the *measured* stabilization time w.r.t. a safety
//! predicate is `last violation index + 1`. Provided the run extends past
//! entry into a closed legitimate region, that number certifies suffix
//! satisfaction (closure of the legitimate set is validated separately by
//! tests and by [`crate::spec::closure_violation`]).
//!
//! The daemon-level stabilization time `conv_time(π, d)` is the supremum
//! over all executions allowed by `d`; [`max_over_runs`] estimates it by
//! sampling (a lower bound on the worst case), while [`crate::search`]
//! computes it exactly on small instances.

use crate::config::Configuration;
use crate::daemon::Daemon;
use crate::engine::{RunLimits, Simulator, StepScratch, StopReason};
use crate::observer::{
    ConfigPredicate, LegitimacyMonitor, MoveCounter, Observer, SafetyMonitor, StopAfterStable,
};
use crate::protocol::Protocol;
use specstab_topology::Graph;

/// Outcome of a measured run.
#[derive(Clone, Debug)]
pub struct StabilizationReport {
    /// Steps (actions) actually executed.
    pub steps_run: usize,
    /// Moves (vertex activations) executed.
    pub moves: u64,
    /// Why the run stopped.
    pub stop: StopReason,
    /// Index of the last configuration violating safety, if any.
    pub last_violation: Option<usize>,
    /// Number of unsafe configurations observed.
    pub violation_count: usize,
    /// Measured stabilization time w.r.t. safety: `last_violation + 1`.
    pub stabilization_steps: usize,
    /// First index at which the legitimacy predicate held.
    pub first_legitimate: Option<usize>,
    /// Index from which legitimacy held for the remainder of the run.
    pub legitimacy_entry: usize,
    /// Whether the run ended inside the legitimate region.
    pub ended_legitimate: bool,
    /// The run's deterministic engine counters (see
    /// [`crate::engine::RunSummary::counters`]), passed through so batch
    /// drivers can aggregate telemetry without touching the global.
    pub counters: specstab_telemetry::RunCounters,
}

/// Parameters for [`measure_stabilization`].
pub struct MeasureSettings {
    /// Hard cap on executed steps.
    pub max_steps: usize,
}

impl MeasureSettings {
    /// Settings with a step cap.
    #[must_use]
    pub fn new(max_steps: usize) -> Self {
        Self { max_steps }
    }
}

/// The reusable per-run measurement context: safety + legitimacy monitors,
/// move accounting and optional early stopping, bundled so every caller
/// (the `measure_*` helpers here, the campaign executor's workers, ad-hoc
/// tools) assembles identical [`StabilizationReport`]s.
///
/// All four monitors observe borrowed configurations and the step delta —
/// none of them clones, so a measured run keeps the engine's
/// zero-allocation steady state (see [`crate::engine`]).
///
/// A context is one-shot: build, [`MeasurementContext::run`], read the
/// report. It is `Send`, so whole measured runs can be dispatched to worker
/// threads.
pub struct MeasurementContext<S> {
    safety_mon: SafetyMonitor<S>,
    legit_mon: LegitimacyMonitor<S>,
    moves: MoveCounter,
    stopper: Option<StopAfterStable<S>>,
}

impl<S> MeasurementContext<S> {
    /// A context measuring the given safety and legitimacy predicates.
    #[must_use]
    pub fn new(safety: ConfigPredicate<S>, legitimacy: ConfigPredicate<S>) -> Self {
        Self {
            safety_mon: SafetyMonitor::new(safety),
            legit_mon: LegitimacyMonitor::new(legitimacy),
            moves: MoveCounter::new(),
            stopper: None,
        }
    }

    /// Additionally stops the run once `stop_pred` (expected closed) has
    /// held for `margin + 1` consecutive configurations.
    #[must_use]
    pub fn with_early_stop(mut self, stop_pred: ConfigPredicate<S>, margin: usize) -> Self {
        self.stopper = Some(StopAfterStable::new(stop_pred, margin));
        self
    }

    /// Executes one measured run on `sim` and assembles the report.
    pub fn run<P: Protocol<State = S>>(
        self,
        sim: &Simulator<'_, P>,
        daemon: &mut dyn Daemon<S>,
        init: Configuration<S>,
        max_steps: usize,
    ) -> StabilizationReport {
        let mut scratch = StepScratch::new();
        self.run_with_scratch(sim, daemon, init, max_steps, &mut scratch)
    }

    /// [`MeasurementContext::run`] with caller-supplied engine scratch
    /// buffers, so batch drivers (e.g. the campaign executor's workers)
    /// amortize the per-run buffer setup across many measured runs.
    pub fn run_with_scratch<P: Protocol<State = S>>(
        mut self,
        sim: &Simulator<'_, P>,
        daemon: &mut dyn Daemon<S>,
        init: Configuration<S>,
        max_steps: usize,
        scratch: &mut StepScratch<S>,
    ) -> StabilizationReport {
        let summary = {
            let mut observers: Vec<&mut dyn Observer<S>> =
                vec![&mut self.safety_mon, &mut self.legit_mon, &mut self.moves];
            if let Some(stopper) = self.stopper.as_mut() {
                observers.push(stopper);
            }
            sim.run_with_scratch(
                init,
                daemon,
                RunLimits::with_max_steps(max_steps),
                &mut observers,
                scratch,
            )
        };
        StabilizationReport {
            steps_run: summary.steps,
            moves: summary.moves,
            stop: summary.stop,
            last_violation: self.safety_mon.last_violation(),
            violation_count: self.safety_mon.violations(),
            stabilization_steps: self.safety_mon.measured_stabilization(),
            first_legitimate: self.legit_mon.first_legitimate(),
            legitimacy_entry: self.legit_mon.entry_index(),
            ended_legitimate: self.legit_mon.currently_legitimate(),
            counters: summary.counters,
        }
    }
}

/// Runs `protocol` from `init` under `daemon`, measuring safety violations
/// and legitimacy entry. The run uses the full step budget (or stops at a
/// terminal configuration); use [`measure_with_early_stop`] to cut runs
/// short once a closed legitimate region is reached.
pub fn measure_stabilization<P: Protocol>(
    graph: &Graph,
    protocol: &P,
    daemon: &mut dyn Daemon<P::State>,
    init: Configuration<P::State>,
    safety: ConfigPredicate<P::State>,
    legitimacy: ConfigPredicate<P::State>,
    settings: &MeasureSettings,
) -> StabilizationReport {
    let sim = Simulator::new(graph, protocol);
    MeasurementContext::new(safety, legitimacy).run(&sim, daemon, init, settings.max_steps)
}

/// Runs [`measure_stabilization`] repeatedly (fresh daemon state per run via
/// `Daemon::reset`, distinct initial configurations supplied by `inits`) and
/// returns the per-run reports.
pub fn measure_many<P: Protocol>(
    graph: &Graph,
    protocol: &P,
    daemon: &mut dyn Daemon<P::State>,
    inits: impl IntoIterator<Item = Configuration<P::State>>,
    safety: impl Fn() -> ConfigPredicate<P::State>,
    legitimacy: impl Fn() -> ConfigPredicate<P::State>,
    settings: &MeasureSettings,
) -> Vec<StabilizationReport> {
    inits
        .into_iter()
        .map(|init| {
            measure_stabilization(graph, protocol, daemon, init, safety(), legitimacy(), settings)
        })
        .collect()
}

/// Maximum measured stabilization time across reports — the sampling
/// estimate (lower bound) of `conv_time(π, d)`.
#[must_use]
pub fn max_over_runs(reports: &[StabilizationReport]) -> usize {
    reports.iter().map(|r| r.stabilization_steps).max().unwrap_or(0)
}

/// Convenience: run once with early stopping once a *closed* legitimacy
/// predicate has held for `margin + 1` consecutive configurations.
///
/// Because legitimacy is closed, stopping early cannot hide later safety
/// violations: the execution suffix stays legitimate (hence safe) forever.
#[allow(clippy::too_many_arguments)]
pub fn measure_with_early_stop<P: Protocol>(
    graph: &Graph,
    protocol: &P,
    daemon: &mut dyn Daemon<P::State>,
    init: Configuration<P::State>,
    safety: ConfigPredicate<P::State>,
    legitimacy: ConfigPredicate<P::State>,
    stop_pred: ConfigPredicate<P::State>,
    max_steps: usize,
    margin: usize,
) -> StabilizationReport {
    let sim = Simulator::new(graph, protocol);
    MeasurementContext::new(safety, legitimacy)
        .with_early_stop(stop_pred, margin)
        .run(&sim, daemon, init, max_steps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::daemon::SynchronousDaemon;
    use crate::protocol::{RuleId, RuleInfo, View};
    use rand::rngs::StdRng;
    use rand::Rng;
    use specstab_topology::{generators, VertexId};

    struct MaxProto;
    impl Protocol for MaxProto {
        type State = u32;
        fn name(&self) -> String {
            "max".into()
        }
        fn rules(&self) -> Vec<RuleInfo> {
            vec![RuleInfo::new("ADOPT")]
        }
        fn enabled_rule(&self, view: &View<'_, u32>) -> Option<RuleId> {
            let best = view.neighbor_states().map(|(_, &s)| s).max().unwrap_or(0);
            (best > *view.state()).then_some(RuleId::new(0))
        }
        fn apply(&self, view: &View<'_, u32>, _rule: RuleId) -> u32 {
            view.neighbor_states().map(|(_, &s)| s).max().unwrap()
        }
        fn random_state(&self, _v: VertexId, rng: &mut StdRng) -> u32 {
            rng.gen_range(0..16)
        }
    }

    fn uniform_pred() -> ConfigPredicate<u32> {
        Box::new(|c, _| c.states().windows(2).all(|w| w[0] == w[1]))
    }

    #[test]
    fn measure_reports_stabilization_on_path() {
        let g = generators::path(6).unwrap();
        let init = Configuration::from_fn(6, |v| if v.index() == 0 { 9 } else { 0 });
        let mut d = SynchronousDaemon::new();
        let report = measure_stabilization(
            &g,
            &MaxProto,
            &mut d,
            init,
            uniform_pred(),
            uniform_pred(),
            &MeasureSettings::new(100),
        );
        assert_eq!(report.stabilization_steps, 5);
        assert_eq!(report.legitimacy_entry, 5);
        assert!(report.ended_legitimate);
        assert_eq!(report.stop, StopReason::Terminal);
    }

    #[test]
    fn early_stop_does_not_change_measured_value() {
        let g = generators::path(8).unwrap();
        let init = Configuration::from_fn(8, |v| if v.index() == 0 { 9 } else { 0 });
        let mut d = SynchronousDaemon::new();
        let report = measure_with_early_stop(
            &g,
            &MaxProto,
            &mut d,
            init,
            uniform_pred(),
            uniform_pred(),
            uniform_pred(),
            1000,
            2,
        );
        assert_eq!(report.stabilization_steps, 7);
        assert!(report.ended_legitimate);
    }

    #[test]
    fn measure_many_and_max() {
        let g = generators::path(5).unwrap();
        let inits = vec![
            Configuration::from_fn(5, |v| if v.index() == 0 { 9 } else { 0 }),
            Configuration::from_fn(5, |v| if v.index() == 2 { 9 } else { 0 }),
            Configuration::from_fn(5, |_| 9),
        ];
        let mut d = SynchronousDaemon::new();
        let reports = measure_many(
            &g,
            &MaxProto,
            &mut d,
            inits,
            uniform_pred,
            uniform_pred,
            &MeasureSettings::new(100),
        );
        assert_eq!(reports.len(), 3);
        // Worst case: the max value at an end of the path (4 steps to cover
        // distance 4 = eccentricity of v0).
        assert_eq!(max_over_runs(&reports), 4);
        // The already-uniform run never violates safety.
        assert_eq!(reports[2].stabilization_steps, 0);
    }
}
