//! Replica-parallel batched stepping: K seed-replicas of one campaign
//! cell packed into structure-of-arrays state and stepped together under
//! the synchronous daemon.
//!
//! A campaign cell replays the identical (topology, protocol, daemon)
//! across hundreds of seeds — perfectly homogeneous work that the scalar
//! engine steps one configuration at a time. The batch engine packs K
//! replicas **replica-major**: `soa[v * lanes + lane]` holds vertex `v`
//! of replica `lane`, so one cache line carries the same vertex across
//! tens of replicas and the per-vertex guard arithmetic auto-vectorizes
//! over the lane axis. The CSR topology is walked **once per step for
//! all replicas** by [`PackedProtocol::step_lanes`].
//!
//! # Which daemons batch
//!
//! Two daemon classes have schedules that are deterministic given the
//! enabled set, which is exactly what lane-packing needs
//! ([`BatchDaemon`]):
//!
//! - **Synchronous** ([`BatchDaemon::Sync`]): the activated set *is* the
//!   enabled set — no RNG, no selection state — so every lane's move
//!   sequence is bit-identical to its scalar run by construction.
//! - **Central round-robin** ([`BatchDaemon::CentralRr`]): the scalar
//!   daemon picks the first enabled vertex at or after a cursor (wrapping
//!   to the lowest enabled vertex) and advances the cursor past the pick.
//!   Lanes diverge — each holds its own cursor and picks its own vertex —
//!   but the *guard evaluation* stays lane-uniform: one shared topology
//!   walk computes every lane's enabled set, then a cheap per-lane scan
//!   resolves each lane's pick and commits exactly one vertex per lane
//!   per pass (GPU-warp-style divergence, masked not branched).
//!
//! Daemons whose choices need randomness (central random, distributed,
//! k-bounded) would need per-lane RNG streams; those combinations take
//! the scalar fallback (counted by `batch_scalar_fallbacks` in the
//! telemetry snapshot).
//!
//! # Lane masking
//!
//! Replicas converge at different steps. A stopped lane keeps riding the
//! batch GPU-warp style — its guards are still evaluated, but its commits
//! are masked off so its state (and hence its extracted final
//! configuration) freezes at the stop step. The masked work is surfaced
//! as `batch_idle_lane_steps` (occupancy = `1 - idle / (lanes * iterations)`).
//!
//! # Equivalence contract
//!
//! [`run_batch_with`] reproduces, per lane, exactly what
//! [`Simulator::run`](crate::engine::Simulator::run) produces under the
//! matching scalar daemon: the same step/move counts, the same
//! [`StopReason`] (checked in the scalar engine's order — terminal, step
//! limit, observer request), the same final configuration.
//! [`run_batch_measured`] additionally replicates the
//! [`MeasurementContext`](crate::measure::MeasurementContext) monitor
//! stack (safety monitor, legitimacy monitor, optional
//! `StopAfterStable`) per lane, index for index. The differential
//! proptest suites assert both claims against the scalar engine.

use crate::config::Configuration;
use crate::engine::StopReason;
use crate::measure::StabilizationReport;
use crate::observer::ConfigPredicate;
use crate::protocol::Protocol;
use specstab_telemetry::RunCounters;
use specstab_topology::{Graph, VertexId};

/// A fixed-width integer lane word: the primitive the SoA engine can
/// merge branch-free. The blanket-free list of impls (u8/u16/u32/u64 and
/// their signed twins) covers every packed state representation; the
/// `blend` is a bitwise select (`self ^ ((self ^ other) & mask)`), pure
/// integer arithmetic the autovectorizer turns into SIMD blends — unlike
/// a per-element `if`, whose mispredictions dominate the commit pass on
/// real (step-varying) fired masks.
pub trait LaneWord: Copy + Send + 'static {
    /// Branch-free `if take { other } else { self }`.
    fn blend(self, other: Self, take: bool) -> Self;
}

macro_rules! lane_word {
    ($($t:ty),*) => {$(
        impl LaneWord for $t {
            #[inline(always)]
            fn blend(self, other: Self, take: bool) -> Self {
                let mask = (take as $t).wrapping_neg();
                self ^ ((self ^ other) & mask)
            }
        }
    )*};
}
lane_word!(u8, u16, u32, u64, i8, i16, i32, i64);

/// A protocol whose per-vertex state packs into a fixed-width lane and
/// whose guards evaluate lane-parallel over replica-major SoA state.
///
/// # Contract
///
/// For every vertex `v` and lane `l`, [`PackedProtocol::step_lanes`] must
/// set `fired[v * lanes + l]` to whether `v` is enabled in lane `l`'s
/// configuration and, when enabled, write the successor state to
/// `next[v * lanes + l]` — exactly the states the scalar
/// `enabled_rule`/`apply` pair would produce. The whole-graph form
/// serves both batched daemons: under [`BatchDaemon::Sync`] "enabled"
/// and "activated" coincide, and under [`BatchDaemon::CentralRr`] the
/// runner commits only each lane's round-robin pick from the enabled
/// set, leaving the other `next` entries unused.
pub trait PackedProtocol: Protocol {
    /// Packed per-vertex state: a fixed-width copyable lane word.
    type Lane: LaneWord;
    /// Reusable per-batch scratch for `step_lanes` (lane accumulators
    /// etc.); `Default` must produce an empty instance that `step_lanes`
    /// (re)sizes on first use.
    type LaneScratch: Default;

    /// Packs one scalar state into its lane representation.
    fn pack(&self, state: &Self::State) -> Self::Lane;

    /// Unpacks a lane word back into the scalar state.
    ///
    /// Only ever called on lane words the packed step produced (or
    /// [`PackedProtocol::pack`] created), so implementations may assume
    /// in-domain values.
    fn unpack(&self, lane: Self::Lane) -> Self::State;

    /// One synchronous step for all lanes: evaluate every vertex's guard
    /// in every lane over `soa` (replica-major, `soa[v * lanes + lane]`),
    /// writing enablement into `fired` and successor states into `next`.
    /// Entries of `next` whose `fired` bit is clear are ignored by the
    /// caller. Implementations walk the CSR topology once, amortized
    /// over all lanes.
    fn step_lanes(
        &self,
        graph: &Graph,
        lanes: usize,
        soa: &[Self::Lane],
        next: &mut [Self::Lane],
        fired: &mut [bool],
        scratch: &mut Self::LaneScratch,
    );
}

/// Daemon schedule a batched run replays: which scalar daemon every lane
/// must be bit-identical to.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum BatchDaemon {
    /// The synchronous daemon: every enabled vertex fires each step.
    Sync,
    /// The central round-robin daemon: each lane holds its own cursor and
    /// commits the first enabled vertex at or after it (wrapping to the
    /// lowest enabled vertex), then advances the cursor past the pick —
    /// the exact schedule of the scalar `central-rr` daemon after
    /// `reset()`.
    CentralRr,
}

/// Per-lane round-robin selection state for [`BatchDaemon::CentralRr`]:
/// cursors persist across passes, the scan scratch is reused.
struct RrState {
    cursor: Vec<u32>,
    pick: Vec<u32>,
    first_any: Vec<u32>,
    first_ge: Vec<u32>,
}

impl RrState {
    fn new(lanes: usize) -> Self {
        Self {
            // The scalar daemon's `reset()` zeroes the cursor at run start.
            cursor: vec![0; lanes],
            pick: vec![u32::MAX; lanes],
            first_any: vec![u32::MAX; lanes],
            first_ge: vec![u32::MAX; lanes],
        }
    }

    /// One row-major scan over the fired matrix resolving, per lane, the
    /// enabled count and the round-robin pick: the first enabled vertex
    /// at or after the lane's cursor, else the first enabled vertex
    /// overall — the branch-free mirror of the scalar daemon's
    /// `partition_point` fast path over its sorted enabled slice. The
    /// per-lane scan state is u32 (graphs are far below 2^32 vertices),
    /// halving the scan's memory traffic and letting the `min` folds
    /// vectorize.
    fn select(&mut self, _n: usize, lanes: usize, fired: &[bool], fired_count: &mut [u32]) {
        fired_count.fill(0);
        self.first_any.fill(u32::MAX);
        self.first_ge.fill(u32::MAX);
        let cursor = &self.cursor[..lanes];
        for (v, row) in fired.chunks_exact(lanes).enumerate() {
            let v32 = v as u32;
            for ((((&f, cnt), any), ge), &cur) in row
                .iter()
                .zip(fired_count.iter_mut())
                .zip(self.first_any.iter_mut())
                .zip(self.first_ge.iter_mut())
                .zip(cursor)
            {
                *cnt += u32::from(f);
                *any = (*any).min(u32::MAX.blend(v32, f));
                *ge = (*ge).min(u32::MAX.blend(v32, f & (v32 >= cur)));
            }
        }
        for ((pick, &ge), &any) in self.pick.iter_mut().zip(&self.first_ge).zip(&self.first_any) {
            *pick = if ge != u32::MAX { ge } else { any };
        }
    }

    /// Commits each unmasked lane's pick and advances its cursor.
    fn commit<L: Copy>(
        &mut self,
        n: usize,
        lanes: usize,
        commit: &[bool],
        next: &[L],
        soa: &mut [L],
    ) {
        for l in 0..lanes {
            if commit[l] {
                let p = self.pick[l] as usize;
                soa[p * lanes + l] = next[p * lanes + l];
                self.cursor[l] = ((p + 1) % n) as u32;
            }
        }
    }
}

/// Per-lane outcome of a plain (monitor-free) batched run.
#[derive(Clone, Debug)]
pub struct LaneSummary<S> {
    /// The lane's final configuration (frozen at its stop step).
    pub final_config: Configuration<S>,
    /// Steps the lane executed before stopping.
    pub steps: usize,
    /// Moves (vertex activations) the lane executed.
    pub moves: u64,
    /// Why the lane stopped.
    pub stop: StopReason,
}

/// Packs `inits` into replica-major SoA state.
fn pack_soa<P: PackedProtocol>(
    protocol: &P,
    n: usize,
    inits: &[Configuration<P::State>],
) -> Vec<P::Lane> {
    let lanes = inits.len();
    let mut soa = Vec::with_capacity(n * lanes);
    for v in 0..n {
        for init in inits {
            soa.push(protocol.pack(init.get(VertexId::new(v))));
        }
    }
    soa
}

/// Per-lane enabled/activated counts for this iteration.
fn count_fired(_n: usize, lanes: usize, fired: &[bool], out: &mut [u32]) {
    out.fill(0);
    for row in fired.chunks_exact(lanes) {
        for (cnt, &f) in out.iter_mut().zip(row) {
            *cnt += u32::from(f);
        }
    }
}

/// Commits fired successor states for unmasked lanes (`commit[l]`),
/// leaving masked lanes' state frozen.
fn commit_fired<L: LaneWord>(
    _n: usize,
    lanes: usize,
    commit: &[bool],
    fired: &[bool],
    next: &[L],
    soa: &mut [L],
) {
    // Branch-free blend per element: the fired mask changes every step,
    // so a per-element `if` mispredicts its way through the whole matrix;
    // the bitwise select is data-independent and vectorizes. The
    // chunk/zip shape matters — indexed accesses against a runtime
    // `lanes` keep per-element bounds checks alive and block the
    // vectorizer (measured ~10x slower than this form).
    let commit = &commit[..lanes];
    for (srow, (nrow, frow)) in
        soa.chunks_exact_mut(lanes).zip(next.chunks_exact(lanes).zip(fired.chunks_exact(lanes)))
    {
        for (((s, &nx), &f), &c) in srow.iter_mut().zip(nrow).zip(frow).zip(commit) {
            *s = s.blend(nx, f & c);
        }
    }
}

/// Shared per-lane bookkeeping for both batch runners.
struct LaneState {
    steps: Vec<usize>,
    moves: Vec<u64>,
    stop: Vec<Option<StopReason>>,
    commit: Vec<bool>,
    fired_count: Vec<u32>,
    counters: Vec<RunCounters>,
    active: usize,
    passes: u64,
    idle_lane_steps: u64,
}

impl LaneState {
    fn new(lanes: usize) -> Self {
        Self {
            steps: vec![0; lanes],
            moves: vec![0; lanes],
            stop: vec![None; lanes],
            commit: vec![false; lanes],
            fired_count: vec![0; lanes],
            counters: vec![RunCounters::new(); lanes],
            active: lanes,
            passes: 0,
            idle_lane_steps: 0,
        }
    }

    /// Flushes per-lane counters and the batch occupancy tallies to the
    /// global telemetry aggregate (one batched flush per lane, mirroring
    /// the scalar engine's once-per-run discipline). The lane-step total
    /// (`lanes x passes`) is reported explicitly so occupancy stays
    /// comparable across lane widths — a u8-packed batch runs 64 replicas
    /// per cache line where an i32-packed one runs 16.
    fn flush_telemetry(&mut self, lanes: usize) {
        let telemetry = specstab_telemetry::global();
        for l in 0..lanes {
            self.counters[l].steps = self.steps[l] as u64;
            self.counters[l].moves = self.moves[l];
            telemetry.record_run(&self.counters[l]);
        }
        telemetry.record_batch(lanes as u64, lanes as u64 * self.passes, self.idle_lane_steps);
    }
}

/// [`run_batch_with`] under the synchronous daemon (the original batched
/// entry point, kept as the common case's short name).
///
/// # Panics
///
/// Panics when `inits` is empty or a configuration's size does not match
/// the graph.
#[must_use]
pub fn run_batch<P: PackedProtocol>(
    graph: &Graph,
    protocol: &P,
    inits: &[Configuration<P::State>],
    max_steps: usize,
) -> Vec<LaneSummary<P::State>> {
    run_batch_with(graph, protocol, BatchDaemon::Sync, inits, max_steps)
}

/// Runs `inits.len()` replicas of `protocol` to termination (or
/// `max_steps`) under `daemon`, batched.
///
/// Per lane, the result is exactly what a scalar
/// [`Simulator::run`](crate::engine::Simulator::run) with the matching
/// daemon ([`SynchronousDaemon`](crate::daemon::SynchronousDaemon), or a
/// freshly `reset()` central round-robin
/// [`CentralDaemon`](crate::daemon::CentralDaemon)) and no observers
/// produces from the same initial configuration.
///
/// # Panics
///
/// Panics when `inits` is empty or a configuration's size does not match
/// the graph.
#[must_use]
pub fn run_batch_with<P: PackedProtocol>(
    graph: &Graph,
    protocol: &P,
    daemon: BatchDaemon,
    inits: &[Configuration<P::State>],
    max_steps: usize,
) -> Vec<LaneSummary<P::State>> {
    let n = graph.n();
    let lanes = inits.len();
    assert!(lanes > 0, "a batch needs at least one replica lane");
    for init in inits {
        assert_eq!(init.len(), n, "configuration size must match graph");
    }
    let mut soa = pack_soa(protocol, n, inits);
    let mut next = soa.clone();
    let mut fired = vec![false; n * lanes];
    let mut scratch = P::LaneScratch::default();
    let mut ls = LaneState::new(lanes);
    let mut rr = match daemon {
        BatchDaemon::Sync => None,
        BatchDaemon::CentralRr => Some(RrState::new(lanes)),
    };

    while ls.active > 0 {
        ls.passes += 1;
        ls.idle_lane_steps += (lanes - ls.active) as u64;
        protocol.step_lanes(graph, lanes, &soa, &mut next, &mut fired, &mut scratch);
        match rr.as_mut() {
            None => count_fired(n, lanes, &fired, &mut ls.fired_count),
            Some(rr) => rr.select(n, lanes, &fired, &mut ls.fired_count),
        }
        for l in 0..lanes {
            ls.commit[l] = false;
            if ls.stop[l].is_some() {
                continue;
            }
            ls.counters[l].guard_evals += n as u64;
            // The scalar engine's loop-top order: terminal first, then the
            // step limit (no observers on the plain path).
            if ls.fired_count[l] == 0 {
                ls.stop[l] = Some(StopReason::Terminal);
                ls.active -= 1;
            } else if ls.steps[l] >= max_steps {
                ls.stop[l] = Some(StopReason::MaxSteps);
                ls.active -= 1;
            } else {
                ls.commit[l] = true;
            }
        }
        match rr.as_mut() {
            None => commit_fired(n, lanes, &ls.commit, &fired, &next, &mut soa),
            Some(rr) => rr.commit(n, lanes, &ls.commit, &next, &mut soa),
        }
        for l in 0..lanes {
            if ls.commit[l] {
                // A committed pass is one step; it moves the whole fired
                // set under Sync and exactly the picked vertex under
                // CentralRr.
                let moved = if rr.is_some() { 1 } else { u64::from(ls.fired_count[l]) };
                ls.steps[l] += 1;
                ls.moves[l] += moved;
                ls.counters[l].delta_bytes += moved * 2 * std::mem::size_of::<P::State>() as u64;
            }
        }
    }

    ls.flush_telemetry(lanes);
    (0..lanes)
        .map(|l| LaneSummary {
            final_config: Configuration::from_fn(n, |v| {
                protocol.unpack(soa[v.index() * lanes + l])
            }),
            steps: ls.steps[l],
            moves: ls.moves[l],
            stop: ls.stop[l].expect("every lane stopped"),
        })
        .collect()
}

/// Per-lane replica of the `MeasurementContext` monitor stack: safety
/// monitor, legitimacy monitor and optional `StopAfterStable` counter,
/// updated with the exact indices and order the scalar observers see.
struct LaneMonitors {
    violations: usize,
    first_violation: Option<usize>,
    last_violation: Option<usize>,
    first_legitimate: Option<usize>,
    last_illegitimate: Option<usize>,
    seen: usize,
    consecutive: usize,
}

impl LaneMonitors {
    fn start<S>(
        config: &Configuration<S>,
        graph: &Graph,
        safety: &ConfigPredicate<S>,
        legitimacy: &ConfigPredicate<S>,
        early_stop: Option<&(&ConfigPredicate<S>, usize)>,
    ) -> Self {
        let mut m = Self {
            violations: 0,
            first_violation: None,
            last_violation: None,
            first_legitimate: None,
            last_illegitimate: None,
            seen: 0,
            consecutive: 0,
        };
        m.check(0, config, graph, safety, legitimacy);
        if let Some((pred, _)) = early_stop {
            m.consecutive = usize::from(pred(config, graph));
        }
        m
    }

    fn check<S>(
        &mut self,
        index: usize,
        config: &Configuration<S>,
        graph: &Graph,
        safety: &ConfigPredicate<S>,
        legitimacy: &ConfigPredicate<S>,
    ) {
        if !safety(config, graph) {
            self.violations += 1;
            self.first_violation.get_or_insert(index);
            self.last_violation = Some(index);
        }
        self.seen = index + 1;
        if legitimacy(config, graph) {
            self.first_legitimate.get_or_insert(index);
        } else {
            self.last_illegitimate = Some(index);
        }
    }

    fn step<S>(
        &mut self,
        index: usize,
        config: &Configuration<S>,
        graph: &Graph,
        safety: &ConfigPredicate<S>,
        legitimacy: &ConfigPredicate<S>,
        early_stop: Option<&(&ConfigPredicate<S>, usize)>,
    ) {
        self.check(index, config, graph, safety, legitimacy);
        if let Some((pred, _)) = early_stop {
            if pred(config, graph) {
                self.consecutive += 1;
            } else {
                self.consecutive = 0;
            }
        }
    }

    fn should_stop(&self, margin: Option<usize>) -> bool {
        margin.is_some_and(|m| self.consecutive > m)
    }

    fn ended_legitimate(&self) -> bool {
        match (self.first_legitimate, self.last_illegitimate) {
            (Some(_), None) => true,
            (Some(f), Some(l)) => f > l || self.seen > l + 1,
            _ => false,
        }
    }
}

/// [`run_batch_measured_with`] under the synchronous daemon (the original
/// measured entry point, kept as the common case's short name).
///
/// # Panics
///
/// Panics when `inits` is empty or a configuration's size does not match
/// the graph.
#[must_use]
pub fn run_batch_measured<P: PackedProtocol>(
    graph: &Graph,
    protocol: &P,
    inits: Vec<Configuration<P::State>>,
    max_steps: usize,
    safety: &ConfigPredicate<P::State>,
    legitimacy: &ConfigPredicate<P::State>,
    early_stop: Option<(&ConfigPredicate<P::State>, usize)>,
) -> Vec<(StabilizationReport, Configuration<P::State>)> {
    run_batch_measured_with(
        graph,
        protocol,
        BatchDaemon::Sync,
        inits,
        max_steps,
        safety,
        legitimacy,
        early_stop,
    )
}

/// [`run_batch_with`] with the full per-lane measurement stack: each lane
/// gets the [`StabilizationReport`] a scalar
/// [`MeasurementContext`](crate::measure::MeasurementContext) (optionally
/// with early stop) would produce from the same initial configuration
/// under the matching daemon, plus its final configuration.
///
/// `early_stop` mirrors
/// [`MeasurementContext::with_early_stop`](crate::measure::MeasurementContext::with_early_stop):
/// `(predicate, margin)` stops a lane once the predicate has held for
/// `margin + 1` consecutive configurations.
///
/// # Panics
///
/// Panics when `inits` is empty or a configuration's size does not match
/// the graph.
#[must_use]
#[allow(clippy::too_many_arguments)]
pub fn run_batch_measured_with<P: PackedProtocol>(
    graph: &Graph,
    protocol: &P,
    daemon: BatchDaemon,
    inits: Vec<Configuration<P::State>>,
    max_steps: usize,
    safety: &ConfigPredicate<P::State>,
    legitimacy: &ConfigPredicate<P::State>,
    early_stop: Option<(&ConfigPredicate<P::State>, usize)>,
) -> Vec<(StabilizationReport, Configuration<P::State>)> {
    let n = graph.n();
    let lanes = inits.len();
    assert!(lanes > 0, "a batch needs at least one replica lane");
    for init in &inits {
        assert_eq!(init.len(), n, "configuration size must match graph");
    }
    let mut soa = pack_soa(protocol, n, &inits);
    let mut next = soa.clone();
    let mut fired = vec![false; n * lanes];
    let mut scratch = P::LaneScratch::default();
    let mut ls = LaneState::new(lanes);
    // The init configurations double as per-lane mirrors for predicate
    // evaluation, repaired incrementally from the fired set each commit —
    // O(moves) per step per lane, no clones.
    let mut mirrors = inits;
    let mut monitors: Vec<LaneMonitors> = mirrors
        .iter()
        .map(|m| LaneMonitors::start(m, graph, safety, legitimacy, early_stop.as_ref()))
        .collect();
    let mut rr = match daemon {
        BatchDaemon::Sync => None,
        BatchDaemon::CentralRr => Some(RrState::new(lanes)),
    };

    while ls.active > 0 {
        ls.passes += 1;
        ls.idle_lane_steps += (lanes - ls.active) as u64;
        protocol.step_lanes(graph, lanes, &soa, &mut next, &mut fired, &mut scratch);
        match rr.as_mut() {
            None => count_fired(n, lanes, &fired, &mut ls.fired_count),
            Some(rr) => rr.select(n, lanes, &fired, &mut ls.fired_count),
        }
        for (l, monitor) in monitors.iter().enumerate() {
            ls.commit[l] = false;
            if ls.stop[l].is_some() {
                continue;
            }
            ls.counters[l].guard_evals += n as u64;
            // The scalar engine's loop-top order: terminal, step limit,
            // observer request.
            if ls.fired_count[l] == 0 {
                ls.stop[l] = Some(StopReason::Terminal);
                ls.active -= 1;
            } else if ls.steps[l] >= max_steps {
                ls.stop[l] = Some(StopReason::MaxSteps);
                ls.active -= 1;
            } else if monitor.should_stop(early_stop.as_ref().map(|&(_, m)| m)) {
                ls.stop[l] = Some(StopReason::ObserverRequest);
                ls.active -= 1;
            } else {
                ls.commit[l] = true;
            }
        }
        // Commit, then repair the per-lane mirrors to match, then run the
        // monitor checks at the post-commit step index (the scalar
        // observers see `event.step` = steps-after-increment). Under Sync
        // the repair covers the whole fired set; under CentralRr only the
        // lane's picked vertex changed.
        match rr.as_mut() {
            None => {
                commit_fired(n, lanes, &ls.commit, &fired, &next, &mut soa);
                for v in 0..n {
                    let base = v * lanes;
                    for l in 0..lanes {
                        if fired[base + l] && ls.commit[l] {
                            mirrors[l].set(VertexId::new(v), protocol.unpack(next[base + l]));
                        }
                    }
                }
            }
            Some(rr) => {
                rr.commit(n, lanes, &ls.commit, &next, &mut soa);
                for l in 0..lanes {
                    if ls.commit[l] {
                        let p = rr.pick[l] as usize;
                        mirrors[l].set(VertexId::new(p), protocol.unpack(next[p * lanes + l]));
                    }
                }
            }
        }
        for l in 0..lanes {
            if ls.commit[l] {
                let moved = if rr.is_some() { 1 } else { u64::from(ls.fired_count[l]) };
                ls.steps[l] += 1;
                ls.moves[l] += moved;
                ls.counters[l].delta_bytes += moved * 2 * std::mem::size_of::<P::State>() as u64;
                monitors[l].step(
                    ls.steps[l],
                    &mirrors[l],
                    graph,
                    safety,
                    legitimacy,
                    early_stop.as_ref(),
                );
            }
        }
    }

    ls.flush_telemetry(lanes);
    monitors
        .into_iter()
        .zip(mirrors)
        .enumerate()
        .map(|(l, (m, final_config))| {
            let report = StabilizationReport {
                steps_run: ls.steps[l],
                moves: ls.moves[l],
                stop: ls.stop[l].expect("every lane stopped"),
                last_violation: m.last_violation,
                violation_count: m.violations,
                stabilization_steps: m.last_violation.map_or(0, |i| i + 1),
                first_legitimate: m.first_legitimate,
                legitimacy_entry: m.last_illegitimate.map_or(0, |i| i + 1),
                ended_legitimate: m.ended_legitimate(),
                counters: ls.counters[l],
            };
            (report, final_config)
        })
        .collect()
}
