//! Replica-parallel batched stepping: K seed-replicas of one campaign
//! cell packed into structure-of-arrays state and stepped together under
//! a batchable daemon.
//!
//! A campaign cell replays the identical (topology, protocol, daemon)
//! across hundreds of seeds — perfectly homogeneous work that the scalar
//! engine steps one configuration at a time. The batch engine packs K
//! replicas **replica-major**: `soa[v * lanes + lane]` holds vertex `v`
//! of replica `lane`, so one cache line carries the same vertex across
//! tens of replicas and the per-vertex guard arithmetic auto-vectorizes
//! over the lane axis. The CSR topology is walked **once per step for
//! all replicas** by [`PackedProtocol::step_lanes`].
//!
//! # Which daemons batch
//!
//! Four daemon classes batch ([`BatchDaemon`]), in two families:
//!
//! - **Synchronous** ([`BatchDaemon::Sync`]): the activated set *is* the
//!   enabled set — no RNG, no selection state — so every lane's move
//!   sequence is bit-identical to its scalar run by construction. Sync
//!   takes the dense path: one whole-graph `step_lanes` per step, every
//!   fired entry committed with a branch-free blend.
//! - **Lane-divergent** ([`BatchDaemon::CentralRr`],
//!   [`BatchDaemon::CentralRand`], [`BatchDaemon::RandomDistributed`]):
//!   each lane runs its own schedule — a round-robin cursor, or an RNG
//!   stream seeded exactly as the scalar daemon for that replica would
//!   be — over a shared guard evaluation. Selection is resolved as
//!   per-lane masks over a **transposed enabled-bitset** (below) and
//!   committed per lane (GPU-warp-style divergence, masked not
//!   branched). The random modes replay the scalar daemon's RNG draw
//!   sequence bit for bit: `CentralRand` draws one `choose` index per
//!   step from the lane's sorted enabled set, `RandomDistributed{p}`
//!   draws one `gen_bool(p)` per enabled vertex in ascending vertex
//!   order plus one `choose` fallback when the sample comes up empty —
//!   and draws happen *only* for steps that execute, matching the
//!   scalar engine's select-after-stop-checks order.
//!
//! Daemons whose schedules read history (`kbounded`, `central-oldest`)
//! or adversarial search state still take the scalar fallback (counted
//! by `batch_scalar_fallbacks` in the telemetry snapshot).
//!
//! # The transposed incremental enabled-bitset
//!
//! Lane-divergent modes commit only a handful of vertices per pass, so
//! re-evaluating every guard every pass (the dense O(n · lanes) sweep
//! central-rr used to pay) wastes almost all of its work. Instead the
//! divergent engine keeps, per vertex, one u64 word per 64 lanes —
//! `bits[v * wpl + w]` bit `b` = "vertex `v` enabled in lane
//! `w * 64 + b`" — plus exact per-lane enabled counts:
//!
//! ```text
//!             lane:  63 ......... 210
//! vertex 0  bits[0] [0 1 0 ... 1 0 1]   one word = 64 lanes' enablement
//! vertex 1  bits[1] [1 1 0 ... 0 0 1]   of one vertex; selection scans
//!   ...                                 are word ANDs + trailing_zeros
//! vertex n  bits[n] [0 0 0 ... 1 1 0]
//! ```
//!
//! After each commit the engine re-evaluates only the commit's touched
//! neighborhood (the committed vertices and their CSR neighbors — the
//! batched analogue of the scalar engine's O(degree) enabled-set
//! bookkeeping) via [`PackedProtocol::eval_vertex_lanes`], patching the
//! bitset from word diffs. Selection never rescans guards: round-robin
//! resolves every lane's pick in one ascending word-scan (cursor-sorted
//! lane activation), the random modes count down their drawn index over
//! set bits. A pass therefore costs O(n · lanes / 64) word ops plus
//! O(touched · degree · lanes) guard re-evaluation, instead of
//! O(n · lanes · degree) — which is what moves the central-mode routing
//! crossover on the byte-lane ring protocols from n ≤ 32 to n ≈ 128
//! (each harness publishes its measured gate via
//! `ProtocolHarness::central_batch_max_n`) and opens the random daemons
//! to batching at any size.
//!
//! # Lane masking
//!
//! Replicas converge at different steps. A stopped lane keeps riding the
//! batch GPU-warp style — its commits are masked off so its state (and
//! hence its extracted final configuration) freezes at the stop step.
//! The masked work is surfaced as `batch_idle_lane_steps`, counted **per
//! logical step**: every pass that commits at least one lane charges one
//! step-slot per lane, so `batch_lane_steps − batch_idle_lane_steps`
//! equals the total steps executed across lanes and occupancy stays
//! comparable across lane widths (u8×64 vs i32×16 packing).
//!
//! # Equivalence contract
//!
//! [`run_batch_with`] reproduces, per lane, exactly what
//! [`Simulator::run`](crate::engine::Simulator::run) produces under the
//! matching scalar daemon: the same step/move counts, the same
//! [`StopReason`] (checked in the scalar engine's order — terminal, step
//! limit, observer request), the same final configuration — for the
//! random daemons, the same RNG draws from the same seed.
//! [`run_batch_measured`] additionally replicates the
//! [`MeasurementContext`](crate::measure::MeasurementContext) monitor
//! stack (safety monitor, legitimacy monitor, optional
//! `StopAfterStable`) per lane, index for index. The differential
//! proptest suites assert both claims against the scalar engine, and
//! [`run_batch_with_dense_sweep`] pins the incremental bitset against a
//! forced full re-evaluation every pass.

use crate::config::Configuration;
use crate::engine::StopReason;
use crate::measure::StabilizationReport;
use crate::observer::ConfigPredicate;
use crate::protocol::Protocol;
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use specstab_telemetry::RunCounters;
use specstab_topology::{Graph, VertexId};

/// A fixed-width integer lane word: the primitive the SoA engine can
/// merge branch-free. The blanket-free list of impls (u8/u16/u32/u64 and
/// their signed twins) covers every packed state representation; the
/// `blend` is a bitwise select (`self ^ ((self ^ other) & mask)`), pure
/// integer arithmetic the autovectorizer turns into SIMD blends — unlike
/// a per-element `if`, whose mispredictions dominate the commit pass on
/// real (step-varying) fired masks.
pub trait LaneWord: Copy + Send + 'static {
    /// Branch-free `if take { other } else { self }`.
    fn blend(self, other: Self, take: bool) -> Self;
}

macro_rules! lane_word {
    ($($t:ty),*) => {$(
        impl LaneWord for $t {
            #[inline(always)]
            fn blend(self, other: Self, take: bool) -> Self {
                let mask = (take as $t).wrapping_neg();
                self ^ ((self ^ other) & mask)
            }
        }
    )*};
}
lane_word!(u8, u16, u32, u64, i8, i16, i32, i64);

/// A protocol whose per-vertex state packs into a fixed-width lane and
/// whose guards evaluate lane-parallel over replica-major SoA state.
///
/// # Contract
///
/// For every vertex `v` and lane `l`, [`PackedProtocol::step_lanes`] must
/// set `fired[v * lanes + l]` to whether `v` is enabled in lane `l`'s
/// configuration and, when enabled, write the successor state to
/// `next[v * lanes + l]` — exactly the states the scalar
/// `enabled_rule`/`apply` pair would produce.
/// [`PackedProtocol::eval_vertex_lanes`] is the single-vertex form of the
/// same computation; the divergent-daemon engine uses it to re-evaluate
/// only a commit's touched neighborhood, so it must read nothing beyond
/// vertex `v`'s own state and its CSR neighbors' states (the same
/// locality the scalar engine's incremental enabled set assumes).
pub trait PackedProtocol: Protocol {
    /// Packed per-vertex state: a fixed-width copyable lane word.
    type Lane: LaneWord;
    /// Reusable per-batch scratch for `step_lanes` (lane accumulators
    /// etc.); `Default` must produce an empty instance that `step_lanes`
    /// (re)sizes on first use.
    type LaneScratch: Default;

    /// Packs one scalar state into its lane representation.
    fn pack(&self, state: &Self::State) -> Self::Lane;

    /// Unpacks a lane word back into the scalar state.
    ///
    /// Only ever called on lane words the packed step produced (or
    /// [`PackedProtocol::pack`] created), so implementations may assume
    /// in-domain values.
    fn unpack(&self, lane: Self::Lane) -> Self::State;

    /// One synchronous step for all lanes: evaluate every vertex's guard
    /// in every lane over `soa` (replica-major, `soa[v * lanes + lane]`),
    /// writing enablement into `fired` and successor states into `next`.
    /// Entries of `next` whose `fired` bit is clear are ignored by the
    /// caller. Implementations walk the CSR topology once, amortized
    /// over all lanes.
    fn step_lanes(
        &self,
        graph: &Graph,
        lanes: usize,
        soa: &[Self::Lane],
        next: &mut [Self::Lane],
        fired: &mut [bool],
        scratch: &mut Self::LaneScratch,
    );

    /// Re-evaluates vertex `v`'s guard and successor in every lane,
    /// writing only row `v` of `next`/`fired` — the incremental unit the
    /// divergent engine's touched-neighborhood refresh is built on. Must
    /// agree with [`PackedProtocol::step_lanes`] row for row.
    #[allow(clippy::too_many_arguments)] // step_lanes' signature plus the row index
    fn eval_vertex_lanes(
        &self,
        graph: &Graph,
        v: usize,
        lanes: usize,
        soa: &[Self::Lane],
        next: &mut [Self::Lane],
        fired: &mut [bool],
        scratch: &mut Self::LaneScratch,
    );
}

/// Daemon schedule a batched run replays: which scalar daemon every lane
/// must be bit-identical to.
#[derive(Copy, Clone, Debug, PartialEq)]
pub enum BatchDaemon {
    /// The synchronous daemon: every enabled vertex fires each step.
    Sync,
    /// The central round-robin daemon: each lane holds its own cursor and
    /// commits the first enabled vertex at or after it (wrapping to the
    /// lowest enabled vertex), then advances the cursor past the pick —
    /// the exact schedule of the scalar `central-rr` daemon after
    /// `reset()`.
    CentralRr,
    /// The central random daemon: each lane holds its own RNG stream
    /// (seeded per lane like the scalar `central-rand` daemon after
    /// `reset()`) and commits a uniformly chosen enabled vertex per step —
    /// one `choose` draw per executed step, bit-identical to the scalar
    /// pick sequence.
    CentralRand,
    /// The random distributed daemon: each lane includes each enabled
    /// vertex independently with probability `p` (one `gen_bool(p)` draw
    /// per enabled vertex in ascending vertex order), falling back to one
    /// uniform `choose` pick when the sample is empty — the exact draw
    /// sequence of the scalar `dist:<p>` daemon after `reset()`.
    RandomDistributed {
        /// Per-vertex inclusion probability in `[0, 1]`.
        p: f64,
    },
}

impl BatchDaemon {
    /// Whether this daemon needs one RNG seed per lane
    /// (`lane_seeds.len() == inits.len()` in the batch entry points).
    #[must_use]
    pub fn needs_lane_seeds(self) -> bool {
        matches!(self, BatchDaemon::CentralRand | BatchDaemon::RandomDistributed { .. })
    }
}

/// u64 words per transposed bitset row (64 lanes per word).
#[inline]
fn words_per_row(lanes: usize) -> usize {
    lanes.div_ceil(64)
}

/// Assembles word `w` of vertex `v`'s transposed fired row from the
/// lane-major `fired` matrix (`base = v * lanes`).
///
/// Packs eight bool bytes per step with a SWAR multiply: for bytes
/// b₀..b₇ ∈ {0,1}, `x · 0x0102_0408_1020_4080` places bᵢ at bit 56 + i
/// (each product bit has at most one contributor, so no carries), and
/// the top byte is the packed mask. This runs once per bitset row per
/// refresh, so the bit-at-a-time loop it replaces was the dominant
/// per-pass cost of the divergent engine on mid-size graphs.
#[inline]
fn row_word(fired: &[bool], base: usize, lanes: usize, w: usize) -> u64 {
    let lo = w * 64;
    let hi = lanes.min(lo + 64);
    let row = &fired[base + lo..base + hi];
    let mut word = 0u64;
    let mut chunks = row.chunks_exact(8);
    for (i, c) in chunks.by_ref().enumerate() {
        let x = u64::from_le_bytes([
            c[0] as u8, c[1] as u8, c[2] as u8, c[3] as u8, c[4] as u8, c[5] as u8, c[6] as u8,
            c[7] as u8,
        ]);
        word |= (x.wrapping_mul(0x0102_0408_1020_4080) >> 56) << (8 * i);
    }
    let tail = row.len() & !7;
    for (j, &b) in chunks.remainder().iter().enumerate() {
        word |= u64::from(b) << (tail + j);
    }
    word
}

/// Replays the vendored `SliceRandom::choose` draw on a slice of length
/// `span`: one `next_u64` mapped onto `0..span` by the fixed-point
/// multiply. The scalar random daemons pick from their sorted enabled
/// slice with exactly this draw, so replaying it against the lane's
/// enabled *count* (resolving the j-th set bit in ascending vertex
/// order) reproduces the scalar pick bit for bit.
#[inline]
fn choose_index(rng: &mut StdRng, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

/// Per-lane divergent-daemon state: the transposed enabled-bitset, exact
/// per-lane enabled counts, per-lane schedules (rr cursors / RNG
/// streams), selection scratch and the touched-set bookkeeping for the
/// incremental refresh.
struct DivergentState {
    mode: BatchDaemon,
    n: usize,
    lanes: usize,
    wpl: usize,
    /// `bits[v * wpl + w]` bit `b` = vertex `v` enabled in lane `w*64+b`.
    bits: Vec<u64>,
    /// Row-summary bitmap: bit `v` = some lane has vertex `v` enabled.
    /// Selection scans iterate its set bits, skipping all-disabled rows.
    any: Vec<u64>,
    /// Per-lane enabled count — the exact column popcounts of `bits`,
    /// maintained from word diffs.
    cnt: Vec<u32>,
    /// Per-lane RNG streams (random modes only), seeded exactly as the
    /// scalar daemon for that replica after `reset()`.
    rngs: Vec<StdRng>,
    /// Per-lane round-robin cursors (the scalar `reset()` zeroes them).
    cursor: Vec<u32>,
    /// Per-lane picked vertex for the single-move modes (rr / rand).
    pick: Vec<u32>,
    first_any: Vec<u32>,
    first_ge: Vec<u32>,
    /// Selected (vertex, lane) bitset for the distributed mode (same
    /// layout as `bits`) and per-lane selection sizes.
    sel: Vec<u64>,
    sel_count: Vec<u32>,
    /// Countdown scratch for j-th-enabled scans.
    jbuf: Vec<u32>,
    /// Committing-lane mask and scan pendings (word layout).
    commit_words: Vec<u64>,
    pend_a: Vec<u64>,
    pend_b: Vec<u64>,
    started: Vec<u64>,
    /// Committing lanes sorted by cursor (rr scan activation order).
    order: Vec<u32>,
    /// Touched-vertex set for the incremental refresh (stamp-deduped).
    touched: Vec<u32>,
    stamp: Vec<u64>,
    generation: u64,
    /// Forces the full dense re-evaluation every pass — the reference
    /// sweep the incremental path is differentially tested against.
    dense_sweep: bool,
}

impl DivergentState {
    fn new(
        mode: BatchDaemon,
        n: usize,
        lanes: usize,
        lane_seeds: &[u64],
        dense_sweep: bool,
    ) -> Self {
        let wpl = words_per_row(lanes);
        let rngs = if mode.needs_lane_seeds() {
            assert_eq!(
                lane_seeds.len(),
                lanes,
                "random batch daemons need exactly one RNG seed per lane"
            );
            lane_seeds.iter().map(|&s| StdRng::seed_from_u64(s)).collect()
        } else {
            Vec::new()
        };
        if let BatchDaemon::RandomDistributed { p } = mode {
            assert!((0.0..=1.0).contains(&p), "inclusion probability must be in [0,1]");
        }
        let dist = matches!(mode, BatchDaemon::RandomDistributed { .. });
        Self {
            mode,
            n,
            lanes,
            wpl,
            bits: vec![0; n * wpl],
            any: vec![0; n.div_ceil(64)],
            cnt: vec![0; lanes],
            rngs,
            cursor: vec![0; lanes],
            pick: vec![u32::MAX; lanes],
            first_any: vec![u32::MAX; lanes],
            first_ge: vec![u32::MAX; lanes],
            sel: if dist { vec![0; n * wpl] } else { Vec::new() },
            sel_count: vec![0; lanes],
            jbuf: vec![0; lanes],
            commit_words: vec![0; wpl],
            pend_a: vec![0; wpl],
            pend_b: vec![0; wpl],
            started: vec![0; wpl],
            order: Vec::with_capacity(lanes),
            touched: Vec::with_capacity(n),
            stamp: vec![0; n],
            generation: 0,
            dense_sweep,
        }
    }

    /// Patches row `v` of the bitset against the freshly re-evaluated
    /// `fired` matrix, adjusting the per-lane counts from the word diff.
    #[inline]
    fn diff_row(&mut self, v: usize, fired: &[bool]) {
        let base = v * self.lanes;
        let mut nz = 0u64;
        for w in 0..self.wpl {
            let new = row_word(fired, base, self.lanes, w);
            let idx = v * self.wpl + w;
            let mut delta = self.bits[idx] ^ new;
            while delta != 0 {
                let b = delta.trailing_zeros() as usize;
                if new & (1u64 << b) != 0 {
                    self.cnt[w * 64 + b] += 1;
                } else {
                    self.cnt[w * 64 + b] -= 1;
                }
                delta &= delta - 1;
            }
            self.bits[idx] = new;
            nz |= new;
        }
        if nz != 0 {
            self.any[v / 64] |= 1u64 << (v % 64);
        } else {
            self.any[v / 64] &= !(1u64 << (v % 64));
        }
    }

    /// Rebuilds every row (the initial build after the first whole-graph
    /// evaluation, and every pass of the reference dense-sweep mode).
    fn diff_all_rows(&mut self, fired: &[bool]) {
        for v in 0..self.n {
            self.diff_row(v, fired);
        }
    }

    #[inline]
    fn touch_one(&mut self, v: usize) {
        if self.stamp[v] != self.generation {
            self.stamp[v] = self.generation;
            self.touched.push(v as u32);
        }
    }

    /// Marks the closed neighborhood of a committed vertex stale: `v`
    /// itself and every vertex whose guard reads `v`'s state.
    #[inline]
    fn touch(&mut self, graph: &Graph, v: usize) {
        self.touch_one(v);
        for &u in graph.neighbors(VertexId::new(v)) {
            self.touch_one(u.index());
        }
    }

    fn build_commit_words(&mut self, commit: &[bool]) {
        self.commit_words.fill(0);
        for (l, &c) in commit.iter().enumerate() {
            self.commit_words[l / 64] |= u64::from(c) << (l % 64);
        }
    }

    /// Resolves every committing lane's selection for this pass. RNG
    /// draws happen here and only here — i.e. only for lanes that will
    /// execute a step, matching the scalar engine's
    /// select-after-stop-checks order.
    fn select(&mut self, commit: &[bool]) {
        match self.mode {
            BatchDaemon::Sync => unreachable!("sync rides the dense path"),
            BatchDaemon::CentralRr => self.select_rr(commit),
            BatchDaemon::CentralRand => self.select_rand(commit),
            BatchDaemon::RandomDistributed { p } => self.select_dist(commit, p),
        }
    }

    /// Round-robin: one ascending word-scan over the *set rows* of the
    /// summary bitmap resolves, per committing lane, the first enabled
    /// vertex at or after the lane's cursor (`first_ge`) and the first
    /// enabled vertex overall (`first_any`, the wraparound fallback).
    /// Lanes activate into the ≥-cursor search as the scan passes their
    /// cursor — committing lanes sorted by cursor, a `started` mask
    /// switched on word-wise. All-disabled rows carry no hits in either
    /// search, so skipping them is exact, and the pass costs
    /// O(enabled-rows · wpl) word ops + O(lanes log lanes) for the sort.
    fn select_rr(&mut self, commit: &[bool]) {
        self.build_commit_words(commit);
        self.pend_a.copy_from_slice(&self.commit_words);
        self.pend_b.copy_from_slice(&self.commit_words);
        self.started.fill(0);
        self.first_any.fill(u32::MAX);
        self.first_ge.fill(u32::MAX);
        self.order.clear();
        self.order.extend((0..self.lanes as u32).filter(|&l| commit[l as usize]));
        let cursor = &self.cursor;
        self.order.sort_unstable_by_key(|&l| cursor[l as usize]);
        let mut op = 0;
        let mut unresolved = 2 * self.order.len();
        'rows: for aw in 0..self.any.len() {
            let mut aword = self.any[aw];
            while aword != 0 {
                let v = aw * 64 + aword.trailing_zeros() as usize;
                aword &= aword - 1;
                while op < self.order.len() && self.cursor[self.order[op] as usize] <= v as u32 {
                    let l = self.order[op] as usize;
                    self.started[l / 64] |= 1u64 << (l % 64);
                    op += 1;
                }
                let base = v * self.wpl;
                for w in 0..self.wpl {
                    let row = self.bits[base + w];
                    let mut hit = row & self.pend_a[w];
                    while hit != 0 {
                        let bit = hit & hit.wrapping_neg();
                        self.first_any[w * 64 + bit.trailing_zeros() as usize] = v as u32;
                        self.pend_a[w] ^= bit;
                        hit ^= bit;
                        unresolved -= 1;
                    }
                    let mut hit = row & self.pend_b[w] & self.started[w];
                    while hit != 0 {
                        let bit = hit & hit.wrapping_neg();
                        self.first_ge[w * 64 + bit.trailing_zeros() as usize] = v as u32;
                        self.pend_b[w] ^= bit;
                        hit ^= bit;
                        unresolved -= 1;
                    }
                }
                if unresolved == 0 {
                    break 'rows;
                }
            }
        }
        for i in 0..self.order.len() {
            let l = self.order[i] as usize;
            let ge = self.first_ge[l];
            let p = if ge == u32::MAX { self.first_any[l] } else { ge };
            debug_assert!(p != u32::MAX, "committing lanes have a nonempty enabled set");
            self.pick[l] = p;
            self.cursor[l] = ((p as usize + 1) % self.n) as u32;
        }
    }

    /// Central random: each committing lane draws its scalar `choose`
    /// index j against its enabled count, and one ascending word-scan
    /// resolves lane l's j-th enabled vertex by counting j down over set
    /// bits — the sorted-enabled-slice pick, without materializing the
    /// slice.
    fn select_rand(&mut self, commit: &[bool]) {
        self.build_commit_words(commit);
        self.pend_a.copy_from_slice(&self.commit_words);
        let mut unresolved = 0usize;
        for (l, &committing) in commit.iter().enumerate().take(self.lanes) {
            if committing {
                self.jbuf[l] = choose_index(&mut self.rngs[l], u64::from(self.cnt[l])) as u32;
                unresolved += 1;
            }
        }
        'rows: for aw in 0..self.any.len() {
            let mut aword = self.any[aw];
            while aword != 0 {
                let v = aw * 64 + aword.trailing_zeros() as usize;
                aword &= aword - 1;
                let base = v * self.wpl;
                for w in 0..self.wpl {
                    let mut hit = self.bits[base + w] & self.pend_a[w];
                    while hit != 0 {
                        let bit = hit & hit.wrapping_neg();
                        let l = w * 64 + bit.trailing_zeros() as usize;
                        if self.jbuf[l] == 0 {
                            self.pick[l] = v as u32;
                            self.pend_a[w] ^= bit;
                            unresolved -= 1;
                        } else {
                            self.jbuf[l] -= 1;
                        }
                        hit ^= bit;
                    }
                }
                if unresolved == 0 {
                    break 'rows;
                }
            }
        }
        debug_assert_eq!(unresolved, 0, "every drawn index lies below the enabled count");
    }

    /// Random distributed: the vertex-major scan draws one `gen_bool(p)`
    /// per (enabled, committing) lane bit — each lane's draws land in
    /// ascending vertex order, exactly the scalar daemon's iteration over
    /// its sorted enabled slice — then lanes whose sample came up empty
    /// take the scalar's one-`choose` fallback pick.
    fn select_dist(&mut self, commit: &[bool], p: f64) {
        self.build_commit_words(commit);
        self.sel.fill(0);
        self.sel_count.fill(0);
        for aw in 0..self.any.len() {
            let mut aword = self.any[aw];
            while aword != 0 {
                let v = aw * 64 + aword.trailing_zeros() as usize;
                aword &= aword - 1;
                let base = v * self.wpl;
                for w in 0..self.wpl {
                    let mut hit = self.bits[base + w] & self.commit_words[w];
                    while hit != 0 {
                        let bit = hit & hit.wrapping_neg();
                        let l = w * 64 + bit.trailing_zeros() as usize;
                        if self.rngs[l].gen_bool(p) {
                            self.sel[base + w] |= bit;
                            self.sel_count[l] += 1;
                        }
                        hit ^= bit;
                    }
                }
            }
        }
        self.pend_a.fill(0);
        let mut unresolved = 0usize;
        for (l, &committing) in commit.iter().enumerate().take(self.lanes) {
            if committing && self.sel_count[l] == 0 {
                self.jbuf[l] = choose_index(&mut self.rngs[l], u64::from(self.cnt[l])) as u32;
                self.pend_a[l / 64] |= 1u64 << (l % 64);
                unresolved += 1;
            }
        }
        if unresolved == 0 {
            return;
        }
        'rows: for aw in 0..self.any.len() {
            let mut aword = self.any[aw];
            while aword != 0 {
                let v = aw * 64 + aword.trailing_zeros() as usize;
                aword &= aword - 1;
                let base = v * self.wpl;
                for w in 0..self.wpl {
                    let mut hit = self.bits[base + w] & self.pend_a[w];
                    while hit != 0 {
                        let bit = hit & hit.wrapping_neg();
                        let l = w * 64 + bit.trailing_zeros() as usize;
                        if self.jbuf[l] == 0 {
                            self.sel[base + w] |= bit;
                            self.sel_count[l] = 1;
                            self.pend_a[w] ^= bit;
                            unresolved -= 1;
                        } else {
                            self.jbuf[l] -= 1;
                        }
                        hit ^= bit;
                    }
                }
                if unresolved == 0 {
                    break 'rows;
                }
            }
        }
    }

    /// Moves one committed step executes in lane `l`.
    #[inline]
    fn moved(&self, l: usize) -> u64 {
        match self.mode {
            BatchDaemon::RandomDistributed { .. } => u64::from(self.sel_count[l]),
            _ => 1,
        }
    }

    /// Commits every selected (vertex, lane) pair into `soa`, records the
    /// touched neighborhoods for the incremental refresh, and reports
    /// each commit to `on_commit(lane, vertex, new_word)` (the measured
    /// runner's mirror-repair hook).
    fn commit<L: LaneWord>(
        &mut self,
        graph: &Graph,
        commit: &[bool],
        next: &[L],
        soa: &mut [L],
        mut on_commit: impl FnMut(usize, usize, L),
    ) {
        self.generation += 1;
        self.touched.clear();
        if matches!(self.mode, BatchDaemon::RandomDistributed { .. }) {
            for v in 0..self.n {
                let base = v * self.wpl;
                let mut any = false;
                for w in 0..self.wpl {
                    let mut hit = self.sel[base + w];
                    any |= hit != 0;
                    while hit != 0 {
                        let l = w * 64 + hit.trailing_zeros() as usize;
                        let val = next[v * self.lanes + l];
                        soa[v * self.lanes + l] = val;
                        on_commit(l, v, val);
                        hit &= hit - 1;
                    }
                }
                if any {
                    self.touch(graph, v);
                }
            }
        } else {
            for l in 0..self.lanes {
                if commit[l] {
                    let v = self.pick[l] as usize;
                    let val = next[v * self.lanes + l];
                    soa[v * self.lanes + l] = val;
                    on_commit(l, v, val);
                    self.touch(graph, v);
                }
            }
        }
    }

    /// Re-evaluates the guard rows invalidated by this pass's commits and
    /// patches `bits`/`cnt` from the word diffs (whole-graph sweep + full
    /// rebuild when the reference dense-sweep mode is forced).
    fn refresh<P: PackedProtocol>(
        &mut self,
        graph: &Graph,
        protocol: &P,
        soa: &[P::Lane],
        next: &mut [P::Lane],
        fired: &mut [bool],
        scratch: &mut P::LaneScratch,
    ) {
        if self.dense_sweep {
            protocol.step_lanes(graph, self.lanes, soa, next, fired, scratch);
            self.diff_all_rows(fired);
            return;
        }
        // Enablement can only have changed where a guard input changed —
        // the touched set — so re-evaluating exactly those rows is a full
        // repair: worst case (touched = whole graph) it costs one dense
        // sweep, and in the divergent steady state it is O(commits ·
        // degree · lanes).
        let touched = std::mem::take(&mut self.touched);
        for &v in &touched {
            protocol.eval_vertex_lanes(graph, v as usize, self.lanes, soa, next, fired, scratch);
            self.diff_row(v as usize, fired);
        }
        self.touched = touched;
    }
}

/// Per-lane outcome of a plain (monitor-free) batched run.
#[derive(Clone, Debug)]
pub struct LaneSummary<S> {
    /// The lane's final configuration (frozen at its stop step).
    pub final_config: Configuration<S>,
    /// Steps the lane executed before stopping.
    pub steps: usize,
    /// Moves (vertex activations) the lane executed.
    pub moves: u64,
    /// Why the lane stopped.
    pub stop: StopReason,
}

/// Packs `inits` into replica-major SoA state.
fn pack_soa<P: PackedProtocol>(
    protocol: &P,
    n: usize,
    inits: &[Configuration<P::State>],
) -> Vec<P::Lane> {
    let lanes = inits.len();
    let mut soa = Vec::with_capacity(n * lanes);
    for v in 0..n {
        for init in inits {
            soa.push(protocol.pack(init.get(VertexId::new(v))));
        }
    }
    soa
}

/// Per-lane enabled/activated counts for this iteration.
fn count_fired(_n: usize, lanes: usize, fired: &[bool], out: &mut [u32]) {
    out.fill(0);
    for row in fired.chunks_exact(lanes) {
        for (cnt, &f) in out.iter_mut().zip(row) {
            *cnt += u32::from(f);
        }
    }
}

/// Commits fired successor states for unmasked lanes (`commit[l]`),
/// leaving masked lanes' state frozen.
fn commit_fired<L: LaneWord>(
    _n: usize,
    lanes: usize,
    commit: &[bool],
    fired: &[bool],
    next: &[L],
    soa: &mut [L],
) {
    // Branch-free blend per element: the fired mask changes every step,
    // so a per-element `if` mispredicts its way through the whole matrix;
    // the bitwise select is data-independent and vectorizes. The
    // chunk/zip shape matters — indexed accesses against a runtime
    // `lanes` keep per-element bounds checks alive and block the
    // vectorizer (measured ~10x slower than this form).
    let commit = &commit[..lanes];
    for (srow, (nrow, frow)) in
        soa.chunks_exact_mut(lanes).zip(next.chunks_exact(lanes).zip(fired.chunks_exact(lanes)))
    {
        for (((s, &nx), &f), &c) in srow.iter_mut().zip(nrow).zip(frow).zip(commit) {
            *s = s.blend(nx, f & c);
        }
    }
}

/// Shared per-lane bookkeeping for both batch runners.
struct LaneState {
    steps: Vec<usize>,
    moves: Vec<u64>,
    stop: Vec<Option<StopReason>>,
    commit: Vec<bool>,
    fired_count: Vec<u32>,
    counters: Vec<RunCounters>,
    active: usize,
    /// Scheduled lane-step slots: `lanes` per pass that committed at
    /// least one lane (the final all-stop drain pass charges nothing).
    lane_step_slots: u64,
    /// Slots where a lane was scheduled but rode masked — per logical
    /// step, so `lane_step_slots − idle_lane_steps == Σ steps[l]`.
    idle_lane_steps: u64,
}

impl LaneState {
    fn new(lanes: usize) -> Self {
        Self {
            steps: vec![0; lanes],
            moves: vec![0; lanes],
            stop: vec![None; lanes],
            commit: vec![false; lanes],
            fired_count: vec![0; lanes],
            counters: vec![RunCounters::new(); lanes],
            active: lanes,
            lane_step_slots: 0,
            idle_lane_steps: 0,
        }
    }

    /// Charges this pass's step-slot accounting: one slot per lane when
    /// any lane committed, idle for the lanes that did not. Counting per
    /// logical step (instead of per evaluation pass) keeps occupancy
    /// comparable across lane widths — a u8-packed batch runs 64 replicas
    /// per cache line where an i32-packed one runs 16 — and makes
    /// `lane_step_slots − idle_lane_steps` exactly the steps executed.
    fn charge_pass(&mut self, lanes: usize, committed: usize) {
        if committed > 0 {
            self.lane_step_slots += lanes as u64;
            self.idle_lane_steps += (lanes - committed) as u64;
        }
    }

    /// Flushes per-lane counters and the batch occupancy tallies to the
    /// global telemetry aggregate (one batched flush per lane, mirroring
    /// the scalar engine's once-per-run discipline).
    fn flush_telemetry(&mut self, lanes: usize) {
        let telemetry = specstab_telemetry::global();
        for l in 0..lanes {
            self.counters[l].steps = self.steps[l] as u64;
            self.counters[l].moves = self.moves[l];
            telemetry.record_run(&self.counters[l]);
        }
        telemetry.record_batch(lanes as u64, self.lane_step_slots, self.idle_lane_steps);
    }
}

/// [`run_batch_with`] under the synchronous daemon (the original batched
/// entry point, kept as the common case's short name).
///
/// # Panics
///
/// Panics when `inits` is empty or a configuration's size does not match
/// the graph.
#[must_use]
pub fn run_batch<P: PackedProtocol>(
    graph: &Graph,
    protocol: &P,
    inits: &[Configuration<P::State>],
    max_steps: usize,
) -> Vec<LaneSummary<P::State>> {
    run_batch_with(graph, protocol, BatchDaemon::Sync, &[], inits, max_steps)
}

/// Runs `inits.len()` replicas of `protocol` to termination (or
/// `max_steps`) under `daemon`, batched.
///
/// Per lane, the result is exactly what a scalar
/// [`Simulator::run`](crate::engine::Simulator::run) with the matching
/// daemon ([`SynchronousDaemon`](crate::daemon::SynchronousDaemon), a
/// freshly `reset()` [`CentralDaemon`](crate::daemon::CentralDaemon)
/// round-robin or random, or a
/// [`RandomDistributedDaemon`](crate::daemon::RandomDistributedDaemon))
/// and no observers produces from the same initial configuration. For
/// the random daemons, `lane_seeds[l]` must be the seed the scalar
/// daemon for replica `l` was constructed with; the deterministic
/// daemons ignore `lane_seeds` (pass `&[]`).
///
/// # Panics
///
/// Panics when `inits` is empty, a configuration's size does not match
/// the graph, or a random daemon's `lane_seeds` length does not match
/// `inits.len()`.
#[must_use]
pub fn run_batch_with<P: PackedProtocol>(
    graph: &Graph,
    protocol: &P,
    daemon: BatchDaemon,
    lane_seeds: &[u64],
    inits: &[Configuration<P::State>],
    max_steps: usize,
) -> Vec<LaneSummary<P::State>> {
    match daemon {
        BatchDaemon::Sync => run_batch_sync(graph, protocol, inits, max_steps),
        _ => run_batch_divergent(graph, protocol, daemon, lane_seeds, inits, max_steps, false),
    }
}

/// [`run_batch_with`] with the incremental enabled-bitset disabled: the
/// divergent engine re-evaluates every guard with a whole-graph
/// `step_lanes` sweep every pass. Selection, RNG streams and commits are
/// shared with the incremental path, so comparing the two isolates
/// exactly the touched-neighborhood bitset maintenance. Test-only
/// reference; not part of the public API surface.
///
/// # Panics
///
/// As [`run_batch_with`]; additionally panics under [`BatchDaemon::Sync`]
/// (which has no divergent path to compare).
#[doc(hidden)]
#[must_use]
pub fn run_batch_with_dense_sweep<P: PackedProtocol>(
    graph: &Graph,
    protocol: &P,
    daemon: BatchDaemon,
    lane_seeds: &[u64],
    inits: &[Configuration<P::State>],
    max_steps: usize,
) -> Vec<LaneSummary<P::State>> {
    assert!(daemon != BatchDaemon::Sync, "the dense-sweep reference is for divergent daemons");
    run_batch_divergent(graph, protocol, daemon, lane_seeds, inits, max_steps, true)
}

fn check_batch_args<S>(graph: &Graph, inits: &[Configuration<S>]) -> (usize, usize) {
    let n = graph.n();
    let lanes = inits.len();
    assert!(lanes > 0, "a batch needs at least one replica lane");
    for init in inits {
        assert_eq!(init.len(), n, "configuration size must match graph");
    }
    (n, lanes)
}

/// The synchronous dense path: whole-graph `step_lanes` every pass, the
/// whole fired set committed per lane with branch-free blends.
fn run_batch_sync<P: PackedProtocol>(
    graph: &Graph,
    protocol: &P,
    inits: &[Configuration<P::State>],
    max_steps: usize,
) -> Vec<LaneSummary<P::State>> {
    let (n, lanes) = check_batch_args(graph, inits);
    let mut soa = pack_soa(protocol, n, inits);
    let mut next = soa.clone();
    let mut fired = vec![false; n * lanes];
    let mut scratch = P::LaneScratch::default();
    let mut ls = LaneState::new(lanes);

    while ls.active > 0 {
        protocol.step_lanes(graph, lanes, &soa, &mut next, &mut fired, &mut scratch);
        count_fired(n, lanes, &fired, &mut ls.fired_count);
        let mut committed = 0usize;
        for l in 0..lanes {
            ls.commit[l] = false;
            if ls.stop[l].is_some() {
                continue;
            }
            ls.counters[l].guard_evals += n as u64;
            // The scalar engine's loop-top order: terminal first, then the
            // step limit (no observers on the plain path).
            if ls.fired_count[l] == 0 {
                ls.stop[l] = Some(StopReason::Terminal);
                ls.active -= 1;
            } else if ls.steps[l] >= max_steps {
                ls.stop[l] = Some(StopReason::MaxSteps);
                ls.active -= 1;
            } else {
                ls.commit[l] = true;
                committed += 1;
            }
        }
        ls.charge_pass(lanes, committed);
        commit_fired(n, lanes, &ls.commit, &fired, &next, &mut soa);
        for l in 0..lanes {
            if ls.commit[l] {
                // A committed pass is one step; it moves the whole fired
                // set under the synchronous daemon.
                let moved = u64::from(ls.fired_count[l]);
                ls.steps[l] += 1;
                ls.moves[l] += moved;
                ls.counters[l].delta_bytes += moved * 2 * std::mem::size_of::<P::State>() as u64;
            }
        }
    }

    ls.flush_telemetry(lanes);
    collect_summaries(protocol, n, lanes, &soa, &ls)
}

/// The divergent path (rr / rand / dist): initial whole-graph evaluation
/// builds the transposed bitset, then every pass selects from it with
/// word scans, commits per lane, and re-evaluates only the commit's
/// touched neighborhood.
fn run_batch_divergent<P: PackedProtocol>(
    graph: &Graph,
    protocol: &P,
    daemon: BatchDaemon,
    lane_seeds: &[u64],
    inits: &[Configuration<P::State>],
    max_steps: usize,
    dense_sweep: bool,
) -> Vec<LaneSummary<P::State>> {
    let (n, lanes) = check_batch_args(graph, inits);
    let mut soa = pack_soa(protocol, n, inits);
    let mut next = soa.clone();
    let mut fired = vec![false; n * lanes];
    let mut scratch = P::LaneScratch::default();
    let mut ls = LaneState::new(lanes);
    let mut ds = DivergentState::new(daemon, n, lanes, lane_seeds, dense_sweep);
    protocol.step_lanes(graph, lanes, &soa, &mut next, &mut fired, &mut scratch);
    ds.diff_all_rows(&fired);

    while ls.active > 0 {
        let mut committed = 0usize;
        for l in 0..lanes {
            ls.commit[l] = false;
            if ls.stop[l].is_some() {
                continue;
            }
            ls.counters[l].guard_evals += n as u64;
            // The scalar engine's loop-top order: terminal first, then the
            // step limit (no observers on the plain path).
            if ds.cnt[l] == 0 {
                ls.stop[l] = Some(StopReason::Terminal);
                ls.active -= 1;
            } else if ls.steps[l] >= max_steps {
                ls.stop[l] = Some(StopReason::MaxSteps);
                ls.active -= 1;
            } else {
                ls.commit[l] = true;
                committed += 1;
            }
        }
        if committed == 0 {
            break;
        }
        ls.charge_pass(lanes, committed);
        ds.select(&ls.commit);
        ds.commit(graph, &ls.commit, &next, &mut soa, |_, _, _| {});
        for l in 0..lanes {
            if ls.commit[l] {
                let moved = ds.moved(l);
                ls.steps[l] += 1;
                ls.moves[l] += moved;
                ls.counters[l].delta_bytes += moved * 2 * std::mem::size_of::<P::State>() as u64;
            }
        }
        ds.refresh(graph, protocol, &soa, &mut next, &mut fired, &mut scratch);
    }

    ls.flush_telemetry(lanes);
    collect_summaries(protocol, n, lanes, &soa, &ls)
}

fn collect_summaries<P: PackedProtocol>(
    protocol: &P,
    n: usize,
    lanes: usize,
    soa: &[P::Lane],
    ls: &LaneState,
) -> Vec<LaneSummary<P::State>> {
    (0..lanes)
        .map(|l| LaneSummary {
            final_config: Configuration::from_fn(n, |v| {
                protocol.unpack(soa[v.index() * lanes + l])
            }),
            steps: ls.steps[l],
            moves: ls.moves[l],
            stop: ls.stop[l].expect("every lane stopped"),
        })
        .collect()
}

/// Per-lane replica of the `MeasurementContext` monitor stack: safety
/// monitor, legitimacy monitor and optional `StopAfterStable` counter,
/// updated with the exact indices and order the scalar observers see.
struct LaneMonitors {
    violations: usize,
    first_violation: Option<usize>,
    last_violation: Option<usize>,
    first_legitimate: Option<usize>,
    last_illegitimate: Option<usize>,
    seen: usize,
    consecutive: usize,
}

impl LaneMonitors {
    fn start<S>(
        config: &Configuration<S>,
        graph: &Graph,
        safety: &ConfigPredicate<S>,
        legitimacy: &ConfigPredicate<S>,
        early_stop: Option<&(&ConfigPredicate<S>, usize)>,
    ) -> Self {
        let mut m = Self {
            violations: 0,
            first_violation: None,
            last_violation: None,
            first_legitimate: None,
            last_illegitimate: None,
            seen: 0,
            consecutive: 0,
        };
        m.check(0, config, graph, safety, legitimacy);
        if let Some((pred, _)) = early_stop {
            m.consecutive = usize::from(pred(config, graph));
        }
        m
    }

    fn check<S>(
        &mut self,
        index: usize,
        config: &Configuration<S>,
        graph: &Graph,
        safety: &ConfigPredicate<S>,
        legitimacy: &ConfigPredicate<S>,
    ) {
        if !safety(config, graph) {
            self.violations += 1;
            self.first_violation.get_or_insert(index);
            self.last_violation = Some(index);
        }
        self.seen = index + 1;
        if legitimacy(config, graph) {
            self.first_legitimate.get_or_insert(index);
        } else {
            self.last_illegitimate = Some(index);
        }
    }

    fn step<S>(
        &mut self,
        index: usize,
        config: &Configuration<S>,
        graph: &Graph,
        safety: &ConfigPredicate<S>,
        legitimacy: &ConfigPredicate<S>,
        early_stop: Option<&(&ConfigPredicate<S>, usize)>,
    ) {
        self.check(index, config, graph, safety, legitimacy);
        if let Some((pred, _)) = early_stop {
            if pred(config, graph) {
                self.consecutive += 1;
            } else {
                self.consecutive = 0;
            }
        }
    }

    fn should_stop(&self, margin: Option<usize>) -> bool {
        margin.is_some_and(|m| self.consecutive > m)
    }

    fn ended_legitimate(&self) -> bool {
        match (self.first_legitimate, self.last_illegitimate) {
            (Some(_), None) => true,
            (Some(f), Some(l)) => f > l || self.seen > l + 1,
            _ => false,
        }
    }

    fn into_report(
        self,
        steps: usize,
        moves: u64,
        stop: StopReason,
        counters: RunCounters,
    ) -> StabilizationReport {
        StabilizationReport {
            steps_run: steps,
            moves,
            stop,
            last_violation: self.last_violation,
            violation_count: self.violations,
            stabilization_steps: self.last_violation.map_or(0, |i| i + 1),
            first_legitimate: self.first_legitimate,
            legitimacy_entry: self.last_illegitimate.map_or(0, |i| i + 1),
            ended_legitimate: self.ended_legitimate(),
            counters,
        }
    }
}

/// [`run_batch_measured_with`] under the synchronous daemon (the original
/// measured entry point, kept as the common case's short name).
///
/// # Panics
///
/// Panics when `inits` is empty or a configuration's size does not match
/// the graph.
#[must_use]
pub fn run_batch_measured<P: PackedProtocol>(
    graph: &Graph,
    protocol: &P,
    inits: Vec<Configuration<P::State>>,
    max_steps: usize,
    safety: &ConfigPredicate<P::State>,
    legitimacy: &ConfigPredicate<P::State>,
    early_stop: Option<(&ConfigPredicate<P::State>, usize)>,
) -> Vec<(StabilizationReport, Configuration<P::State>)> {
    run_batch_measured_with(
        graph,
        protocol,
        BatchDaemon::Sync,
        &[],
        inits,
        max_steps,
        safety,
        legitimacy,
        early_stop,
    )
}

/// [`run_batch_with`] with the full per-lane measurement stack: each lane
/// gets the [`StabilizationReport`] a scalar
/// [`MeasurementContext`](crate::measure::MeasurementContext) (optionally
/// with early stop) would produce from the same initial configuration
/// under the matching daemon, plus its final configuration. For the
/// random daemons, `lane_seeds[l]` must be the seed the scalar daemon
/// for replica `l` was constructed with (deterministic daemons pass
/// `&[]`).
///
/// `early_stop` mirrors
/// [`MeasurementContext::with_early_stop`](crate::measure::MeasurementContext::with_early_stop):
/// `(predicate, margin)` stops a lane once the predicate has held for
/// `margin + 1` consecutive configurations.
///
/// # Panics
///
/// Panics when `inits` is empty, a configuration's size does not match
/// the graph, or a random daemon's `lane_seeds` length does not match
/// `inits.len()`.
#[must_use]
#[allow(clippy::too_many_arguments)]
pub fn run_batch_measured_with<P: PackedProtocol>(
    graph: &Graph,
    protocol: &P,
    daemon: BatchDaemon,
    lane_seeds: &[u64],
    inits: Vec<Configuration<P::State>>,
    max_steps: usize,
    safety: &ConfigPredicate<P::State>,
    legitimacy: &ConfigPredicate<P::State>,
    early_stop: Option<(&ConfigPredicate<P::State>, usize)>,
) -> Vec<(StabilizationReport, Configuration<P::State>)> {
    match daemon {
        BatchDaemon::Sync => run_batch_measured_sync(
            graph, protocol, inits, max_steps, safety, legitimacy, early_stop,
        ),
        _ => run_batch_measured_divergent(
            graph, protocol, daemon, lane_seeds, inits, max_steps, safety, legitimacy, early_stop,
        ),
    }
}

fn run_batch_measured_sync<P: PackedProtocol>(
    graph: &Graph,
    protocol: &P,
    inits: Vec<Configuration<P::State>>,
    max_steps: usize,
    safety: &ConfigPredicate<P::State>,
    legitimacy: &ConfigPredicate<P::State>,
    early_stop: Option<(&ConfigPredicate<P::State>, usize)>,
) -> Vec<(StabilizationReport, Configuration<P::State>)> {
    let (n, lanes) = check_batch_args(graph, &inits);
    let mut soa = pack_soa(protocol, n, &inits);
    let mut next = soa.clone();
    let mut fired = vec![false; n * lanes];
    let mut scratch = P::LaneScratch::default();
    let mut ls = LaneState::new(lanes);
    // The init configurations double as per-lane mirrors for predicate
    // evaluation, repaired incrementally from the fired set each commit —
    // O(moves) per step per lane, no clones.
    let mut mirrors = inits;
    let mut monitors: Vec<LaneMonitors> = mirrors
        .iter()
        .map(|m| LaneMonitors::start(m, graph, safety, legitimacy, early_stop.as_ref()))
        .collect();

    while ls.active > 0 {
        protocol.step_lanes(graph, lanes, &soa, &mut next, &mut fired, &mut scratch);
        count_fired(n, lanes, &fired, &mut ls.fired_count);
        let margin = early_stop.as_ref().map(|&(_, m)| m);
        let committed = measured_stop_checks(&mut ls, &monitors, n, max_steps, margin);
        ls.charge_pass(lanes, committed);
        // Commit, then repair the per-lane mirrors to match, then run the
        // monitor checks at the post-commit step index (the scalar
        // observers see `event.step` = steps-after-increment). Under Sync
        // the repair covers the whole fired set.
        commit_fired(n, lanes, &ls.commit, &fired, &next, &mut soa);
        for v in 0..n {
            let base = v * lanes;
            for l in 0..lanes {
                if fired[base + l] && ls.commit[l] {
                    mirrors[l].set(VertexId::new(v), protocol.unpack(next[base + l]));
                }
            }
        }
        for l in 0..lanes {
            if ls.commit[l] {
                let moved = u64::from(ls.fired_count[l]);
                ls.steps[l] += 1;
                ls.moves[l] += moved;
                ls.counters[l].delta_bytes += moved * 2 * std::mem::size_of::<P::State>() as u64;
                monitors[l].step(
                    ls.steps[l],
                    &mirrors[l],
                    graph,
                    safety,
                    legitimacy,
                    early_stop.as_ref(),
                );
            }
        }
    }

    ls.flush_telemetry(lanes);
    collect_measured(monitors, mirrors, ls)
}

#[allow(clippy::too_many_arguments)]
fn run_batch_measured_divergent<P: PackedProtocol>(
    graph: &Graph,
    protocol: &P,
    daemon: BatchDaemon,
    lane_seeds: &[u64],
    inits: Vec<Configuration<P::State>>,
    max_steps: usize,
    safety: &ConfigPredicate<P::State>,
    legitimacy: &ConfigPredicate<P::State>,
    early_stop: Option<(&ConfigPredicate<P::State>, usize)>,
) -> Vec<(StabilizationReport, Configuration<P::State>)> {
    let (n, lanes) = check_batch_args(graph, &inits);
    let mut soa = pack_soa(protocol, n, &inits);
    let mut next = soa.clone();
    let mut fired = vec![false; n * lanes];
    let mut scratch = P::LaneScratch::default();
    let mut ls = LaneState::new(lanes);
    let mut ds = DivergentState::new(daemon, n, lanes, lane_seeds, false);
    let mut mirrors = inits;
    let mut monitors: Vec<LaneMonitors> = mirrors
        .iter()
        .map(|m| LaneMonitors::start(m, graph, safety, legitimacy, early_stop.as_ref()))
        .collect();
    protocol.step_lanes(graph, lanes, &soa, &mut next, &mut fired, &mut scratch);
    ds.diff_all_rows(&fired);

    while ls.active > 0 {
        ls.fired_count.copy_from_slice(&ds.cnt);
        let margin = early_stop.as_ref().map(|&(_, m)| m);
        let committed = measured_stop_checks(&mut ls, &monitors, n, max_steps, margin);
        if committed == 0 {
            break;
        }
        ls.charge_pass(lanes, committed);
        ds.select(&ls.commit);
        // Commit and repair each lane's mirror in one walk, then run the
        // monitor checks at the post-commit step index — the scalar
        // observers see every move of the step applied before the check.
        ds.commit(graph, &ls.commit, &next, &mut soa, |l, v, val| {
            mirrors[l].set(VertexId::new(v), protocol.unpack(val));
        });
        for l in 0..lanes {
            if ls.commit[l] {
                let moved = ds.moved(l);
                ls.steps[l] += 1;
                ls.moves[l] += moved;
                ls.counters[l].delta_bytes += moved * 2 * std::mem::size_of::<P::State>() as u64;
                monitors[l].step(
                    ls.steps[l],
                    &mirrors[l],
                    graph,
                    safety,
                    legitimacy,
                    early_stop.as_ref(),
                );
            }
        }
        ds.refresh(graph, protocol, &soa, &mut next, &mut fired, &mut scratch);
    }

    ls.flush_telemetry(lanes);
    collect_measured(monitors, mirrors, ls)
}

/// The measured runners' shared stop-check pass: terminal, step limit,
/// observer request — the scalar engine's loop-top order. Returns how
/// many lanes will commit a step this pass.
fn measured_stop_checks(
    ls: &mut LaneState,
    monitors: &[LaneMonitors],
    n: usize,
    max_steps: usize,
    margin: Option<usize>,
) -> usize {
    let mut committed = 0usize;
    for (l, monitor) in monitors.iter().enumerate() {
        ls.commit[l] = false;
        if ls.stop[l].is_some() {
            continue;
        }
        ls.counters[l].guard_evals += n as u64;
        if ls.fired_count[l] == 0 {
            ls.stop[l] = Some(StopReason::Terminal);
            ls.active -= 1;
        } else if ls.steps[l] >= max_steps {
            ls.stop[l] = Some(StopReason::MaxSteps);
            ls.active -= 1;
        } else if monitor.should_stop(margin) {
            ls.stop[l] = Some(StopReason::ObserverRequest);
            ls.active -= 1;
        } else {
            ls.commit[l] = true;
            committed += 1;
        }
    }
    committed
}

fn collect_measured<S>(
    monitors: Vec<LaneMonitors>,
    mirrors: Vec<Configuration<S>>,
    ls: LaneState,
) -> Vec<(StabilizationReport, Configuration<S>)> {
    monitors
        .into_iter()
        .zip(mirrors)
        .enumerate()
        .map(|(l, (m, final_config))| {
            let report = m.into_report(
                ls.steps[l],
                ls.moves[l],
                ls.stop[l].expect("every lane stopped"),
                ls.counters[l],
            );
            (report, final_config)
        })
        .collect()
}
