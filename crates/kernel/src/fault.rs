//! Transient fault injection.
//!
//! Self-stabilization models transient faults as an *arbitrary initial
//! configuration*: whatever a fault burst did to the state, the protocol
//! must recover. Two entry points:
//!
//! * [`crate::protocol::random_configuration`] — a full burst (every vertex
//!   corrupted), the standard worst case;
//! * [`inject_faults`] — a partial burst hitting `k` chosen-at-random
//!   vertices of an otherwise healthy configuration, modelling the
//!   "speculative" scenario where faults are rare and local.

use crate::config::Configuration;
use crate::protocol::Protocol;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use specstab_topology::{Graph, VertexId};

/// Corrupts `k` distinct uniformly-chosen vertices of `config` with
/// arbitrary states. Returns the faulty configuration and the vertices hit.
///
/// Allocating wrapper over [`inject_faults_in_place`].
///
/// # Panics
///
/// Panics if `k > graph.n()`.
#[must_use]
pub fn inject_faults<P: Protocol>(
    config: &Configuration<P::State>,
    graph: &Graph,
    protocol: &P,
    k: usize,
    rng: &mut StdRng,
) -> (Configuration<P::State>, Vec<VertexId>) {
    let mut faulty = config.clone();
    let victims = inject_faults_in_place(&mut faulty, graph, protocol, k, rng);
    (faulty, victims)
}

/// Corrupts `k` distinct uniformly-chosen vertices of `config` **in
/// place** with arbitrary states, returning the vertices hit (sorted).
/// Callers that already own the healthy configuration (e.g. the campaign
/// executor building burst scenarios) avoid the clone of [`inject_faults`].
///
/// # Panics
///
/// Panics if `k > graph.n()`.
pub fn inject_faults_in_place<P: Protocol>(
    config: &mut Configuration<P::State>,
    graph: &Graph,
    protocol: &P,
    k: usize,
    rng: &mut StdRng,
) -> Vec<VertexId> {
    assert!(k <= graph.n(), "cannot corrupt more vertices than the graph has");
    let mut victims: Vec<VertexId> = graph.vertices().collect();
    victims.shuffle(rng);
    victims.truncate(k);
    victims.sort_unstable();
    for &v in &victims {
        config.set(v, protocol.random_state(v, rng));
    }
    victims
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{RuleId, RuleInfo, View};
    use rand::SeedableRng;
    use specstab_topology::generators;

    struct Const;
    impl Protocol for Const {
        type State = u8;
        fn name(&self) -> String {
            "const".into()
        }
        fn rules(&self) -> Vec<RuleInfo> {
            vec![RuleInfo::new("NOOP")]
        }
        fn enabled_rule(&self, _view: &View<'_, u8>) -> Option<RuleId> {
            None
        }
        fn apply(&self, view: &View<'_, u8>, _rule: RuleId) -> u8 {
            *view.state()
        }
        fn random_state(&self, _v: VertexId, rng: &mut StdRng) -> u8 {
            use rand::Rng;
            rng.gen_range(100..=200)
        }
    }

    #[test]
    fn injects_exactly_k_faults() {
        let g = generators::ring(10).unwrap();
        let healthy = Configuration::new(vec![0u8; 10]);
        let mut rng = StdRng::seed_from_u64(1);
        let (faulty, victims) = inject_faults(&healthy, &g, &Const, 3, &mut rng);
        assert_eq!(victims.len(), 3);
        let changed: Vec<VertexId> =
            faulty.iter().filter(|(_, &s)| s != 0).map(|(v, _)| v).collect();
        assert_eq!(changed, victims);
    }

    #[test]
    fn zero_faults_is_identity() {
        let g = generators::ring(5).unwrap();
        let healthy = Configuration::new(vec![7u8; 5]);
        let mut rng = StdRng::seed_from_u64(2);
        let (faulty, victims) = inject_faults(&healthy, &g, &Const, 0, &mut rng);
        assert!(victims.is_empty());
        assert_eq!(faulty, healthy);
    }

    #[test]
    fn full_burst_touches_all() {
        let g = generators::ring(5).unwrap();
        let healthy = Configuration::new(vec![7u8; 5]);
        let mut rng = StdRng::seed_from_u64(3);
        let (_, victims) = inject_faults(&healthy, &g, &Const, 5, &mut rng);
        assert_eq!(victims.len(), 5);
    }

    #[test]
    #[should_panic(expected = "cannot corrupt")]
    fn rejects_k_above_n() {
        let g = generators::ring(5).unwrap();
        let healthy = Configuration::new(vec![7u8; 5]);
        let mut rng = StdRng::seed_from_u64(4);
        let _ = inject_faults(&healthy, &g, &Const, 6, &mut rng);
    }

    #[test]
    fn deterministic_per_seed() {
        let g = generators::ring(8).unwrap();
        let healthy = Configuration::new(vec![0u8; 8]);
        let a = inject_faults(&healthy, &g, &Const, 4, &mut StdRng::seed_from_u64(9));
        let b = inject_faults(&healthy, &g, &Const, 4, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }
}
