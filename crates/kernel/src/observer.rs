//! Execution observers: monitors threaded through the engine's step loop.
//!
//! Observers receive the initial configuration and every transition. They
//! power stabilization measurement ([`SafetyMonitor`],
//! [`LegitimacyMonitor`]), accounting ([`MoveCounter`], [`RoundCounter`]),
//! trace capture ([`ConfigTrace`]) and early stopping
//! ([`StopAfterStable`]).
//!
//! Every [`StepEvent`] carries the step's `(vertex, before, after)` state
//! **delta** alongside borrowed before/after configurations, so observers
//! that persist execution history (like [`ConfigTrace`]) store the deltas —
//! `O(moves)` memory — instead of cloning the full configuration twice per
//! step.

use crate::config::Configuration;
use crate::protocol::RuleId;
use specstab_topology::{Graph, VertexId};

/// One engine transition, as seen by observers.
pub struct StepEvent<'a, S> {
    /// Index of `after` in the execution (the initial configuration has
    /// index 0, so `step` is also the number of actions executed so far).
    pub step: usize,
    /// Configuration before the action.
    pub before: &'a Configuration<S>,
    /// Configuration after the action.
    pub after: &'a Configuration<S>,
    /// `(vertex, rule)` pairs that fired during the action.
    pub activated: &'a [(VertexId, RuleId)],
    /// Per-activated-vertex state delta `(vertex, state before, state
    /// after)`, in the same order as `activated`. `before` and `after` may
    /// be equal when a rule rewrites a state to itself.
    pub delta: &'a [(VertexId, S, S)],
    /// Vertices enabled in `after` (sorted).
    pub enabled_after: &'a [VertexId],
    /// The communication graph.
    pub graph: &'a Graph,
}

/// Observer of an execution.
pub trait Observer<S> {
    /// Called once with the initial configuration.
    fn on_start(&mut self, config: &Configuration<S>, graph: &Graph) {
        let _ = (config, graph);
    }

    /// Called after every action.
    fn on_step(&mut self, event: &StepEvent<'_, S>);

    /// Polled before each action; returning `true` stops the run.
    fn should_stop(&self) -> bool {
        false
    }
}

/// Predicate over configurations, with graph context.
///
/// `Send` so monitors (and the runs built on them) can move across worker
/// threads — e.g. the campaign executor's sharded cells.
pub type ConfigPredicate<S> = Box<dyn Fn(&Configuration<S>, &Graph) -> bool + Send>;

/// Tracks violations of a safety predicate across the whole execution.
///
/// The measured stabilization time of an execution (w.r.t. safety) is
/// `last_violation + 1`, or `0` when no configuration ever violates safety.
pub struct SafetyMonitor<S> {
    safe: ConfigPredicate<S>,
    violations: usize,
    first_violation: Option<usize>,
    last_violation: Option<usize>,
}

impl<S> SafetyMonitor<S> {
    /// Creates a monitor for the given safety predicate.
    #[must_use]
    pub fn new(safe: ConfigPredicate<S>) -> Self {
        Self { safe, violations: 0, first_violation: None, last_violation: None }
    }

    /// Number of unsafe configurations seen (counting multiplicity).
    #[must_use]
    pub fn violations(&self) -> usize {
        self.violations
    }

    /// Index of the first unsafe configuration.
    #[must_use]
    pub fn first_violation(&self) -> Option<usize> {
        self.first_violation
    }

    /// Index of the last unsafe configuration.
    #[must_use]
    pub fn last_violation(&self) -> Option<usize> {
        self.last_violation
    }

    /// `last_violation + 1`: the measured (per-execution) stabilization
    /// time with respect to safety.
    #[must_use]
    pub fn measured_stabilization(&self) -> usize {
        self.last_violation.map_or(0, |i| i + 1)
    }

    fn check(&mut self, index: usize, config: &Configuration<S>, graph: &Graph) {
        if !(self.safe)(config, graph) {
            self.violations += 1;
            self.first_violation.get_or_insert(index);
            self.last_violation = Some(index);
        }
    }
}

impl<S> Observer<S> for SafetyMonitor<S> {
    fn on_start(&mut self, config: &Configuration<S>, graph: &Graph) {
        self.check(0, config, graph);
    }
    fn on_step(&mut self, event: &StepEvent<'_, S>) {
        self.check(event.step, event.after, event.graph);
    }
}

/// Tracks entry into a legitimacy predicate (expected to be closed).
pub struct LegitimacyMonitor<S> {
    legitimate: ConfigPredicate<S>,
    first_legitimate: Option<usize>,
    last_illegitimate: Option<usize>,
    seen: usize,
}

impl<S> LegitimacyMonitor<S> {
    /// Creates a monitor for the given legitimacy predicate.
    #[must_use]
    pub fn new(legitimate: ConfigPredicate<S>) -> Self {
        Self { legitimate, first_legitimate: None, last_illegitimate: None, seen: 0 }
    }

    /// First index at which the predicate held.
    #[must_use]
    pub fn first_legitimate(&self) -> Option<usize> {
        self.first_legitimate
    }

    /// `last_illegitimate + 1`: the index from which the predicate held for
    /// the rest of the (observed) execution. `0` when it always held.
    #[must_use]
    pub fn entry_index(&self) -> usize {
        self.last_illegitimate.map_or(0, |i| i + 1)
    }

    /// Whether the final observed configuration was legitimate.
    #[must_use]
    pub fn currently_legitimate(&self) -> bool {
        match (self.first_legitimate, self.last_illegitimate) {
            (Some(_), None) => true,
            (Some(f), Some(l)) => f > l || self.seen > l + 1,
            _ => false,
        }
    }

    fn check(&mut self, index: usize, config: &Configuration<S>, graph: &Graph) {
        self.seen = index + 1;
        if (self.legitimate)(config, graph) {
            self.first_legitimate.get_or_insert(index);
        } else {
            self.last_illegitimate = Some(index);
        }
    }
}

impl<S> Observer<S> for LegitimacyMonitor<S> {
    fn on_start(&mut self, config: &Configuration<S>, graph: &Graph) {
        self.check(0, config, graph);
    }
    fn on_step(&mut self, event: &StepEvent<'_, S>) {
        self.check(event.step, event.after, event.graph);
    }
}

/// Requests a stop once a predicate has held for `margin + 1` consecutive
/// configurations (used to end runs shortly after reaching a closed
/// legitimate region instead of burning the full step budget).
pub struct StopAfterStable<S> {
    pred: ConfigPredicate<S>,
    margin: usize,
    consecutive: usize,
}

impl<S> StopAfterStable<S> {
    /// Stops after `pred` holds for `margin + 1` consecutive configurations.
    #[must_use]
    pub fn new(pred: ConfigPredicate<S>, margin: usize) -> Self {
        Self { pred, margin, consecutive: 0 }
    }
}

impl<S> Observer<S> for StopAfterStable<S> {
    fn on_start(&mut self, config: &Configuration<S>, graph: &Graph) {
        self.consecutive = usize::from((self.pred)(config, graph));
    }
    fn on_step(&mut self, event: &StepEvent<'_, S>) {
        if (self.pred)(event.after, event.graph) {
            self.consecutive += 1;
        } else {
            self.consecutive = 0;
        }
    }
    fn should_stop(&self) -> bool {
        self.consecutive > self.margin
    }
}

/// Per-vertex and per-rule move accounting.
#[derive(Clone, Debug, Default)]
pub struct MoveCounter {
    per_vertex: Vec<u64>,
    per_rule: Vec<u64>,
    total: u64,
}

impl MoveCounter {
    /// Creates an empty counter (sized lazily at `on_start`).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Moves executed by vertex `v`.
    #[must_use]
    pub fn moves_of(&self, v: VertexId) -> u64 {
        self.per_vertex.get(v.index()).copied().unwrap_or(0)
    }

    /// Moves per rule index.
    #[must_use]
    pub fn per_rule(&self) -> &[u64] {
        &self.per_rule
    }

    /// Total moves.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }
}

impl<S> Observer<S> for MoveCounter {
    fn on_start(&mut self, config: &Configuration<S>, _graph: &Graph) {
        self.per_vertex = vec![0; config.len()];
    }
    fn on_step(&mut self, event: &StepEvent<'_, S>) {
        for &(v, rule) in event.activated {
            self.per_vertex[v.index()] += 1;
            if self.per_rule.len() <= rule.index() {
                self.per_rule.resize(rule.index() + 1, 0);
            }
            self.per_rule[rule.index()] += 1;
            self.total += 1;
        }
    }
}

/// Asynchronous round accounting.
///
/// A round ends once every vertex that was enabled at the round's start has
/// either moved or become disabled at some intermediate configuration.
/// Under the synchronous daemon every step is exactly one round.
#[derive(Clone, Debug, Default)]
pub struct RoundCounter {
    pending: Vec<VertexId>,
    rounds: usize,
}

impl RoundCounter {
    /// Creates the counter.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Completed rounds so far.
    #[must_use]
    pub fn rounds(&self) -> usize {
        self.rounds
    }
}

impl<S> Observer<S> for RoundCounter {
    fn on_start(&mut self, _config: &Configuration<S>, _graph: &Graph) {
        self.pending.clear();
        self.rounds = 0;
    }
    fn on_step(&mut self, event: &StepEvent<'_, S>) {
        if self.pending.is_empty() {
            // Start of a new round: everyone enabled *before* this action.
            // `before`-enabled = activated ∪ (enabled_after ∩ not-activated)
            // is not reconstructible exactly, so seed from the previous
            // event's `enabled_after`; for the very first action the round
            // begins with the activated set (a sound under-approximation:
            // rounds counted this way never exceed the true count).
            self.pending = event.activated.iter().map(|&(v, _)| v).collect();
        }
        let moved: Vec<VertexId> = event.activated.iter().map(|&(v, _)| v).collect();
        self.pending.retain(|v| !moved.contains(v) && event.enabled_after.binary_search(v).is_ok());
        if self.pending.is_empty() {
            self.rounds += 1;
            // Terminal configuration: the pending set stays empty and
            // no new round starts.
            self.pending = event.enabled_after.to_vec();
        }
    }
}

/// Records the full execution as the start configuration plus per-step
/// state deltas, reconstructing configurations on demand.
///
/// The former `TraceRecorder` cloned the full configuration on `on_start`
/// *and* on every `on_step` — `O(steps · n)` memory and two clones per
/// step. `ConfigTrace` stores the start configuration once and `O(moves)`
/// deltas; [`ConfigTrace::configs`] replays them forward when a caller
/// actually needs materialized configurations. Intended for short
/// executions (debugging, the lower-bound constructions, spec liveness
/// checks).
#[derive(Clone, Debug)]
pub struct ConfigTrace<S> {
    start: Option<Configuration<S>>,
    deltas: Vec<Vec<(VertexId, S, S)>>,
    activations: Vec<Vec<(VertexId, RuleId)>>,
}

/// Backwards-compatible name for [`ConfigTrace`].
pub type TraceRecorder<S> = ConfigTrace<S>;

impl<S: Clone> ConfigTrace<S> {
    /// Creates an empty trace.
    #[must_use]
    pub fn new() -> Self {
        Self { start: None, deltas: Vec::new(), activations: Vec::new() }
    }

    /// Number of recorded configurations (`steps + 1`, or 0 before any
    /// run started).
    #[must_use]
    pub fn len(&self) -> usize {
        match self.start {
            Some(_) => self.deltas.len() + 1,
            None => 0,
        }
    }

    /// Whether nothing has been recorded yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.start.is_none()
    }

    /// The initial configuration `γ_0`, if a run has started.
    #[must_use]
    pub fn start(&self) -> Option<&Configuration<S>> {
        self.start.as_ref()
    }

    /// The per-step `(vertex, before, after)` deltas, `deltas()[i]` being
    /// the transition `γ_i → γ_{i+1}`.
    #[must_use]
    pub fn deltas(&self) -> &[Vec<(VertexId, S, S)>] {
        &self.deltas
    }

    /// Reconstructs configuration `γ_i` by replaying deltas from the start.
    ///
    /// # Panics
    ///
    /// Panics if nothing was recorded or `i >= len()`.
    #[must_use]
    pub fn config_at(&self, i: usize) -> Configuration<S> {
        assert!(i < self.len(), "trace index {i} out of range (len {})", self.len());
        let mut c = self.start.as_ref().expect("trace recorded").clone();
        for step in &self.deltas[..i] {
            for (v, _, after) in step {
                c.set(*v, after.clone());
            }
        }
        c
    }

    /// Reconstructs all configurations `γ_0 ..= γ_steps` in one forward
    /// replay (allocates; the trace itself only stores deltas).
    #[must_use]
    pub fn configs(&self) -> Vec<Configuration<S>> {
        let Some(start) = &self.start else { return Vec::new() };
        let mut out = Vec::with_capacity(self.deltas.len() + 1);
        out.push(start.clone());
        for step in &self.deltas {
            let mut c = out.last().expect("nonempty").clone();
            for (v, _, after) in step {
                c.set(*v, after.clone());
            }
            out.push(c);
        }
        out
    }

    /// Activations of action `i` (the transition `γ_i → γ_{i+1}`).
    #[must_use]
    pub fn activations(&self) -> &[Vec<(VertexId, RuleId)>] {
        &self.activations
    }

    /// Restriction of the recorded execution to vertex `v` (Definition 8 of
    /// the paper): the sequence of `v`'s states. Replays only `v`'s deltas,
    /// so this is `O(steps)` — no configuration materialization.
    #[must_use]
    pub fn restriction(&self, v: VertexId) -> Vec<S> {
        let Some(start) = &self.start else { return Vec::new() };
        let mut out = Vec::with_capacity(self.deltas.len() + 1);
        let mut cur = start.get(v).clone();
        out.push(cur.clone());
        for step in &self.deltas {
            if let Some((_, _, after)) = step.iter().find(|(u, _, _)| *u == v) {
                cur = after.clone();
            }
            out.push(cur.clone());
        }
        out
    }
}

impl<S: Clone> Default for ConfigTrace<S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<S: Clone> Observer<S> for ConfigTrace<S> {
    fn on_start(&mut self, config: &Configuration<S>, _graph: &Graph) {
        self.deltas.clear();
        self.activations.clear();
        self.start = Some(config.clone());
    }
    fn on_step(&mut self, event: &StepEvent<'_, S>) {
        self.deltas.push(event.delta.to_vec());
        self.activations.push(event.activated.to_vec());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::daemon::SynchronousDaemon;
    use crate::engine::{RunLimits, Simulator};
    use crate::protocol::{Protocol, RuleInfo, View};
    use rand::rngs::StdRng;
    use rand::Rng;
    use specstab_topology::generators;

    struct MaxProto;
    impl Protocol for MaxProto {
        type State = u32;
        fn name(&self) -> String {
            "max".into()
        }
        fn rules(&self) -> Vec<RuleInfo> {
            vec![RuleInfo::new("ADOPT")]
        }
        fn enabled_rule(&self, view: &View<'_, u32>) -> Option<RuleId> {
            let best = view.neighbor_states().map(|(_, &s)| s).max().unwrap_or(0);
            (best > *view.state()).then_some(RuleId::new(0))
        }
        fn apply(&self, view: &View<'_, u32>, _rule: RuleId) -> u32 {
            view.neighbor_states().map(|(_, &s)| s).max().unwrap()
        }
        fn random_state(&self, _v: VertexId, rng: &mut StdRng) -> u32 {
            rng.gen_range(0..16)
        }
    }

    fn run_path6(observers: &mut [&mut dyn Observer<u32>]) -> usize {
        let g = generators::path(6).unwrap();
        let sim = Simulator::new(&g, &MaxProto);
        let init = Configuration::from_fn(6, |v| if v.index() == 0 { 9 } else { 0 });
        let mut d = SynchronousDaemon::new();
        sim.run(init, &mut d, RunLimits::with_max_steps(100), observers).steps
    }

    #[test]
    fn safety_monitor_tracks_last_violation() {
        // "Safe" = all states equal; holds only at the end.
        let mut mon = SafetyMonitor::new(Box::new(|c: &Configuration<u32>, _| {
            c.states().iter().all(|&s| s == c.states()[0])
        }));
        let steps = run_path6(&mut [&mut mon]);
        assert_eq!(steps, 5);
        assert_eq!(mon.first_violation(), Some(0));
        assert_eq!(mon.last_violation(), Some(4));
        assert_eq!(mon.measured_stabilization(), 5);
        assert_eq!(mon.violations(), 5);
    }

    #[test]
    fn safety_monitor_zero_for_always_safe() {
        let mut mon = SafetyMonitor::new(Box::new(|_: &Configuration<u32>, _| true));
        run_path6(&mut [&mut mon]);
        assert_eq!(mon.measured_stabilization(), 0);
        assert_eq!(mon.violations(), 0);
    }

    #[test]
    fn legitimacy_monitor_entry_index() {
        let mut mon = LegitimacyMonitor::new(Box::new(|c: &Configuration<u32>, _| {
            c.states().iter().all(|&s| s == 9)
        }));
        run_path6(&mut [&mut mon]);
        assert_eq!(mon.first_legitimate(), Some(5));
        assert_eq!(mon.entry_index(), 5);
        assert!(mon.currently_legitimate());
    }

    #[test]
    fn stop_after_stable_cuts_run_short() {
        let g = generators::path(6).unwrap();
        let sim = Simulator::new(&g, &MaxProto);
        let init = Configuration::from_fn(6, |v| if v.index() == 0 { 9 } else { 0 });
        let mut d = SynchronousDaemon::new();
        // Predicate true from γ_3 onwards: first four vertices done.
        let mut stopper = StopAfterStable::new(
            Box::new(|c: &Configuration<u32>, _| c.states()[..3].iter().all(|&s| s == 9)),
            0,
        );
        let s = sim.run(init, &mut d, RunLimits::with_max_steps(100), &mut [&mut stopper]);
        assert_eq!(s.stop, crate::engine::StopReason::ObserverRequest);
        assert!(s.steps < 5);
    }

    #[test]
    fn move_counter_totals() {
        let mut mc = MoveCounter::new();
        run_path6(&mut [&mut mc]);
        // Steps: γ0→γ1 activates v1; γ1→γ2 activates v2; ... one vertex per
        // sync step on this instance.
        assert_eq!(mc.total(), 5);
        assert_eq!(mc.moves_of(VertexId::new(1)), 1);
        assert_eq!(mc.moves_of(VertexId::new(0)), 0);
        assert_eq!(mc.per_rule(), &[5]);
    }

    #[test]
    fn round_counter_counts_sync_steps_as_rounds() {
        let mut rc = RoundCounter::new();
        let steps = run_path6(&mut [&mut rc]);
        assert_eq!(rc.rounds(), steps);
    }

    #[test]
    fn trace_recorder_captures_everything() {
        let mut tr = TraceRecorder::new();
        let steps = run_path6(&mut [&mut tr]);
        assert_eq!(tr.configs().len(), steps + 1);
        assert_eq!(tr.activations().len(), steps);
        // Restriction to v5: stays 0 until the last step, then becomes 9.
        let r5 = tr.restriction(VertexId::new(5));
        assert_eq!(r5, vec![0, 0, 0, 0, 0, 9]);
    }
}
