//! Specification 2 of the paper: asynchronous unison (`specAU`).
//!
//! An execution satisfies `specAU` when every configuration belongs to the
//! legitimate set `Γ1` (safety) and every vertex's clock is incremented
//! infinitely often (liveness), where
//!
//! ```text
//! Γ1 = { γ | ∀v, ∀u ∈ neig(v): r_v ∈ stab_X ∧ r_u ∈ stab_X ∧ d_K(r_v, r_u) ≤ 1 }
//! ```

use crate::clock::{CherryClock, ClockValue};
use specstab_kernel::config::Configuration;
use specstab_kernel::observer::{Observer, StepEvent};
use specstab_kernel::spec::Specification;
use specstab_topology::{Graph, VertexId};

/// `specAU` for a given cherry clock.
#[derive(Copy, Clone, Debug)]
pub struct SpecAu {
    clock: CherryClock,
}

impl SpecAu {
    /// Creates the specification for `clock`.
    #[must_use]
    pub fn new(clock: CherryClock) -> Self {
        Self { clock }
    }

    /// Whether `config ∈ Γ1`: all registers correct, neighbor drift ≤ 1.
    #[must_use]
    pub fn in_gamma_one(&self, config: &Configuration<ClockValue>, graph: &Graph) -> bool {
        graph.edges().iter().all(|&(u, v)| {
            let (ru, rv) = (*config.get(u), *config.get(v));
            self.clock.is_stab(ru) && self.clock.is_stab(rv) && self.clock.d_k(ru, rv) <= 1
        }) && config.states().iter().all(|&r| self.clock.is_stab(r))
        // The second clause covers isolated vertices (n = 1).
    }

    /// Global drift bound within `Γ1` (paper remark): for any two vertices,
    /// `d_K(r_u, r_v) ≤ dist(u, v) ≤ diam(g)`. Checked explicitly by tests;
    /// exposed for the SSME safety argument.
    #[must_use]
    pub fn max_pairwise_drift(&self, config: &Configuration<ClockValue>) -> Option<i64> {
        let stab = config.states().iter().all(|&r| self.clock.is_stab(r));
        if !stab {
            return None;
        }
        let mut best = 0;
        for (i, &a) in config.states().iter().enumerate() {
            for &b in &config.states()[i + 1..] {
                best = best.max(self.clock.d_k(a, b));
            }
        }
        Some(best)
    }
}

impl Specification<ClockValue> for SpecAu {
    fn name(&self) -> String {
        "specAU".into()
    }

    /// Safety of `specAU` is `Γ1` membership itself.
    fn is_safe(&self, config: &Configuration<ClockValue>, graph: &Graph) -> bool {
        self.in_gamma_one(config, graph)
    }

    fn is_legitimate(&self, config: &Configuration<ClockValue>, graph: &Graph) -> bool {
        self.in_gamma_one(config, graph)
    }
}

/// Liveness observer: counts clock increments (NA/CA firings) per vertex.
///
/// After stabilization every window of `w` steps must show progress for
/// every vertex, for a window size depending on the daemon;
/// [`IncrementCounter::min_increments`] lets tests assert that.
#[derive(Clone, Debug, Default)]
pub struct IncrementCounter {
    per_vertex: Vec<u64>,
}

impl IncrementCounter {
    /// Creates the counter.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments executed by `v` so far.
    #[must_use]
    pub fn increments_of(&self, v: VertexId) -> u64 {
        self.per_vertex.get(v.index()).copied().unwrap_or(0)
    }

    /// Minimum per-vertex increment count.
    #[must_use]
    pub fn min_increments(&self) -> u64 {
        self.per_vertex.iter().copied().min().unwrap_or(0)
    }
}

impl Observer<ClockValue> for IncrementCounter {
    fn on_start(&mut self, config: &Configuration<ClockValue>, _graph: &Graph) {
        self.per_vertex = vec![0; config.len()];
    }
    fn on_step(&mut self, event: &StepEvent<'_, ClockValue>) {
        for &(v, rule) in event.activated {
            // NA and CA are increments; RA is not.
            if rule == crate::protocol::rules::NA || rule == crate::protocol::rules::CA {
                self.per_vertex[v.index()] += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::AsyncUnison;
    use specstab_kernel::daemon::SynchronousDaemon;
    use specstab_kernel::engine::{RunLimits, Simulator};
    use specstab_topology::generators;

    fn clock() -> CherryClock {
        CherryClock::new(3, 7).unwrap()
    }

    fn cfg(x: &CherryClock, raws: &[i64]) -> Configuration<ClockValue> {
        Configuration::new(raws.iter().map(|&r| x.value(r).unwrap()).collect())
    }

    #[test]
    fn gamma_one_accepts_unit_drift() {
        let x = clock();
        let spec = SpecAu::new(x);
        let g = generators::path(3).unwrap();
        assert!(spec.in_gamma_one(&cfg(&x, &[2, 3, 2]), &g));
        assert!(spec.in_gamma_one(&cfg(&x, &[6, 0, 6]), &g)); // wraparound
        assert!(spec.in_gamma_one(&cfg(&x, &[4, 4, 4]), &g));
    }

    #[test]
    fn gamma_one_rejects_large_drift_or_initial_values() {
        let x = clock();
        let spec = SpecAu::new(x);
        let g = generators::path(3).unwrap();
        assert!(!spec.in_gamma_one(&cfg(&x, &[2, 4, 2]), &g));
        assert!(!spec.in_gamma_one(&cfg(&x, &[-1, 0, 1]), &g));
    }

    #[test]
    fn safety_equals_legitimacy_for_spec_au() {
        let x = clock();
        let spec = SpecAu::new(x);
        let g = generators::ring(4).unwrap();
        for raws in [[1i64, 1, 1, 1], [1, 2, 3, 2], [0, -1, 0, 0]] {
            let c = cfg(&x, &raws);
            assert_eq!(spec.is_safe(&c, &g), spec.is_legitimate(&c, &g));
        }
    }

    #[test]
    fn max_pairwise_drift_within_gamma_one() {
        let x = clock();
        let spec = SpecAu::new(x);
        assert_eq!(spec.max_pairwise_drift(&cfg(&x, &[2, 3, 4])), Some(2));
        assert_eq!(spec.max_pairwise_drift(&cfg(&x, &[5, 5])), Some(0));
        assert_eq!(spec.max_pairwise_drift(&cfg(&x, &[-1, 5])), None);
    }

    #[test]
    fn increment_counter_counts_na_and_ca() {
        let x = clock();
        let p = AsyncUnison::new(x);
        let g = generators::ring(4).unwrap();
        let sim = Simulator::new(&g, &p);
        let init = cfg(&x, &[0, 0, 0, 0]);
        let mut d = SynchronousDaemon::new();
        let mut counter = IncrementCounter::new();
        let s = sim.run(init, &mut d, RunLimits::with_max_steps(14), &mut [&mut counter]);
        assert_eq!(s.steps, 14);
        for v in g.vertices() {
            assert_eq!(counter.increments_of(v), 14, "{v}");
        }
        assert_eq!(counter.min_increments(), 14);
    }
}
