//! The naive `min+1` synchronous unison — a cautionary contrast.
//!
//! A much simpler unison exists if one only cares about synchronous
//! executions: every vertex repeatedly sets its clock to
//! `min(closed neighborhood) + 1`. Under the synchronous daemon this
//! stabilizes to lockstep clocks within `ecc` steps. But it is **not**
//! self-stabilizing under asynchronous daemons — a central daemon can keep
//! the clocks apart forever (demonstrated *exactly* by the configuration
//! game graph in the tests below).
//!
//! This is the paper's speculation trade-off in miniature: SSME's extra
//! machinery (cherry clocks, resets) is precisely what buys correctness
//! *outside* the speculated synchronous case. Speculation must optimize
//! the likely case, never sacrifice the unlikely one.

use rand::rngs::StdRng;
use rand::Rng;
use specstab_kernel::config::Configuration;
use specstab_kernel::protocol::{Protocol, RuleId, RuleInfo, View};
use specstab_kernel::spec::Specification;
use specstab_topology::{Graph, VertexId};

/// Rule index: the unique `min+1` adjustment.
pub const TICK: RuleId = RuleId::new(0);

/// The naive `min+1` unison with clocks in `{0, .., cap}` (saturating).
///
/// The cap keeps the state domain finite for exhaustive analysis; at the
/// cap the protocol terminates (all clocks equal `cap`), which preserves
/// the "all equal" legitimacy notion used here.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct NaiveSyncUnison {
    cap: u64,
}

impl NaiveSyncUnison {
    /// Creates the protocol with the given clock cap (`cap >= 1`).
    ///
    /// # Panics
    ///
    /// Panics if `cap == 0`.
    #[must_use]
    pub fn new(cap: u64) -> Self {
        assert!(cap >= 1, "cap must be at least 1");
        Self { cap }
    }

    /// The clock cap.
    #[must_use]
    pub fn cap(&self) -> u64 {
        self.cap
    }

    fn target(&self, view: &View<'_, u64>) -> u64 {
        let me = *view.state();
        let min = view
            .neighbor_states()
            .map(|(_, &s)| s)
            .chain(std::iter::once(me))
            .min()
            .expect("closed neighborhood nonempty");
        (min + 1).min(self.cap)
    }
}

impl Protocol for NaiveSyncUnison {
    type State = u64;

    fn name(&self) -> String {
        format!("naive-sync-unison[cap={}]", self.cap)
    }

    fn rules(&self) -> Vec<RuleInfo> {
        vec![RuleInfo::new("TICK")]
    }

    fn enabled_rule(&self, view: &View<'_, u64>) -> Option<RuleId> {
        (*view.state() != self.target(view)).then_some(TICK)
    }

    fn apply(&self, view: &View<'_, u64>, _rule: RuleId) -> u64 {
        self.target(view)
    }

    fn random_state(&self, _v: VertexId, rng: &mut StdRng) -> u64 {
        rng.gen_range(0..=self.cap)
    }

    fn state_domain(&self, _v: VertexId) -> Option<Vec<u64>> {
        (self.cap <= 64).then(|| (0..=self.cap).collect())
    }
}

/// Lockstep specification: all clocks within one tick of each other
/// (the synchronous-unison analogue of `Γ1`).
#[derive(Copy, Clone, Debug)]
pub struct LockstepSpec;

impl Specification<u64> for LockstepSpec {
    fn name(&self) -> String {
        "spec(lockstep)".into()
    }
    fn is_safe(&self, config: &Configuration<u64>, graph: &Graph) -> bool {
        self.is_legitimate(config, graph)
    }
    fn is_legitimate(&self, config: &Configuration<u64>, graph: &Graph) -> bool {
        graph.edges().iter().all(|&(u, v)| config.get(u).abs_diff(*config.get(v)) <= 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use specstab_kernel::daemon::SynchronousDaemon;
    use specstab_kernel::engine::{RunLimits, Simulator};
    use specstab_kernel::protocol::random_configuration;
    use specstab_kernel::search::{
        build_config_graph, enumerate_all_configurations, worst_steps_to, SearchDaemon, SearchError,
    };
    use specstab_topology::generators;
    use specstab_topology::metrics::DistanceMatrix;

    #[test]
    fn synchronous_convergence_within_eccentricity_margin() {
        for g in [generators::path(8).unwrap(), generators::grid(3, 4).unwrap()] {
            let p = NaiveSyncUnison::new(1_000);
            let spec = LockstepSpec;
            let dm = DistanceMatrix::new(&g);
            let sim = Simulator::new(&g, &p);
            for seed in 0..10 {
                let mut rng = StdRng::seed_from_u64(seed);
                let init = random_configuration(&g, &p, &mut rng);
                let mut d = SynchronousDaemon::new();
                // Track first step where lockstep holds.
                let mut cfg = init;
                let mut entered = None;
                for step in 0..200usize {
                    if spec.is_legitimate(&cfg, &g) {
                        entered = Some(step);
                        break;
                    }
                    let enabled = sim.enabled_vertices(&cfg);
                    if enabled.is_empty() {
                        break;
                    }
                    let mut dd = &mut d;
                    let _ = &mut dd;
                    cfg = sim.apply_action(&cfg, &enabled).0;
                }
                let entered = entered.expect("must reach lockstep");
                assert!(
                    entered <= dm.diameter() as usize + 2,
                    "{} seed {seed}: lockstep after {entered} steps",
                    g.name()
                );
            }
        }
    }

    #[test]
    fn synchronous_daemon_reaches_terminal_lockstep_with_small_cap() {
        let g = generators::ring(5).unwrap();
        let p = NaiveSyncUnison::new(6);
        let sim = Simulator::new(&g, &p);
        let mut rng = StdRng::seed_from_u64(3);
        let init = random_configuration(&g, &p, &mut rng);
        let mut d = SynchronousDaemon::new();
        let s = sim.run(init, &mut d, RunLimits::with_max_steps(1_000), &mut []);
        // With a saturating cap everything ends equal to the cap.
        assert!(s.final_config.states().iter().all(|&x| x == 6));
    }

    #[test]
    fn central_daemon_delays_lockstep_linearly_in_the_clock_domain() {
        // THE punchline, exactly: on a 3-path the central daemon can keep
        // the clocks out of lockstep for 3·cap − 2 steps — the worst case
        // grows linearly with the clock-domain size. The real protocol
        // needs unbounded clocks, so its convergence time under the
        // central daemon is unbounded: the naive unison is NOT
        // self-stabilizing outside the speculated synchronous world.
        // (Contrast: the BPV unison's convergence is bounded by topology
        // constants only, independent of how large K is.)
        let g = generators::path(3).unwrap();
        let spec = LockstepSpec;
        for cap in [4u64, 8, 12] {
            let p = NaiveSyncUnison::new(cap);
            let all = enumerate_all_configurations(&g, &p, 10_000_000).unwrap();
            let cg = build_config_graph(&g, &p, &all, SearchDaemon::Central, 10_000_000).unwrap();
            let worst = worst_steps_to(&cg, |c| spec.is_legitimate(c, &g)).unwrap();
            let max = u64::from(*worst.iter().max().unwrap());
            assert_eq!(max, 3 * cap - 2, "cap={cap}");
        }
        // The error type for genuinely daemon-trapped protocols stays
        // available to callers (used by the E7 ablations).
        let _ = SearchError::Divergent;
    }

    #[test]
    fn cap_one_is_degenerate_but_valid() {
        let p = NaiveSyncUnison::new(1);
        assert_eq!(p.cap(), 1);
    }

    #[test]
    #[should_panic(expected = "cap must be at least 1")]
    fn cap_zero_rejected() {
        let _ = NaiveSyncUnison::new(0);
    }
}
