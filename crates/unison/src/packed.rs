//! Lane-packed asynchronous unison: the [`PackedProtocol`] impl that
//! powers replica-parallel batched stepping for unison and (by
//! delegation) SSME.
//!
//! Clock values pack into `i32` lanes (the cherry domain `[-α, K-1]` of
//! every practical instance fits comfortably). The guard arithmetic is
//! division-free: for both-stabilized values `a, b ∈ [0, K)`,
//! `(b - a) mod K` is one subtraction plus a branch-free conditional add
//! of `K`, replacing the two `rem_euclid` divisions of the scalar
//! [`CherryClock::d_k`](crate::clock::CherryClock::d_k) path — the inner
//! loops below are straight-line integer ops over the lane axis, which
//! is what lets the compiler vectorize them.

use crate::clock::ClockValue;
use crate::protocol::AsyncUnison;
use specstab_kernel::batch::PackedProtocol;
use specstab_topology::{Graph, VertexId};

/// Reusable lane accumulators for the packed unison step: one slot per
/// lane for the three universally-quantified neighbor conditions.
#[derive(Default)]
pub struct UnisonLaneScratch {
    all_correct: Vec<bool>,
    all_le: Vec<bool>,
    conv: Vec<bool>,
}

impl UnisonLaneScratch {
    fn resize(&mut self, lanes: usize) {
        self.all_correct.resize(lanes, true);
        self.all_le.resize(lanes, true);
        self.conv.resize(lanes, true);
    }
}

/// Evaluates one vertex's guard and successor across all lanes — the
/// shared per-vertex body of both `step_lanes` (which loops it over the
/// whole graph) and `eval_vertex_lanes` (the divergent engine's
/// touched-neighborhood refresh unit).
#[inline]
#[allow(clippy::too_many_arguments)] // the eval_vertex_lanes row signature plus protocol constants
fn eval_unison_row(
    graph: &Graph,
    v: VertexId,
    lanes: usize,
    k: i32,
    reset: i32,
    soa: &[i32],
    next: &mut [i32],
    fired: &mut [bool],
    scratch: &mut UnisonLaneScratch,
) {
    let base = v.index() * lanes;
    let rv = &soa[base..base + lanes];
    let all_correct = &mut scratch.all_correct[..lanes];
    let all_le = &mut scratch.all_le[..lanes];
    let conv = &mut scratch.conv[..lanes];
    all_correct.fill(true);
    all_le.fill(true);
    conv.fill(true);
    for &u in graph.neighbors(v) {
        let ru = &soa[u.index() * lanes..u.index() * lanes + lanes];
        for l in 0..lanes {
            let a = rv[l];
            let b = ru[l];
            // (b - a) mod K without division: exact whenever both
            // values are stabilized (the only case it is read).
            let mut fwd = b - a;
            fwd += (fwd >> 31) & k;
            // correct(a, b) = both stabilized ∧ d_K(a, b) ≤ 1,
            // and d_K ≤ 1 ⟺ fwd ≤ 1 ∨ fwd ≥ K-1.
            all_correct[l] &= (a >= 0) & (b >= 0) & ((fwd <= 1) | (fwd >= k - 1));
            // a ≤_l b ⟺ (b - a) mod K ≤ 1; only consumed when
            // all_correct holds, so non-stabilized garbage is inert.
            all_le[l] &= fwd <= 1;
            // is_init(b) ∧ a ≤_init b.
            conv[l] &= (b <= 0) & (a <= b);
        }
    }
    let fired_row = &mut fired[base..base + lanes];
    let next_row = &mut next[base..base + lanes];
    for l in 0..lanes {
        let a = rv[l];
        // The three rules are pairwise exclusive by construction
        // (NA needs allCorrect, RA needs ¬allCorrect; CA needs
        // a < 0, which forces ¬allCorrect on any non-isolated
        // vertex — and NA's all_le check subsumes it when there
        // are no neighbors).
        let na = all_correct[l] & all_le[l];
        let ca = (a < 0) & conv[l];
        let ra = !all_correct[l] & (a > 0);
        fired_row[l] = na | ca | ra;
        // φ(a): a+1 with wraparound at K (a < 0 never wraps).
        let inc = if a + 1 == k { 0 } else { a + 1 };
        next_row[l] = if ra { reset } else { inc };
    }
}

impl PackedProtocol for AsyncUnison {
    type Lane = i32;
    type LaneScratch = UnisonLaneScratch;

    fn pack(&self, state: &ClockValue) -> i32 {
        i32::try_from(state.raw()).expect("cherry clock domain fits i32 lanes")
    }

    fn unpack(&self, lane: i32) -> ClockValue {
        self.clock().value(i64::from(lane)).expect("packed step stays inside the cherry domain")
    }

    fn step_lanes(
        &self,
        graph: &Graph,
        lanes: usize,
        soa: &[i32],
        next: &mut [i32],
        fired: &mut [bool],
        scratch: &mut UnisonLaneScratch,
    ) {
        let k = i32::try_from(self.clock().k()).expect("cherry clock K fits i32 lanes");
        let reset = i32::try_from(-self.clock().alpha()).expect("cherry clock alpha fits i32");
        scratch.resize(lanes);
        for v in graph.vertices() {
            eval_unison_row(graph, v, lanes, k, reset, soa, next, fired, scratch);
        }
    }

    fn eval_vertex_lanes(
        &self,
        graph: &Graph,
        v: usize,
        lanes: usize,
        soa: &[i32],
        next: &mut [i32],
        fired: &mut [bool],
        scratch: &mut UnisonLaneScratch,
    ) {
        let k = i32::try_from(self.clock().k()).expect("cherry clock K fits i32 lanes");
        let reset = i32::try_from(-self.clock().alpha()).expect("cherry clock alpha fits i32");
        scratch.resize(lanes);
        eval_unison_row(graph, VertexId::new(v), lanes, k, reset, soa, next, fired, scratch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::CherryClock;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use specstab_kernel::batch::run_batch;
    use specstab_kernel::daemon::SynchronousDaemon;
    use specstab_kernel::engine::{RunLimits, Simulator};
    use specstab_kernel::protocol::random_configuration;
    use specstab_topology::generators;

    #[test]
    fn packed_sync_run_matches_scalar_lane_for_lane() {
        let g = generators::torus(3, 4).unwrap();
        let clock = CherryClock::new(6, 13).unwrap();
        let unison = AsyncUnison::new(clock);
        let inits: Vec<_> = (0..5)
            .map(|s| {
                let mut rng = StdRng::seed_from_u64(900 + s);
                random_configuration(&g, &unison, &mut rng)
            })
            .collect();
        let lanes = run_batch(&g, &unison, &inits, 300);
        for (lane, init) in lanes.iter().zip(&inits) {
            let mut d = SynchronousDaemon::new();
            let sim = Simulator::new(&g, &unison);
            let scalar = sim.run(init.clone(), &mut d, RunLimits::with_max_steps(300), &mut []);
            assert_eq!(lane.steps, scalar.steps);
            assert_eq!(lane.moves, scalar.moves);
            assert_eq!(lane.stop, scalar.stop);
            assert_eq!(lane.final_config, scalar.final_config);
        }
    }
}
