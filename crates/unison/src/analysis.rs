//! Theoretical stabilization bounds for the unison substrate, as used by
//! the paper's complexity proofs.
//!
//! * Boulinier, Petit & Villain (Algorithmica 2008, the paper's `[3]`):
//!   under the **synchronous** daemon the unison stabilizes to `Γ1` in at
//!   most `α + lcp(g) + diam(g)` steps.
//! * Devismes & Petit (TADDS 2012, the paper's `[7]`): under the **unfair
//!   distributed** daemon it stabilizes in at most
//!   `2·diam(g)·n³ + (α + 1)·n² + (α − 2·diam(g))·n` steps.
//!
//! These are the bounds invoked in the proofs of Theorems 2 (Case 3) and 3.

/// Synchronous stabilization bound `α + lcp(g) + diam(g)` (paper's `[3]`).
#[must_use]
pub fn sync_stabilization_bound(alpha: i64, lcp: usize, diam: u32) -> u64 {
    u64::try_from(alpha).expect("α ≥ 1") + lcp as u64 + u64::from(diam)
}

/// Unfair-distributed step bound
/// `2·diam·n³ + (α + 1)·n² + (α − 2·diam)·n` (paper's `[7]`).
///
/// The final term can be negative for large-diameter graphs; the bound is
/// computed in `i128` and clamped at zero (a vacuous negative bound never
/// arises for the paper's `α = n ≥ diam` choice, but the helper stays total).
#[must_use]
pub fn unfair_step_bound(n: usize, diam: u32, alpha: i64) -> u128 {
    let n = i128::try_from(n).expect("n fits i128");
    let d = i128::from(diam);
    let a = i128::from(alpha);
    let raw = 2 * d * n * n * n + (a + 1) * n * n + (a - 2 * d) * n;
    u128::try_from(raw.max(0)).expect("clamped at zero")
}

/// The bound the paper's Theorem 2 proof uses for SSME's synchronous
/// stabilization to `Γ1` (Case 3): `2n + diam(g)`, obtained from the `[3]`
/// bound with `α = n` and `lcp(g) ≤ n`.
#[must_use]
pub fn ssme_sync_gamma1_bound(n: usize, diam: u32) -> u64 {
    2 * n as u64 + u64::from(diam)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sync_bound_adds_three_terms() {
        assert_eq!(sync_stabilization_bound(5, 7, 3), 15);
        assert_eq!(sync_stabilization_bound(1, 0, 0), 1);
    }

    #[test]
    fn unfair_bound_matches_formula() {
        // n = 4, diam = 2, α = 4:
        // 2*2*64 + 5*16 + (4 - 4)*4 = 256 + 80 + 0 = 336.
        assert_eq!(unfair_step_bound(4, 2, 4), 336);
    }

    #[test]
    fn unfair_bound_clamps_negative() {
        // Degenerate parameters where the linear term dominates negatively
        // cannot happen with n ≥ 1, but the helper stays total:
        assert_eq!(unfair_step_bound(0, 5, 0), 0);
    }

    #[test]
    fn ssme_gamma1_bound() {
        assert_eq!(ssme_sync_gamma1_bound(10, 5), 25);
    }

    #[test]
    fn ssme_gamma1_bound_dominates_exact_sync_bound() {
        // 2n + diam must dominate α + lcp + diam when α = n and lcp ≤ n.
        for n in 1..20u64 {
            for lcp in 0..n as usize {
                for diam in 0..n as u32 {
                    assert!(
                        sync_stabilization_bound(n as i64, lcp, diam)
                            <= ssme_sync_gamma1_bound(n as usize, diam)
                    );
                }
            }
        }
    }
}
