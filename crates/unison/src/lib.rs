//! Cherry clocks and the self-stabilizing asynchronous unison substrate.
//!
//! The PODC 2013 paper builds its speculatively stabilizing mutual
//! exclusion (SSME) on top of the asynchronous unison protocol of
//! Boulinier, Petit & Villain (`[2]` in the paper). This crate implements
//! that substrate from scratch:
//!
//! * [`clock::CherryClock`] — the bounded clock `(cherry(α, K), φ)` of
//!   Figure 1, with the circular distance `d_K`, the local relation `≤_l`
//!   and the initial order `≤_init`;
//! * [`protocol::AsyncUnison`] — the three-rule (NA/CA/RA) protocol;
//! * [`spec::SpecAu`] — Specification 2 (`specAU`): the legitimate set
//!   `Γ1` and the increment-liveness observer;
//! * [`params`] — the `α ≥ hole(g) − 2`, `K > cyclo(g)` parameter rules,
//!   with exact validation on small graphs;
//! * [`analysis`] — the published stabilization bounds used by the paper's
//!   proofs.
//!
//! # Example
//!
//! ```
//! use specstab_kernel::daemon::SynchronousDaemon;
//! use specstab_kernel::measure::{measure_stabilization, MeasureSettings};
//! use specstab_kernel::protocol::random_configuration;
//! use specstab_kernel::spec::Specification;
//! use specstab_topology::generators;
//! use specstab_unison::clock::CherryClock;
//! use specstab_unison::protocol::AsyncUnison;
//! use specstab_unison::spec::SpecAu;
//! use rand::SeedableRng;
//!
//! let g = generators::ring(6).expect("n >= 3");
//! let clock = CherryClock::new(6, 7).expect("valid parameters");
//! let unison = AsyncUnison::new(clock);
//! let spec = SpecAu::new(clock);
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let init = random_configuration(&g, &unison, &mut rng);
//! let mut daemon = SynchronousDaemon::new();
//! let report = measure_stabilization(
//!     &g, &unison, &mut daemon, init,
//!     Box::new(move |c, g| spec.is_safe(c, g)),
//!     Box::new(move |c, g| spec.is_legitimate(c, g)),
//!     &MeasureSettings::new(200),
//! );
//! assert!(report.ended_legitimate);
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod clock;
pub mod packed;
pub mod params;
pub mod protocol;
pub mod spec;
pub mod sync_unison;

pub use clock::{CherryClock, ClockValue};
pub use protocol::AsyncUnison;
pub use spec::SpecAu;
