//! Clock-parameter selection and validation.
//!
//! The Boulinier–Petit–Villain unison is self-stabilizing for `specAU`
//! under the unfair distributed daemon on an anonymous graph `g` provided
//!
//! * `α ≥ hole(g) − 2` — guarantees convergence to `Γ1`;
//! * `K > cyclo(g)`   — guarantees liveness (each clock increments forever).
//!
//! Both constants are bounded by `n`, so `α = n`, `K > n` is always safe —
//! that is what SSME exploits. This module computes minimal parameters on
//! small graphs (exact `hole`/`cyclo`) and validates arbitrary parameter
//! choices; the ablation experiment (E7) drives the *invalid* side.

use crate::clock::{CherryClock, ClockError};
use specstab_topology::chordless::{self, BudgetExceeded, SearchBudget};
use specstab_topology::cycle_space;
use specstab_topology::Graph;
use std::error::Error;
use std::fmt;

/// A validated pair of unison clock parameters.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct UnisonParams {
    /// Initial-segment length `α`.
    pub alpha: i64,
    /// Cycle size `K`.
    pub k: i64,
}

impl UnisonParams {
    /// Builds the cherry clock for these parameters.
    ///
    /// # Errors
    ///
    /// Propagates [`ClockError::InvalidParameters`] for `α < 1` or `K < 2`.
    pub fn clock(&self) -> Result<CherryClock, ClockError> {
        CherryClock::new(self.alpha, self.k)
    }
}

impl fmt::Display for UnisonParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "α={}, K={}", self.alpha, self.k)
    }
}

/// Why a parameter choice is rejected for a graph.
#[derive(Clone, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum ParamError {
    /// `α < hole(g) − 2`: convergence can fail.
    AlphaTooSmall {
        /// Chosen `α`.
        alpha: i64,
        /// Required minimum `hole(g) − 2` (at least 1).
        required: i64,
    },
    /// `K ≤ cyclo(g)`: liveness can fail.
    KTooSmall {
        /// Chosen `K`.
        k: i64,
        /// Exclusive lower bound `cyclo(g)`.
        cyclo: i64,
    },
    /// The clock parameters are structurally invalid.
    Clock(ClockError),
    /// The exact `hole` computation exceeded its search budget.
    Budget(BudgetExceeded),
}

impl fmt::Display for ParamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamError::AlphaTooSmall { alpha, required } => {
                write!(f, "α = {alpha} is below the required hole(g) - 2 = {required}")
            }
            ParamError::KTooSmall { k, cyclo } => {
                write!(f, "K = {k} does not exceed cyclo(g) = {cyclo}")
            }
            ParamError::Clock(e) => write!(f, "invalid clock: {e}"),
            ParamError::Budget(e) => write!(f, "{e}"),
        }
    }
}

impl Error for ParamError {}

impl From<ClockError> for ParamError {
    fn from(e: ClockError) -> Self {
        ParamError::Clock(e)
    }
}

impl From<BudgetExceeded> for ParamError {
    fn from(e: BudgetExceeded) -> Self {
        ParamError::Budget(e)
    }
}

/// Minimal valid parameters for `g` using exact `hole`/`cyclo` computation:
/// `α = max(1, hole(g) − 2)`, `K = max(2, cyclo(g) + 1)`.
///
/// # Errors
///
/// [`ParamError::Budget`] if the exact topology constants exceed `budget`.
pub fn minimal_params(g: &Graph, budget: SearchBudget) -> Result<UnisonParams, ParamError> {
    let hole = i64::try_from(chordless::hole(g, budget)?).expect("hole fits i64");
    let cyclo = i64::try_from(cycle_space::cyclo(g)).expect("cyclo fits i64");
    Ok(UnisonParams { alpha: (hole - 2).max(1), k: (cyclo + 1).max(2) })
}

/// Conservative parameters valid on **any** connected graph with `n`
/// vertices, without computing topology constants: `α = n`, `K = n + 1`.
///
/// (`hole(g) ≤ n` and `cyclo(g) ≤ n` always hold.)
#[must_use]
pub fn safe_params(n: usize) -> UnisonParams {
    let n = i64::try_from(n).expect("n fits i64");
    UnisonParams { alpha: n.max(1), k: n + 1 }
}

/// Validates `params` against the exact topology constants of `g`.
///
/// # Errors
///
/// [`ParamError::AlphaTooSmall`], [`ParamError::KTooSmall`],
/// [`ParamError::Clock`] or [`ParamError::Budget`].
pub fn validate(g: &Graph, params: UnisonParams, budget: SearchBudget) -> Result<(), ParamError> {
    params.clock()?;
    let hole = i64::try_from(chordless::hole(g, budget)?).expect("hole fits i64");
    let cyclo = i64::try_from(cycle_space::cyclo(g)).expect("cyclo fits i64");
    let required = (hole - 2).max(1);
    if params.alpha < required {
        return Err(ParamError::AlphaTooSmall { alpha: params.alpha, required });
    }
    if params.k <= cyclo {
        return Err(ParamError::KTooSmall { k: params.k, cyclo });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use specstab_topology::generators;

    fn b() -> SearchBudget {
        SearchBudget::default()
    }

    #[test]
    fn minimal_params_on_ring() {
        // hole(ring-8) = 8, cyclo = 8 → α = 6, K = 9.
        let g = generators::ring(8).unwrap();
        let p = minimal_params(&g, b()).unwrap();
        assert_eq!(p, UnisonParams { alpha: 6, k: 9 });
        assert!(validate(&g, p, b()).is_ok());
    }

    #[test]
    fn minimal_params_on_tree() {
        // hole = cyclo = 2 by convention → α = 1, K = 3.
        let g = generators::binary_tree(7).unwrap();
        let p = minimal_params(&g, b()).unwrap();
        assert_eq!(p, UnisonParams { alpha: 1, k: 3 });
        assert!(validate(&g, p, b()).is_ok());
    }

    #[test]
    fn minimal_params_on_grid() {
        // grid 3x3: hole = 8 → α = 6; cyclo = 4 → K = 5.
        let g = generators::grid(3, 3).unwrap();
        let p = minimal_params(&g, b()).unwrap();
        assert_eq!(p, UnisonParams { alpha: 6, k: 5 });
    }

    #[test]
    fn safe_params_always_validate() {
        for g in [
            generators::ring(9).unwrap(),
            generators::grid(3, 4).unwrap(),
            generators::petersen(),
            generators::random_tree(12, 3).unwrap(),
        ] {
            let p = safe_params(g.n());
            assert!(validate(&g, p, b()).is_ok(), "{}", g.name());
        }
    }

    #[test]
    fn undersized_alpha_is_rejected() {
        let g = generators::ring(8).unwrap();
        let p = UnisonParams { alpha: 5, k: 9 }; // required α = 6
        assert_eq!(
            validate(&g, p, b()).unwrap_err(),
            ParamError::AlphaTooSmall { alpha: 5, required: 6 }
        );
    }

    #[test]
    fn undersized_k_is_rejected() {
        let g = generators::ring(8).unwrap();
        let p = UnisonParams { alpha: 6, k: 8 }; // need K > 8
        assert_eq!(validate(&g, p, b()).unwrap_err(), ParamError::KTooSmall { k: 8, cyclo: 8 });
    }

    #[test]
    fn structurally_invalid_clock_is_rejected() {
        let g = generators::ring(8).unwrap();
        let p = UnisonParams { alpha: 0, k: 9 };
        assert!(matches!(validate(&g, p, b()).unwrap_err(), ParamError::Clock(_)));
    }

    #[test]
    fn display_formats() {
        assert_eq!(UnisonParams { alpha: 3, k: 9 }.to_string(), "α=3, K=9");
    }
}
