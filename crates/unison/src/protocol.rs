//! The self-stabilizing asynchronous unison of Boulinier, Petit & Villain
//! (PODC 2004) — the substrate of SSME.
//!
//! Every vertex `v` owns a register `r_v` holding a [`ClockValue`] of a
//! shared [`CherryClock`]. The protocol has three rules (Algorithm 1 of the
//! paper, which is this protocol verbatim — only the clock size and the
//! `privileged` predicate differ, and the latter does not interfere):
//!
//! ```text
//! NA :: normalStep_v   → r_v := φ(r_v)
//! CA :: convergeStep_v → r_v := φ(r_v)
//! RA :: resetInit_v    → r_v := -α
//! ```
//!
//! with the predicates
//!
//! ```text
//! correct_v(u)    ≡ r_v ∈ stab_X ∧ r_u ∈ stab_X ∧ d_K(r_v, r_u) ≤ 1
//! allCorrect_v    ≡ ∀u ∈ neig(v), correct_v(u)
//! normalStep_v    ≡ allCorrect_v ∧ (∀u ∈ neig(v), r_v ≤_l r_u)
//! convergeStep_v  ≡ r_v ∈ init*_X ∧ ∀u ∈ neig(v), (r_u ∈ init_X ∧ r_v ≤_init r_u)
//! resetInit_v     ≡ ¬allCorrect_v ∧ (r_v ∉ init_X)
//! ```
//!
//! The three guards are pairwise exclusive, so the protocol is
//! deterministic (validated by tests and property tests).

use crate::clock::{CherryClock, ClockValue};
use rand::rngs::StdRng;
use rand::Rng;
use specstab_kernel::protocol::{Protocol, RuleId, RuleInfo, View};
use specstab_topology::VertexId;

/// Rule indices of the unison protocol.
pub mod rules {
    use specstab_kernel::protocol::RuleId;

    /// Normal action: increment a locally-minimal correct clock.
    pub const NA: RuleId = RuleId::new(0);
    /// Converge action: increment a locally-minimal initial clock.
    pub const CA: RuleId = RuleId::new(1);
    /// Reset action: jump to `-α` upon local inconsistency.
    pub const RA: RuleId = RuleId::new(2);
}

/// The asynchronous unison protocol over a given cherry clock.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct AsyncUnison {
    clock: CherryClock,
}

impl AsyncUnison {
    /// Creates the protocol over `clock`.
    #[must_use]
    pub fn new(clock: CherryClock) -> Self {
        Self { clock }
    }

    /// The underlying cherry clock.
    #[must_use]
    pub fn clock(&self) -> CherryClock {
        self.clock
    }

    /// `correct_v(u)` for register values `rv`, `ru`.
    #[must_use]
    pub fn correct(&self, rv: ClockValue, ru: ClockValue) -> bool {
        self.clock.is_stab(rv) && self.clock.is_stab(ru) && self.clock.d_k(rv, ru) <= 1
    }

    /// `allCorrect_v` over a view.
    #[must_use]
    pub fn all_correct(&self, view: &View<'_, ClockValue>) -> bool {
        let rv = *view.state();
        view.neighbor_states().all(|(_, &ru)| self.correct(rv, ru))
    }

    /// `normalStep_v` over a view.
    #[must_use]
    pub fn normal_step(&self, view: &View<'_, ClockValue>) -> bool {
        let rv = *view.state();
        self.all_correct(view) && view.neighbor_states().all(|(_, &ru)| self.clock.le_local(rv, ru))
    }

    /// `convergeStep_v` over a view.
    #[must_use]
    pub fn converge_step(&self, view: &View<'_, ClockValue>) -> bool {
        let rv = *view.state();
        self.clock.is_init_star(rv)
            && view
                .neighbor_states()
                .all(|(_, &ru)| self.clock.is_init(ru) && self.clock.le_init(rv, ru))
    }

    /// `resetInit_v` over a view.
    #[must_use]
    pub fn reset_init(&self, view: &View<'_, ClockValue>) -> bool {
        !self.all_correct(view) && !self.clock.is_init(*view.state())
    }
}

impl Protocol for AsyncUnison {
    type State = ClockValue;

    fn name(&self) -> String {
        format!("async-unison[{}]", self.clock)
    }

    fn rules(&self) -> Vec<RuleInfo> {
        vec![RuleInfo::new("NA"), RuleInfo::new("CA"), RuleInfo::new("RA")]
    }

    fn enabled_rule(&self, view: &View<'_, ClockValue>) -> Option<RuleId> {
        if self.normal_step(view) {
            Some(rules::NA)
        } else if self.converge_step(view) {
            Some(rules::CA)
        } else if self.reset_init(view) {
            Some(rules::RA)
        } else {
            None
        }
    }

    fn apply(&self, view: &View<'_, ClockValue>, rule: RuleId) -> ClockValue {
        match rule {
            rules::NA | rules::CA => self.clock.phi(*view.state()),
            rules::RA => self.clock.reset(),
            other => panic!("unison has no rule {other}"),
        }
    }

    fn random_state(&self, _v: VertexId, rng: &mut StdRng) -> ClockValue {
        let raw = rng.gen_range(-self.clock.alpha()..self.clock.k());
        self.clock.value(raw).expect("sampled inside the cherry domain")
    }

    fn state_domain(&self, _v: VertexId) -> Option<Vec<ClockValue>> {
        Some(self.clock.values().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use specstab_kernel::config::Configuration;
    use specstab_topology::generators;

    fn clock() -> CherryClock {
        CherryClock::new(3, 7).unwrap()
    }

    fn cfg(clock: &CherryClock, raws: &[i64]) -> Configuration<ClockValue> {
        Configuration::new(raws.iter().map(|&r| clock.value(r).unwrap()).collect())
    }

    #[test]
    fn guards_are_pairwise_exclusive_on_full_domain() {
        let x = clock();
        let p = AsyncUnison::new(x);
        let g = generators::path(3).unwrap();
        for a in x.values() {
            for b in x.values() {
                for c in x.values() {
                    let conf = Configuration::new(vec![a, b, c]);
                    for v in g.vertices() {
                        let view = View::new(v, &g, &conf);
                        let n = usize::from(p.normal_step(&view));
                        let ca = usize::from(p.converge_step(&view));
                        let ra = usize::from(p.reset_init(&view));
                        assert!(n + ca + ra <= 1, "guards overlap at {v} in [{a}, {b}, {c}]");
                    }
                }
            }
        }
    }

    #[test]
    fn uniform_correct_configuration_everyone_ticks() {
        let x = clock();
        let p = AsyncUnison::new(x);
        let g = generators::ring(4).unwrap();
        let conf = cfg(&x, &[2, 2, 2, 2]);
        for v in g.vertices() {
            let view = View::new(v, &g, &conf);
            assert_eq!(p.enabled_rule(&view), Some(rules::NA));
            assert_eq!(p.apply(&view, rules::NA).raw(), 3);
        }
    }

    #[test]
    fn only_local_minimum_ticks_in_legitimate_drift() {
        let x = clock();
        let p = AsyncUnison::new(x);
        let g = generators::path(3).unwrap();
        let conf = cfg(&x, &[3, 2, 3]);
        let views: Vec<Option<RuleId>> =
            g.vertices().map(|v| p.enabled_rule(&View::new(v, &g, &conf))).collect();
        assert_eq!(views, vec![None, Some(rules::NA), None]);
    }

    #[test]
    fn wraparound_minimum_is_detected() {
        let x = clock();
        let p = AsyncUnison::new(x);
        let g = generators::path(2).unwrap();
        // K=7: values 6 and 0 are locally comparable, 6 ≤l 0.
        let conf = cfg(&x, &[6, 0]);
        let r0 = p.enabled_rule(&View::new(VertexId::new(0), &g, &conf));
        let r1 = p.enabled_rule(&View::new(VertexId::new(1), &g, &conf));
        assert_eq!(r0, Some(rules::NA));
        assert_eq!(r1, None);
    }

    #[test]
    fn incomparable_correct_neighbor_triggers_reset() {
        let x = clock();
        let p = AsyncUnison::new(x);
        let g = generators::path(2).unwrap();
        let conf = cfg(&x, &[1, 4]); // d_K(1,4) = 3 > 1
        for v in g.vertices() {
            let view = View::new(v, &g, &conf);
            assert_eq!(p.enabled_rule(&view), Some(rules::RA), "{v}");
            assert_eq!(p.apply(&view, rules::RA), x.reset());
        }
    }

    #[test]
    fn initial_neighbor_blocks_stab_vertex_into_reset() {
        let x = clock();
        let p = AsyncUnison::new(x);
        let g = generators::path(2).unwrap();
        // v0 = 5 (stab*), v1 = -2 (init*): not correct → v0 resets. v1 has a
        // non-init neighbor → CA guard false; its value is init → RA false.
        let conf = cfg(&x, &[5, -2]);
        assert_eq!(p.enabled_rule(&View::new(VertexId::new(0), &g, &conf)), Some(rules::RA));
        assert_eq!(p.enabled_rule(&View::new(VertexId::new(1), &g, &conf)), None);
    }

    #[test]
    fn converge_action_on_minimal_initial_value() {
        let x = clock();
        let p = AsyncUnison::new(x);
        let g = generators::path(3).unwrap();
        let conf = cfg(&x, &[-3, -1, 0]);
        let r0 = p.enabled_rule(&View::new(VertexId::new(0), &g, &conf));
        let r1 = p.enabled_rule(&View::new(VertexId::new(1), &g, &conf));
        assert_eq!(r0, Some(rules::CA));
        assert_eq!(r1, None, "not locally minimal among initial values");
        let view = View::new(VertexId::new(0), &g, &conf);
        assert_eq!(p.apply(&view, rules::CA).raw(), -2);
    }

    #[test]
    fn zero_is_not_converge_eligible() {
        // 0 ∈ init_X but 0 ∉ init*_X: a zero-valued vertex must use NA.
        let x = clock();
        let p = AsyncUnison::new(x);
        let g = generators::path(2).unwrap();
        let conf = cfg(&x, &[0, 0]);
        for v in g.vertices() {
            assert_eq!(p.enabled_rule(&View::new(v, &g, &conf)), Some(rules::NA));
        }
    }

    #[test]
    fn protocol_metadata() {
        let p = AsyncUnison::new(clock());
        assert_eq!(p.rules().len(), 3);
        assert!(p.name().contains("async-unison"));
        let domain = p.state_domain(VertexId::new(0)).unwrap();
        assert_eq!(domain.len(), 10);
    }
}
