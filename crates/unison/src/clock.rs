//! Bounded cherry clocks `X = (cherry(α, K), φ)` — Figure 1 of the paper.
//!
//! A cherry clock is the bounded set `cherry(α, K) = {-α, .., 0, .., K-1}`
//! (a "stem" of initial values `init_X = {-α, .., 0}` grafted onto a cycle
//! of correct values `stab_X = {0, .., K-1}`) together with the
//! incrementation function
//!
//! ```text
//! φ(c) = c + 1            if c < 0
//! φ(c) = (c + 1) mod K    otherwise
//! ```
//!
//! A *reset* replaces any value other than `-α` by `-α`. On correct values
//! the clock carries the circular distance `d_K` and the derived local
//! relation `≤_l`; on initial values the usual total order `≤_init`
//! applies.

use std::error::Error;
use std::fmt;

/// Errors constructing or using a [`CherryClock`].
#[derive(Clone, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum ClockError {
    /// `α < 1` or `K < 2` (the paper requires `α ≥ 1`, `K ≥ 2`).
    InvalidParameters {
        /// Requested initial-segment length.
        alpha: i64,
        /// Requested cycle size.
        k: i64,
    },
    /// A raw value outside `cherry(α, K)`.
    OutOfDomain {
        /// The offending raw value.
        value: i64,
    },
}

impl fmt::Display for ClockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClockError::InvalidParameters { alpha, k } => {
                write!(f, "cherry clock requires α ≥ 1 and K ≥ 2, got α={alpha}, K={k}")
            }
            ClockError::OutOfDomain { value } => {
                write!(f, "value {value} lies outside the cherry set")
            }
        }
    }
}

impl Error for ClockError {}

/// A value of a cherry clock: an integer in `{-α, .., K-1}`.
///
/// Values are plain data; all clock semantics (increment, distance,
/// comparability) live on [`CherryClock`]. The derived `Ord` is the
/// integer order, which restricted to `init_X` is exactly `≤_init`.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct ClockValue(i64);

impl ClockValue {
    /// The raw integer value.
    #[must_use]
    pub fn raw(self) -> i64 {
        self.0
    }
}

impl fmt::Display for ClockValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A bounded clock `X = (cherry(α, K), φ)` of initial value `α` and size
/// `K`.
///
/// ```
/// use specstab_unison::clock::CherryClock;
///
/// // The clock of Figure 1: α = 5, K = 12.
/// let x = CherryClock::new(5, 12).expect("valid parameters");
/// let mut c = x.value(-5).expect("in domain");
/// for _ in 0..5 { c = x.phi(c); }
/// assert_eq!(c.raw(), 0);               // the stem feeds the cycle
/// for _ in 0..12 { c = x.phi(c); }
/// assert_eq!(c.raw(), 0);               // and the cycle has period K
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct CherryClock {
    alpha: i64,
    k: i64,
}

impl CherryClock {
    /// Creates the clock `(cherry(α, K), φ)`.
    ///
    /// # Errors
    ///
    /// [`ClockError::InvalidParameters`] unless `α ≥ 1` and `K ≥ 2`.
    pub fn new(alpha: i64, k: i64) -> Result<Self, ClockError> {
        if alpha < 1 || k < 2 {
            return Err(ClockError::InvalidParameters { alpha, k });
        }
        Ok(Self { alpha, k })
    }

    /// The initial-segment length `α`.
    #[must_use]
    pub fn alpha(&self) -> i64 {
        self.alpha
    }

    /// The cycle size `K`.
    #[must_use]
    pub fn k(&self) -> i64 {
        self.k
    }

    /// Number of distinct clock values, `α + K`.
    #[must_use]
    pub fn size(&self) -> usize {
        usize::try_from(self.alpha + self.k).expect("clock size fits usize")
    }

    /// Whether `raw` belongs to `cherry(α, K)`.
    #[must_use]
    pub fn contains(&self, raw: i64) -> bool {
        (-self.alpha..self.k).contains(&raw)
    }

    /// Wraps a raw integer into a checked [`ClockValue`].
    ///
    /// # Errors
    ///
    /// [`ClockError::OutOfDomain`] if `raw` is outside `cherry(α, K)`.
    pub fn value(&self, raw: i64) -> Result<ClockValue, ClockError> {
        if self.contains(raw) {
            Ok(ClockValue(raw))
        } else {
            Err(ClockError::OutOfDomain { value: raw })
        }
    }

    /// All clock values in increasing raw order (`-α, .., 0, .., K-1`).
    pub fn values(&self) -> impl Iterator<Item = ClockValue> {
        (-self.alpha..self.k).map(ClockValue)
    }

    /// The incrementation function `φ`.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if `c` is outside the clock's domain.
    #[must_use]
    pub fn phi(&self, c: ClockValue) -> ClockValue {
        debug_assert!(self.contains(c.0), "phi on out-of-domain value {c}");
        if c.0 < 0 {
            ClockValue(c.0 + 1)
        } else {
            ClockValue((c.0 + 1) % self.k)
        }
    }

    /// The reset value `-α`.
    #[must_use]
    pub fn reset(&self) -> ClockValue {
        ClockValue(-self.alpha)
    }

    /// Whether `c ∈ init_X = {-α, .., 0}`.
    #[must_use]
    pub fn is_init(&self, c: ClockValue) -> bool {
        (-self.alpha..=0).contains(&c.0)
    }

    /// Whether `c ∈ init*_X = init_X \ {0}`.
    #[must_use]
    pub fn is_init_star(&self, c: ClockValue) -> bool {
        (-self.alpha..0).contains(&c.0)
    }

    /// Whether `c ∈ stab_X = {0, .., K-1}` (a *correct* value).
    #[must_use]
    pub fn is_stab(&self, c: ClockValue) -> bool {
        (0..self.k).contains(&c.0)
    }

    /// Whether `c ∈ stab*_X = stab_X \ {0}`.
    #[must_use]
    pub fn is_stab_star(&self, c: ClockValue) -> bool {
        (1..self.k).contains(&c.0)
    }

    /// Circular distance `d_K` between two **correct** values.
    ///
    /// # Panics
    ///
    /// Panics if either value is not in `stab_X` — `d_K` is only defined on
    /// `[0, K-1]`.
    #[must_use]
    pub fn d_k(&self, a: ClockValue, b: ClockValue) -> i64 {
        assert!(
            self.is_stab(a) && self.is_stab(b),
            "d_K is defined on correct values only (got {a}, {b})"
        );
        let fwd = (b.0 - a.0).rem_euclid(self.k);
        let bwd = (a.0 - b.0).rem_euclid(self.k);
        fwd.min(bwd)
    }

    /// Whether two correct values are *locally comparable*: `d_K(a, b) ≤ 1`.
    ///
    /// # Panics
    ///
    /// Panics if either value is not in `stab_X`.
    #[must_use]
    pub fn locally_comparable(&self, a: ClockValue, b: ClockValue) -> bool {
        self.d_k(a, b) <= 1
    }

    /// The local relation `a ≤_l b`: `(b - a) mod K ∈ {0, 1}`.
    ///
    /// Note this relation is not an order (the paper's remark): on a
    /// three-value cycle, `0 ≤_l 1 ≤_l 2 ≤_l 0`.
    ///
    /// # Panics
    ///
    /// Panics if either value is not in `stab_X`.
    #[must_use]
    pub fn le_local(&self, a: ClockValue, b: ClockValue) -> bool {
        assert!(
            self.is_stab(a) && self.is_stab(b),
            "≤_l is defined on correct values only (got {a}, {b})"
        );
        (b.0 - a.0).rem_euclid(self.k) <= 1
    }

    /// The total order `≤_init` on initial values.
    ///
    /// # Panics
    ///
    /// Panics if either value is not in `init_X`.
    #[must_use]
    pub fn le_init(&self, a: ClockValue, b: ClockValue) -> bool {
        assert!(
            self.is_init(a) && self.is_init(b),
            "≤_init is defined on initial values only (got {a}, {b})"
        );
        a.0 <= b.0
    }
}

impl fmt::Display for CherryClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cherry(α={}, K={})", self.alpha, self.k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig1() -> CherryClock {
        CherryClock::new(5, 12).unwrap()
    }

    #[test]
    fn rejects_invalid_parameters() {
        assert!(CherryClock::new(0, 12).is_err());
        assert!(CherryClock::new(5, 1).is_err());
        assert!(CherryClock::new(-1, 12).is_err());
    }

    #[test]
    fn domain_of_figure_1() {
        let x = fig1();
        assert_eq!(x.size(), 17);
        assert!(x.contains(-5));
        assert!(x.contains(0));
        assert!(x.contains(11));
        assert!(!x.contains(-6));
        assert!(!x.contains(12));
        assert_eq!(x.values().count(), 17);
        assert!(x.value(12).is_err());
    }

    #[test]
    fn init_and_stab_partitions() {
        let x = fig1();
        let v = |r| x.value(r).unwrap();
        assert!(x.is_init(v(-5)) && x.is_init(v(0)) && !x.is_init(v(1)));
        assert!(x.is_init_star(v(-1)) && !x.is_init_star(v(0)));
        assert!(x.is_stab(v(0)) && x.is_stab(v(11)) && !x.is_stab(v(-1)));
        assert!(x.is_stab_star(v(1)) && !x.is_stab_star(v(0)));
        // 0 belongs to both init_X and stab_X.
        assert!(x.is_init(v(0)) && x.is_stab(v(0)));
    }

    #[test]
    fn phi_walks_stem_then_cycle() {
        let x = fig1();
        let mut c = x.reset();
        assert_eq!(c.raw(), -5);
        let mut seen = vec![c.raw()];
        for _ in 0..5 + 12 {
            c = x.phi(c);
            seen.push(c.raw());
        }
        assert_eq!(seen, vec![-5, -4, -3, -2, -1, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 0]);
    }

    #[test]
    fn phi_is_cyclic_on_stab_with_period_k() {
        let x = fig1();
        let mut c = x.value(3).unwrap();
        for _ in 0..12 {
            c = x.phi(c);
        }
        assert_eq!(c.raw(), 3);
    }

    #[test]
    fn d_k_is_a_circular_metric() {
        let x = fig1();
        let v = |r| x.value(r).unwrap();
        assert_eq!(x.d_k(v(0), v(0)), 0);
        assert_eq!(x.d_k(v(0), v(1)), 1);
        assert_eq!(x.d_k(v(0), v(11)), 1); // wraparound
        assert_eq!(x.d_k(v(0), v(6)), 6);
        assert_eq!(x.d_k(v(2), v(9)), 5);
        // Symmetry and triangle inequality over the whole cycle.
        for a in 0..12 {
            for b in 0..12 {
                assert_eq!(x.d_k(v(a), v(b)), x.d_k(v(b), v(a)));
                for c in 0..12 {
                    assert!(x.d_k(v(a), v(c)) <= x.d_k(v(a), v(b)) + x.d_k(v(b), v(c)));
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "d_K is defined on correct values")]
    fn d_k_rejects_initial_values() {
        let x = fig1();
        let _ = x.d_k(x.reset(), x.value(0).unwrap());
    }

    #[test]
    fn le_local_is_not_an_order() {
        let x = CherryClock::new(1, 3).unwrap();
        let v = |r| x.value(r).unwrap();
        // 0 ≤l 1 ≤l 2 ≤l 0: a cycle, hence not antisymmetric/transitive.
        assert!(x.le_local(v(0), v(1)));
        assert!(x.le_local(v(1), v(2)));
        assert!(x.le_local(v(2), v(0)));
        assert!(!x.le_local(v(0), v(2)));
    }

    #[test]
    fn le_local_matches_comparability() {
        let x = fig1();
        let v = |r| x.value(r).unwrap();
        for a in 0..12 {
            for b in 0..12 {
                let comparable = x.locally_comparable(v(a), v(b));
                let either = x.le_local(v(a), v(b)) || x.le_local(v(b), v(a));
                assert_eq!(comparable, either, "a={a} b={b}");
            }
        }
    }

    #[test]
    fn le_init_is_total_on_stem() {
        let x = fig1();
        let v = |r| x.value(r).unwrap();
        assert!(x.le_init(v(-5), v(0)));
        assert!(x.le_init(v(-3), v(-3)));
        assert!(!x.le_init(v(0), v(-1)));
    }

    #[test]
    fn reset_is_minus_alpha() {
        assert_eq!(fig1().reset().raw(), -5);
    }

    #[test]
    fn display_formats() {
        assert_eq!(fig1().to_string(), "cherry(α=5, K=12)");
        assert_eq!(fig1().reset().to_string(), "-5");
    }
}
