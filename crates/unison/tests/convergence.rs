//! End-to-end validation of the asynchronous unison substrate: convergence
//! to `Γ1` under many daemons and topologies, closure of `Γ1`, liveness,
//! the published synchronous bound, and exact small-instance worst cases.

use rand::rngs::StdRng;
use rand::SeedableRng;
use specstab_kernel::config::Configuration;
use specstab_kernel::daemon::{
    CentralDaemon, CentralStrategy, Daemon, RandomDistributedDaemon, SynchronousDaemon,
};
use specstab_kernel::engine::{RunLimits, Simulator, StopReason};
use specstab_kernel::measure::measure_with_early_stop;
use specstab_kernel::observer::TraceRecorder;
use specstab_kernel::protocol::random_configuration;
use specstab_kernel::search::{
    build_config_graph, enumerate_all_configurations, worst_steps_to, SearchDaemon,
};
use specstab_kernel::spec::{closure_violation, Specification};
use specstab_topology::chordless::{self, SearchBudget};
use specstab_topology::metrics::DistanceMatrix;
use specstab_topology::{generators, Graph};
use specstab_unison::analysis;
use specstab_unison::clock::ClockValue;
use specstab_unison::params::{minimal_params, safe_params};
use specstab_unison::spec::IncrementCounter;
use specstab_unison::{AsyncUnison, SpecAu};

fn zoo() -> Vec<Graph> {
    vec![
        generators::ring(7).unwrap(),
        generators::path(8).unwrap(),
        generators::star(7).unwrap(),
        generators::grid(3, 4).unwrap(),
        generators::complete(5).unwrap(),
        generators::binary_tree(9).unwrap(),
        generators::petersen(),
        generators::erdos_renyi_connected(10, 0.25, 42).unwrap(),
    ]
}

fn converges_on(g: &Graph, daemon: &mut dyn Daemon<ClockValue>, seed: u64) -> bool {
    let params = safe_params(g.n());
    let clock = params.clock().unwrap();
    let unison = AsyncUnison::new(clock);
    let spec = SpecAu::new(clock);
    let mut rng = StdRng::seed_from_u64(seed);
    let init = random_configuration(g, &unison, &mut rng);
    let report = measure_with_early_stop(
        g,
        &unison,
        daemon,
        init,
        Box::new(move |c, g| spec.is_safe(c, g)),
        Box::new(move |c, g| spec.is_legitimate(c, g)),
        Box::new(move |c, g| spec.is_legitimate(c, g)),
        2_000_000,
        5,
    );
    report.ended_legitimate
}

#[test]
fn unison_converges_under_synchronous_daemon_on_zoo() {
    for g in zoo() {
        for seed in 0..5 {
            let mut d = SynchronousDaemon::new();
            assert!(converges_on(&g, &mut d, seed), "{} seed {seed}", g.name());
        }
    }
}

#[test]
fn unison_converges_under_central_daemons_on_zoo() {
    for g in zoo() {
        for seed in 0..3 {
            let mut rr = CentralDaemon::new(CentralStrategy::RoundRobin);
            assert!(converges_on(&g, &mut rr, seed), "{} rr seed {seed}", g.name());
            let mut rnd = CentralDaemon::new(CentralStrategy::Random(seed));
            assert!(converges_on(&g, &mut rnd, seed), "{} rand seed {seed}", g.name());
        }
    }
}

#[test]
fn unison_converges_under_random_distributed_daemon_on_zoo() {
    for g in zoo() {
        for seed in 0..3 {
            for p in [0.2, 0.6, 0.9] {
                let mut d = RandomDistributedDaemon::new(p, seed);
                assert!(converges_on(&g, &mut d, seed), "{} p={p} seed {seed}", g.name());
            }
        }
    }
}

#[test]
fn unison_converges_with_minimal_params() {
    for g in [generators::ring(8).unwrap(), generators::grid(3, 3).unwrap()] {
        let params = minimal_params(&g, SearchBudget::default()).unwrap();
        let clock = params.clock().unwrap();
        let unison = AsyncUnison::new(clock);
        let spec = SpecAu::new(clock);
        for seed in 0..8 {
            let mut rng = StdRng::seed_from_u64(seed);
            let init = random_configuration(&g, &unison, &mut rng);
            let mut d = RandomDistributedDaemon::new(0.5, seed);
            let report = measure_with_early_stop(
                &g,
                &unison,
                &mut d,
                init,
                Box::new(move |c, g| spec.is_safe(c, g)),
                Box::new(move |c, g| spec.is_legitimate(c, g)),
                Box::new(move |c, g| spec.is_legitimate(c, g)),
                2_000_000,
                5,
            );
            assert!(report.ended_legitimate, "{} seed {seed} ({params})", g.name());
        }
    }
}

#[test]
fn gamma_one_is_closed_along_executions() {
    let g = generators::ring(6).unwrap();
    let clock = safe_params(g.n()).clock().unwrap();
    let unison = AsyncUnison::new(clock);
    let spec = SpecAu::new(clock);
    let sim = Simulator::new(&g, &unison);
    for seed in 0..10 {
        let mut rng = StdRng::seed_from_u64(seed);
        let init = random_configuration(&g, &unison, &mut rng);
        let mut d = RandomDistributedDaemon::new(0.5, seed);
        let mut tr = TraceRecorder::new();
        let _ = sim.run(init, &mut d, RunLimits::with_max_steps(5_000), &mut [&mut tr]);
        assert_eq!(closure_violation(&spec, &tr.configs(), &g), None, "seed {seed}");
    }
}

#[test]
fn liveness_every_vertex_increments_after_stabilization() {
    let g = generators::torus(3, 4).unwrap();
    let clock = safe_params(g.n()).clock().unwrap();
    let unison = AsyncUnison::new(clock);
    let spec = SpecAu::new(clock);
    let sim = Simulator::new(&g, &unison);
    // Start inside Γ1 (uniform zero) and run a full clock period per vertex.
    let init = Configuration::from_fn(g.n(), |_| clock.value(0).unwrap());
    assert!(spec.in_gamma_one(&init, &g));
    let mut d = RandomDistributedDaemon::new(0.4, 9);
    let mut counter = IncrementCounter::new();
    let s = sim.run(init, &mut d, RunLimits::with_max_steps(20_000), &mut [&mut counter]);
    assert_eq!(s.stop, StopReason::MaxSteps);
    assert!(counter.min_increments() > 0, "some vertex never incremented in 20k steps");
}

#[test]
fn synchronous_bound_alpha_lcp_diam_holds() {
    // [3]: sync stabilization ≤ α + lcp(g) + diam(g). Validated by random
    // sampling across the zoo with exact lcp.
    for g in zoo() {
        let params = safe_params(g.n());
        let clock = params.clock().unwrap();
        let unison = AsyncUnison::new(clock);
        let spec = SpecAu::new(clock);
        let lcp = chordless::longest_chordless_path(&g, SearchBudget::default()).unwrap();
        let diam = DistanceMatrix::new(&g).diameter();
        let bound = analysis::sync_stabilization_bound(params.alpha, lcp, diam);
        for seed in 0..10 {
            let mut rng = StdRng::seed_from_u64(seed);
            let init = random_configuration(&g, &unison, &mut rng);
            let mut d = SynchronousDaemon::new();
            let report = measure_with_early_stop(
                &g,
                &unison,
                &mut d,
                init,
                Box::new(move |c, g| spec.is_safe(c, g)),
                Box::new(move |c, g| spec.is_legitimate(c, g)),
                Box::new(move |c, g| spec.is_legitimate(c, g)),
                100_000,
                3,
            );
            assert!(report.ended_legitimate, "{} seed {seed}", g.name());
            assert!(
                (report.legitimacy_entry as u64) <= bound,
                "{}: entry {} > bound {bound}",
                g.name(),
                report.legitimacy_entry
            );
        }
    }
}

#[test]
fn exact_worst_case_sync_convergence_on_tiny_path() {
    // Exhaustive over the full configuration space of a 3-path with
    // minimal parameters: the synchronous worst case must respect the [3]
    // bound α + lcp + diam = 1 + 2 + 2 = 5.
    let g = generators::path(3).unwrap();
    let params = minimal_params(&g, SearchBudget::default()).unwrap();
    let clock = params.clock().unwrap();
    let unison = AsyncUnison::new(clock);
    let spec = SpecAu::new(clock);
    let all = enumerate_all_configurations(&g, &unison, 100_000).unwrap();
    let cg = build_config_graph(&g, &unison, &all, SearchDaemon::Synchronous, 1_000_000).unwrap();
    let worst = worst_steps_to(&cg, |c| spec.in_gamma_one(c, &g)).unwrap();
    let max = worst.iter().max().copied().unwrap();
    let lcp = chordless::longest_chordless_path(&g, SearchBudget::default()).unwrap();
    let diam = DistanceMatrix::new(&g).diameter();
    let bound = analysis::sync_stabilization_bound(params.alpha, lcp, diam);
    assert!(u64::from(max) <= bound, "exact worst {max} exceeds bound {bound}");
    assert!(max >= 1, "some configuration must take at least one step");
}

#[test]
fn exact_worst_case_central_convergence_on_triangle() {
    // Triangle with minimal parameters (hole = 3 → α = 1; cyclo = 3 → K=4):
    // exhaustively verify convergence to Γ1 under the central daemon from
    // every configuration and every scheduling choice.
    let g = generators::complete(3).unwrap();
    let params = minimal_params(&g, SearchBudget::default()).unwrap();
    let clock = params.clock().unwrap();
    let unison = AsyncUnison::new(clock);
    let spec = SpecAu::new(clock);
    let all = enumerate_all_configurations(&g, &unison, 100_000).unwrap();
    let cg = build_config_graph(&g, &unison, &all, SearchDaemon::Central, 2_000_000).unwrap();
    let worst = worst_steps_to(&cg, |c| spec.in_gamma_one(c, &g)).unwrap();
    assert!(worst.iter().max().copied().unwrap() >= 1);
}

#[test]
fn exact_worst_case_distributed_convergence_on_tiny_ring() {
    // Full unfair-distributed game on a 3-ring with minimal parameters:
    // convergence from every configuration under EVERY daemon choice — the
    // strongest possible validation of Theorem-1-style self-stabilization
    // for the substrate at this scale.
    let g = generators::ring(3).unwrap();
    let params = minimal_params(&g, SearchBudget::default()).unwrap();
    let clock = params.clock().unwrap();
    let unison = AsyncUnison::new(clock);
    let spec = SpecAu::new(clock);
    let all = enumerate_all_configurations(&g, &unison, 100_000).unwrap();
    let cg = build_config_graph(
        &g,
        &unison,
        &all,
        SearchDaemon::Distributed { max_enabled: 3 },
        5_000_000,
    )
    .unwrap();
    let worst = worst_steps_to(&cg, |c| spec.in_gamma_one(c, &g));
    assert!(worst.is_ok(), "unfair distributed daemon can block convergence: {worst:?}");
}
