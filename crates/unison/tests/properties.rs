//! Property-based tests for the cherry clock algebra and the unison
//! protocol's guard structure.

use proptest::prelude::*;
use specstab_kernel::config::Configuration;
use specstab_kernel::protocol::{Protocol, View};
use specstab_topology::generators;
use specstab_unison::clock::CherryClock;
use specstab_unison::protocol::AsyncUnison;

fn clock_strategy() -> impl Strategy<Value = CherryClock> {
    (1i64..20, 2i64..40).prop_map(|(a, k)| CherryClock::new(a, k).expect("valid parameters"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn phi_stays_in_domain_and_is_eventually_periodic(x in clock_strategy()) {
        let mut c = x.reset();
        // Walk α + 2K increments: every value must stay in the domain, and
        // after the stem the orbit must have period exactly K.
        let mut orbit = Vec::new();
        for _ in 0..(x.alpha() + 2 * x.k()) {
            prop_assert!(x.contains(c.raw()));
            orbit.push(c.raw());
            c = x.phi(c);
        }
        let alpha = usize::try_from(x.alpha()).unwrap();
        let k = usize::try_from(x.k()).unwrap();
        for i in alpha..alpha + k {
            prop_assert_eq!(orbit[i], orbit[i + k], "period K after the stem");
        }
    }

    #[test]
    fn reset_is_idempotent_entry_point(x in clock_strategy()) {
        let r = x.reset();
        prop_assert_eq!(r.raw(), -x.alpha());
        prop_assert!(x.is_init(r));
        prop_assert!(!x.is_stab(r) || x.alpha() == 0);
    }

    #[test]
    fn init_stab_partition_overlaps_only_at_zero(x in clock_strategy()) {
        for v in x.values() {
            let in_both = x.is_init(v) && x.is_stab(v);
            prop_assert_eq!(in_both, v.raw() == 0);
            prop_assert!(x.is_init(v) || x.is_stab(v));
            prop_assert_eq!(x.is_init_star(v), x.is_init(v) && v.raw() != 0);
            prop_assert_eq!(x.is_stab_star(v), x.is_stab(v) && v.raw() != 0);
        }
    }

    #[test]
    fn d_k_is_a_metric_on_stab(x in clock_strategy()) {
        let stab: Vec<_> = x.values().filter(|&v| x.is_stab(v)).collect();
        for &a in &stab {
            prop_assert_eq!(x.d_k(a, a), 0);
            for &b in &stab {
                prop_assert_eq!(x.d_k(a, b), x.d_k(b, a));
                prop_assert!(x.d_k(a, b) <= x.k() / 2);
                for &c in &stab {
                    prop_assert!(x.d_k(a, c) <= x.d_k(a, b) + x.d_k(b, c));
                }
            }
        }
    }

    #[test]
    fn le_local_iff_unit_distance(x in clock_strategy()) {
        let stab: Vec<_> = x.values().filter(|&v| x.is_stab(v)).collect();
        for &a in &stab {
            for &b in &stab {
                let comparable = x.d_k(a, b) <= 1;
                prop_assert_eq!(
                    comparable,
                    x.le_local(a, b) || x.le_local(b, a)
                );
                // φ moves exactly one tick forward.
                if x.is_stab(x.phi(a)) {
                    prop_assert!(x.le_local(a, x.phi(a)));
                }
            }
        }
    }

    #[test]
    fn unison_guards_are_mutually_exclusive_on_random_configs(
        seed in any::<u64>(),
        a in 1i64..8,
        k in 2i64..16,
        n in 2usize..8,
    ) {
        use rand::SeedableRng;
        let x = CherryClock::new(a, k).expect("valid parameters");
        let p = AsyncUnison::new(x);
        let g = generators::erdos_renyi_connected(n, 0.4, seed).expect("valid graph");
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for _ in 0..20 {
            let cfg = Configuration::from_fn(g.n(), |v| p.random_state(v, &mut rng));
            for v in g.vertices() {
                let view = View::new(v, &g, &cfg);
                let guards = usize::from(p.normal_step(&view))
                    + usize::from(p.converge_step(&view))
                    + usize::from(p.reset_init(&view));
                prop_assert!(guards <= 1, "guards overlap at {v}");
            }
        }
    }

    #[test]
    fn unison_actions_stay_in_domain(
        seed in any::<u64>(),
        n in 2usize..8,
    ) {
        use rand::SeedableRng;
        let x = CherryClock::new(n as i64, n as i64 + 1).expect("valid parameters");
        let p = AsyncUnison::new(x);
        let g = generators::erdos_renyi_connected(n, 0.4, seed).expect("valid graph");
        let sim = specstab_kernel::engine::Simulator::new(&g, &p);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut cfg = Configuration::from_fn(g.n(), |v| p.random_state(v, &mut rng));
        for _ in 0..50 {
            let enabled = sim.enabled_vertices(&cfg);
            if enabled.is_empty() {
                break;
            }
            cfg = sim.apply_action(&cfg, &enabled).0;
            for (_, &s) in cfg.iter() {
                prop_assert!(x.contains(s.raw()));
            }
        }
    }
}
