//! Differential suite for the lane-packed unison: batched K-replica runs
//! must equal K independent scalar engine runs — steps, moves, stop
//! reason, final configuration, and (measured) the full per-lane
//! `StabilizationReport` against a scalar `MeasurementContext` with the
//! `specAU` predicates — across topologies × clocks × seeds ×
//! K ∈ {1, 3, 64, 100}.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use specstab_kernel::batch::{run_batch, run_batch_measured};
use specstab_kernel::config::Configuration;
use specstab_kernel::daemon::SynchronousDaemon;
use specstab_kernel::engine::{RunLimits, Simulator};
use specstab_kernel::measure::MeasurementContext;
use specstab_kernel::observer::ConfigPredicate;
use specstab_kernel::protocol::random_configuration;
use specstab_kernel::spec::Specification;
use specstab_topology::{generators, Graph};
use specstab_unison::clock::{CherryClock, ClockValue};
use specstab_unison::protocol::AsyncUnison;
use specstab_unison::spec::SpecAu;

fn graph_for(case: u8) -> Graph {
    match case % 4 {
        0 => generators::ring(8).unwrap(),
        1 => generators::torus(3, 4).unwrap(),
        2 => generators::path(6).unwrap(),
        _ => generators::star(7).unwrap(),
    }
}

fn random_inits(
    graph: &Graph,
    unison: &AsyncUnison,
    k: usize,
    seed: u64,
) -> Vec<Configuration<ClockValue>> {
    (0..k)
        .map(|l| {
            let mut rng = StdRng::seed_from_u64(seed ^ (0x51DE * l as u64 + 1));
            random_configuration(graph, unison, &mut rng)
        })
        .collect()
}

fn safety_of(spec: SpecAu) -> ConfigPredicate<ClockValue> {
    Box::new(move |c, g| spec.is_safe(c, g))
}

fn legitimacy_of(spec: SpecAu) -> ConfigPredicate<ClockValue> {
    Box::new(move |c, g| spec.is_legitimate(c, g))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Plain batched unison equals K independent scalar runs.
    #[test]
    fn packed_unison_equals_scalar_runs(
        case in 0u8..4,
        alpha in 2i64..9,
        k_extra in 2i64..20,
        seed in 0u64..1_000,
        k_pick in 0usize..4,
    ) {
        let k_lanes = [1, 3, 64, 100][k_pick];
        let graph = graph_for(case);
        let clock = CherryClock::new(alpha, alpha + k_extra).unwrap();
        let unison = AsyncUnison::new(clock);
        let inits = random_inits(&graph, &unison, k_lanes, seed);
        let lanes = run_batch(&graph, &unison, &inits, 400);
        for (lane, init) in lanes.iter().zip(&inits) {
            let mut daemon = SynchronousDaemon::new();
            let sim = Simulator::new(&graph, &unison);
            let scalar =
                sim.run(init.clone(), &mut daemon, RunLimits::with_max_steps(400), &mut []);
            prop_assert_eq!(lane.steps, scalar.steps);
            prop_assert_eq!(lane.moves, scalar.moves);
            prop_assert_eq!(lane.stop, scalar.stop);
            prop_assert_eq!(&lane.final_config, &scalar.final_config);
        }
    }

    /// Measured batched unison replicates the scalar measurement stack
    /// under the `specAU` predicates with early stop — the exact stack the
    /// campaign executor runs per cell.
    #[test]
    fn packed_unison_measured_equals_scalar_measurement(
        case in 0u8..4,
        alpha in 2i64..9,
        k_extra in 2i64..20,
        seed in 0u64..1_000,
        k_pick in 0usize..4,
    ) {
        let k_lanes = [1, 3, 64, 100][k_pick];
        let graph = graph_for(case);
        let clock = CherryClock::new(alpha, alpha + k_extra).unwrap();
        let unison = AsyncUnison::new(clock);
        let spec = SpecAu::new(clock);
        let inits = random_inits(&graph, &unison, k_lanes, seed);
        let stop_pred = legitimacy_of(spec);
        let measured = run_batch_measured(
            &graph,
            &unison,
            inits.clone(),
            400,
            &safety_of(spec),
            &legitimacy_of(spec),
            Some((&stop_pred, 3)),
        );
        for ((report, _), init) in measured.iter().zip(&inits) {
            let sim = Simulator::new(&graph, &unison);
            let scalar = MeasurementContext::new(safety_of(spec), legitimacy_of(spec))
                .with_early_stop(legitimacy_of(spec), 3)
                .run(&sim, &mut SynchronousDaemon::new(), init.clone(), 400);
            prop_assert_eq!(report.steps_run, scalar.steps_run);
            prop_assert_eq!(report.moves, scalar.moves);
            prop_assert_eq!(report.stop, scalar.stop);
            prop_assert_eq!(report.last_violation, scalar.last_violation);
            prop_assert_eq!(report.violation_count, scalar.violation_count);
            prop_assert_eq!(report.stabilization_steps, scalar.stabilization_steps);
            prop_assert_eq!(report.first_legitimate, scalar.first_legitimate);
            prop_assert_eq!(report.legitimacy_entry, scalar.legitimacy_entry);
            prop_assert_eq!(report.ended_legitimate, scalar.ended_legitimate);
        }
    }
}
