//! `specstab-telemetry` — the observability substrate shared by the
//! kernel, the campaign pipeline, and the bench harness.
//!
//! Reproducing the paper's quantitative claims means running multi-minute,
//! thousand-cell campaigns; this crate makes those runs observable without
//! perturbing their outputs:
//!
//! * [`counters`] — cheap per-run engine counters (steps, moves, guard
//!   evaluations, delta bytes) accumulated in plain locals by the step loop
//!   and flushed to a process-global lock-free aggregate once per run,
//!   plus process-wide instruments (scratch reuses, configuration clones);
//! * [`json`] — the workspace's hand-rolled JSON value type: deterministic
//!   insertion-ordered writer (pretty and compact) and a strict,
//!   depth-bounded recursive-descent reader;
//! * [`event`] — the versioned `specstab-events/v1` NDJSON event stream:
//!   campaign/plan/shard/cell/merge lifecycle events with per-stream
//!   monotonic sequence numbers and timestamps, a buffered
//!   [`event::TraceWriter`], and the deterministic multi-stream
//!   [`event::merge_streams`] interleaver;
//! * [`metrics`] — the `specstab-metrics/v1` sidecar artifact (wall clock
//!   per cell/group/shard, throughput, counter totals) built from an event
//!   stream, kept strictly separate from the deterministic campaign
//!   artifacts;
//! * [`progress`] — rate-limited stderr heartbeats: cells done/total with
//!   throughput and ETA for in-process sweeps, and a lease-table variant
//!   (leased/completed/expired/merged) for the `campaign serve`
//!   coordinator.
//!
//! The deliberate invariant threaded through all of it: **telemetry never
//! enters deterministic artifacts**. Wall clock, counters and host facts
//! live only in event streams and metrics sidecars, so the byte-identity
//! guarantees of `campaign.json` survive with tracing enabled.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod counters;
pub mod event;
pub mod json;
pub mod metrics;
pub mod progress;

pub use counters::{global, BatchDaemonClass, CounterSnapshot, RunCounters};
pub use event::{
    merge_streams, parse_ndjson, validate_events, Event, EventKind, TraceWriter, EVENTS_SCHEMA,
};
pub use json::{obj, Json, MAX_PARSE_DEPTH};
pub use metrics::{metrics_from_events, METRICS_SCHEMA};
pub use progress::{Heartbeat, ServeCounts, ServeHeartbeat};
