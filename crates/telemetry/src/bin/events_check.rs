//! `events_check` — strict validator for `specstab-events/v1` NDJSON
//! trace files.
//!
//! Usage: `events_check <trace.ndjson>...`
//!
//! Each file is parsed line-by-line through the strict JSON reader and
//! checked against the stream discipline (schema header first, dense
//! per-stream sequence numbers, monotonic timestamps). Exit code 0 when
//! every file validates; 1 with a diagnostic on stderr otherwise. CI runs
//! this over the traces the distributed-pipeline job produces.

use specstab_telemetry::event::{parse_ndjson, validate_events};

fn check_file(path: &str) -> Result<usize, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let events = parse_ndjson(&text).map_err(|e| format!("{path}: {e}"))?;
    validate_events(&events).map_err(|e| format!("{path}: {e}"))?;
    Ok(events.len())
}

fn main() {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: events_check <trace.ndjson>...");
        std::process::exit(2);
    }
    let mut failed = false;
    for path in &paths {
        match check_file(path) {
            Ok(n) => println!("{path}: ok ({n} events)"),
            Err(e) => {
                eprintln!("events_check: {e}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
