//! `events_check` — strict validator for `specstab-events/v1` NDJSON
//! trace files.
//!
//! Usage: `events_check <trace.ndjson>...`
//!
//! Each file is parsed line-by-line through the strict JSON reader and
//! checked against the stream discipline (schema header first, dense
//! per-stream sequence numbers, monotonic timestamps) plus the batch
//! counter invariant (a stream with zero launched lanes cannot carry idle
//! lane-steps). Exit code 0 when every file validates; 1 with a
//! diagnostic on stderr otherwise. CI runs this over the traces the
//! distributed-pipeline job produces.

use specstab_telemetry::counters::CounterSnapshot;
use specstab_telemetry::event::{parse_ndjson, validate_events, Event, EventKind};

/// Batch counter invariants on every counter-carrying event: idle
/// lane-steps are only accumulated inside a batch loop, so they cannot
/// appear without launched lanes, and the per-daemon-class fallback
/// counters partition the scalar-fallback total (each fallback is
/// attributed to exactly one class). Returns the last (most aggregated)
/// counter snapshot for the summary line.
fn check_batch_counters(events: &[Event]) -> Result<CounterSnapshot, String> {
    let mut totals = CounterSnapshot::default();
    for e in events {
        let counters = match &e.kind {
            EventKind::ShardEnd { counters, .. } => counters,
            EventKind::CampaignEnd { counters, .. } => counters,
            _ => continue,
        };
        if counters.batch_lanes == 0 && counters.batch_idle_lane_steps != 0 {
            return Err(format!(
                "event seq {}: {} idle lane-steps with zero batch lanes launched",
                e.seq, counters.batch_idle_lane_steps
            ));
        }
        let class_fallbacks = counters.batch_fallback_sync_groups
            + counters.batch_fallback_rr_groups
            + counters.batch_fallback_rand_groups
            + counters.batch_fallback_dist_groups;
        // Legacy traces carry the total without the class split (parsed
        // as zeros), so the partition is only enforced once any class
        // counter is present.
        if class_fallbacks != 0 && class_fallbacks != counters.batch_scalar_fallbacks {
            return Err(format!(
                "event seq {}: per-class fallbacks ({class_fallbacks}) do not partition the \
                 scalar-fallback total ({})",
                e.seq, counters.batch_scalar_fallbacks
            ));
        }
        totals = *counters;
    }
    Ok(totals)
}

/// Lease discipline for coordinator traces: every `lease_expired` must
/// reference a `(shard_id, lease_id)` pair previously granted to the same
/// worker, and lease ids must never be reused by a later grant.
fn check_lease_discipline(events: &[Event]) -> Result<(), String> {
    let mut granted: Vec<(u64, u64, &str)> = Vec::new();
    for e in events {
        match &e.kind {
            EventKind::LeaseGranted { shard_id, worker, lease_id, .. } => {
                if granted.iter().any(|(_, id, _)| id == lease_id) {
                    return Err(format!("event seq {}: lease id {lease_id} reused", e.seq));
                }
                granted.push((*shard_id, *lease_id, worker));
            }
            EventKind::LeaseExpired { shard_id, worker, lease_id } => {
                let known = granted
                    .iter()
                    .any(|(s, id, w)| s == shard_id && id == lease_id && *w == worker);
                if !known {
                    return Err(format!(
                        "event seq {}: lease {lease_id} on shard {shard_id} expired for \
                         worker {worker} but was never granted",
                        e.seq
                    ));
                }
            }
            _ => {}
        }
    }
    Ok(())
}

fn check_file(path: &str) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let events = parse_ndjson(&text).map_err(|e| format!("{path}: {e}"))?;
    validate_events(&events).map_err(|e| format!("{path}: {e}"))?;
    check_lease_discipline(&events).map_err(|e| format!("{path}: {e}"))?;
    let totals = check_batch_counters(&events).map_err(|e| format!("{path}: {e}"))?;
    Ok(format!(
        "{path}: ok ({} events; batch: {} lanes, {} idle lane-steps, {} scalar fallbacks; \
         routed sync/rr/rand/dist: {}/{}/{}/{})",
        events.len(),
        totals.batch_lanes,
        totals.batch_idle_lane_steps,
        totals.batch_scalar_fallbacks,
        totals.batch_routed_sync_groups,
        totals.batch_routed_rr_groups,
        totals.batch_routed_rand_groups,
        totals.batch_routed_dist_groups
    ))
}

fn main() {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: events_check <trace.ndjson>...");
        std::process::exit(2);
    }
    let mut failed = false;
    for path in &paths {
        match check_file(path) {
            Ok(line) => println!("{line}"),
            Err(e) => {
                eprintln!("events_check: {e}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
