//! The `specstab-events/v1` structured event stream.
//!
//! An event stream is NDJSON: one self-contained JSON object per line,
//! written through [`Json::render_compact`]. Every stream starts with a
//! [`EventKind::Stream`] header naming the schema version and opens its own
//! **sequence space**: events carry a per-stream `seq` starting at 0 and
//! incrementing by exactly 1, plus a `t_us` timestamp (microseconds since
//! the stream's epoch) that is monotonically non-decreasing within the
//! stream. Shard worker processes stamp their events with their shard id;
//! orchestrator/in-process events carry no shard field.
//!
//! Timestamps and wall-clock fields are **observability data**: they make
//! event streams deliberately non-reproducible across runs, which is why
//! events live in their own sidecar files and never feed the deterministic
//! campaign artifacts. What *is* deterministic is the interleaving:
//! [`merge_streams`] orders any set of complete shard streams purely by
//! `(shard, seq)`, so a merged trace is byte-identical no matter the order
//! in which workers finished or their files were read back.

use crate::counters::CounterSnapshot;
use crate::json::{obj, Json};
use std::fs::File;
use std::io::{BufWriter, Write as _};
use std::path::Path;
use std::time::Instant;

/// Schema identifier carried by every stream header. Bump on any change to
/// the event layouts below; readers reject every other value.
pub const EVENTS_SCHEMA: &str = "specstab-events/v1";

/// Coordinates and outcome summary of one executed cell.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CellEvent {
    /// Topology spec.
    pub topology: String,
    /// Protocol registry name.
    pub protocol: String,
    /// Daemon spec.
    pub daemon: String,
    /// Initial-configuration mode (display form, e.g. `burst:2`).
    pub init: String,
    /// Seed index within the group.
    pub seed_index: u64,
    /// Wall-clock microseconds the measured run took.
    pub wall_us: u64,
    /// Moves the run executed (0 for failed cells).
    pub moves: u64,
    /// Outcome summary, or the cell's error message.
    pub outcome: Result<CellOutcomeEvent, String>,
}

/// The successful-cell outcome summary carried in a [`CellEvent`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct CellOutcomeEvent {
    /// Steps the run executed.
    pub steps_run: u64,
    /// Measured stabilization time.
    pub stabilization_steps: u64,
    /// Whether the run ended inside the legitimate region.
    pub converged: bool,
}

/// One lifecycle event. See each variant for its NDJSON `event` tag.
#[derive(Clone, Debug, PartialEq)]
pub enum EventKind {
    /// `stream`: the mandatory first event of every stream.
    Stream {
        /// Schema version ([`EVENTS_SCHEMA`]).
        schema: String,
        /// Which producer opened the stream (`run`, `plan`, `shard`,
        /// `merge`, `bench`).
        source: String,
    },
    /// `campaign_start`: a sweep is about to execute.
    CampaignStart {
        /// Cells in the matrix.
        cells: u64,
        /// Scenario groups in the matrix.
        groups: u64,
        /// Campaign base seed.
        seed: u64,
        /// Per-run step budget.
        max_steps: u64,
    },
    /// `plan`: a shard plan was produced.
    Plan {
        /// Cells in the plan.
        cells: u64,
        /// Shards the plan was cut into.
        shards: u64,
    },
    /// `shard_start`: a shard began executing its cell range.
    ShardStart {
        /// First cell index covered.
        start: u64,
        /// One past the last cell index covered.
        end: u64,
    },
    /// `cell`: one cell finished (successfully or not).
    Cell(CellEvent),
    /// `group`: one scenario group finished.
    Group {
        /// Canonical group key.
        key: String,
        /// Cells executed.
        runs: u64,
        /// Cells that errored.
        errors: u64,
        /// Cells that ended legitimate.
        converged: u64,
        /// Theorem-bound violations.
        violations: u64,
        /// Wall-clock microseconds over the group's cells.
        wall_us: u64,
    },
    /// `shard_end`: a shard finished all of its cells.
    ShardEnd {
        /// Cells the shard executed.
        cells: u64,
        /// Shard wall-clock microseconds.
        wall_us: u64,
        /// Engine-counter totals accumulated by the shard process.
        counters: CounterSnapshot,
    },
    /// `lease_granted`: the serve coordinator leased a shard to a worker.
    LeaseGranted {
        /// Shard id leased (the *lease subject*, distinct from the
        /// stream-coordinate `shard` field every event carries).
        shard_id: u64,
        /// Worker the lease was granted to.
        worker: String,
        /// Unique lease id (coordinator-scoped, never reused).
        lease_id: u64,
        /// Lease duration in milliseconds.
        lease_ms: u64,
    },
    /// `lease_expired`: a lease deadline passed without an upload; the
    /// shard returns to the pending pool for re-dispatch.
    LeaseExpired {
        /// Shard id whose lease expired.
        shard_id: u64,
        /// Worker that held the expired lease.
        worker: String,
        /// The expired lease's id.
        lease_id: u64,
    },
    /// `partial_accepted`: the coordinator validated and folded an
    /// uploaded partial artifact (first upload of a shard only; duplicate
    /// uploads are acknowledged and dropped without an event).
    PartialAccepted {
        /// Shard id the partial covers.
        shard_id: u64,
        /// Worker that uploaded it (`"spool"` for partials resumed from
        /// the coordinator's spool directory).
        worker: String,
        /// Cells the partial carries.
        cells: u64,
    },
    /// `partial_rejected`: an upload failed validation (bad schema, wrong
    /// plan fingerprint, range mismatch) and was discarded.
    PartialRejected {
        /// Worker that attempted the upload.
        worker: String,
        /// Human-readable rejection reason.
        reason: String,
    },
    /// `merge_start`: partial artifacts are about to be folded.
    MergeStart {
        /// Number of partials.
        partials: u64,
    },
    /// `merge_end`: the merged result exists.
    MergeEnd {
        /// Cells in the merged result.
        cells: u64,
        /// Groups in the merged result.
        groups: u64,
    },
    /// `campaign_end`: the sweep finished.
    CampaignEnd {
        /// Cells executed.
        cells: u64,
        /// Cells that errored.
        errors: u64,
        /// Theorem-bound violations.
        violations: u64,
        /// Campaign wall-clock microseconds.
        wall_us: u64,
        /// Engine-counter totals for the whole campaign.
        counters: CounterSnapshot,
    },
}

impl EventKind {
    /// The NDJSON `event` tag of this kind.
    #[must_use]
    pub fn tag(&self) -> &'static str {
        match self {
            EventKind::Stream { .. } => "stream",
            EventKind::CampaignStart { .. } => "campaign_start",
            EventKind::Plan { .. } => "plan",
            EventKind::ShardStart { .. } => "shard_start",
            EventKind::Cell(_) => "cell",
            EventKind::Group { .. } => "group",
            EventKind::ShardEnd { .. } => "shard_end",
            EventKind::LeaseGranted { .. } => "lease_granted",
            EventKind::LeaseExpired { .. } => "lease_expired",
            EventKind::PartialAccepted { .. } => "partial_accepted",
            EventKind::PartialRejected { .. } => "partial_rejected",
            EventKind::MergeStart { .. } => "merge_start",
            EventKind::MergeEnd { .. } => "merge_end",
            EventKind::CampaignEnd { .. } => "campaign_end",
        }
    }
}

/// One event: stream coordinates plus the lifecycle payload.
#[derive(Clone, Debug, PartialEq)]
pub struct Event {
    /// Shard id for shard-worker streams; `None` for orchestrator and
    /// in-process streams.
    pub shard: Option<u64>,
    /// Per-stream sequence number (0-based, dense).
    pub seq: u64,
    /// Microseconds since the stream's epoch; non-decreasing per stream.
    pub t_us: u64,
    /// The lifecycle payload.
    pub kind: EventKind,
}

pub(crate) fn counters_json(c: &CounterSnapshot) -> Json {
    obj(vec![
        ("steps", Json::UInt(c.steps)),
        ("moves", Json::UInt(c.moves)),
        ("guard_evals", Json::UInt(c.guard_evals)),
        ("delta_bytes", Json::UInt(c.delta_bytes)),
        ("scratch_reuses", Json::UInt(c.scratch_reuses)),
        ("config_clones", Json::UInt(c.config_clones)),
        ("batch_lanes", Json::UInt(c.batch_lanes)),
        ("batch_lane_steps", Json::UInt(c.batch_lane_steps)),
        ("batch_idle_lane_steps", Json::UInt(c.batch_idle_lane_steps)),
        ("batch_scalar_fallbacks", Json::UInt(c.batch_scalar_fallbacks)),
        ("batch_routed_sync_groups", Json::UInt(c.batch_routed_sync_groups)),
        ("batch_routed_rr_groups", Json::UInt(c.batch_routed_rr_groups)),
        ("batch_routed_rand_groups", Json::UInt(c.batch_routed_rand_groups)),
        ("batch_routed_dist_groups", Json::UInt(c.batch_routed_dist_groups)),
        ("batch_fallback_sync_groups", Json::UInt(c.batch_fallback_sync_groups)),
        ("batch_fallback_rr_groups", Json::UInt(c.batch_fallback_rr_groups)),
        ("batch_fallback_rand_groups", Json::UInt(c.batch_fallback_rand_groups)),
        ("batch_fallback_dist_groups", Json::UInt(c.batch_fallback_dist_groups)),
    ])
}

/// Optional counter field: absent in traces written before the batch
/// counters existed, which still carry the `specstab-events/v1` schema —
/// absent reads as zero so old traces keep validating.
fn opt_u64(j: &Json, key: &str) -> Result<u64, String> {
    j.get(key).map_or(Ok(0), Json::as_u64)
}

fn counters_from_json(j: &Json) -> Result<CounterSnapshot, String> {
    Ok(CounterSnapshot {
        steps: j.req("steps")?.as_u64()?,
        moves: j.req("moves")?.as_u64()?,
        guard_evals: j.req("guard_evals")?.as_u64()?,
        delta_bytes: j.req("delta_bytes")?.as_u64()?,
        scratch_reuses: j.req("scratch_reuses")?.as_u64()?,
        config_clones: j.req("config_clones")?.as_u64()?,
        batch_lanes: opt_u64(j, "batch_lanes")?,
        batch_lane_steps: opt_u64(j, "batch_lane_steps")?,
        batch_idle_lane_steps: opt_u64(j, "batch_idle_lane_steps")?,
        batch_scalar_fallbacks: opt_u64(j, "batch_scalar_fallbacks")?,
        batch_routed_sync_groups: opt_u64(j, "batch_routed_sync_groups")?,
        batch_routed_rr_groups: opt_u64(j, "batch_routed_rr_groups")?,
        batch_routed_rand_groups: opt_u64(j, "batch_routed_rand_groups")?,
        batch_routed_dist_groups: opt_u64(j, "batch_routed_dist_groups")?,
        batch_fallback_sync_groups: opt_u64(j, "batch_fallback_sync_groups")?,
        batch_fallback_rr_groups: opt_u64(j, "batch_fallback_rr_groups")?,
        batch_fallback_rand_groups: opt_u64(j, "batch_fallback_rand_groups")?,
        batch_fallback_dist_groups: opt_u64(j, "batch_fallback_dist_groups")?,
    })
}

impl Event {
    /// Serializes to one NDJSON line (no trailing newline).
    #[must_use]
    pub fn to_json_line(&self) -> String {
        let mut fields = vec![("event", Json::Str(self.kind.tag().into()))];
        if let Some(shard) = self.shard {
            fields.push(("shard", Json::UInt(shard)));
        }
        fields.push(("seq", Json::UInt(self.seq)));
        fields.push(("t_us", Json::UInt(self.t_us)));
        match &self.kind {
            EventKind::Stream { schema, source } => {
                fields.push(("schema", Json::Str(schema.clone())));
                fields.push(("source", Json::Str(source.clone())));
            }
            EventKind::CampaignStart { cells, groups, seed, max_steps } => {
                fields.push(("cells", Json::UInt(*cells)));
                fields.push(("groups", Json::UInt(*groups)));
                fields.push(("seed", Json::UInt(*seed)));
                fields.push(("max_steps", Json::UInt(*max_steps)));
            }
            EventKind::Plan { cells, shards } => {
                fields.push(("cells", Json::UInt(*cells)));
                fields.push(("shards", Json::UInt(*shards)));
            }
            EventKind::ShardStart { start, end } => {
                fields.push(("start", Json::UInt(*start)));
                fields.push(("end", Json::UInt(*end)));
            }
            EventKind::Cell(c) => {
                fields.push(("topology", Json::Str(c.topology.clone())));
                fields.push(("protocol", Json::Str(c.protocol.clone())));
                fields.push(("daemon", Json::Str(c.daemon.clone())));
                fields.push(("init", Json::Str(c.init.clone())));
                fields.push(("seed_index", Json::UInt(c.seed_index)));
                fields.push(("wall_us", Json::UInt(c.wall_us)));
                fields.push(("moves", Json::UInt(c.moves)));
                match &c.outcome {
                    Ok(o) => {
                        fields.push(("ok", Json::Bool(true)));
                        fields.push(("steps_run", Json::UInt(o.steps_run)));
                        fields.push(("stabilization_steps", Json::UInt(o.stabilization_steps)));
                        fields.push(("converged", Json::Bool(o.converged)));
                    }
                    Err(e) => {
                        fields.push(("ok", Json::Bool(false)));
                        fields.push(("error", Json::Str(e.clone())));
                    }
                }
            }
            EventKind::Group { key, runs, errors, converged, violations, wall_us } => {
                fields.push(("key", Json::Str(key.clone())));
                fields.push(("runs", Json::UInt(*runs)));
                fields.push(("errors", Json::UInt(*errors)));
                fields.push(("converged", Json::UInt(*converged)));
                fields.push(("violations", Json::UInt(*violations)));
                fields.push(("wall_us", Json::UInt(*wall_us)));
            }
            EventKind::ShardEnd { cells, wall_us, counters } => {
                fields.push(("cells", Json::UInt(*cells)));
                fields.push(("wall_us", Json::UInt(*wall_us)));
                fields.push(("counters", counters_json(counters)));
            }
            EventKind::LeaseGranted { shard_id, worker, lease_id, lease_ms } => {
                fields.push(("shard_id", Json::UInt(*shard_id)));
                fields.push(("worker", Json::Str(worker.clone())));
                fields.push(("lease_id", Json::UInt(*lease_id)));
                fields.push(("lease_ms", Json::UInt(*lease_ms)));
            }
            EventKind::LeaseExpired { shard_id, worker, lease_id } => {
                fields.push(("shard_id", Json::UInt(*shard_id)));
                fields.push(("worker", Json::Str(worker.clone())));
                fields.push(("lease_id", Json::UInt(*lease_id)));
            }
            EventKind::PartialAccepted { shard_id, worker, cells } => {
                fields.push(("shard_id", Json::UInt(*shard_id)));
                fields.push(("worker", Json::Str(worker.clone())));
                fields.push(("cells", Json::UInt(*cells)));
            }
            EventKind::PartialRejected { worker, reason } => {
                fields.push(("worker", Json::Str(worker.clone())));
                fields.push(("reason", Json::Str(reason.clone())));
            }
            EventKind::MergeStart { partials } => {
                fields.push(("partials", Json::UInt(*partials)));
            }
            EventKind::MergeEnd { cells, groups } => {
                fields.push(("cells", Json::UInt(*cells)));
                fields.push(("groups", Json::UInt(*groups)));
            }
            EventKind::CampaignEnd { cells, errors, violations, wall_us, counters } => {
                fields.push(("cells", Json::UInt(*cells)));
                fields.push(("errors", Json::UInt(*errors)));
                fields.push(("violations", Json::UInt(*violations)));
                fields.push(("wall_us", Json::UInt(*wall_us)));
                fields.push(("counters", counters_json(counters)));
            }
        }
        obj(fields).render_compact()
    }

    /// Parses one NDJSON line through the strict [`Json`] reader.
    ///
    /// # Errors
    ///
    /// Rejects malformed JSON, unknown `event` tags, and missing or
    /// mistyped fields.
    pub fn from_json_line(line: &str) -> Result<Self, String> {
        let j = Json::parse(line)?;
        let tag = j.req("event")?.as_str()?.to_string();
        let shard = match j.get("shard") {
            Some(s) => Some(s.as_u64()?),
            None => None,
        };
        let seq = j.req("seq")?.as_u64()?;
        let t_us = j.req("t_us")?.as_u64()?;
        let kind = match tag.as_str() {
            "stream" => EventKind::Stream {
                schema: j.req("schema")?.as_str()?.to_string(),
                source: j.req("source")?.as_str()?.to_string(),
            },
            "campaign_start" => EventKind::CampaignStart {
                cells: j.req("cells")?.as_u64()?,
                groups: j.req("groups")?.as_u64()?,
                seed: j.req("seed")?.as_u64()?,
                max_steps: j.req("max_steps")?.as_u64()?,
            },
            "plan" => EventKind::Plan {
                cells: j.req("cells")?.as_u64()?,
                shards: j.req("shards")?.as_u64()?,
            },
            "shard_start" => EventKind::ShardStart {
                start: j.req("start")?.as_u64()?,
                end: j.req("end")?.as_u64()?,
            },
            "cell" => EventKind::Cell(CellEvent {
                topology: j.req("topology")?.as_str()?.to_string(),
                protocol: j.req("protocol")?.as_str()?.to_string(),
                daemon: j.req("daemon")?.as_str()?.to_string(),
                init: j.req("init")?.as_str()?.to_string(),
                seed_index: j.req("seed_index")?.as_u64()?,
                wall_us: j.req("wall_us")?.as_u64()?,
                moves: j.req("moves")?.as_u64()?,
                outcome: if j.req("ok")?.as_bool()? {
                    Ok(CellOutcomeEvent {
                        steps_run: j.req("steps_run")?.as_u64()?,
                        stabilization_steps: j.req("stabilization_steps")?.as_u64()?,
                        converged: j.req("converged")?.as_bool()?,
                    })
                } else {
                    Err(j.req("error")?.as_str()?.to_string())
                },
            }),
            "group" => EventKind::Group {
                key: j.req("key")?.as_str()?.to_string(),
                runs: j.req("runs")?.as_u64()?,
                errors: j.req("errors")?.as_u64()?,
                converged: j.req("converged")?.as_u64()?,
                violations: j.req("violations")?.as_u64()?,
                wall_us: j.req("wall_us")?.as_u64()?,
            },
            "shard_end" => EventKind::ShardEnd {
                cells: j.req("cells")?.as_u64()?,
                wall_us: j.req("wall_us")?.as_u64()?,
                counters: counters_from_json(j.req("counters")?)?,
            },
            "lease_granted" => EventKind::LeaseGranted {
                shard_id: j.req("shard_id")?.as_u64()?,
                worker: j.req("worker")?.as_str()?.to_string(),
                lease_id: j.req("lease_id")?.as_u64()?,
                lease_ms: j.req("lease_ms")?.as_u64()?,
            },
            "lease_expired" => EventKind::LeaseExpired {
                shard_id: j.req("shard_id")?.as_u64()?,
                worker: j.req("worker")?.as_str()?.to_string(),
                lease_id: j.req("lease_id")?.as_u64()?,
            },
            "partial_accepted" => EventKind::PartialAccepted {
                shard_id: j.req("shard_id")?.as_u64()?,
                worker: j.req("worker")?.as_str()?.to_string(),
                cells: j.req("cells")?.as_u64()?,
            },
            "partial_rejected" => EventKind::PartialRejected {
                worker: j.req("worker")?.as_str()?.to_string(),
                reason: j.req("reason")?.as_str()?.to_string(),
            },
            "merge_start" => EventKind::MergeStart { partials: j.req("partials")?.as_u64()? },
            "merge_end" => EventKind::MergeEnd {
                cells: j.req("cells")?.as_u64()?,
                groups: j.req("groups")?.as_u64()?,
            },
            "campaign_end" => EventKind::CampaignEnd {
                cells: j.req("cells")?.as_u64()?,
                errors: j.req("errors")?.as_u64()?,
                violations: j.req("violations")?.as_u64()?,
                wall_us: j.req("wall_us")?.as_u64()?,
                counters: counters_from_json(j.req("counters")?)?,
            },
            other => return Err(format!("unknown event tag '{other}'")),
        };
        Ok(Self { shard, seq, t_us, kind })
    }
}

/// Parses a whole NDJSON document (one event per non-empty line).
///
/// # Errors
///
/// Returns the first per-line parse error, prefixed with its 1-based line
/// number.
pub fn parse_ndjson(text: &str) -> Result<Vec<Event>, String> {
    text.lines()
        .enumerate()
        .filter(|(_, line)| !line.trim().is_empty())
        .map(|(i, line)| Event::from_json_line(line).map_err(|e| format!("line {}: {e}", i + 1)))
        .collect()
}

/// Interleaves complete event streams into one deterministic sequence:
/// ordered by `(shard, seq)`, with shard-less (orchestrator) events
/// ordered after all shard streams. Input stream order — and the order of
/// events across different streams — does not affect the output, which is
/// what makes merged traces reproducible regardless of worker completion
/// order. Streams must carry distinct shard ids; within a stream, `seq` is
/// unique by construction.
#[must_use]
pub fn merge_streams(streams: Vec<Vec<Event>>) -> Vec<Event> {
    let mut all: Vec<Event> = streams.into_iter().flatten().collect();
    all.sort_by_key(|e| (e.shard.unwrap_or(u64::MAX), e.seq));
    all
}

/// Validates the `specstab-events/v1` stream discipline over a parsed
/// event sequence (e.g. a whole trace file): every per-shard stream must
/// start with a [`EventKind::Stream`] header carrying a supported schema,
/// number its events densely from 0, and keep `t_us` non-decreasing.
///
/// # Errors
///
/// Returns a description of the first violation.
pub fn validate_events(events: &[Event]) -> Result<(), String> {
    if events.is_empty() {
        return Err("empty event stream".into());
    }
    // Per-stream running state, keyed by shard id (None = orchestrator).
    let mut states: Vec<(Option<u64>, u64, u64)> = Vec::new(); // (shard, next_seq, last_t)
    for (i, e) in events.iter().enumerate() {
        let line = i + 1;
        let state = states.iter_mut().find(|(shard, _, _)| *shard == e.shard);
        match state {
            None => {
                let EventKind::Stream { schema, .. } = &e.kind else {
                    return Err(format!(
                        "event {line}: stream {:?} opens with '{}', expected 'stream' header",
                        e.shard,
                        e.kind.tag()
                    ));
                };
                if schema != EVENTS_SCHEMA {
                    return Err(format!(
                        "event {line}: unsupported schema '{schema}' (expected {EVENTS_SCHEMA})"
                    ));
                }
                if e.seq != 0 {
                    return Err(format!(
                        "event {line}: stream {:?} header has seq {}, expected 0",
                        e.shard, e.seq
                    ));
                }
                states.push((e.shard, 1, e.t_us));
            }
            Some((shard, next_seq, last_t)) => {
                if e.seq != *next_seq {
                    return Err(format!(
                        "event {line}: stream {shard:?} has seq {} after {}, expected dense \
                         numbering",
                        e.seq,
                        *next_seq - 1
                    ));
                }
                if e.t_us < *last_t {
                    return Err(format!(
                        "event {line}: stream {shard:?} time went backwards ({} -> {})",
                        *last_t, e.t_us
                    ));
                }
                *next_seq += 1;
                *last_t = e.t_us;
            }
        }
    }
    Ok(())
}

/// A buffered NDJSON event-stream writer: stamps each event with the
/// stream's shard id, the next sequence number, and microseconds since the
/// writer's creation (the stream epoch), so emission order alone
/// guarantees the stream discipline [`validate_events`] checks.
pub struct TraceWriter {
    out: BufWriter<File>,
    shard: Option<u64>,
    seq: u64,
    epoch: Instant,
}

impl TraceWriter {
    /// Creates the trace file and writes the stream header.
    ///
    /// # Errors
    ///
    /// Returns a message when the file cannot be created or written.
    pub fn create(path: &Path, shard: Option<u64>, source: &str) -> Result<Self, String> {
        let file =
            File::create(path).map_err(|e| format!("creating trace {}: {e}", path.display()))?;
        let mut writer = Self { out: BufWriter::new(file), shard, seq: 0, epoch: Instant::now() };
        writer
            .emit(EventKind::Stream { schema: EVENTS_SCHEMA.into(), source: source.to_string() })?;
        Ok(writer)
    }

    /// Stamps and writes one event of this stream.
    ///
    /// # Errors
    ///
    /// Returns a message on write failure.
    pub fn emit(&mut self, kind: EventKind) -> Result<(), String> {
        let event = Event {
            shard: self.shard,
            seq: self.seq,
            t_us: u64::try_from(self.epoch.elapsed().as_micros()).unwrap_or(u64::MAX),
            kind,
        };
        self.seq += 1;
        self.write_line(&event)
    }

    /// Writes an already-stamped event verbatim — the pass-through the
    /// orchestrator uses to splice merged shard streams into the final
    /// trace without re-stamping them.
    ///
    /// # Errors
    ///
    /// Returns a message on write failure.
    pub fn emit_raw(&mut self, event: &Event) -> Result<(), String> {
        self.write_line(event)
    }

    fn write_line(&mut self, event: &Event) -> Result<(), String> {
        self.out
            .write_all(event.to_json_line().as_bytes())
            .and_then(|()| self.out.write_all(b"\n"))
            .map_err(|e| format!("writing trace: {e}"))
    }

    /// Flushes the stream to disk.
    ///
    /// # Errors
    ///
    /// Returns a message on flush failure.
    pub fn finish(mut self) -> Result<(), String> {
        self.out.flush().map_err(|e| format!("flushing trace: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One exemplar of every event kind (used by the round-trip tests).
    pub(crate) fn one_of_each() -> Vec<EventKind> {
        let counters = CounterSnapshot {
            steps: 1,
            moves: 2,
            guard_evals: 3,
            delta_bytes: 4,
            scratch_reuses: 5,
            config_clones: 6,
            batch_lanes: 7,
            batch_lane_steps: 70,
            batch_idle_lane_steps: 8,
            batch_scalar_fallbacks: 9,
            batch_routed_sync_groups: 10,
            batch_routed_rr_groups: 11,
            batch_routed_rand_groups: 14,
            batch_routed_dist_groups: 15,
            batch_fallback_sync_groups: 12,
            batch_fallback_rr_groups: 13,
            batch_fallback_rand_groups: 16,
            batch_fallback_dist_groups: 17,
        };
        vec![
            EventKind::Stream { schema: EVENTS_SCHEMA.into(), source: "shard".into() },
            EventKind::CampaignStart { cells: 108, groups: 9, seed: 51966, max_steps: 500_000 },
            EventKind::Plan { cells: 108, shards: 3 },
            EventKind::ShardStart { start: 36, end: 72 },
            EventKind::Cell(CellEvent {
                topology: "ring:8".into(),
                protocol: "ssme".into(),
                daemon: "dist:0.5".into(),
                init: "burst:2".into(),
                seed_index: 7,
                wall_us: 1234,
                moves: 99,
                outcome: Ok(CellOutcomeEvent {
                    steps_run: 41,
                    stabilization_steps: 12,
                    converged: true,
                }),
            }),
            EventKind::Cell(CellEvent {
                topology: "mobius:9".into(),
                protocol: "ssme".into(),
                daemon: "sync".into(),
                init: "witness".into(),
                seed_index: 0,
                wall_us: 3,
                moves: 0,
                outcome: Err("unknown topology 'mobius', a \"quoted\" spec".into()),
            }),
            EventKind::Group {
                key: "ring:8|ssme|sync|burst:0".into(),
                runs: 12,
                errors: 0,
                converged: 12,
                violations: 0,
                wall_us: 5678,
            },
            EventKind::ShardEnd { cells: 36, wall_us: 9999, counters },
            EventKind::LeaseGranted {
                shard_id: 4,
                worker: "worker-\"a\"".into(),
                lease_id: 17,
                lease_ms: 30_000,
            },
            EventKind::LeaseExpired { shard_id: 4, worker: "worker-\"a\"".into(), lease_id: 17 },
            EventKind::PartialAccepted { shard_id: 4, worker: "w2".into(), cells: 18 },
            EventKind::PartialRejected {
                worker: "w3".into(),
                reason: "plan fingerprint mismatch\n(line two)".into(),
            },
            EventKind::MergeStart { partials: 3 },
            EventKind::MergeEnd { cells: 108, groups: 9 },
            EventKind::CampaignEnd {
                cells: 108,
                errors: 0,
                violations: 0,
                wall_us: 123_456,
                counters,
            },
        ]
    }

    #[test]
    fn every_event_kind_round_trips_through_the_strict_reader() {
        for (i, kind) in one_of_each().into_iter().enumerate() {
            for shard in [None, Some(2)] {
                let event = Event { shard, seq: i as u64, t_us: 10 * i as u64, kind: kind.clone() };
                let line = event.to_json_line();
                assert!(!line.contains('\n'), "NDJSON line must be single-line: {line}");
                let back =
                    Event::from_json_line(&line).unwrap_or_else(|e| panic!("parsing {line}: {e}"));
                assert_eq!(back, event, "round trip of {}", event.kind.tag());
            }
        }
    }

    #[test]
    fn pre_batch_counter_objects_still_parse_with_zeros() {
        // Traces written before the batch counters existed carry the same
        // schema tag; the batch fields are optional and default to 0.
        let line = "{\"event\":\"shard_end\",\"seq\":0,\"t_us\":0,\"cells\":1,\"wall_us\":2,\
                    \"counters\":{\"steps\":1,\"moves\":2,\"guard_evals\":3,\"delta_bytes\":4,\
                    \"scratch_reuses\":5,\"config_clones\":6}}";
        let event = Event::from_json_line(line).expect("legacy counters parse");
        match event.kind {
            EventKind::ShardEnd { counters, .. } => {
                assert_eq!(counters.moves, 2);
                assert_eq!(counters.batch_lanes, 0);
                assert_eq!(counters.batch_lane_steps, 0);
                assert_eq!(counters.batch_idle_lane_steps, 0);
                assert_eq!(counters.batch_scalar_fallbacks, 0);
                assert_eq!(counters.batch_routed_sync_groups, 0);
                assert_eq!(counters.batch_routed_rr_groups, 0);
                assert_eq!(counters.batch_routed_rand_groups, 0);
                assert_eq!(counters.batch_routed_dist_groups, 0);
                assert_eq!(counters.batch_fallback_sync_groups, 0);
                assert_eq!(counters.batch_fallback_rr_groups, 0);
                assert_eq!(counters.batch_fallback_rand_groups, 0);
                assert_eq!(counters.batch_fallback_dist_groups, 0);
            }
            other => panic!("expected shard_end, got {other:?}"),
        }
    }

    #[test]
    fn reader_rejects_unknown_tags_and_missing_fields() {
        assert!(Event::from_json_line("{\"event\":\"warp\",\"seq\":0,\"t_us\":0}")
            .unwrap_err()
            .contains("unknown event tag"));
        assert!(Event::from_json_line("{\"event\":\"plan\",\"seq\":0,\"t_us\":0}")
            .unwrap_err()
            .contains("missing field"));
        assert!(Event::from_json_line("not json").is_err());
    }

    fn stream(shard: u64, kinds: &[EventKind]) -> Vec<Event> {
        std::iter::once(EventKind::Stream { schema: EVENTS_SCHEMA.into(), source: "shard".into() })
            .chain(kinds.iter().cloned())
            .enumerate()
            .map(|(seq, kind)| Event {
                shard: Some(shard),
                seq: seq as u64,
                t_us: seq as u64,
                kind,
            })
            .collect()
    }

    #[test]
    fn merge_streams_is_independent_of_input_order() {
        let a = stream(0, &[EventKind::ShardStart { start: 0, end: 2 }]);
        let b = stream(1, &[EventKind::ShardStart { start: 2, end: 4 }]);
        let c = stream(2, &[EventKind::ShardStart { start: 4, end: 6 }]);
        let canonical = merge_streams(vec![a.clone(), b.clone(), c.clone()]);
        assert_eq!(merge_streams(vec![c, a, b]), canonical);
        validate_events(&canonical).expect("merged stream is valid");
    }

    #[test]
    fn validate_catches_stream_violations() {
        let good = stream(0, &[EventKind::MergeStart { partials: 1 }]);
        validate_events(&good).expect("valid");
        assert!(validate_events(&[]).is_err(), "empty");

        let mut no_header = good.clone();
        no_header.remove(0);
        assert!(validate_events(&no_header).unwrap_err().contains("expected 'stream' header"));

        let mut gap = good.clone();
        gap[1].seq = 5;
        assert!(validate_events(&gap).unwrap_err().contains("dense numbering"));

        let mut backwards = good.clone();
        backwards[0].t_us = 100;
        assert!(validate_events(&backwards).unwrap_err().contains("time went backwards"));

        let mut bad_schema = good;
        bad_schema[0].kind =
            EventKind::Stream { schema: "specstab-events/v9".into(), source: "shard".into() };
        assert!(validate_events(&bad_schema).unwrap_err().contains("unsupported schema"));
    }

    #[test]
    fn trace_writer_produces_a_valid_parseable_stream() {
        let path =
            std::env::temp_dir().join(format!("specstab-trace-{}.ndjson", std::process::id()));
        let mut w = TraceWriter::create(&path, Some(1), "shard").expect("create");
        w.emit(EventKind::ShardStart { start: 0, end: 4 }).expect("emit");
        w.emit(EventKind::MergeStart { partials: 2 }).expect("emit");
        w.finish().expect("flush");
        let text = std::fs::read_to_string(&path).expect("read back");
        let _ = std::fs::remove_file(&path);
        let events = parse_ndjson(&text).expect("parses");
        assert_eq!(events.len(), 3);
        validate_events(&events).expect("valid stream");
        assert_eq!(events[0].kind.tag(), "stream");
        assert_eq!(events[1].shard, Some(1));
    }
}
