//! Live stderr progress heartbeat for long campaign sweeps.
//!
//! The heartbeat is pure observability: it writes rate-limited single-line
//! updates to **stderr** (stdout stays reserved for artifacts and
//! machine-readable output) and touches nothing deterministic. Worker
//! threads report finished cells through relaxed atomics; printing is
//! throttled through a mutex-guarded "last printed" instant so at most
//! roughly one line per second reaches the terminal no matter how fast
//! cells complete.
//!
//! Deliberately **not** used inside shard subprocesses: their stderr is a
//! pipe the orchestrator only drains on failure, so a chatty heartbeat
//! there could fill the pipe buffer and deadlock the worker.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Minimum interval between printed heartbeat lines.
const PRINT_INTERVAL: Duration = Duration::from_millis(1000);

/// A thread-safe campaign progress reporter.
pub struct Heartbeat {
    total: u64,
    done: AtomicU64,
    moves: AtomicU64,
    start: Instant,
    last_print: Mutex<Option<Instant>>,
}

impl Heartbeat {
    /// A heartbeat expecting `total` cells.
    #[must_use]
    pub fn new(total: u64) -> Self {
        Self {
            total,
            done: AtomicU64::new(0),
            moves: AtomicU64::new(0),
            start: Instant::now(),
            last_print: Mutex::new(None),
        }
    }

    /// Records one finished cell (with the moves it executed) and prints a
    /// progress line if the rate limiter allows.
    pub fn cell_done(&self, moves: u64) {
        self.add_done(1, moves);
    }

    /// Records `cells` finished cells at once — the shape the subprocess
    /// orchestrator reports in, where a whole shard completes in one step
    /// (pass `moves: 0` when move counts are not observable, e.g. before
    /// worker partials are parsed; the moves/s segment is then omitted).
    pub fn add_done(&self, cells: u64, moves: u64) {
        let done = self.done.fetch_add(cells, Ordering::Relaxed) + cells;
        let total_moves = self.moves.fetch_add(moves, Ordering::Relaxed) + moves;
        let Ok(mut last) = self.last_print.lock() else { return };
        let now = Instant::now();
        if let Some(prev) = *last {
            if now.duration_since(prev) < PRINT_INTERVAL && done < self.total {
                return;
            }
        }
        *last = Some(now);
        drop(last);
        self.print_line(done, total_moves);
    }

    /// Prints the final summary line unconditionally.
    pub fn finish(&self) {
        self.print_line(self.done.load(Ordering::Relaxed), self.moves.load(Ordering::Relaxed));
    }

    fn print_line(&self, done: u64, moves: u64) {
        let elapsed = self.start.elapsed().as_secs_f64();
        let pct = if self.total == 0 {
            100.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            let p = done as f64 * 100.0 / self.total as f64;
            p
        };
        let eta = if done == 0 || done >= self.total {
            String::from("--")
        } else {
            #[allow(clippy::cast_precision_loss)]
            let remaining = elapsed / done as f64 * (self.total - done) as f64;
            format_secs(remaining)
        };
        // The moves/s segment only appears when moves are observable
        // (the subprocess orchestrator reports cells without moves).
        #[allow(clippy::cast_precision_loss)]
        let rates = if elapsed > 0.0 && moves > 0 {
            format!(
                "{} cells/s | {} moves/s",
                format_rate(done as f64 / elapsed),
                format_rate(moves as f64 / elapsed)
            )
        } else if elapsed > 0.0 {
            format!("{} cells/s", format_rate(done as f64 / elapsed))
        } else {
            String::from("-- cells/s")
        };
        eprintln!("[campaign] {done}/{} cells ({pct:.1}%) | {rates} | ETA {eta}", self.total);
    }
}

/// Snapshot of coordinator-side shard accounting for one heartbeat line.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeCounts {
    /// Shards currently out on a live lease.
    pub leased: u64,
    /// Shards whose partial has been accepted and folded.
    pub completed: u64,
    /// Leases that expired and were returned to the pending pool
    /// (cumulative; a shard can expire more than once).
    pub expired: u64,
    /// Cells folded into the incremental merge so far.
    pub merged_cells: u64,
}

/// Rate-limited progress line for the `campaign serve` coordinator.
///
/// Unlike [`Heartbeat`], which counts cells finished inside this process,
/// the coordinator never executes cells itself — progress is the state of
/// the lease table, so callers pass a [`ServeCounts`] snapshot and the
/// heartbeat only owns the rate limiting and formatting. The coordinator
/// loop is single-threaded, but the same mutex-guarded throttle as
/// [`Heartbeat`] keeps the type `Sync` and the idiom uniform.
pub struct ServeHeartbeat {
    total_shards: u64,
    start: Instant,
    last_print: Mutex<Option<Instant>>,
}

impl ServeHeartbeat {
    /// A heartbeat for a plan of `total_shards` shards.
    #[must_use]
    pub fn new(total_shards: u64) -> Self {
        Self { total_shards, start: Instant::now(), last_print: Mutex::new(None) }
    }

    /// Prints a progress line if the rate limiter allows (call on every
    /// lease/upload/expiry transition; at most one line per second lands).
    pub fn tick(&self, counts: ServeCounts) {
        let Ok(mut last) = self.last_print.lock() else { return };
        let now = Instant::now();
        if let Some(prev) = *last {
            if now.duration_since(prev) < PRINT_INTERVAL && counts.completed < self.total_shards {
                return;
            }
        }
        *last = Some(now);
        drop(last);
        self.print_line(counts);
    }

    /// Prints the final summary line unconditionally.
    pub fn finish(&self, counts: ServeCounts) {
        self.print_line(counts);
    }

    fn print_line(&self, counts: ServeCounts) {
        let elapsed = self.start.elapsed().as_secs_f64();
        let done = counts.completed;
        let eta = if done == 0 || done >= self.total_shards {
            String::from("--")
        } else {
            #[allow(clippy::cast_precision_loss)]
            let remaining = elapsed / done as f64 * (self.total_shards - done) as f64;
            format_secs(remaining)
        };
        eprintln!(
            "[serve] {done}/{} shards done | {} leased | {} expired | {} cells merged | ETA {eta}",
            self.total_shards, counts.leased, counts.expired, counts.merged_cells,
        );
    }
}

/// Renders a rate with an SI suffix (`873`, `12.3k`, `4.56M`).
fn format_rate(rate: f64) -> String {
    if rate >= 1e6 {
        format!("{:.2}M", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.1}k", rate / 1e3)
    } else {
        format!("{rate:.0}")
    }
}

/// Renders a duration in seconds as `42s` or `3m12s`.
fn format_secs(secs: f64) -> String {
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let s = secs.max(0.0).round() as u64;
    if s >= 60 {
        format!("{}m{:02}s", s / 60, s % 60)
    } else {
        format!("{s}s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_accumulate_across_threads() {
        let hb = Heartbeat::new(8);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    hb.cell_done(10);
                    hb.cell_done(5);
                });
            }
        });
        assert_eq!(hb.done.load(Ordering::Relaxed), 8);
        assert_eq!(hb.moves.load(Ordering::Relaxed), 60);
        hb.finish();
    }

    #[test]
    fn serve_heartbeat_rate_limits_but_always_prints_completion() {
        let hb = ServeHeartbeat::new(4);
        let counts = ServeCounts { leased: 2, completed: 1, expired: 0, merged_cells: 9 };
        hb.tick(counts);
        // Second tick inside the interval is suppressed (no panic, no print
        // path we can observe here beyond the throttle state update).
        hb.tick(counts);
        assert!(hb.last_print.lock().unwrap().is_some());
        hb.finish(ServeCounts { leased: 0, completed: 4, expired: 1, merged_cells: 36 });
    }

    #[test]
    fn rate_and_eta_formatting() {
        assert_eq!(format_rate(873.2), "873");
        assert_eq!(format_rate(12_340.0), "12.3k");
        assert_eq!(format_rate(4_560_000.0), "4.56M");
        assert_eq!(format_secs(42.4), "42s");
        assert_eq!(format_secs(192.0), "3m12s");
    }
}
