//! The `specstab-metrics/v1` sidecar: runtime metrics distilled from an
//! event stream.
//!
//! `metrics.json` is the artifact you look at to understand *how* a
//! campaign ran — wall clock per cell/group/shard, throughput, engine
//! counter totals — while `campaign.json` stays the artifact that says
//! *what* it computed. The two never mix: metrics carry timestamps and
//! host-dependent counters and are therefore non-reproducible by design,
//! which is exactly why they are a separate file instead of extra fields
//! on the deterministic artifact.

use crate::counters::CounterSnapshot;
use crate::event::{counters_json, Event, EventKind};
use crate::json::{obj, Json};

/// Schema identifier written into every metrics sidecar.
pub const METRICS_SCHEMA: &str = "specstab-metrics/v1";

fn moves_per_sec(moves: u64, wall_us: u64) -> Json {
    if wall_us == 0 {
        return Json::Num(0.0);
    }
    #[allow(clippy::cast_precision_loss)]
    Json::Num(moves as f64 / (wall_us as f64 / 1_000_000.0))
}

/// Builds the `specstab-metrics/v1` sidecar from a (merged) event
/// sequence.
///
/// Totals prefer the `campaign_end` event when present (its counters cover
/// the whole process, including work outside shard ranges); otherwise they
/// are reconstructed by summing `shard_end` events, with total wall clock
/// taken as the slowest shard. Cell and group rows are carried over in
/// stream order, which for a merged trace is the deterministic
/// `(shard, seq)` order. Traces containing lease-lifecycle events (a
/// `campaign serve` coordinator) additionally get a `serve` object with
/// lease/upload counts and per-worker accepted-cell tallies.
#[must_use]
pub fn metrics_from_events(events: &[Event]) -> Json {
    let mut cells = Vec::new();
    let mut groups = Vec::new();
    let mut shards = Vec::new();
    let mut campaign_end = None;
    let mut shard_totals = CounterSnapshot::default();
    let mut shard_cells = 0u64;
    let mut shard_wall_max = 0u64;
    let mut total_moves = 0u64;
    let mut leases_granted = 0u64;
    let mut leases_expired = 0u64;
    let mut partials_accepted = 0u64;
    let mut partials_rejected = 0u64;
    // Per-worker accepted shard/cell tallies, in first-seen order so the
    // sidecar stays deterministic for a deterministically merged trace.
    let mut workers: Vec<(String, u64, u64)> = Vec::new();

    for e in events {
        match &e.kind {
            EventKind::Cell(c) => {
                total_moves += c.moves;
                let mut fields = vec![
                    ("topology", Json::Str(c.topology.clone())),
                    ("protocol", Json::Str(c.protocol.clone())),
                    ("daemon", Json::Str(c.daemon.clone())),
                    ("init", Json::Str(c.init.clone())),
                    ("seed_index", Json::UInt(c.seed_index)),
                    ("wall_us", Json::UInt(c.wall_us)),
                    ("moves", Json::UInt(c.moves)),
                    ("ok", Json::Bool(c.outcome.is_ok())),
                ];
                if let Some(shard) = e.shard {
                    fields.insert(0, ("shard", Json::UInt(shard)));
                }
                cells.push(obj(fields));
            }
            EventKind::Group { key, runs, errors, converged, violations, wall_us } => {
                groups.push(obj(vec![
                    ("key", Json::Str(key.clone())),
                    ("runs", Json::UInt(*runs)),
                    ("errors", Json::UInt(*errors)),
                    ("converged", Json::UInt(*converged)),
                    ("violations", Json::UInt(*violations)),
                    ("wall_us", Json::UInt(*wall_us)),
                ]));
            }
            EventKind::ShardEnd { cells: n, wall_us, counters } => {
                let mut agg = shard_totals;
                // CounterSnapshot has no add; fold field-wise.
                agg.steps += counters.steps;
                agg.moves += counters.moves;
                agg.guard_evals += counters.guard_evals;
                agg.delta_bytes += counters.delta_bytes;
                agg.scratch_reuses += counters.scratch_reuses;
                agg.config_clones += counters.config_clones;
                agg.batch_lanes += counters.batch_lanes;
                agg.batch_lane_steps += counters.batch_lane_steps;
                agg.batch_idle_lane_steps += counters.batch_idle_lane_steps;
                agg.batch_scalar_fallbacks += counters.batch_scalar_fallbacks;
                agg.batch_routed_sync_groups += counters.batch_routed_sync_groups;
                agg.batch_routed_rr_groups += counters.batch_routed_rr_groups;
                agg.batch_routed_rand_groups += counters.batch_routed_rand_groups;
                agg.batch_routed_dist_groups += counters.batch_routed_dist_groups;
                agg.batch_fallback_sync_groups += counters.batch_fallback_sync_groups;
                agg.batch_fallback_rr_groups += counters.batch_fallback_rr_groups;
                agg.batch_fallback_rand_groups += counters.batch_fallback_rand_groups;
                agg.batch_fallback_dist_groups += counters.batch_fallback_dist_groups;
                shard_totals = agg;
                shard_cells += n;
                shard_wall_max = shard_wall_max.max(*wall_us);
                shards.push(obj(vec![
                    ("shard", e.shard.map_or(Json::Null, Json::UInt)),
                    ("cells", Json::UInt(*n)),
                    ("wall_us", Json::UInt(*wall_us)),
                    ("moves_per_sec", moves_per_sec(counters.moves, *wall_us)),
                    ("counters", counters_json(counters)),
                ]));
            }
            EventKind::CampaignEnd { cells, errors, violations, wall_us, counters } => {
                campaign_end = Some((*cells, *errors, *violations, *wall_us, *counters));
            }
            EventKind::LeaseGranted { .. } => leases_granted += 1,
            EventKind::LeaseExpired { .. } => leases_expired += 1,
            EventKind::PartialAccepted { worker, cells, .. } => {
                partials_accepted += 1;
                match workers.iter_mut().find(|(w, _, _)| w == worker) {
                    Some((_, shards, total)) => {
                        *shards += 1;
                        *total += cells;
                    }
                    None => workers.push((worker.clone(), 1, *cells)),
                }
            }
            EventKind::PartialRejected { .. } => partials_rejected += 1,
            _ => {}
        }
    }

    let totals = match campaign_end {
        Some((n, errors, violations, wall_us, counters)) => obj(vec![
            ("cells", Json::UInt(n)),
            ("errors", Json::UInt(errors)),
            ("violations", Json::UInt(violations)),
            ("wall_us", Json::UInt(wall_us)),
            ("moves_per_sec", moves_per_sec(counters.moves, wall_us)),
            ("counters", counters_json(&counters)),
        ]),
        None => obj(vec![
            ("cells", Json::UInt(shard_cells)),
            ("wall_us", Json::UInt(shard_wall_max)),
            ("moves_per_sec", moves_per_sec(total_moves, shard_wall_max)),
            ("counters", counters_json(&shard_totals)),
        ]),
    };

    let mut fields = vec![
        ("schema", Json::Str(METRICS_SCHEMA.into())),
        ("totals", totals),
        ("shards", Json::Arr(shards)),
        ("groups", Json::Arr(groups)),
        ("cells", Json::Arr(cells)),
    ];
    // Only coordinator traces carry lease-lifecycle events; plain runs keep
    // their sidecar shape unchanged.
    if leases_granted + leases_expired + partials_accepted + partials_rejected > 0 {
        let worker_rows = workers
            .into_iter()
            .map(|(worker, shards_accepted, cells_accepted)| {
                obj(vec![
                    ("worker", Json::Str(worker)),
                    ("shards_accepted", Json::UInt(shards_accepted)),
                    ("cells_accepted", Json::UInt(cells_accepted)),
                ])
            })
            .collect();
        fields.push((
            "serve",
            obj(vec![
                ("leases_granted", Json::UInt(leases_granted)),
                ("leases_expired", Json::UInt(leases_expired)),
                ("partials_accepted", Json::UInt(partials_accepted)),
                ("partials_rejected", Json::UInt(partials_rejected)),
                ("workers", Json::Arr(worker_rows)),
            ]),
        ));
    }
    obj(fields)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{CellEvent, CellOutcomeEvent, EVENTS_SCHEMA};

    fn counters(moves: u64) -> CounterSnapshot {
        CounterSnapshot { steps: moves / 2, moves, ..Default::default() }
    }

    fn ev(shard: Option<u64>, seq: u64, kind: EventKind) -> Event {
        Event { shard, seq, t_us: seq, kind }
    }

    fn cell(seed_index: u64, moves: u64) -> EventKind {
        EventKind::Cell(CellEvent {
            topology: "ring:8".into(),
            protocol: "ssme".into(),
            daemon: "sync".into(),
            init: "burst:0".into(),
            seed_index,
            wall_us: 100,
            moves,
            outcome: Ok(CellOutcomeEvent { steps_run: 5, stabilization_steps: 3, converged: true }),
        })
    }

    #[test]
    fn sidecar_prefers_campaign_totals_and_lists_rows() {
        let events = vec![
            ev(None, 0, EventKind::Stream { schema: EVENTS_SCHEMA.into(), source: "run".into() }),
            ev(None, 1, cell(0, 40)),
            ev(None, 2, cell(1, 60)),
            ev(
                None,
                3,
                EventKind::Group {
                    key: "g".into(),
                    runs: 2,
                    errors: 0,
                    converged: 2,
                    violations: 0,
                    wall_us: 200,
                },
            ),
            ev(
                None,
                4,
                EventKind::CampaignEnd {
                    cells: 2,
                    errors: 0,
                    violations: 0,
                    wall_us: 1_000_000,
                    counters: counters(100),
                },
            ),
        ];
        let m = metrics_from_events(&events);
        assert_eq!(m.req("schema").unwrap().as_str().unwrap(), METRICS_SCHEMA);
        let totals = m.req("totals").unwrap();
        assert_eq!(totals.req("cells").unwrap().as_u64().unwrap(), 2);
        let mps = totals.req("moves_per_sec").unwrap().as_f64().unwrap();
        assert!((mps - 100.0).abs() < 1e-9, "100 moves over 1s, got {mps}");
        assert_eq!(m.req("cells").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(m.req("groups").unwrap().as_arr().unwrap().len(), 1);
        assert!(m.req("shards").unwrap().as_arr().unwrap().is_empty());
    }

    #[test]
    fn sidecar_reconstructs_totals_from_shard_ends() {
        let events = vec![
            ev(
                Some(0),
                0,
                EventKind::Stream { schema: EVENTS_SCHEMA.into(), source: "shard".into() },
            ),
            ev(Some(0), 1, EventKind::ShardEnd { cells: 3, wall_us: 500, counters: counters(30) }),
            ev(
                Some(1),
                0,
                EventKind::Stream { schema: EVENTS_SCHEMA.into(), source: "shard".into() },
            ),
            ev(Some(1), 1, EventKind::ShardEnd { cells: 4, wall_us: 900, counters: counters(70) }),
        ];
        let m = metrics_from_events(&events);
        let totals = m.req("totals").unwrap();
        assert_eq!(totals.req("cells").unwrap().as_u64().unwrap(), 7);
        assert_eq!(totals.req("wall_us").unwrap().as_u64().unwrap(), 900);
        assert_eq!(totals.req("counters").unwrap().req("moves").unwrap().as_u64().unwrap(), 100);
        assert_eq!(m.req("shards").unwrap().as_arr().unwrap().len(), 2);
    }

    #[test]
    fn sidecar_gains_serve_section_only_for_coordinator_traces() {
        let plain = metrics_from_events(&[ev(None, 0, cell(0, 40))]);
        assert!(plain.get("serve").is_none(), "plain runs carry no serve section");

        let events = vec![
            ev(
                None,
                0,
                EventKind::LeaseGranted {
                    shard_id: 0,
                    worker: "w1".into(),
                    lease_id: 1,
                    lease_ms: 30_000,
                },
            ),
            ev(None, 1, EventKind::LeaseExpired { shard_id: 0, worker: "w1".into(), lease_id: 1 }),
            ev(
                None,
                2,
                EventKind::LeaseGranted {
                    shard_id: 0,
                    worker: "w2".into(),
                    lease_id: 2,
                    lease_ms: 30_000,
                },
            ),
            ev(None, 3, EventKind::PartialAccepted { shard_id: 0, worker: "w2".into(), cells: 9 }),
            ev(None, 4, EventKind::PartialAccepted { shard_id: 1, worker: "w2".into(), cells: 3 }),
            ev(
                None,
                5,
                EventKind::PartialRejected { worker: "w3".into(), reason: "bad schema".into() },
            ),
        ];
        let serve = metrics_from_events(&events);
        let serve = serve.req("serve").unwrap();
        assert_eq!(serve.req("leases_granted").unwrap().as_u64().unwrap(), 2);
        assert_eq!(serve.req("leases_expired").unwrap().as_u64().unwrap(), 1);
        assert_eq!(serve.req("partials_accepted").unwrap().as_u64().unwrap(), 2);
        assert_eq!(serve.req("partials_rejected").unwrap().as_u64().unwrap(), 1);
        let workers = serve.req("workers").unwrap().as_arr().unwrap();
        assert_eq!(workers.len(), 1);
        assert_eq!(workers[0].req("worker").unwrap().as_str().unwrap(), "w2");
        assert_eq!(workers[0].req("shards_accepted").unwrap().as_u64().unwrap(), 2);
        assert_eq!(workers[0].req("cells_accepted").unwrap().as_u64().unwrap(), 12);
    }

    #[test]
    fn sidecar_round_trips_through_the_strict_reader() {
        let events = vec![
            ev(None, 0, EventKind::Stream { schema: EVENTS_SCHEMA.into(), source: "run".into() }),
            ev(None, 1, cell(0, 40)),
        ];
        let rendered = metrics_from_events(&events).render();
        let back = Json::parse(&rendered).expect("metrics sidecar parses strictly");
        assert_eq!(back.req("schema").unwrap().as_str().unwrap(), METRICS_SCHEMA);
    }
}
