//! The workspace's hand-rolled JSON value: a deterministic writer and a
//! strict reader.
//!
//! No serde in this offline environment, so every artifact (campaign
//! results, plans, partials, event streams, metrics sidecars) goes through
//! this one insertion-ordered value type. Two renderers share the writer
//! logic: [`Json::render`] (two-space pretty, for artifacts humans diff)
//! and [`Json::render_compact`] (single line, for NDJSON event streams).
//! The reader is a small recursive-descent parser with a hard nesting
//! bound, because plans, partials and event streams travel between
//! machines and must fail cleanly on hostile input.
//!
//! This module previously lived in `specstab_campaign::artifact`, which
//! still re-exports it; it moved down here so the kernel- and bench-level
//! telemetry can speak the same format without depending on the campaign
//! layer.

use std::fmt::Write as _;

/// A JSON value with insertion-ordered objects.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Integer (serialized without decimal point).
    Int(i64),
    /// Unsigned integer.
    UInt(u64),
    /// Float (shortest round-trip formatting; NaN/∞ become `null`).
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object preserving insertion order.
    Obj(Vec<(String, Json)>),
}

/// Builds an insertion-ordered [`Json::Obj`] from `(&str, Json)` pairs —
/// the writers' idiom.
#[must_use]
pub fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Obj(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

impl Json {
    /// Serializes with two-space indentation and trailing newline.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    /// Serializes to a single line without any whitespace — the NDJSON
    /// form (one event per line). No trailing newline; stream writers add
    /// the line separator themselves.
    #[must_use]
    pub fn render_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
            leaf => leaf.write_leaf(out),
        }
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
            leaf => leaf.write_leaf(out),
        }
    }

    fn write_leaf(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            Json::Num(x) => {
                if x.is_finite() {
                    let _ = write!(out, "{x}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(_) | Json::Obj(_) => unreachable!("containers handled by the callers"),
        }
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl Json {
    /// Parses a JSON document (the subset this module writes: no unicode
    /// escapes beyond `\uXXXX`, numbers as `i64`/`u64`/`f64`). Nesting is
    /// limited to [`MAX_PARSE_DEPTH`] levels so hostile input fails with
    /// an error instead of overflowing the stack — partials, plans and
    /// event streams travel between machines, so parse entry points see
    /// untrusted files.
    ///
    /// # Errors
    ///
    /// Returns a message with the byte offset of the first syntax error.
    pub fn parse(text: &str) -> Result<Self, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos, 0)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }

    /// Field lookup on an object (`None` for missing keys or non-objects).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Required-field lookup with a contextual error.
    ///
    /// # Errors
    ///
    /// Returns a "missing field" message naming `key`.
    pub fn req(&self, key: &str) -> Result<&Json, String> {
        self.get(key).ok_or_else(|| format!("missing field '{key}'"))
    }

    /// The value as `u64` ([`Json::UInt`], or a non-negative [`Json::Int`]).
    ///
    /// # Errors
    ///
    /// Returns a type-mismatch message.
    pub fn as_u64(&self) -> Result<u64, String> {
        match self {
            Json::UInt(u) => Ok(*u),
            Json::Int(i) if *i >= 0 => Ok(*i as u64),
            other => Err(format!("expected unsigned integer, got {other:?}")),
        }
    }

    /// The value as `f64` (any numeric variant).
    ///
    /// # Errors
    ///
    /// Returns a type-mismatch message.
    pub fn as_f64(&self) -> Result<f64, String> {
        match self {
            Json::Num(x) => Ok(*x),
            Json::Int(i) => Ok(*i as f64),
            Json::UInt(u) => Ok(*u as f64),
            other => Err(format!("expected number, got {other:?}")),
        }
    }

    /// The value as `bool`.
    ///
    /// # Errors
    ///
    /// Returns a type-mismatch message.
    pub fn as_bool(&self) -> Result<bool, String> {
        match self {
            Json::Bool(b) => Ok(*b),
            other => Err(format!("expected bool, got {other:?}")),
        }
    }

    /// The value as a string slice.
    ///
    /// # Errors
    ///
    /// Returns a type-mismatch message.
    pub fn as_str(&self) -> Result<&str, String> {
        match self {
            Json::Str(s) => Ok(s),
            other => Err(format!("expected string, got {other:?}")),
        }
    }

    /// The value as an array slice.
    ///
    /// # Errors
    ///
    /// Returns a type-mismatch message.
    pub fn as_arr(&self) -> Result<&[Json], String> {
        match self {
            Json::Arr(items) => Ok(items),
            other => Err(format!("expected array, got {other:?}")),
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect_byte(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", b as char, *pos))
    }
}

/// Deepest container nesting [`Json::parse`] accepts. The artifacts this
/// workspace writes nest 5-6 levels; 128 leaves headroom while keeping the
/// recursive parser far from stack exhaustion.
pub const MAX_PARSE_DEPTH: usize = 128;

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    if depth > MAX_PARSE_DEPTH {
        return Err(format!("nesting deeper than {MAX_PARSE_DEPTH} at byte {}", *pos));
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect_byte(bytes, pos, b':')?;
                let value = parse_value(bytes, pos, depth + 1)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos, depth + 1)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') if bytes[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if bytes[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if bytes[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect_byte(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| format!("truncated \\u escape at byte {}", *pos))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| format!("bad \\u escape at byte {}", *pos))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape at byte {}", *pos))?;
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| format!("bad \\u codepoint at byte {}", *pos))?,
                        );
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 character (input is a &str, so the
                // byte stream is valid UTF-8 by construction).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    if text.is_empty() || text == "-" {
        return Err(format!("bad number at byte {start}"));
    }
    if float {
        text.parse::<f64>().map(Json::Num).map_err(|e| format!("bad number '{text}': {e}"))
    } else if text.starts_with('-') {
        text.parse::<i64>().map(Json::Int).map_err(|e| format!("bad number '{text}': {e}"))
    } else {
        text.parse::<u64>().map(Json::UInt).map_err(|e| format!("bad number '{text}': {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping_and_shapes() {
        let j = obj(vec![
            ("s", Json::Str("a\"b\\c\nd".into())),
            ("xs", Json::Arr(vec![Json::Int(-1), Json::UInt(2), Json::Num(1.5), Json::Null])),
            ("empty", Json::Obj(vec![])),
            ("nan", Json::Num(f64::NAN)),
        ]);
        let s = j.render();
        assert!(s.contains("\"a\\\"b\\\\c\\nd\""));
        assert!(s.contains("1.5"));
        assert!(s.contains("{}"));
        assert!(s.contains("null"));
        assert!(s.ends_with("}\n"));
    }

    #[test]
    fn parser_round_trips_writer_output() {
        let j = obj(vec![
            ("s", Json::Str("a\"b\\c\nd\tπ".into())),
            ("xs", Json::Arr(vec![Json::Int(-7), Json::UInt(u64::MAX), Json::Num(1.5)])),
            ("flags", Json::Arr(vec![Json::Bool(true), Json::Bool(false), Json::Null])),
            ("empty_obj", Json::Obj(vec![])),
            ("empty_arr", Json::Arr(vec![])),
            ("nested", obj(vec![("k", Json::UInt(3))])),
        ]);
        let text = j.render();
        let parsed = Json::parse(&text).expect("parses");
        assert_eq!(parsed, j);
        // Idempotent: render(parse(render(x))) == render(x).
        assert_eq!(parsed.render(), text);
    }

    #[test]
    fn compact_rendering_is_single_line_and_round_trips() {
        let j = obj(vec![
            ("event", Json::Str("cell".into())),
            ("t_us", Json::UInt(12)),
            ("nested", obj(vec![("xs", Json::Arr(vec![Json::Int(-1), Json::Null]))])),
            ("note", Json::Str("line\nbreak".into())),
        ]);
        let line = j.render_compact();
        assert!(!line.contains('\n'), "compact form must be NDJSON-safe: {line}");
        assert!(!line.contains(": "), "no pretty separators: {line}");
        assert_eq!(Json::parse(&line).expect("parses"), j);
        assert_eq!(line, "{\"event\":\"cell\",\"t_us\":12,\"nested\":{\"xs\":[-1,null]},\"note\":\"line\\nbreak\"}");
    }

    #[test]
    fn parser_handles_compact_and_escaped_input() {
        let parsed = Json::parse("{\"a\":[1,-2,3.5],\"b\":\"x\\u0041\\n\"}").expect("parses");
        assert_eq!(parsed.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(parsed.get("b").unwrap().as_str().unwrap(), "xA\n");
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for bad in ["", "{", "{\"a\":}", "[1,]", "{\"a\" 1}", "tru", "1 2", "\"unterminated"] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn parser_bounds_nesting_depth_instead_of_overflowing() {
        // Hostile input: 100k unclosed arrays must yield an error, not a
        // stack overflow (partials/plans are untrusted cross-machine files).
        let hostile = "[".repeat(100_000);
        assert!(Json::parse(&hostile).unwrap_err().contains("nesting deeper"));
        let deep_ok = format!("{}1{}", "[".repeat(100), "]".repeat(100));
        assert!(Json::parse(&deep_ok).is_ok(), "depth 100 is within the limit");
    }

    #[test]
    fn accessors_report_type_mismatches() {
        let j = Json::parse("{\"n\": 3, \"s\": \"x\", \"neg\": -1}").unwrap();
        assert_eq!(j.req("n").unwrap().as_u64().unwrap(), 3);
        assert!(j.req("missing").is_err());
        assert!(j.req("s").unwrap().as_u64().is_err());
        assert!(j.req("neg").unwrap().as_u64().is_err(), "negative is not u64");
        assert_eq!(j.req("neg").unwrap().as_f64().unwrap(), -1.0);
        assert!(j.req("n").unwrap().as_str().is_err());
        assert!(j.req("n").unwrap().as_bool().is_err());
        assert!(j.req("n").unwrap().as_arr().is_err());
    }
}
