//! Engine counters: deterministic per-run tallies plus the process-global
//! lock-free aggregate.
//!
//! The discipline that keeps counting off the hot path: the step loop
//! accumulates into plain `u64` locals ([`RunCounters`]) and flushes **one
//! batched relaxed-atomic add per run** into the [`global`]
//! [`EngineCounters`]. No per-step or per-move atomics, so the steady
//! state above 1e7 moves/s is untouched; no global reads inside a run, so
//! concurrent workers never contaminate each other's per-run numbers.
//!
//! Two instruments are inherently process-wide rather than per-run and
//! increment the global directly: scratch-buffer reuses (recorded at run
//! entry) and full [`Configuration`] clones (recorded by the instrumented
//! `Clone` impl in the kernel — the promotion of the old test-only clone
//! counter). Tests compare [`CounterSnapshot`] deltas, never absolute
//! values.
//!
//! [`Configuration`]: https://docs.rs/specstab-kernel

use std::sync::atomic::{AtomicU64, Ordering};

/// Tallies of one engine run, accumulated in plain locals by the step
/// loop. Deterministic: a run's counters depend only on its inputs, never
/// on scheduling or thread count.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct RunCounters {
    /// Steps (actions) executed.
    pub steps: u64,
    /// Moves (vertex activations) executed.
    pub moves: u64,
    /// Guard evaluations: every `enabled_rule` call the engine issued —
    /// the initial full scan, per-fire re-evaluation, touched-set
    /// maintenance, and daemon previews.
    pub guard_evals: u64,
    /// Bytes of state moved through step deltas (before + after state per
    /// recorded move).
    pub delta_bytes: u64,
}

impl RunCounters {
    /// Zeroed counters.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `other` into `self` (aggregating runs of a cell, shard, or
    /// campaign).
    pub fn add(&mut self, other: &Self) {
        self.steps += other.steps;
        self.moves += other.moves;
        self.guard_evals += other.guard_evals;
        self.delta_bytes += other.delta_bytes;
    }
}

/// Daemon class of a batch-eligible campaign group, used to attribute
/// batched-vs-scalar routing decisions per class.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum BatchDaemonClass {
    /// Synchronous daemon groups (`sync`).
    Sync,
    /// Central round-robin daemon groups (`central-rr`).
    CentralRr,
    /// Central uniform-random daemon groups (`central-rand`).
    CentralRand,
    /// Random-distributed daemon groups (`dist:<p>`).
    RandomDistributed,
}

/// The process-global aggregate: relaxed atomics, written by batched
/// per-run flushes and the two process-wide instruments.
#[derive(Debug, Default)]
pub struct EngineCounters {
    steps: AtomicU64,
    moves: AtomicU64,
    guard_evals: AtomicU64,
    delta_bytes: AtomicU64,
    scratch_reuses: AtomicU64,
    config_clones: AtomicU64,
    batch_lanes: AtomicU64,
    batch_lane_steps: AtomicU64,
    batch_idle_lane_steps: AtomicU64,
    batch_scalar_fallbacks: AtomicU64,
    batch_routed_sync_groups: AtomicU64,
    batch_routed_rr_groups: AtomicU64,
    batch_routed_rand_groups: AtomicU64,
    batch_routed_dist_groups: AtomicU64,
    batch_fallback_sync_groups: AtomicU64,
    batch_fallback_rr_groups: AtomicU64,
    batch_fallback_rand_groups: AtomicU64,
    batch_fallback_dist_groups: AtomicU64,
}

/// A point-in-time copy of the global counters. Monotonically increasing
/// per field; meaningful only as deltas between two snapshots.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Total steps flushed by finished runs.
    pub steps: u64,
    /// Total moves flushed by finished runs.
    pub moves: u64,
    /// Total guard evaluations flushed by finished runs.
    pub guard_evals: u64,
    /// Total delta bytes flushed by finished runs.
    pub delta_bytes: u64,
    /// Runs that entered with already-sized scratch buffers (cross-run
    /// buffer reuse — the amortization the `ScratchPool` exists for).
    pub scratch_reuses: u64,
    /// Full `Configuration::clone` calls (buffer-reusing `clone_from` is
    /// deliberately not counted — that is the allocation-free path).
    pub config_clones: u64,
    /// Replica lanes launched by batched runs (one per seed-replica that
    /// entered a batch, regardless of how long it stayed active).
    pub batch_lanes: u64,
    /// Total lane-step slots batched runs scheduled: `lanes x iterations`
    /// summed over batches. Lane widths differ across packed protocols
    /// (u8 packs 64 replicas per cache line, i32 packs 16), so occupancy
    /// is reported against this explicit total rather than a width
    /// assumption: occupancy = 1 - idle / lane-steps.
    pub batch_lane_steps: u64,
    /// Lane-steps spent masked idle: batch iterations where an
    /// already-stopped lane rode along while siblings kept stepping.
    pub batch_idle_lane_steps: u64,
    /// Batch-eligible cell groups (synchronous or central round-robin
    /// daemon) that fell back to the scalar path because the protocol has
    /// no packed implementation, the instance falls outside the packed
    /// domain, or batching was disabled.
    pub batch_scalar_fallbacks: u64,
    /// Synchronous-daemon groups routed through the batched engine.
    pub batch_routed_sync_groups: u64,
    /// Central round-robin groups routed through the batched engine.
    pub batch_routed_rr_groups: u64,
    /// Central uniform-random groups routed through the batched engine.
    pub batch_routed_rand_groups: u64,
    /// Random-distributed (`dist:<p>`) groups routed through the batched
    /// engine.
    pub batch_routed_dist_groups: u64,
    /// Synchronous-daemon groups that took the scalar fallback.
    pub batch_fallback_sync_groups: u64,
    /// Central round-robin groups that took the scalar fallback.
    pub batch_fallback_rr_groups: u64,
    /// Central uniform-random groups that took the scalar fallback.
    pub batch_fallback_rand_groups: u64,
    /// Random-distributed groups that took the scalar fallback.
    pub batch_fallback_dist_groups: u64,
}

impl CounterSnapshot {
    /// Field-wise `self - earlier` (saturating, so a stale `earlier` from
    /// another epoch degrades to zeros instead of wrapping).
    #[must_use]
    pub fn delta(&self, earlier: &Self) -> Self {
        Self {
            steps: self.steps.saturating_sub(earlier.steps),
            moves: self.moves.saturating_sub(earlier.moves),
            guard_evals: self.guard_evals.saturating_sub(earlier.guard_evals),
            delta_bytes: self.delta_bytes.saturating_sub(earlier.delta_bytes),
            scratch_reuses: self.scratch_reuses.saturating_sub(earlier.scratch_reuses),
            config_clones: self.config_clones.saturating_sub(earlier.config_clones),
            batch_lanes: self.batch_lanes.saturating_sub(earlier.batch_lanes),
            batch_lane_steps: self.batch_lane_steps.saturating_sub(earlier.batch_lane_steps),
            batch_idle_lane_steps: self
                .batch_idle_lane_steps
                .saturating_sub(earlier.batch_idle_lane_steps),
            batch_scalar_fallbacks: self
                .batch_scalar_fallbacks
                .saturating_sub(earlier.batch_scalar_fallbacks),
            batch_routed_sync_groups: self
                .batch_routed_sync_groups
                .saturating_sub(earlier.batch_routed_sync_groups),
            batch_routed_rr_groups: self
                .batch_routed_rr_groups
                .saturating_sub(earlier.batch_routed_rr_groups),
            batch_routed_rand_groups: self
                .batch_routed_rand_groups
                .saturating_sub(earlier.batch_routed_rand_groups),
            batch_routed_dist_groups: self
                .batch_routed_dist_groups
                .saturating_sub(earlier.batch_routed_dist_groups),
            batch_fallback_sync_groups: self
                .batch_fallback_sync_groups
                .saturating_sub(earlier.batch_fallback_sync_groups),
            batch_fallback_rr_groups: self
                .batch_fallback_rr_groups
                .saturating_sub(earlier.batch_fallback_rr_groups),
            batch_fallback_rand_groups: self
                .batch_fallback_rand_groups
                .saturating_sub(earlier.batch_fallback_rand_groups),
            batch_fallback_dist_groups: self
                .batch_fallback_dist_groups
                .saturating_sub(earlier.batch_fallback_dist_groups),
        }
    }
}

impl EngineCounters {
    /// Flushes one finished run's tallies — four relaxed adds, the only
    /// global traffic a run generates.
    pub fn record_run(&self, run: &RunCounters) {
        self.steps.fetch_add(run.steps, Ordering::Relaxed);
        self.moves.fetch_add(run.moves, Ordering::Relaxed);
        self.guard_evals.fetch_add(run.guard_evals, Ordering::Relaxed);
        self.delta_bytes.fetch_add(run.delta_bytes, Ordering::Relaxed);
    }

    /// Records a run entering with scratch buffers already sized for its
    /// graph (cross-run reuse).
    pub fn record_scratch_reuse(&self) {
        self.scratch_reuses.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one full configuration clone (called by the kernel's
    /// instrumented `Clone` impl).
    pub fn record_config_clone(&self) {
        self.config_clones.fetch_add(1, Ordering::Relaxed);
    }

    /// Flushes one finished batched run: the lanes it launched, the total
    /// lane-step slots it scheduled (`lanes x iterations` — the lane-count
    /// parameterization that keeps u8x64 and i32x16 batches comparable),
    /// and the lane-steps spent masked idle after individual lanes
    /// stopped.
    pub fn record_batch(&self, lanes: u64, lane_steps: u64, idle_lane_steps: u64) {
        self.batch_lanes.fetch_add(lanes, Ordering::Relaxed);
        self.batch_lane_steps.fetch_add(lane_steps, Ordering::Relaxed);
        self.batch_idle_lane_steps.fetch_add(idle_lane_steps, Ordering::Relaxed);
    }

    /// Records a batch-eligible group routed through the batched engine,
    /// attributed to its daemon class.
    pub fn record_batch_routed(&self, class: BatchDaemonClass) {
        match class {
            BatchDaemonClass::Sync => &self.batch_routed_sync_groups,
            BatchDaemonClass::CentralRr => &self.batch_routed_rr_groups,
            BatchDaemonClass::CentralRand => &self.batch_routed_rand_groups,
            BatchDaemonClass::RandomDistributed => &self.batch_routed_dist_groups,
        }
        .fetch_add(1, Ordering::Relaxed);
    }

    /// Records a batch-eligible group taking the scalar fallback path,
    /// attributed to its daemon class.
    pub fn record_batch_fallback(&self, class: BatchDaemonClass) {
        self.batch_scalar_fallbacks.fetch_add(1, Ordering::Relaxed);
        match class {
            BatchDaemonClass::Sync => &self.batch_fallback_sync_groups,
            BatchDaemonClass::CentralRr => &self.batch_fallback_rr_groups,
            BatchDaemonClass::CentralRand => &self.batch_fallback_rand_groups,
            BatchDaemonClass::RandomDistributed => &self.batch_fallback_dist_groups,
        }
        .fetch_add(1, Ordering::Relaxed);
    }

    /// Copies the current totals.
    #[must_use]
    pub fn snapshot(&self) -> CounterSnapshot {
        CounterSnapshot {
            steps: self.steps.load(Ordering::Relaxed),
            moves: self.moves.load(Ordering::Relaxed),
            guard_evals: self.guard_evals.load(Ordering::Relaxed),
            delta_bytes: self.delta_bytes.load(Ordering::Relaxed),
            scratch_reuses: self.scratch_reuses.load(Ordering::Relaxed),
            config_clones: self.config_clones.load(Ordering::Relaxed),
            batch_lanes: self.batch_lanes.load(Ordering::Relaxed),
            batch_lane_steps: self.batch_lane_steps.load(Ordering::Relaxed),
            batch_idle_lane_steps: self.batch_idle_lane_steps.load(Ordering::Relaxed),
            batch_scalar_fallbacks: self.batch_scalar_fallbacks.load(Ordering::Relaxed),
            batch_routed_sync_groups: self.batch_routed_sync_groups.load(Ordering::Relaxed),
            batch_routed_rr_groups: self.batch_routed_rr_groups.load(Ordering::Relaxed),
            batch_routed_rand_groups: self.batch_routed_rand_groups.load(Ordering::Relaxed),
            batch_routed_dist_groups: self.batch_routed_dist_groups.load(Ordering::Relaxed),
            batch_fallback_sync_groups: self.batch_fallback_sync_groups.load(Ordering::Relaxed),
            batch_fallback_rr_groups: self.batch_fallback_rr_groups.load(Ordering::Relaxed),
            batch_fallback_rand_groups: self.batch_fallback_rand_groups.load(Ordering::Relaxed),
            batch_fallback_dist_groups: self.batch_fallback_dist_groups.load(Ordering::Relaxed),
        }
    }
}

static GLOBAL: EngineCounters = EngineCounters {
    steps: AtomicU64::new(0),
    moves: AtomicU64::new(0),
    guard_evals: AtomicU64::new(0),
    delta_bytes: AtomicU64::new(0),
    scratch_reuses: AtomicU64::new(0),
    config_clones: AtomicU64::new(0),
    batch_lanes: AtomicU64::new(0),
    batch_lane_steps: AtomicU64::new(0),
    batch_idle_lane_steps: AtomicU64::new(0),
    batch_scalar_fallbacks: AtomicU64::new(0),
    batch_routed_sync_groups: AtomicU64::new(0),
    batch_routed_rr_groups: AtomicU64::new(0),
    batch_routed_rand_groups: AtomicU64::new(0),
    batch_routed_dist_groups: AtomicU64::new(0),
    batch_fallback_sync_groups: AtomicU64::new(0),
    batch_fallback_rr_groups: AtomicU64::new(0),
    batch_fallback_rand_groups: AtomicU64::new(0),
    batch_fallback_dist_groups: AtomicU64::new(0),
};

/// The process-global engine counters.
#[must_use]
pub fn global() -> &'static EngineCounters {
    &GLOBAL
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_counters_accumulate() {
        let mut a = RunCounters { steps: 1, moves: 2, guard_evals: 3, delta_bytes: 4 };
        a.add(&RunCounters { steps: 10, moves: 20, guard_evals: 30, delta_bytes: 40 });
        assert_eq!(a, RunCounters { steps: 11, moves: 22, guard_evals: 33, delta_bytes: 44 });
    }

    #[test]
    fn global_flush_and_snapshot_deltas() {
        let before = global().snapshot();
        global().record_run(&RunCounters { steps: 5, moves: 7, guard_evals: 11, delta_bytes: 13 });
        global().record_scratch_reuse();
        global().record_config_clone();
        global().record_batch(64, 640, 17);
        global().record_batch_routed(BatchDaemonClass::Sync);
        global().record_batch_routed(BatchDaemonClass::CentralRr);
        global().record_batch_routed(BatchDaemonClass::CentralRand);
        global().record_batch_routed(BatchDaemonClass::RandomDistributed);
        global().record_batch_fallback(BatchDaemonClass::Sync);
        global().record_batch_fallback(BatchDaemonClass::CentralRr);
        global().record_batch_fallback(BatchDaemonClass::CentralRand);
        global().record_batch_fallback(BatchDaemonClass::RandomDistributed);
        let d = global().snapshot().delta(&before);
        // Other tests in this binary may run concurrently and also flush,
        // so deltas are lower-bounded, not exact.
        assert!(d.steps >= 5 && d.moves >= 7 && d.guard_evals >= 11 && d.delta_bytes >= 13);
        assert!(d.scratch_reuses >= 1 && d.config_clones >= 1);
        assert!(d.batch_lanes >= 64 && d.batch_lane_steps >= 640 && d.batch_idle_lane_steps >= 17);
        assert!(d.batch_scalar_fallbacks >= 4);
        assert!(d.batch_routed_sync_groups >= 1 && d.batch_routed_rr_groups >= 1);
        assert!(d.batch_routed_rand_groups >= 1 && d.batch_routed_dist_groups >= 1);
        assert!(d.batch_fallback_sync_groups >= 1 && d.batch_fallback_rr_groups >= 1);
        assert!(d.batch_fallback_rand_groups >= 1 && d.batch_fallback_dist_groups >= 1);
    }

    #[test]
    fn delta_saturates_instead_of_wrapping() {
        let lo = CounterSnapshot::default();
        let hi = CounterSnapshot { steps: 3, ..Default::default() };
        assert_eq!(lo.delta(&hi).steps, 0);
        assert_eq!(hi.delta(&lo).steps, 3);
    }
}
