//! Exact worst-case probe for Dijkstra's K-state protocol.
//!
//! Sweeps ring size `n` and counter size `K`, computing the **exact**
//! synchronous worst-case stabilization time by exhaustive search over the
//! full configuration space. The output exhibits the `2n − 3` law (and its
//! independence from `K ≥ n`) reported in EXPERIMENTS.md.
//!
//! Run with: `cargo run -p specstab-protocols --release --example dijkstra_probe`

use specstab_kernel::search::{
    build_config_graph, enumerate_all_configurations, worst_steps_to, SearchDaemon,
};
use specstab_kernel::spec::Specification;
use specstab_protocols::dijkstra::{DijkstraRing, DijkstraSpec};
use specstab_topology::generators;

fn main() {
    println!("exact synchronous worst-case stabilization of Dijkstra's K-state protocol");
    println!("{:>3} {:>3} {:>18} {:>8}", "n", "K", "exact sync worst", "2n-3");
    for n in [3usize, 4, 5, 6] {
        for k in n as u64..(n as u64 + 4) {
            let g = generators::ring(n).expect("n >= 3");
            let p = DijkstraRing::new(&g, k).expect("K >= n");
            let spec = DijkstraSpec::new(p.clone());
            let Some(all) = enumerate_all_configurations(&g, &p, 3_000_000) else {
                continue;
            };
            let cg = build_config_graph(&g, &p, &all, SearchDaemon::Synchronous, 10_000_000)
                .expect("state space fits");
            let worst = worst_steps_to(&cg, |c| spec.is_legitimate(c, &g))
                .expect("self-stabilizing under sd");
            let max = worst.iter().max().copied().unwrap_or(0);
            println!("{:>3} {:>3} {:>18} {:>8}", n, k, max, 2 * n - 3);
            assert_eq!(max as usize, 2 * n - 3, "the 2n-3 law must hold");
        }
    }
    println!("\nthe law 2n-3 holds for every K >= n: the counter size does not");
    println!("affect the synchronous worst case, only the asynchronous one.");
}
