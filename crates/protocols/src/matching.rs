//! The self-stabilizing maximal matching protocol of Manne, Mjelde, Pilard
//! & Tixeuil (TCS 2009).
//!
//! Section 3 of the paper lists it as `(ud, sd, m, n)`-speculatively
//! stabilizing: at most `4n + 2m` moves under the unfair distributed
//! daemon and `2n + 1` steps under the synchronous one.
//!
//! Each vertex `v` holds a pointer `p_v ∈ neig(v) ∪ {⊥}` and a boolean
//! `m_v` ("married"). With `PRmarried(v) ≡ ∃u ∈ neig(v): p_v = u ∧ p_u = v`:
//!
//! ```text
//! Update      :: m_v ≠ PRmarried(v) → m_v := PRmarried(v)
//! Marriage    :: m_v = PRmarried(v) ∧ p_v = ⊥ ∧ ∃u: p_u = v
//!                → p_v := min such u
//! Seduction   :: m_v = PRmarried(v) ∧ p_v = ⊥ ∧ ∀u: p_u ≠ v
//!                ∧ ∃u: (p_u = ⊥ ∧ ¬m_u ∧ u > v)
//!                → p_v := max such u
//! Abandonment :: m_v = PRmarried(v) ∧ p_v = u ∧ p_u ≠ v ∧ (m_u ∨ u < v)
//!                → p_v := ⊥
//! ```
//!
//! Proposals flow from smaller to larger identifiers; a proposal is
//! abandoned once its target is married or could never have been a valid
//! target. Terminal configurations carry a maximal matching
//! `{(u, v) : p_u = v ∧ p_v = u}` (proved in the source paper; validated
//! exhaustively here).

use rand::rngs::StdRng;
use rand::Rng;
use specstab_kernel::config::Configuration;
use specstab_kernel::protocol::{Protocol, RuleId, RuleInfo, View};
use specstab_kernel::spec::Specification;
use specstab_topology::{Graph, VertexId};
use std::fmt;

/// Rule indices.
pub mod rules {
    use specstab_kernel::protocol::RuleId;

    /// Correct the married flag.
    pub const UPDATE: RuleId = RuleId::new(0);
    /// Accept a proposal.
    pub const MARRIAGE: RuleId = RuleId::new(1);
    /// Propose to the best available higher neighbor.
    pub const SEDUCTION: RuleId = RuleId::new(2);
    /// Retract a hopeless proposal.
    pub const ABANDONMENT: RuleId = RuleId::new(3);
}

/// Per-vertex state: pointer + married flag.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct MatchState {
    /// The proposal/marriage pointer `p_v` (`None` is the paper's `⊥`).
    pub pointer: Option<VertexId>,
    /// The married flag `m_v`.
    pub married: bool,
}

impl fmt::Display for MatchState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.pointer {
            Some(u) => write!(f, "→{u}{}", if self.married { "♥" } else { "" }),
            None => write!(f, "⊥{}", if self.married { "♥" } else { "" }),
        }
    }
}

/// The maximal matching protocol bound to one graph (it stores the
/// adjacency lists to expose per-vertex state domains).
#[derive(Clone, Debug)]
pub struct MaximalMatching {
    adjacency: Vec<Vec<VertexId>>,
}

impl MaximalMatching {
    /// Creates the protocol for `graph`.
    #[must_use]
    pub fn new(graph: &Graph) -> Self {
        Self { adjacency: graph.vertices().map(|v| graph.neighbors(v).to_vec()).collect() }
    }

    /// `PRmarried(v)` in `config`.
    #[must_use]
    pub fn pr_married(&self, v: VertexId, config: &Configuration<MatchState>) -> bool {
        match config.get(v).pointer {
            Some(u) => config.get(u).pointer == Some(v),
            None => false,
        }
    }

    /// The matched pairs `{(u, v) : u < v, p_u = v, p_v = u}`.
    #[must_use]
    pub fn matching(&self, config: &Configuration<MatchState>) -> Vec<(VertexId, VertexId)> {
        let mut out = Vec::new();
        for (v, s) in config.iter() {
            if let Some(u) = s.pointer {
                if u > v && config.get(u).pointer == Some(v) {
                    out.push((v, u));
                }
            }
        }
        out
    }

    fn pr_married_view(view: &View<'_, MatchState>) -> bool {
        match view.state().pointer {
            Some(u) => view.state_of(u).pointer == Some(view.vertex()),
            None => false,
        }
    }
}

impl Protocol for MaximalMatching {
    type State = MatchState;

    fn name(&self) -> String {
        format!("maximal-matching[n={}]", self.adjacency.len())
    }

    fn rules(&self) -> Vec<RuleInfo> {
        vec![
            RuleInfo::new("Update"),
            RuleInfo::new("Marriage"),
            RuleInfo::new("Seduction"),
            RuleInfo::new("Abandonment"),
        ]
    }

    fn enabled_rule(&self, view: &View<'_, MatchState>) -> Option<RuleId> {
        let v = view.vertex();
        let st = *view.state();
        let pr = Self::pr_married_view(view);
        if st.married != pr {
            return Some(rules::UPDATE);
        }
        match st.pointer {
            None => {
                if view.neighbor_states().any(|(_, s)| s.pointer == Some(v)) {
                    return Some(rules::MARRIAGE);
                }
                let candidate =
                    view.neighbor_states().any(|(u, s)| s.pointer.is_none() && !s.married && u > v);
                if candidate {
                    return Some(rules::SEDUCTION);
                }
                None
            }
            Some(u) => {
                let su = *view.state_of(u);
                if su.pointer != Some(v) && (su.married || u < v) {
                    return Some(rules::ABANDONMENT);
                }
                None
            }
        }
    }

    fn apply(&self, view: &View<'_, MatchState>, rule: RuleId) -> MatchState {
        let v = view.vertex();
        let mut st = *view.state();
        match rule {
            rules::UPDATE => st.married = Self::pr_married_view(view),
            rules::MARRIAGE => {
                let suitor = view
                    .neighbor_states()
                    .filter(|&(_, s)| s.pointer == Some(v))
                    .map(|(u, _)| u)
                    .min()
                    .expect("marriage guard guarantees a suitor");
                st.pointer = Some(suitor);
            }
            rules::SEDUCTION => {
                let target = view
                    .neighbor_states()
                    .filter(|&(u, s)| s.pointer.is_none() && !s.married && u > v)
                    .map(|(u, _)| u)
                    .max()
                    .expect("seduction guard guarantees a target");
                st.pointer = Some(target);
            }
            rules::ABANDONMENT => st.pointer = None,
            other => panic!("maximal matching has no rule {other}"),
        }
        st
    }

    fn random_state(&self, v: VertexId, rng: &mut StdRng) -> MatchState {
        let neighbors = &self.adjacency[v.index()];
        let idx = rng.gen_range(0..=neighbors.len());
        MatchState {
            pointer: (idx < neighbors.len()).then(|| neighbors[idx]),
            married: rng.gen_bool(0.5),
        }
    }

    fn state_domain(&self, v: VertexId) -> Option<Vec<MatchState>> {
        let neighbors = &self.adjacency[v.index()];
        let mut out = Vec::with_capacity(2 * (neighbors.len() + 1));
        for married in [false, true] {
            out.push(MatchState { pointer: None, married });
            for &u in neighbors {
                out.push(MatchState { pointer: Some(u), married });
            }
        }
        Some(out)
    }
}

/// Specification: the married pairs form a **maximal** matching, flags are
/// consistent and no one-sided proposals remain (equivalently: the
/// configuration is terminal — validated exhaustively in tests).
#[derive(Clone, Debug)]
pub struct MatchingSpec {
    protocol: MaximalMatching,
}

impl MatchingSpec {
    /// Creates the specification for a protocol instance.
    #[must_use]
    pub fn new(protocol: MaximalMatching) -> Self {
        Self { protocol }
    }

    /// Whether the matched pairs of `config` form a *maximal* matching.
    #[must_use]
    pub fn is_maximal_matching(&self, config: &Configuration<MatchState>, graph: &Graph) -> bool {
        graph.edges().iter().all(|&(u, v)| {
            self.protocol.pr_married(u, config) || self.protocol.pr_married(v, config)
        })
    }
}

impl Specification<MatchState> for MatchingSpec {
    fn name(&self) -> String {
        "spec(maximal-matching)".into()
    }
    fn is_safe(&self, config: &Configuration<MatchState>, graph: &Graph) -> bool {
        self.is_legitimate(config, graph)
    }
    fn is_legitimate(&self, config: &Configuration<MatchState>, graph: &Graph) -> bool {
        let flags_consistent =
            config.iter().all(|(v, s)| s.married == self.protocol.pr_married(v, config));
        let no_one_sided = config.iter().all(|(v, s)| match s.pointer {
            Some(u) => config.get(u).pointer == Some(v),
            None => true,
        });
        flags_consistent && no_one_sided && self.is_maximal_matching(config, graph)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use specstab_kernel::daemon::{
        CentralDaemon, CentralStrategy, RandomDistributedDaemon, SynchronousDaemon,
    };
    use specstab_kernel::engine::{RunLimits, Simulator, StopReason};
    use specstab_kernel::protocol::random_configuration;
    use specstab_kernel::search::{
        build_config_graph, enumerate_all_configurations, worst_steps_to, SearchDaemon,
    };
    use specstab_topology::generators;

    fn fresh(g: &Graph) -> Configuration<MatchState> {
        Configuration::from_fn(g.n(), |_| MatchState::default())
    }

    #[test]
    fn terminal_configurations_hold_maximal_matchings() {
        for g in [
            generators::path(7).unwrap(),
            generators::ring(8).unwrap(),
            generators::grid(3, 3).unwrap(),
            generators::petersen(),
            generators::complete(6).unwrap(),
            generators::star(7).unwrap(),
        ] {
            let p = MaximalMatching::new(&g);
            let spec = MatchingSpec::new(p.clone());
            let sim = Simulator::new(&g, &p);
            for seed in 0..5 {
                let mut rng = StdRng::seed_from_u64(seed);
                let init = random_configuration(&g, &p, &mut rng);
                let mut d = RandomDistributedDaemon::new(0.5, seed);
                let s = sim.run(init, &mut d, RunLimits::with_max_steps(100_000), &mut []);
                assert_eq!(s.stop, StopReason::Terminal, "{} seed {seed}", g.name());
                assert!(spec.is_legitimate(&s.final_config, &g), "{} seed {seed}", g.name());
                // The matching is nonempty whenever the graph has an edge.
                assert!(!p.matching(&s.final_config).is_empty(), "{}", g.name());
            }
        }
    }

    #[test]
    fn moves_respect_published_bound_under_async_daemons() {
        // Manne et al.: at most 4n + 2m moves under the unfair daemon.
        for g in [
            generators::ring(8).unwrap(),
            generators::grid(3, 4).unwrap(),
            generators::erdos_renyi_connected(10, 0.3, 3).unwrap(),
        ] {
            let bound = 4 * g.n() as u64 + 2 * g.m() as u64;
            let p = MaximalMatching::new(&g);
            let sim = Simulator::new(&g, &p);
            for seed in 0..8 {
                let mut rng = StdRng::seed_from_u64(seed);
                let init = random_configuration(&g, &p, &mut rng);
                for central in [true, false] {
                    let s = if central {
                        let mut d = CentralDaemon::new(CentralStrategy::Random(seed));
                        sim.run(init.clone(), &mut d, RunLimits::with_max_steps(1_000_000), &mut [])
                    } else {
                        let mut d = RandomDistributedDaemon::new(0.5, seed);
                        sim.run(init.clone(), &mut d, RunLimits::with_max_steps(1_000_000), &mut [])
                    };
                    assert_eq!(s.stop, StopReason::Terminal);
                    assert!(
                        s.moves <= bound,
                        "{} seed {seed}: {} moves > 4n+2m = {bound}",
                        g.name(),
                        s.moves
                    );
                }
            }
        }
    }

    #[test]
    fn synchronous_steps_respect_published_bound() {
        // 2n + 1 steps under the synchronous daemon.
        for g in [
            generators::ring(9).unwrap(),
            generators::grid(3, 3).unwrap(),
            generators::random_tree(12, 7).unwrap(),
        ] {
            let bound = 2 * g.n() + 1;
            let p = MaximalMatching::new(&g);
            let sim = Simulator::new(&g, &p);
            for seed in 0..10 {
                let mut rng = StdRng::seed_from_u64(seed);
                let init = random_configuration(&g, &p, &mut rng);
                let mut d = SynchronousDaemon::new();
                let s = sim.run(init, &mut d, RunLimits::with_max_steps(10_000), &mut []);
                assert_eq!(s.stop, StopReason::Terminal, "{} seed {seed}", g.name());
                assert!(
                    s.steps <= bound,
                    "{} seed {seed}: {} sync steps > 2n+1 = {bound}",
                    g.name(),
                    s.steps
                );
            }
        }
    }

    #[test]
    fn legitimate_iff_terminal_exhaustively_on_tiny_path() {
        let g = generators::path(3).unwrap();
        let p = MaximalMatching::new(&g);
        let spec = MatchingSpec::new(p.clone());
        let sim = Simulator::new(&g, &p);
        let all = enumerate_all_configurations(&g, &p, 1_000_000).unwrap();
        for c in &all {
            let terminal = sim.enabled_vertices(c).is_empty();
            assert_eq!(
                terminal,
                spec.is_legitimate(c, &g),
                "terminal/legitimate mismatch at {:?}",
                c.states()
            );
        }
    }

    #[test]
    fn exact_worst_case_converges_under_central_daemon() {
        let g = generators::path(3).unwrap();
        let p = MaximalMatching::new(&g);
        let spec = MatchingSpec::new(p.clone());
        let all = enumerate_all_configurations(&g, &p, 1_000_000).unwrap();
        let cg = build_config_graph(&g, &p, &all, SearchDaemon::Central, 2_000_000).unwrap();
        let worst = worst_steps_to(&cg, |c| spec.is_legitimate(c, &g)).unwrap();
        let max = worst.iter().max().copied().unwrap();
        let bound = 4 * g.n() as u32 + 2 * g.m() as u32;
        assert!(max <= bound, "exact central worst {max} exceeds 4n+2m = {bound}");
        assert!(max >= 2);
    }

    #[test]
    fn exact_worst_case_converges_under_distributed_daemon() {
        let g = generators::path(3).unwrap();
        let p = MaximalMatching::new(&g);
        let spec = MatchingSpec::new(p.clone());
        let all = enumerate_all_configurations(&g, &p, 1_000_000).unwrap();
        let cg = build_config_graph(
            &g,
            &p,
            &all,
            SearchDaemon::Distributed { max_enabled: 3 },
            5_000_000,
        )
        .unwrap();
        assert!(worst_steps_to(&cg, |c| spec.is_legitimate(c, &g)).is_ok());
    }

    #[test]
    fn seduction_targets_highest_free_neighbor() {
        let g = generators::star(4).unwrap(); // hub 0, leaves 1..3
        let p = MaximalMatching::new(&g);
        let init = fresh(&g);
        let view = View::new(VertexId::new(0), &g, &init);
        assert_eq!(p.enabled_rule(&view), Some(rules::SEDUCTION));
        let st = p.apply(&view, rules::SEDUCTION);
        assert_eq!(st.pointer, Some(VertexId::new(3)));
    }

    #[test]
    fn marriage_prefers_smallest_suitor() {
        let g = generators::star(4).unwrap();
        let mut c = fresh(&g);
        c.set(VertexId::new(1), MatchState { pointer: Some(VertexId::new(0)), married: false });
        c.set(VertexId::new(2), MatchState { pointer: Some(VertexId::new(0)), married: false });
        let view = View::new(VertexId::new(0), &g, &c);
        assert_eq!(p_rule(&g, &c), Some(rules::MARRIAGE));
        let p = MaximalMatching::new(&g);
        let st = p.apply(&view, rules::MARRIAGE);
        assert_eq!(st.pointer, Some(VertexId::new(1)));
    }

    fn p_rule(g: &Graph, c: &Configuration<MatchState>) -> Option<RuleId> {
        let p = MaximalMatching::new(g);
        p.enabled_rule(&View::new(VertexId::new(0), g, c))
    }

    #[test]
    fn abandonment_clears_hopeless_pointer() {
        let g = generators::path(2).unwrap();
        let p = MaximalMatching::new(&g);
        // v1 points at v0 (lower id — hopeless), v0 points nowhere.
        let mut c = fresh(&g);
        c.set(VertexId::new(1), MatchState { pointer: Some(VertexId::new(0)), married: false });
        // v0 sees a suitor → Marriage; v1's target has no pointer to v1 and
        // v0 < v1 → Abandonment.
        let v1 = View::new(VertexId::new(1), &g, &c);
        assert_eq!(p.enabled_rule(&v1), Some(rules::ABANDONMENT));
        assert_eq!(p.apply(&v1, rules::ABANDONMENT).pointer, None);
    }

    #[test]
    fn update_fixes_married_flag_first() {
        let g = generators::path(2).unwrap();
        let p = MaximalMatching::new(&g);
        let mut c = fresh(&g);
        c.set(VertexId::new(0), MatchState { pointer: None, married: true });
        let v0 = View::new(VertexId::new(0), &g, &c);
        assert_eq!(p.enabled_rule(&v0), Some(rules::UPDATE));
        assert!(!p.apply(&v0, rules::UPDATE).married);
    }

    #[test]
    fn matching_extraction() {
        let g = generators::path(4).unwrap();
        let p = MaximalMatching::new(&g);
        let mut c = fresh(&g);
        c.set(VertexId::new(0), MatchState { pointer: Some(VertexId::new(1)), married: true });
        c.set(VertexId::new(1), MatchState { pointer: Some(VertexId::new(0)), married: true });
        let m = p.matching(&c);
        assert_eq!(m, vec![(VertexId::new(0), VertexId::new(1))]);
    }

    #[test]
    fn state_domain_covers_pointers_and_flags() {
        let g = generators::star(4).unwrap();
        let p = MaximalMatching::new(&g);
        let hub = p.state_domain(VertexId::new(0)).unwrap();
        assert_eq!(hub.len(), 2 * 4); // (3 neighbors + ⊥) × 2 flags
        let leaf = p.state_domain(VertexId::new(1)).unwrap();
        assert_eq!(leaf.len(), 2 * 2);
    }
}
