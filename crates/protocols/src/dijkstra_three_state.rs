//! Dijkstra's three-state self-stabilizing mutual exclusion (the third
//! solution of the 1974 note).
//!
//! Machines `0 .. n-1` form a ring; machine `0` is the *bottom* and machine
//! `n-1` the *top* (bottom and top are adjacent through the ring closure).
//! Each machine holds `S ∈ {0, 1, 2}`; writing `L`/`R` for the
//! lower/higher-index neighbor (with the top's `R` being the bottom):
//!
//! ```text
//! bottom :: (S+1) mod 3 = R            → S := (S+2) mod 3
//! top    :: L = R ∧ (L+1) mod 3 ≠ S    → S := (L+1) mod 3
//! normal :: (S+1) mod 3 = L            → S := L
//! normal :: (S+1) mod 3 = R            → S := R
//! ```
//!
//! A machine is *privileged* when at least one guard holds; legitimate
//! configurations carry exactly one privilege. A normal machine can hold
//! both of its guards at once (two privileges in Dijkstra's counting); this
//! implementation arbitrates deterministically in favor of the left-hand
//! rule — a restriction of the daemon's nondeterminism, which preserves
//! self-stabilization (validated *exhaustively* in the tests: every
//! configuration, every central/distributed daemon choice).

use rand::rngs::StdRng;
use rand::Rng;
use specstab_kernel::batch::PackedProtocol;
use specstab_kernel::config::Configuration;
use specstab_kernel::protocol::{Protocol, RuleId, RuleInfo, View};
use specstab_kernel::spec::Specification;
use specstab_topology::{Graph, VertexId};
use std::error::Error;
use std::fmt;

/// Rule indices.
pub mod rules {
    use specstab_kernel::protocol::RuleId;

    /// Bottom machine's decrement.
    pub const BOTTOM: RuleId = RuleId::new(0);
    /// Top machine's catch-up.
    pub const TOP: RuleId = RuleId::new(1);
    /// Normal machine adopting from the left.
    pub const FROM_LEFT: RuleId = RuleId::new(2);
    /// Normal machine adopting from the right.
    pub const FROM_RIGHT: RuleId = RuleId::new(3);
}

/// Errors building a [`DijkstraThreeState`].
#[derive(Clone, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum ThreeStateError {
    /// The communication graph is not a standard ring with `n >= 3`.
    NotARing,
}

impl fmt::Display for ThreeStateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Dijkstra's three-state protocol requires a ring of n >= 3 machines")
    }
}

impl Error for ThreeStateError {}

/// Dijkstra's three-state protocol instance.
#[derive(Clone, Debug)]
pub struct DijkstraThreeState {
    n: usize,
}

impl DijkstraThreeState {
    /// Creates the protocol for a ring graph (`ring(n)`, `n >= 3`).
    ///
    /// # Errors
    ///
    /// [`ThreeStateError::NotARing`] otherwise.
    pub fn new(graph: &Graph) -> Result<Self, ThreeStateError> {
        let n = graph.n();
        if n < 3 || graph.m() != n {
            return Err(ThreeStateError::NotARing);
        }
        for i in 0..n {
            if !graph.contains_edge(VertexId::new(i), VertexId::new((i + 1) % n)) {
                return Err(ThreeStateError::NotARing);
            }
        }
        Ok(Self { n })
    }

    /// Number of machines.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    fn left(&self, i: usize) -> VertexId {
        VertexId::new((i + self.n - 1) % self.n)
    }

    fn right(&self, i: usize) -> VertexId {
        VertexId::new((i + 1) % self.n)
    }

    /// The guards enabled at `v` (0, 1 or 2 of them — Dijkstra's
    /// "privileges").
    #[must_use]
    pub fn privileges(&self, v: VertexId, config: &Configuration<u8>) -> Vec<RuleId> {
        let i = v.index();
        let s = *config.get(v);
        let mut out = Vec::new();
        if i == 0 {
            let r = *config.get(self.right(i));
            if (s + 1) % 3 == r {
                out.push(rules::BOTTOM);
            }
        } else if i == self.n - 1 {
            let l = *config.get(self.left(i));
            let r = *config.get(self.right(i)); // the bottom machine
            if l == r && (l + 1) % 3 != s {
                out.push(rules::TOP);
            }
        } else {
            let l = *config.get(self.left(i));
            let r = *config.get(self.right(i));
            if (s + 1) % 3 == l {
                out.push(rules::FROM_LEFT);
            }
            if (s + 1) % 3 == r {
                out.push(rules::FROM_RIGHT);
            }
        }
        out
    }

    /// Total privilege count of the configuration.
    #[must_use]
    pub fn privilege_count(&self, config: &Configuration<u8>) -> usize {
        (0..self.n).map(|i| self.privileges(VertexId::new(i), config).len()).sum()
    }
}

impl Protocol for DijkstraThreeState {
    type State = u8;

    fn name(&self) -> String {
        format!("dijkstra-3state[n={}]", self.n)
    }

    fn rules(&self) -> Vec<RuleInfo> {
        vec![
            RuleInfo::new("BOTTOM"),
            RuleInfo::new("TOP"),
            RuleInfo::new("FROM_LEFT"),
            RuleInfo::new("FROM_RIGHT"),
        ]
    }

    fn enabled_rule(&self, view: &View<'_, u8>) -> Option<RuleId> {
        let v = view.vertex();
        let i = v.index();
        let s = *view.state();
        if i == 0 {
            let r = *view.state_of(self.right(i));
            ((s + 1) % 3 == r).then_some(rules::BOTTOM)
        } else if i == self.n - 1 {
            let l = *view.state_of(self.left(i));
            let r = *view.state_of(self.right(i));
            (l == r && (l + 1) % 3 != s).then_some(rules::TOP)
        } else {
            let l = *view.state_of(self.left(i));
            let r = *view.state_of(self.right(i));
            if (s + 1) % 3 == l {
                Some(rules::FROM_LEFT)
            } else if (s + 1) % 3 == r {
                Some(rules::FROM_RIGHT)
            } else {
                None
            }
        }
    }

    fn apply(&self, view: &View<'_, u8>, rule: RuleId) -> u8 {
        let i = view.vertex().index();
        let s = *view.state();
        match rule {
            rules::BOTTOM => (s + 2) % 3,
            rules::TOP => (*view.state_of(self.left(i)) + 1) % 3,
            rules::FROM_LEFT => *view.state_of(self.left(i)),
            rules::FROM_RIGHT => *view.state_of(self.right(i)),
            other => panic!("three-state protocol has no rule {other}"),
        }
    }

    fn random_state(&self, _v: VertexId, rng: &mut StdRng) -> u8 {
        rng.gen_range(0..3)
    }

    fn state_domain(&self, _v: VertexId) -> Option<Vec<u8>> {
        Some(vec![0, 1, 2])
    }
}

/// Lane-packed three-state stepping: `S ∈ {0, 1, 2}` packs into `u8`
/// lanes untouched (64 replicas per cache line). The `mod 3` arithmetic
/// is branch-free selects on the two-bit domain (`(s+1) mod 3` is
/// `s == 2 ? 0 : s+1`), and the left-rule preference of the scalar
/// arbitration is one select per lane, so the bottom/top/normal row
/// loops all autovectorize over the lane axis.
impl PackedProtocol for DijkstraThreeState {
    type Lane = u8;
    type LaneScratch = ();

    fn pack(&self, state: &u8) -> u8 {
        *state
    }

    fn unpack(&self, lane: u8) -> u8 {
        lane
    }

    fn step_lanes(
        &self,
        graph: &Graph,
        lanes: usize,
        soa: &[u8],
        next: &mut [u8],
        fired: &mut [bool],
        scratch: &mut (),
    ) {
        for v in 0..self.n {
            self.eval_vertex_lanes(graph, v, lanes, soa, next, fired, scratch);
        }
    }

    fn eval_vertex_lanes(
        &self,
        _graph: &Graph,
        v: usize,
        lanes: usize,
        soa: &[u8],
        next: &mut [u8],
        fired: &mut [bool],
        _scratch: &mut (),
    ) {
        let n = self.n;
        let inc3 = |s: u8| if s == 2 { 0 } else { s + 1 };
        let dec3 = |s: u8| if s == 0 { 2 } else { s - 1 };
        let li = (v + n - 1) % n;
        let ri = (v + 1) % n;
        let base = v * lanes;
        let rv = &soa[base..base + lanes];
        let row_l = &soa[li * lanes..li * lanes + lanes];
        let row_r = &soa[ri * lanes..ri * lanes + lanes];
        let fired_row = &mut fired[base..base + lanes];
        let next_row = &mut next[base..base + lanes];
        // Zip iteration keeps the lane loops free of per-element
        // bounds checks (a runtime `lanes` blocks their elision under
        // indexing), which is what lets the byte ops autovectorize.
        if v == 0 {
            // bottom :: (S+1) mod 3 = R → S := (S+2) mod 3
            for (((f, nx), &s), &r) in
                fired_row.iter_mut().zip(next_row.iter_mut()).zip(rv).zip(row_r)
            {
                *f = inc3(s) == r;
                *nx = dec3(s);
            }
        } else if v == n - 1 {
            // top :: L = R ∧ (L+1) mod 3 ≠ S → S := (L+1) mod 3
            for ((((f, nx), &s), &lv), &r) in
                fired_row.iter_mut().zip(next_row.iter_mut()).zip(rv).zip(row_l).zip(row_r)
            {
                let want = inc3(lv);
                *f = lv == r && want != s;
                *nx = want;
            }
        } else {
            // normal: FROM_LEFT wins over FROM_RIGHT, like the scalar
            // arbitration.
            for ((((f, nx), &s), &lv), &r) in
                fired_row.iter_mut().zip(next_row.iter_mut()).zip(rv).zip(row_l).zip(row_r)
            {
                let s1 = inc3(s);
                let from_left = s1 == lv;
                let from_right = s1 == r;
                *f = from_left | from_right;
                *nx = if from_left { lv } else { r };
            }
        }
    }
}

/// `specME` for the three-state ring: safety = at most one privilege,
/// legitimacy = exactly one.
#[derive(Clone, Debug)]
pub struct ThreeStateSpec {
    protocol: DijkstraThreeState,
}

impl ThreeStateSpec {
    /// Creates the specification.
    #[must_use]
    pub fn new(protocol: DijkstraThreeState) -> Self {
        Self { protocol }
    }
}

impl Specification<u8> for ThreeStateSpec {
    fn name(&self) -> String {
        "specME(dijkstra-3state)".into()
    }
    fn is_safe(&self, config: &Configuration<u8>, _graph: &Graph) -> bool {
        self.protocol.privilege_count(config) <= 1
    }
    fn is_legitimate(&self, config: &Configuration<u8>, _graph: &Graph) -> bool {
        self.protocol.privilege_count(config) == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use specstab_kernel::daemon::{CentralDaemon, CentralStrategy};
    use specstab_kernel::engine::Simulator;
    use specstab_kernel::measure::measure_with_early_stop;
    use specstab_kernel::protocol::random_configuration;
    use specstab_kernel::search::{
        build_config_graph, enumerate_all_configurations, worst_steps_to, SearchDaemon,
    };
    use specstab_topology::generators;

    fn ring(n: usize) -> (Graph, DijkstraThreeState) {
        let g = generators::ring(n).unwrap();
        let p = DijkstraThreeState::new(&g).unwrap();
        (g, p)
    }

    #[test]
    fn rejects_non_rings() {
        let path = generators::path(5).unwrap();
        assert!(DijkstraThreeState::new(&path).is_err());
        let star = generators::star(4).unwrap();
        assert!(DijkstraThreeState::new(&star).is_err());
    }

    #[test]
    fn exact_self_stabilization_under_central_daemon() {
        // Exhaustive: every configuration (3^n), every central-daemon
        // choice — convergence to exactly one privilege, no divergence.
        // This is the correctness oracle for the transcribed rules.
        for n in [3usize, 4, 5, 6, 7] {
            let (g, p) = ring(n);
            let spec = ThreeStateSpec::new(p.clone());
            let all = enumerate_all_configurations(&g, &p, 1_000_000).unwrap();
            let cg = build_config_graph(&g, &p, &all, SearchDaemon::Central, 2_000_000).unwrap();
            let worst = worst_steps_to(&cg, |c| spec.is_legitimate(c, &g));
            assert!(worst.is_ok(), "n={n}: {:?}", worst.err());
        }
    }

    #[test]
    fn exact_self_stabilization_under_distributed_daemon() {
        let (g, p) = ring(5);
        let spec = ThreeStateSpec::new(p.clone());
        let all = enumerate_all_configurations(&g, &p, 1_000_000).unwrap();
        let cg = build_config_graph(
            &g,
            &p,
            &all,
            SearchDaemon::Distributed { max_enabled: 5 },
            5_000_000,
        )
        .unwrap();
        assert!(worst_steps_to(&cg, |c| spec.is_legitimate(c, &g)).is_ok());
    }

    #[test]
    fn legitimacy_is_closed_exhaustively() {
        let (g, p) = ring(6);
        let spec = ThreeStateSpec::new(p.clone());
        let sim = Simulator::new(&g, &p);
        let all = enumerate_all_configurations(&g, &p, 1_000_000).unwrap();
        for c in &all {
            if !spec.is_legitimate(c, &g) {
                continue;
            }
            for &v in &sim.enabled_vertices(c) {
                let (next, _) = sim.apply_action(c, &[v]);
                assert!(
                    spec.is_legitimate(&next, &g),
                    "closure broken from {:?} via {v}",
                    c.states()
                );
            }
        }
    }

    #[test]
    fn no_terminal_configurations_exist() {
        // The token never disappears: some machine is always privileged.
        let (g, p) = ring(6);
        let sim = Simulator::new(&g, &p);
        let all = enumerate_all_configurations(&g, &p, 1_000_000).unwrap();
        for c in &all {
            assert!(!sim.enabled_vertices(c).is_empty(), "deadlock at {:?}", c.states());
        }
    }

    #[test]
    fn converges_from_random_configurations() {
        let (g, p) = ring(9);
        let spec = ThreeStateSpec::new(p.clone());
        for seed in 0..10 {
            let mut rng = StdRng::seed_from_u64(seed);
            let init = random_configuration(&g, &p, &mut rng);
            let mut d = CentralDaemon::new(CentralStrategy::Random(seed));
            let (s, l, st) = (spec.clone(), spec.clone(), spec.clone());
            let r = measure_with_early_stop(
                &g,
                &p,
                &mut d,
                init,
                Box::new(move |c, g| s.is_safe(c, g)),
                Box::new(move |c, g| l.is_legitimate(c, g)),
                Box::new(move |c, g| st.is_legitimate(c, g)),
                1_000_000,
                5,
            );
            assert!(r.ended_legitimate, "seed {seed}");
        }
    }

    #[test]
    fn token_visits_both_special_machines() {
        let (g, p) = ring(5);
        let sim = Simulator::new(&g, &p);
        let mut config = Configuration::new(vec![0u8; 5]);
        let (mut bottom_count, mut top_count) = (0, 0);
        for _ in 0..60 {
            let enabled = sim.enabled_vertices(&config);
            assert!(!enabled.is_empty());
            if enabled.contains(&VertexId::new(0)) {
                bottom_count += 1;
            }
            if enabled.contains(&VertexId::new(4)) {
                top_count += 1;
            }
            config = sim.apply_action(&config, &enabled[..1]).0;
        }
        assert!(bottom_count > 0 && top_count > 0, "token must visit both ends");
    }

    #[test]
    fn packed_runs_match_scalar_lane_for_lane_under_both_daemons() {
        use specstab_kernel::batch::{run_batch_with, BatchDaemon};
        use specstab_kernel::daemon::SynchronousDaemon;
        use specstab_kernel::engine::RunLimits;
        let (g, p) = ring(8);
        let inits: Vec<_> = (0..9)
            .map(|s| {
                let mut rng = StdRng::seed_from_u64(5_000 + s);
                random_configuration(&g, &p, &mut rng)
            })
            .collect();
        for daemon in [BatchDaemon::Sync, BatchDaemon::CentralRr] {
            let lanes = run_batch_with(&g, &p, daemon, &[], &inits, 400);
            for (lane, init) in lanes.iter().zip(&inits) {
                let sim = Simulator::new(&g, &p);
                let limits = RunLimits::with_max_steps(400);
                let scalar = if daemon == BatchDaemon::Sync {
                    let mut d = SynchronousDaemon::new();
                    sim.run(init.clone(), &mut d, limits, &mut [])
                } else {
                    let mut d = CentralDaemon::new(CentralStrategy::RoundRobin);
                    sim.run(init.clone(), &mut d, limits, &mut [])
                };
                assert_eq!(lane.steps, scalar.steps);
                assert_eq!(lane.moves, scalar.moves);
                assert_eq!(lane.stop, scalar.stop);
                assert_eq!(lane.final_config, scalar.final_config);
            }
        }
    }

    #[test]
    fn normal_machine_can_hold_two_privileges() {
        let (_, p) = ring(4);
        // S = [2, 1, 2, ...]: machine 1 sees L = 2 and R = 2 with
        // (S+1) mod 3 = 2: both guards hold.
        let c = Configuration::new(vec![2u8, 1, 2, 0]);
        assert_eq!(p.privileges(VertexId::new(1), &c).len(), 2);
    }
}
