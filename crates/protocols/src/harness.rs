//! [`ProtocolHarness`] implementations for every protocol in the
//! workspace — the glue that lets the campaign grid sweep any of them
//! under the shared adversarial harness (see [`crate::registry`] for the
//! name-keyed index).
//!
//! Each harness packages the protocol constructor (with its typed
//! topology-compatibility check), a legitimate-configuration constructor
//! (the resting point fault bursts corrupt), the specification's safety
//! and legitimacy predicates, witness injection where a lower-bound
//! construction exists (SSME's Theorem 4), protocol-specific daemon
//! extensions (SSME's greedy Γ1-disorder adversaries) and the applicable
//! synchronous theorem bound.

use crate::bfs::{BfsSpec, MinPlusOneBfs};
use crate::dijkstra::{DijkstraError, DijkstraRing, DijkstraSpec};
use crate::dijkstra_four_state::{DijkstraFourState, FourState, FourStateError, FourStateSpec};
use crate::dijkstra_three_state::{DijkstraThreeState, ThreeStateError, ThreeStateSpec};
use crate::matching::{MatchState, MatchingSpec, MaximalMatching};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use specstab_core::bounds;
use specstab_core::spec_me::SpecMe;
use specstab_core::speculation::ssme_disorder_metric;
use specstab_core::ssme::{IdAssignment, Ssme};
use specstab_kernel::batch::{run_batch_measured_with, BatchDaemon};
use specstab_kernel::config::Configuration;
use specstab_kernel::daemon::{parse_daemon_spec, AdversaryMoves, BoxedDaemon, GreedyAdversary};
use specstab_kernel::harness::{BoundMetric, HarnessError, ProtocolHarness, TheoremBound};
use specstab_kernel::measure::StabilizationReport;
use specstab_kernel::observer::ConfigPredicate;
use specstab_kernel::spec::Specification;
use specstab_topology::metrics::DistanceMatrix;
use specstab_topology::{Graph, VertexId};
use specstab_unison::clock::ClockValue;

/// Boxes a [`Specification`]'s safety predicate.
fn safety_of<S, Sp>(spec: &Sp) -> ConfigPredicate<S>
where
    Sp: Specification<S> + Clone + Send + 'static,
{
    let spec = spec.clone();
    Box::new(move |c, g| spec.is_safe(c, g))
}

/// Boxes a [`Specification`]'s legitimacy predicate.
fn legitimacy_of<S, Sp>(spec: &Sp) -> ConfigPredicate<S>
where
    Sp: Specification<S> + Clone + Send + 'static,
{
    let spec = spec.clone();
    Box::new(move |c, g| spec.is_legitimate(c, g))
}

/// SSME (Algorithm 1) under `specME` — the paper's speculatively
/// stabilizing mutual exclusion protocol. Works on any connected graph;
/// ships the Theorem 4 adversarial witness and the greedy Γ1-disorder
/// adversaries (`adversary-central` / `adversary-dist`).
#[derive(Debug)]
pub struct SsmeHarness {
    ssme: Ssme,
    spec: SpecMe,
}

impl SsmeHarness {
    /// The SSME instance.
    #[must_use]
    pub fn ssme(&self) -> &Ssme {
        &self.ssme
    }
}

impl ProtocolHarness for SsmeHarness {
    type Protocol = Ssme;
    const NAME: &'static str = "ssme";

    fn build(graph: &Graph, diam: u32) -> Result<Self, HarnessError> {
        let ssme = Ssme::new(graph, diam, IdAssignment::identity(graph.n())).map_err(|e| {
            HarnessError::Build { protocol: Self::NAME.to_string(), reason: e.to_string() }
        })?;
        let spec = SpecMe::new(ssme.clone());
        Ok(Self { ssme, spec })
    }

    fn protocol(&self) -> &Ssme {
        &self.ssme
    }

    fn legitimate_configuration(
        &self,
        graph: &Graph,
        _rng: &mut StdRng,
    ) -> Result<Configuration<ClockValue>, HarnessError> {
        // A legitimate resting point: every clock at the same stabilized
        // value.
        let healthy = self.ssme.clock().value(0).map_err(|e| HarnessError::Build {
            protocol: Self::NAME.to_string(),
            reason: e.to_string(),
        })?;
        Ok(Configuration::from_fn(graph.n(), |_| healthy))
    }

    fn supports_witness() -> bool {
        true
    }

    fn witness_configuration(
        &self,
        graph: &Graph,
    ) -> Result<Configuration<ClockValue>, HarnessError> {
        let dm = DistanceMatrix::new(graph);
        specstab_core::lower_bound::theorem4_witness(&self.ssme, graph, &dm)
            .map(|w| w.init)
            .map_err(|e| HarnessError::Build {
                protocol: Self::NAME.to_string(),
                reason: e.to_string(),
            })
    }

    fn safety_predicate(&self) -> ConfigPredicate<ClockValue> {
        safety_of(&self.spec)
    }

    fn legitimacy_predicate(&self) -> ConfigPredicate<ClockValue> {
        legitimacy_of(&self.spec)
    }

    /// The shared kernel zoo plus the protocol-specific greedy adversaries
    /// (`adversary-central`, `adversary-dist`) driven by the Γ1 disorder
    /// metric.
    fn daemon(&self, spec: &str, seed: u64) -> Result<BoxedDaemon<ClockValue>, String> {
        match spec {
            "adversary-central" => Ok(Box::new(GreedyAdversary::new(
                ssme_disorder_metric(&self.ssme),
                AdversaryMoves::Singletons,
                seed,
            ))),
            "adversary-dist" => Ok(Box::new(GreedyAdversary::new(
                ssme_disorder_metric(&self.ssme),
                AdversaryMoves::SingletonsAndAll,
                seed,
            ))),
            other => parse_daemon_spec(other, seed),
        }
    }

    /// Theorem 2: `⌈diam/2⌉` synchronous stabilization steps.
    fn sync_bound(&self, _graph: &Graph, diam: u32) -> Option<TheoremBound> {
        Some(TheoremBound {
            value: bounds::sync_stabilization_bound(diam),
            metric: BoundMetric::Stabilization,
        })
    }

    fn supports_batch(&self) -> bool {
        true
    }

    // `central_batch_max_n` keeps the conservative default (32): the i32
    // unison lanes pay ~10 ns per lane-element in a refresh row, so the
    // central modes stop beating 64 scalar steps per pass past the small
    // campaign tori (measured with the bench crate's `crossover_probe`
    // methodology on torus-4x5 vs torus-8x8).

    fn batched_measure(
        &self,
        graph: &Graph,
        daemon: BatchDaemon,
        lane_seeds: &[u64],
        inits: Vec<Configuration<ClockValue>>,
        max_steps: usize,
        early_stop_margin: usize,
    ) -> Option<Vec<(StabilizationReport, Configuration<ClockValue>)>> {
        let stop = self.legitimacy_predicate();
        Some(run_batch_measured_with(
            graph,
            &self.ssme,
            daemon,
            lane_seeds,
            inits,
            max_steps,
            &self.safety_predicate(),
            &self.legitimacy_predicate(),
            Some((&stop, early_stop_margin)),
        ))
    }
}

/// Dijkstra's K-state token ring (1974), `K = n`. Ring-only.
#[derive(Debug)]
pub struct DijkstraHarness {
    proto: DijkstraRing,
    spec: DijkstraSpec,
}

impl ProtocolHarness for DijkstraHarness {
    type Protocol = DijkstraRing;
    const NAME: &'static str = "dijkstra";

    fn build(graph: &Graph, _diam: u32) -> Result<Self, HarnessError> {
        let proto = DijkstraRing::new(graph, graph.n() as u64).map_err(|e| match e {
            DijkstraError::NotARing => HarnessError::IncompatibleTopology {
                protocol: Self::NAME.to_string(),
                requirement: "a unidirectional ring of n >= 3 machines".to_string(),
                topology: graph.name().to_string(),
            },
            other => {
                HarnessError::Build { protocol: Self::NAME.to_string(), reason: other.to_string() }
            }
        })?;
        let spec = DijkstraSpec::new(proto.clone());
        Ok(Self { proto, spec })
    }

    fn protocol(&self) -> &DijkstraRing {
        &self.proto
    }

    fn legitimate_configuration(
        &self,
        graph: &Graph,
        _rng: &mut StdRng,
    ) -> Result<Configuration<u64>, HarnessError> {
        // All counters equal: exactly the root privileged — legitimate.
        Ok(Configuration::from_fn(graph.n(), |_| 0u64))
    }

    fn safety_predicate(&self) -> ConfigPredicate<u64> {
        safety_of(&self.spec)
    }

    fn legitimacy_predicate(&self) -> ConfigPredicate<u64> {
        legitimacy_of(&self.spec)
    }

    /// The exact synchronous law: legitimacy entry within `2n − 3` steps.
    fn sync_bound(&self, graph: &Graph, _diam: u32) -> Option<TheoremBound> {
        Some(TheoremBound {
            value: bounds::dijkstra_sync_entry_law(graph.n()),
            metric: BoundMetric::LegitimacyEntry,
        })
    }

    /// Instance-level gate: the `u8` lane packing holds `K ≤ 256` counter
    /// states. The standard grid instance uses `K = n`, so every ring up
    /// to 256 machines batches; oversized rings fall back to scalar.
    fn supports_batch(&self) -> bool {
        self.proto.k() <= 256
    }

    /// Byte lanes make the central-mode pass cheap enough to route well
    /// past the i32 default: `crossover_probe` has central-rand winning
    /// outright through n ≈ 64–96 and both central modes within ~25% of
    /// scalar at n = 128 (`bench_results/crossover_central.txt`), which
    /// buys one engine path across the Monte-Carlo ring grid.
    fn central_batch_max_n(&self) -> usize {
        128
    }

    fn batched_measure(
        &self,
        graph: &Graph,
        daemon: BatchDaemon,
        lane_seeds: &[u64],
        inits: Vec<Configuration<u64>>,
        max_steps: usize,
        early_stop_margin: usize,
    ) -> Option<Vec<(StabilizationReport, Configuration<u64>)>> {
        if !self.supports_batch() {
            return None;
        }
        let stop = self.legitimacy_predicate();
        Some(run_batch_measured_with(
            graph,
            &self.proto,
            daemon,
            lane_seeds,
            inits,
            max_steps,
            &self.safety_predicate(),
            &self.legitimacy_predicate(),
            Some((&stop, early_stop_margin)),
        ))
    }
}

/// Dijkstra's three-state solution (1974). Ring-only.
#[derive(Debug)]
pub struct Dijkstra3Harness {
    proto: DijkstraThreeState,
    spec: ThreeStateSpec,
}

impl ProtocolHarness for Dijkstra3Harness {
    type Protocol = DijkstraThreeState;
    const NAME: &'static str = "dijkstra3";

    fn build(graph: &Graph, _diam: u32) -> Result<Self, HarnessError> {
        let proto = DijkstraThreeState::new(graph).map_err(|ThreeStateError::NotARing| {
            HarnessError::IncompatibleTopology {
                protocol: Self::NAME.to_string(),
                requirement: "a ring of n >= 3 machines".to_string(),
                topology: graph.name().to_string(),
            }
        })?;
        let spec = ThreeStateSpec::new(proto.clone());
        Ok(Self { proto, spec })
    }

    fn protocol(&self) -> &DijkstraThreeState {
        &self.proto
    }

    fn legitimate_configuration(
        &self,
        graph: &Graph,
        _rng: &mut StdRng,
    ) -> Result<Configuration<u8>, HarnessError> {
        // All machines at 0: only the top machine holds a privilege.
        Ok(Configuration::from_fn(graph.n(), |_| 0u8))
    }

    fn safety_predicate(&self) -> ConfigPredicate<u8> {
        safety_of(&self.spec)
    }

    fn legitimacy_predicate(&self) -> ConfigPredicate<u8> {
        legitimacy_of(&self.spec)
    }

    fn supports_batch(&self) -> bool {
        true
    }

    /// Byte lanes: see [`DijkstraHarness::central_batch_max_n`] — the
    /// three-state ring is the `crossover_probe` calibration workload.
    fn central_batch_max_n(&self) -> usize {
        128
    }

    fn batched_measure(
        &self,
        graph: &Graph,
        daemon: BatchDaemon,
        lane_seeds: &[u64],
        inits: Vec<Configuration<u8>>,
        max_steps: usize,
        early_stop_margin: usize,
    ) -> Option<Vec<(StabilizationReport, Configuration<u8>)>> {
        let stop = self.legitimacy_predicate();
        Some(run_batch_measured_with(
            graph,
            &self.proto,
            daemon,
            lane_seeds,
            inits,
            max_steps,
            &self.safety_predicate(),
            &self.legitimacy_predicate(),
            Some((&stop, early_stop_margin)),
        ))
    }
}

/// Dijkstra's four-state solution (1974). Line-only.
#[derive(Debug)]
pub struct Dijkstra4Harness {
    proto: DijkstraFourState,
    spec: FourStateSpec,
}

impl ProtocolHarness for Dijkstra4Harness {
    type Protocol = DijkstraFourState;
    const NAME: &'static str = "dijkstra4";

    fn build(graph: &Graph, _diam: u32) -> Result<Self, HarnessError> {
        let proto = DijkstraFourState::new(graph).map_err(|FourStateError::NotALine| {
            HarnessError::IncompatibleTopology {
                protocol: Self::NAME.to_string(),
                requirement: "a line of n >= 2 machines".to_string(),
                topology: graph.name().to_string(),
            }
        })?;
        let spec = FourStateSpec::new(proto.clone());
        Ok(Self { proto, spec })
    }

    fn protocol(&self) -> &DijkstraFourState {
        &self.proto
    }

    fn legitimate_configuration(
        &self,
        graph: &Graph,
        _rng: &mut StdRng,
    ) -> Result<Configuration<FourState>, HarnessError> {
        // Uniform `x`, all `up` bits lowered (the special machines' bits
        // frozen by `canonical`): only the bottom machine is privileged.
        Ok(Configuration::from_fn(graph.n(), |v| {
            self.proto.canonical(v.index(), FourState { x: false, up: false })
        }))
    }

    fn safety_predicate(&self) -> ConfigPredicate<FourState> {
        safety_of(&self.spec)
    }

    fn legitimacy_predicate(&self) -> ConfigPredicate<FourState> {
        legitimacy_of(&self.spec)
    }

    fn supports_batch(&self) -> bool {
        true
    }

    /// Byte lanes: see [`DijkstraHarness::central_batch_max_n`].
    fn central_batch_max_n(&self) -> usize {
        128
    }

    fn batched_measure(
        &self,
        graph: &Graph,
        daemon: BatchDaemon,
        lane_seeds: &[u64],
        inits: Vec<Configuration<FourState>>,
        max_steps: usize,
        early_stop_margin: usize,
    ) -> Option<Vec<(StabilizationReport, Configuration<FourState>)>> {
        let stop = self.legitimacy_predicate();
        Some(run_batch_measured_with(
            graph,
            &self.proto,
            daemon,
            lane_seeds,
            inits,
            max_steps,
            &self.safety_predicate(),
            &self.legitimacy_predicate(),
            Some((&stop, early_stop_margin)),
        ))
    }
}

/// The `min+1` BFS spanning-tree protocol (Huang & Chen 1992), rooted at
/// vertex 0. Works on any connected graph.
#[derive(Debug)]
pub struct BfsHarness {
    proto: MinPlusOneBfs,
    spec: BfsSpec,
}

impl ProtocolHarness for BfsHarness {
    type Protocol = MinPlusOneBfs;
    const NAME: &'static str = "bfs";

    fn build(graph: &Graph, _diam: u32) -> Result<Self, HarnessError> {
        let root = VertexId::new(0);
        let proto = MinPlusOneBfs::new(graph, root);
        let spec = BfsSpec::new(graph, root);
        Ok(Self { proto, spec })
    }

    fn protocol(&self) -> &MinPlusOneBfs {
        &self.proto
    }

    fn legitimate_configuration(
        &self,
        graph: &Graph,
        _rng: &mut StdRng,
    ) -> Result<Configuration<u32>, HarnessError> {
        // Levels equal to the true BFS distances: the unique terminal
        // (and legitimate) configuration. The distances are the ones the
        // specification already computed.
        Ok(Configuration::from_fn(graph.n(), |v| self.spec.distances()[v.index()]))
    }

    fn safety_predicate(&self) -> ConfigPredicate<u32> {
        safety_of(&self.spec)
    }

    fn legitimacy_predicate(&self) -> ConfigPredicate<u32> {
        legitimacy_of(&self.spec)
    }
}

/// The maximal matching protocol of Manne et al. (2009). Works on any
/// connected graph.
#[derive(Debug)]
pub struct MatchingHarness {
    proto: MaximalMatching,
    spec: MatchingSpec,
}

impl ProtocolHarness for MatchingHarness {
    type Protocol = MaximalMatching;
    const NAME: &'static str = "matching";

    fn build(graph: &Graph, _diam: u32) -> Result<Self, HarnessError> {
        let proto = MaximalMatching::new(graph);
        let spec = MatchingSpec::new(proto.clone());
        Ok(Self { proto, spec })
    }

    fn protocol(&self) -> &MaximalMatching {
        &self.proto
    }

    /// A greedy maximal matching over an rng-shuffled vertex order —
    /// different seeds sample different legitimate resting points, all of
    /// them terminal configurations of the protocol.
    fn legitimate_configuration(
        &self,
        graph: &Graph,
        rng: &mut StdRng,
    ) -> Result<Configuration<MatchState>, HarnessError> {
        let mut order: Vec<VertexId> = graph.vertices().collect();
        order.shuffle(rng);
        let mut partner: Vec<Option<VertexId>> = vec![None; graph.n()];
        for &v in &order {
            if partner[v.index()].is_some() {
                continue;
            }
            if let Some(u) =
                graph.neighbors(v).iter().copied().find(|u| partner[u.index()].is_none())
            {
                partner[v.index()] = Some(u);
                partner[u.index()] = Some(v);
            }
        }
        Ok(Configuration::from_fn(graph.n(), |v| MatchState {
            pointer: partner[v.index()],
            married: partner[v.index()].is_some(),
        }))
    }

    fn safety_predicate(&self) -> ConfigPredicate<MatchState> {
        safety_of(&self.spec)
    }

    fn legitimacy_predicate(&self) -> ConfigPredicate<MatchState> {
        legitimacy_of(&self.spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use specstab_topology::generators;

    fn diam(g: &Graph) -> u32 {
        DistanceMatrix::new(g).diameter()
    }

    #[test]
    fn ring_only_protocols_reject_non_rings_with_typed_errors() {
        let path = generators::path(5).unwrap();
        let d = diam(&path);
        for err in [
            DijkstraHarness::build(&path, d).unwrap_err(),
            Dijkstra3Harness::build(&path, d).unwrap_err(),
        ] {
            assert!(
                matches!(err, HarnessError::IncompatibleTopology { .. }),
                "expected IncompatibleTopology, got {err:?}"
            );
            assert!(err.to_string().contains("ring of n >= 3"), "{err}");
        }
        let ring = generators::ring(6).unwrap();
        let err = Dijkstra4Harness::build(&ring, diam(&ring)).unwrap_err();
        assert!(err.to_string().contains("requires a line"), "{err}");
    }

    #[test]
    fn every_harness_builds_on_a_compatible_topology() {
        let ring = generators::ring(7).unwrap();
        let path = generators::path(6).unwrap();
        let grid = generators::grid(3, 3).unwrap();
        assert!(SsmeHarness::build(&grid, diam(&grid)).is_ok());
        assert!(DijkstraHarness::build(&ring, diam(&ring)).is_ok());
        assert!(Dijkstra3Harness::build(&ring, diam(&ring)).is_ok());
        assert!(Dijkstra4Harness::build(&path, diam(&path)).is_ok());
        assert!(BfsHarness::build(&grid, diam(&grid)).is_ok());
        assert!(MatchingHarness::build(&grid, diam(&grid)).is_ok());
    }

    #[test]
    fn only_ssme_supports_the_witness_scenario() {
        assert!(SsmeHarness::supports_witness());
        assert!(!DijkstraHarness::supports_witness());
        assert!(!Dijkstra3Harness::supports_witness());
        assert!(!Dijkstra4Harness::supports_witness());
        assert!(!BfsHarness::supports_witness());
        assert!(!MatchingHarness::supports_witness());
        let ring = generators::ring(6).unwrap();
        let h = DijkstraHarness::build(&ring, diam(&ring)).unwrap();
        let err = h.witness_configuration(&ring).unwrap_err();
        assert!(matches!(err, HarnessError::UnsupportedScenario { .. }));
    }

    #[test]
    fn ssme_witness_matches_theorem4_construction() {
        let g = generators::ring(8).unwrap();
        let d = diam(&g);
        let h = SsmeHarness::build(&g, d).unwrap();
        let init = h.witness_configuration(&g).unwrap();
        let dm = DistanceMatrix::new(&g);
        let w = specstab_core::lower_bound::theorem4_witness(h.ssme(), &g, &dm).unwrap();
        assert_eq!(init, w.init);
    }

    #[test]
    fn matching_legitimate_configuration_varies_with_the_rng_stream() {
        let g = generators::grid(3, 4).unwrap();
        let h = MatchingHarness::build(&g, diam(&g)).unwrap();
        let legit = h.legitimacy_predicate();
        let mut seen = std::collections::HashSet::new();
        for seed in 0..8u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let c = h.legitimate_configuration(&g, &mut rng).unwrap();
            assert!(legit(&c, &g), "seed {seed} produced an illegitimate matching");
            seen.insert(format!("{:?}", c.states()));
        }
        assert!(seen.len() > 1, "shuffled greedy should sample several matchings");
    }

    #[test]
    fn sync_bounds_only_where_the_literature_provides_them() {
        let ring = generators::ring(8).unwrap();
        let d = diam(&ring);
        let ssme = SsmeHarness::build(&ring, d).unwrap();
        let b = ssme.sync_bound(&ring, d).unwrap();
        assert_eq!(b.value, bounds::sync_stabilization_bound(d));
        assert_eq!(b.metric, BoundMetric::Stabilization);
        let dij = DijkstraHarness::build(&ring, d).unwrap();
        let b = dij.sync_bound(&ring, d).unwrap();
        assert_eq!(b.value, bounds::dijkstra_sync_entry_law(8));
        assert_eq!(b.metric, BoundMetric::LegitimacyEntry);
        let bfs = BfsHarness::build(&ring, d).unwrap();
        assert!(bfs.sync_bound(&ring, d).is_none());
        let m3 = Dijkstra3Harness::build(&ring, d).unwrap();
        assert!(m3.sync_bound(&ring, d).is_none());
    }
}
