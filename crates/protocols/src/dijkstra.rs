//! Dijkstra's K-state self-stabilizing mutual exclusion on a ring (1974).
//!
//! The seminal protocol the paper's Section 3 classifies as *accidentally*
//! speculative: it stabilizes in `Θ(n²)` steps under the unfair distributed
//! daemon but in only `n` steps under the synchronous one — i.e. it is
//! `(ud, sd, n², n)`-speculatively stabilizing.
//!
//! Machines `0 .. n-1` sit on a unidirectional ring; machine `0` is the
//! *bottom*. Each holds a counter in `{0, .., K-1}`:
//!
//! * bottom: privileged iff `S[0] = S[n-1]`; move: `S[0] := S[0] + 1 mod K`;
//! * other `i`: privileged iff `S[i] ≠ S[i-1]`; move: `S[i] := S[i-1]`.
//!
//! With `K ≥ n` the protocol is self-stabilizing (exactly one machine
//! eventually privileged); this module exposes `K` so the undersized case
//! can be demonstrated too.

use rand::rngs::StdRng;
use rand::Rng;
use specstab_kernel::batch::PackedProtocol;
use specstab_kernel::config::Configuration;
use specstab_kernel::protocol::{Protocol, RuleId, RuleInfo, View};
use specstab_kernel::spec::Specification;
use specstab_topology::{Graph, VertexId};
use std::error::Error;
use std::fmt;

/// Rule index: the unique "pass/advance token" rule.
pub const MOVE: RuleId = RuleId::new(0);

/// Errors building a [`DijkstraRing`].
#[derive(Clone, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum DijkstraError {
    /// The communication graph is not a ring of the expected shape
    /// (every vertex adjacent to `i±1 mod n`, `n ≥ 3`).
    NotARing,
    /// `K < n`: self-stabilization is not guaranteed.
    KTooSmall {
        /// Requested number of counter states.
        k: u64,
        /// Ring size.
        n: usize,
    },
}

impl fmt::Display for DijkstraError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DijkstraError::NotARing => write!(f, "Dijkstra's protocol requires a ring"),
            DijkstraError::KTooSmall { k, n } => {
                write!(f, "K = {k} states are not enough for a ring of {n} machines (need K ≥ n)")
            }
        }
    }
}

impl Error for DijkstraError {}

/// Dijkstra's K-state protocol instance.
#[derive(Clone, Debug)]
pub struct DijkstraRing {
    n: usize,
    k: u64,
}

impl DijkstraRing {
    /// Creates the protocol for a ring graph with `K ≥ n` counter states.
    ///
    /// # Errors
    ///
    /// [`DijkstraError::NotARing`] if `graph` is not the standard ring,
    /// [`DijkstraError::KTooSmall`] if `k < n`.
    pub fn new(graph: &Graph, k: u64) -> Result<Self, DijkstraError> {
        let n = graph.n();
        if n < 3 || graph.m() != n {
            return Err(DijkstraError::NotARing);
        }
        for i in 0..n {
            let next = VertexId::new((i + 1) % n);
            if !graph.contains_edge(VertexId::new(i), next) {
                return Err(DijkstraError::NotARing);
            }
        }
        if k < n as u64 {
            return Err(DijkstraError::KTooSmall { k, n });
        }
        Ok(Self { n, k })
    }

    /// Ablation constructor: accepts undersized `K` (the protocol may then
    /// fail to stabilize — demonstrable with [`specstab_kernel::search`]).
    ///
    /// # Errors
    ///
    /// [`DijkstraError::NotARing`] if `graph` is not the standard ring.
    pub fn with_undersized_k(graph: &Graph, k: u64) -> Result<Self, DijkstraError> {
        let mut p = Self::new(graph, graph.n() as u64)?;
        p.k = k.max(2);
        Ok(p)
    }

    /// Number of machines.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of counter states `K`.
    #[must_use]
    pub fn k(&self) -> u64 {
        self.k
    }

    fn prev(&self, v: VertexId) -> VertexId {
        VertexId::new((v.index() + self.n - 1) % self.n)
    }

    /// Whether `v` is privileged in `config` (holds the token).
    #[must_use]
    pub fn is_privileged(&self, v: VertexId, config: &Configuration<u64>) -> bool {
        let s = *config.get(v);
        let sp = *config.get(self.prev(v));
        if v.index() == 0 {
            s == sp
        } else {
            s != sp
        }
    }

    /// All privileged machines of `config`.
    #[must_use]
    pub fn privileged_vertices(&self, config: &Configuration<u64>) -> Vec<VertexId> {
        (0..self.n).map(VertexId::new).filter(|&v| self.is_privileged(v, config)).collect()
    }
}

impl Protocol for DijkstraRing {
    type State = u64;

    fn name(&self) -> String {
        format!("dijkstra-kstate[n={}, K={}]", self.n, self.k)
    }

    fn rules(&self) -> Vec<RuleInfo> {
        vec![RuleInfo::new("MOVE")]
    }

    fn enabled_rule(&self, view: &View<'_, u64>) -> Option<RuleId> {
        let v = view.vertex();
        let s = *view.state();
        let sp = *view.state_of(self.prev(v));
        let privileged = if v.index() == 0 { s == sp } else { s != sp };
        privileged.then_some(MOVE)
    }

    fn apply(&self, view: &View<'_, u64>, _rule: RuleId) -> u64 {
        let v = view.vertex();
        if v.index() == 0 {
            (*view.state() + 1) % self.k
        } else {
            *view.state_of(self.prev(v))
        }
    }

    fn random_state(&self, _v: VertexId, rng: &mut StdRng) -> u64 {
        rng.gen_range(0..self.k)
    }

    fn state_domain(&self, _v: VertexId) -> Option<Vec<u64>> {
        Some((0..self.k).collect())
    }
}

/// Lane-packed K-state stepping: counters pack into `u8` lanes — 64
/// replicas per cache line — whenever `K ≤ 256`, which is the bound the
/// harness gates batched routing on. The guard is one byte compare
/// against the ring predecessor's row and the bottom increment is a
/// branch-free select (`s == K-1 ? 0 : s+1`), so both per-vertex loops
/// are straight-line byte ops over the lane axis that autovectorize.
impl PackedProtocol for DijkstraRing {
    type Lane = u8;
    type LaneScratch = ();

    fn pack(&self, state: &u64) -> u8 {
        debug_assert!(self.k <= 256, "u8 lanes hold at most 256 counter states");
        u8::try_from(*state).expect("counter fits u8 lanes (K <= 256)")
    }

    fn unpack(&self, lane: u8) -> u64 {
        u64::from(lane)
    }

    fn step_lanes(
        &self,
        graph: &Graph,
        lanes: usize,
        soa: &[u8],
        next: &mut [u8],
        fired: &mut [bool],
        scratch: &mut (),
    ) {
        for v in 0..self.n {
            self.eval_vertex_lanes(graph, v, lanes, soa, next, fired, scratch);
        }
    }

    fn eval_vertex_lanes(
        &self,
        _graph: &Graph,
        v: usize,
        lanes: usize,
        soa: &[u8],
        next: &mut [u8],
        fired: &mut [bool],
        _scratch: &mut (),
    ) {
        let n = self.n;
        let km1 = u8::try_from(self.k - 1).expect("K <= 256 for packed stepping");
        let p = if v == 0 { n - 1 } else { v - 1 };
        let base = v * lanes;
        let rv = &soa[base..base + lanes];
        let rp = &soa[p * lanes..p * lanes + lanes];
        let fired_row = &mut fired[base..base + lanes];
        let next_row = &mut next[base..base + lanes];
        // Zip iteration instead of indexing: a runtime `lanes` keeps
        // per-element bounds checks alive under indexed access, which
        // blocks autovectorization of the byte compares.
        if v == 0 {
            for (((f, nx), &s), &p) in fired_row.iter_mut().zip(next_row.iter_mut()).zip(rv).zip(rp)
            {
                *f = s == p;
                *nx = if s == km1 { 0 } else { s + 1 };
            }
        } else {
            for (((f, nx), &s), &p) in fired_row.iter_mut().zip(next_row.iter_mut()).zip(rv).zip(rp)
            {
                *f = s != p;
                *nx = p;
            }
        }
    }
}

/// `specME` for Dijkstra's ring: safety = at most one privileged machine;
/// legitimacy = exactly one (the closed legitimate set of the protocol).
#[derive(Clone, Debug)]
pub struct DijkstraSpec {
    protocol: DijkstraRing,
}

impl DijkstraSpec {
    /// Creates the specification for a protocol instance.
    #[must_use]
    pub fn new(protocol: DijkstraRing) -> Self {
        Self { protocol }
    }
}

impl Specification<u64> for DijkstraSpec {
    fn name(&self) -> String {
        "specME(dijkstra)".into()
    }
    fn is_safe(&self, config: &Configuration<u64>, _graph: &Graph) -> bool {
        self.protocol.privileged_vertices(config).len() <= 1
    }
    fn is_legitimate(&self, config: &Configuration<u64>, _graph: &Graph) -> bool {
        self.protocol.privileged_vertices(config).len() == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use specstab_kernel::daemon::{CentralDaemon, CentralStrategy, SynchronousDaemon};
    use specstab_kernel::engine::{RunLimits, Simulator};
    use specstab_kernel::measure::measure_with_early_stop;
    use specstab_kernel::protocol::random_configuration;
    use specstab_kernel::search::{
        build_config_graph, enumerate_all_configurations, worst_steps_to, SearchDaemon,
    };
    use specstab_topology::generators;

    fn ring_proto(n: usize) -> (Graph, DijkstraRing) {
        let g = generators::ring(n).unwrap();
        let p = DijkstraRing::new(&g, n as u64).unwrap();
        (g, p)
    }

    #[test]
    fn constructor_validates() {
        let g = generators::ring(5).unwrap();
        assert!(DijkstraRing::new(&g, 5).is_ok());
        assert_eq!(DijkstraRing::new(&g, 4).unwrap_err(), DijkstraError::KTooSmall { k: 4, n: 5 });
        let not_ring = generators::path(5).unwrap();
        assert_eq!(DijkstraRing::new(&not_ring, 5).unwrap_err(), DijkstraError::NotARing);
        let star = generators::star(5).unwrap();
        assert_eq!(DijkstraRing::new(&star, 5).unwrap_err(), DijkstraError::NotARing);
    }

    #[test]
    fn uniform_config_gives_token_to_bottom() {
        let (_, p) = ring_proto(5);
        let c = Configuration::new(vec![3u64; 5]);
        assert_eq!(p.privileged_vertices(&c), vec![VertexId::new(0)]);
    }

    #[test]
    fn all_distinct_config_has_many_tokens() {
        let (_, p) = ring_proto(5);
        let c = Configuration::new(vec![0u64, 1, 2, 3, 4]);
        // v0: S[0]=0 vs S[4]=4 → not privileged; others all differ from
        // their predecessor → 4 privileges.
        assert_eq!(p.privileged_vertices(&c).len(), 4);
    }

    #[test]
    fn token_circulates_in_legitimate_configuration() {
        let (g, p) = ring_proto(4);
        let sim = Simulator::new(&g, &p);
        let mut d = CentralDaemon::new(CentralStrategy::MinId);
        let mut config = Configuration::new(vec![0u64; 4]);
        // 4 central steps: token visits 0 → 1 → 2 → 3.
        let mut holders = Vec::new();
        for _ in 0..4 {
            let privileged = p.privileged_vertices(&config);
            assert_eq!(privileged.len(), 1);
            holders.push(privileged[0].index());
            let s = sim.run(config, &mut d, RunLimits::with_max_steps(1), &mut []);
            config = s.final_config;
        }
        assert_eq!(holders, vec![0, 1, 2, 3]);
    }

    #[test]
    fn self_stabilizes_under_central_daemon() {
        let (g, p) = ring_proto(6);
        let spec = DijkstraSpec::new(p.clone());
        for seed in 0..10 {
            let mut rng = StdRng::seed_from_u64(seed);
            let init = random_configuration(&g, &p, &mut rng);
            let mut d = CentralDaemon::new(CentralStrategy::Random(seed));
            let s = spec.clone();
            let l = spec.clone();
            let st = spec.clone();
            let report = measure_with_early_stop(
                &g,
                &p,
                &mut d,
                init,
                Box::new(move |c, g| s.is_safe(c, g)),
                Box::new(move |c, g| l.is_legitimate(c, g)),
                Box::new(move |c, g| st.is_legitimate(c, g)),
                100_000,
                5,
            );
            assert!(report.ended_legitimate, "seed {seed}");
        }
    }

    #[test]
    fn synchronous_stabilization_within_2n_minus_3_steps() {
        // Section 3 claims "n steps" informally (the formal statement is
        // conv_time ∈ Θ(n)). Exact exhaustive analysis (see
        // `exact_synchronous_worst_case_is_2n_minus_3`) shows the true
        // synchronous worst case is 2n − 3 — still Θ(n), as claimed.
        for n in [4usize, 6, 8, 10] {
            let (g, p) = ring_proto(n);
            let spec = DijkstraSpec::new(p.clone());
            for seed in 0..20 {
                let mut rng = StdRng::seed_from_u64(seed);
                let init = random_configuration(&g, &p, &mut rng);
                let mut d = SynchronousDaemon::new();
                let s = spec.clone();
                let l = spec.clone();
                let st = spec.clone();
                let report = measure_with_early_stop(
                    &g,
                    &p,
                    &mut d,
                    init,
                    Box::new(move |c, g| s.is_safe(c, g)),
                    Box::new(move |c, g| l.is_legitimate(c, g)),
                    Box::new(move |c, g| st.is_legitimate(c, g)),
                    100_000,
                    2 * n,
                );
                assert!(report.ended_legitimate, "n={n} seed {seed}");
                assert!(
                    report.legitimacy_entry <= 2 * n - 3,
                    "n={n} seed {seed}: sync stabilization {} > 2n-3",
                    report.legitimacy_entry
                );
            }
        }
    }

    #[test]
    fn exact_worst_case_under_central_daemon_is_quadratic_order() {
        // Exhaustive on ring-4 with K=4 (256 configurations): the exact
        // central-daemon worst case must exist (no divergence) and exceed
        // n (it is Θ(n²) in general).
        let (g, p) = ring_proto(4);
        let spec = DijkstraSpec::new(p.clone());
        let all = enumerate_all_configurations(&g, &p, 100_000).unwrap();
        let cg = build_config_graph(&g, &p, &all, SearchDaemon::Central, 1_000_000).unwrap();
        let worst = worst_steps_to(&cg, |c| spec.is_legitimate(c, &g)).unwrap();
        let max = worst.iter().max().copied().unwrap();
        assert!(max >= 4, "worst case {max} suspiciously small");
        assert!(max <= 32, "worst case {max} above the n² envelope");
    }

    #[test]
    fn exact_worst_case_under_distributed_daemon_converges() {
        // The same instance under the FULL unfair distributed game: the
        // protocol still converges from everywhere (Dijkstra's protocol
        // tolerates the distributed daemon for K ≥ n).
        let (g, p) = ring_proto(4);
        let spec = DijkstraSpec::new(p.clone());
        let all = enumerate_all_configurations(&g, &p, 100_000).unwrap();
        let cg = build_config_graph(
            &g,
            &p,
            &all,
            SearchDaemon::Distributed { max_enabled: 4 },
            5_000_000,
        )
        .unwrap();
        let worst = worst_steps_to(&cg, |c| spec.is_legitimate(c, &g));
        assert!(worst.is_ok(), "distributed daemon must not prevent stabilization");
    }

    #[test]
    fn exact_synchronous_worst_case_is_2n_minus_3() {
        // Reproduction finding: the exact synchronous worst case of the
        // K-state protocol is 2n − 3 steps, independent of K ≥ n. This is
        // within the paper's Θ(n) classification (its prose says
        // "n steps", which is the right order but not the exact constant).
        for n in [3usize, 4, 5] {
            let (g, p) = ring_proto(n);
            let spec = DijkstraSpec::new(p.clone());
            let all = enumerate_all_configurations(&g, &p, 5_000_000).unwrap();
            let cg =
                build_config_graph(&g, &p, &all, SearchDaemon::Synchronous, 5_000_000).unwrap();
            let worst = worst_steps_to(&cg, |c| spec.is_legitimate(c, &g)).unwrap();
            let max = worst.iter().max().copied().unwrap();
            assert_eq!(max as usize, 2 * n - 3, "ring-{n}");
        }
    }

    #[test]
    fn undersized_k_breaks_stabilization() {
        // Classic counterexample: K = 2 on a ring of 4 under the central
        // daemon admits an execution never reaching a single-token config.
        let g = generators::ring(4).unwrap();
        let p = DijkstraRing::with_undersized_k(&g, 2).unwrap();
        let spec = DijkstraSpec::new(p.clone());
        let all = enumerate_all_configurations(&g, &p, 100_000).unwrap();
        let cg = build_config_graph(&g, &p, &all, SearchDaemon::Central, 1_000_000).unwrap();
        let worst = worst_steps_to(&cg, |c| spec.is_legitimate(c, &g));
        assert!(worst.is_err(), "K=2 on ring-4 should diverge under the central daemon");
    }

    #[test]
    fn packed_runs_match_scalar_lane_for_lane_under_both_daemons() {
        use specstab_kernel::batch::{run_batch_with, BatchDaemon};
        let (g, p) = ring_proto(7);
        let inits: Vec<_> = (0..9)
            .map(|s| {
                let mut rng = StdRng::seed_from_u64(4_000 + s);
                random_configuration(&g, &p, &mut rng)
            })
            .collect();
        for daemon in [BatchDaemon::Sync, BatchDaemon::CentralRr] {
            let lanes = run_batch_with(&g, &p, daemon, &[], &inits, 400);
            for (lane, init) in lanes.iter().zip(&inits) {
                let sim = Simulator::new(&g, &p);
                let limits = RunLimits::with_max_steps(400);
                let scalar = if daemon == BatchDaemon::Sync {
                    let mut d = SynchronousDaemon::new();
                    sim.run(init.clone(), &mut d, limits, &mut [])
                } else {
                    let mut d = CentralDaemon::new(CentralStrategy::RoundRobin);
                    sim.run(init.clone(), &mut d, limits, &mut [])
                };
                assert_eq!(lane.steps, scalar.steps);
                assert_eq!(lane.moves, scalar.moves);
                assert_eq!(lane.stop, scalar.stop);
                assert_eq!(lane.final_config, scalar.final_config);
            }
        }
    }

    #[test]
    fn legitimacy_is_closed_exhaustively_on_small_ring() {
        let (g, p) = ring_proto(4);
        let spec = DijkstraSpec::new(p.clone());
        let sim = Simulator::new(&g, &p);
        let all = enumerate_all_configurations(&g, &p, 100_000).unwrap();
        for c in &all {
            if !spec.is_legitimate(c, &g) {
                continue;
            }
            // Every daemon choice from a legitimate config stays legitimate.
            let enabled = sim.enabled_vertices(c);
            for &v in &enabled {
                let (next, _) = sim.apply_action(c, &[v]);
                assert!(spec.is_legitimate(&next, &g));
            }
            let (next, _) = sim.apply_action(c, &enabled);
            assert!(spec.is_legitimate(&next, &g));
        }
    }
}
