//! The `min+1` self-stabilizing BFS protocol of Huang & Chen (1992).
//!
//! Section 3 of the paper lists it as `(ud, sd, n², diam)`-speculatively
//! stabilizing for BFS spanning-tree construction: `Θ(n²)` steps under the
//! unfair distributed daemon, `Θ(diam(g))` under the synchronous one.
//!
//! Each vertex holds a level in the bounded domain `{0, .., n}`. The root
//! corrects itself to level `0`; every other vertex corrects itself to
//! `min(levels of neighbors) + 1` (capped at `n`). The BFS *tree* is then
//! read off by parenting each vertex to its smallest-index neighbor of
//! minimal level.

use rand::rngs::StdRng;
use rand::Rng;
use specstab_kernel::config::Configuration;
use specstab_kernel::protocol::{Protocol, RuleId, RuleInfo, View};
use specstab_kernel::spec::Specification;
use specstab_topology::metrics::DistanceMatrix;
use specstab_topology::{Graph, VertexId};

/// Rule index: the unique "adopt correct level" rule.
pub const ADJUST: RuleId = RuleId::new(0);

/// The `min+1` BFS protocol rooted at a designated vertex.
#[derive(Clone, Debug)]
pub struct MinPlusOneBfs {
    root: VertexId,
    n: usize,
}

impl MinPlusOneBfs {
    /// Creates the protocol for a graph of `n` vertices rooted at `root`.
    ///
    /// # Panics
    ///
    /// Panics if `root` is out of range.
    #[must_use]
    pub fn new(graph: &Graph, root: VertexId) -> Self {
        assert!(root.index() < graph.n(), "root out of range");
        Self { root, n: graph.n() }
    }

    /// The root vertex.
    #[must_use]
    pub fn root(&self) -> VertexId {
        self.root
    }

    /// The level a vertex *should* hold given its neighborhood.
    fn target_level(&self, view: &View<'_, u32>) -> u32 {
        if view.vertex() == self.root {
            0
        } else {
            let min = view
                .neighbor_states()
                .map(|(_, &l)| l)
                .min()
                .expect("connected graph: non-root has neighbors");
            (min + 1).min(self.n as u32)
        }
    }

    /// Reads off the BFS tree: `parent[v]` is the smallest-index neighbor
    /// with minimal level (`None` for the root).
    #[must_use]
    pub fn parents(&self, config: &Configuration<u32>, graph: &Graph) -> Vec<Option<VertexId>> {
        graph
            .vertices()
            .map(|v| {
                if v == self.root {
                    None
                } else {
                    graph.neighbors(v).iter().copied().min_by_key(|&u| (*config.get(u), u))
                }
            })
            .collect()
    }
}

impl Protocol for MinPlusOneBfs {
    type State = u32;

    fn name(&self) -> String {
        format!("min+1-bfs[n={}, root={}]", self.n, self.root)
    }

    fn rules(&self) -> Vec<RuleInfo> {
        vec![RuleInfo::new("ADJUST")]
    }

    fn enabled_rule(&self, view: &View<'_, u32>) -> Option<RuleId> {
        (*view.state() != self.target_level(view)).then_some(ADJUST)
    }

    fn apply(&self, view: &View<'_, u32>, _rule: RuleId) -> u32 {
        self.target_level(view)
    }

    fn random_state(&self, _v: VertexId, rng: &mut StdRng) -> u32 {
        rng.gen_range(0..=self.n as u32)
    }

    fn state_domain(&self, _v: VertexId) -> Option<Vec<u32>> {
        Some((0..=self.n as u32).collect())
    }
}

/// Specification: levels equal true BFS distances from the root.
#[derive(Clone, Debug)]
pub struct BfsSpec {
    root: VertexId,
    dist: Vec<u32>,
}

impl BfsSpec {
    /// Creates the specification (computes true distances once).
    #[must_use]
    pub fn new(graph: &Graph, root: VertexId) -> Self {
        let dm = DistanceMatrix::new(graph);
        let dist = graph.vertices().map(|v| dm.dist(root, v)).collect();
        Self { root, dist }
    }

    /// The root this specification checks against.
    #[must_use]
    pub fn root(&self) -> VertexId {
        self.root
    }

    /// The true BFS distances from the root, indexed by vertex — the
    /// specification's reference levels (and the protocol's unique
    /// terminal configuration).
    #[must_use]
    pub fn distances(&self) -> &[u32] {
        &self.dist
    }
}

impl Specification<u32> for BfsSpec {
    fn name(&self) -> String {
        "spec(bfs-levels)".into()
    }
    /// Levels are "safe" once correct — for a construction task the safety
    /// and legitimacy predicates coincide (the interesting measure is the
    /// convergence time to the closed legitimate set).
    fn is_safe(&self, config: &Configuration<u32>, graph: &Graph) -> bool {
        self.is_legitimate(config, graph)
    }
    fn is_legitimate(&self, config: &Configuration<u32>, _graph: &Graph) -> bool {
        config.iter().all(|(v, &l)| l == self.dist[v.index()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use specstab_kernel::daemon::{
        CentralDaemon, CentralStrategy, RandomDistributedDaemon, SynchronousDaemon,
    };
    use specstab_kernel::engine::{RunLimits, Simulator, StopReason};
    use specstab_kernel::protocol::random_configuration;
    use specstab_kernel::search::{
        build_config_graph, enumerate_all_configurations, worst_steps_to, SearchDaemon,
    };
    use specstab_topology::generators;

    #[test]
    fn terminal_configuration_is_bfs_levels() {
        for g in [
            generators::grid(3, 3).unwrap(),
            generators::petersen(),
            generators::random_tree(12, 4).unwrap(),
        ] {
            let p = MinPlusOneBfs::new(&g, VertexId::new(0));
            let spec = BfsSpec::new(&g, VertexId::new(0));
            let sim = Simulator::new(&g, &p);
            let mut rng = StdRng::seed_from_u64(1);
            let init = random_configuration(&g, &p, &mut rng);
            let mut d = SynchronousDaemon::new();
            let s = sim.run(init, &mut d, RunLimits::with_max_steps(10_000), &mut []);
            assert_eq!(s.stop, StopReason::Terminal, "{}", g.name());
            assert!(spec.is_legitimate(&s.final_config, &g), "{}", g.name());
        }
    }

    #[test]
    fn synchronous_convergence_within_eccentricity_plus_margin() {
        // Θ(diam) under sd: measured ≤ ecc(root) + 2 on all samples (the
        // +2 covers the lift of spuriously low levels near the root).
        for g in [
            generators::path(10).unwrap(),
            generators::grid(3, 4).unwrap(),
            generators::ring(9).unwrap(),
        ] {
            let root = VertexId::new(0);
            let p = MinPlusOneBfs::new(&g, root);
            let dm = DistanceMatrix::new(&g);
            let ecc = dm.eccentricity(root) as usize;
            let sim = Simulator::new(&g, &p);
            for seed in 0..20 {
                let mut rng = StdRng::seed_from_u64(seed);
                let init = random_configuration(&g, &p, &mut rng);
                let mut d = SynchronousDaemon::new();
                let s = sim.run(init, &mut d, RunLimits::with_max_steps(10_000), &mut []);
                assert_eq!(s.stop, StopReason::Terminal);
                assert!(
                    s.steps <= ecc + 2,
                    "{} seed {seed}: {} sync steps > ecc {ecc} + 2",
                    g.name(),
                    s.steps
                );
            }
        }
    }

    #[test]
    fn converges_under_asynchronous_daemons() {
        let g = generators::grid(3, 3).unwrap();
        let p = MinPlusOneBfs::new(&g, VertexId::new(0));
        let spec = BfsSpec::new(&g, VertexId::new(0));
        let sim = Simulator::new(&g, &p);
        for seed in 0..5 {
            let mut rng = StdRng::seed_from_u64(seed);
            let init = random_configuration(&g, &p, &mut rng);
            for daemon in [true, false] {
                let s = if daemon {
                    let mut d = CentralDaemon::new(CentralStrategy::Random(seed));
                    sim.run(init.clone(), &mut d, RunLimits::with_max_steps(100_000), &mut [])
                } else {
                    let mut d = RandomDistributedDaemon::new(0.4, seed);
                    sim.run(init.clone(), &mut d, RunLimits::with_max_steps(100_000), &mut [])
                };
                assert_eq!(s.stop, StopReason::Terminal);
                assert!(spec.is_legitimate(&s.final_config, &g));
            }
        }
    }

    #[test]
    fn exact_worst_case_under_central_daemon_on_tiny_path() {
        // path-3 rooted at an end: domain {0..3}^3 = 64 configs.
        let g = generators::path(3).unwrap();
        let p = MinPlusOneBfs::new(&g, VertexId::new(0));
        let spec = BfsSpec::new(&g, VertexId::new(0));
        let all = enumerate_all_configurations(&g, &p, 100_000).unwrap();
        let cg = build_config_graph(&g, &p, &all, SearchDaemon::Central, 1_000_000).unwrap();
        let worst = worst_steps_to(&cg, |c| spec.is_legitimate(c, &g)).unwrap();
        let max = worst.iter().max().copied().unwrap();
        // Central worst case exceeds the sync one (superlinear behavior).
        let cg_sync =
            build_config_graph(&g, &p, &all, SearchDaemon::Synchronous, 1_000_000).unwrap();
        let worst_sync = worst_steps_to(&cg_sync, |c| spec.is_legitimate(c, &g)).unwrap();
        let max_sync = worst_sync.iter().max().copied().unwrap();
        assert!(max > max_sync, "central {max} should exceed sync {max_sync}");
    }

    #[test]
    fn exact_distributed_worst_case_converges() {
        let g = generators::path(3).unwrap();
        let p = MinPlusOneBfs::new(&g, VertexId::new(0));
        let spec = BfsSpec::new(&g, VertexId::new(0));
        let all = enumerate_all_configurations(&g, &p, 100_000).unwrap();
        let cg = build_config_graph(
            &g,
            &p,
            &all,
            SearchDaemon::Distributed { max_enabled: 3 },
            2_000_000,
        )
        .unwrap();
        assert!(worst_steps_to(&cg, |c| spec.is_legitimate(c, &g)).is_ok());
    }

    #[test]
    fn parents_form_a_bfs_tree_at_legitimacy() {
        let g = generators::grid(3, 4).unwrap();
        let root = VertexId::new(0);
        let p = MinPlusOneBfs::new(&g, root);
        let dm = DistanceMatrix::new(&g);
        let legit = Configuration::from_fn(g.n(), |v| dm.dist(root, v));
        let parents = p.parents(&legit, &g);
        assert_eq!(parents[root.index()], None);
        for v in g.vertices() {
            if v == root {
                continue;
            }
            let parent = parents[v.index()].expect("non-root has a parent");
            assert!(g.contains_edge(v, parent));
            assert_eq!(dm.dist(root, parent) + 1, dm.dist(root, v), "{v}");
        }
    }

    #[test]
    fn levels_are_capped_at_n() {
        let g = generators::path(3).unwrap();
        let p = MinPlusOneBfs::new(&g, VertexId::new(0));
        // All vertices at the cap: only root and its neighbor enabled...
        let init = Configuration::new(vec![3u32, 3, 3]);
        let sim = Simulator::new(&g, &p);
        let mut d = SynchronousDaemon::new();
        let s = sim.run(init, &mut d, RunLimits::with_max_steps(100), &mut []);
        assert_eq!(s.final_config.states(), &[0, 1, 2]);
    }

    #[test]
    fn root_always_corrects_itself_first() {
        let g = generators::star(5).unwrap();
        let p = MinPlusOneBfs::new(&g, VertexId::new(0));
        let init = Configuration::new(vec![5u32, 0, 0, 0, 0]);
        let view = View::new(VertexId::new(0), &g, &init);
        assert_eq!(p.enabled_rule(&view), Some(ADJUST));
        assert_eq!(p.apply(&view, ADJUST), 0);
    }
}
