//! Baseline self-stabilizing protocols from Section 3 of the paper, plus
//! Dijkstra's other 1974 solutions.
//!
//! The paper observes that several classical protocols are *accidentally*
//! speculative — their stabilization time under the synchronous daemon is
//! strictly better than under the unfair distributed one:
//!
//! | protocol | under `ud` | under `sd` |
//! |---|---|---|
//! | [`dijkstra::DijkstraRing`] (mutual exclusion, 1974) | `Θ(n²)` | `2n−3` (exact; `Θ(n)`) |
//! | [`bfs::MinPlusOneBfs`] (BFS tree, Huang & Chen 1992) | `Θ(n²)` | `Θ(diam)` |
//! | [`matching::MaximalMatching`] (Manne et al. 2009) | `4n + 2m` | `2n + 1` |
//!
//! Each implementation ships its legitimacy specification and is validated
//! against the claimed bounds (empirically, and exhaustively on small
//! instances). The crate additionally implements Dijkstra's
//! [`dijkstra_three_state`] (ring) and [`dijkstra_four_state`] (line)
//! solutions, both exhaustively verified self-stabilizing.
//!
//! Every protocol (including SSME from `specstab-core`) is wrapped in a
//! [`specstab_kernel::harness::ProtocolHarness`] ([`harness`]) and indexed
//! by the name-keyed [`registry`], so grid drivers can sweep any of them
//! behind a string spec.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bfs;
pub mod dijkstra;
pub mod dijkstra_four_state;
pub mod dijkstra_three_state;
pub mod harness;
pub mod matching;
pub mod registry;

pub use bfs::{BfsSpec, MinPlusOneBfs};
pub use dijkstra::{DijkstraRing, DijkstraSpec};
pub use dijkstra_four_state::{DijkstraFourState, FourState, FourStateSpec};
pub use dijkstra_three_state::{DijkstraThreeState, ThreeStateSpec};
pub use harness::{
    BfsHarness, Dijkstra3Harness, Dijkstra4Harness, DijkstraHarness, MatchingHarness, SsmeHarness,
};
pub use matching::{MatchState, MatchingSpec, MaximalMatching};
