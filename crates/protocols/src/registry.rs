//! The name-keyed protocol registry: every [`ProtocolHarness`] in the
//! workspace behind a string spec.
//!
//! The registry is the API that lets grid drivers (the campaign engine,
//! CLIs, future multi-process sharding) describe a protocol **purely as a
//! string** while still reaching fully monomorphized code: a caller
//! supplies a [`HarnessVisitor`] and [`resolve`] dispatches it to the
//! harness *type* registered under the name. The visitor's generic
//! `visit::<H>()` is instantiated once per protocol, so the code it
//! returns (e.g. a cell-runner `fn` pointer) contains no `dyn` dispatch.
//!
//! [`PROTOCOLS`] carries the human-facing metadata (state spaces,
//! topology constraints, witness capability) used by `--list-protocols`
//! style frontends and by upfront compatibility filtering.

use crate::harness::{
    BfsHarness, Dijkstra3Harness, Dijkstra4Harness, DijkstraHarness, MatchingHarness, SsmeHarness,
};
use specstab_kernel::harness::{HarnessError, ProtocolHarness};
use specstab_topology::Graph;

/// Registry metadata of one protocol.
#[derive(Copy, Clone, Debug)]
pub struct ProtocolInfo {
    /// Registry name (the string spec, e.g. `"ssme"`).
    pub name: &'static str,
    /// One-line description.
    pub summary: &'static str,
    /// Human-readable per-vertex state space.
    pub states: &'static str,
    /// Human-readable topology constraint.
    pub topology: &'static str,
    /// Whether the protocol defines an adversarial witness configuration.
    pub has_witness: bool,
    /// Whether the protocol supports lane-packed batched stepping
    /// (see `specstab_kernel::batch`) — routed under the synchronous,
    /// central round-robin, central-rand and random-distributed daemons.
    pub batched: bool,
}

/// All registered protocols, in canonical registry order (the order
/// `--protocols all` expands to).
pub const PROTOCOLS: &[ProtocolInfo] = &[
    ProtocolInfo {
        name: "ssme",
        summary: "SSME (Algorithm 1) under specME, with the Theorem 4 witness",
        states: "clock values {-alpha, .., beta}",
        topology: "any connected graph",
        has_witness: true,
        batched: true,
    },
    ProtocolInfo {
        name: "dijkstra",
        summary: "Dijkstra's K-state token ring (1974), K = n",
        states: "counters {0, .., n-1}",
        topology: "ring (n >= 3)",
        has_witness: false,
        batched: true,
    },
    ProtocolInfo {
        name: "dijkstra3",
        summary: "Dijkstra's three-state mutual exclusion (1974)",
        states: "{0, 1, 2}",
        topology: "ring (n >= 3)",
        has_witness: false,
        batched: true,
    },
    ProtocolInfo {
        name: "dijkstra4",
        summary: "Dijkstra's four-state mutual exclusion (1974)",
        states: "(x, up) boolean pairs",
        topology: "line (n >= 2)",
        has_witness: false,
        batched: true,
    },
    ProtocolInfo {
        name: "bfs",
        summary: "min+1 BFS spanning tree (Huang & Chen 1992), root 0",
        states: "levels {0, .., n}",
        topology: "any connected graph",
        has_witness: false,
        batched: false,
    },
    ProtocolInfo {
        name: "matching",
        summary: "maximal matching (Manne et al. 2009)",
        states: "pointer in neig(v) + {bot}, married flag",
        topology: "any connected graph",
        has_witness: false,
        batched: false,
    },
];

/// Looks up a protocol's metadata by registry name.
#[must_use]
pub fn info(name: &str) -> Option<&'static ProtocolInfo> {
    PROTOCOLS.iter().find(|p| p.name == name)
}

/// The registered protocol names, in canonical order.
#[must_use]
pub fn names() -> Vec<&'static str> {
    PROTOCOLS.iter().map(|p| p.name).collect()
}

/// The "unknown protocol" error, listing what the registry knows.
fn unknown(name: &str) -> String {
    format!("unknown protocol '{name}' (registered: {})", names().join(" | "))
}

/// Generic dispatch target for [`resolve`]: implement this with a generic
/// `visit` and the registry instantiates it for the harness type
/// registered under a name.
pub trait HarnessVisitor {
    /// What the visit produces (e.g. a monomorphized `fn` pointer).
    type Output;

    /// Visits the harness type registered under the resolved name.
    fn visit<H: ProtocolHarness + 'static>(self, info: &'static ProtocolInfo) -> Self::Output;
}

/// Resolves `name` and dispatches `visitor` to the registered harness
/// type. This is the only name `match` in the workspace — every consumer
/// goes through it.
///
/// # Errors
///
/// Returns the unknown-protocol message listing the registered names.
pub fn resolve<V: HarnessVisitor>(name: &str, visitor: V) -> Result<V::Output, String> {
    let info = info(name).ok_or_else(|| unknown(name))?;
    Ok(match name {
        "ssme" => visitor.visit::<SsmeHarness>(info),
        "dijkstra" => visitor.visit::<DijkstraHarness>(info),
        "dijkstra3" => visitor.visit::<Dijkstra3Harness>(info),
        "dijkstra4" => visitor.visit::<Dijkstra4Harness>(info),
        "bfs" => visitor.visit::<BfsHarness>(info),
        "matching" => visitor.visit::<MatchingHarness>(info),
        _ => unreachable!("PROTOCOLS and resolve() must agree on the registered names"),
    })
}

/// Expands a comma-separated protocol list, with `all` expanding to every
/// registered protocol, and validates each name against the registry.
///
/// # Errors
///
/// Returns the first unknown name.
pub fn parse_protocol_list(spec: &str) -> Result<Vec<String>, String> {
    let mut out = Vec::new();
    for tok in spec.split(',').filter(|t| !t.is_empty()) {
        if tok == "all" {
            out.extend(names().iter().map(|n| (*n).to_string()));
        } else if info(tok).is_some() {
            out.push(tok.to_string());
        } else {
            return Err(unknown(tok));
        }
    }
    if out.is_empty() {
        return Err("empty protocol list".to_string());
    }
    // Order-preserving dedup (duplicate names would enumerate duplicate
    // cells with identical coordinates and seeds, double-counting groups).
    let mut seen = std::collections::HashSet::new();
    out.retain(|n| seen.insert(n.clone()));
    Ok(out)
}

struct CompatCheck<'a> {
    graph: &'a Graph,
    diam: u32,
}

impl HarnessVisitor for CompatCheck<'_> {
    type Output = Result<(), HarnessError>;
    fn visit<H: ProtocolHarness + 'static>(self, _info: &'static ProtocolInfo) -> Self::Output {
        H::build(self.graph, self.diam).map(|_| ())
    }
}

/// Whether the named protocol can run on `graph` — the registry-driven
/// replacement for ad-hoc per-protocol topology `match`es. Builds the
/// harness and reports its typed error.
///
/// # Errors
///
/// The unknown-protocol message (outer) or the harness's typed
/// [`HarnessError`] (inner).
pub fn check_topology(
    name: &str,
    graph: &Graph,
    diam: u32,
) -> Result<Result<(), HarnessError>, String> {
    resolve(name, CompatCheck { graph, diam })
}

#[cfg(test)]
mod tests {
    use super::*;
    use specstab_topology::generators;
    use specstab_topology::metrics::DistanceMatrix;

    struct NameOf;
    impl HarnessVisitor for NameOf {
        type Output = &'static str;
        fn visit<H: ProtocolHarness + 'static>(self, _info: &'static ProtocolInfo) -> &'static str {
            H::NAME
        }
    }

    #[test]
    fn every_registered_name_resolves_to_a_harness_agreeing_on_the_name() {
        for p in PROTOCOLS {
            assert_eq!(resolve(p.name, NameOf).unwrap(), p.name);
        }
    }

    #[test]
    fn names_are_unique_and_info_roundtrips() {
        let mut ns = names();
        ns.sort_unstable();
        ns.dedup();
        assert_eq!(ns.len(), PROTOCOLS.len());
        assert_eq!(info("bfs").unwrap().topology, "any connected graph");
        assert!(info("warp-drive").is_none());
    }

    #[test]
    fn unknown_names_list_the_registry() {
        let err = resolve("warp-drive", NameOf).unwrap_err();
        assert!(err.contains("unknown protocol 'warp-drive'"), "{err}");
        assert!(err.contains("ssme"), "{err}");
        assert!(err.contains("matching"), "{err}");
    }

    #[test]
    fn protocol_lists_expand_all_and_reject_junk() {
        assert_eq!(parse_protocol_list("ssme,bfs").unwrap(), vec!["ssme", "bfs"]);
        assert_eq!(parse_protocol_list("all").unwrap(), names());
        assert!(parse_protocol_list("ssme,warp").is_err());
        assert!(parse_protocol_list("").is_err());
    }

    #[test]
    fn protocol_lists_dedup_non_adjacent_repeats() {
        assert_eq!(parse_protocol_list("ssme,bfs,ssme").unwrap(), vec!["ssme", "bfs"]);
        assert_eq!(parse_protocol_list("bfs,all").unwrap().len(), PROTOCOLS.len());
        assert_eq!(parse_protocol_list("bfs,all").unwrap()[0], "bfs");
    }

    #[test]
    fn topology_compatibility_is_registry_driven() {
        let ring = generators::ring(6).unwrap();
        let path = generators::path(5).unwrap();
        let d_ring = DistanceMatrix::new(&ring).diameter();
        let d_path = DistanceMatrix::new(&path).diameter();
        assert!(check_topology("dijkstra", &ring, d_ring).unwrap().is_ok());
        assert!(check_topology("dijkstra", &path, d_path).unwrap().is_err());
        assert!(check_topology("dijkstra4", &path, d_path).unwrap().is_ok());
        assert!(check_topology("dijkstra4", &ring, d_ring).unwrap().is_err());
        for name in ["ssme", "bfs", "matching"] {
            assert!(check_topology(name, &ring, d_ring).unwrap().is_ok(), "{name} on ring");
            assert!(check_topology(name, &path, d_path).unwrap().is_ok(), "{name} on path");
        }
        assert!(check_topology("warp", &ring, d_ring).is_err());
    }
}
