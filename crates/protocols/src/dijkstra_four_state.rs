//! Dijkstra's four-state self-stabilizing mutual exclusion on a line (the
//! second solution of the 1974 note).
//!
//! Machines `0 .. n-1` form a bidirectional line. Each machine holds a
//! boolean pair `(x, up)`; the bottom machine's `up` is frozen to `true`
//! and the top machine's to `false` (so they effectively use two states —
//! hence "four-state" for the normal machines):
//!
//! ```text
//! bottom :: x = x_R ∧ ¬up_R          → x := ¬x
//! top    :: x ≠ x_L                  → x := ¬x
//! normal :: x ≠ x_L                  → x := ¬x ; up := true
//! normal :: x = x_R ∧ up ∧ ¬up_R    → up := false
//! ```
//!
//! Like the three-state solution, a normal machine may hold both guards at
//! once; this implementation prefers the first rule and exhaustively
//! verifies that self-stabilization survives the arbitration.

use rand::rngs::StdRng;
use rand::Rng;
use specstab_kernel::batch::PackedProtocol;
use specstab_kernel::config::Configuration;
use specstab_kernel::protocol::{Protocol, RuleId, RuleInfo, View};
use specstab_kernel::spec::Specification;
use specstab_topology::{Graph, VertexId};
use std::error::Error;
use std::fmt;

/// Rule indices.
pub mod rules {
    use specstab_kernel::protocol::RuleId;

    /// Bottom machine's toggle.
    pub const BOTTOM: RuleId = RuleId::new(0);
    /// Top machine's toggle.
    pub const TOP: RuleId = RuleId::new(1);
    /// Normal machine's downward-token rule (`x ≠ x_L`).
    pub const FLIP: RuleId = RuleId::new(2);
    /// Normal machine's upward-token rule (`up := false`).
    pub const LOWER: RuleId = RuleId::new(3);
}

/// Per-machine state: the `(x, up)` boolean pair.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct FourState {
    /// The `x` bit.
    pub x: bool,
    /// The `up` bit (frozen for bottom/top).
    pub up: bool,
}

impl fmt::Display for FourState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", u8::from(self.x), if self.up { "↑" } else { "↓" })
    }
}

/// Errors building a [`DijkstraFourState`].
#[derive(Clone, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum FourStateError {
    /// The communication graph is not a line (path) with `n >= 2`.
    NotALine,
}

impl fmt::Display for FourStateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Dijkstra's four-state protocol requires a line of n >= 2 machines")
    }
}

impl Error for FourStateError {}

/// Dijkstra's four-state protocol instance.
#[derive(Clone, Debug)]
pub struct DijkstraFourState {
    n: usize,
}

impl DijkstraFourState {
    /// Creates the protocol for a line graph (`path(n)`, `n >= 2`).
    ///
    /// # Errors
    ///
    /// [`FourStateError::NotALine`] otherwise.
    pub fn new(graph: &Graph) -> Result<Self, FourStateError> {
        let n = graph.n();
        if n < 2 || graph.m() != n - 1 {
            return Err(FourStateError::NotALine);
        }
        for i in 0..n - 1 {
            if !graph.contains_edge(VertexId::new(i), VertexId::new(i + 1)) {
                return Err(FourStateError::NotALine);
            }
        }
        Ok(Self { n })
    }

    /// Number of machines.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Normalizes a state for machine `i` (freezes the special machines'
    /// `up` bit).
    #[must_use]
    pub fn canonical(&self, i: usize, mut s: FourState) -> FourState {
        if i == 0 {
            s.up = true;
        } else if i == self.n - 1 {
            s.up = false;
        }
        s
    }

    /// The guards enabled at `v` (Dijkstra's "privileges").
    #[must_use]
    pub fn privileges(&self, v: VertexId, config: &Configuration<FourState>) -> Vec<RuleId> {
        let i = v.index();
        let s = self.canonical(i, *config.get(v));
        let mut out = Vec::new();
        if i == 0 {
            let r = self.canonical(1, *config.get(VertexId::new(1)));
            if s.x == r.x && !r.up {
                out.push(rules::BOTTOM);
            }
        } else if i == self.n - 1 {
            let l = self.canonical(i - 1, *config.get(VertexId::new(i - 1)));
            if s.x != l.x {
                out.push(rules::TOP);
            }
        } else {
            let l = self.canonical(i - 1, *config.get(VertexId::new(i - 1)));
            let r = self.canonical(i + 1, *config.get(VertexId::new(i + 1)));
            if s.x != l.x {
                out.push(rules::FLIP);
            }
            if s.x == r.x && s.up && !r.up {
                out.push(rules::LOWER);
            }
        }
        out
    }

    /// Total privilege count of the configuration.
    #[must_use]
    pub fn privilege_count(&self, config: &Configuration<FourState>) -> usize {
        (0..self.n).map(|i| self.privileges(VertexId::new(i), config).len()).sum()
    }
}

impl Protocol for DijkstraFourState {
    type State = FourState;

    fn name(&self) -> String {
        format!("dijkstra-4state[n={}]", self.n)
    }

    fn rules(&self) -> Vec<RuleInfo> {
        vec![
            RuleInfo::new("BOTTOM"),
            RuleInfo::new("TOP"),
            RuleInfo::new("FLIP"),
            RuleInfo::new("LOWER"),
        ]
    }

    fn enabled_rule(&self, view: &View<'_, FourState>) -> Option<RuleId> {
        let i = view.vertex().index();
        let s = self.canonical(i, *view.state());
        if i == 0 {
            let r = self.canonical(1, *view.state_of(VertexId::new(1)));
            (s.x == r.x && !r.up).then_some(rules::BOTTOM)
        } else if i == self.n - 1 {
            let l = self.canonical(i - 1, *view.state_of(VertexId::new(i - 1)));
            (s.x != l.x).then_some(rules::TOP)
        } else {
            let l = self.canonical(i - 1, *view.state_of(VertexId::new(i - 1)));
            let r = self.canonical(i + 1, *view.state_of(VertexId::new(i + 1)));
            if s.x != l.x {
                Some(rules::FLIP)
            } else if s.x == r.x && s.up && !r.up {
                Some(rules::LOWER)
            } else {
                None
            }
        }
    }

    fn apply(&self, view: &View<'_, FourState>, rule: RuleId) -> FourState {
        let i = view.vertex().index();
        let mut s = self.canonical(i, *view.state());
        match rule {
            rules::BOTTOM | rules::TOP => s.x = !s.x,
            rules::FLIP => {
                s.x = !s.x;
                s.up = true;
            }
            rules::LOWER => s.up = false,
            other => panic!("four-state protocol has no rule {other}"),
        }
        self.canonical(i, s)
    }

    fn random_state(&self, v: VertexId, rng: &mut StdRng) -> FourState {
        self.canonical(v.index(), FourState { x: rng.gen_bool(0.5), up: rng.gen_bool(0.5) })
    }

    fn state_domain(&self, v: VertexId) -> Option<Vec<FourState>> {
        let i = v.index();
        let mut out = Vec::new();
        for x in [false, true] {
            for up in [false, true] {
                let s = self.canonical(i, FourState { x, up });
                if !out.contains(&s) {
                    out.push(s);
                }
            }
        }
        Some(out)
    }
}

/// Lane-packed four-state stepping: the `(x, up)` pair bit-packs into a
/// `u8` lane (bit 0 = `x`, bit 1 = `up`), 64 replicas per cache line.
/// Pack/unpack preserve the raw bits; the freezing of the special
/// machines' `up` bit happens on *read* inside the step (exactly like
/// the scalar [`DijkstraFourState::canonical`]-on-read semantics), so a
/// never-moving machine keeps its original possibly-non-canonical state
/// in the final configuration — bit-for-bit what the scalar engine does.
/// All three row loops are branchless bit ops over the lane axis.
impl PackedProtocol for DijkstraFourState {
    type Lane = u8;
    type LaneScratch = ();

    fn pack(&self, state: &FourState) -> u8 {
        u8::from(state.x) | (u8::from(state.up) << 1)
    }

    fn unpack(&self, lane: u8) -> FourState {
        FourState { x: lane & 1 != 0, up: lane & 2 != 0 }
    }

    fn step_lanes(
        &self,
        graph: &Graph,
        lanes: usize,
        soa: &[u8],
        next: &mut [u8],
        fired: &mut [bool],
        scratch: &mut (),
    ) {
        for v in 0..self.n {
            self.eval_vertex_lanes(graph, v, lanes, soa, next, fired, scratch);
        }
    }

    fn eval_vertex_lanes(
        &self,
        _graph: &Graph,
        v: usize,
        lanes: usize,
        soa: &[u8],
        next: &mut [u8],
        fired: &mut [bool],
        _scratch: &mut (),
    ) {
        let n = self.n;
        // canonical(i, s) as an (or, and) bit-mask pair: bottom forces
        // `up` set, top forces it clear, interior is the identity.
        let canon = |i: usize| -> (u8, u8) {
            if i == 0 {
                (0b10, 0b11)
            } else if i == n - 1 {
                (0b00, 0b01)
            } else {
                (0b00, 0b11)
            }
        };
        let base = v * lanes;
        let rv = &soa[base..base + lanes];
        let fired_row = &mut fired[base..base + lanes];
        let next_row = &mut next[base..base + lanes];
        // Zip iteration instead of indexing: a runtime `lanes` keeps
        // per-element bounds checks alive under indexed access, which
        // blocks autovectorization of the bit ops.
        if v == 0 {
            // bottom :: x = x_R ∧ ¬up_R → x := ¬x (up stays frozen true)
            let (ro, ra) = canon(1);
            let row_r = &soa[lanes..2 * lanes];
            for (((f, nx), &s), &rr) in
                fired_row.iter_mut().zip(next_row.iter_mut()).zip(rv).zip(row_r)
            {
                let r = (rr | ro) & ra;
                *f = (s ^ r) & 1 == 0 && r & 2 == 0;
                *nx = ((s & 1) ^ 1) | 0b10;
            }
        } else if v == n - 1 {
            // top :: x ≠ x_L → x := ¬x (up stays frozen false)
            let row_l = &soa[(v - 1) * lanes..v * lanes];
            for (((f, nx), &s), &lv) in
                fired_row.iter_mut().zip(next_row.iter_mut()).zip(rv).zip(row_l)
            {
                *f = (s ^ lv) & 1 != 0;
                *nx = (s & 1) ^ 1;
            }
        } else {
            // normal: FLIP (x ≠ x_L → x := ¬x, up := true) wins over
            // LOWER (x = x_R ∧ up ∧ ¬up_R → up := false), like the
            // scalar arbitration.
            let (lo, la) = canon(v - 1);
            let (ro, ra) = canon(v + 1);
            let row_l = &soa[(v - 1) * lanes..v * lanes];
            let row_r = &soa[(v + 1) * lanes..(v + 2) * lanes];
            for ((((f, nx), &s), &ll), &rr) in
                fired_row.iter_mut().zip(next_row.iter_mut()).zip(rv).zip(row_l).zip(row_r)
            {
                let lv = (ll | lo) & la;
                let r = (rr | ro) & ra;
                let flip = (s ^ lv) & 1 != 0;
                let lower = (s ^ r) & 1 == 0 && s & 2 != 0 && r & 2 == 0;
                *f = flip | lower;
                *nx = if flip { ((s & 1) ^ 1) | 0b10 } else { s & 1 };
            }
        }
    }
}

/// `specME` for the four-state line: safety = at most one privilege,
/// legitimacy = exactly one.
#[derive(Clone, Debug)]
pub struct FourStateSpec {
    protocol: DijkstraFourState,
}

impl FourStateSpec {
    /// Creates the specification.
    #[must_use]
    pub fn new(protocol: DijkstraFourState) -> Self {
        Self { protocol }
    }
}

impl Specification<FourState> for FourStateSpec {
    fn name(&self) -> String {
        "specME(dijkstra-4state)".into()
    }
    fn is_safe(&self, config: &Configuration<FourState>, _graph: &Graph) -> bool {
        self.protocol.privilege_count(config) <= 1
    }
    fn is_legitimate(&self, config: &Configuration<FourState>, _graph: &Graph) -> bool {
        self.protocol.privilege_count(config) == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use specstab_kernel::daemon::{CentralDaemon, CentralStrategy};
    use specstab_kernel::engine::Simulator;
    use specstab_kernel::measure::measure_with_early_stop;
    use specstab_kernel::protocol::random_configuration;
    use specstab_kernel::search::{
        build_config_graph, enumerate_all_configurations, worst_steps_to, SearchDaemon,
    };
    use specstab_topology::generators;

    fn line(n: usize) -> (Graph, DijkstraFourState) {
        let g = generators::path(n).unwrap();
        let p = DijkstraFourState::new(&g).unwrap();
        (g, p)
    }

    #[test]
    fn rejects_non_lines() {
        let ring = generators::ring(4).unwrap();
        assert!(DijkstraFourState::new(&ring).is_err());
    }

    #[test]
    fn special_machines_have_two_states() {
        let (_, p) = line(4);
        assert_eq!(p.state_domain(VertexId::new(0)).unwrap().len(), 2);
        assert_eq!(p.state_domain(VertexId::new(3)).unwrap().len(), 2);
        assert_eq!(p.state_domain(VertexId::new(1)).unwrap().len(), 4);
    }

    #[test]
    fn exact_self_stabilization_under_central_daemon() {
        // Exhaustive over the whole state space for n = 3..6 — correctness
        // oracle for the transcribed rules.
        for n in [3usize, 4, 5, 6] {
            let (g, p) = line(n);
            let spec = FourStateSpec::new(p.clone());
            let all = enumerate_all_configurations(&g, &p, 1_000_000).unwrap();
            let cg = build_config_graph(&g, &p, &all, SearchDaemon::Central, 2_000_000).unwrap();
            let worst = worst_steps_to(&cg, |c| spec.is_legitimate(c, &g));
            assert!(worst.is_ok(), "n={n}: {:?}", worst.err());
        }
    }

    #[test]
    fn exact_self_stabilization_under_distributed_daemon() {
        let (g, p) = line(4);
        let spec = FourStateSpec::new(p.clone());
        let all = enumerate_all_configurations(&g, &p, 1_000_000).unwrap();
        let cg = build_config_graph(
            &g,
            &p,
            &all,
            SearchDaemon::Distributed { max_enabled: 4 },
            5_000_000,
        )
        .unwrap();
        assert!(worst_steps_to(&cg, |c| spec.is_legitimate(c, &g)).is_ok());
    }

    #[test]
    fn legitimacy_is_closed_exhaustively() {
        let (g, p) = line(5);
        let spec = FourStateSpec::new(p.clone());
        let sim = Simulator::new(&g, &p);
        let all = enumerate_all_configurations(&g, &p, 1_000_000).unwrap();
        for c in &all {
            if !spec.is_legitimate(c, &g) {
                continue;
            }
            for &v in &sim.enabled_vertices(c) {
                let (next, _) = sim.apply_action(c, &[v]);
                assert!(spec.is_legitimate(&next, &g), "closure broken at {:?}", c.states());
            }
        }
    }

    #[test]
    fn no_terminal_configurations_exist() {
        let (g, p) = line(5);
        let sim = Simulator::new(&g, &p);
        let all = enumerate_all_configurations(&g, &p, 1_000_000).unwrap();
        for c in &all {
            assert!(!sim.enabled_vertices(c).is_empty(), "deadlock at {:?}", c.states());
        }
    }

    #[test]
    fn converges_from_random_configurations() {
        let (g, p) = line(10);
        let spec = FourStateSpec::new(p.clone());
        for seed in 0..10 {
            let mut rng = StdRng::seed_from_u64(seed);
            let init = random_configuration(&g, &p, &mut rng);
            let mut d = CentralDaemon::new(CentralStrategy::Random(seed));
            let (s, l, st) = (spec.clone(), spec.clone(), spec.clone());
            let r = measure_with_early_stop(
                &g,
                &p,
                &mut d,
                init,
                Box::new(move |c, g| s.is_safe(c, g)),
                Box::new(move |c, g| l.is_legitimate(c, g)),
                Box::new(move |c, g| st.is_legitimate(c, g)),
                1_000_000,
                5,
            );
            assert!(r.ended_legitimate, "seed {seed}");
        }
    }

    #[test]
    fn token_shuttles_between_ends() {
        let (g, p) = line(5);
        let sim = Simulator::new(&g, &p);
        let mut config =
            Configuration::from_fn(5, |v| p.canonical(v.index(), FourState::default()));
        let (mut bottom, mut top) = (0, 0);
        for _ in 0..60 {
            let enabled = sim.enabled_vertices(&config);
            assert!(!enabled.is_empty());
            if enabled.contains(&VertexId::new(0)) {
                bottom += 1;
            }
            if enabled.contains(&VertexId::new(4)) {
                top += 1;
            }
            config = sim.apply_action(&config, &enabled[..1]).0;
        }
        assert!(bottom > 0 && top > 0);
    }

    #[test]
    fn packed_runs_match_scalar_lane_for_lane_under_both_daemons() {
        use specstab_kernel::batch::{run_batch_with, BatchDaemon};
        use specstab_kernel::daemon::SynchronousDaemon;
        use specstab_kernel::engine::RunLimits;
        let (g, p) = line(8);
        // Raw (non-canonical) initial states on the special machines are
        // part of the contract: canonicalization happens on read.
        let mut inits: Vec<_> = (0..8)
            .map(|s| {
                let mut rng = StdRng::seed_from_u64(6_000 + s);
                random_configuration(&g, &p, &mut rng)
            })
            .collect();
        inits.push(Configuration::from_fn(8, |v| FourState { x: v.index() % 2 == 0, up: true }));
        for daemon in [BatchDaemon::Sync, BatchDaemon::CentralRr] {
            let lanes = run_batch_with(&g, &p, daemon, &[], &inits, 400);
            for (lane, init) in lanes.iter().zip(&inits) {
                let sim = Simulator::new(&g, &p);
                let limits = RunLimits::with_max_steps(400);
                let scalar = if daemon == BatchDaemon::Sync {
                    let mut d = SynchronousDaemon::new();
                    sim.run(init.clone(), &mut d, limits, &mut [])
                } else {
                    let mut d = CentralDaemon::new(CentralStrategy::RoundRobin);
                    sim.run(init.clone(), &mut d, limits, &mut [])
                };
                assert_eq!(lane.steps, scalar.steps);
                assert_eq!(lane.moves, scalar.moves);
                assert_eq!(lane.stop, scalar.stop);
                assert_eq!(lane.final_config, scalar.final_config);
            }
        }
    }

    #[test]
    fn display_renders_state() {
        assert_eq!(FourState { x: true, up: false }.to_string(), "1↓");
        assert_eq!(FourState { x: false, up: true }.to_string(), "0↑");
    }
}
