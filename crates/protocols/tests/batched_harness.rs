//! The `SsmeHarness` batched path against the scalar measurement stack:
//! `batched_measure` must hand back, per lane, exactly the
//! `StabilizationReport` the campaign executor's scalar cell runner
//! produces with the harness's own predicates and early-stop margin.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use specstab_kernel::config::Configuration;
use specstab_kernel::daemon::SynchronousDaemon;
use specstab_kernel::engine::Simulator;
use specstab_kernel::harness::ProtocolHarness;
use specstab_kernel::measure::MeasurementContext;
use specstab_kernel::protocol::random_configuration;
use specstab_protocols::harness::SsmeHarness;
use specstab_topology::metrics::DistanceMatrix;
use specstab_topology::{generators, Graph};
use specstab_unison::clock::ClockValue;

fn graph_for(case: u8) -> Graph {
    match case % 3 {
        0 => generators::ring(8).unwrap(),
        1 => generators::torus(3, 4).unwrap(),
        _ => generators::path(6).unwrap(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Harness batched measurement ≡ harness scalar measurement, lane for
    /// lane, K ∈ {1, 3, 64, 100}.
    #[test]
    fn ssme_batched_measure_matches_scalar(
        case in 0u8..3,
        seed in 0u64..1_000,
        k_pick in 0usize..4,
    ) {
        let k = [1usize, 3, 64, 100][k_pick];
        let graph = graph_for(case);
        let diam = DistanceMatrix::new(&graph).diameter();
        let harness = SsmeHarness::build(&graph, diam).unwrap();
        prop_assert!(harness.supports_batch());
        let inits: Vec<Configuration<ClockValue>> = (0..k)
            .map(|l| {
                let mut rng = StdRng::seed_from_u64(seed ^ (0x55ED * l as u64 + 1));
                random_configuration(&graph, harness.protocol(), &mut rng)
            })
            .collect();
        let measured = harness
            .batched_measure(&graph, inits.clone(), 5_000, 3)
            .expect("ssme supports the batched path");
        prop_assert_eq!(measured.len(), k);
        for ((report, _), init) in measured.iter().zip(&inits) {
            let sim = Simulator::new(&graph, harness.protocol());
            let scalar =
                MeasurementContext::new(harness.safety_predicate(), harness.legitimacy_predicate())
                    .with_early_stop(harness.legitimacy_predicate(), 3)
                    .run(&sim, &mut SynchronousDaemon::new(), init.clone(), 5_000);
            prop_assert_eq!(report.steps_run, scalar.steps_run);
            prop_assert_eq!(report.moves, scalar.moves);
            prop_assert_eq!(report.stop, scalar.stop);
            prop_assert_eq!(report.last_violation, scalar.last_violation);
            prop_assert_eq!(report.violation_count, scalar.violation_count);
            prop_assert_eq!(report.stabilization_steps, scalar.stabilization_steps);
            prop_assert_eq!(report.first_legitimate, scalar.first_legitimate);
            prop_assert_eq!(report.legitimacy_entry, scalar.legitimacy_entry);
            prop_assert_eq!(report.ended_legitimate, scalar.ended_legitimate);
        }
    }
}
