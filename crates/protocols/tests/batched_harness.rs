//! The batchable harnesses against the scalar measurement stack:
//! `batched_measure` must hand back, per lane, exactly the
//! `StabilizationReport` the campaign executor's scalar cell runner
//! produces with the harness's own predicates and early-stop margin —
//! under every batchable daemon (synchronous, central round-robin,
//! central-rand and random-distributed, the random modes driven by
//! per-lane RNG streams seeded like the scalar daemons), for every lane
//! count the executor chunks into (K ∈ {1, 3, 64, 100}).

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use specstab_kernel::batch::BatchDaemon;
use specstab_kernel::config::Configuration;
use specstab_kernel::daemon::{
    CentralDaemon, CentralStrategy, RandomDistributedDaemon, SynchronousDaemon,
};
use specstab_kernel::engine::Simulator;
use specstab_kernel::harness::ProtocolHarness;
use specstab_kernel::measure::MeasurementContext;
use specstab_kernel::protocol::random_configuration;
use specstab_protocols::harness::{
    Dijkstra3Harness, Dijkstra4Harness, DijkstraHarness, SsmeHarness,
};
use specstab_topology::metrics::DistanceMatrix;
use specstab_topology::{generators, Graph};

const LANE_COUNTS: [usize; 4] = [1, 3, 64, 100];

fn graph_for(case: u8) -> Graph {
    match case % 3 {
        0 => generators::ring(8).unwrap(),
        1 => generators::torus(3, 4).unwrap(),
        _ => generators::path(6).unwrap(),
    }
}

/// Lane-for-lane equivalence of `batched_measure` against the scalar
/// measurement stack, for one harness/daemon/lane-count combination.
/// Lane `l`'s RNG seed doubles as scalar replica `l`'s daemon seed, so
/// the random modes must replay the exact scalar pick sequences.
macro_rules! check_batched {
    ($harness:expr, $graph:expr, $daemon:expr, $k:expr, $seed:expr, $max_steps:expr) => {{
        let harness = &$harness;
        let graph = &$graph;
        let daemon: BatchDaemon = $daemon;
        let inits: Vec<Configuration<_>> = (0..$k)
            .map(|l| {
                let mut rng = StdRng::seed_from_u64($seed ^ (0x55ED * l as u64 + 1));
                random_configuration(graph, harness.protocol(), &mut rng)
            })
            .collect();
        let lane_seeds: Vec<u64> = (0..$k).map(|l| $seed ^ (0xDAE1 * l as u64 + 9)).collect();
        let seeds_arg: &[u64] = if daemon.needs_lane_seeds() { &lane_seeds } else { &[] };
        let measured = harness
            .batched_measure(graph, daemon, seeds_arg, inits.clone(), $max_steps, 3)
            .expect("harness supports the batched path");
        prop_assert_eq!(measured.len(), $k);
        for (l, ((report, _), init)) in measured.iter().zip(&inits).enumerate() {
            let sim = Simulator::new(graph, harness.protocol());
            let ctx =
                MeasurementContext::new(harness.safety_predicate(), harness.legitimacy_predicate())
                    .with_early_stop(harness.legitimacy_predicate(), 3);
            let scalar = match daemon {
                BatchDaemon::Sync => {
                    ctx.run(&sim, &mut SynchronousDaemon::new(), init.clone(), $max_steps)
                }
                BatchDaemon::CentralRr => ctx.run(
                    &sim,
                    &mut CentralDaemon::new(CentralStrategy::RoundRobin),
                    init.clone(),
                    $max_steps,
                ),
                BatchDaemon::CentralRand => ctx.run(
                    &sim,
                    &mut CentralDaemon::new(CentralStrategy::Random(lane_seeds[l])),
                    init.clone(),
                    $max_steps,
                ),
                BatchDaemon::RandomDistributed { p } => ctx.run(
                    &sim,
                    &mut RandomDistributedDaemon::new(p, lane_seeds[l]),
                    init.clone(),
                    $max_steps,
                ),
            };
            prop_assert_eq!(report.steps_run, scalar.steps_run);
            prop_assert_eq!(report.moves, scalar.moves);
            prop_assert_eq!(report.stop, scalar.stop);
            prop_assert_eq!(report.last_violation, scalar.last_violation);
            prop_assert_eq!(report.violation_count, scalar.violation_count);
            prop_assert_eq!(report.stabilization_steps, scalar.stabilization_steps);
            prop_assert_eq!(report.first_legitimate, scalar.first_legitimate);
            prop_assert_eq!(report.legitimacy_entry, scalar.legitimacy_entry);
            prop_assert_eq!(report.ended_legitimate, scalar.ended_legitimate);
        }
    }};
}

fn daemon_pick(d: u8) -> BatchDaemon {
    match d % 4 {
        0 => BatchDaemon::Sync,
        1 => BatchDaemon::CentralRr,
        2 => BatchDaemon::CentralRand,
        _ => BatchDaemon::RandomDistributed { p: 0.5 },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Harness batched measurement ≡ harness scalar measurement, lane for
    /// lane, K ∈ {1, 3, 64, 100}, all four batchable daemons.
    #[test]
    fn ssme_batched_measure_matches_scalar(
        case in 0u8..3,
        seed in 0u64..1_000,
        k_pick in 0usize..4,
        d in 0u8..4,
    ) {
        let k = LANE_COUNTS[k_pick];
        let graph = graph_for(case);
        let diam = DistanceMatrix::new(&graph).diameter();
        let harness = SsmeHarness::build(&graph, diam).unwrap();
        prop_assert!(harness.supports_batch());
        check_batched!(harness, graph, daemon_pick(d), k, seed, 5_000);
    }

    #[test]
    fn dijkstra_batched_measure_matches_scalar(
        seed in 0u64..1_000,
        k_pick in 0usize..4,
        d in 0u8..4,
    ) {
        let k = LANE_COUNTS[k_pick];
        let graph = generators::ring(8).unwrap();
        let harness = DijkstraHarness::build(&graph, 4).unwrap();
        prop_assert!(harness.supports_batch());
        check_batched!(harness, graph, daemon_pick(d), k, seed, 2_000);
    }

    #[test]
    fn dijkstra3_batched_measure_matches_scalar(
        seed in 0u64..1_000,
        k_pick in 0usize..4,
        d in 0u8..4,
    ) {
        let k = LANE_COUNTS[k_pick];
        let graph = generators::ring(9).unwrap();
        let harness = Dijkstra3Harness::build(&graph, 4).unwrap();
        prop_assert!(harness.supports_batch());
        check_batched!(harness, graph, daemon_pick(d), k, seed, 2_000);
    }

    #[test]
    fn dijkstra4_batched_measure_matches_scalar(
        seed in 0u64..1_000,
        k_pick in 0usize..4,
        d in 0u8..4,
    ) {
        let k = LANE_COUNTS[k_pick];
        let graph = generators::path(7).unwrap();
        let harness = Dijkstra4Harness::build(&graph, 6).unwrap();
        prop_assert!(harness.supports_batch());
        check_batched!(harness, graph, daemon_pick(d), k, seed, 2_000);
    }
}

/// The K ≤ 256 instance gate: an oversized K-state ring refuses the
/// packed path and reports `supports_batch() == false`, so the executor
/// counts it as a scalar fallback rather than mis-packing counters.
#[test]
fn oversized_k_state_ring_refuses_to_batch() {
    let graph = generators::ring(300).unwrap();
    let harness = DijkstraHarness::build(&graph, 150).unwrap();
    assert!(!harness.supports_batch(), "K = 300 > 256 cannot pack into u8 lanes");
    let mut rng = StdRng::seed_from_u64(7);
    let init = random_configuration(&graph, harness.protocol(), &mut rng);
    assert!(harness.batched_measure(&graph, BatchDaemon::Sync, &[], vec![init], 10, 0).is_none());
}
