//! Property tests for the harness legitimate-configuration constructors:
//! for every registered protocol, on every compatible sampled topology,
//! the constructed configuration satisfies the legitimacy predicate and
//! the legitimate set is closed under one step for **every** daemon
//! choice (all nonempty activation subsets — exhaustively enumerated by
//! `ProtocolHarness::closure_self_check` when the enabled set is small,
//! singletons + the synchronous step otherwise).

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use specstab_kernel::harness::ProtocolHarness;
use specstab_protocols::harness::{
    BfsHarness, Dijkstra3Harness, Dijkstra4Harness, DijkstraHarness, MatchingHarness, SsmeHarness,
};
use specstab_topology::metrics::DistanceMatrix;
use specstab_topology::{generators, Graph};

/// Samples a connected general-topology graph (for protocols that run
/// anywhere).
fn any_graph(pick: u8, n: usize, seed: u64) -> Graph {
    match pick {
        0 => generators::ring(n.max(3)).unwrap(),
        1 => generators::path(n.max(2)).unwrap(),
        2 => generators::random_tree(n.max(2), seed).unwrap(),
        3 => generators::grid(2, n.max(2).div_ceil(2)).unwrap(),
        _ => generators::complete(n.clamp(2, 7)).unwrap(),
    }
}

/// Builds the harness and runs the full legitimacy + closure contract.
fn check<H: ProtocolHarness>(g: &Graph, seed: u64) {
    let diam = DistanceMatrix::new(g).diameter();
    let h = H::build(g, diam).expect("topology must be compatible in this test");
    let mut rng = StdRng::seed_from_u64(seed);
    let legit = h.legitimacy_predicate();
    let safe = h.safety_predicate();
    let c = h.legitimate_configuration(g, &mut rng).expect("constructor succeeds");
    assert!(legit(&c, g), "{}: constructed configuration must be legitimate", H::NAME);
    assert!(safe(&c, g), "{}: legitimacy must imply safety", H::NAME);
    let mut rng = StdRng::seed_from_u64(seed);
    h.closure_self_check(g, &mut rng, 3)
        .unwrap_or_else(|e| panic!("{}: closure self-check failed: {e}", H::NAME));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn ssme_legitimate_set_is_closed(pick in 0u8..5, n in 3usize..12, seed in any::<u64>()) {
        check::<SsmeHarness>(&any_graph(pick, n, seed), seed);
    }

    #[test]
    fn dijkstra_legitimate_set_is_closed(n in 3usize..12, seed in any::<u64>()) {
        check::<DijkstraHarness>(&generators::ring(n).unwrap(), seed);
    }

    #[test]
    fn dijkstra3_legitimate_set_is_closed(n in 3usize..12, seed in any::<u64>()) {
        check::<Dijkstra3Harness>(&generators::ring(n).unwrap(), seed);
    }

    #[test]
    fn dijkstra4_legitimate_set_is_closed(n in 2usize..12, seed in any::<u64>()) {
        check::<Dijkstra4Harness>(&generators::path(n).unwrap(), seed);
    }

    #[test]
    fn bfs_legitimate_set_is_closed(pick in 0u8..5, n in 2usize..12, seed in any::<u64>()) {
        check::<BfsHarness>(&any_graph(pick, n, seed), seed);
    }

    #[test]
    fn matching_legitimate_set_is_closed(pick in 0u8..5, n in 2usize..12, seed in any::<u64>()) {
        check::<MatchingHarness>(&any_graph(pick, n, seed), seed);
    }
}
