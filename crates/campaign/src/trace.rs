//! Bridges campaign execution results into the `specstab-events/v1`
//! stream: the mapping from [`CellResult`]/[`GroupSummary`] to event
//! payloads, shared by every `campaign` subcommand that takes `--trace`.
//!
//! Events are emitted **post-hoc** in canonical matrix order (cells of a
//! group, then the group), not in completion order — the executor's
//! workers finish out of order, and a canonical-order trace is the useful
//! one for downstream tooling. Timing still reflects reality: each cell
//! event carries the wall clock its run actually took.

use crate::executor::{CellResult, GroupSummary};
use specstab_telemetry::event::{CellEvent, CellOutcomeEvent};
use specstab_telemetry::{CounterSnapshot, Event, EventKind, TraceWriter};

/// The event payload describing one executed cell.
#[must_use]
pub fn cell_event(cr: &CellResult) -> EventKind {
    EventKind::Cell(CellEvent {
        topology: cr.cell.topology.clone(),
        protocol: cr.cell.protocol.clone(),
        daemon: cr.cell.daemon.clone(),
        init: cr.cell.init.to_string(),
        seed_index: cr.cell.seed_index,
        wall_us: cr.wall_nanos / 1_000,
        moves: cr.counters.moves,
        outcome: match &cr.outcome {
            Ok(o) => Ok(CellOutcomeEvent {
                steps_run: o.steps_run as u64,
                stabilization_steps: o.stabilization_steps as u64,
                converged: o.ended_legitimate,
            }),
            Err(e) => Err(e.clone()),
        },
    })
}

/// Emits cell and group events for an executed cell slice in canonical
/// order: every cell of a scenario group, then the group's summary (with
/// the group wall clock summed over its cells). `groups` is the matching
/// aggregate list (a full result's or a shard partial's).
///
/// # Errors
///
/// Returns the first trace-write failure.
pub fn emit_result_events(
    w: &mut TraceWriter,
    cells: &[CellResult],
    groups: &[GroupSummary],
) -> Result<(), String> {
    let mut i = 0;
    while i < cells.len() {
        let key = cells[i].cell.group_key();
        let mut wall_us = 0u64;
        while i < cells.len() && cells[i].cell.group_key() == key {
            wall_us += cells[i].wall_nanos / 1_000;
            w.emit(cell_event(&cells[i]))?;
            i += 1;
        }
        if let Some(g) = groups.iter().find(|g| g.key == key) {
            w.emit(EventKind::Group {
                key,
                runs: g.runs,
                errors: g.errors,
                converged: g.converged,
                violations: g.violations,
                wall_us,
            })?;
        }
    }
    Ok(())
}

/// Field-wise sum of every `shard_end` counter snapshot in an event
/// sequence — how the orchestrator reconstructs campaign-wide engine
/// counters it never observed in its own process.
#[must_use]
pub fn sum_shard_counters(events: &[Event]) -> CounterSnapshot {
    let mut total = CounterSnapshot::default();
    for e in events {
        if let EventKind::ShardEnd { counters, .. } = &e.kind {
            total.steps += counters.steps;
            total.moves += counters.moves;
            total.guard_evals += counters.guard_evals;
            total.delta_bytes += counters.delta_bytes;
            total.scratch_reuses += counters.scratch_reuses;
            total.config_clones += counters.config_clones;
            total.batch_lanes += counters.batch_lanes;
            total.batch_lane_steps += counters.batch_lane_steps;
            total.batch_idle_lane_steps += counters.batch_idle_lane_steps;
            total.batch_scalar_fallbacks += counters.batch_scalar_fallbacks;
            total.batch_routed_sync_groups += counters.batch_routed_sync_groups;
            total.batch_routed_rr_groups += counters.batch_routed_rr_groups;
            total.batch_routed_rand_groups += counters.batch_routed_rand_groups;
            total.batch_routed_dist_groups += counters.batch_routed_dist_groups;
            total.batch_fallback_sync_groups += counters.batch_fallback_sync_groups;
            total.batch_fallback_rr_groups += counters.batch_fallback_rr_groups;
            total.batch_fallback_rand_groups += counters.batch_fallback_rand_groups;
            total.batch_fallback_dist_groups += counters.batch_fallback_dist_groups;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{run_campaign_sequential, CampaignConfig};
    use crate::matrix::ScenarioMatrix;
    use specstab_telemetry::{parse_ndjson, validate_events};

    #[test]
    fn result_events_follow_canonical_order_and_validate() {
        let matrix = ScenarioMatrix::builder()
            .topologies(["ring:6"])
            .protocols(["ssme"])
            .daemons(["sync", "central-rr"])
            .fault_bursts([1])
            .seeds(0..2)
            .build();
        let result = run_campaign_sequential(
            &matrix,
            &CampaignConfig { max_steps: 100_000, ..CampaignConfig::default() },
        );
        let path =
            std::env::temp_dir().join(format!("specstab-trace-emit-{}.ndjson", std::process::id()));
        let mut w = TraceWriter::create(&path, None, "run").expect("create");
        emit_result_events(&mut w, &result.cells, &result.groups).expect("emit");
        w.finish().expect("finish");
        let events = parse_ndjson(&std::fs::read_to_string(&path).expect("read")).expect("parse");
        let _ = std::fs::remove_file(&path);
        validate_events(&events).expect("valid stream");
        // header + one event per cell + one per group, in matrix order.
        assert_eq!(events.len(), 1 + result.cells.len() + result.groups.len());
        let tags: Vec<&str> = events.iter().map(|e| e.kind.tag()).collect();
        assert_eq!(
            tags,
            ["stream", "cell", "cell", "group", "cell", "cell", "group"],
            "cells of a group precede the group summary"
        );
        let EventKind::Cell(c) = &events[1].kind else { panic!("cell event") };
        assert_eq!(c.topology, "ring:6");
        assert!(c.outcome.is_ok());
    }

    #[test]
    fn shard_counters_sum_field_wise() {
        let snap = |k: u64| CounterSnapshot {
            steps: k,
            moves: 2 * k,
            guard_evals: 3 * k,
            delta_bytes: 4 * k,
            scratch_reuses: 5 * k,
            config_clones: 6 * k,
            batch_lanes: 7 * k,
            batch_lane_steps: 10 * k,
            batch_idle_lane_steps: 8 * k,
            batch_scalar_fallbacks: 9 * k,
            batch_routed_sync_groups: 11 * k,
            batch_routed_rr_groups: 12 * k,
            batch_routed_rand_groups: 15 * k,
            batch_routed_dist_groups: 16 * k,
            batch_fallback_sync_groups: 13 * k,
            batch_fallback_rr_groups: 14 * k,
            batch_fallback_rand_groups: 17 * k,
            batch_fallback_dist_groups: 18 * k,
        };
        let ev = |shard: u64, kind: EventKind| Event { shard: Some(shard), seq: 1, t_us: 0, kind };
        let events = vec![
            ev(0, EventKind::ShardEnd { cells: 4, wall_us: 1, counters: snap(1) }),
            ev(1, EventKind::MergeStart { partials: 2 }),
            ev(1, EventKind::ShardEnd { cells: 4, wall_us: 1, counters: snap(10) }),
        ];
        assert_eq!(sum_shard_counters(&events), snap(11));
    }
}
