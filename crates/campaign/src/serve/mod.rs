//! `specstab-serve` — the networked campaign transport: an HTTP/1.1 shard
//! coordinator with deadline-tracked leases, elastic pull-workers, and
//! incremental spool-backed merging.
//!
//! PR 5 made a campaign a text-describable [`CampaignPlan`] plus
//! order-independent mergeable partials; this module is the transport that
//! was missing between them. The model is deliberately minimal:
//!
//! * [`coordinator::Coordinator`] (`campaign serve`) owns the plan, leases
//!   shards to whoever asks, re-dispatches leases that expire (straggler
//!   tolerance), validates and folds uploaded partials incrementally via
//!   [`MergeAccumulator`](crate::merge::MergeAccumulator), and persists
//!   every accepted partial to a spool directory — *a partial on disk is a
//!   checkpoint*, so a killed coordinator resumes where it stopped;
//! * [`worker::run_worker`] (`campaign work`) is the pull loop: fetch the
//!   plan, lease, execute via [`execute_shard`](crate::shard::execute_shard),
//!   upload with bounded-jittered retries, renew long leases from a
//!   sidecar thread, exit when the coordinator says done (or vanishes);
//! * [`http`] is a hand-rolled, dependency-free HTTP/1.1 framing layer in
//!   the same spirit as the workspace's hand-rolled JSON reader;
//! * [`wire`] defines the JSON payloads (lease grant/wait/done, upload
//!   accepted/duplicate/rejected, renew) both ends build and parse through
//!   the strict JSON layer.
//!
//! Every reordering, retry, duplication, or re-execution the network can
//! produce lands in the same [`MergeAccumulator`] the offline pipeline
//! uses, so the served campaign's final artifact stays **byte-identical**
//! to a single-process run of the same plan.
//!
//! [`CampaignPlan`]: crate::plan::CampaignPlan
//! [`MergeAccumulator`]: crate::merge::MergeAccumulator

pub mod coordinator;
pub mod http;
pub mod wire;
pub mod worker;

pub use coordinator::{Coordinator, ServeOptions};
pub use worker::{run_worker, WorkOptions, WorkerSummary};
