//! The serve coordinator: a single-threaded HTTP loop that owns the lease
//! table, the incremental merge, and the spool.
//!
//! Concurrency model: one nonblocking accept loop, blocking per-connection
//! I/O under socket timeouts. Lease and status exchanges are tiny and
//! uploads are bounded by the socket timeout, so a single thread both
//! keeps every state transition trivially race-free and guarantees the
//! trace's `(shard, seq)` order is the order things actually happened.
//!
//! Durability model: **a partial on disk is a checkpoint.** Every accepted
//! upload is written atomically to the spool directory before it is
//! acknowledged, and [`Coordinator::bind`] replays the spool before
//! listening — a coordinator killed at any point resumes without
//! re-running completed shards, because their partials re-enter the merge
//! exactly as if a worker had just uploaded them.

use super::http::{read_request, set_socket_timeouts, write_response, Request};
use super::wire::{parse_worker_body, renew_reply, Lease, LeaseReply, UploadReply};
use crate::artifact::{write_atomic, PartialArtifact};
use crate::executor::CampaignResult;
use crate::merge::{Accepted, MergeAccumulator};
use crate::plan::CampaignPlan;
use specstab_telemetry::{obj, EventKind, Json, ServeCounts, ServeHeartbeat, TraceWriter};
use std::net::{SocketAddr, TcpListener};
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Coordinator knobs beyond the plan and listen address.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Lease duration; a shard not uploaded or renewed within this window
    /// returns to the pending pool for the next puller.
    pub lease_ms: u64,
    /// Spool directory for accepted partials (created if missing; replayed
    /// on startup).
    pub spool: PathBuf,
    /// `--trace` destination for the coordinator's
    /// `specstab-events/v1` stream (lease lifecycle included).
    pub trace_path: Option<PathBuf>,
    /// Fault-injection knob for tests and drills: stop the accept loop
    /// (simulating a coordinator crash) after accepting this many fresh
    /// uploads over the network. Spool replays don't count.
    pub stop_after_uploads: Option<u64>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            lease_ms: 30_000,
            spool: PathBuf::from("serve_spool"),
            trace_path: None,
            stop_after_uploads: None,
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum ShardState {
    Pending,
    Leased { worker: String, lease_id: u64, deadline: Instant },
    Done,
}

#[derive(Debug, Default)]
struct WorkerTally {
    worker: String,
    shards_accepted: u64,
    cells_accepted: u64,
    moves: u64,
}

/// Campaign-wide batched-vs-scalar routing tally, accumulated from the
/// `x-specstab-batch-routing` header workers send with each upload
/// (`routed_sync,routed_rr,routed_rand,routed_dist,fallback_sync,`
/// `fallback_rr,fallback_rand,fallback_dist`). Older four-field headers
/// parse with the rand/dist slots zeroed; spooled partials replayed on
/// resume carry no header and contribute zeros.
#[derive(Debug, Default, Clone, Copy)]
struct BatchRoutingTally {
    routed_sync: u64,
    routed_rr: u64,
    routed_rand: u64,
    routed_dist: u64,
    fallback_sync: u64,
    fallback_rr: u64,
    fallback_rand: u64,
    fallback_dist: u64,
}

impl BatchRoutingTally {
    fn parse(header: &str) -> Self {
        let mut parts = header.split(',').map(|p| p.trim().parse::<u64>().unwrap_or(0));
        let mut next = || parts.next().unwrap_or(0);
        // Positional, new fields appended per class: a four-field legacy
        // header fills sync/rr routed slots then misreads its two
        // fallback numbers as rand/dist routed — acceptable only because
        // legacy workers never coexist with this coordinator (the serve
        // protocol ships both sides from one build); fresh headers are
        // always eight fields.
        Self {
            routed_sync: next(),
            routed_rr: next(),
            routed_rand: next(),
            routed_dist: next(),
            fallback_sync: next(),
            fallback_rr: next(),
            fallback_rand: next(),
            fallback_dist: next(),
        }
    }

    fn add(&mut self, other: Self) {
        self.routed_sync += other.routed_sync;
        self.routed_rr += other.routed_rr;
        self.routed_rand += other.routed_rand;
        self.routed_dist += other.routed_dist;
        self.fallback_sync += other.fallback_sync;
        self.fallback_rr += other.fallback_rr;
        self.fallback_rand += other.fallback_rand;
        self.fallback_dist += other.fallback_dist;
    }
}

/// The serve coordinator (see the module docs for the model).
pub struct Coordinator {
    plan: CampaignPlan,
    plan_json: String,
    listener: TcpListener,
    options: ServeOptions,
    states: Vec<ShardState>,
    acc: MergeAccumulator,
    trace: Option<TraceWriter>,
    heartbeat: ServeHeartbeat,
    next_lease_id: u64,
    expired_total: u64,
    uploads_accepted: u64,
    uploads_rejected: u64,
    workers: Vec<WorkerTally>,
    batch_routing: BatchRoutingTally,
    started: Instant,
}

/// How often the accept loop wakes to scan for expired leases when no
/// connection is pending.
const IDLE_POLL: Duration = Duration::from_millis(5);

impl Coordinator {
    /// Binds the listener, opens the trace, creates the spool directory,
    /// and replays any partials already spooled (the resume path).
    ///
    /// # Errors
    ///
    /// Fails on bind/spool I/O errors, trace-creation errors, or a spooled
    /// partial belonging to a different plan (a corrupt spool is surfaced,
    /// not silently dropped — pass a fresh `--spool` to start over).
    pub fn bind(plan: CampaignPlan, listen: &str, options: ServeOptions) -> Result<Self, String> {
        let listener = TcpListener::bind(listen).map_err(|e| format!("binding {listen}: {e}"))?;
        listener.set_nonblocking(true).map_err(|e| format!("configuring listener: {e}"))?;
        std::fs::create_dir_all(&options.spool)
            .map_err(|e| format!("creating spool {}: {e}", options.spool.display()))?;
        let trace = options
            .trace_path
            .as_deref()
            .map(|p| TraceWriter::create(p, None, "serve"))
            .transpose()?;
        let plan_json = plan.to_json();
        let states = vec![ShardState::Pending; plan.shards.len()];
        let shard_count = plan.shards.len() as u64;
        let mut coordinator = Self {
            plan,
            plan_json,
            listener,
            options,
            states,
            acc: MergeAccumulator::new(),
            trace,
            heartbeat: ServeHeartbeat::new(shard_count),
            next_lease_id: 0,
            expired_total: 0,
            uploads_accepted: 0,
            uploads_rejected: 0,
            workers: Vec::new(),
            batch_routing: BatchRoutingTally::default(),
            started: Instant::now(),
        };
        coordinator.emit(EventKind::CampaignStart {
            cells: coordinator.plan.cells.len() as u64,
            groups: crate::plan::group_boundaries(&coordinator.plan.cells).len().saturating_sub(1)
                as u64,
            seed: coordinator.plan.config.seed,
            max_steps: coordinator.plan.config.max_steps as u64,
        })?;
        coordinator.emit(EventKind::Plan {
            cells: coordinator.plan.cells.len() as u64,
            shards: coordinator.plan.shards.len() as u64,
        })?;
        coordinator.replay_spool()?;
        Ok(coordinator)
    }

    /// The bound listen address (useful after binding port 0 in tests).
    ///
    /// # Errors
    ///
    /// Propagates the (practically unfailable) `getsockname` error.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Replays spooled partials through the merge accumulator, marking
    /// their shards done — completed work survives a coordinator kill.
    fn replay_spool(&mut self) -> Result<(), String> {
        let dir = std::fs::read_dir(&self.options.spool)
            .map_err(|e| format!("reading spool {}: {e}", self.options.spool.display()))?;
        let mut paths: Vec<PathBuf> = dir
            .filter_map(Result::ok)
            .map(|entry| entry.path())
            .filter(|p| p.to_string_lossy().ends_with(".partial.json"))
            .collect();
        paths.sort();
        for path in paths {
            let text = std::fs::read_to_string(&path)
                .map_err(|e| format!("reading spooled {}: {e}", path.display()))?;
            let partial = PartialArtifact::from_json(&text)
                .map_err(|e| format!("parsing spooled {}: {e}", path.display()))?;
            match self.fold_partial(partial, "spool", BatchRoutingTally::default(), false)? {
                UploadReply::Accepted { .. } => {}
                UploadReply::Rejected { reason } => {
                    return Err(format!("spooled {} rejected: {reason}", path.display()));
                }
            }
        }
        if self.acc.accepted_count() > 0 {
            eprintln!(
                "serve: resumed {} completed shards ({} cells) from spool {}",
                self.acc.accepted_count(),
                self.acc.covered_cells(),
                self.options.spool.display()
            );
        }
        Ok(())
    }

    fn emit(&mut self, kind: EventKind) -> Result<(), String> {
        if let Some(w) = self.trace.as_mut() {
            w.emit(kind)?;
        }
        Ok(())
    }

    fn counts(&self) -> ServeCounts {
        let leased =
            self.states.iter().filter(|s| matches!(s, ShardState::Leased { .. })).count() as u64;
        let completed = self.states.iter().filter(|s| **s == ShardState::Done).count() as u64;
        ServeCounts {
            leased,
            completed,
            expired: self.expired_total,
            merged_cells: self.acc.covered_cells() as u64,
        }
    }

    /// Returns expired leases to the pending pool.
    fn expire_leases(&mut self) -> Result<(), String> {
        let now = Instant::now();
        let mut expirations = Vec::new();
        for (shard_id, state) in self.states.iter_mut().enumerate() {
            if let ShardState::Leased { worker, lease_id, deadline } = state {
                if *deadline <= now {
                    expirations.push((shard_id as u64, worker.clone(), *lease_id));
                    *state = ShardState::Pending;
                }
            }
        }
        for (shard_id, worker, lease_id) in expirations {
            self.expired_total += 1;
            eprintln!("serve: lease {lease_id} on shard {shard_id} (worker {worker}) expired");
            self.emit(EventKind::LeaseExpired { shard_id, worker, lease_id })?;
            self.heartbeat.tick(self.counts());
        }
        Ok(())
    }

    /// Grants the lowest-id pending shard, or says wait/done.
    fn grant_lease(&mut self, worker: &str) -> Result<LeaseReply, String> {
        let Some(shard_id) = self.states.iter().position(|s| *s == ShardState::Pending) else {
            return Ok(if self.acc.is_complete() {
                LeaseReply::Done
            } else {
                // Everything is out on live leases; poll again at a pace
                // proportional to the lease window.
                LeaseReply::Wait { retry_ms: (self.options.lease_ms / 10).clamp(50, 2000) }
            });
        };
        let lease_id = self.next_lease_id;
        self.next_lease_id += 1;
        let lease_ms = self.options.lease_ms;
        let deadline = Instant::now() + Duration::from_millis(lease_ms);
        self.states[shard_id] =
            ShardState::Leased { worker: worker.to_string(), lease_id, deadline };
        self.emit(EventKind::LeaseGranted {
            shard_id: shard_id as u64,
            worker: worker.to_string(),
            lease_id,
            lease_ms,
        })?;
        self.heartbeat.tick(self.counts());
        let spec = self.plan.shards[shard_id];
        Ok(LeaseReply::Granted(Lease {
            shard: shard_id as u64,
            start: spec.start as u64,
            end: spec.end as u64,
            lease_id,
            lease_ms,
            plan_fingerprint: self.plan.fingerprint(),
        }))
    }

    /// Extends a still-valid lease; a `false` reply tells the worker its
    /// shard was re-dispatched (or already completed by someone else).
    fn renew_lease(&mut self, worker: &str, lease_id: u64) -> bool {
        let lease_ms = self.options.lease_ms;
        for state in &mut self.states {
            if let ShardState::Leased { worker: w, lease_id: id, deadline } = state {
                if *id == lease_id && w == worker {
                    *deadline = Instant::now() + Duration::from_millis(lease_ms);
                    return true;
                }
            }
        }
        false
    }

    /// Validates and folds one partial (uploaded or spooled), spooling it
    /// and marking its shard done on first acceptance.
    fn fold_partial(
        &mut self,
        partial: PartialArtifact,
        worker: &str,
        routing: BatchRoutingTally,
        spool_it: bool,
    ) -> Result<UploadReply, String> {
        // Range check against the plan's own shard table first: the merge
        // accumulator would let a mis-ranged partial in and only notice the
        // gap at the very end.
        let reject = |reason: String| UploadReply::Rejected { reason };
        let Some(spec) = self.plan.shards.get(partial.shard_id).copied() else {
            return Ok(reject(format!(
                "shard {} does not exist in this plan ({} shards)",
                partial.shard_id,
                self.plan.shards.len()
            )));
        };
        if partial.start != spec.start || partial.end != spec.end {
            return Ok(reject(format!(
                "shard {} covers cells {}..{}, expected {}..{}",
                partial.shard_id, partial.start, partial.end, spec.start, spec.end
            )));
        }
        if partial.plan_fingerprint != self.plan.fingerprint() {
            return Ok(reject(format!(
                "partial belongs to a different plan (matrix fingerprint {:#018x}, \
                 expected {:#018x})",
                partial.plan_fingerprint,
                self.plan.fingerprint()
            )));
        }
        let shard_id = partial.shard_id;
        let cells = partial.cells.len() as u64;
        let moves: u64 =
            partial.cells.iter().filter_map(|c| c.outcome.as_ref().ok()).map(|o| o.moves).sum();
        let body = if spool_it { Some(partial.to_json()) } else { None };
        match self.acc.accept(partial) {
            Ok(Accepted::Fresh) => {
                if let Some(body) = body {
                    let path = self.options.spool.join(format!("shard-{shard_id}.partial.json"));
                    write_atomic(&path, &body)
                        .map_err(|e| format!("spooling {}: {e}", path.display()))?;
                }
                self.states[shard_id] = ShardState::Done;
                self.batch_routing.add(routing);
                match self.workers.iter_mut().find(|t| t.worker == worker) {
                    Some(t) => {
                        t.shards_accepted += 1;
                        t.cells_accepted += cells;
                        t.moves += moves;
                    }
                    None => self.workers.push(WorkerTally {
                        worker: worker.to_string(),
                        shards_accepted: 1,
                        cells_accepted: cells,
                        moves,
                    }),
                }
                self.emit(EventKind::PartialAccepted {
                    shard_id: shard_id as u64,
                    worker: worker.to_string(),
                    cells,
                })?;
                self.heartbeat.tick(self.counts());
                Ok(UploadReply::Accepted { duplicate: false })
            }
            // A re-dispatched straggler finished after all: acknowledge so
            // it stops retrying, drop so nothing is double-counted.
            Ok(Accepted::Duplicate) => Ok(UploadReply::Accepted { duplicate: true }),
            Err(reason) => Ok(reject(reason)),
        }
    }

    /// Builds the live `/status` payload: a `specstab-metrics/v1` snapshot
    /// of the lease table and per-worker throughput.
    fn status_json(&self) -> String {
        let counts = self.counts();
        let wall_us = u64::try_from(self.started.elapsed().as_micros()).unwrap_or(u64::MAX);
        let wall_secs = self.started.elapsed().as_secs_f64().max(1e-9);
        let workers = self
            .workers
            .iter()
            .map(|t| {
                #[allow(clippy::cast_precision_loss)]
                let rate = t.moves as f64 / wall_secs;
                obj(vec![
                    ("worker", Json::Str(t.worker.clone())),
                    ("shards_accepted", Json::UInt(t.shards_accepted)),
                    ("cells_accepted", Json::UInt(t.cells_accepted)),
                    ("moves", Json::UInt(t.moves)),
                    ("moves_per_sec", Json::Num(rate)),
                ])
            })
            .collect();
        obj(vec![
            ("schema", Json::Str(specstab_telemetry::METRICS_SCHEMA.into())),
            (
                "serve",
                obj(vec![
                    ("shards_total", Json::UInt(self.plan.shards.len() as u64)),
                    ("leased", Json::UInt(counts.leased)),
                    ("completed", Json::UInt(counts.completed)),
                    ("expired", Json::UInt(counts.expired)),
                    ("merged_cells", Json::UInt(counts.merged_cells)),
                    ("uploads_accepted", Json::UInt(self.uploads_accepted)),
                    ("uploads_rejected", Json::UInt(self.uploads_rejected)),
                    ("wall_us", Json::UInt(wall_us)),
                    (
                        "batch_groups",
                        obj(vec![
                            ("routed_sync", Json::UInt(self.batch_routing.routed_sync)),
                            ("routed_rr", Json::UInt(self.batch_routing.routed_rr)),
                            ("routed_rand", Json::UInt(self.batch_routing.routed_rand)),
                            ("routed_dist", Json::UInt(self.batch_routing.routed_dist)),
                            ("fallback_sync", Json::UInt(self.batch_routing.fallback_sync)),
                            ("fallback_rr", Json::UInt(self.batch_routing.fallback_rr)),
                            ("fallback_rand", Json::UInt(self.batch_routing.fallback_rand)),
                            ("fallback_dist", Json::UInt(self.batch_routing.fallback_dist)),
                        ]),
                    ),
                    ("workers", Json::Arr(workers)),
                ]),
            ),
        ])
        .render()
    }

    /// Dispatches one parsed request to `(status, reason, body)`.
    fn handle(&mut self, req: &Request) -> Result<(u16, &'static str, String), String> {
        match (req.method.as_str(), req.path.as_str()) {
            ("GET", "/plan") => Ok((200, "OK", self.plan_json.clone())),
            ("GET", "/status") => Ok((200, "OK", self.status_json())),
            ("POST", "/lease") => match parse_worker_body(&req.body) {
                Ok((worker, _)) => Ok((200, "OK", self.grant_lease(&worker)?.to_json())),
                Err(e) => {
                    Ok((400, "Bad Request", obj(vec![("error", Json::Str(e))]).render_compact()))
                }
            },
            ("POST", "/renew") => match parse_worker_body(&req.body) {
                Ok((worker, Some(lease_id))) => {
                    Ok((200, "OK", renew_reply(self.renew_lease(&worker, lease_id))))
                }
                _ => Ok((400, "Bad Request", "{\"error\":\"renew needs a lease_id\"}".into())),
            },
            ("POST", "/upload") => {
                let worker = req.header("x-specstab-worker").unwrap_or("anonymous").to_string();
                let routing = req
                    .header("x-specstab-batch-routing")
                    .map_or_else(BatchRoutingTally::default, BatchRoutingTally::parse);
                let parsed = std::str::from_utf8(&req.body)
                    .map_err(|_| "non-UTF-8 upload body".to_string())
                    .and_then(PartialArtifact::from_json);
                let reply = match parsed {
                    Ok(partial) => self.fold_partial(partial, &worker, routing, true)?,
                    Err(reason) => UploadReply::Rejected { reason },
                };
                match &reply {
                    UploadReply::Accepted { duplicate: false } => self.uploads_accepted += 1,
                    UploadReply::Accepted { duplicate: true } => {}
                    UploadReply::Rejected { reason } => {
                        self.uploads_rejected += 1;
                        eprintln!("serve: rejected upload from {worker}: {reason}");
                        self.emit(EventKind::PartialRejected {
                            worker: worker.clone(),
                            reason: reason.clone(),
                        })?;
                    }
                }
                let status = if matches!(reply, UploadReply::Rejected { .. }) {
                    (400, "Bad Request")
                } else {
                    (200, "OK")
                };
                Ok((status.0, status.1, reply.to_json()))
            }
            _ => Ok((404, "Not Found", "{\"error\":\"no such endpoint\"}".into())),
        }
    }

    /// Runs the accept loop until the tiling is complete (returns the
    /// merged result) or the `stop_after_uploads` fault-injection point is
    /// reached (returns `None`, simulating a crash — the spool is the only
    /// thing that survives, which is the point).
    ///
    /// # Errors
    ///
    /// Fails on spool/trace I/O errors and on a final merge that does not
    /// tile (impossible unless the plan's shard table itself is
    /// inconsistent).
    pub fn run(mut self) -> Result<Option<CampaignResult>, String> {
        eprintln!(
            "serve: coordinating {} shards ({} cells) on {}",
            self.plan.shards.len(),
            self.plan.cells.len(),
            self.local_addr().map_or_else(|_| "<unknown>".into(), |a| a.to_string()),
        );
        while !self.acc.is_complete() {
            self.expire_leases()?;
            match self.listener.accept() {
                Ok((mut stream, _peer)) => {
                    // Blocking I/O with timeouts from here on: a dead or
                    // stalled client costs a bounded wait.
                    let served = stream
                        .set_nonblocking(false)
                        .and_then(|()| set_socket_timeouts(&stream))
                        .map_err(|e| format!("configuring connection: {e}"))
                        .and_then(|()| read_request(&mut stream));
                    match served {
                        Ok(req) => {
                            let (status, reason, body) = self.handle(&req)?;
                            if let Err(e) = write_response(
                                &mut stream,
                                status,
                                reason,
                                "application/json",
                                body.as_bytes(),
                            ) {
                                eprintln!("serve: dropping connection mid-response: {e}");
                            }
                        }
                        // A malformed or timed-out request harms only its
                        // own connection.
                        Err(e) => eprintln!("serve: dropping connection: {e}"),
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(IDLE_POLL);
                }
                Err(e) => return Err(format!("accepting connections: {e}")),
            }
            if let Some(limit) = self.options.stop_after_uploads {
                if self.uploads_accepted >= limit {
                    eprintln!(
                        "serve: stopping after {limit} uploads (fault injection); \
                         spool {} holds the checkpoints",
                        self.options.spool.display()
                    );
                    return Ok(None);
                }
            }
        }
        self.heartbeat.finish(self.counts());
        self.emit(EventKind::MergeStart { partials: self.acc.accepted_count() as u64 })?;
        let wall_us = u64::try_from(self.started.elapsed().as_micros()).unwrap_or(u64::MAX);
        let result = std::mem::take(&mut self.acc).finish()?;
        if let Some(w) = self.trace.as_mut() {
            w.emit(EventKind::MergeEnd {
                cells: result.cells.len() as u64,
                groups: result.groups.len() as u64,
            })?;
            w.emit(EventKind::CampaignEnd {
                cells: result.cells.len() as u64,
                errors: result.total_errors(),
                violations: result.total_violations(),
                wall_us,
                // The coordinator executes no cells itself; engine counters
                // live in the workers' own traces.
                counters: specstab_telemetry::CounterSnapshot::default(),
            })?;
        }
        if let Some(w) = self.trace.take() {
            w.finish()?;
        }
        eprintln!(
            "serve: campaign complete ({} cells from {} shards) in {:?}",
            result.cells.len(),
            self.plan.shards.len(),
            self.started.elapsed()
        );
        Ok(Some(result))
    }
}
