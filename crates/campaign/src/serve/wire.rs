//! Wire payloads of the serve protocol — the JSON bodies exchanged over
//! [`super::http`], built and parsed with the workspace's strict JSON
//! layer so both ends reject malformed traffic instead of guessing.
//!
//! Endpoints (one request per connection):
//!
//! | method & path | request body           | response body |
//! |---------------|------------------------|---------------|
//! | `GET /plan`   | —                      | the `CampaignPlan` JSON |
//! | `POST /lease` | `{"worker":id}`        | [`LeaseReply`] |
//! | `POST /renew` | `{"worker":id,"lease_id":n}` | `{"renewed":bool}` |
//! | `POST /upload`| partial JSON (+ `x-specstab-worker` header) | [`UploadReply`] |
//! | `GET /status` | —                      | `specstab-metrics/v1` snapshot |

use specstab_telemetry::{obj, Json};

/// A granted lease: which cells to run and how long the coordinator will
/// wait before re-dispatching.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lease {
    /// Shard id within the plan.
    pub shard: u64,
    /// First cell index covered (redundant with the plan; lets a worker
    /// sanity-check its plan copy).
    pub start: u64,
    /// One past the last cell index covered.
    pub end: u64,
    /// Coordinator-scoped lease id, never reused.
    pub lease_id: u64,
    /// Lease duration in milliseconds; renew before it elapses.
    pub lease_ms: u64,
    /// Fingerprint of the plan's cell matrix, so a worker holding a stale
    /// plan file fails fast instead of uploading a rejectable partial.
    pub plan_fingerprint: u64,
}

/// The coordinator's answer to `POST /lease`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LeaseReply {
    /// Work granted.
    Granted(Lease),
    /// Nothing leasable right now (all shards out on live leases); poll
    /// again after `retry_ms`.
    Wait {
        /// Suggested delay before the next lease attempt.
        retry_ms: u64,
    },
    /// The campaign is complete; the worker should exit.
    Done,
}

impl LeaseReply {
    /// Renders the reply body.
    #[must_use]
    pub fn to_json(&self) -> String {
        match self {
            LeaseReply::Granted(l) => obj(vec![(
                "lease",
                obj(vec![
                    ("shard", Json::UInt(l.shard)),
                    ("start", Json::UInt(l.start)),
                    ("end", Json::UInt(l.end)),
                    ("lease_id", Json::UInt(l.lease_id)),
                    ("lease_ms", Json::UInt(l.lease_ms)),
                    ("plan_fingerprint", Json::UInt(l.plan_fingerprint)),
                ]),
            )]),
            LeaseReply::Wait { retry_ms } => {
                obj(vec![("wait", obj(vec![("retry_ms", Json::UInt(*retry_ms))]))])
            }
            LeaseReply::Done => obj(vec![("done", Json::Bool(true))]),
        }
        .render_compact()
    }

    /// Parses a reply body.
    ///
    /// # Errors
    ///
    /// Fails on malformed JSON or a body matching none of the three reply
    /// shapes.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let j = Json::parse(text)?;
        if let Some(l) = j.get("lease") {
            return Ok(LeaseReply::Granted(Lease {
                shard: l.req("shard")?.as_u64()?,
                start: l.req("start")?.as_u64()?,
                end: l.req("end")?.as_u64()?,
                lease_id: l.req("lease_id")?.as_u64()?,
                lease_ms: l.req("lease_ms")?.as_u64()?,
                plan_fingerprint: l.req("plan_fingerprint")?.as_u64()?,
            }));
        }
        if let Some(w) = j.get("wait") {
            return Ok(LeaseReply::Wait { retry_ms: w.req("retry_ms")?.as_u64()? });
        }
        if j.get("done").is_some() {
            return Ok(LeaseReply::Done);
        }
        Err(format!("lease reply matches no known shape: {text}"))
    }
}

/// The coordinator's answer to `POST /upload`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UploadReply {
    /// Folded into the campaign. `duplicate` marks a re-dispatched
    /// straggler's second copy: acknowledged, dropped, not double-counted.
    Accepted {
        /// Whether this upload was an exact duplicate of an earlier one.
        duplicate: bool,
    },
    /// Failed validation and was discarded; retrying the same bytes is
    /// pointless.
    Rejected {
        /// Human-readable rejection reason.
        reason: String,
    },
}

impl UploadReply {
    /// Renders the reply body.
    #[must_use]
    pub fn to_json(&self) -> String {
        match self {
            UploadReply::Accepted { duplicate } => {
                obj(vec![("accepted", Json::Bool(true)), ("duplicate", Json::Bool(*duplicate))])
            }
            UploadReply::Rejected { reason } => {
                obj(vec![("accepted", Json::Bool(false)), ("rejected", Json::Str(reason.clone()))])
            }
        }
        .render_compact()
    }

    /// Parses a reply body.
    ///
    /// # Errors
    ///
    /// Fails on malformed JSON or a body matching neither reply shape.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let j = Json::parse(text)?;
        if j.req("accepted")?.as_bool()? {
            return Ok(UploadReply::Accepted { duplicate: j.req("duplicate")?.as_bool()? });
        }
        Ok(UploadReply::Rejected { reason: j.req("rejected")?.as_str()?.to_string() })
    }
}

/// Renders the `POST /lease` request body.
#[must_use]
pub fn lease_request(worker: &str) -> String {
    obj(vec![("worker", Json::Str(worker.to_string()))]).render_compact()
}

/// Renders the `POST /renew` request body.
#[must_use]
pub fn renew_request(worker: &str, lease_id: u64) -> String {
    obj(vec![("worker", Json::Str(worker.to_string())), ("lease_id", Json::UInt(lease_id))])
        .render_compact()
}

/// Parses `{"worker":id}` (and optionally `lease_id`) request bodies.
///
/// # Errors
///
/// Fails on malformed JSON or a missing/mistyped `worker` field.
pub fn parse_worker_body(body: &[u8]) -> Result<(String, Option<u64>), String> {
    let text = std::str::from_utf8(body).map_err(|_| "non-UTF-8 request body".to_string())?;
    let j = Json::parse(text)?;
    let worker = j.req("worker")?.as_str()?.to_string();
    let lease_id = j.get("lease_id").map(Json::as_u64).transpose()?;
    Ok((worker, lease_id))
}

/// Renders the `{"renewed":bool}` reply to `POST /renew`.
#[must_use]
pub fn renew_reply(renewed: bool) -> String {
    obj(vec![("renewed", Json::Bool(renewed))]).render_compact()
}

/// Parses the `POST /renew` reply.
///
/// # Errors
///
/// Fails on malformed JSON or a missing/mistyped `renewed` field.
pub fn parse_renew_reply(text: &str) -> Result<bool, String> {
    Json::parse(text)?.req("renewed")?.as_bool()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lease_replies_round_trip() {
        let granted = LeaseReply::Granted(Lease {
            shard: 3,
            start: 12,
            end: 30,
            lease_id: 7,
            lease_ms: 30_000,
            plan_fingerprint: 0xDEAD_BEEF,
        });
        for reply in [granted, LeaseReply::Wait { retry_ms: 250 }, LeaseReply::Done] {
            let back = LeaseReply::from_json(&reply.to_json()).expect("parses");
            assert_eq!(back, reply);
        }
        assert!(LeaseReply::from_json("{\"nope\":1}").is_err());
    }

    #[test]
    fn upload_replies_round_trip() {
        for reply in [
            UploadReply::Accepted { duplicate: false },
            UploadReply::Accepted { duplicate: true },
            UploadReply::Rejected { reason: "fingerprint mismatch".into() },
        ] {
            let back = UploadReply::from_json(&reply.to_json()).expect("parses");
            assert_eq!(back, reply);
        }
    }

    #[test]
    fn worker_bodies_round_trip() {
        let (w, id) = parse_worker_body(lease_request("w-1").as_bytes()).expect("parses");
        assert_eq!((w.as_str(), id), ("w-1", None));
        let (w, id) = parse_worker_body(renew_request("w-2", 9).as_bytes()).expect("parses");
        assert_eq!((w.as_str(), id), ("w-2", Some(9)));
        assert!(parse_renew_reply(&renew_reply(true)).expect("parses"));
    }
}
