//! The elastic pull-worker: lease → execute → upload, forever, until the
//! coordinator says the campaign is done (or disappears, which after a
//! successful first contact means the same thing).
//!
//! Workers are stateless and interchangeable: they fetch the plan from the
//! coordinator itself, so joining a campaign needs exactly one URL. Any
//! number can come and go mid-campaign; a worker that dies mid-shard
//! simply lets its lease expire and the next puller re-runs the shard —
//! determinism makes the re-run produce the identical partial, and the
//! merge layer's duplicate handling absorbs the case where both
//! executions eventually upload.

use super::http::{request, CoordinatorUrl};
use super::wire::{
    lease_request, parse_renew_reply, renew_request, Lease, LeaseReply, UploadReply,
};
use crate::plan::CampaignPlan;
use crate::shard::execute_shard;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// Worker knobs.
#[derive(Debug, Clone)]
pub struct WorkOptions {
    /// Coordinator base URL (`http://host:port`).
    pub coordinator: String,
    /// Worker identity reported on every request (shows up in leases,
    /// traces, and `/status`).
    pub worker_id: String,
    /// Threads for `execute_shard` (default 1: run more workers instead).
    pub threads: usize,
    /// Fault-drill mode: lease exactly one shard and exit *without*
    /// executing or uploading it — a deterministic stand-in for a worker
    /// that dies mid-shard, guaranteeing a lease expiry + re-dispatch.
    pub lease_only: bool,
}

/// What a worker did before exiting cleanly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerSummary {
    /// Shards executed and uploaded as fresh partials.
    pub executed: u64,
    /// Uploads acknowledged as duplicates (another worker got there first).
    pub duplicates: u64,
    /// Shards leased but abandoned (`lease_only` mode).
    pub abandoned: u64,
}

/// Upload retry schedule: bounded exponential backoff with deterministic
/// jitter (hash of worker id and attempt — no RNG dependency, but distinct
/// workers still desynchronize their retries).
const UPLOAD_ATTEMPTS: u32 = 5;
const BACKOFF_BASE_MS: u64 = 100;
const BACKOFF_CAP_MS: u64 = 2_000;

fn backoff_ms(worker_id: &str, attempt: u32) -> u64 {
    let exp = BACKOFF_BASE_MS.saturating_mul(1 << attempt.min(6)).min(BACKOFF_CAP_MS);
    // FNV-1a over (worker, attempt) for the jitter term.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in worker_id.bytes().chain([attempt as u8]) {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    exp + h % (exp / 2 + 1)
}

/// One lease/renew/upload exchange, with transport errors mapped to
/// `Err` and HTTP-level rejections surfaced in the reply types.
fn post(url: &CoordinatorUrl, path: &str, body: &str) -> Result<(u16, String), String> {
    let (status, bytes) = request(url, "POST", path, &[], body.as_bytes())?;
    let text = String::from_utf8(bytes).map_err(|_| format!("non-UTF-8 reply from {path}"))?;
    Ok((status, text))
}

/// Fetches and parses the coordinator's plan.
fn fetch_plan(url: &CoordinatorUrl) -> Result<CampaignPlan, String> {
    let (status, body) = request(url, "GET", "/plan", &[], b"")?;
    if status != 200 {
        return Err(format!("GET /plan returned {status}"));
    }
    let text = std::str::from_utf8(&body).map_err(|_| "non-UTF-8 plan".to_string())?;
    CampaignPlan::from_json(text)
}

/// Executes one leased shard while a sidecar thread renews the lease at a
/// third of its duration, so long shards never expire under a live worker.
fn execute_leased(
    url: &CoordinatorUrl,
    opts: &WorkOptions,
    plan: &CampaignPlan,
    lease: &Lease,
) -> Result<crate::artifact::PartialArtifact, String> {
    let done = AtomicBool::new(false);
    let renew_every = Duration::from_millis((lease.lease_ms / 3).max(50));
    std::thread::scope(|scope| {
        scope.spawn(|| {
            let body = renew_request(&opts.worker_id, lease.lease_id);
            while !done.load(Ordering::Relaxed) {
                // Sleep in short slices so worker shutdown is prompt.
                let mut slept = Duration::ZERO;
                while slept < renew_every && !done.load(Ordering::Relaxed) {
                    let slice = Duration::from_millis(50).min(renew_every - slept);
                    std::thread::sleep(slice);
                    slept += slice;
                }
                if done.load(Ordering::Relaxed) {
                    break;
                }
                match post(url, "/renew", &body) {
                    Ok((200, reply)) => {
                        if !parse_renew_reply(&reply).unwrap_or(true) {
                            // Re-dispatched from under us: keep computing
                            // anyway — the upload will be absorbed as a
                            // duplicate if the other execution wins.
                            eprintln!(
                                "work[{}]: lease {} no longer ours (re-dispatched)",
                                opts.worker_id, lease.lease_id
                            );
                            return;
                        }
                    }
                    Ok((status, _)) => {
                        eprintln!("work[{}]: renew returned {status}", opts.worker_id);
                    }
                    // Transient: the upload path owns real error handling.
                    Err(e) => eprintln!("work[{}]: renew failed: {e}", opts.worker_id),
                }
            }
        });
        let partial = execute_shard(plan, lease.shard as usize, opts.threads.max(1));
        done.store(true, Ordering::Relaxed);
        partial
    })
}

/// Uploads a partial with bounded-jittered retries. `Ok(true)` means a
/// fresh acceptance, `Ok(false)` a duplicate acknowledgement. `routing`
/// is the worker's batched-vs-scalar routing tally for this shard
/// (`routed_sync,routed_rr,routed_rand,routed_dist,fallback_sync,`
/// `fallback_rr,fallback_rand,fallback_dist`), carried as a
/// header so the coordinator's `/status` can report how much of the
/// campaign ran lane-packed without touching the partial artifact bytes.
fn upload(
    url: &CoordinatorUrl,
    opts: &WorkOptions,
    body: &str,
    routing: &str,
) -> Result<Option<bool>, String> {
    let headers =
        [("x-specstab-worker", opts.worker_id.as_str()), ("x-specstab-batch-routing", routing)];
    let mut last_err = String::new();
    for attempt in 0..UPLOAD_ATTEMPTS {
        match request(url, "POST", "/upload", &headers, body.as_bytes()) {
            Ok((status, reply_bytes)) => {
                let text = String::from_utf8(reply_bytes)
                    .map_err(|_| "non-UTF-8 upload reply".to_string())?;
                match UploadReply::from_json(&text)? {
                    UploadReply::Accepted { duplicate } => return Ok(Some(!duplicate)),
                    UploadReply::Rejected { reason } => {
                        // Retrying identical bytes cannot succeed.
                        return Err(format!("upload rejected ({status}): {reason}"));
                    }
                }
            }
            Err(e) => {
                last_err = e;
                let wait = backoff_ms(&opts.worker_id, attempt);
                eprintln!(
                    "work[{}]: upload attempt {} failed ({last_err}); retrying in {wait}ms",
                    opts.worker_id,
                    attempt + 1
                );
                std::thread::sleep(Duration::from_millis(wait));
            }
        }
    }
    // Out of retries with the coordinator unreachable. The shard's lease
    // will expire and someone else will redo it; signal "coordinator gone".
    eprintln!("work[{}]: giving up on upload: {last_err}", opts.worker_id);
    Ok(None)
}

/// Runs the pull-worker loop to completion.
///
/// Exit semantics are elastic by design: once the worker has successfully
/// talked to the coordinator, losing it (connection refused / timeout) is
/// a clean exit — the campaign may simply have finished and the
/// coordinator gone home. Only failing the *first* contact, or a
/// validation-level rejection (wrong plan), is an error.
///
/// # Errors
///
/// Fails when the coordinator is unreachable on first contact, sends
/// malformed replies, rejects an upload as invalid, or a leased shard
/// cannot be executed (plan/shard-id inconsistencies).
pub fn run_worker(opts: &WorkOptions) -> Result<WorkerSummary, String> {
    let url = CoordinatorUrl::parse(&opts.coordinator)?;
    let plan = fetch_plan(&url)?;
    eprintln!(
        "work[{}]: joined campaign of {} cells / {} shards at {}",
        opts.worker_id,
        plan.cells.len(),
        plan.shards.len(),
        url.authority
    );
    let mut summary = WorkerSummary::default();
    loop {
        let lease_body = lease_request(&opts.worker_id);
        let reply = match post(&url, "/lease", &lease_body) {
            Ok((200, text)) => LeaseReply::from_json(&text)?,
            Ok((status, text)) => return Err(format!("lease returned {status}: {text}")),
            Err(e) => {
                eprintln!(
                    "work[{}]: coordinator gone ({e}); assuming campaign over",
                    opts.worker_id
                );
                return Ok(summary);
            }
        };
        let lease = match reply {
            LeaseReply::Done => {
                eprintln!("work[{}]: campaign complete; exiting", opts.worker_id);
                return Ok(summary);
            }
            LeaseReply::Wait { retry_ms } => {
                std::thread::sleep(Duration::from_millis(retry_ms.clamp(10, 5_000)));
                continue;
            }
            LeaseReply::Granted(lease) => lease,
        };
        if lease.plan_fingerprint != plan.fingerprint() {
            return Err(format!(
                "lease fingerprint {:#018x} does not match the fetched plan ({:#018x})",
                lease.plan_fingerprint,
                plan.fingerprint()
            ));
        }
        eprintln!(
            "work[{}]: leased shard {} (cells {}..{}, lease {} for {}ms)",
            opts.worker_id, lease.shard, lease.start, lease.end, lease.lease_id, lease.lease_ms
        );
        if opts.lease_only {
            summary.abandoned += 1;
            eprintln!(
                "work[{}]: --lease-only: abandoning shard {} (its lease will expire)",
                opts.worker_id, lease.shard
            );
            return Ok(summary);
        }
        let before = specstab_telemetry::global().snapshot();
        let partial = execute_leased(&url, opts, &plan, &lease)?;
        let d = specstab_telemetry::global().snapshot().delta(&before);
        let routing = format!(
            "{},{},{},{},{},{},{},{}",
            d.batch_routed_sync_groups,
            d.batch_routed_rr_groups,
            d.batch_routed_rand_groups,
            d.batch_routed_dist_groups,
            d.batch_fallback_sync_groups,
            d.batch_fallback_rr_groups,
            d.batch_fallback_rand_groups,
            d.batch_fallback_dist_groups
        );
        match upload(&url, opts, &partial.to_json(), &routing)? {
            Some(true) => summary.executed += 1,
            Some(false) => {
                summary.duplicates += 1;
                eprintln!(
                    "work[{}]: shard {} was already merged (duplicate acknowledged)",
                    opts.worker_id, lease.shard
                );
            }
            None => {
                eprintln!("work[{}]: coordinator gone mid-upload; exiting", opts.worker_id);
                return Ok(summary);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_bounded_and_worker_dependent() {
        for attempt in 0..UPLOAD_ATTEMPTS {
            let ms = backoff_ms("w1", attempt);
            assert!(ms >= BACKOFF_BASE_MS, "attempt {attempt} gave {ms}");
            assert!(ms <= BACKOFF_CAP_MS + BACKOFF_CAP_MS / 2, "attempt {attempt} gave {ms}");
        }
        // Deterministic, but desynchronized across workers.
        assert_eq!(backoff_ms("w1", 2), backoff_ms("w1", 2));
        assert_ne!(backoff_ms("w1", 2), backoff_ms("w2", 2));
    }
}
