//! Minimal HTTP/1.1 framing over `std::net` — just enough protocol for
//! the coordinator/worker wire, hand-rolled in the same spirit as the
//! workspace's hand-rolled JSON reader: strict about what it accepts,
//! dependency-free, and sized for a trusted cluster rather than the open
//! internet.
//!
//! Supported surface: one request per connection (`Connection: close`
//! semantics), `Content-Length` bodies only (no chunked encoding), header
//! block capped at [`MAX_HEAD`] and bodies at [`MAX_BODY`]. Both ends set
//! socket read/write timeouts before touching the stream, so a stalled or
//! dead peer costs a bounded wait, never a wedged loop.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Maximum accepted size of the request/status line plus headers.
pub const MAX_HEAD: usize = 64 * 1024;

/// Maximum accepted body size. Partial artifacts carry per-cell results
/// for their whole range, so this is generous; it exists to bound a
/// malicious or corrupt `Content-Length`, not to ration honest uploads.
pub const MAX_BODY: usize = 1 << 30;

/// Per-socket read/write timeout applied by [`set_socket_timeouts`].
pub const IO_TIMEOUT: Duration = Duration::from_secs(10);

/// One parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    /// Request method, uppercased by the client as sent (`GET`, `POST`).
    pub method: String,
    /// Request target path (`/lease`, `/status`, ...), query included.
    pub path: String,
    /// Headers with lowercased names, in arrival order.
    pub headers: Vec<(String, String)>,
    /// The request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of header `name` (lowercase), if present.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }
}

/// Applies the standard per-socket timeouts.
///
/// # Errors
///
/// Propagates the `setsockopt` failures, which on supported platforms only
/// occur for a closed socket.
pub fn set_socket_timeouts(stream: &TcpStream) -> std::io::Result<()> {
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))
}

/// Reads everything up to and including the blank line that ends the
/// header block, returning (head bytes, leftover body bytes already read).
fn read_head(stream: &mut TcpStream) -> Result<(Vec<u8>, Vec<u8>), String> {
    let mut buf = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    loop {
        if let Some(pos) = find_head_end(&buf) {
            let rest = buf.split_off(pos + 4);
            return Ok((buf, rest));
        }
        if buf.len() > MAX_HEAD {
            return Err(format!("header block exceeds {MAX_HEAD} bytes"));
        }
        let n = stream.read(&mut chunk).map_err(|e| format!("reading header block: {e}"))?;
        if n == 0 {
            return Err("connection closed before the header block ended".into());
        }
        buf.extend_from_slice(&chunk[..n]);
    }
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn parse_headers(lines: std::str::Lines<'_>) -> Result<Vec<(String, String)>, String> {
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) =
            line.split_once(':').ok_or_else(|| format!("malformed header line {line:?}"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    Ok(headers)
}

fn read_body(
    stream: &mut TcpStream,
    headers: &[(String, String)],
    mut body: Vec<u8>,
) -> Result<Vec<u8>, String> {
    let length = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .map(|(_, v)| v.parse::<usize>().map_err(|_| format!("bad content-length {v:?}")))
        .transpose()?
        .unwrap_or(0);
    if length > MAX_BODY {
        return Err(format!("body of {length} bytes exceeds {MAX_BODY}"));
    }
    let mut chunk = [0u8; 16 * 1024];
    while body.len() < length {
        let n = stream.read(&mut chunk).map_err(|e| format!("reading body: {e}"))?;
        if n == 0 {
            return Err(format!("connection closed at {} of {length} body bytes", body.len()));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(length);
    Ok(body)
}

/// Reads and parses one request from `stream`.
///
/// # Errors
///
/// Fails on I/O errors (including timeouts), a malformed request line or
/// header, or head/body size caps; the caller should drop the connection.
pub fn read_request(stream: &mut TcpStream) -> Result<Request, String> {
    let (head, leftover) = read_head(stream)?;
    let head = std::str::from_utf8(&head).map_err(|_| "non-UTF-8 header block".to_string())?;
    let mut lines = head.lines();
    let request_line = lines.next().ok_or("empty request")?;
    let mut parts = request_line.split_whitespace();
    let (Some(method), Some(path)) = (parts.next(), parts.next()) else {
        return Err(format!("malformed request line {request_line:?}"));
    };
    let headers = parse_headers(lines)?;
    let body = read_body(stream, &headers, leftover)?;
    Ok(Request { method: method.to_string(), path: path.to_string(), headers, body })
}

/// Writes a complete response (status line, minimal headers, body) and
/// flushes.
///
/// # Errors
///
/// Propagates write/flush failures; the caller should drop the connection.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &[u8],
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\ncontent-type: {content_type}\r\n\
         content-length: {}\r\nconnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// A parsed `http://host:port` coordinator URL.
#[derive(Debug, Clone)]
pub struct CoordinatorUrl {
    /// The `host:port` authority to connect to.
    pub authority: String,
}

impl CoordinatorUrl {
    /// Parses `http://host:port` (an optional trailing `/` is tolerated).
    ///
    /// # Errors
    ///
    /// Rejects non-`http://` schemes and empty authorities — the serve
    /// wire is plaintext HTTP on a trusted network by design.
    pub fn parse(url: &str) -> Result<Self, String> {
        let rest = url
            .strip_prefix("http://")
            .ok_or_else(|| format!("coordinator url {url:?} must start with http://"))?;
        let authority = rest.trim_end_matches('/');
        if authority.is_empty() || authority.contains('/') {
            return Err(format!("coordinator url {url:?} must be http://host:port"));
        }
        Ok(Self { authority: authority.to_string() })
    }
}

/// One client request/response exchange: connects, sends `method path`
/// with `body`, reads the response to completion.
///
/// Returns `(status code, response body)`.
///
/// # Errors
///
/// Fails on connect/read/write errors (including timeouts) and malformed
/// response framing. HTTP error statuses are returned, not errors — the
/// caller decides whether a `400` is fatal.
pub fn request(
    url: &CoordinatorUrl,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: &[u8],
) -> Result<(u16, Vec<u8>), String> {
    let mut stream = TcpStream::connect(&url.authority)
        .map_err(|e| format!("connecting to {}: {e}", url.authority))?;
    set_socket_timeouts(&stream).map_err(|e| format!("configuring socket: {e}"))?;
    let mut head = format!("{method} {path} HTTP/1.1\r\nhost: {}\r\n", url.authority);
    for (name, value) in headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str(&format!("content-length: {}\r\nconnection: close\r\n\r\n", body.len()));
    stream.write_all(head.as_bytes()).map_err(|e| format!("sending request: {e}"))?;
    stream.write_all(body).map_err(|e| format!("sending body: {e}"))?;
    stream.flush().map_err(|e| format!("sending request: {e}"))?;

    let (head, leftover) = read_head(&mut stream)?;
    let head = std::str::from_utf8(&head).map_err(|_| "non-UTF-8 response head".to_string())?;
    let mut lines = head.lines();
    let status_line = lines.next().ok_or("empty response")?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("malformed status line {status_line:?}"))?;
    let headers = parse_headers(lines)?;
    let body = read_body(&mut stream, &headers, leftover)?;
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn round_trips_a_request_and_response_over_a_real_socket() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().expect("accept");
            set_socket_timeouts(&stream).expect("timeouts");
            let req = read_request(&mut stream).expect("request parses");
            assert_eq!(req.method, "POST");
            assert_eq!(req.path, "/upload");
            assert_eq!(req.header("x-specstab-worker"), Some("w1"));
            assert_eq!(req.body, b"{\"k\":1}");
            write_response(&mut stream, 200, "OK", "application/json", b"{\"ok\":true}")
                .expect("response writes");
        });
        let url = CoordinatorUrl::parse(&format!("http://{addr}")).expect("url");
        let (status, body) =
            request(&url, "POST", "/upload", &[("x-specstab-worker", "w1")], b"{\"k\":1}")
                .expect("exchange");
        assert_eq!(status, 200);
        assert_eq!(body, b"{\"ok\":true}");
        server.join().expect("server thread");
    }

    #[test]
    fn url_parsing_rejects_non_http_and_paths() {
        assert!(CoordinatorUrl::parse("https://h:1").is_err());
        assert!(CoordinatorUrl::parse("http://").is_err());
        assert!(CoordinatorUrl::parse("http://h:1/x").is_err());
        assert_eq!(CoordinatorUrl::parse("http://h:1/").unwrap().authority, "h:1");
    }

    #[test]
    fn oversized_heads_and_bodies_are_rejected() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().expect("accept");
            set_socket_timeouts(&stream).expect("timeouts");
            read_request(&mut stream).expect_err("giant content-length rejected")
        });
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(
                format!("POST / HTTP/1.1\r\ncontent-length: {}\r\n\r\n", MAX_BODY + 1).as_bytes(),
            )
            .expect("send");
        let err = server.join().expect("server thread");
        assert!(err.contains("exceeds"), "got {err}");
    }
}
