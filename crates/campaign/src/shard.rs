//! The shard execution layer: runs one shard of a [`CampaignPlan`] and
//! packages the result as a [`PartialArtifact`].
//!
//! Two backends share the same per-cell semantics:
//!
//! * [`execute_shard`] — the **in-process** backend: the existing
//!   scoped-thread executor ([`crate::executor::run_campaign`]) over the
//!   shard's cell slice. Because every cell seeds purely from its
//!   coordinates, a shard run is bit-identical to the same cells inside a
//!   full single-process sweep.
//! * [`run_plan_subprocess`] — the **subprocess** backend: spawns worker
//!   processes (`campaign shard --plan <file> --shard <id> --out <file>`),
//!   bounded by a worker budget, and collects their partial artifacts.
//!   This is the local form of the multi-machine workflow — remote
//!   machines run the same `campaign shard` command by hand (or via any
//!   job scheduler) and only the partial JSON files travel.

use crate::artifact::PartialArtifact;
use crate::executor::run_campaign;
use crate::matrix::ScenarioMatrix;
use crate::plan::CampaignPlan;
use specstab_telemetry::Heartbeat;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};

/// Executes shard `shard_id` of `plan` in-process on `threads` worker
/// threads (0 = all cores) and packages the result.
///
/// # Errors
///
/// Returns a message when `shard_id` is not a shard of the plan.
pub fn execute_shard(
    plan: &CampaignPlan,
    shard_id: usize,
    threads: usize,
) -> Result<PartialArtifact, String> {
    let cells = plan.shard_cells(shard_id)?.to_vec();
    let shard = plan.shards[shard_id];
    let matrix = ScenarioMatrix::from_cells(cells);
    let config = crate::executor::CampaignConfig { threads, ..plan.config.clone() };
    let result = run_campaign(&matrix, &config);
    Ok(PartialArtifact::from_result(
        result,
        shard_id,
        shard.start,
        plan.cells.len(),
        plan.fingerprint(),
    ))
}

/// One worker-process invocation: which shard, and where its partial goes.
#[derive(Clone, Debug)]
pub struct ShardJob {
    /// Shard id to execute.
    pub shard_id: usize,
    /// Output path for the partial artifact.
    pub out: PathBuf,
    /// Event-stream path passed to the worker as `--trace` (if tracing).
    pub trace: Option<PathBuf>,
}

/// Canonical per-shard event-stream path inside a trace directory — the
/// one place the `shard-<id>.events.ndjson` naming convention lives, so
/// the orchestrator and the worker pool always agree on it.
pub fn shard_trace_path(dir: &Path, shard_id: usize) -> PathBuf {
    dir.join(format!("shard-{shard_id}.events.ndjson"))
}

/// Knobs of the subprocess worker pool (everything beyond the plan
/// itself), so [`run_plan_subprocess`] keeps a readable signature.
#[derive(Clone, Copy, Default)]
pub struct PoolOptions<'a> {
    /// Maximum concurrent worker processes (clamped to at least 1).
    pub workers: usize,
    /// `--threads` passed to each worker (clamped to at least 1; default 1
    /// — the pool already fills the machine, and per-cell determinism
    /// makes the thread choice invisible in the output).
    pub threads_per_worker: usize,
    /// When set, each worker gets `--trace` pointing at
    /// [`shard_trace_path`]`(trace_dir, id)` and writes its own
    /// `specstab-events/v1` stream there for the orchestrator to merge.
    /// Tracing never touches the partial artifacts.
    pub trace_dir: Option<&'a Path>,
    /// Advanced by each shard's cell count as its worker exits — moves are
    /// reported as 0 because partials are only parsed after the pool
    /// drains, so the heartbeat shows cells/s without a moves/s segment.
    pub progress: Option<&'a Heartbeat>,
    /// When set, workers get `--batch off` (the orchestrator's `--batch`
    /// toggle forwarded; default keeps the lane-packed engine on).
    pub batch_off: bool,
}

/// Runs every shard of the plan at `plan_path` through worker subprocesses
/// of `exe` (the `campaign` binary), bounded by [`PoolOptions::workers`],
/// writing partials into `work_dir` and returning them parsed, in shard
/// order.
///
/// # Errors
///
/// Returns the first spawn failure, non-zero worker exit (with its
/// captured stderr), or partial-artifact parse error. On failure, any
/// still-running workers are killed and reaped before returning.
pub fn run_plan_subprocess(
    exe: &Path,
    plan: &CampaignPlan,
    plan_path: &Path,
    work_dir: &Path,
    opts: PoolOptions<'_>,
) -> Result<Vec<PartialArtifact>, String> {
    let jobs: Vec<ShardJob> = plan
        .shards
        .iter()
        .map(|s| ShardJob {
            shard_id: s.id,
            out: work_dir.join(format!("shard-{}.partial.json", s.id)),
            trace: opts.trace_dir.map(|d| shard_trace_path(d, s.id)),
        })
        .collect();
    let workers = opts.workers.max(1).min(jobs.len().max(1));

    let spawn = |job: &ShardJob| -> Result<Child, String> {
        let mut cmd = Command::new(exe);
        cmd.arg("shard")
            .arg("--plan")
            .arg(plan_path)
            .arg("--shard")
            .arg(job.shard_id.to_string())
            .arg("--threads")
            .arg(opts.threads_per_worker.max(1).to_string())
            .arg("--out")
            .arg(&job.out);
        if let Some(trace) = &job.trace {
            cmd.arg("--trace").arg(trace);
        }
        if opts.batch_off {
            cmd.arg("--batch").arg("off");
        }
        cmd.stdout(Stdio::null())
            .stderr(Stdio::piped())
            .spawn()
            .map_err(|e| format!("spawning worker for shard {}: {e}", job.shard_id))
    };

    // A fixed-size pool over the job queue: fill the pool, then replace
    // each finished worker with the next queued job. On the first failure
    // (worker exit or spawn error) the remaining workers are killed and
    // reaped before returning — a dropped `Child` would keep running and
    // burn CPU for minutes on long shards.
    fn kill_all(running: &mut Vec<(usize, Child)>) {
        for (_, child) in running.iter_mut() {
            let _ = child.kill();
            let _ = child.wait();
        }
        running.clear();
    }
    let mut queue = jobs.iter();
    let mut running: Vec<(usize, Child)> = Vec::with_capacity(workers);
    let mut first_error: Option<String> = None;
    for job in queue.by_ref().take(workers) {
        match spawn(job) {
            Ok(child) => running.push((job.shard_id, child)),
            Err(e) => {
                first_error = Some(e);
                break;
            }
        }
    }
    while first_error.is_none() && !running.is_empty() {
        let mut finished: Option<usize> = None;
        for (i, (shard_id, child)) in running.iter_mut().enumerate() {
            match child.try_wait() {
                Ok(Some(status)) => {
                    if status.success() {
                        if let Some(hb) = opts.progress {
                            let s = plan.shards[*shard_id];
                            hb.add_done((s.end - s.start) as u64, 0);
                        }
                    } else {
                        let mut stderr = String::new();
                        if let Some(pipe) = child.stderr.take() {
                            use std::io::Read as _;
                            let mut pipe = pipe;
                            let _ = pipe.read_to_string(&mut stderr);
                        }
                        first_error = Some(format!(
                            "worker for shard {shard_id} exited with {status}: {}",
                            stderr.trim()
                        ));
                    }
                    finished = Some(i);
                    break;
                }
                Ok(None) => {}
                Err(e) => {
                    first_error = Some(format!("waiting on shard {shard_id}: {e}"));
                    finished = Some(i);
                    break;
                }
            }
        }
        match finished {
            Some(i) => {
                let (_, mut child) = running.swap_remove(i);
                let _ = child.wait(); // reap (try_wait already saw the exit)
                if first_error.is_none() {
                    if let Some(job) = queue.next() {
                        match spawn(job) {
                            Ok(child) => running.push((job.shard_id, child)),
                            Err(e) => first_error = Some(e),
                        }
                    }
                }
            }
            None => std::thread::sleep(std::time::Duration::from_millis(5)),
        }
    }
    if let Some(e) = first_error {
        kill_all(&mut running);
        return Err(e);
    }

    jobs.iter()
        .map(|job| {
            let text = std::fs::read_to_string(&job.out)
                .map_err(|e| format!("reading {}: {e}", job.out.display()))?;
            PartialArtifact::from_json(&text)
                .map_err(|e| format!("parsing {}: {e}", job.out.display()))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{run_campaign_sequential, CampaignConfig};
    use crate::matrix::ScenarioMatrix;

    fn matrix() -> ScenarioMatrix {
        ScenarioMatrix::builder()
            .topologies(["ring:6", "path:5"])
            .protocols(["ssme"])
            .daemons(["sync", "central-rr"])
            .fault_bursts([0, 1])
            .seeds(0..3)
            .build()
    }

    #[test]
    fn shard_execution_matches_the_full_run_slice() {
        let m = matrix();
        let cfg = CampaignConfig { max_steps: 100_000, ..CampaignConfig::default() };
        let plan = CampaignPlan::new(&m, &cfg, 3);
        let full = run_campaign_sequential(&m, &cfg);
        for shard in &plan.shards {
            let partial = execute_shard(&plan, shard.id, 1).expect("valid shard");
            assert_eq!(partial.start, shard.start);
            assert_eq!(partial.end, shard.end);
            assert_eq!(partial.total_cells, m.len());
            for (a, b) in partial.cells.iter().zip(&full.cells[shard.start..shard.end]) {
                assert_eq!(a.cell, b.cell);
                assert_eq!(a.cell_seed, b.cell_seed, "coordinate-pure seeding");
                assert_eq!(a.outcome, b.outcome);
            }
        }
        assert!(execute_shard(&plan, 99, 1).is_err());
    }

    #[test]
    fn partial_artifact_round_trips_through_json() {
        let plan = CampaignPlan::new(
            &matrix(),
            &CampaignConfig { max_steps: 100_000, ..CampaignConfig::default() },
            2,
        );
        let partial = execute_shard(&plan, 0, 1).expect("valid shard");
        let text = partial.to_json();
        let parsed = PartialArtifact::from_json(&text).expect("round trip");
        assert_eq!(parsed.to_json(), text, "lossless round trip");
        assert!(PartialArtifact::from_json(&text.replace("partial/v1", "partial/v9")).is_err());
    }
}
