//! Streaming (single-pass, O(1)-memory) statistics for campaign cells.
//!
//! Campaign grids can hold millions of runs, so per-group statistics are
//! accumulated online: count / min / max, mean and variance via Welford's
//! algorithm, and approximate quantiles via the P² sketch of Jain & Chlamtac
//! (CACM 1985). Accumulation is deterministic: feeding the same values in
//! the same order always yields the same state, which the campaign artifact
//! tests rely on.

/// P² online estimator for a single quantile.
///
/// Keeps five markers; after the first five observations every update is
/// O(1). Estimates are exact until five observations have been seen and
/// approximate afterwards (error shrinks as the stream grows).
#[derive(Clone, Debug)]
pub struct P2Quantile {
    p: f64,
    /// Marker heights (estimates of the quantile curve).
    q: [f64; 5],
    /// Marker positions, 1-based as in the paper.
    n: [f64; 5],
    /// Desired marker positions.
    np: [f64; 5],
    /// Desired position increments per observation.
    dn: [f64; 5],
    count: u64,
    /// First observations, sorted lazily until the sketch initializes.
    warmup: Vec<f64>,
}

impl P2Quantile {
    /// A sketch for the `p`-quantile, `0 < p < 1`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not strictly between 0 and 1.
    #[must_use]
    pub fn new(p: f64) -> Self {
        assert!(p > 0.0 && p < 1.0, "quantile must be in (0, 1)");
        Self {
            p,
            q: [0.0; 5],
            n: [1.0, 2.0, 3.0, 4.0, 5.0],
            np: [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0],
            dn: [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0],
            count: 0,
            warmup: Vec::with_capacity(5),
        }
    }

    /// The target quantile.
    #[must_use]
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Observations seen.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Feeds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        if self.count <= 5 {
            self.warmup.push(x);
            self.warmup.sort_by(f64::total_cmp);
            if self.count == 5 {
                self.q.copy_from_slice(&self.warmup);
            }
            return;
        }
        // Find the cell containing x, stretching the extreme markers.
        let k = if x < self.q[0] {
            self.q[0] = x;
            0
        } else if x >= self.q[4] {
            self.q[4] = x;
            3
        } else {
            // q is non-decreasing; the last i with q[i] <= x is in 0..=3.
            (0..4).rev().find(|&i| self.q[i] <= x).unwrap_or(0)
        };
        for i in (k + 1)..5 {
            self.n[i] += 1.0;
        }
        for i in 0..5 {
            self.np[i] += self.dn[i];
        }
        // Adjust interior markers toward their desired positions.
        for i in 1..4 {
            let d = self.np[i] - self.n[i];
            let right = self.n[i + 1] - self.n[i];
            let left = self.n[i - 1] - self.n[i];
            if (d >= 1.0 && right > 1.0) || (d <= -1.0 && left < -1.0) {
                let d = d.signum();
                let parabolic = self.q[i]
                    + d / (self.n[i + 1] - self.n[i - 1])
                        * ((self.n[i] - self.n[i - 1] + d) * (self.q[i + 1] - self.q[i])
                            / (self.n[i + 1] - self.n[i])
                            + (self.n[i + 1] - self.n[i] - d) * (self.q[i] - self.q[i - 1])
                                / (self.n[i] - self.n[i - 1]));
                self.q[i] = if self.q[i - 1] < parabolic && parabolic < self.q[i + 1] {
                    parabolic
                } else {
                    // Fall back to linear interpolation toward the neighbor.
                    let j = if d > 0.0 { i + 1 } else { i - 1 };
                    self.q[i] + d * (self.q[j] - self.q[i]) / (self.n[j] - self.n[i])
                };
                self.n[i] += d;
            }
        }
    }

    /// The current quantile estimate (`None` before any observation).
    #[must_use]
    pub fn estimate(&self) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        if self.count <= 5 {
            // Exact while warming up: nearest-rank on the sorted prefix.
            let rank = (self.p * self.warmup.len() as f64).ceil() as usize;
            return Some(self.warmup[rank.clamp(1, self.warmup.len()) - 1]);
        }
        Some(self.q[2])
    }
}

/// Streaming summary of one scalar metric: count, min/max, mean/variance
/// (Welford) and p50/p90/p99 sketches.
#[derive(Clone, Debug)]
pub struct OnlineStats {
    count: u64,
    min: f64,
    max: f64,
    mean: f64,
    m2: f64,
    p50: P2Quantile,
    p90: P2Quantile,
    p99: P2Quantile,
}

impl Default for OnlineStats {
    fn default() -> Self {
        Self::new()
    }
}

impl OnlineStats {
    /// An empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self {
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            mean: 0.0,
            m2: 0.0,
            p50: P2Quantile::new(0.5),
            p90: P2Quantile::new(0.9),
            p99: P2Quantile::new(0.99),
        }
    }

    /// Feeds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.p50.push(x);
        self.p90.push(x);
        self.p99.push(x);
    }

    /// Observations seen.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest observation (0 when empty).
    #[must_use]
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation (0 when empty).
    #[must_use]
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Arithmetic mean (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (0 for fewer than two observations).
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    #[must_use]
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// P² estimate of the median.
    #[must_use]
    pub fn p50(&self) -> f64 {
        self.p50.estimate().unwrap_or(0.0)
    }

    /// P² estimate of the 90th percentile.
    #[must_use]
    pub fn p90(&self) -> f64 {
        self.p90.estimate().unwrap_or(0.0)
    }

    /// P² estimate of the 99th percentile.
    #[must_use]
    pub fn p99(&self) -> f64 {
        self.p99.estimate().unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn welford_matches_naive_mean_and_variance() {
        let mut rng = StdRng::seed_from_u64(1);
        let xs: Vec<f64> = (0..500).map(|_| rng.gen_range(0.0..100.0)).collect();
        let mut s = OnlineStats::new();
        for &x in &xs {
            s.push(x);
        }
        let naive_mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let naive_var = xs.iter().map(|x| (x - naive_mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!((s.mean() - naive_mean).abs() < 1e-9);
        assert!((s.variance() - naive_var).abs() < 1e-6);
        assert_eq!(s.count(), 500);
        let exact_min = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let exact_max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(s.min(), exact_min);
        assert_eq!(s.max(), exact_max);
    }

    #[test]
    fn p2_is_exact_on_tiny_streams() {
        let mut q = P2Quantile::new(0.5);
        for x in [5.0, 1.0, 3.0] {
            q.push(x);
        }
        assert_eq!(q.estimate(), Some(3.0));
    }

    #[test]
    fn p2_tracks_quantiles_of_a_uniform_stream() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut p50 = P2Quantile::new(0.5);
        let mut p90 = P2Quantile::new(0.9);
        let mut xs = Vec::new();
        for _ in 0..5000 {
            let x = rng.gen_range(0.0..1.0);
            xs.push(x);
            p50.push(x);
            p90.push(x);
        }
        xs.sort_by(f64::total_cmp);
        let exact50 = xs[2499];
        let exact90 = xs[4499];
        assert!((p50.estimate().unwrap() - exact50).abs() < 0.03, "p50 drifted");
        assert!((p90.estimate().unwrap() - exact90).abs() < 0.03, "p90 drifted");
    }

    #[test]
    fn p2_on_integer_heavy_streams_stays_in_range() {
        // Stabilization times are small integers with many ties — the
        // estimate must stay inside the observed range.
        let mut s = OnlineStats::new();
        for i in 0..1000u32 {
            s.push(f64::from(i % 7));
        }
        assert!(s.p50() >= 0.0 && s.p50() <= 6.0);
        assert!(s.p90() >= s.p50());
        assert!(s.p99() <= 6.0);
    }

    #[test]
    fn deterministic_accumulation() {
        let feed = || {
            let mut s = OnlineStats::new();
            let mut rng = StdRng::seed_from_u64(9);
            for _ in 0..256 {
                s.push(rng.gen_range(0.0..50.0));
            }
            (s.mean(), s.variance(), s.p50(), s.p90(), s.p99())
        };
        assert_eq!(feed(), feed());
    }

    #[test]
    #[should_panic(expected = "quantile must be in")]
    fn rejects_degenerate_quantile() {
        let _ = P2Quantile::new(1.0);
    }
}
