//! Streaming (single-pass, O(1)-memory) statistics for campaign cells.
//!
//! Campaign grids can hold millions of runs, so per-group statistics are
//! accumulated online: count / min / max, mean and variance via Welford's
//! algorithm, and approximate quantiles via the P² sketch of Jain & Chlamtac
//! (CACM 1985). Accumulation is deterministic: feeding the same values in
//! the same order always yields the same state, which the campaign artifact
//! tests rely on.

/// P² online estimator for a single quantile.
///
/// Keeps five markers; after the first five observations every update is
/// O(1). Estimates are exact until five observations have been seen and
/// approximate afterwards (error shrinks as the stream grows).
#[derive(Clone, Debug)]
pub struct P2Quantile {
    p: f64,
    /// Marker heights (estimates of the quantile curve).
    q: [f64; 5],
    /// Marker positions, 1-based as in the paper.
    n: [f64; 5],
    /// Desired marker positions.
    np: [f64; 5],
    /// Desired position increments per observation.
    dn: [f64; 5],
    count: u64,
    /// First observations, sorted lazily until the sketch initializes.
    warmup: Vec<f64>,
}

impl P2Quantile {
    /// A sketch for the `p`-quantile, `0 < p < 1`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not strictly between 0 and 1.
    #[must_use]
    pub fn new(p: f64) -> Self {
        assert!(p > 0.0 && p < 1.0, "quantile must be in (0, 1)");
        Self {
            p,
            q: [0.0; 5],
            n: [1.0, 2.0, 3.0, 4.0, 5.0],
            np: [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0],
            dn: [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0],
            count: 0,
            warmup: Vec::with_capacity(5),
        }
    }

    /// The target quantile.
    #[must_use]
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Observations seen.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Feeds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        if self.count <= 5 {
            self.warmup.push(x);
            self.warmup.sort_by(f64::total_cmp);
            if self.count == 5 {
                self.q.copy_from_slice(&self.warmup);
            }
            return;
        }
        // Find the cell containing x, stretching the extreme markers.
        let k = if x < self.q[0] {
            self.q[0] = x;
            0
        } else if x >= self.q[4] {
            self.q[4] = x;
            3
        } else {
            // q is non-decreasing; the last i with q[i] <= x is in 0..=3.
            (0..4).rev().find(|&i| self.q[i] <= x).unwrap_or(0)
        };
        for i in (k + 1)..5 {
            self.n[i] += 1.0;
        }
        for i in 0..5 {
            self.np[i] += self.dn[i];
        }
        // Adjust interior markers toward their desired positions.
        for i in 1..4 {
            let d = self.np[i] - self.n[i];
            let right = self.n[i + 1] - self.n[i];
            let left = self.n[i - 1] - self.n[i];
            if (d >= 1.0 && right > 1.0) || (d <= -1.0 && left < -1.0) {
                let d = d.signum();
                let parabolic = self.q[i]
                    + d / (self.n[i + 1] - self.n[i - 1])
                        * ((self.n[i] - self.n[i - 1] + d) * (self.q[i + 1] - self.q[i])
                            / (self.n[i + 1] - self.n[i])
                            + (self.n[i + 1] - self.n[i] - d) * (self.q[i] - self.q[i - 1])
                                / (self.n[i] - self.n[i - 1]));
                self.q[i] = if self.q[i - 1] < parabolic && parabolic < self.q[i + 1] {
                    parabolic
                } else {
                    // Fall back to linear interpolation toward the neighbor.
                    let j = if d > 0.0 { i + 1 } else { i - 1 };
                    self.q[i] + d * (self.q[j] - self.q[i]) / (self.n[j] - self.n[i])
                };
                self.n[i] += d;
            }
        }
    }

    /// Merges another sketch of the **same quantile** into this one.
    ///
    /// Exactness contract (relied on by the campaign executor's per-worker
    /// aggregation):
    ///
    /// * merging into an **empty** sketch copies `other` bit-for-bit;
    /// * merging an **empty** sketch is a no-op;
    /// * if either side is still warming up (≤ 5 observations), its raw
    ///   observations are replayed into the other — exact equivalence with
    ///   sequential feeding of those values.
    ///
    /// When both sketches are initialized the merge is the standard
    /// **approximation**: each sketch is read as a piecewise-linear CDF
    /// through its five markers, the two CDFs are mixed with weights
    /// proportional to their counts, and the mixture is inverted at the
    /// five desired marker fractions. Deterministic, `O(1)`, error
    /// comparable to the P² estimation error itself.
    ///
    /// # Panics
    ///
    /// Panics if the sketches target different quantiles.
    pub fn merge(&mut self, other: &Self) {
        assert!(
            (self.p - other.p).abs() < 1e-12,
            "cannot merge sketches for different quantiles ({} vs {})",
            self.p,
            other.p
        );
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        if other.count <= 5 {
            for &x in &other.warmup {
                self.push(x);
            }
            return;
        }
        if self.count <= 5 {
            let mut merged = other.clone();
            for &x in &self.warmup {
                merged.push(x);
            }
            *self = merged;
            return;
        }
        let total = self.count + other.count;
        let p = self.p;
        let fracs = [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0];
        let mut q_new = [0.0f64; 5];
        for (i, &f) in fracs.iter().enumerate() {
            q_new[i] = inverse_mixture_cdf(self, other, f);
        }
        // Markers must stay non-decreasing even under floating-point noise.
        for i in 1..5 {
            q_new[i] = q_new[i].max(q_new[i - 1]);
        }
        self.q = q_new;
        self.count = total;
        // Reset actual and desired positions to the canonical desired
        // positions for `total` observations (the state a perfectly
        // balanced sketch would be in).
        let m = total as f64;
        self.np = [
            1.0,
            (m - 1.0) * p / 2.0 + 1.0,
            (m - 1.0) * p + 1.0,
            (m - 1.0) * (1.0 + p) / 2.0 + 1.0,
            m,
        ];
        self.n = self.np;
    }

    /// Cumulative fraction of this sketch's observations at or below `x`,
    /// reading the five markers as a piecewise-linear CDF.
    fn cdf(&self, x: f64) -> f64 {
        debug_assert!(self.count > 5, "cdf only defined for initialized sketches");
        if x <= self.q[0] {
            return if x == self.q[0] { self.frac_at(0) } else { 0.0 };
        }
        if x >= self.q[4] {
            return 1.0;
        }
        for i in 0..4 {
            if x <= self.q[i + 1] {
                let (f0, f1) = (self.frac_at(i), self.frac_at(i + 1));
                if self.q[i + 1] <= self.q[i] {
                    return f1;
                }
                return f0 + (f1 - f0) * (x - self.q[i]) / (self.q[i + 1] - self.q[i]);
            }
        }
        1.0
    }

    /// Cumulative fraction represented by marker `i`.
    fn frac_at(&self, i: usize) -> f64 {
        if self.count <= 1 {
            return 1.0;
        }
        ((self.n[i] - 1.0) / (self.count as f64 - 1.0)).clamp(0.0, 1.0)
    }

    /// The sketch's complete internal state, for lossless serialization
    /// into partial campaign artifacts. Restoring via
    /// [`P2Quantile::from_state`] yields a sketch whose every future
    /// observation and merge behaves bit-identically to the original.
    #[must_use]
    pub fn state(&self) -> P2State {
        P2State {
            p: self.p,
            q: self.q,
            n: self.n,
            np: self.np,
            count: self.count,
            warmup: self.warmup.clone(),
        }
    }

    /// Rebuilds a sketch from a [`P2State`] snapshot. The desired-increment
    /// vector `dn` is a pure function of `p` and is recomputed.
    ///
    /// # Errors
    ///
    /// Rejects states violating the sketch invariants (`p` outside `(0,1)`,
    /// warmup length inconsistent with the count).
    pub fn from_state(s: P2State) -> Result<Self, String> {
        if !(s.p > 0.0 && s.p < 1.0) {
            return Err(format!("quantile p={} outside (0, 1)", s.p));
        }
        let expect_warmup = s.count.min(5) as usize;
        if s.warmup.len() != expect_warmup {
            return Err(format!(
                "warmup length {} inconsistent with count {} (expected {expect_warmup})",
                s.warmup.len(),
                s.count
            ));
        }
        let p = s.p;
        Ok(Self {
            p,
            q: s.q,
            n: s.n,
            np: s.np,
            dn: [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0],
            count: s.count,
            warmup: s.warmup,
        })
    }

    /// The current quantile estimate (`None` before any observation).
    #[must_use]
    pub fn estimate(&self) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        if self.count <= 5 {
            // Exact while warming up: nearest-rank on the sorted prefix.
            let rank = (self.p * self.warmup.len() as f64).ceil() as usize;
            return Some(self.warmup[rank.clamp(1, self.warmup.len()) - 1]);
        }
        Some(self.q[2])
    }
}

/// Complete internal state of a [`P2Quantile`] sketch — the serializable
/// form partial campaign artifacts carry so that cross-process merges are
/// bit-identical to in-process ones.
#[derive(Clone, Debug, PartialEq)]
pub struct P2State {
    /// Target quantile.
    pub p: f64,
    /// Marker heights.
    pub q: [f64; 5],
    /// Marker positions (1-based).
    pub n: [f64; 5],
    /// Desired marker positions.
    pub np: [f64; 5],
    /// Observations seen.
    pub count: u64,
    /// Raw warmup observations (`min(count, 5)` values, sorted).
    pub warmup: Vec<f64>,
}

/// Inverts the count-weighted mixture of two initialized sketches' CDFs at
/// fraction `f`: the smallest `x` (up to linear interpolation between
/// marker breakpoints) with `(ca·Fa(x) + cb·Fb(x)) / (ca + cb) >= f`.
fn inverse_mixture_cdf(a: &P2Quantile, b: &P2Quantile, f: f64) -> f64 {
    let (wa, wb) = (a.count as f64, b.count as f64);
    let total = wa + wb;
    let mix = |x: f64| (wa * a.cdf(x) + wb * b.cdf(x)) / total;
    // The mixture is piecewise linear with breakpoints at both sketches'
    // markers: walk the sorted breakpoints and interpolate inside the
    // bracketing segment.
    let mut xs: Vec<f64> = a.q.iter().chain(b.q.iter()).copied().collect();
    xs.sort_by(f64::total_cmp);
    if f <= 0.0 {
        return xs[0];
    }
    let mut prev = xs[0];
    let mut prev_f = mix(prev);
    if prev_f >= f {
        return prev;
    }
    for &x in &xs[1..] {
        let fx = mix(x);
        if fx >= f {
            if fx <= prev_f {
                return x;
            }
            return prev + (x - prev) * (f - prev_f) / (fx - prev_f);
        }
        prev = x;
        prev_f = fx;
    }
    *xs.last().expect("breakpoints nonempty")
}

/// Streaming summary of one scalar metric: count, min/max, mean/variance
/// (Welford) and p50/p90/p99 sketches.
#[derive(Clone, Debug)]
pub struct OnlineStats {
    count: u64,
    min: f64,
    max: f64,
    mean: f64,
    m2: f64,
    p50: P2Quantile,
    p90: P2Quantile,
    p99: P2Quantile,
}

impl Default for OnlineStats {
    fn default() -> Self {
        Self::new()
    }
}

impl OnlineStats {
    /// An empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self {
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            mean: 0.0,
            m2: 0.0,
            p50: P2Quantile::new(0.5),
            p90: P2Quantile::new(0.9),
            p99: P2Quantile::new(0.99),
        }
    }

    /// Feeds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.p50.push(x);
        self.p90.push(x);
        self.p99.push(x);
    }

    /// Merges another accumulator into this one, as if `other`'s stream had
    /// been appended to `self`'s.
    ///
    /// Count, min and max merge exactly. Mean and variance merge via the
    /// parallel Welford combination (Chan et al.), numerically equivalent
    /// to sequential accumulation up to floating-point rounding — and
    /// **bit-for-bit exact when `self` is empty** (plain copy), which is
    /// the case the campaign executor's per-worker partial aggregation
    /// relies on for byte-identical artifacts. Quantile sketches merge via
    /// [`P2Quantile::merge`] (same exactness contract, approximate when
    /// both sides are initialized).
    pub fn merge(&mut self, other: &Self) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let (n1, n2) = (self.count as f64, other.count as f64);
        let delta = other.mean - self.mean;
        self.mean += delta * n2 / (n1 + n2);
        self.m2 += other.m2 + delta * delta * n1 * n2 / (n1 + n2);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.count += other.count;
        self.p50.merge(&other.p50);
        self.p90.merge(&other.p90);
        self.p99.merge(&other.p99);
    }

    /// The accumulator's complete internal state (Welford moments plus the
    /// three quantile-sketch states), for lossless serialization into
    /// partial campaign artifacts.
    #[must_use]
    pub fn state(&self) -> OnlineStatsState {
        OnlineStatsState {
            count: self.count,
            min: self.min,
            max: self.max,
            mean: self.mean,
            m2: self.m2,
            p50: self.p50.state(),
            p90: self.p90.state(),
            p99: self.p99.state(),
        }
    }

    /// Rebuilds an accumulator from an [`OnlineStatsState`] snapshot.
    ///
    /// # Errors
    ///
    /// Rejects states whose sketches are invalid, target the wrong
    /// quantiles, or whose counts disagree with the scalar count.
    pub fn from_state(s: OnlineStatsState) -> Result<Self, String> {
        let sketch = |st: P2State, want_p: f64, label: &str| -> Result<P2Quantile, String> {
            if st.p.to_bits() != want_p.to_bits() {
                return Err(format!("{label} sketch targets p={}, expected {want_p}", st.p));
            }
            if st.count != s.count {
                return Err(format!(
                    "{label} sketch count {} disagrees with scalar count {}",
                    st.count, s.count
                ));
            }
            P2Quantile::from_state(st).map_err(|e| format!("{label}: {e}"))
        };
        Ok(Self {
            count: s.count,
            min: s.min,
            max: s.max,
            mean: s.mean,
            m2: s.m2,
            p50: sketch(s.p50, 0.5, "p50")?,
            p90: sketch(s.p90, 0.9, "p90")?,
            p99: sketch(s.p99, 0.99, "p99")?,
        })
    }

    /// Observations seen.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest observation (0 when empty).
    #[must_use]
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation (0 when empty).
    #[must_use]
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Arithmetic mean (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (0 for fewer than two observations).
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    #[must_use]
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// P² estimate of the median.
    #[must_use]
    pub fn p50(&self) -> f64 {
        self.p50.estimate().unwrap_or(0.0)
    }

    /// P² estimate of the 90th percentile.
    #[must_use]
    pub fn p90(&self) -> f64 {
        self.p90.estimate().unwrap_or(0.0)
    }

    /// P² estimate of the 99th percentile.
    #[must_use]
    pub fn p99(&self) -> f64 {
        self.p99.estimate().unwrap_or(0.0)
    }
}

/// Complete internal state of an [`OnlineStats`] accumulator (see
/// [`OnlineStats::state`]). `min`/`max` may be non-finite when the
/// accumulator is empty, so serializers must preserve the exact bit
/// patterns (the campaign artifact layer stores `f64::to_bits`).
#[derive(Clone, Debug, PartialEq)]
pub struct OnlineStatsState {
    /// Observations seen.
    pub count: u64,
    /// Running minimum (`+inf` when empty).
    pub min: f64,
    /// Running maximum (`-inf` when empty).
    pub max: f64,
    /// Running mean.
    pub mean: f64,
    /// Welford's sum of squared deviations.
    pub m2: f64,
    /// Median sketch state.
    pub p50: P2State,
    /// 90th-percentile sketch state.
    pub p90: P2State,
    /// 99th-percentile sketch state.
    pub p99: P2State,
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn welford_matches_naive_mean_and_variance() {
        let mut rng = StdRng::seed_from_u64(1);
        let xs: Vec<f64> = (0..500).map(|_| rng.gen_range(0.0..100.0)).collect();
        let mut s = OnlineStats::new();
        for &x in &xs {
            s.push(x);
        }
        let naive_mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let naive_var = xs.iter().map(|x| (x - naive_mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!((s.mean() - naive_mean).abs() < 1e-9);
        assert!((s.variance() - naive_var).abs() < 1e-6);
        assert_eq!(s.count(), 500);
        let exact_min = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let exact_max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(s.min(), exact_min);
        assert_eq!(s.max(), exact_max);
    }

    #[test]
    fn p2_is_exact_on_tiny_streams() {
        let mut q = P2Quantile::new(0.5);
        for x in [5.0, 1.0, 3.0] {
            q.push(x);
        }
        assert_eq!(q.estimate(), Some(3.0));
    }

    #[test]
    fn p2_tracks_quantiles_of_a_uniform_stream() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut p50 = P2Quantile::new(0.5);
        let mut p90 = P2Quantile::new(0.9);
        let mut xs = Vec::new();
        for _ in 0..5000 {
            let x = rng.gen_range(0.0..1.0);
            xs.push(x);
            p50.push(x);
            p90.push(x);
        }
        xs.sort_by(f64::total_cmp);
        let exact50 = xs[2499];
        let exact90 = xs[4499];
        assert!((p50.estimate().unwrap() - exact50).abs() < 0.03, "p50 drifted");
        assert!((p90.estimate().unwrap() - exact90).abs() < 0.03, "p90 drifted");
    }

    #[test]
    fn p2_on_integer_heavy_streams_stays_in_range() {
        // Stabilization times are small integers with many ties — the
        // estimate must stay inside the observed range.
        let mut s = OnlineStats::new();
        for i in 0..1000u32 {
            s.push(f64::from(i % 7));
        }
        assert!(s.p50() >= 0.0 && s.p50() <= 6.0);
        assert!(s.p90() >= s.p50());
        assert!(s.p99() <= 6.0);
    }

    #[test]
    fn deterministic_accumulation() {
        let feed = || {
            let mut s = OnlineStats::new();
            let mut rng = StdRng::seed_from_u64(9);
            for _ in 0..256 {
                s.push(rng.gen_range(0.0..50.0));
            }
            (s.mean(), s.variance(), s.p50(), s.p90(), s.p99())
        };
        assert_eq!(feed(), feed());
    }

    #[test]
    #[should_panic(expected = "quantile must be in")]
    fn rejects_degenerate_quantile() {
        let _ = P2Quantile::new(1.0);
    }

    fn feed_stats(seed: u64, count: usize, lo: f64, hi: f64) -> (OnlineStats, Vec<f64>) {
        let mut s = OnlineStats::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let xs: Vec<f64> = (0..count).map(|_| rng.gen_range(lo..hi)).collect();
        for &x in &xs {
            s.push(x);
        }
        (s, xs)
    }

    #[test]
    fn merge_into_empty_is_bitwise_copy() {
        let (other, _) = feed_stats(3, 777, 0.0, 50.0);
        let mut empty = OnlineStats::new();
        empty.merge(&other);
        assert_eq!(empty.count(), other.count());
        assert_eq!(empty.mean().to_bits(), other.mean().to_bits());
        assert_eq!(empty.variance().to_bits(), other.variance().to_bits());
        assert_eq!(empty.p50().to_bits(), other.p50().to_bits());
        assert_eq!(empty.p90().to_bits(), other.p90().to_bits());
        assert_eq!(empty.p99().to_bits(), other.p99().to_bits());
        assert_eq!(empty.min(), other.min());
        assert_eq!(empty.max(), other.max());
    }

    #[test]
    fn merge_of_empty_is_noop() {
        let (mut s, _) = feed_stats(5, 321, 0.0, 10.0);
        let snapshot = (s.count(), s.mean(), s.variance(), s.p50(), s.p90(), s.p99());
        s.merge(&OnlineStats::new());
        assert_eq!(snapshot, (s.count(), s.mean(), s.variance(), s.p50(), s.p90(), s.p99()));
    }

    #[test]
    fn merged_welford_matches_naive_concatenation() {
        let (mut a, xs_a) = feed_stats(11, 400, 0.0, 100.0);
        let (b, xs_b) = feed_stats(12, 900, 20.0, 180.0);
        a.merge(&b);
        let all: Vec<f64> = xs_a.iter().chain(xs_b.iter()).copied().collect();
        let naive_mean = all.iter().sum::<f64>() / all.len() as f64;
        let naive_var =
            all.iter().map(|x| (x - naive_mean).powi(2)).sum::<f64>() / all.len() as f64;
        assert_eq!(a.count(), 1300);
        assert!((a.mean() - naive_mean).abs() < 1e-9);
        assert!((a.variance() - naive_var).abs() < 1e-6);
        assert_eq!(a.min(), all.iter().copied().fold(f64::INFINITY, f64::min));
        assert_eq!(a.max(), all.iter().copied().fold(f64::NEG_INFINITY, f64::max));
    }

    #[test]
    fn merged_quantiles_track_the_concatenated_stream() {
        let (mut a, xs_a) = feed_stats(21, 3000, 0.0, 1.0);
        let (b, xs_b) = feed_stats(22, 5000, 0.0, 1.0);
        a.merge(&b);
        let mut all: Vec<f64> = xs_a.iter().chain(xs_b.iter()).copied().collect();
        all.sort_by(f64::total_cmp);
        let exact = |p: f64| all[((all.len() as f64 * p) as usize).min(all.len() - 1)];
        assert!((a.p50() - exact(0.5)).abs() < 0.05, "p50 {} vs {}", a.p50(), exact(0.5));
        assert!((a.p90() - exact(0.9)).abs() < 0.05, "p90 {} vs {}", a.p90(), exact(0.9));
        assert!((a.p99() - exact(0.99)).abs() < 0.05, "p99 {} vs {}", a.p99(), exact(0.99));
    }

    #[test]
    fn merging_warmup_sketches_is_exact() {
        // A sketch with <= 5 observations replays its raw values: merging is
        // exactly sequential feeding.
        let mut a = P2Quantile::new(0.5);
        for x in [4.0, 1.0] {
            a.push(x);
        }
        let mut b = P2Quantile::new(0.5);
        for x in [9.0, 2.0, 7.0] {
            b.push(x);
        }
        let mut seq = P2Quantile::new(0.5);
        for x in [4.0, 1.0, 9.0, 2.0, 7.0] {
            seq.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), 5);
        assert_eq!(a.estimate(), seq.estimate());
    }

    #[test]
    fn merge_is_deterministic() {
        let build = || {
            let (mut a, _) = feed_stats(31, 600, 0.0, 9.0);
            let (b, _) = feed_stats(32, 800, 3.0, 12.0);
            a.merge(&b);
            (a.mean(), a.variance(), a.p50(), a.p90(), a.p99())
        };
        assert_eq!(build(), build());
    }

    #[test]
    #[should_panic(expected = "different quantiles")]
    fn merge_rejects_mismatched_quantiles() {
        let mut a = P2Quantile::new(0.5);
        a.merge(&P2Quantile::new(0.9));
    }

    #[test]
    fn state_round_trip_is_bitwise_and_future_pushes_agree() {
        for count in [0usize, 3, 5, 400] {
            let (s, _) = feed_stats(17, count, 0.0, 25.0);
            let mut restored = OnlineStats::from_state(s.state()).expect("valid state");
            assert_eq!(restored.state(), s.state(), "round trip at count {count}");
            // Bit-identical behavior going forward, not just equal snapshots.
            let mut original = s.clone();
            for x in [3.25, 19.0, 0.5, 24.75, 7.0, 7.0] {
                original.push(x);
                restored.push(x);
            }
            assert_eq!(restored.state(), original.state());
            let (other, _) = feed_stats(18, 77, 5.0, 30.0);
            original.merge(&other);
            restored.merge(&other);
            assert_eq!(restored.state(), original.state());
        }
    }

    #[test]
    fn from_state_rejects_corrupt_snapshots() {
        let (s, _) = feed_stats(19, 64, 0.0, 9.0);
        let mut bad_p = s.state();
        bad_p.p90.p = 0.5;
        assert!(OnlineStats::from_state(bad_p).is_err(), "wrong quantile target");
        let mut bad_count = s.state();
        bad_count.p50.count = 1;
        assert!(OnlineStats::from_state(bad_count).is_err(), "count mismatch");
        let mut bad_warmup = s.state();
        bad_warmup.p99.warmup.pop();
        assert!(OnlineStats::from_state(bad_warmup).is_err(), "warmup length");
        let mut degenerate = s.state();
        degenerate.p50.p = 1.5;
        degenerate.p90.p = 1.5;
        assert!(OnlineStats::from_state(degenerate).is_err(), "p outside (0,1)");
    }
}
