//! Scenario matrices: the grid of cells a campaign sweeps.
//!
//! A *cell* is one concrete Monte-Carlo run: a topology spec × protocol
//! spec × daemon spec × fault-burst size × seed index. The paper's
//! speculation profile (Definitions 3–4) is precisely a sweep of
//! stabilization time over the daemon axis; the remaining axes supply the
//! adversarial environment diversity of Dolev & Herman's *unsupportive
//! environments* methodology.
//!
//! Every axis is a **string spec**: topologies parse through
//! `specstab_topology::spec`, daemons through the kernel zoo (plus
//! per-protocol extensions) and protocols through the name-keyed
//! [`specstab_protocols::registry`]. A cell is therefore fully
//! describable as text — the substrate for sharding a matrix range
//! across processes and machines.

use std::fmt;

/// How a cell builds its initial configuration.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Hash)]
pub enum InitMode {
    /// A fault burst: `0` = full burst (arbitrary initial configuration,
    /// the classical worst case), `k > 0` = `k` corrupted vertices of a
    /// legitimate configuration (the speculative scenario).
    Burst(usize),
    /// The deterministic Theorem 4 adversarial witness — attains the
    /// `⌈diam/2⌉` synchronous bound exactly (SSME only).
    Witness,
}

impl InitMode {
    /// Parses `"witness"` or a burst size.
    ///
    /// # Errors
    ///
    /// Returns the malformed token.
    pub fn parse(s: &str) -> Result<Self, String> {
        if s == "witness" {
            return Ok(Self::Witness);
        }
        s.parse::<usize>()
            .map(Self::Burst)
            .map_err(|_| format!("bad fault burst '{s}' (expected a vertex count or 'witness')"))
    }
}

impl fmt::Display for InitMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Burst(k) => write!(f, "{k}"),
            Self::Witness => f.write_str("witness"),
        }
    }
}

/// One cell of the scenario grid.
#[derive(Clone, PartialEq, Eq, Debug, Hash)]
pub struct Cell {
    /// Topology spec (see `specstab_topology::spec`).
    pub topology: String,
    /// Protocol spec: a registry name
    /// (see `specstab_protocols::registry`).
    pub protocol: String,
    /// Daemon spec (see `specstab_kernel::daemon::parse_daemon_spec`).
    pub daemon: String,
    /// Initial-configuration mode (fault burst or adversarial witness).
    pub init: InitMode,
    /// Index along the seed axis.
    pub seed_index: u64,
}

impl Cell {
    /// Canonical `key` identifying the cell's scenario group (everything
    /// but the seed index).
    #[must_use]
    pub fn group_key(&self) -> String {
        format!("{}|{}|{}|f{}", self.topology, self.protocol, self.daemon, self.init)
    }

    /// The cell's deterministic base seed: a pure function of the cell
    /// coordinates and the campaign seed, independent of enumeration order
    /// and thread assignment.
    #[must_use]
    pub fn cell_seed(&self, campaign_seed: u64) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        eat(self.topology.as_bytes());
        eat(b"|");
        eat(self.protocol.as_bytes());
        eat(b"|");
        eat(self.daemon.as_bytes());
        eat(b"|");
        eat(self.init.to_string().as_bytes());
        eat(&self.seed_index.to_le_bytes());
        eat(&campaign_seed.to_le_bytes());
        // Finalize through SplitMix64 so near-identical keys decorrelate.
        let mut z = h.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Builder-enumerated cartesian grid of scenario cells.
///
/// ```
/// use specstab_campaign::matrix::ScenarioMatrix;
///
/// let m = ScenarioMatrix::builder()
///     .topologies(["ring:12", "torus:4x5"])
///     .protocols(["ssme"])
///     .daemons(["sync", "central-rand", "dist:0.5"])
///     .fault_bursts([0, 2])
///     .seeds(0..10)
///     .build();
/// assert_eq!(m.len(), 2 * 3 * 2 * 10);
/// ```
#[derive(Clone, Debug)]
pub struct ScenarioMatrix {
    cells: Vec<Cell>,
}

impl ScenarioMatrix {
    /// An empty builder.
    #[must_use]
    pub fn builder() -> ScenarioMatrixBuilder {
        ScenarioMatrixBuilder::default()
    }

    /// Wraps an explicit cell list (assumed already in the caller's
    /// canonical order). This is how the plan/shard pipeline materializes
    /// a shard's cell range after deserializing a
    /// [`crate::plan::CampaignPlan`] — a filtered matrix is not a cartesian
    /// product, so the explicit list is the only complete representation.
    #[must_use]
    pub fn from_cells(cells: Vec<Cell>) -> Self {
        Self { cells }
    }

    /// The cells in canonical (row-major) enumeration order.
    #[must_use]
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// Number of cells.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the matrix is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }
}

/// Accumulates the axes of a [`ScenarioMatrix`].
#[derive(Clone, Debug, Default)]
pub struct ScenarioMatrixBuilder {
    topologies: Vec<String>,
    protocols: Vec<String>,
    daemons: Vec<String>,
    inits: Vec<InitMode>,
    seeds: Vec<u64>,
}

impl ScenarioMatrixBuilder {
    /// Sets the topology-spec axis.
    #[must_use]
    pub fn topologies<I: IntoIterator<Item = impl Into<String>>>(mut self, specs: I) -> Self {
        self.topologies = specs.into_iter().map(Into::into).collect();
        self
    }

    /// Sets the protocol-spec axis (registry names, e.g. `"ssme"`).
    #[must_use]
    pub fn protocols<I: IntoIterator<Item = impl Into<String>>>(mut self, specs: I) -> Self {
        self.protocols = specs.into_iter().map(Into::into).collect();
        self
    }

    /// Sets the daemon-spec axis.
    #[must_use]
    pub fn daemons<I: IntoIterator<Item = impl Into<String>>>(mut self, specs: I) -> Self {
        self.daemons = specs.into_iter().map(Into::into).collect();
        self
    }

    /// Sets the fault-burst axis (`0` = full burst), replacing any
    /// previously set init modes.
    #[must_use]
    pub fn fault_bursts<I: IntoIterator<Item = usize>>(mut self, sizes: I) -> Self {
        self.inits = sizes.into_iter().map(InitMode::Burst).collect();
        self
    }

    /// Sets the init-mode axis directly (fault bursts and/or the witness).
    #[must_use]
    pub fn init_modes<I: IntoIterator<Item = InitMode>>(mut self, modes: I) -> Self {
        self.inits = modes.into_iter().collect();
        self
    }

    /// Appends the Theorem 4 adversarial-witness mode to the init axis.
    #[must_use]
    pub fn with_witness(mut self) -> Self {
        if !self.inits.contains(&InitMode::Witness) {
            self.inits.push(InitMode::Witness);
        }
        self
    }

    /// Sets the seed axis.
    #[must_use]
    pub fn seeds<I: IntoIterator<Item = u64>>(mut self, seeds: I) -> Self {
        self.seeds = seeds.into_iter().collect();
        self
    }

    /// Enumerates the cartesian product in a canonical row-major order
    /// (topology, protocol, daemon, faults, seed) — the artifact's cell
    /// order, independent of execution interleaving.
    ///
    /// Axes left empty default to a single neutral value where that makes
    /// sense (`fault_bursts -> [0]`); empty topology/protocol/daemon axes
    /// yield an empty matrix.
    #[must_use]
    pub fn build(self) -> ScenarioMatrix {
        self.build_where(|_| true)
    }

    /// [`ScenarioMatrixBuilder::build`] keeping only the cells `keep`
    /// accepts, in the same canonical enumeration order. This is how
    /// frontends drop (topology, protocol) combinations a protocol's
    /// topology-compatibility check rejects, or witness cells for
    /// protocols without a witness, while preserving cell coordinates
    /// (and therefore seeds) of the surviving cells.
    #[must_use]
    pub fn build_where(self, keep: impl Fn(&Cell) -> bool) -> ScenarioMatrix {
        let inits = if self.inits.is_empty() { vec![InitMode::Burst(0)] } else { self.inits };
        let seeds = if self.seeds.is_empty() { vec![0] } else { self.seeds };
        let mut cells = Vec::new();
        for t in &self.topologies {
            for p in &self.protocols {
                for d in &self.daemons {
                    for &init in &inits {
                        for &s in &seeds {
                            let cell = Cell {
                                topology: t.clone(),
                                protocol: p.clone(),
                                daemon: d.clone(),
                                init,
                                seed_index: s,
                            };
                            if keep(&cell) {
                                cells.push(cell);
                            }
                        }
                    }
                }
            }
        }
        ScenarioMatrix { cells }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ScenarioMatrix {
        ScenarioMatrix::builder()
            .topologies(["ring:6", "path:5"])
            .protocols(["ssme", "dijkstra"])
            .daemons(["sync", "central-rr"])
            .fault_bursts([0, 1])
            .seeds(0..3)
            .build()
    }

    #[test]
    fn cartesian_product_size_and_order() {
        let m = small();
        assert_eq!(m.len(), 2 * 2 * 2 * 2 * 3);
        // Row-major: seed varies fastest, topology slowest.
        assert_eq!(m.cells()[0].seed_index, 0);
        assert_eq!(m.cells()[1].seed_index, 1);
        assert_eq!(m.cells()[2].seed_index, 2);
        assert_eq!(m.cells()[3].init, InitMode::Burst(1));
        assert!(m.cells()[..24].iter().all(|c| c.topology == "ring:6"));
        assert!(m.cells()[24..].iter().all(|c| c.topology == "path:5"));
    }

    #[test]
    fn cell_seeds_are_coordinate_determined_and_distinct() {
        let m = small();
        let seeds: Vec<u64> = m.cells().iter().map(|c| c.cell_seed(42)).collect();
        let rebuilt: Vec<u64> = small().cells().iter().map(|c| c.cell_seed(42)).collect();
        assert_eq!(seeds, rebuilt, "same coordinates => same seeds");
        let mut unique = seeds.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), seeds.len(), "cells should get distinct seeds");
        let other: Vec<u64> = m.cells().iter().map(|c| c.cell_seed(43)).collect();
        assert_ne!(seeds, other, "campaign seed participates");
    }

    #[test]
    fn group_key_ignores_seed_axis() {
        let m = small();
        assert_eq!(m.cells()[0].group_key(), m.cells()[1].group_key());
        assert_ne!(m.cells()[0].group_key(), m.cells()[3].group_key());
    }

    #[test]
    fn empty_axes_yield_empty_matrix() {
        assert!(ScenarioMatrix::builder().build().is_empty());
    }

    #[test]
    fn init_mode_parsing_and_witness_axis() {
        assert_eq!(InitMode::parse("0"), Ok(InitMode::Burst(0)));
        assert_eq!(InitMode::parse("3"), Ok(InitMode::Burst(3)));
        assert_eq!(InitMode::parse("witness"), Ok(InitMode::Witness));
        assert!(InitMode::parse("junk").is_err());
        let m = ScenarioMatrix::builder()
            .topologies(["ring:6"])
            .protocols(["ssme"])
            .daemons(["sync"])
            .fault_bursts([0])
            .with_witness()
            .seeds(0..2)
            .build();
        assert_eq!(m.len(), 4);
        assert!(m.cells().iter().any(|c| c.init == InitMode::Witness));
    }
}
