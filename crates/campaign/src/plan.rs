//! The campaign planner: deterministic, text-serializable shard plans.
//!
//! A [`CampaignPlan`] is a **complete work description**: the canonical
//! cell enumeration (every axis is already a plain string, so cells
//! serialize losslessly), the campaign configuration, and a partition of
//! the cell range into contiguous, **group-aligned** shards with stable
//! ids. Because the plan round-trips through JSON, any process — on this
//! machine or another — can execute `campaign shard --plan p.json
//! --shard i` with nothing but the plan file and the binary, and the
//! resulting partial artifacts merge back into the exact single-process
//! artifact.
//!
//! Group alignment is the invariant that makes the merge **byte-exact**:
//! every scenario group (topology × protocol × daemon × init) lives
//! entirely inside one shard, so no group's statistics accumulator is ever
//! split across processes, and [`crate::merge::merge_partials`] only ever
//! concatenates whole groups in canonical order.

use crate::artifact::{
    cell_coord_from_json, cell_coord_json, config_from_header, config_header_fields, obj, Json,
};
use crate::executor::CampaignConfig;
use crate::matrix::{Cell, ScenarioMatrix};

/// Schema identifier of the plan format. [`CampaignPlan::from_json`]
/// rejects every other value.
pub const PLAN_SCHEMA: &str = "specstab-campaign-plan/v1";

/// One shard: a contiguous, group-aligned range of the plan's canonical
/// cell order.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ShardSpec {
    /// Stable shard id (its index in [`CampaignPlan::shards`]).
    pub id: usize,
    /// First cell index covered.
    pub start: usize,
    /// One past the last cell index covered.
    pub end: usize,
}

/// A fully planned campaign: cells, configuration, shard partition.
#[derive(Clone, Debug)]
pub struct CampaignPlan {
    /// Execution parameters shared by every shard (`threads` is a per-
    /// process choice and is not serialized).
    pub config: CampaignConfig,
    /// The canonical cell enumeration (matrix order).
    pub cells: Vec<Cell>,
    /// Contiguous group-aligned shards tiling `0..cells.len()`.
    pub shards: Vec<ShardSpec>,
}

impl CampaignPlan {
    /// Plans `matrix` into at most `shard_count` shards of roughly equal
    /// cell counts, cutting only at scenario-group boundaries.
    ///
    /// The partition is deterministic (a pure function of the matrix and
    /// `shard_count`). When the matrix has fewer groups than requested
    /// shards, every group becomes its own shard. `shard_count == 0` is
    /// treated as 1.
    #[must_use]
    pub fn new(matrix: &ScenarioMatrix, config: &CampaignConfig, shard_count: usize) -> Self {
        let cells = matrix.cells().to_vec();
        if cells.is_empty() {
            return Self { config: config.clone(), cells, shards: Vec::new() };
        }
        let boundaries = group_boundaries(&cells);
        let groups = boundaries.len() - 1;
        let want = shard_count.max(1).min(groups);
        // Balanced contiguous partition of the group list by cell count:
        // close the current shard once it reaches its fair share of the
        // remaining cells over the remaining shards.
        let mut shards = Vec::with_capacity(want);
        let mut start_group = 0usize;
        for _ in 0..want {
            let remaining_shards = want - shards.len();
            let remaining_cells = cells.len() - boundaries[start_group];
            let target = remaining_cells.div_ceil(remaining_shards);
            let start = boundaries[start_group];
            let mut end_group = start_group;
            while end_group < groups && boundaries[end_group + 1] - start < target {
                end_group += 1;
            }
            // Include the group that crosses the target (never split it),
            // and always take at least one group.
            end_group = (end_group + 1).min(groups);
            // Leave at least one group per remaining shard.
            end_group = end_group.min(groups - (remaining_shards - 1));
            end_group = end_group.max(start_group + 1);
            shards.push(ShardSpec { id: shards.len(), start, end: boundaries[end_group] });
            start_group = end_group;
        }
        debug_assert_eq!(shards.last().map_or(0, |s| s.end), cells.len());
        Self { config: config.clone(), cells, shards }
    }

    /// The plan's matrix fingerprint (see [`cells_fingerprint`]).
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        cells_fingerprint(&self.cells)
    }

    /// The cell slice of shard `id`.
    ///
    /// # Errors
    ///
    /// Returns a message when `id` is not a shard of this plan.
    pub fn shard_cells(&self, id: usize) -> Result<&[Cell], String> {
        let shard = self
            .shards
            .get(id)
            .ok_or_else(|| format!("no shard {id} (plan has {})", self.shards.len()))?;
        Ok(&self.cells[shard.start..shard.end])
    }

    /// Serializes the plan.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut header = vec![("schema", Json::Str(PLAN_SCHEMA.into()))];
        header.extend(config_header_fields(&self.config));
        header.push(("cells", Json::UInt(self.cells.len() as u64)));
        header.push(("shards", Json::UInt(self.shards.len() as u64)));
        obj(vec![
            ("plan", obj(header)),
            (
                "shards",
                Json::Arr(
                    self.shards
                        .iter()
                        .map(|s| {
                            obj(vec![
                                ("id", Json::UInt(s.id as u64)),
                                ("start", Json::UInt(s.start as u64)),
                                ("end", Json::UInt(s.end as u64)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("cells", Json::Arr(self.cells.iter().map(cell_coord_json).collect())),
        ])
        .render()
    }

    /// Parses and validates a plan.
    ///
    /// # Errors
    ///
    /// Rejects invalid JSON, any schema other than [`PLAN_SCHEMA`],
    /// missing/mistyped fields, shard ids out of order, and shard ranges
    /// that fail to tile the cell range at group boundaries.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let root = Json::parse(text)?;
        let header = root.req("plan")?;
        let schema = header.req("schema")?.as_str()?;
        if schema != PLAN_SCHEMA {
            return Err(format!("unsupported plan schema '{schema}' (expected {PLAN_SCHEMA})"));
        }
        let config = config_from_header(header)?;
        let cells = root
            .req("cells")?
            .as_arr()?
            .iter()
            .map(cell_coord_from_json)
            .collect::<Result<Vec<_>, _>>()?;
        if cells.len() != header.req("cells")?.as_u64()? as usize {
            return Err("plan header cell count disagrees with cell list".into());
        }
        let shards = root
            .req("shards")?
            .as_arr()?
            .iter()
            .map(|j| {
                Ok(ShardSpec {
                    id: j.req("id")?.as_u64()? as usize,
                    start: j.req("start")?.as_u64()? as usize,
                    end: j.req("end")?.as_u64()? as usize,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        if shards.len() != header.req("shards")?.as_u64()? as usize {
            return Err("plan header shard count disagrees with shard list".into());
        }
        let plan = Self { config, cells, shards };
        plan.validate()?;
        Ok(plan)
    }

    /// Checks the structural invariants: ids are `0..n` in order, ranges
    /// tile `0..cells.len()` without gaps or overlaps, and every cut is
    /// group-aligned.
    fn validate(&self) -> Result<(), String> {
        let boundaries = group_boundaries(&self.cells);
        let mut expected_start = 0usize;
        for (i, s) in self.shards.iter().enumerate() {
            if s.id != i {
                return Err(format!("shard ids out of order: position {i} holds id {}", s.id));
            }
            if s.start != expected_start || s.end <= s.start {
                return Err(format!(
                    "shard {i} range {}..{} does not tile the cell range (expected start {expected_start})",
                    s.start, s.end
                ));
            }
            if boundaries.binary_search(&s.end).is_err() {
                return Err(format!("shard {i} cut at {} is not group-aligned", s.end));
            }
            expected_start = s.end;
        }
        if expected_start != self.cells.len() {
            return Err(format!("shards cover {expected_start} of {} cells", self.cells.len()));
        }
        Ok(())
    }
}

/// FNV-1a fingerprint of a canonical cell list — the identity of a plan's
/// matrix. Every [`crate::artifact::PartialArtifact`] carries its plan's
/// fingerprint so [`crate::merge::merge_partials`] can reject partials
/// from different campaigns that happen to share cell counts and
/// configuration (two machines sweeping different `--topologies` lists,
/// say).
#[must_use]
pub fn cells_fingerprint(cells: &[Cell]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    for cell in cells {
        eat(cell.topology.as_bytes());
        eat(b"|");
        eat(cell.protocol.as_bytes());
        eat(b"|");
        eat(cell.daemon.as_bytes());
        eat(b"|");
        eat(cell.init.to_string().as_bytes());
        eat(&cell.seed_index.to_le_bytes());
        eat(b"\n");
    }
    h
}

/// The sorted cut points between scenario groups in a canonical cell list:
/// `0`, every index where the group key changes, and `cells.len()`.
#[must_use]
pub fn group_boundaries(cells: &[Cell]) -> Vec<usize> {
    let mut boundaries = vec![0];
    for i in 1..cells.len() {
        if cells[i].group_key() != cells[i - 1].group_key() {
            boundaries.push(i);
        }
    }
    if !cells.is_empty() {
        boundaries.push(cells.len());
    }
    boundaries
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix() -> ScenarioMatrix {
        ScenarioMatrix::builder()
            .topologies(["ring:6", "path:5"])
            .protocols(["ssme", "dijkstra"])
            .daemons(["sync", "central-rr"])
            .fault_bursts([0, 1])
            .seeds(0..3)
            .build()
    }

    #[test]
    fn plans_tile_the_matrix_at_group_boundaries() {
        let m = matrix();
        let boundaries = group_boundaries(m.cells());
        assert_eq!(boundaries.len() - 1, 16, "16 scenario groups");
        for shard_count in [1, 2, 3, 5, 7, 16, 100] {
            let plan = CampaignPlan::new(&m, &CampaignConfig::default(), shard_count);
            assert!(plan.validate().is_ok(), "{shard_count} shards: {:?}", plan.validate());
            assert!(plan.shards.len() <= shard_count.max(1));
            assert_eq!(plan.shards.first().unwrap().start, 0);
            assert_eq!(plan.shards.last().unwrap().end, m.len());
        }
        // More shards than groups: one group per shard.
        let plan = CampaignPlan::new(&m, &CampaignConfig::default(), 100);
        assert_eq!(plan.shards.len(), 16);
    }

    #[test]
    fn planning_is_deterministic_and_balanced() {
        let m = matrix();
        let a = CampaignPlan::new(&m, &CampaignConfig::default(), 4);
        let b = CampaignPlan::new(&m, &CampaignConfig::default(), 4);
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(a.shards.len(), 4);
        for s in &a.shards {
            let size = s.end - s.start;
            assert!((6..=18).contains(&size), "shard {} holds {size} cells", s.id);
        }
    }

    #[test]
    fn plan_round_trips_through_json() {
        let m = matrix();
        let cfg = CampaignConfig { seed: 99, max_steps: 1234, early_stop_margin: 5, threads: 3 };
        let plan = CampaignPlan::new(&m, &cfg, 3);
        let text = plan.to_json();
        let parsed = CampaignPlan::from_json(&text).expect("round trip");
        assert_eq!(parsed.cells, plan.cells);
        assert_eq!(parsed.shards, plan.shards);
        assert_eq!(parsed.config.seed, 99);
        assert_eq!(parsed.config.max_steps, 1234);
        assert_eq!(parsed.config.early_stop_margin, 5);
        // threads is an execution detail, not part of the work description.
        assert_eq!(parsed.config.threads, 0);
        assert_eq!(parsed.to_json(), text, "serialization is stable");
    }

    #[test]
    fn from_json_rejects_corrupt_plans() {
        let plan = CampaignPlan::new(&matrix(), &CampaignConfig::default(), 2);
        let good = plan.to_json();
        assert!(CampaignPlan::from_json(&good.replace(PLAN_SCHEMA, "nope/v9")).is_err());
        // A cut that is not group-aligned: move shard 0's end by one cell.
        let end = plan.shards[0].end;
        let bad = good
            .replace(&format!("\"end\": {end}"), &format!("\"end\": {}", end - 1))
            .replace(&format!("\"start\": {end}"), &format!("\"start\": {}", end - 1));
        assert!(CampaignPlan::from_json(&bad).is_err(), "mid-group cut must be rejected");
        assert!(CampaignPlan::from_json("{}").is_err());
    }

    #[test]
    fn shard_cells_selects_the_documented_range() {
        let plan = CampaignPlan::new(&matrix(), &CampaignConfig::default(), 3);
        let mut total = 0;
        for s in &plan.shards {
            let cells = plan.shard_cells(s.id).expect("valid id");
            assert_eq!(cells.len(), s.end - s.start);
            total += cells.len();
        }
        assert_eq!(total, plan.cells.len());
        assert!(plan.shard_cells(99).is_err());
    }
}
