//! The `campaign` CLI: sweep scenario grids in parallel and render
//! speculation profiles.
//!
//! ```text
//! campaign                                   # the default 324-cell matrix
//! campaign --topologies ring:12,torus:4x5 --daemons sync,central-rand,dist:0.5 \
//!          --faults 0,2 --seeds 12 --json out.json --csv out.csv
//! campaign --protocols ssme,dijkstra --topologies ring:9 --seeds 20 --threads 4
//! ```

use specstab_campaign::artifact::{to_csv, to_json};
use specstab_campaign::executor::{run_campaign, CampaignConfig};
use specstab_campaign::matrix::{InitMode, ProtocolKind, ScenarioMatrix};
use specstab_campaign::report::speculation_profile_table;

fn usage() -> ! {
    eprintln!(
        "usage: campaign [--topologies <spec,..>] [--protocols <ssme,dijkstra>] \
         [--daemons <spec,..>] [--faults <k|witness,..>] [--seeds <count>] [--threads <n>] \
         [--max-steps <n>] [--seed <base>] [--json <path>] [--csv <path>] [--cells-in-json]\n\
         \n\
         defaults: topologies ring:12,torus:3x4,tree:12  protocols ssme  \n\
         \x20         daemons sync,central-rand,dist:0.5  faults 0,2,witness  seeds 12\n\
         topology specs: {}\n\
         daemon specs:   sync | central-rr | central-rand | central-min | central-max \
         | central-oldest | dist:<p> | kbounded:<k>[:<p>] \
         | adversary-central | adversary-dist (greedy Γ1-disorder adversaries, ssme only)",
        specstab_topology::spec::SPEC_GRAMMAR
    );
    std::process::exit(2)
}

struct Args {
    topologies: Vec<String>,
    protocols: Vec<ProtocolKind>,
    daemons: Vec<String>,
    faults: Vec<InitMode>,
    seeds: u64,
    threads: usize,
    max_steps: usize,
    seed: u64,
    json: Option<String>,
    csv: Option<String>,
    cells_in_json: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        topologies: vec!["ring:12".into(), "torus:3x4".into(), "tree:12".into()],
        protocols: vec![ProtocolKind::Ssme],
        daemons: vec!["sync".into(), "central-rand".into(), "dist:0.5".into()],
        faults: vec![InitMode::Burst(0), InitMode::Burst(2), InitMode::Witness],
        seeds: 12,
        threads: 0,
        max_steps: 2_000_000,
        seed: 0xC0FFEE,
        json: None,
        csv: None,
        cells_in_json: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let key = argv[i].as_str();
        if key == "--help" || key == "-h" {
            usage();
        }
        if key == "--cells-in-json" {
            args.cells_in_json = true;
            i += 1;
            continue;
        }
        let Some(val) = argv.get(i + 1).cloned() else { usage() };
        match key {
            "--topologies" => args.topologies = split_list(&val),
            "--protocols" => {
                args.protocols = split_list(&val)
                    .iter()
                    .map(|p| ProtocolKind::parse(p).unwrap_or_else(|e| fail(&e)))
                    .collect();
            }
            "--daemons" => args.daemons = split_list(&val),
            "--faults" => {
                args.faults = split_list(&val)
                    .iter()
                    .map(|f| InitMode::parse(f).unwrap_or_else(|e| fail(&e)))
                    .collect();
            }
            "--seeds" => args.seeds = val.parse().unwrap_or_else(|_| usage()),
            "--threads" => args.threads = val.parse().unwrap_or_else(|_| usage()),
            "--max-steps" => args.max_steps = val.parse().unwrap_or_else(|_| usage()),
            "--seed" => args.seed = val.parse().unwrap_or_else(|_| usage()),
            "--json" => args.json = Some(val),
            "--csv" => args.csv = Some(val),
            _ => usage(),
        }
        i += 2;
    }
    if args.topologies.is_empty()
        || args.protocols.is_empty()
        || args.daemons.is_empty()
        || args.faults.is_empty()
        || args.seeds == 0
    {
        usage();
    }
    args
}

fn split_list(s: &str) -> Vec<String> {
    s.split(',').filter(|p| !p.is_empty()).map(str::to_string).collect()
}

fn fail(msg: &str) -> ! {
    eprintln!("campaign error: {msg}");
    std::process::exit(2)
}

fn main() {
    let args = parse_args();
    let matrix = ScenarioMatrix::builder()
        .topologies(args.topologies.clone())
        .protocols(args.protocols.clone())
        .daemons(args.daemons.clone())
        .init_modes(args.faults.clone())
        .seeds(0..args.seeds)
        .build();
    let config = CampaignConfig {
        threads: args.threads,
        max_steps: args.max_steps,
        seed: args.seed,
        early_stop_margin: 3,
    };
    eprintln!(
        "campaign: {} cells ({} topologies x {} protocols x {} daemons x {} bursts x {} seeds)",
        matrix.len(),
        args.topologies.len(),
        args.protocols.len(),
        args.daemons.len(),
        args.faults.len(),
        args.seeds,
    );
    let result = run_campaign(&matrix, &config);
    eprintln!(
        "campaign: done in {:?} on {} threads ({:.0} cells/s)",
        result.wall,
        result.threads_used,
        result.cells.len() as f64 / result.wall.as_secs_f64().max(1e-9),
    );

    print!("{}", speculation_profile_table(&result));

    if let Some(path) = &args.json {
        let body = to_json(&result, args.cells_in_json);
        if let Err(e) = std::fs::write(path, body) {
            fail(&format!("writing {path}: {e}"));
        }
        eprintln!("campaign: JSON artifact -> {path}");
    }
    if let Some(path) = &args.csv {
        if let Err(e) = std::fs::write(path, to_csv(&result)) {
            fail(&format!("writing {path}: {e}"));
        }
        eprintln!("campaign: CSV artifact -> {path}");
    }
    if result.total_errors() > 0 {
        eprintln!("campaign: {} cells errored", result.total_errors());
        std::process::exit(1);
    }
    if result.total_violations() > 0 {
        eprintln!("campaign: {} BOUND VIOLATIONS", result.total_violations());
        std::process::exit(1);
    }
}
