//! The `campaign` CLI: sweep scenario grids in parallel and render
//! speculation profiles — in one process, or as a plan/shard/merge
//! pipeline across processes and machines.
//!
//! ```text
//! campaign                                   # the default 648-cell matrix
//! campaign --list-protocols                  # print the protocol registry
//! campaign --protocols all                   # every registered protocol,
//!                                            # on its compatible topologies
//! campaign --topologies ring:12,torus:4x5 --daemons sync,central-rand,dist:0.5 \
//!          --faults 0,2 --seeds 12 --json out.json --csv out.csv
//!
//! # Distributed pipeline (byte-identical to the single-process run):
//! campaign plan  --seeds 12 --shards 3 --out plan.json
//! campaign shard --plan plan.json --shard 0 --out shard-0.partial.json
//! campaign shard --plan plan.json --shard 1 --out shard-1.partial.json
//! campaign shard --plan plan.json --shard 2 --out shard-2.partial.json
//! campaign merge --json out.json shard-*.partial.json
//!
//! # Same pipeline, orchestrated locally over 3 worker processes:
//! campaign run --workers 3 --seeds 12 --json out.json
//!
//! # Campaign as a service: lease shards to elastic pull-workers over HTTP
//! campaign serve --plan plan.json --listen 0.0.0.0:7177 --spool spool/ --json out.json
//! campaign work  --coordinator http://coordinator:7177     # on any machine, any count
//! ```
//!
//! Protocols are registry names (see `--list-protocols`); combinations a
//! protocol cannot run — incompatible topologies, witness injection for
//! protocols without a witness — are skipped up front with a note, so
//! `--protocols all` sweeps exactly the runnable grid.

use specstab_campaign::artifact::{to_csv, to_json, write_atomic, PartialArtifact};
use specstab_campaign::executor::{
    resolve_topology, run_campaign_with_progress, set_batching_enabled, CampaignConfig,
    CampaignResult,
};
use specstab_campaign::matrix::{Cell, InitMode, ScenarioMatrix};
use specstab_campaign::merge::merge_partials;
use specstab_campaign::plan::{group_boundaries, CampaignPlan};
use specstab_campaign::report::speculation_profile_table;
use specstab_campaign::serve::{run_worker, Coordinator, ServeOptions, WorkOptions};
use specstab_campaign::shard::{execute_shard, run_plan_subprocess, shard_trace_path, PoolOptions};
use specstab_campaign::trace::{emit_result_events, sum_shard_counters};
use specstab_protocols::registry;
use specstab_telemetry::{
    global, merge_streams, metrics_from_events, parse_ndjson, EventKind, Heartbeat, TraceWriter,
};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::path::{Path, PathBuf};

fn usage() -> ! {
    eprintln!(
        "usage: campaign [run|plan|shard|merge|serve|work] [options]\n\
         \n\
         campaign [run] [--topologies <spec,..>] [--protocols <name,..|all>] \
         [--daemons <spec,..>] [--faults <k|witness,..>] [--seeds <count>] [--threads <n>] \
         [--workers <n>] [--max-steps <n>] [--seed <base>] [--batch on|off] [--json <path>] \
         [--csv <path>] [--trace <path>] [--metrics <path>] [--cells-in-json] \
         [--list-protocols]\n\
         campaign plan  [matrix options as above] --shards <n> [--out <path>]\n\
         campaign shard --plan <path> --shard <id> [--threads <n>] [--batch on|off] \
         [--out <path>] [--trace <path>]\n\
         campaign merge [--json <path>] [--csv <path>] [--cells-in-json] [--trace <path>] \
         <partial.json>..\n\
         campaign serve --plan <path> [--listen <addr>] [--spool <dir>] [--lease-ms <n>] \
         [--stop-after-uploads <n>] [--json <path>] [--csv <path>] [--cells-in-json] \
         [--trace <path>] [--metrics <path>]\n\
         campaign work  --coordinator <http://host:port> [--worker-id <id>] [--threads <n>] \
         [--batch on|off] [--lease-only]\n\
         \n\
         run --workers N executes the plan/shard/merge pipeline over N local worker\n\
         processes (--threads then sets threads PER WORKER, default 1); artifacts are\n\
         byte-identical to the in-process run (--workers 0).\n\
         \n\
         --batch toggles the lane-packed batched group engine (default on; forwarded to\n\
         run's worker subprocesses). Sync, central-rr, central-rand and dist:<p> groups\n\
         of packed protocols route through it (the central modes up to the protocol's\n\
         measured crossover: n = 128 on the byte-lane rings, n = 32 on ssme); the\n\
         random daemons step per-lane RNG streams that replay the scalar seeds exactly.\n\
         Batched and scalar execution produce byte-identical artifacts — off exists for\n\
         A/B timing and differential testing.\n\
         \n\
         serve coordinates a plan over HTTP: pull-workers (campaign work) lease shards,\n\
         execute, and upload partials; expired leases are re-dispatched; every accepted\n\
         partial is spooled to disk (default spool: serve_spool/) so a killed coordinator\n\
         resumes without re-running completed shards. GET /status serves a live\n\
         specstab-metrics/v1 snapshot. The final artifact is byte-identical to a\n\
         single-process run of the same plan.\n\
         \n\
         --trace writes a specstab-events/v1 NDJSON event stream (with --workers N the\n\
         per-shard worker streams are merged deterministically into it); --metrics\n\
         distills the stream into a specstab-metrics/v1 runtime sidecar. Both are pure\n\
         observability: JSON/CSV artifacts stay byte-identical with tracing on.\n\
         \n\
         defaults: topologies ring:12,torus:3x4,tree:12,path:12,ring:1024,torus:32x32  \n\
         \x20         protocols ssme  \n\
         \x20         daemons sync,central-rand,dist:0.5  faults 0,2,witness  seeds 12\n\
         protocols:      {} | all  (see --list-protocols)\n\
         topology specs: {}\n\
         daemon specs:   sync | central-rr | central-rand | central-min | central-max \
         | central-oldest | dist:<p> | kbounded:<k>[:<p>] \
         | adversary-central | adversary-dist (greedy Γ1-disorder adversaries, ssme only)",
        registry::names().join(" | "),
        specstab_topology::spec::SPEC_GRAMMAR
    );
    std::process::exit(2)
}

/// Renders the protocol registry (the `--list-protocols` output).
fn registry_table() -> String {
    let mut out = String::from("registered protocols:\n");
    let rows: Vec<[String; 6]> = registry::PROTOCOLS
        .iter()
        .map(|p| {
            [
                p.name.to_string(),
                p.states.to_string(),
                p.topology.to_string(),
                if p.has_witness { "yes".into() } else { "-".into() },
                if p.batched { "yes".into() } else { "-".into() },
                p.summary.to_string(),
            ]
        })
        .collect();
    let headers = ["name", "states", "topology", "witness", "batched", "summary"];
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in &rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.chars().count());
        }
    }
    let mut line = |cells: &[String]| {
        let mut s = String::from("  ");
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                s.push_str("  ");
            }
            s.push_str(cell);
            s.extend(std::iter::repeat_n(' ', widths[i] - cell.chars().count()));
        }
        out.push_str(s.trim_end());
        out.push('\n');
    };
    line(&headers.iter().map(|h| (*h).to_string()).collect::<Vec<_>>());
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in &rows {
        line(row.as_ref());
    }
    out
}

struct Args {
    topologies: Vec<String>,
    protocols: Vec<String>,
    daemons: Vec<String>,
    faults: Vec<InitMode>,
    seeds: u64,
    threads: usize,
    workers: usize,
    shards: usize,
    max_steps: usize,
    seed: u64,
    json: Option<String>,
    csv: Option<String>,
    out: Option<String>,
    trace: Option<String>,
    metrics: Option<String>,
    cells_in_json: bool,
    batch: bool,
}

/// Parses a `--batch` value (`on`/`off`).
fn parse_batch(val: &str) -> bool {
    match val {
        "on" => true,
        "off" => false,
        _ => usage(),
    }
}

fn parse_args(argv: &[String]) -> Args {
    let mut args = Args {
        topologies: vec![
            "ring:12".into(),
            "torus:3x4".into(),
            "tree:12".into(),
            "path:12".into(),
            // Large instances: with the CSR topology + stamp-based step
            // loop these sweep at >1e7 moves/s, so thousand-vertex cells
            // are part of the default grid rather than a special request.
            "ring:1024".into(),
            "torus:32x32".into(),
        ],
        protocols: vec!["ssme".into()],
        daemons: vec!["sync".into(), "central-rand".into(), "dist:0.5".into()],
        faults: vec![InitMode::Burst(0), InitMode::Burst(2), InitMode::Witness],
        seeds: 12,
        threads: 0,
        workers: 0,
        shards: 0,
        max_steps: 2_000_000,
        seed: 0xC0FFEE,
        json: None,
        csv: None,
        out: None,
        trace: None,
        metrics: None,
        cells_in_json: false,
        batch: true,
    };
    let mut i = 0;
    while i < argv.len() {
        let key = argv[i].as_str();
        if key == "--help" || key == "-h" {
            usage();
        }
        if key == "--list-protocols" {
            print!("{}", registry_table());
            std::process::exit(0);
        }
        if key == "--cells-in-json" {
            args.cells_in_json = true;
            i += 1;
            continue;
        }
        let Some(val) = argv.get(i + 1).cloned() else { usage() };
        match key {
            "--topologies" => args.topologies = split_list(&val),
            "--protocols" => {
                args.protocols = registry::parse_protocol_list(&val).unwrap_or_else(|e| fail(&e));
            }
            "--daemons" => args.daemons = split_list(&val),
            "--faults" => {
                args.faults = split_list(&val)
                    .iter()
                    .map(|f| InitMode::parse(f).unwrap_or_else(|e| fail(&e)))
                    .collect();
            }
            "--seeds" => args.seeds = val.parse().unwrap_or_else(|_| usage()),
            "--threads" => args.threads = val.parse().unwrap_or_else(|_| usage()),
            "--workers" => args.workers = val.parse().unwrap_or_else(|_| usage()),
            "--shards" => args.shards = val.parse().unwrap_or_else(|_| usage()),
            "--max-steps" => args.max_steps = val.parse().unwrap_or_else(|_| usage()),
            "--seed" => args.seed = val.parse().unwrap_or_else(|_| usage()),
            "--batch" => args.batch = parse_batch(&val),
            "--json" => args.json = Some(val),
            "--csv" => args.csv = Some(val),
            "--out" => args.out = Some(val),
            "--trace" => args.trace = Some(val),
            "--metrics" => args.metrics = Some(val),
            _ => usage(),
        }
        i += 2;
    }
    if args.topologies.is_empty()
        || args.protocols.is_empty()
        || args.daemons.is_empty()
        || args.faults.is_empty()
        || args.seeds == 0
    {
        usage();
    }
    args
}

fn split_list(s: &str) -> Vec<String> {
    s.split(',').filter(|p| !p.is_empty()).map(str::to_string).collect()
}

fn fail(msg: &str) -> ! {
    eprintln!("campaign error: {msg}");
    std::process::exit(2)
}

/// Opens the `--trace` event stream when one was requested; every
/// subcommand funnels through here so streams carry a consistent header.
fn open_trace(path: Option<&str>, shard: Option<u64>, source: &str) -> Option<TraceWriter> {
    path.map(|p| TraceWriter::create(Path::new(p), shard, source).unwrap_or_else(|e| fail(&e)))
}

/// Emits one event into an open trace (no-op without `--trace`), dying on
/// write failure — a requested trace that silently loses events would be
/// worse than no trace.
fn trace_emit(trace: &mut Option<TraceWriter>, kind: EventKind) {
    if let Some(w) = trace.as_mut() {
        w.emit(kind).unwrap_or_else(|e| fail(&e));
    }
}

/// Flushes the trace and, when `--metrics` was also given, reads the
/// finished stream back through the strict parser and writes the
/// `specstab-metrics/v1` sidecar next to it.
fn finish_trace(trace: Option<TraceWriter>, trace_path: Option<&str>, metrics: Option<&str>) {
    let Some(w) = trace else { return };
    w.finish().unwrap_or_else(|e| fail(&e));
    let path = trace_path.expect("trace writer implies a trace path");
    eprintln!("campaign: event stream -> {path}");
    if let Some(out) = metrics {
        let text =
            std::fs::read_to_string(path).unwrap_or_else(|e| fail(&format!("reading {path}: {e}")));
        let events = parse_ndjson(&text).unwrap_or_else(|e| fail(&format!("parsing {path}: {e}")));
        if let Err(e) = std::fs::write(out, metrics_from_events(&events).render()) {
            fail(&format!("writing {out}: {e}"));
        }
        eprintln!("campaign: metrics sidecar -> {out}");
    }
}

/// Upfront compatibility filter: parses each topology once and asks the
/// registry (i.e. each harness's typed topology check) which
/// (topology, protocol) pairs can run, and which protocols support the
/// witness scenario. Returns the keep-predicate inputs plus human-readable
/// skip notes. Unparseable or disconnected topologies stay in the matrix —
/// they surface as per-cell errors exactly as before.
fn compatibility(args: &Args) -> (HashSet<(String, String)>, HashSet<String>, Vec<String>) {
    let mut incompatible: HashSet<(String, String)> = HashSet::new();
    let mut no_witness: HashSet<String> = HashSet::new();
    let mut notes = Vec::new();
    let mut graphs = HashMap::new();
    for t in &args.topologies {
        if let Ok(pair) = resolve_topology(t) {
            graphs.insert(t.clone(), pair);
        }
    }
    for p in &args.protocols {
        for t in &args.topologies {
            let Some((g, diam)) = graphs.get(t) else { continue };
            match registry::check_topology(p, g, *diam) {
                Ok(Ok(())) => {}
                Ok(Err(e)) => {
                    notes.push(format!("skipping {p} on {t}: {e}"));
                    incompatible.insert((t.clone(), p.clone()));
                }
                Err(e) => fail(&e),
            }
        }
        let wants_witness = args.faults.contains(&InitMode::Witness);
        let has_witness = registry::info(p).is_some_and(|i| i.has_witness);
        if wants_witness && !has_witness {
            notes.push(format!(
                "skipping witness init for {p}: no adversarial witness construction"
            ));
            no_witness.insert(p.clone());
        }
    }
    (incompatible, no_witness, notes)
}

/// Builds the (compatibility-filtered) matrix the argument set describes,
/// printing skip notes.
fn build_matrix(args: &Args) -> ScenarioMatrix {
    let (incompatible, no_witness, notes) = compatibility(args);
    for note in &notes {
        eprintln!("campaign: {note}");
    }
    let keep = |cell: &Cell| {
        let topo_ok = !incompatible.contains(&(cell.topology.clone(), cell.protocol.clone()));
        let witness_ok = cell.init != InitMode::Witness || !no_witness.contains(&cell.protocol);
        topo_ok && witness_ok
    };
    let matrix = ScenarioMatrix::builder()
        .topologies(args.topologies.clone())
        .protocols(args.protocols.clone())
        .daemons(args.daemons.clone())
        .init_modes(args.faults.clone())
        .seeds(0..args.seeds)
        .build_where(keep);
    if matrix.is_empty() {
        fail("no runnable cells (every combination was skipped or an axis is empty)");
    }
    eprintln!(
        "campaign: {} cells ({} topologies x {} protocols x {} daemons x {} bursts x {} seeds{})",
        matrix.len(),
        args.topologies.len(),
        args.protocols.len(),
        args.daemons.len(),
        args.faults.len(),
        args.seeds,
        if notes.is_empty() { "" } else { ", incompatible combinations skipped" },
    );
    matrix
}

fn config_of(args: &Args) -> CampaignConfig {
    CampaignConfig {
        threads: args.threads,
        max_steps: args.max_steps,
        seed: args.seed,
        early_stop_margin: 3,
    }
}

/// Renders the profile table, writes the requested artifacts, surfaces
/// cell errors/bound violations, and exits accordingly — the shared tail
/// of `campaign [run]` and `campaign merge`.
fn emit_result(result: &CampaignResult, json: Option<&str>, csv: Option<&str>, cells: bool) -> ! {
    print!("{}", speculation_profile_table(result));
    if let Some(path) = json {
        let body = to_json(result, cells);
        if let Err(e) = write_atomic(Path::new(path), &body) {
            fail(&format!("writing {path}: {e}"));
        }
        eprintln!("campaign: JSON artifact -> {path}");
    }
    if let Some(path) = csv {
        if let Err(e) = write_atomic(Path::new(path), &to_csv(result)) {
            fail(&format!("writing {path}: {e}"));
        }
        eprintln!("campaign: CSV artifact -> {path}");
    }
    if result.total_errors() > 0 {
        // Surface *what* failed, not just how often: distinct messages
        // (e.g. typed unsupported-scenario or incompatible-topology
        // errors from harnesses) with their cell counts.
        let mut by_msg: BTreeMap<&str, u64> = BTreeMap::new();
        for cell in &result.cells {
            if let Err(e) = &cell.outcome {
                *by_msg.entry(e.as_str()).or_default() += 1;
            }
        }
        eprintln!("campaign: {} cells errored:", result.total_errors());
        for (msg, count) in by_msg {
            eprintln!("campaign:   {count} x {msg}");
        }
        std::process::exit(1);
    }
    if result.total_violations() > 0 {
        eprintln!("campaign: {} BOUND VIOLATIONS", result.total_violations());
        std::process::exit(1);
    }
    std::process::exit(0);
}

/// `campaign [run]`: the default sweep — in-process, or orchestrated over
/// `--workers N` local shard subprocesses (byte-identical either way).
fn cmd_run(argv: &[String]) -> ! {
    let args = parse_args(argv);
    set_batching_enabled(args.batch);
    if args.metrics.is_some() && args.trace.is_none() {
        fail("--metrics requires --trace (the sidecar is distilled from the event stream)");
    }
    let matrix = build_matrix(&args);
    let config = config_of(&args);
    let group_count = group_boundaries(matrix.cells()).len().saturating_sub(1) as u64;
    let mut trace = open_trace(args.trace.as_deref(), None, "run");
    trace_emit(
        &mut trace,
        EventKind::CampaignStart {
            cells: matrix.len() as u64,
            groups: group_count,
            seed: config.seed,
            max_steps: config.max_steps as u64,
        },
    );
    if args.workers == 0 {
        let before = global().snapshot();
        let heartbeat = Heartbeat::new(matrix.len() as u64);
        let result = run_campaign_with_progress(&matrix, &config, Some(&heartbeat));
        heartbeat.finish();
        let counters = global().snapshot().delta(&before);
        eprintln!(
            "campaign: done in {:?} on {} threads ({:.0} cells/s)",
            result.wall,
            result.threads_used,
            result.cells.len() as f64 / result.wall.as_secs_f64().max(1e-9),
        );
        if let Some(w) = trace.as_mut() {
            emit_result_events(w, &result.cells, &result.groups).unwrap_or_else(|e| fail(&e));
        }
        trace_emit(
            &mut trace,
            EventKind::CampaignEnd {
                cells: result.cells.len() as u64,
                errors: result.total_errors(),
                violations: result.total_violations(),
                wall_us: u64::try_from(result.wall.as_micros()).unwrap_or(u64::MAX),
                counters,
            },
        );
        finish_trace(trace, args.trace.as_deref(), args.metrics.as_deref());
        emit_result(&result, args.json.as_deref(), args.csv.as_deref(), args.cells_in_json);
    }
    // Subprocess backend: plan into ~4 group-aligned shards per worker
    // (over-decomposition keeps stragglers from idling the pool; any
    // group-aligned split merges to the same bytes).
    let shard_count =
        if args.shards > 0 { args.shards } else { args.workers.saturating_mul(4).max(1) };
    let plan = CampaignPlan::new(&matrix, &config, shard_count);
    let exe =
        std::env::current_exe().unwrap_or_else(|e| fail(&format!("locating campaign binary: {e}")));
    let work_dir = std::env::temp_dir().join(format!("specstab-campaign-{}", std::process::id()));
    if let Err(e) = std::fs::create_dir_all(&work_dir) {
        fail(&format!("creating {}: {e}", work_dir.display()));
    }
    let plan_path = work_dir.join("plan.json");
    if let Err(e) = std::fs::write(&plan_path, plan.to_json()) {
        fail(&format!("writing {}: {e}", plan_path.display()));
    }
    let started = std::time::Instant::now();
    eprintln!(
        "campaign: {} shards over {} worker processes (plan {})",
        plan.shards.len(),
        args.workers,
        plan_path.display()
    );
    trace_emit(
        &mut trace,
        EventKind::Plan { cells: plan.cells.len() as u64, shards: plan.shards.len() as u64 },
    );
    // --threads here means threads *per worker process* (default 1: the
    // worker pool already fills the machine). The work dir is removed on
    // the failure paths too — partial artifacts of a failed run would
    // otherwise pile up in the temp dir.
    let heartbeat = Heartbeat::new(plan.cells.len() as u64);
    let partials = run_plan_subprocess(
        &exe,
        &plan,
        &plan_path,
        &work_dir,
        PoolOptions {
            workers: args.workers,
            threads_per_worker: args.threads.max(1),
            trace_dir: trace.as_ref().map(|_| work_dir.as_path()),
            progress: Some(&heartbeat),
            batch_off: !args.batch,
        },
    );
    heartbeat.finish();
    // Splice the worker streams into the orchestrator trace — read back
    // while the work dir still exists, interleaved deterministically by
    // (shard, seq) regardless of worker completion order.
    let mut shard_counters = specstab_telemetry::CounterSnapshot::default();
    if let (Some(w), Ok(_)) = (trace.as_mut(), &partials) {
        let streams: Vec<_> = plan
            .shards
            .iter()
            .map(|s| {
                let p = shard_trace_path(&work_dir, s.id);
                let text = std::fs::read_to_string(&p)
                    .unwrap_or_else(|e| fail(&format!("reading {}: {e}", p.display())));
                parse_ndjson(&text)
                    .unwrap_or_else(|e| fail(&format!("parsing {}: {e}", p.display())))
            })
            .collect();
        let merged = merge_streams(streams);
        shard_counters = sum_shard_counters(&merged);
        for event in &merged {
            w.emit_raw(event).unwrap_or_else(|e| fail(&e));
        }
    }
    let outcome = partials.and_then(|ps| {
        trace_emit(&mut trace, EventKind::MergeStart { partials: ps.len() as u64 });
        merge_partials(ps)
    });
    let _ = std::fs::remove_dir_all(&work_dir);
    let result = outcome.unwrap_or_else(|e| fail(&e));
    trace_emit(
        &mut trace,
        EventKind::MergeEnd {
            cells: result.cells.len() as u64,
            groups: result.groups.len() as u64,
        },
    );
    trace_emit(
        &mut trace,
        EventKind::CampaignEnd {
            cells: result.cells.len() as u64,
            errors: result.total_errors(),
            violations: result.total_violations(),
            wall_us: u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX),
            counters: shard_counters,
        },
    );
    finish_trace(trace, args.trace.as_deref(), args.metrics.as_deref());
    eprintln!(
        "campaign: done in {:?} on {} workers ({:.0} cells/s)",
        started.elapsed(),
        args.workers,
        result.cells.len() as f64 / started.elapsed().as_secs_f64().max(1e-9),
    );
    emit_result(&result, args.json.as_deref(), args.csv.as_deref(), args.cells_in_json);
}

/// `campaign plan`: enumerate the matrix and write the shard plan.
fn cmd_plan(argv: &[String]) -> ! {
    let args = parse_args(argv);
    let matrix = build_matrix(&args);
    let shard_count = if args.shards > 0 { args.shards } else { 4 };
    let plan = CampaignPlan::new(&matrix, &config_of(&args), shard_count);
    let path = args.out.as_deref().unwrap_or("campaign_plan.json");
    if let Err(e) = std::fs::write(path, plan.to_json()) {
        fail(&format!("writing {path}: {e}"));
    }
    let groups = group_boundaries(&plan.cells).len().saturating_sub(1);
    let mut trace = open_trace(args.trace.as_deref(), None, "plan");
    trace_emit(
        &mut trace,
        EventKind::CampaignStart {
            cells: plan.cells.len() as u64,
            groups: groups as u64,
            seed: plan.config.seed,
            max_steps: plan.config.max_steps as u64,
        },
    );
    trace_emit(
        &mut trace,
        EventKind::Plan { cells: plan.cells.len() as u64, shards: plan.shards.len() as u64 },
    );
    finish_trace(trace, args.trace.as_deref(), None);
    eprintln!(
        "campaign: plan -> {path} ({} cells, {groups} groups, {} shards)",
        plan.cells.len(),
        plan.shards.len()
    );
    for s in &plan.shards {
        eprintln!("campaign:   shard {}: cells {}..{} ({})", s.id, s.start, s.end, s.end - s.start);
    }
    std::process::exit(0);
}

/// `campaign shard`: execute one shard of a plan file into a partial
/// artifact. Cell errors are recorded in the partial (the merge decides
/// the final exit code), so a shard run only fails on I/O or plan
/// problems.
fn cmd_shard(argv: &[String]) -> ! {
    let mut plan_path: Option<String> = None;
    let mut shard_id: Option<usize> = None;
    let mut threads = 1usize;
    let mut out: Option<String> = None;
    let mut trace_path: Option<String> = None;
    let mut i = 0;
    while i < argv.len() {
        let Some(val) = argv.get(i + 1).cloned() else { usage() };
        match argv[i].as_str() {
            "--plan" => plan_path = Some(val),
            "--shard" => shard_id = Some(val.parse().unwrap_or_else(|_| usage())),
            "--threads" => threads = val.parse().unwrap_or_else(|_| usage()),
            "--batch" => set_batching_enabled(parse_batch(&val)),
            "--out" => out = Some(val),
            "--trace" => trace_path = Some(val),
            _ => usage(),
        }
        i += 2;
    }
    let (Some(plan_path), Some(shard_id)) = (plan_path, shard_id) else { usage() };
    let text = std::fs::read_to_string(&plan_path)
        .unwrap_or_else(|e| fail(&format!("reading {plan_path}: {e}")));
    let plan = CampaignPlan::from_json(&text)
        .unwrap_or_else(|e| fail(&format!("parsing {plan_path}: {e}")));
    let mut trace = open_trace(trace_path.as_deref(), Some(shard_id as u64), "shard");
    let started = std::time::Instant::now();
    let before = global().snapshot();
    if let Some(shard) = plan.shards.get(shard_id) {
        trace_emit(
            &mut trace,
            EventKind::ShardStart { start: shard.start as u64, end: shard.end as u64 },
        );
    }
    let partial = execute_shard(&plan, shard_id, threads).unwrap_or_else(|e| fail(&e));
    if let Some(w) = trace.as_mut() {
        emit_result_events(w, &partial.cells, &partial.groups).unwrap_or_else(|e| fail(&e));
    }
    trace_emit(
        &mut trace,
        EventKind::ShardEnd {
            cells: partial.cells.len() as u64,
            wall_us: u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX),
            counters: global().snapshot().delta(&before),
        },
    );
    finish_trace(trace, trace_path.as_deref(), None);
    let out = out.unwrap_or_else(|| format!("shard-{shard_id}.partial.json"));
    // Atomic write: a shard worker killed mid-write must never leave a
    // truncated partial for a later merge or coordinator spool resume.
    if let Err(e) = write_atomic(Path::new(&out), &partial.to_json()) {
        fail(&format!("writing {out}: {e}"));
    }
    eprintln!(
        "campaign: shard {shard_id} (cells {}..{}) done in {:?} -> {out}",
        partial.start,
        partial.end,
        started.elapsed()
    );
    std::process::exit(0);
}

/// `campaign serve`: the networked coordinator — lease shards to
/// pull-workers over HTTP, fold uploads incrementally, spool checkpoints,
/// write the final artifact when the tiling completes.
fn cmd_serve(argv: &[String]) -> ! {
    let mut plan_path: Option<String> = None;
    let mut listen = String::from("127.0.0.1:7177");
    let mut options = ServeOptions::default();
    let mut json: Option<String> = None;
    let mut csv: Option<String> = None;
    let mut cells_in_json = false;
    let mut trace_path: Option<String> = None;
    let mut metrics: Option<String> = None;
    let mut i = 0;
    while i < argv.len() {
        if argv[i] == "--cells-in-json" {
            cells_in_json = true;
            i += 1;
            continue;
        }
        let Some(val) = argv.get(i + 1).cloned() else { usage() };
        match argv[i].as_str() {
            "--plan" => plan_path = Some(val),
            "--listen" => listen = val,
            "--spool" => options.spool = PathBuf::from(val),
            "--lease-ms" => options.lease_ms = val.parse().unwrap_or_else(|_| usage()),
            "--stop-after-uploads" => {
                options.stop_after_uploads = Some(val.parse().unwrap_or_else(|_| usage()));
            }
            "--json" => json = Some(val),
            "--csv" => csv = Some(val),
            "--trace" => trace_path = Some(val),
            "--metrics" => metrics = Some(val),
            _ => usage(),
        }
        i += 2;
    }
    let Some(plan_path) = plan_path else { usage() };
    if metrics.is_some() && trace_path.is_none() {
        fail("--metrics requires --trace (the sidecar is distilled from the event stream)");
    }
    options.trace_path = trace_path.as_deref().map(PathBuf::from);
    let text = std::fs::read_to_string(&plan_path)
        .unwrap_or_else(|e| fail(&format!("reading {plan_path}: {e}")));
    let plan = CampaignPlan::from_json(&text)
        .unwrap_or_else(|e| fail(&format!("parsing {plan_path}: {e}")));
    let coordinator = Coordinator::bind(plan, &listen, options).unwrap_or_else(|e| fail(&e));
    let outcome = coordinator.run().unwrap_or_else(|e| fail(&e));
    let Some(result) = outcome else {
        eprintln!("campaign: serve stopped before completion (fault injection)");
        std::process::exit(3);
    };
    if let (Some(trace), Some(out)) = (trace_path.as_deref(), metrics.as_deref()) {
        let text = std::fs::read_to_string(trace)
            .unwrap_or_else(|e| fail(&format!("reading {trace}: {e}")));
        let events = parse_ndjson(&text).unwrap_or_else(|e| fail(&format!("parsing {trace}: {e}")));
        if let Err(e) = std::fs::write(out, metrics_from_events(&events).render()) {
            fail(&format!("writing {out}: {e}"));
        }
        eprintln!("campaign: metrics sidecar -> {out}");
    }
    emit_result(&result, json.as_deref(), csv.as_deref(), cells_in_json);
}

/// `campaign work`: the elastic pull-worker loop against a coordinator.
fn cmd_work(argv: &[String]) -> ! {
    let mut opts = WorkOptions {
        coordinator: String::new(),
        worker_id: format!("worker-{}", std::process::id()),
        threads: 1,
        lease_only: false,
    };
    let mut i = 0;
    while i < argv.len() {
        if argv[i] == "--lease-only" {
            opts.lease_only = true;
            i += 1;
            continue;
        }
        let Some(val) = argv.get(i + 1).cloned() else { usage() };
        match argv[i].as_str() {
            "--coordinator" => opts.coordinator = val,
            "--worker-id" => opts.worker_id = val,
            "--threads" => opts.threads = val.parse().unwrap_or_else(|_| usage()),
            "--batch" => set_batching_enabled(parse_batch(&val)),
            _ => usage(),
        }
        i += 2;
    }
    if opts.coordinator.is_empty() {
        usage();
    }
    let summary = run_worker(&opts).unwrap_or_else(|e| fail(&e));
    eprintln!(
        "campaign: worker {} done ({} executed, {} duplicates, {} abandoned)",
        opts.worker_id, summary.executed, summary.duplicates, summary.abandoned
    );
    std::process::exit(0);
}

/// `campaign merge`: fold partial artifacts into the final artifact.
fn cmd_merge(argv: &[String]) -> ! {
    let mut json: Option<String> = None;
    let mut csv: Option<String> = None;
    let mut trace_path: Option<String> = None;
    let mut cells_in_json = false;
    let mut inputs: Vec<PathBuf> = Vec::new();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--cells-in-json" => {
                cells_in_json = true;
                i += 1;
            }
            "--json" | "--csv" | "--trace" => {
                let Some(val) = argv.get(i + 1).cloned() else { usage() };
                match argv[i].as_str() {
                    "--json" => json = Some(val),
                    "--csv" => csv = Some(val),
                    _ => trace_path = Some(val),
                }
                i += 2;
            }
            flag if flag.starts_with("--") => usage(),
            path => {
                inputs.push(PathBuf::from(path));
                i += 1;
            }
        }
    }
    if inputs.is_empty() {
        fail("merge needs at least one partial artifact");
    }
    let partials: Vec<PartialArtifact> = inputs
        .iter()
        .map(|p| {
            let text = std::fs::read_to_string(p)
                .unwrap_or_else(|e| fail(&format!("reading {}: {e}", p.display())));
            PartialArtifact::from_json(&text)
                .unwrap_or_else(|e| fail(&format!("parsing {}: {e}", p.display())))
        })
        .collect();
    eprintln!("campaign: merging {} partials", partials.len());
    let mut trace = open_trace(trace_path.as_deref(), None, "merge");
    trace_emit(&mut trace, EventKind::MergeStart { partials: partials.len() as u64 });
    let result = merge_partials(partials).unwrap_or_else(|e| fail(&e));
    trace_emit(
        &mut trace,
        EventKind::MergeEnd {
            cells: result.cells.len() as u64,
            groups: result.groups.len() as u64,
        },
    );
    finish_trace(trace, trace_path.as_deref(), None);
    emit_result(&result, json.as_deref(), csv.as_deref(), cells_in_json);
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match argv.first().map(String::as_str) {
        Some("plan") => cmd_plan(&argv[1..]),
        Some("shard") => cmd_shard(&argv[1..]),
        Some("merge") => cmd_merge(&argv[1..]),
        Some("serve") => cmd_serve(&argv[1..]),
        Some("work") => cmd_work(&argv[1..]),
        Some("run") => cmd_run(&argv[1..]),
        // Bare flags: the historical single-process interface (`campaign
        // --topologies ...`), equivalent to `campaign run`.
        _ => cmd_run(&argv),
    }
}
