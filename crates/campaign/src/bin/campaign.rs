//! The `campaign` CLI: sweep scenario grids in parallel and render
//! speculation profiles.
//!
//! ```text
//! campaign                                   # the default 648-cell matrix
//! campaign --list-protocols                  # print the protocol registry
//! campaign --protocols all                   # every registered protocol,
//!                                            # on its compatible topologies
//! campaign --topologies ring:12,torus:4x5 --daemons sync,central-rand,dist:0.5 \
//!          --faults 0,2 --seeds 12 --json out.json --csv out.csv
//! campaign --protocols ssme,bfs,matching --topologies ring:9 --seeds 20 --threads 4
//! ```
//!
//! Protocols are registry names (see `--list-protocols`); combinations a
//! protocol cannot run — incompatible topologies, witness injection for
//! protocols without a witness — are skipped up front with a note, so
//! `--protocols all` sweeps exactly the runnable grid.

use specstab_campaign::artifact::{to_csv, to_json};
use specstab_campaign::executor::{resolve_topology, run_campaign, CampaignConfig};
use specstab_campaign::matrix::{Cell, InitMode, ScenarioMatrix};
use specstab_campaign::report::speculation_profile_table;
use specstab_protocols::registry;
use std::collections::{BTreeMap, HashMap, HashSet};

fn usage() -> ! {
    eprintln!(
        "usage: campaign [--topologies <spec,..>] [--protocols <name,..|all>] \
         [--daemons <spec,..>] [--faults <k|witness,..>] [--seeds <count>] [--threads <n>] \
         [--max-steps <n>] [--seed <base>] [--json <path>] [--csv <path>] [--cells-in-json] \
         [--list-protocols]\n\
         \n\
         defaults: topologies ring:12,torus:3x4,tree:12,path:12,ring:1024,torus:32x32  \n\
         \x20         protocols ssme  \n\
         \x20         daemons sync,central-rand,dist:0.5  faults 0,2,witness  seeds 12\n\
         protocols:      {} | all  (see --list-protocols)\n\
         topology specs: {}\n\
         daemon specs:   sync | central-rr | central-rand | central-min | central-max \
         | central-oldest | dist:<p> | kbounded:<k>[:<p>] \
         | adversary-central | adversary-dist (greedy Γ1-disorder adversaries, ssme only)",
        registry::names().join(" | "),
        specstab_topology::spec::SPEC_GRAMMAR
    );
    std::process::exit(2)
}

/// Renders the protocol registry (the `--list-protocols` output).
fn registry_table() -> String {
    let mut out = String::from("registered protocols:\n");
    let rows: Vec<[String; 5]> = registry::PROTOCOLS
        .iter()
        .map(|p| {
            [
                p.name.to_string(),
                p.states.to_string(),
                p.topology.to_string(),
                if p.has_witness { "yes".into() } else { "-".into() },
                p.summary.to_string(),
            ]
        })
        .collect();
    let headers = ["name", "states", "topology", "witness", "summary"];
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in &rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.chars().count());
        }
    }
    let mut line = |cells: &[String]| {
        let mut s = String::from("  ");
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                s.push_str("  ");
            }
            s.push_str(cell);
            s.extend(std::iter::repeat_n(' ', widths[i] - cell.chars().count()));
        }
        out.push_str(s.trim_end());
        out.push('\n');
    };
    line(&headers.iter().map(|h| (*h).to_string()).collect::<Vec<_>>());
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in &rows {
        line(row.as_ref());
    }
    out
}

struct Args {
    topologies: Vec<String>,
    protocols: Vec<String>,
    daemons: Vec<String>,
    faults: Vec<InitMode>,
    seeds: u64,
    threads: usize,
    max_steps: usize,
    seed: u64,
    json: Option<String>,
    csv: Option<String>,
    cells_in_json: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        topologies: vec![
            "ring:12".into(),
            "torus:3x4".into(),
            "tree:12".into(),
            "path:12".into(),
            // Large instances: with the CSR topology + stamp-based step
            // loop these sweep at >1e7 moves/s, so thousand-vertex cells
            // are part of the default grid rather than a special request.
            "ring:1024".into(),
            "torus:32x32".into(),
        ],
        protocols: vec!["ssme".into()],
        daemons: vec!["sync".into(), "central-rand".into(), "dist:0.5".into()],
        faults: vec![InitMode::Burst(0), InitMode::Burst(2), InitMode::Witness],
        seeds: 12,
        threads: 0,
        max_steps: 2_000_000,
        seed: 0xC0FFEE,
        json: None,
        csv: None,
        cells_in_json: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let key = argv[i].as_str();
        if key == "--help" || key == "-h" {
            usage();
        }
        if key == "--list-protocols" {
            print!("{}", registry_table());
            std::process::exit(0);
        }
        if key == "--cells-in-json" {
            args.cells_in_json = true;
            i += 1;
            continue;
        }
        let Some(val) = argv.get(i + 1).cloned() else { usage() };
        match key {
            "--topologies" => args.topologies = split_list(&val),
            "--protocols" => {
                args.protocols = registry::parse_protocol_list(&val).unwrap_or_else(|e| fail(&e));
            }
            "--daemons" => args.daemons = split_list(&val),
            "--faults" => {
                args.faults = split_list(&val)
                    .iter()
                    .map(|f| InitMode::parse(f).unwrap_or_else(|e| fail(&e)))
                    .collect();
            }
            "--seeds" => args.seeds = val.parse().unwrap_or_else(|_| usage()),
            "--threads" => args.threads = val.parse().unwrap_or_else(|_| usage()),
            "--max-steps" => args.max_steps = val.parse().unwrap_or_else(|_| usage()),
            "--seed" => args.seed = val.parse().unwrap_or_else(|_| usage()),
            "--json" => args.json = Some(val),
            "--csv" => args.csv = Some(val),
            _ => usage(),
        }
        i += 2;
    }
    if args.topologies.is_empty()
        || args.protocols.is_empty()
        || args.daemons.is_empty()
        || args.faults.is_empty()
        || args.seeds == 0
    {
        usage();
    }
    args
}

fn split_list(s: &str) -> Vec<String> {
    s.split(',').filter(|p| !p.is_empty()).map(str::to_string).collect()
}

fn fail(msg: &str) -> ! {
    eprintln!("campaign error: {msg}");
    std::process::exit(2)
}

/// Upfront compatibility filter: parses each topology once and asks the
/// registry (i.e. each harness's typed topology check) which
/// (topology, protocol) pairs can run, and which protocols support the
/// witness scenario. Returns the keep-predicate inputs plus human-readable
/// skip notes. Unparseable or disconnected topologies stay in the matrix —
/// they surface as per-cell errors exactly as before.
fn compatibility(args: &Args) -> (HashSet<(String, String)>, HashSet<String>, Vec<String>) {
    let mut incompatible: HashSet<(String, String)> = HashSet::new();
    let mut no_witness: HashSet<String> = HashSet::new();
    let mut notes = Vec::new();
    let mut graphs = HashMap::new();
    for t in &args.topologies {
        if let Ok(pair) = resolve_topology(t) {
            graphs.insert(t.clone(), pair);
        }
    }
    for p in &args.protocols {
        for t in &args.topologies {
            let Some((g, diam)) = graphs.get(t) else { continue };
            match registry::check_topology(p, g, *diam) {
                Ok(Ok(())) => {}
                Ok(Err(e)) => {
                    notes.push(format!("skipping {p} on {t}: {e}"));
                    incompatible.insert((t.clone(), p.clone()));
                }
                Err(e) => fail(&e),
            }
        }
        let wants_witness = args.faults.contains(&InitMode::Witness);
        let has_witness = registry::info(p).is_some_and(|i| i.has_witness);
        if wants_witness && !has_witness {
            notes.push(format!(
                "skipping witness init for {p}: no adversarial witness construction"
            ));
            no_witness.insert(p.clone());
        }
    }
    (incompatible, no_witness, notes)
}

fn main() {
    let args = parse_args();
    let (incompatible, no_witness, notes) = compatibility(&args);
    for note in &notes {
        eprintln!("campaign: {note}");
    }
    let keep = |cell: &Cell| {
        let topo_ok = !incompatible.contains(&(cell.topology.clone(), cell.protocol.clone()));
        let witness_ok = cell.init != InitMode::Witness || !no_witness.contains(&cell.protocol);
        topo_ok && witness_ok
    };
    let matrix = ScenarioMatrix::builder()
        .topologies(args.topologies.clone())
        .protocols(args.protocols.clone())
        .daemons(args.daemons.clone())
        .init_modes(args.faults.clone())
        .seeds(0..args.seeds)
        .build_where(keep);
    if matrix.is_empty() {
        fail("no runnable cells (every combination was skipped or an axis is empty)");
    }
    let config = CampaignConfig {
        threads: args.threads,
        max_steps: args.max_steps,
        seed: args.seed,
        early_stop_margin: 3,
    };
    eprintln!(
        "campaign: {} cells ({} topologies x {} protocols x {} daemons x {} bursts x {} seeds{})",
        matrix.len(),
        args.topologies.len(),
        args.protocols.len(),
        args.daemons.len(),
        args.faults.len(),
        args.seeds,
        if notes.is_empty() { "" } else { ", incompatible combinations skipped" },
    );
    let result = run_campaign(&matrix, &config);
    eprintln!(
        "campaign: done in {:?} on {} threads ({:.0} cells/s)",
        result.wall,
        result.threads_used,
        result.cells.len() as f64 / result.wall.as_secs_f64().max(1e-9),
    );

    print!("{}", speculation_profile_table(&result));

    if let Some(path) = &args.json {
        let body = to_json(&result, args.cells_in_json);
        if let Err(e) = std::fs::write(path, body) {
            fail(&format!("writing {path}: {e}"));
        }
        eprintln!("campaign: JSON artifact -> {path}");
    }
    if let Some(path) = &args.csv {
        if let Err(e) = std::fs::write(path, to_csv(&result)) {
            fail(&format!("writing {path}: {e}"));
        }
        eprintln!("campaign: CSV artifact -> {path}");
    }
    if result.total_errors() > 0 {
        // Surface *what* failed, not just how often: distinct messages
        // (e.g. typed unsupported-scenario or incompatible-topology
        // errors from harnesses) with their cell counts.
        let mut by_msg: BTreeMap<&str, u64> = BTreeMap::new();
        for cell in &result.cells {
            if let Err(e) = &cell.outcome {
                *by_msg.entry(e.as_str()).or_default() += 1;
            }
        }
        eprintln!("campaign: {} cells errored:", result.total_errors());
        for (msg, count) in by_msg {
            eprintln!("campaign:   {count} x {msg}");
        }
        std::process::exit(1);
    }
    if result.total_violations() > 0 {
        eprintln!("campaign: {} BOUND VIOLATIONS", result.total_violations());
        std::process::exit(1);
    }
}
