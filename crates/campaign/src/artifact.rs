//! Campaign artifacts: deterministic JSON and CSV writers.
//!
//! No serde in this offline environment, so the writers are hand-rolled on
//! a tiny ordered JSON value type. Determinism is a hard requirement
//! (tested): serializing the same [`CampaignResult`] yields byte-identical
//! output regardless of thread count, machine or run — which is why wall
//! clock and host facts never enter the artifact.

use crate::executor::{CampaignResult, CellResult, GroupSummary};
use crate::stats::OnlineStats;
use std::fmt::Write as _;

/// A JSON value with insertion-ordered objects.
#[derive(Clone, Debug)]
pub enum Json {
    /// `null`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Integer (serialized without decimal point).
    Int(i64),
    /// Unsigned integer.
    UInt(u64),
    /// Float (shortest round-trip formatting; NaN/∞ become `null`).
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object preserving insertion order.
    Obj(Vec<(&'static str, Json)>),
}

impl Json {
    /// Serializes with two-space indentation and trailing newline.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            Json::Num(x) => {
                if x.is_finite() {
                    let _ = write!(out, "{x}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn stats_json(s: &OnlineStats) -> Json {
    Json::Obj(vec![
        ("count", Json::UInt(s.count())),
        ("min", Json::Num(s.min())),
        ("max", Json::Num(s.max())),
        ("mean", Json::Num(s.mean())),
        ("stddev", Json::Num(s.stddev())),
        ("p50", Json::Num(s.p50())),
        ("p90", Json::Num(s.p90())),
        ("p99", Json::Num(s.p99())),
    ])
}

fn group_json(g: &GroupSummary) -> Json {
    Json::Obj(vec![
        ("key", Json::Str(g.key.clone())),
        ("topology", Json::Str(g.topology.clone())),
        ("protocol", Json::Str(g.protocol.to_string())),
        ("daemon", Json::Str(g.daemon.clone())),
        ("daemon_class", Json::Str(g.class_str())),
        ("init", Json::Str(g.init.to_string())),
        ("n", Json::UInt(g.n as u64)),
        ("diam", Json::UInt(u64::from(g.diam))),
        ("runs", Json::UInt(g.runs)),
        ("errors", Json::UInt(g.errors)),
        ("converged", Json::UInt(g.converged)),
        ("bound", g.bound.map_or(Json::Null, Json::UInt)),
        ("violations", Json::UInt(g.violations)),
        ("stabilization_steps", stats_json(&g.stabilization)),
        ("legitimacy_entry", stats_json(&g.entry)),
        ("moves", stats_json(&g.moves)),
    ])
}

fn cell_json(c: &CellResult) -> Json {
    let mut fields = vec![
        ("topology", Json::Str(c.cell.topology.clone())),
        ("protocol", Json::Str(c.cell.protocol.to_string())),
        ("daemon", Json::Str(c.cell.daemon.clone())),
        ("init", Json::Str(c.cell.init.to_string())),
        ("seed_index", Json::UInt(c.cell.seed_index)),
        ("cell_seed", Json::UInt(c.cell_seed)),
        ("n", Json::UInt(c.n as u64)),
        ("diam", Json::UInt(u64::from(c.diam))),
    ];
    match &c.outcome {
        Ok(o) => {
            fields.push(("steps_run", Json::UInt(o.steps_run as u64)));
            fields.push(("stabilization_steps", Json::UInt(o.stabilization_steps as u64)));
            fields.push(("legitimacy_entry", Json::UInt(o.legitimacy_entry as u64)));
            fields.push(("moves", Json::UInt(o.moves)));
            fields.push(("converged", Json::Bool(o.ended_legitimate)));
            fields.push(("bound", o.bound.map_or(Json::Null, Json::UInt)));
            fields.push(("violated_bound", Json::Bool(o.violated_bound)));
        }
        Err(e) => fields.push(("error", Json::Str(e.clone()))),
    }
    Json::Obj(fields)
}

/// Serializes a campaign result to the v1 JSON artifact.
///
/// `include_cells` controls whether the (potentially large) per-cell
/// section is embedded alongside the group aggregates.
#[must_use]
pub fn to_json(result: &CampaignResult, include_cells: bool) -> String {
    let mut root = vec![
        (
            "campaign",
            Json::Obj(vec![
                ("schema", Json::Str("specstab-campaign/v1".into())),
                ("seed", Json::UInt(result.config.seed)),
                ("max_steps", Json::UInt(result.config.max_steps as u64)),
                ("early_stop_margin", Json::UInt(result.config.early_stop_margin as u64)),
                ("cells", Json::UInt(result.cells.len() as u64)),
                ("groups", Json::UInt(result.groups.len() as u64)),
                ("violations", Json::UInt(result.total_violations())),
                ("errors", Json::UInt(result.total_errors())),
            ]),
        ),
        ("groups", Json::Arr(result.groups.iter().map(group_json).collect())),
    ];
    if include_cells {
        root.push(("cells", Json::Arr(result.cells.iter().map(cell_json).collect())));
    }
    Json::Obj(root).render()
}

/// Serializes the per-cell results as CSV (header + one row per cell).
#[must_use]
pub fn to_csv(result: &CampaignResult) -> String {
    let mut out = String::from(
        "topology,protocol,daemon,init,seed_index,cell_seed,n,diam,steps_run,\
         stabilization_steps,legitimacy_entry,moves,converged,bound,violated_bound,error\n",
    );
    for c in &result.cells {
        let (steps, stab, entry, moves, conv, bound, viol, err) = match &c.outcome {
            Ok(o) => (
                o.steps_run.to_string(),
                o.stabilization_steps.to_string(),
                o.legitimacy_entry.to_string(),
                o.moves.to_string(),
                o.ended_legitimate.to_string(),
                o.bound.map_or(String::new(), |b| b.to_string()),
                o.violated_bound.to_string(),
                String::new(),
            ),
            Err(e) => (
                String::new(),
                String::new(),
                String::new(),
                String::new(),
                String::new(),
                String::new(),
                String::new(),
                csv_escape(e),
            ),
        };
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{},{},{steps},{stab},{entry},{moves},{conv},{bound},{viol},{err}",
            csv_escape(&c.cell.topology),
            c.cell.protocol,
            csv_escape(&c.cell.daemon),
            c.cell.init,
            c.cell.seed_index,
            c.cell_seed,
            c.n,
            c.diam,
        );
    }
    out
}

fn csv_escape(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping_and_shapes() {
        let j = Json::Obj(vec![
            ("s", Json::Str("a\"b\\c\nd".into())),
            ("xs", Json::Arr(vec![Json::Int(-1), Json::UInt(2), Json::Num(1.5), Json::Null])),
            ("empty", Json::Obj(vec![])),
            ("nan", Json::Num(f64::NAN)),
        ]);
        let s = j.render();
        assert!(s.contains("\"a\\\"b\\\\c\\nd\""));
        assert!(s.contains("1.5"));
        assert!(s.contains("{}"));
        assert!(s.contains("null"));
        assert!(s.ends_with("}\n"));
    }

    #[test]
    fn csv_escaping() {
        assert_eq!(csv_escape("plain"), "plain");
        assert_eq!(csv_escape("a,b"), "\"a,b\"");
        assert_eq!(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
    }
}
