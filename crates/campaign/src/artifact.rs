//! Campaign artifacts: deterministic JSON/CSV writers, a strict JSON
//! reader, and the versioned [`PartialArtifact`] shards exchange.
//!
//! No serde in this offline environment, so the writers are hand-rolled on
//! a tiny ordered JSON value type (and the reader is a small recursive
//! descent parser over the same type). Determinism is a hard requirement
//! (tested): serializing the same [`CampaignResult`] yields byte-identical
//! output regardless of thread count, machine or run — which is why wall
//! clock and host facts never enter the final artifact.
//!
//! A [`PartialArtifact`] is one shard's complete output: an env/provenance
//! header, the shard's per-cell results, and the **full internal state** of
//! every per-group statistics accumulator. Floating-point state is stored
//! as `f64::to_bits` integers, so a partial round-trips through JSON
//! without losing a single bit — the property that lets
//! [`crate::merge::merge_partials`] reproduce the single-process artifact
//! byte for byte.

use crate::executor::{CampaignConfig, CampaignResult, CellOutcome, CellResult, GroupSummary};
use crate::matrix::{Cell, InitMode};
use crate::stats::{OnlineStats, OnlineStatsState, P2State};
use specstab_kernel::daemon::DaemonClass;
use std::fmt::Write as _;
use std::time::Duration;

// The JSON value type moved down into `specstab-telemetry` (the event
// stream and metrics sidecar speak the same format); re-exported here so
// every existing `crate::artifact::{Json, obj}` caller keeps compiling.
pub use specstab_telemetry::json::{obj, Json, MAX_PARSE_DEPTH};

fn stats_json(s: &OnlineStats) -> Json {
    obj(vec![
        ("count", Json::UInt(s.count())),
        ("min", Json::Num(s.min())),
        ("max", Json::Num(s.max())),
        ("mean", Json::Num(s.mean())),
        ("stddev", Json::Num(s.stddev())),
        ("p50", Json::Num(s.p50())),
        ("p90", Json::Num(s.p90())),
        ("p99", Json::Num(s.p99())),
    ])
}

fn group_json(g: &GroupSummary) -> Json {
    obj(vec![
        ("key", Json::Str(g.key.clone())),
        ("topology", Json::Str(g.topology.clone())),
        ("protocol", Json::Str(g.protocol.to_string())),
        ("daemon", Json::Str(g.daemon.clone())),
        ("daemon_class", Json::Str(g.class_str())),
        ("init", Json::Str(g.init.to_string())),
        ("n", Json::UInt(g.n as u64)),
        ("diam", Json::UInt(u64::from(g.diam))),
        ("runs", Json::UInt(g.runs)),
        ("errors", Json::UInt(g.errors)),
        ("converged", Json::UInt(g.converged)),
        ("bound", g.bound.map_or(Json::Null, Json::UInt)),
        ("violations", Json::UInt(g.violations)),
        ("stabilization_steps", stats_json(&g.stabilization)),
        ("legitimacy_entry", stats_json(&g.entry)),
        ("moves", stats_json(&g.moves)),
    ])
}

fn cell_json(c: &CellResult) -> Json {
    let mut fields = vec![
        ("topology", Json::Str(c.cell.topology.clone())),
        ("protocol", Json::Str(c.cell.protocol.to_string())),
        ("daemon", Json::Str(c.cell.daemon.clone())),
        ("init", Json::Str(c.cell.init.to_string())),
        ("seed_index", Json::UInt(c.cell.seed_index)),
        ("cell_seed", Json::UInt(c.cell_seed)),
        ("n", Json::UInt(c.n as u64)),
        ("diam", Json::UInt(u64::from(c.diam))),
    ];
    match &c.outcome {
        Ok(o) => {
            fields.push(("steps_run", Json::UInt(o.steps_run as u64)));
            fields.push(("stabilization_steps", Json::UInt(o.stabilization_steps as u64)));
            fields.push(("legitimacy_entry", Json::UInt(o.legitimacy_entry as u64)));
            fields.push(("moves", Json::UInt(o.moves)));
            fields.push(("converged", Json::Bool(o.ended_legitimate)));
            fields.push(("bound", o.bound.map_or(Json::Null, Json::UInt)));
            fields.push(("violated_bound", Json::Bool(o.violated_bound)));
        }
        Err(e) => fields.push(("error", Json::Str(e.clone()))),
    }
    obj(fields)
}

/// Serializes a campaign result to the v1 JSON artifact.
///
/// `include_cells` controls whether the (potentially large) per-cell
/// section is embedded alongside the group aggregates.
#[must_use]
pub fn to_json(result: &CampaignResult, include_cells: bool) -> String {
    let mut root = vec![
        (
            "campaign",
            obj(vec![
                ("schema", Json::Str("specstab-campaign/v1".into())),
                ("seed", Json::UInt(result.config.seed)),
                ("max_steps", Json::UInt(result.config.max_steps as u64)),
                ("early_stop_margin", Json::UInt(result.config.early_stop_margin as u64)),
                ("cells", Json::UInt(result.cells.len() as u64)),
                ("groups", Json::UInt(result.groups.len() as u64)),
                ("violations", Json::UInt(result.total_violations())),
                ("errors", Json::UInt(result.total_errors())),
            ]),
        ),
        ("groups", Json::Arr(result.groups.iter().map(group_json).collect())),
    ];
    if include_cells {
        root.push(("cells", Json::Arr(result.cells.iter().map(cell_json).collect())));
    }
    obj(root).render()
}

/// Serializes the per-cell results as CSV (header + one row per cell).
#[must_use]
pub fn to_csv(result: &CampaignResult) -> String {
    let mut out = String::from(
        "topology,protocol,daemon,init,seed_index,cell_seed,n,diam,steps_run,\
         stabilization_steps,legitimacy_entry,moves,converged,bound,violated_bound,error\n",
    );
    for c in &result.cells {
        let (steps, stab, entry, moves, conv, bound, viol, err) = match &c.outcome {
            Ok(o) => (
                o.steps_run.to_string(),
                o.stabilization_steps.to_string(),
                o.legitimacy_entry.to_string(),
                o.moves.to_string(),
                o.ended_legitimate.to_string(),
                o.bound.map_or(String::new(), |b| b.to_string()),
                o.violated_bound.to_string(),
                String::new(),
            ),
            Err(e) => (
                String::new(),
                String::new(),
                String::new(),
                String::new(),
                String::new(),
                String::new(),
                String::new(),
                csv_escape(e),
            ),
        };
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{},{},{steps},{stab},{entry},{moves},{conv},{bound},{viol},{err}",
            csv_escape(&c.cell.topology),
            c.cell.protocol,
            csv_escape(&c.cell.daemon),
            c.cell.init,
            c.cell.seed_index,
            c.cell_seed,
            c.n,
            c.diam,
        );
    }
    out
}

fn csv_escape(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Writes `contents` to `path` atomically: the bytes land in `<path>.tmp`
/// first and are renamed into place, so a killed process never leaves a
/// truncated artifact that poisons a later merge or spool resume (readers
/// either see the old complete file or the new complete file, never a
/// prefix).
///
/// # Errors
///
/// Propagates I/O errors from the temp-file write or the rename; on a
/// failed rename the temp file is left behind for post-mortem.
pub fn write_atomic(path: &std::path::Path, contents: &str) -> std::io::Result<()> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    std::fs::write(&tmp, contents)?;
    std::fs::rename(&tmp, path)
}

/// Schema identifier of the partial-artifact format. Bump on any change to
/// the layout below; [`PartialArtifact::from_json`] rejects every other
/// value.
pub const PARTIAL_SCHEMA: &str = "specstab-campaign-partial/v1";

/// The campaign-parameter header fields shared by the plan and partial
/// schemas (`threads` is a per-process execution detail and is never
/// serialized). Writers splice these into their headers; readers use
/// [`config_from_header`] — one place to extend when the config grows.
pub(crate) fn config_header_fields(config: &CampaignConfig) -> Vec<(&'static str, Json)> {
    vec![
        ("seed", Json::UInt(config.seed)),
        ("max_steps", Json::UInt(config.max_steps as u64)),
        ("early_stop_margin", Json::UInt(config.early_stop_margin as u64)),
    ]
}

/// Parses the shared campaign-parameter header fields (`threads` = 0).
pub(crate) fn config_from_header(header: &Json) -> Result<CampaignConfig, String> {
    Ok(CampaignConfig {
        threads: 0,
        max_steps: header.req("max_steps")?.as_u64()? as usize,
        seed: header.req("seed")?.as_u64()?,
        early_stop_margin: header.req("early_stop_margin")?.as_u64()? as usize,
    })
}

/// One shard's complete campaign output: which contiguous cell range of
/// which plan it covers, the per-cell results, and the full internal state
/// of every per-group statistics accumulator.
///
/// Partials are the interchange format of the plan → shard → merge
/// pipeline: any set of partials that tiles a plan's cell range merges
/// (see [`crate::merge::merge_partials`]) into a [`CampaignResult`] whose
/// JSON/CSV artifacts are **byte-identical** to a single-process run, as
/// long as shard boundaries are group-aligned (the planner's invariant).
/// All floating-point state serializes as `f64::to_bits` integers, so the
/// JSON round trip is lossless down to the bit.
#[derive(Clone, Debug)]
pub struct PartialArtifact {
    /// Shard id within the plan.
    pub shard_id: usize,
    /// First cell index (into the plan's canonical cell order) covered.
    pub start: usize,
    /// One past the last cell index covered.
    pub end: usize,
    /// Total cells in the plan (all shards together).
    pub total_cells: usize,
    /// Fingerprint of the plan's canonical cell list (see
    /// [`crate::plan::cells_fingerprint`]): the identity check that keeps
    /// partials of *different* campaigns from merging just because their
    /// cell counts and configuration agree.
    pub plan_fingerprint: u64,
    /// The campaign configuration the shard ran with (`threads` is an
    /// execution detail and is not serialized).
    pub config: CampaignConfig,
    /// Per-cell results, in canonical order, for cells `start..end`.
    pub cells: Vec<CellResult>,
    /// Per-group accumulator states, ordered by first appearance.
    pub groups: Vec<GroupSummary>,
}

impl PartialArtifact {
    /// Packages a shard execution (the [`CampaignResult`] of running cells
    /// `start..start + result.cells.len()` of a plan) as a partial.
    #[must_use]
    pub fn from_result(
        result: CampaignResult,
        shard_id: usize,
        start: usize,
        total_cells: usize,
        plan_fingerprint: u64,
    ) -> Self {
        Self {
            shard_id,
            start,
            end: start + result.cells.len(),
            total_cells,
            plan_fingerprint,
            config: result.config,
            cells: result.cells,
            groups: result.groups,
        }
    }

    /// Serializes the partial (versioned header with provenance, cells,
    /// group states).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut header = vec![
            ("schema", Json::Str(PARTIAL_SCHEMA.into())),
            ("shard", Json::UInt(self.shard_id as u64)),
            ("start", Json::UInt(self.start as u64)),
            ("end", Json::UInt(self.end as u64)),
            ("total_cells", Json::UInt(self.total_cells as u64)),
            ("plan_fingerprint", Json::UInt(self.plan_fingerprint)),
        ];
        header.extend(config_header_fields(&self.config));
        header.push((
            "provenance",
            obj(vec![
                ("crate", Json::Str("specstab-campaign".into())),
                ("version", Json::Str(env!("CARGO_PKG_VERSION").into())),
                ("os", Json::Str(std::env::consts::OS.into())),
                ("arch", Json::Str(std::env::consts::ARCH.into())),
            ]),
        ));
        obj(vec![
            ("partial", obj(header)),
            ("cells", Json::Arr(self.cells.iter().map(cell_result_json).collect())),
            ("groups", Json::Arr(self.groups.iter().map(group_state_json).collect())),
        ])
        .render()
    }

    /// Parses and validates a partial artifact.
    ///
    /// # Errors
    ///
    /// Rejects syntactically invalid JSON, any schema string other than
    /// [`PARTIAL_SCHEMA`], missing or mistyped fields, and structurally
    /// inconsistent partials (range/cell-count mismatch, group run counts
    /// that do not add up to the cell count).
    pub fn from_json(text: &str) -> Result<Self, String> {
        let root = Json::parse(text)?;
        let header = root.req("partial")?;
        let schema = header.req("schema")?.as_str()?;
        if schema != PARTIAL_SCHEMA {
            return Err(format!(
                "unsupported partial schema '{schema}' (expected {PARTIAL_SCHEMA})"
            ));
        }
        header.req("provenance")?; // required by the schema, contents informational
        let shard_id = header.req("shard")?.as_u64()? as usize;
        let start = header.req("start")?.as_u64()? as usize;
        let end = header.req("end")?.as_u64()? as usize;
        let total_cells = header.req("total_cells")?.as_u64()? as usize;
        let plan_fingerprint = header.req("plan_fingerprint")?.as_u64()?;
        let config = config_from_header(header)?;
        let cells = root
            .req("cells")?
            .as_arr()?
            .iter()
            .map(cell_result_from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let groups = root
            .req("groups")?
            .as_arr()?
            .iter()
            .map(group_state_from_json)
            .collect::<Result<Vec<_>, _>>()?;
        if start > end || end > total_cells {
            return Err(format!("bad cell range {start}..{end} of {total_cells}"));
        }
        if cells.len() != end - start {
            return Err(format!("cell count {} disagrees with range {start}..{end}", cells.len()));
        }
        let group_runs: u64 = groups.iter().map(|g| g.runs).sum();
        if group_runs != cells.len() as u64 {
            return Err(format!(
                "group run total {group_runs} disagrees with {} cells",
                cells.len()
            ));
        }
        Ok(Self { shard_id, start, end, total_cells, plan_fingerprint, config, cells, groups })
    }

    /// Reconstructs the shard's [`CampaignResult`] (e.g. to render its
    /// profile table in isolation). Wall clock is zero and `threads_used`
    /// is 1 — neither enters artifacts.
    #[must_use]
    pub fn into_result(self) -> CampaignResult {
        CampaignResult {
            cells: self.cells,
            groups: self.groups,
            threads_used: 1,
            wall: Duration::ZERO,
            config: self.config,
        }
    }
}

fn bits(x: f64) -> Json {
    Json::UInt(x.to_bits())
}

fn f64_bits(j: &Json) -> Result<f64, String> {
    Ok(f64::from_bits(j.as_u64()?))
}

fn bits_arr(xs: &[f64]) -> Json {
    Json::Arr(xs.iter().map(|&x| bits(x)).collect())
}

fn f64_bits_vec(j: &Json) -> Result<Vec<f64>, String> {
    j.as_arr()?.iter().map(f64_bits).collect()
}

fn f64_bits_arr5(j: &Json) -> Result<[f64; 5], String> {
    let v = f64_bits_vec(j)?;
    <[f64; 5]>::try_from(v).map_err(|v| format!("expected 5 marker values, got {}", v.len()))
}

fn p2_json(s: &P2State) -> Json {
    obj(vec![
        ("p_bits", bits(s.p)),
        ("q_bits", bits_arr(&s.q)),
        ("n_bits", bits_arr(&s.n)),
        ("np_bits", bits_arr(&s.np)),
        ("count", Json::UInt(s.count)),
        ("warmup_bits", bits_arr(&s.warmup)),
    ])
}

fn p2_from_json(j: &Json) -> Result<P2State, String> {
    Ok(P2State {
        p: f64_bits(j.req("p_bits")?)?,
        q: f64_bits_arr5(j.req("q_bits")?)?,
        n: f64_bits_arr5(j.req("n_bits")?)?,
        np: f64_bits_arr5(j.req("np_bits")?)?,
        count: j.req("count")?.as_u64()?,
        warmup: f64_bits_vec(j.req("warmup_bits")?)?,
    })
}

fn stats_state_json(s: &OnlineStats) -> Json {
    let st = s.state();
    obj(vec![
        ("count", Json::UInt(st.count)),
        ("min_bits", bits(st.min)),
        ("max_bits", bits(st.max)),
        ("mean_bits", bits(st.mean)),
        ("m2_bits", bits(st.m2)),
        ("p50", p2_json(&st.p50)),
        ("p90", p2_json(&st.p90)),
        ("p99", p2_json(&st.p99)),
    ])
}

fn stats_state_from_json(j: &Json) -> Result<OnlineStats, String> {
    OnlineStats::from_state(OnlineStatsState {
        count: j.req("count")?.as_u64()?,
        min: f64_bits(j.req("min_bits")?)?,
        max: f64_bits(j.req("max_bits")?)?,
        mean: f64_bits(j.req("mean_bits")?)?,
        m2: f64_bits(j.req("m2_bits")?)?,
        p50: p2_from_json(j.req("p50")?)?,
        p90: p2_from_json(j.req("p90")?)?,
        p99: p2_from_json(j.req("p99")?)?,
    })
}

fn class_to_json(class: Option<DaemonClass>) -> Json {
    class.map_or(Json::Null, |c| Json::Str(c.to_string()))
}

fn class_from_json(j: &Json) -> Result<Option<DaemonClass>, String> {
    match j {
        Json::Null => Ok(None),
        Json::Str(s) => s.parse::<DaemonClass>().map(Some),
        other => Err(format!("expected daemon class string or null, got {other:?}")),
    }
}

fn opt_u64_from_json(j: &Json) -> Result<Option<u64>, String> {
    match j {
        Json::Null => Ok(None),
        other => other.as_u64().map(Some),
    }
}

/// Serializes a cell's coordinates (the plan format's cell entry).
pub(crate) fn cell_coord_json(cell: &Cell) -> Json {
    obj(vec![
        ("topology", Json::Str(cell.topology.clone())),
        ("protocol", Json::Str(cell.protocol.clone())),
        ("daemon", Json::Str(cell.daemon.clone())),
        ("init", Json::Str(cell.init.to_string())),
        ("seed_index", Json::UInt(cell.seed_index)),
    ])
}

/// Parses a cell-coordinate object written by [`cell_coord_json`].
pub(crate) fn cell_coord_from_json(j: &Json) -> Result<Cell, String> {
    Ok(Cell {
        topology: j.req("topology")?.as_str()?.to_string(),
        protocol: j.req("protocol")?.as_str()?.to_string(),
        daemon: j.req("daemon")?.as_str()?.to_string(),
        init: InitMode::parse(j.req("init")?.as_str()?)?,
        seed_index: j.req("seed_index")?.as_u64()?,
    })
}

fn cell_result_json(c: &CellResult) -> Json {
    let mut fields = vec![
        ("cell", cell_coord_json(&c.cell)),
        ("n", Json::UInt(c.n as u64)),
        ("diam", Json::UInt(u64::from(c.diam))),
        ("class", class_to_json(c.class)),
        ("cell_seed", Json::UInt(c.cell_seed)),
    ];
    match &c.outcome {
        Ok(o) => fields.push((
            "outcome",
            obj(vec![
                ("steps_run", Json::UInt(o.steps_run as u64)),
                ("stabilization_steps", Json::UInt(o.stabilization_steps as u64)),
                ("legitimacy_entry", Json::UInt(o.legitimacy_entry as u64)),
                ("moves", Json::UInt(o.moves)),
                ("ended_legitimate", Json::Bool(o.ended_legitimate)),
                ("bound", o.bound.map_or(Json::Null, Json::UInt)),
                ("violated_bound", Json::Bool(o.violated_bound)),
            ]),
        )),
        Err(e) => fields.push(("error", Json::Str(e.clone()))),
    }
    obj(fields)
}

fn cell_result_from_json(j: &Json) -> Result<CellResult, String> {
    let outcome = match (j.get("outcome"), j.get("error")) {
        (Some(o), None) => Ok(CellOutcome {
            steps_run: o.req("steps_run")?.as_u64()? as usize,
            stabilization_steps: o.req("stabilization_steps")?.as_u64()? as usize,
            legitimacy_entry: o.req("legitimacy_entry")?.as_u64()? as usize,
            moves: o.req("moves")?.as_u64()?,
            ended_legitimate: o.req("ended_legitimate")?.as_bool()?,
            bound: opt_u64_from_json(o.req("bound")?)?,
            violated_bound: o.req("violated_bound")?.as_bool()?,
        }),
        (None, Some(e)) => Err(e.as_str()?.to_string()),
        _ => return Err("cell needs exactly one of 'outcome' or 'error'".into()),
    };
    Ok(CellResult {
        cell: cell_coord_from_json(j.req("cell")?)?,
        n: j.req("n")?.as_u64()? as usize,
        diam: u32::try_from(j.req("diam")?.as_u64()?).map_err(|e| e.to_string())?,
        class: class_from_json(j.req("class")?)?,
        cell_seed: j.req("cell_seed")?.as_u64()?,
        outcome,
        // Telemetry never travels in partials (it would poison the
        // byte-identical merge); cells read back carry zeroed telemetry.
        wall_nanos: 0,
        counters: specstab_telemetry::RunCounters::default(),
    })
}

fn group_state_json(g: &GroupSummary) -> Json {
    obj(vec![
        ("key", Json::Str(g.key.clone())),
        ("topology", Json::Str(g.topology.clone())),
        ("protocol", Json::Str(g.protocol.clone())),
        ("daemon", Json::Str(g.daemon.clone())),
        ("class", class_to_json(g.class)),
        ("init", Json::Str(g.init.to_string())),
        ("n", Json::UInt(g.n as u64)),
        ("diam", Json::UInt(u64::from(g.diam))),
        ("runs", Json::UInt(g.runs)),
        ("errors", Json::UInt(g.errors)),
        ("converged", Json::UInt(g.converged)),
        ("bound", g.bound.map_or(Json::Null, Json::UInt)),
        ("violations", Json::UInt(g.violations)),
        ("stabilization", stats_state_json(&g.stabilization)),
        ("entry", stats_state_json(&g.entry)),
        ("moves", stats_state_json(&g.moves)),
    ])
}

fn group_state_from_json(j: &Json) -> Result<GroupSummary, String> {
    Ok(GroupSummary {
        key: j.req("key")?.as_str()?.to_string(),
        topology: j.req("topology")?.as_str()?.to_string(),
        protocol: j.req("protocol")?.as_str()?.to_string(),
        daemon: j.req("daemon")?.as_str()?.to_string(),
        class: class_from_json(j.req("class")?)?,
        init: InitMode::parse(j.req("init")?.as_str()?)?,
        n: j.req("n")?.as_u64()? as usize,
        diam: u32::try_from(j.req("diam")?.as_u64()?).map_err(|e| e.to_string())?,
        runs: j.req("runs")?.as_u64()?,
        errors: j.req("errors")?.as_u64()?,
        converged: j.req("converged")?.as_u64()?,
        stabilization: stats_state_from_json(j.req("stabilization")?)?,
        entry: stats_state_from_json(j.req("entry")?)?,
        moves: stats_state_from_json(j.req("moves")?)?,
        bound: opt_u64_from_json(j.req("bound")?)?,
        violations: j.req("violations")?.as_u64()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_escaping() {
        assert_eq!(csv_escape("plain"), "plain");
        assert_eq!(csv_escape("a,b"), "\"a,b\"");
        assert_eq!(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
    }
}
