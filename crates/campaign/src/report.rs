//! Text rendering of campaign results: speculation-profile tables.
//!
//! A speculation profile (Definitions 3–4) tabulates stabilization time as
//! a function of the daemon. [`speculation_profile_table`] renders one such
//! table per (topology, protocol, fault burst) from the aggregated groups,
//! ordering daemons from the weakest class upward so the "weaker daemon ⇒
//! faster stabilization" shape is visible at a glance.

use crate::executor::{CampaignResult, GroupSummary};
use crate::matrix::InitMode;
use specstab_core::speculation::{ProfileEntry, SpeculationProfile};
use specstab_kernel::daemon::{Centrality, Fairness, Synchrony};
use std::fmt::Write as _;

/// Renders a fixed-width text table.
fn render_table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.chars().count()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.chars().count());
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "## {title}");
    let line = |out: &mut String, cells: &[String]| {
        let mut s = String::new();
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                s.push_str("  ");
            }
            let pad = widths[i] - cell.chars().count();
            s.push_str(cell);
            s.extend(std::iter::repeat_n(' ', pad));
        }
        let _ = writeln!(out, "{}", s.trim_end());
    };
    line(&mut out, &headers.iter().map(|h| (*h).to_string()).collect::<Vec<_>>());
    line(&mut out, &widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(&mut out, row);
    }
    out
}

fn fnum(x: f64) -> String {
    if (x - x.round()).abs() < 1e-9 {
        format!("{}", x.round() as i64)
    } else {
        format!("{x:.2}")
    }
}

/// Sort key approximating daemon power: weaker classes first, the
/// synchronous daemon at the top.
fn class_rank(g: &GroupSummary) -> (u8, String) {
    let rank = g.class.map_or(5, |c| match (c.synchrony, c.centrality, c.fairness) {
        (Synchrony::Synchronous, _, _) => 0,
        (_, Centrality::Central, Fairness::WeaklyFair) => 1,
        (_, Centrality::Central, Fairness::Unfair) => 2,
        (_, Centrality::Distributed, Fairness::WeaklyFair) => 3,
        (_, Centrality::Distributed, Fairness::Unfair) => 4,
    });
    (rank, g.daemon.clone())
}

/// Projects the groups matching one (topology, protocol, init) scenario
/// onto the paper's [`SpeculationProfile`] type, so Definition 4 verdicts
/// ([`specstab_core::speculation::check_definition4`]) can be computed
/// straight from campaign output.
#[must_use]
pub fn to_speculation_profile(
    result: &CampaignResult,
    topology: &str,
    protocol: &str,
    init: InitMode,
) -> SpeculationProfile {
    let entries = result
        .groups
        .iter()
        .filter(|g| g.topology == topology && g.protocol == protocol && g.init == init)
        .filter_map(|g| {
            let class = g.class?;
            let runs = usize::try_from(g.runs - g.errors).unwrap_or(usize::MAX);
            Some(ProfileEntry {
                daemon: g.daemon.clone(),
                class,
                runs,
                max_stabilization: g.stabilization.max() as usize,
                mean_stabilization: g.stabilization.mean(),
                converged_runs: usize::try_from(g.converged).unwrap_or(usize::MAX),
            })
        })
        .collect();
    SpeculationProfile { protocol: protocol.to_string(), graph: topology.to_string(), entries }
}

/// Renders one speculation-profile table per (topology, protocol, faults)
/// scenario: stabilization time as a function of daemon power.
#[must_use]
pub fn speculation_profile_table(result: &CampaignResult) -> String {
    // Group the groups by scenario (everything but the daemon axis).
    let mut scenarios: Vec<(String, Vec<&GroupSummary>)> = Vec::new();
    for g in &result.groups {
        let scen_key = format!("{} / {} / init={}", g.topology, g.protocol, g.init);
        match scenarios.iter_mut().find(|(k, _)| *k == scen_key) {
            Some((_, v)) => v.push(g),
            None => scenarios.push((scen_key, vec![g])),
        }
    }
    let mut out = String::new();
    for (scen, mut groups) in scenarios {
        groups.sort_by_key(|g| class_rank(g));
        let (n, diam) = (groups[0].n, groups[0].diam);
        let title = format!(
            "speculation profile: {scen}  (n={n}, diam={diam}; stabilization vs daemon power)"
        );
        let rows: Vec<Vec<String>> = groups
            .iter()
            .map(|g| {
                vec![
                    g.daemon.clone(),
                    g.class_str(),
                    g.runs.to_string(),
                    fnum(g.stabilization.max()),
                    fnum(g.stabilization.mean()),
                    fnum(g.stabilization.p90()),
                    fnum(g.entry.max()),
                    g.bound.map_or_else(|| "-".into(), |b| b.to_string()),
                    g.violations.to_string(),
                    format!("{}/{}", g.converged, g.runs - g.errors),
                ]
            })
            .collect();
        out.push_str(&render_table(
            &title,
            &[
                "daemon",
                "class",
                "runs",
                "max stab",
                "mean stab",
                "p90 stab",
                "max Γ entry",
                "bound",
                "violations",
                "converged",
            ],
            &rows,
        ));
        out.push('\n');
    }
    let _ = writeln!(
        out,
        "total: {} cells, {} groups, {} violations, {} errors",
        result.cells.len(),
        result.groups.len(),
        result.total_violations(),
        result.total_errors()
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{run_campaign_sequential, CampaignConfig};
    use crate::matrix::ScenarioMatrix;

    #[test]
    fn profile_table_lists_daemons_weakest_first() {
        let m = ScenarioMatrix::builder()
            .topologies(["ring:6"])
            .protocols(["ssme"])
            .daemons(["dist:0.5", "sync", "central-rr"])
            .seeds(0..2)
            .build();
        let r = run_campaign_sequential(&m, &CampaignConfig::default());
        let table = speculation_profile_table(&r);
        let sync_at = table.find("sync ").expect("sync row");
        let rr_at = table.find("central-rr").expect("rr row");
        let dist_at = table.find("dist:0.5").expect("dist row");
        assert!(sync_at < rr_at && rr_at < dist_at, "weakest daemon first:\n{table}");
        assert!(table.contains("violations"));
    }

    #[test]
    fn fnum_formats() {
        assert_eq!(fnum(3.0), "3");
        assert_eq!(fnum(2.5), "2.50");
    }
}
